// Package transport carries a smoothed MPEG picture stream over a byte
// connection, pacing transmission at the per-picture rates chosen by the
// smoothing algorithm.
//
// The paper positions the algorithm inside "transport protocols for
// compressed video": the smoother calls notify(i, rate) to tell the
// transmitter the rate for picture i, and the transmitter drains the
// picture at that rate. This package implements that contract over any
// net.Conn (the tests use both net.Pipe and TCP loopback), with explicit
// rate-notification messages ahead of each rate change so a receiver (or
// a network resource manager) can track the sender's declared rate.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"mpegsmooth/internal/mpeg"
)

// Message kinds on the wire.
const (
	kindRate    byte = 'R'
	kindPicture byte = 'P'
	kindEnd     byte = 'E'
	kindHello   byte = 'H'
	kindVerdict byte = 'V'
)

// MaxPictureBytes bounds a picture payload; a peer announcing more is
// malformed (the largest legal picture in this codec is far smaller).
const MaxPictureBytes = 16 << 20

// ErrClosed reports an orderly end-of-stream message.
var ErrClosed = errors.New("transport: stream closed by sender")

// RateNotification announces the transmission rate for a picture:
// notify(i, rate) from the algorithm specification.
type RateNotification struct {
	Index int
	Rate  float64 // bits per second
}

// PictureFrame carries one coded picture.
type PictureFrame struct {
	Index   int
	Type    mpeg.PictureType
	Payload []byte
}

// StreamHello opens a stream session with a server that performs
// admission control (smoothd): the sender declares its encoding
// parameters and, crucially, the peak rate of its smoothed schedule —
// the traffic descriptor the admission controller reserves against the
// shared link, in the spirit of the usage-parameter contract a Policer
// enforces. A receiver that does not perform admission (plain Receive)
// records the hello and carries on.
type StreamHello struct {
	// Tau is the picture period in seconds.
	Tau float64
	// GOP is the repeating picture-type pattern.
	GOP mpeg.GOP
	// K and D are the smoothing parameters the sender encoded with.
	K int
	D float64
	// Pictures is the expected stream length (0 = unknown/live).
	Pictures int
	// PeakRate is the declared maximum smoothed transmission rate in
	// bits/second; admission reserves this much link capacity.
	PeakRate float64
}

// Validate checks the hello's fields for wire-level sanity.
func (h StreamHello) Validate() error {
	if h.Tau <= 0 || math.IsNaN(h.Tau) || math.IsInf(h.Tau, 0) {
		return fmt.Errorf("transport: hello picture period %v", h.Tau)
	}
	if err := h.GOP.Validate(); err != nil {
		return fmt.Errorf("transport: hello %w", err)
	}
	if h.K < 0 {
		return fmt.Errorf("transport: hello K = %d", h.K)
	}
	if h.D <= 0 || math.IsNaN(h.D) || math.IsInf(h.D, 0) {
		return fmt.Errorf("transport: hello delay bound %v", h.D)
	}
	if h.Pictures < 0 {
		return fmt.Errorf("transport: hello pictures %d", h.Pictures)
	}
	if h.PeakRate <= 0 || math.IsNaN(h.PeakRate) || math.IsInf(h.PeakRate, 0) {
		return fmt.Errorf("transport: hello peak rate %v", h.PeakRate)
	}
	return nil
}

// WriteHello writes a stream-opening hello.
func WriteHello(w io.Writer, h StreamHello) error {
	if err := h.Validate(); err != nil {
		return err
	}
	if h.GOP.N > math.MaxUint16 || h.GOP.M > math.MaxUint16 ||
		h.K > math.MaxUint16 || h.Pictures > math.MaxUint32 {
		return fmt.Errorf("transport: hello field out of wire range")
	}
	var buf [35]byte
	buf[0] = kindHello
	binary.BigEndian.PutUint64(buf[1:9], math.Float64bits(h.Tau))
	binary.BigEndian.PutUint16(buf[9:11], uint16(h.GOP.N))
	binary.BigEndian.PutUint16(buf[11:13], uint16(h.GOP.M))
	binary.BigEndian.PutUint16(buf[13:15], uint16(h.K))
	binary.BigEndian.PutUint64(buf[15:23], math.Float64bits(h.D))
	binary.BigEndian.PutUint32(buf[23:27], uint32(h.Pictures))
	binary.BigEndian.PutUint64(buf[27:35], math.Float64bits(h.PeakRate))
	_, err := w.Write(buf[:])
	return err
}

// VerdictCode classifies an admission decision.
type VerdictCode byte

// Admission verdict codes.
const (
	// Admitted: the stream's declared peak rate has been reserved on
	// the shared link; the sender may begin streaming.
	Admitted VerdictCode = iota
	// RejectedCapacity: the declared peak exceeds the link capacity
	// still available.
	RejectedCapacity
	// RejectedMalformed: the hello was missing or invalid.
	RejectedMalformed
	// RejectedBusy: the server is at its concurrent-stream limit or
	// shutting down.
	RejectedBusy
)

// String names the verdict code.
func (c VerdictCode) String() string {
	switch c {
	case Admitted:
		return "admitted"
	case RejectedCapacity:
		return "rejected-capacity"
	case RejectedMalformed:
		return "rejected-malformed"
	case RejectedBusy:
		return "rejected-busy"
	}
	return fmt.Sprintf("VerdictCode(%d)", byte(c))
}

// Verdict is the server's admission answer to a StreamHello.
type Verdict struct {
	Code VerdictCode
	// Available is the link capacity still unreserved (bits/second) at
	// decision time — on rejection, what the sender would have to fit
	// under to be admitted.
	Available float64
}

// Admitted reports whether the stream may proceed.
func (v Verdict) IsAdmitted() bool { return v.Code == Admitted }

// WriteVerdict writes an admission verdict.
func WriteVerdict(w io.Writer, v Verdict) error {
	if v.Code > RejectedBusy {
		return fmt.Errorf("transport: invalid verdict code %d", v.Code)
	}
	if math.IsNaN(v.Available) || math.IsInf(v.Available, 0) || v.Available < 0 {
		return fmt.Errorf("transport: invalid verdict capacity %v", v.Available)
	}
	var buf [10]byte
	buf[0] = kindVerdict
	buf[1] = byte(v.Code)
	binary.BigEndian.PutUint64(buf[2:10], math.Float64bits(v.Available))
	_, err := w.Write(buf[:])
	return err
}

// ReadVerdict reads an admission verdict — the one message that flows
// server→sender, immediately after the hello.
func ReadVerdict(r io.Reader) (Verdict, error) {
	msg, err := ReadMessage(r)
	if err != nil {
		return Verdict{}, err
	}
	v, ok := msg.(*Verdict)
	if !ok {
		return Verdict{}, fmt.Errorf("transport: expected verdict, got %T", msg)
	}
	return *v, nil
}

// WriteRate writes a rate notification.
func WriteRate(w io.Writer, n RateNotification) error {
	if n.Index < 0 || n.Index > math.MaxUint32 {
		return fmt.Errorf("transport: picture index %d out of range", n.Index)
	}
	if n.Rate <= 0 || math.IsNaN(n.Rate) || math.IsInf(n.Rate, 0) {
		return fmt.Errorf("transport: invalid rate %v", n.Rate)
	}
	var buf [13]byte
	buf[0] = kindRate
	binary.BigEndian.PutUint32(buf[1:5], uint32(n.Index))
	binary.BigEndian.PutUint64(buf[5:13], math.Float64bits(n.Rate))
	_, err := w.Write(buf[:])
	return err
}

// WritePictureHeader writes the header of a picture frame; the caller
// streams the payload bytes (paced) immediately after.
func WritePictureHeader(w io.Writer, index int, t mpeg.PictureType, size int) error {
	if index < 0 || index > math.MaxUint32 {
		return fmt.Errorf("transport: picture index %d out of range", index)
	}
	if size <= 0 || size > MaxPictureBytes {
		return fmt.Errorf("transport: picture size %d out of range", size)
	}
	var buf [10]byte
	buf[0] = kindPicture
	binary.BigEndian.PutUint32(buf[1:5], uint32(index))
	buf[5] = byte(t)
	binary.BigEndian.PutUint32(buf[6:10], uint32(size))
	_, err := w.Write(buf[:])
	return err
}

// WriteEnd writes the orderly end-of-stream marker.
func WriteEnd(w io.Writer) error {
	_, err := w.Write([]byte{kindEnd})
	return err
}

// ReadMessage reads the next message. It returns a *StreamHello, a
// *Verdict, a *RateNotification, or a *PictureFrame (with the payload
// fully read), or ErrClosed on the end marker.
func ReadMessage(r io.Reader) (any, error) {
	var kind [1]byte
	if _, err := io.ReadFull(r, kind[:]); err != nil {
		return nil, err
	}
	switch kind[0] {
	case kindHello:
		var buf [34]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, fmt.Errorf("transport: short hello: %w", err)
		}
		h := StreamHello{
			Tau: math.Float64frombits(binary.BigEndian.Uint64(buf[0:8])),
			GOP: mpeg.GOP{
				N: int(binary.BigEndian.Uint16(buf[8:10])),
				M: int(binary.BigEndian.Uint16(buf[10:12])),
			},
			K:        int(binary.BigEndian.Uint16(buf[12:14])),
			D:        math.Float64frombits(binary.BigEndian.Uint64(buf[14:22])),
			Pictures: int(binary.BigEndian.Uint32(buf[22:26])),
			PeakRate: math.Float64frombits(binary.BigEndian.Uint64(buf[26:34])),
		}
		if err := h.Validate(); err != nil {
			return nil, err
		}
		return &h, nil
	case kindVerdict:
		var buf [9]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, fmt.Errorf("transport: short verdict: %w", err)
		}
		v := Verdict{
			Code:      VerdictCode(buf[0]),
			Available: math.Float64frombits(binary.BigEndian.Uint64(buf[1:9])),
		}
		if v.Code > RejectedBusy {
			return nil, fmt.Errorf("transport: invalid verdict code %d", buf[0])
		}
		if math.IsNaN(v.Available) || math.IsInf(v.Available, 0) || v.Available < 0 {
			return nil, fmt.Errorf("transport: invalid verdict capacity %v", v.Available)
		}
		return &v, nil
	case kindRate:
		var buf [12]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, fmt.Errorf("transport: short rate notification: %w", err)
		}
		rate := math.Float64frombits(binary.BigEndian.Uint64(buf[4:12]))
		if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
			return nil, fmt.Errorf("transport: peer sent invalid rate %v", rate)
		}
		return &RateNotification{
			Index: int(binary.BigEndian.Uint32(buf[0:4])),
			Rate:  rate,
		}, nil
	case kindPicture:
		var buf [9]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, fmt.Errorf("transport: short picture header: %w", err)
		}
		size := binary.BigEndian.Uint32(buf[5:9])
		if size == 0 || size > MaxPictureBytes {
			return nil, fmt.Errorf("transport: peer announced picture of %d bytes", size)
		}
		ty := mpeg.PictureType(buf[4])
		if ty > mpeg.TypeB {
			return nil, fmt.Errorf("transport: invalid picture type %d", buf[4])
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("transport: truncated picture payload: %w", err)
		}
		return &PictureFrame{
			Index:   int(binary.BigEndian.Uint32(buf[0:4])),
			Type:    ty,
			Payload: payload,
		}, nil
	case kindEnd:
		return nil, ErrClosed
	default:
		return nil, fmt.Errorf("transport: unknown message kind %#02x", kind[0])
	}
}
