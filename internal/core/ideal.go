package core

import (
	"fmt"
	"math"

	"mpegsmooth/internal/trace"
)

// Ideal computes the ideal smoothing of Section 3.2: pictures are grouped
// into pattern-aligned blocks of N, each block is transmitted at its
// average rate ΣS/(Nτ), and a block may begin transmission only after all
// of its pictures have arrived (and the previous block has departed).
//
// Ideal smoothing is the offline reference R(t) the paper compares
// against. Its drawbacks motivate the online algorithm: the first picture
// of each pattern waits for the whole pattern to be encoded, so picture
// delays are large, and no per-picture delay bound is enforced.
func Ideal(tr *trace.Trace) (*Schedule, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return PiecewiseCBR(tr, tr.GOP.N)
}

// PiecewiseCBR generalizes ideal smoothing to an arbitrary averaging
// window: pictures are grouped into blocks of window pictures, each sent
// at its average rate once fully arrived — the piecewise constant-rate
// transmission family from the smoothing literature. window = N gives
// the paper's ideal smoothing; window = 1 degenerates to raw per-picture
// transmission; window = Len gives a single CBR rate (smoothest
// possible, with the largest buffering delay). No per-picture delay
// bound is enforced: the first picture of each window waits for the
// whole window to be encoded.
func PiecewiseCBR(tr *trace.Trace, window int) (*Schedule, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if window < 1 {
		return nil, fmt.Errorf("core: window %d < 1", window)
	}
	n := tr.Len()
	tau := tr.Tau
	N := window
	s := &Schedule{
		Trace: tr,
		Config: Config{
			K: N,
			H: N,
			D: math.Inf(1), // no delay bound is enforced
		},
		Rates:      make([]float64, n),
		Start:      make([]float64, n),
		Depart:     make([]float64, n),
		Delays:     make([]float64, n),
		LowerBound: make([]float64, n),
		UpperBound: make([]float64, n),
	}
	depart := 0.0
	for from := 0; from < n; from += N {
		to := from + N
		if to > n {
			to = n
		}
		var sum float64
		for j := from; j < to; j++ {
			sum += float64(tr.Sizes[j])
		}
		rate := sum / (float64(to-from) * tau)
		// The last picture of the block arrives by (to)τ in 0-based
		// indexing; the block starts after that and after the previous
		// block drains.
		start := math.Max(depart, float64(to)*tau)
		for j := from; j < to; j++ {
			s.Rates[j] = rate
			s.Start[j] = start
			start += float64(tr.Sizes[j]) / rate
			s.Depart[j] = start
			s.Delays[j] = start - float64(j)*tau
			s.UpperBound[j] = math.Inf(1)
		}
		depart = start
	}
	return s, nil
}
