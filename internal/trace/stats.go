package trace

import (
	"fmt"
	"math"
)

// Autocorrelation returns the sample autocorrelation of the picture-size
// sequence at lags 0..maxLag. MPEG traces are strongly periodic at the
// pattern length N — the I pictures recur every N — which is exactly the
// structure the smoothing algorithm's pattern estimator exploits.
func (t *Trace) Autocorrelation(maxLag int) ([]float64, error) {
	n := t.Len()
	if maxLag < 0 || maxLag >= n {
		return nil, fmt.Errorf("trace: autocorrelation lag %d out of range for %d pictures", maxLag, n)
	}
	mean := float64(t.TotalBits()) / float64(n)
	var c0 float64
	for _, s := range t.Sizes {
		d := float64(s) - mean
		c0 += d * d
	}
	out := make([]float64, maxLag+1)
	if c0 == 0 {
		out[0] = 1
		return out, nil // constant sequence: define acf as delta
	}
	for lag := 0; lag <= maxLag; lag++ {
		var c float64
		for i := 0; i+lag < n; i++ {
			c += (float64(t.Sizes[i]) - mean) * (float64(t.Sizes[i+lag]) - mean)
		}
		out[lag] = c / c0
	}
	return out, nil
}

// PatternRates returns the average bit rate of each pattern-aligned
// block of N pictures — the scene-level rate signal that remains after
// ideal smoothing ("the rate of the coded bit stream still fluctuates
// from pattern to pattern. Such fluctuations, however, are inherent
// characteristics of the video sequence").
func (t *Trace) PatternRates() []float64 {
	N := t.GOP.N
	var out []float64
	for from := 0; from < t.Len(); from += N {
		to := from + N
		if to > t.Len() {
			to = t.Len()
		}
		var sum int64
		for i := from; i < to; i++ {
			sum += t.Sizes[i]
		}
		out = append(out, float64(sum)/(float64(to-from)*t.Tau))
	}
	return out
}

// PeakToMean returns the ratio of the largest single-picture rate to the
// long-run mean rate: the burstiness the smoother removes.
func (t *Trace) PeakToMean() float64 {
	mean := t.MeanRate()
	if mean == 0 {
		return 0
	}
	return t.PeakPictureRate() / mean
}

// SceneRateSpread returns max/min over the pattern rates: the paper's
// observation that "the (smoothed) output rates from one scene to the
// next differ by about a factor of 3 in the worst case".
func (t *Trace) SceneRateSpread() float64 {
	rates := t.PatternRates()
	if len(rates) == 0 {
		return 0
	}
	min, max := math.Inf(1), 0.0
	for _, r := range rates {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	if min == 0 {
		return math.Inf(1)
	}
	return max / min
}
