package transport

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net"
	"testing"
	"testing/quick"
	"time"
)

// TestReadMessageOnRandomBytes: the wire parser must be total — any byte
// stream yields a message or an error, never a panic, and payload
// allocation is bounded by the announced-size check.
func TestReadMessageOnRandomBytes(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, int(n)%2048)
		rng.Read(data)
		r := bytes.NewReader(data)
		for {
			_, err := ReadMessage(r)
			if err != nil {
				return true
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestReceiveOnRandomBytes: the full receive loop is equally total.
func TestReceiveOnRandomBytes(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, int(n)%2048)
		rng.Read(data)
		Receive(context.Background(), bytes.NewReader(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestReceiverCutsOffStalledSender: a sender that goes silent — here
// mid-payload, the worst case, after the header promised more bytes —
// must not wedge the receiver forever. The configured read deadline cuts
// the stream with a timeout error.
func TestReceiverCutsOffStalledSender(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	go func() {
		WriteRate(client, RateNotification{Index: 0, Rate: 1e6})
		WritePictureHeader(client, 0, 0, 1024)
		client.Write(make([]byte, 100)) // then stall, 924 bytes short
	}()

	rc := &Receiver{ReadTimeout: 100 * time.Millisecond}
	done := make(chan error, 1)
	go func() {
		_, err := rc.Receive(context.Background(), server)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("stalled sender did not produce an error")
		}
		var nerr net.Error
		if !errors.As(err, &nerr) || !nerr.Timeout() {
			t.Fatalf("want a timeout error, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("read deadline did not fire: receiver wedged by stalled sender")
	}
}

// TestReceiverNoTimeoutStillWorks: the zero Receiver must behave like
// the plain Receive (no deadline armed, clean end honoured).
func TestReceiverNoTimeoutStillWorks(t *testing.T) {
	var buf bytes.Buffer
	WriteRate(&buf, RateNotification{Index: 0, Rate: 1e6})
	WriteEnd(&buf)
	rc := &Receiver{}
	report, err := rc.Receive(context.Background(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Notifications) != 1 {
		t.Fatalf("got %d notifications", len(report.Notifications))
	}
}

// TestCorruptedSessionStream: flip bytes in a valid session recording;
// the receiver must stop with an error or complete, never hang or panic.
func TestCorruptedSessionStream(t *testing.T) {
	sched, payloads := testSchedule(t, 18)
	var buf bytes.Buffer
	s := &Sender{TimeScale: 1e6} // effectively unpaced
	if err := s.Send(context.Background(), &buf, sched, payloads); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 100; trial++ {
		data := append([]byte(nil), clean...)
		for k := rng.Intn(8) + 1; k > 0; k-- {
			data[rng.Intn(len(data))] ^= byte(rng.Intn(255) + 1)
		}
		Receive(context.Background(), bytes.NewReader(data))
	}
}
