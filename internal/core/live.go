package core

import (
	"mpegsmooth/internal/mpeg"
)

// LiveSmoother is the incremental, transport-embeddable form of the
// smoothing algorithm: picture sizes are pushed one at a time as the
// encoder produces them, and rate decisions are returned as soon as
// their inputs are determined. A LiveSmoother produces bit-for-bit the
// same schedule as Smooth over the same data (asserted by tests), so the
// Theorem 1 guarantees carry over unchanged.
//
// LiveSmoother is a thin wrapper over Session, kept for API stability;
// new code should use Session directly (it adds the Observer hook and
// policy access). It is not safe for concurrent use.
type LiveSmoother struct {
	s *Session
}

// NewLiveSmoother prepares an incremental smoother for a stream with the
// given picture period and coding pattern.
func NewLiveSmoother(tau float64, gop mpeg.GOP, cfg Config) (*LiveSmoother, error) {
	s, err := NewSession(tau, gop, cfg)
	if err != nil {
		return nil, err
	}
	return &LiveSmoother{s: s}, nil
}

// Push appends the size of the next encoded picture (display order) and
// returns any decisions that became determined. It returns an error
// after Close or for a non-positive size.
func (l *LiveSmoother) Push(size int64) ([]Decision, error) { return l.s.Push(size) }

// Close marks the end of the picture sequence and returns all remaining
// decisions. Close is idempotent.
func (l *LiveSmoother) Close() []Decision { return l.s.Close() }

// Pushed returns the number of picture sizes received so far.
func (l *LiveSmoother) Pushed() int { return l.s.Pushed() }

// Pending returns the number of pushed pictures that do not yet have a
// rate decision.
func (l *LiveSmoother) Pending() int { return l.s.Pending() }
