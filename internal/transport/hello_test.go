package transport

import (
	"bytes"
	"math"
	"testing"

	"mpegsmooth/internal/mpeg"
)

func validHello() StreamHello {
	return StreamHello{
		Tau: 1.0 / 30, GOP: mpeg.GOP{M: 3, N: 9},
		K: 1, D: 0.2, Pictures: 270, PeakRate: 2.5e6,
	}
}

func TestHelloRoundTrip(t *testing.T) {
	withNonce := validHello()
	withNonce.Nonce = 0xFEEDFACE12345678
	withHMAC := withNonce
	withHMAC.Integrity = IntegrityHMAC
	for _, want := range []StreamHello{validHello(), withNonce, withHMAC} {
		var buf bytes.Buffer
		if err := NewFrameWriter(&buf).WriteHello(want); err != nil {
			t.Fatal(err)
		}
		msg, err := NewFrameReader(&buf).ReadMessage()
		if err != nil {
			t.Fatal(err)
		}
		got, ok := msg.(*StreamHello)
		if !ok {
			t.Fatalf("got %#v", msg)
		}
		if *got != want {
			t.Fatalf("hello round trip: got %+v, want %+v", *got, want)
		}
	}
}

func TestHelloValidation(t *testing.T) {
	cases := map[string]func(*StreamHello){
		"zero tau":      func(h *StreamHello) { h.Tau = 0 },
		"NaN tau":       func(h *StreamHello) { h.Tau = math.NaN() },
		"bad gop":       func(h *StreamHello) { h.GOP = mpeg.GOP{M: 2, N: 9} },
		"negative K":    func(h *StreamHello) { h.K = -1 },
		"zero D":        func(h *StreamHello) { h.D = 0 },
		"inf D":         func(h *StreamHello) { h.D = math.Inf(1) },
		"negative len":  func(h *StreamHello) { h.Pictures = -1 },
		"zero peak":     func(h *StreamHello) { h.PeakRate = 0 },
		"infinite peak": func(h *StreamHello) { h.PeakRate = math.Inf(1) },
		"bad integrity": func(h *StreamHello) { h.Integrity = IntegrityMode(7) },
	}
	for name, corrupt := range cases {
		h := validHello()
		corrupt(&h)
		var buf bytes.Buffer
		if err := NewFrameWriter(&buf).WriteHello(h); err == nil {
			t.Errorf("%s: write accepted %+v", name, h)
		}
	}
}

func TestResumeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := NewFrameWriter(&buf).WriteResume(StreamResume{Token: 0xDEADBEEFCAFE}); err != nil {
		t.Fatal(err)
	}
	msg, err := NewFrameReader(&buf).ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := msg.(*StreamResume)
	if !ok || got.Token != 0xDEADBEEFCAFE {
		t.Fatalf("got %#v", msg)
	}
	if err := NewFrameWriter(&bytes.Buffer{}).WriteResume(StreamResume{}); err == nil {
		t.Error("zero resume token accepted")
	}
}

func TestVerdictRoundTrip(t *testing.T) {
	for _, want := range []Verdict{
		{Code: Admitted, Available: 4.5e6},
		{Code: Admitted, Available: 4.5e6, ResumeToken: 42, NextIndex: 17},
		{Code: Admitted, Available: 4.5e6, ResumeToken: 42, NextIndex: 17, PrefixFNV: 0xCBF29CE484222325},
		{Code: RejectedCapacity, Available: 0},
		{Code: RejectedMalformed, Available: 1e7},
		{Code: RejectedBusy, Available: 2e6},
		{Code: AlreadyComplete, Available: 2e6, ResumeToken: 42, NextIndex: 270, PrefixFNV: 0x0123456789ABCDEF},
		{Code: Admitted, Available: 4.5e6, ResumeToken: 42, Epoch: 1},
		{Code: RejectedBusy, Available: 2e6, Epoch: 1<<63 - 1},
	} {
		var buf bytes.Buffer
		if err := NewFrameWriter(&buf).WriteVerdict(want); err != nil {
			t.Fatal(err)
		}
		got, err := NewFrameReader(&buf).ReadVerdict()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("verdict round trip: got %+v, want %+v", got, want)
		}
		if got.IsAdmitted() != (want.Code == Admitted) {
			t.Fatalf("IsAdmitted wrong for %v", want.Code)
		}
	}
}

func TestRedirectRoundTrip(t *testing.T) {
	for _, want := range []Redirect{
		{Addr: "10.0.0.7:4815"},
		{Addr: "beta.internal:4815", Epoch: 3},
	} {
		var buf bytes.Buffer
		if err := NewFrameWriter(&buf).WriteRedirect(want); err != nil {
			t.Fatal(err)
		}
		msg, err := NewFrameReader(&buf).ReadMessage()
		if err != nil {
			t.Fatal(err)
		}
		got, ok := msg.(*Redirect)
		if !ok {
			t.Fatalf("got %#v", msg)
		}
		if *got != want {
			t.Fatalf("redirect round trip: got %+v, want %+v", *got, want)
		}
	}
	if err := NewFrameWriter(&bytes.Buffer{}).WriteRedirect(Redirect{}); err == nil {
		t.Error("empty redirect address accepted")
	}
}

func TestVerdictValidation(t *testing.T) {
	var buf bytes.Buffer
	w := NewFrameWriter(&buf)
	if err := w.WriteVerdict(Verdict{Code: 9}); err == nil {
		t.Error("invalid code accepted")
	}
	if err := w.WriteVerdict(Verdict{Code: Admitted, Available: math.NaN()}); err == nil {
		t.Error("NaN capacity accepted")
	}
	if err := w.WriteVerdict(Verdict{Code: Admitted, Available: -1}); err == nil {
		t.Error("negative capacity accepted")
	}
	if err := w.WriteVerdict(Verdict{Code: Admitted, NextIndex: -1}); err == nil {
		t.Error("negative next index accepted")
	}
	// A non-verdict message where a verdict is expected is an error, not
	// a silent misparse.
	if err := w.WriteEnd(); err != nil {
		t.Fatal(err)
	}
	// The writer above advanced its sequence counter through the failed
	// validations' early returns only on success, so the end marker is
	// the first frame on the wire.
	if _, err := NewFrameReader(&buf).ReadVerdict(); err == nil {
		t.Error("end marker accepted as verdict")
	}
}

// TestReceiveRecordsHello: a plain receiver notes the declaration and
// carries on with the stream.
func TestReceiveRecordsHello(t *testing.T) {
	var buf bytes.Buffer
	w := NewFrameWriter(&buf)
	if err := w.WriteHello(validHello()); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEnd(); err != nil {
		t.Fatal(err)
	}
	report, err := Receive(t.Context(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if report.Hello == nil || *report.Hello != validHello() {
		t.Fatalf("hello not recorded: %+v", report.Hello)
	}
}
