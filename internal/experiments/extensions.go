package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"mpegsmooth/internal/core"
	"mpegsmooth/internal/metrics"
	"mpegsmooth/internal/mpeg"
	"mpegsmooth/internal/netsim"
	"mpegsmooth/internal/trace"
	"mpegsmooth/internal/vbv"
	"mpegsmooth/internal/video"
)

// VariantRow compares the basic and moving-average variants on one
// sequence (experiment Ext A, reproducing the Section 4.4 claim).
type VariantRow struct {
	Sequence string
	Basic    metrics.Measures
	Moving   metrics.Measures
}

// ExtA compares the two algorithm variants across the four sequences at
// the paper's recommended parameters (K=1, H=N, D=0.2), one SmoothAll
// batch per policy.
func ExtA(pictures int, seed int64, opts ...SweepOption) ([]VariantRow, error) {
	sc := applySweepOptions(opts)
	seqs, err := Sequences(pictures, seed)
	if err != nil {
		return nil, err
	}
	base := core.Config{K: 1, H: 0, D: 0.2, Policy: core.BasicPolicy{}}
	mb, err := batchMeasures(seqs, base, sc.parallelism)
	if err != nil {
		return nil, err
	}
	mod := base
	mod.Policy = core.MovingAveragePolicy{}
	mm, err := batchMeasures(seqs, mod, sc.parallelism)
	if err != nil {
		return nil, err
	}
	rows := make([]VariantRow, len(seqs))
	for i, tr := range seqs {
		rows[i] = VariantRow{Sequence: tr.Name, Basic: mb[i], Moving: mm[i]}
	}
	return rows, nil
}

// MuxRow is one point of the statistical-multiplexing experiment
// (Ext B): loss probability at a given number of multiplexed streams.
type MuxRow struct {
	Streams      int
	RawLoss      float64
	SmoothedLoss float64
}

// ExtB measures cell-loss probability for n raw vs n smoothed streams
// through a finite-buffer multiplexer whose link has fixed per-stream
// headroom — the motivation experiment of refs [10, 11].
func ExtB(maxStreams int, seed int64) ([]MuxRow, error) {
	if maxStreams < 2 {
		return nil, fmt.Errorf("experiments: need at least 2 streams")
	}
	// Independent single-scene sources: the discriminator is the I≫B
	// picture-scale fluctuation that smoothing removes.
	var raws, smooths []*metrics.StepFunc
	var meanSum float64
	for i := 0; i < maxStreams; i++ {
		tr, err := trace.Generate(trace.SynthConfig{
			Name:  fmt.Sprintf("mux-%d", i),
			GOP:   mpeg.GOP{M: 3, N: 9},
			IBase: 210_000, PBase: 95_000, BBase: 32_000,
			Scenes: []trace.ScenePhase{{Pictures: 135, Complexity: 1, Motion: 0.9}},
			Seed:   seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		meanSum += tr.MeanRate()
		raw, err := rawRate(tr)
		if err != nil {
			return nil, err
		}
		raws = append(raws, raw)
		s, err := core.Smooth(tr, core.Config{K: 1, H: tr.GOP.N, D: 0.2})
		if err != nil {
			return nil, err
		}
		sm, err := s.RateFunc()
		if err != nil {
			return nil, err
		}
		smooths = append(smooths, sm)
	}
	meanPerStream := meanSum / float64(maxStreams)

	var rows []MuxRow
	for n := 2; n <= maxStreams; n++ {
		offsets := make([]float64, n)
		for i := range offsets {
			offsets[i] = float64(i) * 0.011
		}
		link := meanPerStream * float64(n) * 1.25
		run := func(rates []*metrics.StepFunc) (float64, error) {
			st, err := netsim.Run(netsim.RunConfig{
				Rates: rates[:n], Offsets: offsets,
				LinkRate: link, BufferCells: 100,
			})
			if err != nil {
				return 0, err
			}
			return st.LossProbability(), nil
		}
		rawLoss, err := run(raws)
		if err != nil {
			return nil, err
		}
		smoothLoss, err := run(smooths)
		if err != nil {
			return nil, err
		}
		rows = append(rows, MuxRow{Streams: n, RawLoss: rawLoss, SmoothedLoss: smoothLoss})
	}
	return rows, nil
}

func rawRate(tr *trace.Trace) (*metrics.StepFunc, error) {
	times := make([]float64, tr.Len())
	values := make([]float64, tr.Len())
	for j := 0; j < tr.Len(); j++ {
		times[j] = float64(j) * tr.Tau
		values[j] = float64(tr.Sizes[j]) / tr.Tau
	}
	return metrics.NewStepFunc(times, values, tr.Duration())
}

// EstimatorRow is one point of the estimator ablation (Ext C).
type EstimatorRow struct {
	Estimator string
	Measures  metrics.Measures
	MaxDelay  float64
}

// ExtC compares size estimators on Driving1 at the paper's parameters.
// The delay bound holds for ALL of them (Theorem 1 does not need
// accurate estimates); the measures show how much estimate quality buys.
func ExtC(pictures int, seed int64) ([]EstimatorRow, error) {
	tr, err := trace.Driving1(pictures, seed)
	if err != nil {
		return nil, err
	}
	var rows []EstimatorRow
	for _, est := range []core.Estimator{
		core.PatternEstimator{},
		core.TypeMeanEstimator{},
		core.EWMAEstimator{Alpha: 0.5},
		core.OracleEstimator{},
	} {
		cfg := core.Config{K: 1, H: tr.GOP.N, D: 0.2, Estimator: est}
		m, s, err := MeasuresFor(tr, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, EstimatorRow{Estimator: est.Name(), Measures: m, MaxDelay: s.MaxDelay()})
	}
	return rows, nil
}

// ViolationRow is one point of the K=0 experiment (Ext D).
type ViolationRow struct {
	K          int
	D          float64
	Violations int
	MaxDelay   float64
}

// ExtD reproduces the Section 5.2 observation: with K=0 and very small
// slack the delay bound can be violated; with K=1 it never is.
func ExtD(pictures int, seed int64) ([]ViolationRow, error) {
	tr, err := trace.Driving1(pictures, seed)
	if err != nil {
		return nil, err
	}
	var rows []ViolationRow
	tau := tr.Tau
	for _, c := range []struct {
		k     int
		slack float64
	}{
		{0, 0.001}, {0, 0.01}, {0, 0.0667}, {0, 0.1333},
		{1, 0.001}, {1, 0.01}, {1, 0.0667}, {1, 0.1333},
	} {
		d := float64(c.k+1)*tau + c.slack
		s, err := core.Smooth(tr, core.Config{K: c.k, H: tr.GOP.N, D: d})
		if err != nil {
			return nil, err
		}
		ds := metrics.SummarizeDelays(s.Delays, d)
		rows = append(rows, ViolationRow{K: c.k, D: d, Violations: ds.Violations, MaxDelay: ds.Max})
	}
	return rows, nil
}

// VBVRow is one point of the decoder-buffer experiment (Ext F).
type VBVRow struct {
	D              float64
	StartupDelay   float64
	PeakBufferBits float64
}

// ExtF analyzes the MPEG model-decoder (VBV) requirements a smoothed
// stream imposes as the delay bound varies: the minimum decoder start-up
// delay equals the schedule's maximum picture delay (bounded by D per
// Theorem 1), and the peak buffer grows with it — the decoder-side face
// of the smoothing trade-off.
func ExtF(pictures int, seed int64) ([]VBVRow, error) {
	tr, err := trace.Driving1(pictures, seed)
	if err != nil {
		return nil, err
	}
	var rows []VBVRow
	for _, d := range []float64{0.0667, 0.1, 0.1333, 0.2, 0.2667, 0.3333, 0.4} {
		s, err := core.Smooth(tr, core.Config{K: 1, H: tr.GOP.N, D: d})
		if err != nil {
			return nil, err
		}
		a, err := vbv.Analyze(s)
		if err != nil {
			return nil, err
		}
		rows = append(rows, VBVRow{D: d, StartupDelay: a.StartupDelay, PeakBufferBits: a.PeakBuffer})
	}
	return rows, nil
}

// AlgoRow is one line of the algorithm-comparison table (Ext I).
type AlgoRow struct {
	Algorithm   string
	MaxDelay    float64
	PeakRate    float64
	StdDev      float64
	RateChanges int
}

// ExtI lines up the whole algorithm family on Driving1 at a common
// setting: the paper's basic and moving-average variants (bounded delay,
// online), piecewise-CBR window averaging at several windows (unbounded
// delay, the PCRTT-style alternative), ideal smoothing, and the offline
// taut-string optimum.
func ExtI(pictures int, seed int64) ([]AlgoRow, error) {
	tr, err := trace.Driving1(pictures, seed)
	if err != nil {
		return nil, err
	}
	var rows []AlgoRow
	addSchedule := func(name string, s *core.Schedule) error {
		f, err := s.RateFunc()
		if err != nil {
			return err
		}
		rows = append(rows, AlgoRow{
			Algorithm:   name,
			MaxDelay:    s.MaxDelay(),
			PeakRate:    f.Max(),
			StdDev:      f.Std(),
			RateChanges: f.Changes(metrics.RateChangeTolerance),
		})
		return nil
	}
	basic, err := core.Smooth(tr, core.Config{K: 1, H: tr.GOP.N, D: 0.2})
	if err != nil {
		return nil, err
	}
	if err := addSchedule("basic K=1 D=0.2", basic); err != nil {
		return nil, err
	}
	moving, err := core.Smooth(tr, core.Config{K: 1, H: tr.GOP.N, D: 0.2, Variant: core.MovingAverage})
	if err != nil {
		return nil, err
	}
	if err := addSchedule("moving-average D=0.2", moving); err != nil {
		return nil, err
	}
	for _, w := range []int{1, tr.GOP.N, 3 * tr.GOP.N, 10 * tr.GOP.N} {
		s, err := core.PiecewiseCBR(tr, w)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("piecewise-CBR W=%d", w)
		if w == tr.GOP.N {
			name = "ideal (W=N)"
		}
		if err := addSchedule(name, s); err != nil {
			return nil, err
		}
	}
	off, err := core.OfflineSmooth(tr, 0.2)
	if err != nil {
		return nil, err
	}
	f, err := off.RateFunc()
	if err != nil {
		return nil, err
	}
	maxD := 0.0
	for _, d := range off.Delays {
		if d > maxD {
			maxD = d
		}
	}
	rows = append(rows, AlgoRow{
		Algorithm:   "offline optimum D=0.2",
		MaxDelay:    maxD,
		PeakRate:    f.Max(),
		StdDev:      f.Std(),
		RateChanges: f.Changes(metrics.RateChangeTolerance),
	})
	return rows, nil
}

// BufferRow is one point of the buffer-dimensioning experiment (Ext H).
type BufferRow struct {
	BufferCells  int
	RawLoss      float64
	SmoothedLoss float64
}

// ExtH sweeps the multiplexer buffer size at a fixed multiplexing level,
// the classic buffer-dimensioning view of the smoothing gain: smoothed
// streams reach negligible loss with a far smaller switch buffer.
func ExtH(streams int, seed int64) ([]BufferRow, error) {
	if streams < 2 {
		return nil, fmt.Errorf("experiments: need at least 2 streams")
	}
	var raws, smooths []*metrics.StepFunc
	var meanSum float64
	for i := 0; i < streams; i++ {
		tr, err := trace.Generate(trace.SynthConfig{
			Name:  fmt.Sprintf("buf-%d", i),
			GOP:   mpeg.GOP{M: 3, N: 9},
			IBase: 210_000, PBase: 95_000, BBase: 32_000,
			Scenes: []trace.ScenePhase{{Pictures: 135, Complexity: 1, Motion: 0.9}},
			Seed:   seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		meanSum += tr.MeanRate()
		raw, err := rawRate(tr)
		if err != nil {
			return nil, err
		}
		raws = append(raws, raw)
		s, err := core.Smooth(tr, core.Config{K: 1, H: tr.GOP.N, D: 0.2})
		if err != nil {
			return nil, err
		}
		sm, err := s.RateFunc()
		if err != nil {
			return nil, err
		}
		smooths = append(smooths, sm)
	}
	link := meanSum * 1.25
	offsets := make([]float64, streams)
	for i := range offsets {
		offsets[i] = float64(i) * 0.011
	}
	var rows []BufferRow
	for _, buf := range []int{0, 10, 30, 100, 300, 1000, 3000} {
		run := func(rates []*metrics.StepFunc) (float64, error) {
			st, err := netsim.Run(netsim.RunConfig{
				Rates: rates, Offsets: offsets, LinkRate: link, BufferCells: buf,
			})
			if err != nil {
				return 0, err
			}
			return st.LossProbability(), nil
		}
		rawLoss, err := run(raws)
		if err != nil {
			return nil, err
		}
		smoothLoss, err := run(smooths)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BufferRow{BufferCells: buf, RawLoss: rawLoss, SmoothedLoss: smoothLoss})
	}
	return rows, nil
}

// QuantRow is one point of the lossy-quantization demonstration (Ext G).
type QuantRow struct {
	Scale  int32
	Bits   int64
	PSNRdB float64
}

// ExtG reproduces the paper's Section 3.1 observation about why lossy
// rate control must not be used to flatten I pictures: "We experimented
// with changing the quantizer scale of an I picture from 4 to 30. The
// size of the picture is reduced from 282,976 bits to 75,960 bits. But
// the picture at the coarser quantizer scale (30) is grainy, fuzzy, and
// has visible blocking effects." We encode the same synthetic frame as
// an I picture across quantizer scales and report coded size and PSNR.
func ExtG(width, height int, seed int64) ([]QuantRow, error) {
	synth, err := video.NewSynthesizer(video.DrivingScript(width, height, 3, seed))
	if err != nil {
		return nil, err
	}
	frame := synth.Next()
	gop := mpeg.GOP{M: 1, N: 1} // all-I encoding
	var rows []QuantRow
	for _, scale := range []int32{2, 4, 8, 15, 22, 30} {
		cfg := mpeg.DefaultConfig(width, height, gop)
		cfg.IQuant = scale
		enc, err := mpeg.NewEncoder(cfg)
		if err != nil {
			return nil, err
		}
		seq, err := enc.EncodeSequence([]*video.Frame{frame})
		if err != nil {
			return nil, err
		}
		dec := mpeg.NewDecoder()
		out, err := dec.Decode(seq.Data)
		if err != nil {
			return nil, err
		}
		psnr, err := video.PSNR(frame, out.Frames[0])
		if err != nil {
			return nil, err
		}
		rows = append(rows, QuantRow{Scale: scale, Bits: seq.Pictures[0].Bits, PSNRdB: psnr})
	}
	return rows, nil
}

// PipelineResult is the end-to-end experiment (Ext E): a real coded
// stream from the internal MPEG encoder, inspected, smoothed, verified.
type PipelineResult struct {
	Pictures            int
	StreamBits          int64
	IMean, PMean, BMean float64
	Measures            metrics.Measures
	MaxDelay            float64
	UnsmoothedPeak      float64
	SmoothedPeak        float64
}

// ExtE encodes synthetic Driving-like video with the simplified MPEG
// codec, extracts the per-picture sizes by stream inspection, smooths
// them, and reports the measures.
func ExtE(width, height, frames int, seed int64) (*PipelineResult, error) {
	synth, err := video.NewSynthesizer(video.DrivingScript(width, height, frames, seed))
	if err != nil {
		return nil, err
	}
	var vf []*video.Frame
	for !synth.Done() {
		vf = append(vf, synth.Next())
	}
	gop := mpeg.GOP{M: 3, N: 9}
	enc, err := mpeg.NewEncoder(mpeg.DefaultConfig(width, height, gop))
	if err != nil {
		return nil, err
	}
	seq, err := enc.EncodeSequence(vf)
	if err != nil {
		return nil, err
	}
	info, err := mpeg.Inspect(seq.Data)
	if err != nil {
		return nil, err
	}
	sizes, err := info.SizesInDisplayOrder()
	if err != nil {
		return nil, err
	}
	tr, err := trace.FromPictureSizes("encoded", 1.0/30, gop, sizes)
	if err != nil {
		return nil, err
	}
	m, s, err := MeasuresFor(tr, core.Config{K: 1, H: gop.N, D: 0.2})
	if err != nil {
		return nil, err
	}
	st := tr.Stats()
	res := &PipelineResult{
		Pictures:       tr.Len(),
		StreamBits:     int64(len(seq.Data)) * 8,
		IMean:          st[mpeg.TypeI].Mean,
		PMean:          st[mpeg.TypeP].Mean,
		BMean:          st[mpeg.TypeB].Mean,
		Measures:       m,
		MaxDelay:       s.MaxDelay(),
		UnsmoothedPeak: tr.PeakPictureRate(),
	}
	rf, err := s.RateFunc()
	if err != nil {
		return nil, err
	}
	res.SmoothedPeak = rf.Max()
	return res, nil
}

// ScaleRow is one point of the thousand-stream statistical-multiplexing
// experiment (Ext J): the admissible load (link utilization at which the
// loss target is just met) for raw vs smoothed video at one multiplexing
// level and delay bound.
type ScaleRow struct {
	Streams int
	D       float64
	// LossTarget is the cell-loss probability the admission is sized to.
	LossTarget float64
	// RawLoad and SmoothedLoad are aggregate-mean-rate/link-capacity at
	// the smallest capacity meeting the loss target (higher = better).
	RawLoad      float64
	SmoothedLoad float64
	// Gain is SmoothedLoad/RawLoad: the admissible-load multiplier that
	// smoothing to delay bound D buys at this scale.
	Gain float64
	// Events is the number of engine events the smoothed bisection's
	// final run fired (the cost of one fluid evaluation at this scale).
	Events int
}

// ExtJConfig parameterizes Ext J.
type ExtJConfig struct {
	// Streams lists the multiplexing levels to evaluate (default
	// 1000, 3000, 10000).
	Streams []int
	// Ds lists the smoothing delay bounds to evaluate (default
	// 0.0667, 0.1333, 0.2667).
	Ds []float64
	// LossTarget is the admission loss criterion (default 1e-3).
	LossTarget float64
	// BisectIters bounds the capacity bisection (default 9: capacity
	// resolved to ~0.2% of the search interval).
	BisectIters int
	// Seed drives trace generation, offsets, and the LRD background.
	Seed int64
}

func (c *ExtJConfig) setDefaults() {
	if len(c.Streams) == 0 {
		c.Streams = []int{1000, 3000, 10000}
	}
	if len(c.Ds) == 0 {
		c.Ds = []float64{0.0667, 0.1333, 0.2667}
	}
	if c.LossTarget == 0 {
		c.LossTarget = 1e-3
	}
	if c.BisectIters == 0 {
		c.BisectIters = 9
	}
}

// stepMean is the time-average of a rate function over [Times[0], End).
func stepMean(f *metrics.StepFunc) float64 {
	var area float64
	for i, t := range f.Times {
		end := f.End
		if i+1 < len(f.Times) {
			end = f.Times[i+1]
		}
		area += f.Values[i] * (end - t)
	}
	span := f.End - f.Times[0]
	if span <= 0 {
		return 0
	}
	return area / span
}

// extJPoolSize is the number of distinct video traces Ext J replicates
// across the stream population (distinct seeds; phases decorrelated per
// stream by offset).
const extJPoolSize = 64

// ExtJ runs the large-scale statistical-multiplexing experiment on the
// fluid engine: n video streams (raw vs smoothed to delay bound D) plus
// ~10% long-range-dependent on/off-Pareto background connections behind
// dual-rate token-bucket shapers share one finite-buffer link. For each
// (n, D) it bisects the link capacity to the smallest value meeting the
// loss target and reports the admissible load — the utilization an
// admission controller could run the link at. The smoothing gain of the
// paper's motivation experiment, measured where it matters: at
// thousands of multiplexed sources, a scale the per-cell simulator
// cannot reach.
func ExtJ(cfg ExtJConfig) ([]ScaleRow, error) {
	cfg.setDefaults()
	// Trace pool: distinct single-scene sources, smoothed once per D.
	var pool []*trace.Trace
	raws := make([]*metrics.StepFunc, extJPoolSize)
	smooths := make(map[float64][]*metrics.StepFunc, len(cfg.Ds))
	for i := 0; i < extJPoolSize; i++ {
		tr, err := trace.Generate(trace.SynthConfig{
			Name:  fmt.Sprintf("scale-%d", i),
			GOP:   mpeg.GOP{M: 3, N: 9},
			IBase: 210_000, PBase: 95_000, BBase: 32_000,
			Scenes: []trace.ScenePhase{{Pictures: 270, Complexity: 1, Motion: 0.9}},
			Seed:   cfg.Seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		pool = append(pool, tr)
		if raws[i], err = rawRate(tr); err != nil {
			return nil, err
		}
	}
	for _, d := range cfg.Ds {
		fns := make([]*metrics.StepFunc, extJPoolSize)
		for i, tr := range pool {
			s, err := core.Smooth(tr, core.Config{K: 1, H: tr.GOP.N, D: d})
			if err != nil {
				return nil, err
			}
			if fns[i], err = s.RateFunc(); err != nil {
				return nil, err
			}
		}
		smooths[d] = fns
	}
	duration := pool[0].Duration()

	var rows []ScaleRow
	for _, n := range cfg.Streams {
		if n < extJPoolSize {
			return nil, fmt.Errorf("experiments: %d streams below pool size %d", n, extJPoolSize)
		}
		// Per-level RNG: stream offsets and background sources are a
		// deterministic function of (seed, n) only, so adding levels to
		// cfg.Streams never perturbs existing rows.
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(n)*0x9e3779b9))
		nBg := n / 10
		nVideo := n - nBg
		offsets := make([]float64, nVideo)
		for i := range offsets {
			offsets[i] = rng.Float64() * 3
		}
		// LRD background: on/off-Pareto connections behind dual-rate
		// token-bucket shapers (limited-bandwidth access links).
		bgPeak := 2 * stepMean(raws[0])
		background := make([]netsim.FluidStream, nBg)
		var meanBg float64
		for i := range background {
			bg, err := trace.OnOffPareto(trace.OnOffParetoConfig{
				PeakRate: bgPeak, MeanOn: 0.3, MeanOff: 0.7,
				Duration: duration, Seed: rng.Int63(),
			})
			if err != nil {
				return nil, err
			}
			background[i] = netsim.FluidStream{
				Rate:   bg,
				Offset: rng.Float64() * 3,
				Shaper: &netsim.ShaperConfig{
					Sustained: 0.6 * bgPeak,
					Peak:      bgPeak,
					BurstBits: 0.05 * bgPeak,
				},
			}
			meanBg += stepMean(bg)
		}
		evaluate := func(fns []*metrics.StepFunc, link float64) (*netsim.FluidResult, error) {
			streams := make([]netsim.FluidStream, 0, n)
			for i := 0; i < nVideo; i++ {
				streams = append(streams, netsim.FluidStream{
					Rate: fns[i%extJPoolSize], Offset: offsets[i],
				})
			}
			streams = append(streams, background...)
			return netsim.RunFluid(netsim.FluidConfig{
				Streams:     streams,
				LinkRate:    link,
				BufferCells: 2 * n, // constant per-stream buffering across levels
			})
		}
		// Admissible capacity: exponential search up from the aggregate
		// mean until the loss target is met, then bisect. Growing the
		// bracket from the mean (rather than starting at the aggregate
		// peak) keeps the capacity resolution proportional to the answer,
		// and identical across raw and smoothed — the admissible-load gap
		// between them is small at high multiplexing levels, and a
		// variant-dependent bracket width would drown it in search error.
		admissible := func(fns []*metrics.StepFunc) (load float64, events int, err error) {
			var meanAgg, peakAgg float64
			for i := 0; i < nVideo; i++ {
				meanAgg += stepMean(fns[i%extJPoolSize])
				peakAgg += fns[i%extJPoolSize].Max()
			}
			meanAgg += meanBg
			peakAgg += float64(nBg) * bgPeak
			lossAt := func(link float64) (float64, error) {
				res, err := evaluate(fns, link)
				if err != nil {
					return 0, err
				}
				events = res.Events
				return res.LossProbability(), nil
			}
			lo, hi := meanAgg, meanAgg
			for step := meanAgg * 0.02; hi < peakAgg; step *= 2 {
				hi = lo + step
				if hi >= peakAgg {
					hi = peakAgg // loss is certainly zero here
					break
				}
				p, err := lossAt(hi)
				if err != nil {
					return 0, 0, err
				}
				if p <= cfg.LossTarget {
					break
				}
				lo = hi
			}
			for it := 0; it < cfg.BisectIters; it++ {
				mid := (lo + hi) / 2
				p, err := lossAt(mid)
				if err != nil {
					return 0, 0, err
				}
				if p <= cfg.LossTarget {
					hi = mid
				} else {
					lo = mid
				}
			}
			return meanAgg / hi, events, nil
		}
		for _, d := range cfg.Ds {
			rawLoad, _, err := admissible(raws)
			if err != nil {
				return nil, err
			}
			smoothLoad, events, err := admissible(smooths[d])
			if err != nil {
				return nil, err
			}
			rows = append(rows, ScaleRow{
				Streams:      n,
				D:            d,
				LossTarget:   cfg.LossTarget,
				RawLoad:      rawLoad,
				SmoothedLoad: smoothLoad,
				Gain:         smoothLoad / rawLoad,
				Events:       events,
			})
		}
	}
	return rows, nil
}

// WriteScaleCSV renders Ext J rows in the results/extJ_scale.csv format.
// The CLI and the seeded-determinism test share this writer, so
// "byte-identical CSV" is a property of ExtJ itself, not of formatting.
func WriteScaleCSV(w io.Writer, rows []ScaleRow) error {
	if _, err := fmt.Fprintln(w, "streams,D_seconds,loss_target,raw_load,smoothed_load,admission_gain,fluid_events"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%d,%.4f,%g,%.6f,%.6f,%.4f,%d\n",
			r.Streams, r.D, r.LossTarget, r.RawLoad, r.SmoothedLoad, r.Gain, r.Events); err != nil {
			return err
		}
	}
	return nil
}
