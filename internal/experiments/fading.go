package experiments

import (
	"fmt"
	"io"

	"mpegsmooth/internal/core"
	"mpegsmooth/internal/netsim"
	"mpegsmooth/internal/trace"
)

// Fading-channel sweep: the paper's admissible-load story carried onto
// a lossy channel. Admission reserves each stream's traffic descriptor
// — its peak rate — so the raw schedule's reservation is the I-picture
// burst rate while the smoothed schedule's is the far lower smoothed
// peak: that ratio is the Section 5 admission gain. For each fading
// regime (coherence time × outage probability) the sweep finds, per
// schedule, the minimum provisioning at or above that reservation
// which still delivers a target fraction of pictures by the playout
// deadline when lost packets are retransmitted under the deadline —
// the ARQ discipline the datagram transport runs live. Fading taxes
// the gain asymmetrically: raw's reservation is so over-provisioned
// that recovery headroom is free, while smoothing spent both the
// bandwidth headroom AND the delay budget — so at fade regimes
// approaching the delay bound, the smoothed stream needs extra
// provisioning first, and the gain decays before collapsing outright.

// FadingRow is one point of the sweep. Loads are mean-rate utilization
// of the minimum feasible link (0 when no provisioning meets the
// survival target: the fade outlasts the playout slack, and no amount
// of bandwidth buys back time — Gain is 0 there too, undefined).
// Gain is SmoothedLoad/RawLoad, the admission gain fading leaves
// standing.
type FadingRow struct {
	Coherence    float64 // fading block length, seconds
	OutageProb   float64 // per-block outage probability
	RawLoad      float64
	SmoothedLoad float64
	Gain         float64
}

// Sweep constants: pictures must survive at the paper's delay bound
// plus a loss-recovery allowance, at least survivalTarget of them, on
// average across independent fading realizations.
const (
	fadingRetxBudget     = 0.1
	fadingSurvivalTarget = 0.95
	fadingRealizations   = 5
)

// FadingSweep runs Driving1 at the paper's parameters (K=1, H=N,
// D=0.2) across the coherence × outage grid. Everything downstream of
// the schedule is deterministic — packet fates come from the
// (seed, block) hash, not an RNG — so equal seeds reproduce the CSV
// byte for byte.
func FadingSweep(pictures int, seed int64) ([]FadingRow, error) {
	tr, s, err := driving1Schedule(pictures, seed)
	if err != nil {
		return nil, err
	}
	raw, smooth := fadingPlans(tr, s)
	mean := tr.MeanRate()
	// Admission reserves each schedule's own traffic descriptor — its
	// peak rate — so the descriptor is the floor of the provisioning
	// search: fading can only demand headroom on top of it. The ceiling
	// is the raw peak with generous margin; a regime infeasible there
	// is infeasible at any realistic provisioning.
	rawPeak := rawPeakRate(tr)
	smoothPeak := s.PeakRate()
	ceiling := rawPeak * 4

	coherences := []float64{0.025, 0.05, 0.1, 0.2, 0.4}
	outages := []float64{0, 0.02, 0.05, 0.1, 0.2}
	var rows []FadingRow
	for _, coh := range coherences {
		for _, out := range outages {
			row := FadingRow{Coherence: coh, OutageProb: out}
			rawMin, err := minFeasibleLink(raw, rawPeak, ceiling, seed, coh, out)
			if err != nil {
				return nil, err
			}
			smoothMin, err := minFeasibleLink(smooth, smoothPeak, ceiling, seed, coh, out)
			if err != nil {
				return nil, err
			}
			if rawMin > 0 {
				row.RawLoad = mean / rawMin
			}
			if smoothMin > 0 {
				row.SmoothedLoad = mean / smoothMin
			}
			if row.RawLoad > 0 {
				row.Gain = row.SmoothedLoad / row.RawLoad
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// survivalAt averages picture survival over the fading realizations at
// one candidate link rate.
func survivalAt(plans []netsim.FadingPicture, link float64, seed int64,
	coherence, outageProb float64) (float64, error) {
	total := 0.0
	for r := 0; r < fadingRealizations; r++ {
		res, err := netsim.RunFading(netsim.FadingChannelConfig{
			LinkRate:   link,
			Seed:       seed*1000 + int64(r),
			Coherence:  coherence,
			OutageProb: outageProb,
		}, plans)
		if err != nil {
			return 0, err
		}
		total += res.Survival()
	}
	return total / fadingRealizations, nil
}

// minFeasibleLink binary-searches the smallest link rate — at or above
// the schedule's own peak-rate reservation — whose average survival
// meets the target, or 0 when even the ceiling fails: a fade regime
// that outlasts the playout slack cannot be provisioned away.
func minFeasibleLink(plans []netsim.FadingPicture, peak, ceiling float64,
	seed int64, coherence, outageProb float64) (float64, error) {
	hi := ceiling
	if sv, err := survivalAt(plans, hi, seed, coherence, outageProb); err != nil {
		return 0, err
	} else if sv < fadingSurvivalTarget {
		return 0, nil
	}
	lo := peak
	if sv, err := survivalAt(plans, lo, seed, coherence, outageProb); err != nil {
		return 0, err
	} else if sv >= fadingSurvivalTarget {
		// The bare reservation already survives this regime.
		return lo, nil
	}
	for hi-lo > 0.005*lo {
		mid := (lo + hi) / 2
		sv, err := survivalAt(plans, mid, seed, coherence, outageProb)
		if err != nil {
			return 0, err
		}
		if sv >= fadingSurvivalTarget {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// fadingPlans builds the per-picture transmission plans. Both
// schedules face the same playout deadline: the paper's delay bound D
// past arrival, plus the shared retransmission budget.
func fadingPlans(tr *trace.Trace, s *core.Schedule) (raw, smooth []netsim.FadingPicture) {
	tau := tr.Tau
	n := tr.Len()
	raw = make([]netsim.FadingPicture, n)
	smooth = make([]netsim.FadingPicture, n)
	for i := 0; i < n; i++ {
		bits := float64(tr.Sizes[i])
		deadline := float64(i)*tau + s.Config.D + fadingRetxBudget
		// Raw: the picture crosses the wire during its own slot at its
		// natural burst rate S_i/τ — the unsmoothed schedule, exactly the
		// rawRate baseline of the multiplexing experiments.
		raw[i] = netsim.FadingPicture{
			Bits: bits, Start: float64(i) * tau, Rate: bits / tau, Deadline: deadline,
		}
		smooth[i] = netsim.FadingPicture{
			Bits: bits, Start: s.Start[i], Rate: s.Rates[i], Deadline: deadline,
		}
	}
	return raw, smooth
}

func rawPeakRate(tr *trace.Trace) float64 {
	peak := 0.0
	for _, s := range tr.Sizes {
		if r := float64(s) / tr.Tau; r > peak {
			peak = r
		}
	}
	return peak
}

func driving1Schedule(pictures int, seed int64) (*trace.Trace, *core.Schedule, error) {
	tr, err := trace.Driving1(pictures, seed)
	if err != nil {
		return nil, nil, err
	}
	s, err := core.Smooth(tr, core.Config{K: 1, H: tr.GOP.N, D: 0.2})
	if err != nil {
		return nil, nil, err
	}
	return tr, s, nil
}

// WriteFadingCSV renders the sweep in the results/fading_sweep.csv
// format. The CLI and the seeded-determinism test share this writer, so
// byte-identical output is a property of FadingSweep itself.
func WriteFadingCSV(w io.Writer, rows []FadingRow) error {
	if _, err := fmt.Fprintln(w,
		"coherence_s,outage_prob,raw_load,smoothed_load,admission_gain"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%.3f,%.2f,%.6f,%.6f,%.4f\n",
			r.Coherence, r.OutageProb, r.RawLoad, r.SmoothedLoad, r.Gain); err != nil {
			return err
		}
	}
	return nil
}
