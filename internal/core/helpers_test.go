package core

import (
	"testing"

	"mpegsmooth/internal/metrics"
	"mpegsmooth/internal/trace"
)

// measuresFor runs the algorithm and evaluates the paper's four measures
// against ideal smoothing with the (N−K)τ shift of Eq. 16.
func measuresFor(t testing.TB, tr *trace.Trace, cfg Config) metrics.Measures {
	t.Helper()
	s, err := Smooth(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := Ideal(tr)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := s.RateFunc()
	if err != nil {
		t.Fatal(err)
	}
	idf, err := ideal.RateFunc()
	if err != nil {
		t.Fatal(err)
	}
	shift := float64(tr.GOP.N-cfg.K) * tr.Tau
	m, err := metrics.Compute(rf, idf, shift, tr.Duration()+cfg.D)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
