package trace

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mpegsmooth/internal/mpeg"
)

// WriteCSV serializes the trace as CSV with metadata comment lines:
//
//	# name=Driving1 tau=0.033333 M=3 N=9
//	index,type,bits
//	0,I,214016
//	...
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# name=%s tau=%.9f M=%d N=%d\n", sanitizeName(t.Name), t.Tau, t.GOP.M, t.GOP.N); err != nil {
		return err
	}
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"index", "type", "bits"}); err != nil {
		return err
	}
	for i, s := range t.Sizes {
		rec := []string{
			strconv.Itoa(i),
			t.TypeOf(i).String(),
			strconv.FormatInt(s, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

func sanitizeName(name string) string {
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\n' || r == '\r' {
			return '_'
		}
		return r
	}, name)
}

// ReadCSV parses a trace written by WriteCSV. Picture types in the file
// are validated against the GOP pattern.
func ReadCSV(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	meta, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("trace: missing metadata line: %w", err)
	}
	t := &Trace{}
	if !strings.HasPrefix(meta, "#") {
		return nil, fmt.Errorf("trace: metadata line must start with #, got %q", meta)
	}
	for _, field := range strings.Fields(strings.TrimPrefix(meta, "#")) {
		kv := strings.SplitN(field, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("trace: bad metadata field %q", field)
		}
		switch kv[0] {
		case "name":
			t.Name = kv[1]
		case "tau":
			if t.Tau, err = strconv.ParseFloat(kv[1], 64); err != nil {
				return nil, fmt.Errorf("trace: bad tau: %w", err)
			}
		case "M":
			if t.GOP.M, err = strconv.Atoi(kv[1]); err != nil {
				return nil, fmt.Errorf("trace: bad M: %w", err)
			}
		case "N":
			if t.GOP.N, err = strconv.Atoi(kv[1]); err != nil {
				return nil, fmt.Errorf("trace: bad N: %w", err)
			}
		default:
			return nil, fmt.Errorf("trace: unknown metadata key %q", kv[0])
		}
	}
	cr := csv.NewReader(br)
	cr.FieldsPerRecord = 3
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: missing header row: %w", err)
	}
	if header[0] != "index" || header[1] != "type" || header[2] != "bits" {
		return nil, fmt.Errorf("trace: unexpected header %v", header)
	}
	var types []mpeg.PictureType
	followsPattern := true
	for i := 0; ; i++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		idx, err := strconv.Atoi(rec[0])
		if err != nil || idx != i {
			return nil, fmt.Errorf("trace: row %d has index %q", i, rec[0])
		}
		ty, err := mpeg.ParsePictureType(rec[1])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: %w", i, err)
		}
		if ty != t.GOP.TypeOf(i) {
			// The file's types deviate from the nominal pattern: an
			// adaptive-pattern trace. Keep them explicitly.
			followsPattern = false
		}
		types = append(types, ty)
		bits, err := strconv.ParseInt(rec[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d bits: %w", i, err)
		}
		t.Sizes = append(t.Sizes, bits)
	}
	if !followsPattern {
		t.Types = types
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
