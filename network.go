package mpegsmooth

import (
	"context"
	"io"

	"mpegsmooth/internal/core"
	"mpegsmooth/internal/netsim"
	"mpegsmooth/internal/transport"
	"mpegsmooth/internal/vbv"
)

// Network-facing re-exports: the finite-buffer multiplexer simulator
// (the paper's statistical-multiplexing motivation) and the paced
// transport (the notify(i, rate) contract over a real connection).
type (
	// MuxRunConfig describes one multiplexing simulation.
	MuxRunConfig = netsim.RunConfig
	// MuxStats counts cells through the multiplexer.
	MuxStats = netsim.MuxStats

	// Sender paces a smoothed schedule over a connection.
	Sender = transport.Sender
	// Report summarizes a transport receive session.
	Report = transport.Report
	// ReceivedPicture records one picture at the receiver.
	ReceivedPicture = transport.ReceivedPicture
	// RateNotification is the notify(i, rate) wire message.
	RateNotification = transport.RateNotification

	// Policer is a token-bucket usage-parameter-control element that
	// checks traffic against its declared rates.
	Policer = netsim.Policer

	// VBVAnalysis reports the decoder-side buffering a schedule demands:
	// minimum start-up delay (= the schedule's maximum picture delay,
	// which Theorem 1 bounds by D) and peak buffer occupancy.
	VBVAnalysis = vbv.Analysis
)

// CellBits is the fixed cell size of the multiplexer model (ATM: 53
// bytes).
const CellBits = netsim.CellBits

// RunMux simulates rate-scheduled sources through a shared finite-buffer
// multiplexer and returns loss statistics.
func RunMux(cfg MuxRunConfig) (MuxStats, error) { return netsim.Run(cfg) }

// Receive drains a sender's stream until its end marker, recording
// per-picture arrival times, integrity hashes, and rate notifications.
func Receive(ctx context.Context, conn io.Reader) (*Report, error) {
	return transport.Receive(ctx, conn)
}

// PayloadSum64 is the integrity hash the receiver records per picture.
func PayloadSum64(payload []byte) uint64 { return transport.PayloadSum64(payload) }

// NewPolicer creates a token-bucket policer with the given burst
// tolerance in bits.
func NewPolicer(burstBits float64) (*Policer, error) { return netsim.NewPolicer(burstBits) }

// AnalyzeVBV computes the minimum decoder start-up delay and peak
// decoder buffer occupancy implied by a schedule (the MPEG "model
// decoder" view of smoothing).
func AnalyzeVBV(s *core.Schedule) (VBVAnalysis, error) { return vbv.Analyze(s) }

// CheckVBV verifies that decoding with the given start-up delay and
// buffer capacity (bits) neither underflows nor overflows.
func CheckVBV(s *core.Schedule, startup, bufferBits float64) error {
	return vbv.Check(s, startup, bufferBits)
}
