package main

import (
	"context"
	"net"
	"testing"
	"time"

	"mpegsmooth"
)

// TestSendRecvSession runs a full streamer session over TCP loopback at
// high timescale.
func TestSendRecvSession(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		done <- serveOne(conn, 30*time.Second)
	}()

	if err := send([]string{
		"-connect", ln.Addr().String(),
		"-seq", "backyard",
		"-pictures", "48",
		"-timescale", "200",
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("receiver did not finish")
	}
}

func TestSendUnknownSequence(t *testing.T) {
	if err := send([]string{"-seq", "nope"}); err == nil {
		t.Fatal("unknown sequence should fail")
	}
}

func TestSendConnectionRefused(t *testing.T) {
	if err := send([]string{"-connect", "127.0.0.1:1", "-pictures", "18"}); err == nil {
		t.Fatal("refused connection should fail")
	}
}

func TestServeOneMalformedPeer(t *testing.T) {
	client, server := net.Pipe()
	go func() {
		client.Write([]byte{0xFF, 0x00, 0x01})
		client.Close()
	}()
	if err := serveOne(server, 5*time.Second); err == nil {
		t.Fatal("malformed stream should error")
	}
}

// TestSendHandshakePolicy drives the new -handshake and -policy flags
// against a real smoothd server: an admitted session completes, and a
// session that cannot fit the link is refused before any pictures move.
func TestSendHandshakePolicy(t *testing.T) {
	newServer := func(capacity float64) (*mpegsmooth.Smoothd, string) {
		t.Helper()
		srv, err := mpegsmooth.NewSmoothd(mpegsmooth.SmoothdConfig{
			LinkRate:  capacity,
			TimeScale: 200,
		})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		return srv, ln.Addr().String()
	}

	srv, addr := newServer(50e6)
	if err := send([]string{
		"-connect", addr,
		"-seq", "driving1",
		"-pictures", "36",
		"-timescale", "200",
		"-policy", "moving-average",
		"-handshake",
	}); err != nil {
		t.Fatalf("admitted session: %v", err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for srv.Snapshot().Streams.Completed != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("stream never completed: %+v", srv.Snapshot().Streams)
		}
		time.Sleep(2 * time.Millisecond)
	}

	_, tiny := newServer(1) // 1 bps: nothing fits
	if err := send([]string{
		"-connect", tiny,
		"-seq", "driving1",
		"-pictures", "36",
		"-handshake",
	}); err == nil {
		t.Fatal("over-capacity session should be refused at admission")
	}
}

// Guard: the receive loop must respect cancellation even while blocked.
func TestReceiveCancellable(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		mpegsmooth.Receive(ctx, server)
		close(done)
	}()
	cancel()
	server.Close() // unblock the pending read
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Receive did not return after cancel+close")
	}
}
