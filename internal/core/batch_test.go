package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpegsmooth/internal/trace"
)

// TestSmoothAllMatchesSerial: the batch runner at parallelism 8 must
// produce bit-for-bit the schedules of serial smoothing on the four
// paper sequences.
func TestSmoothAllMatchesSerial(t *testing.T) {
	seqs, err := trace.PaperSequences(108, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{K: 1, H: 9, D: 0.2}
	parallel, err := SmoothAll(seqs, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(seqs) {
		t.Fatalf("%d schedules for %d traces", len(parallel), len(seqs))
	}
	for i, tr := range seqs {
		serial, err := Smooth(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if parallel[i].Trace != tr {
			t.Fatalf("schedule %d is for trace %q, want %q", i, parallel[i].Trace.Name, tr.Name)
		}
		if scheduleFingerprint(parallel[i]) != scheduleFingerprint(serial) {
			t.Errorf("%s: parallel schedule differs from serial", tr.Name)
		}
	}
}

// TestSmoothAllParallelismProperty: for random trace sets and
// configurations, parallelism 1 and 8 yield identical schedules.
func TestSmoothAllParallelismProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 1
		traces := make([]*trace.Trace, n)
		for i := range traces {
			traces[i] = randomTrace(rng)
		}
		cfg := randomConfig(rng, traces[0])
		// The config must be valid for every trace; randomConfig already
		// guarantees K >= 1 and D >= (K+1)τ at the shared τ = 1/30.
		one, err := SmoothAll(traces, cfg, 1)
		if err != nil {
			return false
		}
		eight, err := SmoothAll(traces, cfg, 8)
		if err != nil {
			return false
		}
		for i := range traces {
			if scheduleFingerprint(one[i]) != scheduleFingerprint(eight[i]) {
				t.Logf("seed %d trace %d: parallelism 1 vs 8 schedules differ", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestSmoothAllEdgeCases: empty input, error propagation, parallelism
// clamping.
func TestSmoothAllEdgeCases(t *testing.T) {
	if s, err := SmoothAll(nil, Config{K: 1, H: 9, D: 0.2}, 4); err != nil || s != nil {
		t.Fatalf("empty batch: %v, %v", s, err)
	}
	tr := paperTrace(t, 27)
	if _, err := SmoothAll([]*trace.Trace{tr}, Config{K: 1, H: 9, D: -1}, 4); err == nil {
		t.Fatal("invalid config accepted")
	}
	// H = 0 resolves to the pattern length N per trace.
	hz, err := SmoothAll([]*trace.Trace{tr}, Config{K: 1, H: 0, D: 0.2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	hn, err := Smooth(tr, Config{K: 1, H: tr.GOP.N, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if scheduleFingerprint(hz[0]) != scheduleFingerprint(hn) {
		t.Error("H=0 batch schedule differs from explicit H=N")
	}
	// parallelism beyond trace count and <= 0 both work.
	for _, p := range []int{-1, 0, 1, 64} {
		s, err := SmoothAll([]*trace.Trace{tr}, Config{K: 1, H: 9, D: 0.2}, p)
		if err != nil || len(s) != 1 {
			t.Fatalf("parallelism %d: %v, %d schedules", p, err, len(s))
		}
	}
}
