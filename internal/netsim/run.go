package netsim

import (
	"fmt"

	"mpegsmooth/internal/metrics"
)

// RunConfig describes one multiplexing simulation.
type RunConfig struct {
	// Rates holds one transmission rate function per source.
	Rates []*metrics.StepFunc
	// Offsets staggers source start times; len must match Rates (nil
	// means all zero).
	Offsets []float64
	// LinkRate is the shared output link capacity in bits/s.
	LinkRate float64
	// BufferCells is the multiplexer's waiting-buffer size in cells.
	BufferCells int
	// Horizon bounds simulated time in seconds (0 = run to completion).
	Horizon float64
}

// Run simulates the configured sources through a shared multiplexer and
// returns the aggregate statistics.
func Run(cfg RunConfig) (MuxStats, error) {
	if len(cfg.Rates) == 0 {
		return MuxStats{}, fmt.Errorf("netsim: no sources")
	}
	if cfg.Offsets != nil && len(cfg.Offsets) != len(cfg.Rates) {
		return MuxStats{}, fmt.Errorf("netsim: %d offsets for %d sources", len(cfg.Offsets), len(cfg.Rates))
	}
	sched := NewScheduler()
	mux, err := NewMux(sched, cfg.LinkRate, cfg.BufferCells)
	if err != nil {
		return MuxStats{}, err
	}
	sources := make([]*Source, len(cfg.Rates))
	for i, r := range cfg.Rates {
		off := 0.0
		if cfg.Offsets != nil {
			off = cfg.Offsets[i]
		}
		if off < 0 {
			return MuxStats{}, fmt.Errorf("netsim: negative offset %v", off)
		}
		sources[i] = NewSource(sched, mux, r, off)
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		for i, r := range cfg.Rates {
			off := 0.0
			if cfg.Offsets != nil {
				off = cfg.Offsets[i]
			}
			if end := r.End + off + 1; end > horizon {
				horizon = end
			}
		}
	}
	sched.Run(horizon)
	st := mux.Stats()
	// Conservation: everything that arrived was served, lost, is waiting,
	// or is in service.
	inFlight := int64(mux.QueueLen())
	if mux.serving {
		inFlight++
	}
	if st.Arrived != st.Served+st.Lost+inFlight {
		return st, fmt.Errorf("netsim: conservation violated: %d arrived, %d served, %d lost, %d in flight",
			st.Arrived, st.Served, st.Lost, inFlight)
	}
	return st, nil
}
