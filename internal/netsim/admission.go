package netsim

import (
	"fmt"
	"math"
)

// Admission is a peak-rate admission controller for a shared link: each
// stream declares the peak rate of its smoothed schedule (the traffic
// descriptor a Policer would enforce), and the controller admits the
// stream only if the sum of reserved peaks stays within the link
// capacity. Because a smoothed stream never transmits above its peak,
// this reservation makes the multiplexing lossless — the admission-time
// analogue of the paper's Section 5 experiment, where smoothing lets
// more streams share a finite-buffer link before any cell is lost.
// Would-be overloads are rejected before their first picture instead of
// being dropped mid-stream.
//
// Admission is a plain accumulator with no locking, like the rest of
// this package; concurrent servers wrap it in their own mutex.
type Admission struct {
	capacity float64
	reserved float64

	admitted int64
	rejected int64
	active   int64
	parked   int64
}

// NewAdmission creates a controller for a link of the given capacity in
// bits/second.
func NewAdmission(capacity float64) (*Admission, error) {
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("netsim: non-positive link capacity %v", capacity)
	}
	return &Admission{capacity: capacity}, nil
}

// Admit decides on a stream declaring the given peak rate: it reserves
// the peak and reports true when it fits in the remaining capacity, and
// counts a rejection otherwise. Non-positive or non-finite peaks are
// always rejected.
func (a *Admission) Admit(peak float64) bool {
	if peak <= 0 || math.IsNaN(peak) || math.IsInf(peak, 0) {
		a.rejected++
		return false
	}
	// Tolerate float accumulation error at exact capacity: a link sized
	// for n identical peaks admits all n.
	if a.reserved+peak > a.capacity*(1+1e-12) {
		a.rejected++
		return false
	}
	a.reserved += peak
	a.admitted++
	a.active++
	return true
}

// Release returns an admitted stream's reservation when it ends. The
// peak must match what was admitted.
func (a *Admission) Release(peak float64) {
	a.reserved -= peak
	if a.reserved < 0 {
		a.reserved = 0
	}
	a.active--
}

// Capacity returns the link capacity in bits/second.
func (a *Admission) Capacity() float64 { return a.capacity }

// Reserved returns the sum of admitted peaks in bits/second.
func (a *Admission) Reserved() float64 { return a.reserved }

// Available returns the unreserved capacity in bits/second.
func (a *Admission) Available() float64 {
	if avail := a.capacity - a.reserved; avail > 0 {
		return avail
	}
	return 0
}

// Admitted returns the count of streams ever admitted.
func (a *Admission) Admitted() int64 { return a.admitted }

// Rejected returns the count of streams rejected.
func (a *Admission) Rejected() int64 { return a.rejected }

// Active returns the count of admitted streams not yet released.
func (a *Admission) Active() int64 { return a.active }

// Park marks one active stream as disconnected-but-reserved: its sender
// dropped, the server is holding its reservation through a resume
// window. The stream stays Active — the whole point of parking is that
// the capacity remains spoken for, so a reconnecting sender is never
// re-admitted against different arithmetic.
func (a *Admission) Park() { a.parked++ }

// Unpark clears one parked mark (on resume or on window expiry).
func (a *Admission) Unpark() {
	if a.parked > 0 {
		a.parked--
	}
}

// Parked returns the count of active streams currently awaiting resume.
func (a *Admission) Parked() int64 { return a.parked }
