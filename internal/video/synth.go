package video

import (
	"math"
	"math/rand"
)

// SceneSpec describes one synthetic scene segment. A Script concatenates
// segments with hard cuts between them, which is what defeats the MPEG
// encoder's temporal prediction exactly the way real scene changes do
// (Section 5.1 of the paper: "the scene changes give rise to abrupt
// changes in picture sizes").
type SceneSpec struct {
	// Frames is the number of frames in this segment.
	Frames int
	// Detail in [0,1] controls spatial complexity (texture amplitude and
	// frequency content). High detail inflates I pictures.
	Detail float64
	// Motion in [0,1] controls how fast the content moves per frame.
	// High motion inflates P and B pictures.
	Motion float64
	// MotionRamp, if nonzero, linearly ramps Motion to Motion+MotionRamp
	// across the segment (the Tennis instructor getting up).
	MotionRamp float64
	// BaseLuma sets the average brightness of the segment's background,
	// also serving to make cuts between segments visually abrupt.
	BaseLuma uint8
	// Objects is the number of independently moving foreground objects.
	Objects int
}

// Script is a sequence of scenes rendered back to back.
type Script struct {
	W, H   int
	Scenes []SceneSpec
	Seed   int64
}

// TotalFrames returns the number of frames the script renders.
func (s *Script) TotalFrames() int {
	n := 0
	for _, sc := range s.Scenes {
		n += sc.Frames
	}
	return n
}

// object is a moving textured rectangle.
type object struct {
	x, y   float64
	vx, vy float64
	w, h   int
	luma   uint8
	cb, cr uint8
}

// Synthesizer renders a Script frame by frame, deterministically for a
// given seed. It is NOT safe for concurrent use.
type Synthesizer struct {
	script  Script
	rng     *rand.Rand
	frameNo int

	sceneIdx   int
	sceneFrame int
	objects    []object
	texPhaseX  float64
	texPhaseY  float64
	noise      []float64 // per-scene static texture field
}

// NewSynthesizer prepares a renderer for the script. The frame size must
// be a positive multiple of 16 in both dimensions.
func NewSynthesizer(script Script) (*Synthesizer, error) {
	if _, err := NewFrame(script.W, script.H); err != nil {
		return nil, err
	}
	s := &Synthesizer{
		script: script,
		rng:    rand.New(rand.NewSource(script.Seed)),
	}
	if len(script.Scenes) > 0 {
		s.enterScene(0)
	}
	return s, nil
}

// enterScene resets per-scene state: new object set, new texture field.
// Zero-length scenes (which short scripts can produce) are skipped.
func (s *Synthesizer) enterScene(idx int) {
	for idx < len(s.script.Scenes) && s.script.Scenes[idx].Frames <= 0 {
		idx++
	}
	s.sceneIdx = idx
	s.sceneFrame = 0
	if idx >= len(s.script.Scenes) {
		return // done
	}
	sc := s.script.Scenes[idx]
	s.objects = s.objects[:0]
	for i := 0; i < sc.Objects; i++ {
		s.objects = append(s.objects, object{
			x:    s.rng.Float64() * float64(s.script.W),
			y:    s.rng.Float64() * float64(s.script.H),
			vx:   (s.rng.Float64()*2 - 1) * 8,
			vy:   (s.rng.Float64()*2 - 1) * 4,
			w:    16 + s.rng.Intn(s.script.W/4),
			h:    16 + s.rng.Intn(s.script.H/4),
			luma: uint8(64 + s.rng.Intn(128)),
			cb:   uint8(96 + s.rng.Intn(64)),
			cr:   uint8(96 + s.rng.Intn(64)),
		})
	}
	// Static per-scene texture: sum of random sinusoids. Regenerating it on
	// every cut is what makes the first picture of a scene expensive to
	// predict from the previous scene.
	s.noise = make([]float64, 64)
	for i := range s.noise {
		s.noise[i] = s.rng.Float64()*2 - 1
	}
	s.texPhaseX = s.rng.Float64() * 100
	s.texPhaseY = s.rng.Float64() * 100
}

// Done reports whether the script has been fully rendered.
func (s *Synthesizer) Done() bool {
	return s.sceneIdx >= len(s.script.Scenes)
}

// Next renders the next frame of the script, or returns nil when done.
func (s *Synthesizer) Next() *Frame {
	if s.Done() {
		return nil
	}
	sc := s.script.Scenes[s.sceneIdx]
	f := MustNewFrame(s.script.W, s.script.H)
	f.DisplayIdx = s.frameNo

	progress := 0.0
	if sc.Frames > 1 {
		progress = float64(s.sceneFrame) / float64(sc.Frames-1)
	}
	motion := sc.Motion + sc.MotionRamp*progress

	s.renderBackground(f, sc, motion)
	s.renderObjects(f, motion)
	s.addSensorNoise(f, sc.Detail)

	// Advance state. The global pan moves by a whole number of pixels per
	// frame so that full-pixel motion compensation can track the
	// background, as it can for real camera pans; objects move at
	// fractional speeds and leave genuine prediction error.
	s.texPhaseX += math.Round(motion * 6)
	s.texPhaseY += math.Round(motion * 1.5)
	for i := range s.objects {
		o := &s.objects[i]
		o.x += o.vx * motion
		o.y += o.vy * motion
		o.x = wrap(o.x, float64(s.script.W))
		o.y = wrap(o.y, float64(s.script.H))
	}
	s.frameNo++
	s.sceneFrame++
	if s.sceneFrame >= sc.Frames {
		s.enterScene(s.sceneIdx + 1)
	}
	return f
}

// renderBackground paints a panning multi-frequency texture whose
// amplitude scales with Detail.
func (s *Synthesizer) renderBackground(f *Frame, sc SceneSpec, motion float64) {
	amp := sc.Detail * 60
	base := float64(sc.BaseLuma)
	n := s.noise
	for y := 0; y < f.H; y++ {
		fy := float64(y) + s.texPhaseY
		// Precompute row-dependent terms. Banding is keyed to the panned
		// coordinate so that integer pans are exact translations — what a
		// camera pan over a static scene looks like to the encoder.
		band := int(fy) / 3 % 8
		if band < 0 {
			band += 8
		}
		rowA := n[band+8] * amp
		for x := 0; x < f.W; x++ {
			fx := float64(x) + s.texPhaseX
			v := base
			v += amp * math.Sin(fx*0.11*(1+n[0]*0.3)+fy*0.07)
			v += amp * 0.6 * math.Sin(fx*0.31+n[1]*3)
			v += rowA * math.Sin(fx*0.53+fy*0.29)
			f.Y[y*f.W+x] = clamp8(v)
		}
	}
	cw, ch := f.ChromaW(), f.ChromaH()
	for y := 0; y < ch; y++ {
		for x := 0; x < cw; x++ {
			fx := float64(x)*2 + s.texPhaseX
			f.Cb[y*cw+x] = clamp8(128 + sc.Detail*20*math.Sin(fx*0.05))
			f.Cr[y*cw+x] = clamp8(128 + sc.Detail*20*math.Cos(fx*0.04))
		}
	}
}

// renderObjects draws the moving foreground rectangles with simple
// per-object texture.
func (s *Synthesizer) renderObjects(f *Frame, motion float64) {
	cw := f.ChromaW()
	for oi := range s.objects {
		o := &s.objects[oi]
		x0, y0 := int(o.x), int(o.y)
		for dy := 0; dy < o.h; dy++ {
			y := y0 + dy
			if y < 0 || y >= f.H {
				continue
			}
			for dx := 0; dx < o.w; dx++ {
				x := x0 + dx
				if x < 0 || x >= f.W {
					continue
				}
				tex := 20 * math.Sin(float64(dx)*0.4+float64(oi))
				f.Y[y*f.W+x] = clamp8(float64(o.luma) + tex)
				if x%2 == 0 && y%2 == 0 {
					ci := (y/2)*cw + x/2
					f.Cb[ci] = o.cb
					f.Cr[ci] = o.cr
				}
			}
		}
	}
}

// addSensorNoise adds small deterministic pseudo-noise so that even static
// scenes never compress to nothing, like real camera output.
func (s *Synthesizer) addSensorNoise(f *Frame, detail float64) {
	if detail <= 0 {
		return
	}
	amp := 2 + detail*3
	// Cheap hash noise keyed by position and frame number: deterministic
	// across runs, uncorrelated between frames.
	fn := uint32(s.frameNo)
	for y := 0; y < f.H; y += 2 {
		for x := 0; x < f.W; x += 3 {
			h := (uint32(x)*2654435761 ^ uint32(y)*40503 ^ fn*97) >> 16
			d := (float64(h&0xFF)/255 - 0.5) * amp
			i := y*f.W + x
			f.Y[i] = clamp8(float64(f.Y[i]) + d)
		}
	}
}

func wrap(v, max float64) float64 {
	for v < -32 {
		v += max + 64
	}
	for v > max+32 {
		v -= max + 64
	}
	return v
}

// DrivingScript models the paper's Driving video: fast-moving countryside,
// a cut to a low-motion close-up of the driver, and a cut back.
// frames is the total length; it is split 40% / 30% / 30%.
func DrivingScript(w, h, frames int, seed int64) Script {
	a := frames * 2 / 5
	b := frames * 3 / 10
	c := frames - a - b
	return Script{
		W: w, H: h, Seed: seed,
		Scenes: []SceneSpec{
			{Frames: a, Detail: 0.85, Motion: 0.9, BaseLuma: 110, Objects: 4},
			{Frames: b, Detail: 0.35, Motion: 0.15, BaseLuma: 150, Objects: 1},
			{Frames: c, Detail: 0.85, Motion: 0.95, BaseLuma: 105, Objects: 4},
		},
	}
}

// TennisScript models the Tennis video: one scene, low motion ramping up
// as the instructor gets up and moves away.
func TennisScript(w, h, frames int, seed int64) Script {
	return Script{
		W: w, H: h, Seed: seed,
		Scenes: []SceneSpec{
			{Frames: frames, Detail: 0.6, Motion: 0.1, MotionRamp: 0.8, BaseLuma: 130, Objects: 2},
		},
	}
}

// BackyardScript models the Backyard video: complex detailed backgrounds,
// slow motion, two scene changes.
func BackyardScript(w, h, frames int, seed int64) Script {
	a := frames * 2 / 5
	b := frames * 3 / 10
	c := frames - a - b
	return Script{
		W: w, H: h, Seed: seed,
		Scenes: []SceneSpec{
			{Frames: a, Detail: 0.95, Motion: 0.25, BaseLuma: 120, Objects: 2},
			{Frames: b, Detail: 0.9, Motion: 0.3, BaseLuma: 100, Objects: 3},
			{Frames: c, Detail: 0.95, Motion: 0.25, BaseLuma: 125, Objects: 2},
		},
	}
}
