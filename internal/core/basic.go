package core

import (
	"fmt"

	"mpegsmooth/internal/trace"
)

// Smooth runs the smoothing algorithm of Figure 2 over a complete trace
// and returns the resulting schedule. The algorithm is online: at each
// picture it sees only the sizes of pictures that have arrived by t_i and
// estimates the rest through cfg.Estimator. Smooth is "new Session, push
// all, close": it drives the same Session kernel as LiveSmoother and the
// transport, so every driver produces identical schedules.
func Smooth(tr *trace.Trace, cfg Config) (*Schedule, error) {
	return SmoothObserved(tr, cfg, nil)
}

// SmoothObserved is Smooth with a per-decision Observer hook: obs (when
// non-nil) sees every decision as the schedule is computed, exactly as
// a Session observer would.
func SmoothObserved(tr *trace.Trace, cfg Config, obs Observer) (*Schedule, error) {
	var opts []SessionOption
	if obs != nil {
		opts = append(opts, WithObserver(obs))
	}
	sess, err := newTraceSession(tr, cfg, opts...)
	if err != nil {
		return nil, err
	}
	return scheduleFrom(tr, sess.cfg, sess.runAll(tr.Sizes)), nil
}

// newTraceSession builds a Session for a validated complete trace,
// carrying the trace's explicit picture types into the estimator view.
func newTraceSession(tr *trace.Trace, cfg Config, opts ...SessionOption) (*Session, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	opts = append([]SessionOption{withTypes(tr.Types)}, opts...)
	return NewSession(tr.Tau, tr.GOP, cfg, opts...)
}

// scheduleFrom assembles a Schedule from a full decision sequence.
func scheduleFrom(tr *trace.Trace, cfg Config, ds []Decision) *Schedule {
	n := tr.Len()
	s := &Schedule{
		Trace:      tr,
		Config:     cfg,
		Rates:      make([]float64, n),
		Start:      make([]float64, n),
		Depart:     make([]float64, n),
		Delays:     make([]float64, n),
		LowerBound: make([]float64, n),
		UpperBound: make([]float64, n),
	}
	for _, d := range ds {
		j := d.Picture
		s.Rates[j] = d.Rate
		s.Start[j] = d.Start
		s.Depart[j] = d.Depart
		s.Delays[j] = d.Delay
		s.LowerBound[j] = d.Lower
		s.UpperBound[j] = d.Upper
	}
	return s
}

// MustSmooth is Smooth for statically valid inputs; it panics on error.
func MustSmooth(tr *trace.Trace, cfg Config) *Schedule {
	s, err := Smooth(tr, cfg)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	return s
}
