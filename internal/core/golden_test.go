package core

import (
	"math"
	"testing"
)

// TestGoldenSchedule pins exact schedule values for a fixed trace and
// configuration. Any change to the decision kernel — intentional or not —
// trips this test, forcing the diff to be reviewed against the Figure 2
// specification. The values were computed by this implementation after
// it was verified against the hand-worked schedules in core_test.go and
// the Theorem 1 property suite.
func TestGoldenSchedule(t *testing.T) {
	tr := paperTrace(t, 54) // Driving1, seed 1
	s, err := Smooth(tr, Config{K: 1, H: 9, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	pin := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > math.Abs(want)*1e-6 {
			t.Errorf("%s = %.10g, want %.10g (kernel behaviour changed — review against Figure 2)", name, got, want)
		}
	}
	// Literal pins captured from the verified implementation.
	pin("r_0", s.Rates[0], 1556309.091)
	pin("d_0", s.Depart[0], 0.1692844765)
	pin("r_1", s.Rates[1], 1822315.426)
	pin("r_10", s.Rates[10], 2088803.884)
	pin("d_53", s.Depart[53], 1.836517238)

	// Structural pins that must never change for this input:
	// r_0 is the midpoint of the h*-restricted bounds; the first start is
	// exactly (0+K)τ.
	if s.Start[0] != 1.0/30 {
		t.Fatalf("t_0 = %v, want τ", s.Start[0])
	}
	// Continuous service makes every subsequent start equal the previous
	// departure, bit-exactly (not just within tolerance).
	for j := 1; j < tr.Len(); j++ {
		if s.Start[j] != s.Depart[j-1] {
			t.Fatalf("t_%d != d_%d exactly", j, j-1)
		}
	}
	// Pin aggregate outcomes to 6 significant digits. These values are
	// deterministic: the trace generator and the algorithm are both
	// seed-stable, so any drift means the code path changed.
	f, err := s.RateFunc()
	if err != nil {
		t.Fatal(err)
	}
	pin("total bits", f.Integral(), float64(tr.TotalBits()))
	pin("max delay", s.MaxDelay(), 0.2)
	// The rate-change count is sensitive to every branch of the
	// selection logic.
	if changes := f.Changes(1e-9); changes != 17 {
		t.Errorf("rate changes = %d, want 17 (kernel behaviour changed)", changes)
	}
}
