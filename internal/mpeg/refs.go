package mpeg

import (
	"fmt"

	"mpegsmooth/internal/video"
)

// refPair tracks the two most recent reconstructed reference pictures (I
// or P) and their display indices, and resolves which references a picture
// predicts from. The same logic runs in the encoder and the decoder, which
// is what keeps their reconstructions bit-identical.
type refPair struct {
	past, future       *video.Frame
	pastIdx, futureIdx int
}

// push records a newly reconstructed reference picture.
func (r *refPair) push(f *video.Frame, displayIdx int) {
	r.past, r.pastIdx = r.future, r.futureIdx
	r.future, r.futureIdx = f, displayIdx
}

// forPicture returns the forward and backward references for a picture of
// type t at display index d:
//
//   - I pictures have no references.
//   - P pictures predict forward from the most recent reference.
//   - B pictures between two references use both; B pictures after the
//     last reference in display order (trailing a sequence) and B pictures
//     before the first reference predict forward-only.
func (r *refPair) forPicture(t PictureType, d int) (fwd, bwd *video.Frame, err error) {
	switch t {
	case TypeI:
		return nil, nil, nil
	case TypeP:
		if r.future == nil {
			return nil, nil, fmt.Errorf("mpeg: P picture %d has no reference", d)
		}
		return r.future, nil, nil
	case TypeB:
		if r.future == nil {
			return nil, nil, fmt.Errorf("mpeg: B picture %d has no reference", d)
		}
		if d > r.futureIdx {
			// Trailing B: only a past reference exists.
			return r.future, nil, nil
		}
		if r.past == nil {
			// Leading B: only the future reference exists; predict from it.
			return r.future, nil, nil
		}
		return r.past, r.future, nil
	}
	return nil, nil, fmt.Errorf("mpeg: unknown picture type %v", t)
}
