package mpeg

import (
	"testing"

	"mpegsmooth/internal/video"
)

// TestHalfPelAblation: half-pel refinement must not hurt and should help
// on fractional-motion content — the design-choice ablation DESIGN.md
// calls out.
func TestHalfPelAblation(t *testing.T) {
	frames := testFrames(t, 96, 64, 18, 31)
	encBits := func(fullPelOnly bool) int64 {
		cfg := DefaultConfig(96, 64, GOP{M: 3, N: 9})
		cfg.FullPelOnly = fullPelOnly
		enc, err := NewEncoder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := enc.EncodeSequence(frames)
		if err != nil {
			t.Fatal(err)
		}
		// Only P/B bits: half-pel cannot affect I pictures.
		var bits int64
		for _, p := range seq.Pictures {
			if p.Type != TypeI {
				bits += p.Bits
			}
		}
		// The ablated stream must still decode cleanly.
		if _, err := NewDecoder().Decode(seq.Data); err != nil {
			t.Fatal(err)
		}
		return bits
	}
	full := encBits(true)
	half := encBits(false)
	if half > full {
		t.Fatalf("half-pel refinement increased P/B bits: %d vs %d", half, full)
	}
	t.Logf("P/B bits: full-pel %d, half-pel %d (%.1f%% saving)",
		full, half, 100*(1-float64(half)/float64(full)))
}

// TestNoDriftAcrossLongPChain: the encoder reconstructs references with
// the decoder's exact arithmetic, so a long P chain must not drift —
// the last picture's fidelity stays comparable to the first P's.
func TestNoDriftAcrossLongPChain(t *testing.T) {
	frames := testFrames(t, 64, 48, 30, 41)
	cfg := DefaultConfig(64, 48, GOP{M: 1, N: 30}) // I then 29 chained Ps
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := enc.EncodeSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewDecoder().Decode(seq.Data)
	if err != nil {
		t.Fatal(err)
	}
	early, err := video.PSNR(frames[2], out.Frames[2])
	if err != nil {
		t.Fatal(err)
	}
	late, err := video.PSNR(frames[29], out.Frames[29])
	if err != nil {
		t.Fatal(err)
	}
	if late < early-6 {
		t.Fatalf("P-chain drift: PSNR %.1f dB at picture 2 vs %.1f dB at picture 29", early, late)
	}
}

func BenchmarkAblationHalfPelSearch(b *testing.B) {
	frames := testFrames(b, 96, 64, 2, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		searchMotion(frames[1], frames[0], 2, 2, 8)
	}
}

func BenchmarkAblationFullPelSearch(b *testing.B) {
	frames := testFrames(b, 96, 64, 2, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		searchMotionFullPel(frames[1], frames[0], 2, 2, 8)
	}
}
