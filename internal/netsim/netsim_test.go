package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"mpegsmooth/internal/core"
	"mpegsmooth/internal/metrics"
	"mpegsmooth/internal/mpeg"
	"mpegsmooth/internal/trace"
)

func mpegGOP() mpeg.GOP { return mpeg.GOP{M: 3, N: 9} }

func constRate(t testing.TB, rate, duration float64) *metrics.StepFunc {
	t.Helper()
	f, err := metrics.NewStepFunc([]float64{0}, []float64{rate}, duration)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSchedulerOrdersEvents(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(3, EventFunc(func(Tick) { got = append(got, 3) }))
	e.Schedule(1, EventFunc(func(Tick) { got = append(got, 1) }))
	e.Schedule(2, EventFunc(func(Tick) { got = append(got, 2) }))
	e.Schedule(1, EventFunc(func(Tick) { got = append(got, 11) })) // same tick: FIFO by seq
	if n := e.Run(10); n != 4 {
		t.Fatalf("fired %d events", n)
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestSchedulerHorizon(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(5, EventFunc(func(Tick) { fired = true }))
	e.Run(4)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if e.Now() != 4 {
		t.Fatalf("Now = %v, want horizon", e.Now())
	}
	// Resuming past the horizon fires the held-back event.
	if n := e.Run(10); n != 1 || !fired {
		t.Fatalf("resumed run fired %d events (fired=%v)", n, fired)
	}
}

func TestSchedulerRejectsPast(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(2, EventFunc(func(Tick) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		e.Schedule(1, EventFunc(func(Tick) {}))
	}))
	e.Run(10)
}

func TestNewMuxValidation(t *testing.T) {
	e := NewEngine(1e12)
	if _, err := NewMux(e, 0, 10); err == nil {
		t.Error("zero link rate should fail")
	}
	if _, err := NewMux(e, 1e6, -1); err == nil {
		t.Error("negative buffer should fail")
	}
}

func TestUnderloadedMuxLosesNothing(t *testing.T) {
	// One source at half the link rate: every cell must be served.
	st, err := Run(RunConfig{
		Rates:       []*metrics.StepFunc{constRate(t, 1e6, 2)},
		LinkRate:    2e6,
		BufferCells: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Lost != 0 {
		t.Fatalf("lost %d cells under load 0.5", st.Lost)
	}
	wantCells := int64(math.Floor(1e6 * 2 / CellBits))
	if diff := st.Arrived - wantCells; diff < -2 || diff > 2 {
		t.Fatalf("arrived %d cells, want about %d", st.Arrived, wantCells)
	}
}

func TestOverloadedMuxLosesExcess(t *testing.T) {
	// One source at twice the link rate with a tiny buffer: about half
	// the cells must be lost.
	st, err := Run(RunConfig{
		Rates:       []*metrics.StepFunc{constRate(t, 4e6, 2)},
		LinkRate:    2e6,
		BufferCells: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := st.LossProbability()
	if p < 0.4 || p > 0.6 {
		t.Fatalf("loss probability %.3f, want about 0.5", p)
	}
}

func TestBufferAbsorbsBursts(t *testing.T) {
	// A bursty source alternating 4 Mbps / 0 Mbps with mean 2 Mbps into a
	// 2 Mbps link: a large buffer absorbs the bursts, a zero buffer does
	// not.
	mk := func() *metrics.StepFunc {
		var times, values []float64
		for i := 0; i < 20; i++ {
			times = append(times, float64(i)*0.1)
			if i%2 == 0 {
				values = append(values, 4e6)
			} else {
				values = append(values, 1) // effectively idle
			}
		}
		f, err := metrics.NewStepFunc(times, values, 2)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	small, err := Run(RunConfig{Rates: []*metrics.StepFunc{mk()}, LinkRate: 2.2e6, BufferCells: 0, Horizon: 3})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(RunConfig{Rates: []*metrics.StepFunc{mk()}, LinkRate: 2.2e6, BufferCells: 2000, Horizon: 3})
	if err != nil {
		t.Fatal(err)
	}
	if big.Lost != 0 {
		t.Fatalf("big buffer lost %d cells", big.Lost)
	}
	if small.LossProbability() < 0.2 {
		t.Fatalf("zero buffer loss %.3f unexpectedly low", small.LossProbability())
	}
}

// RawRateFunc returns the unsmoothed transmission rate function of a
// trace: picture j is sent at S_j/τ during its own picture period, the
// baseline the paper's introduction describes (a 200,000-bit I picture
// at 30 pictures/s demands 6 Mbps for 1/30 s).
func RawRateFunc(t testing.TB, tr *trace.Trace) *metrics.StepFunc {
	t.Helper()
	times := make([]float64, tr.Len())
	values := make([]float64, tr.Len())
	for j := 0; j < tr.Len(); j++ {
		times[j] = float64(j) * tr.Tau
		values[j] = float64(tr.Sizes[j]) / tr.Tau
	}
	f, err := metrics.NewStepFunc(times, values, tr.Duration())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSmoothedStreamsMultiplexBetter(t *testing.T) {
	// The paper's motivating claim: smoothing the picture-to-picture rate
	// fluctuations caused by interframe coding raises the statistical
	// multiplexing gain of a finite-buffer switch. Sources are
	// independent single-scene traces so the I≫B alternation — the
	// fluctuation smoothing removes — is the discriminator (scene-level
	// fluctuations are inherent and survive smoothing; Section 3.2).
	const n = 8
	var raws, smooths []*metrics.StepFunc
	var aggregateMean float64
	for i := 0; i < n; i++ {
		tr, err := trace.Generate(trace.SynthConfig{
			Name:  "mux",
			GOP:   mpegGOP(),
			IBase: 210_000, PBase: 95_000, BBase: 32_000,
			Scenes: []trace.ScenePhase{{Pictures: 135, Complexity: 1, Motion: 0.9}},
			Seed:   int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		aggregateMean += tr.MeanRate()
		raws = append(raws, RawRateFunc(t, tr))
		sch, err := core.Smooth(tr, core.Config{K: 1, H: tr.GOP.N, D: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		sm, err := sch.RateFunc()
		if err != nil {
			t.Fatal(err)
		}
		smooths = append(smooths, sm)
	}
	link := aggregateMean * 1.25 // 25% headroom over aggregate mean
	offsets := make([]float64, n)
	for i := range offsets {
		offsets[i] = float64(i) * 0.011 // sub-picture stagger
	}
	mkRun := func(rates []*metrics.StepFunc) MuxStats {
		st, err := Run(RunConfig{Rates: rates, Offsets: offsets, LinkRate: link, BufferCells: 100})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	rawStats := mkRun(raws)
	smoothStats := mkRun(smooths)
	t.Logf("raw loss %.4f (%d/%d), smoothed loss %.4f (%d/%d)",
		rawStats.LossProbability(), rawStats.Lost, rawStats.Arrived,
		smoothStats.LossProbability(), smoothStats.Lost, smoothStats.Arrived)
	if rawStats.Lost == 0 {
		t.Fatal("test not discriminating: raw streams lost nothing")
	}
	if smoothStats.LossProbability() >= rawStats.LossProbability()/2 {
		t.Fatalf("smoothing did not reduce loss: smoothed %.4f vs raw %.4f",
			smoothStats.LossProbability(), rawStats.LossProbability())
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{}); err == nil {
		t.Error("no sources should fail")
	}
	f := constRate(t, 1e6, 1)
	if _, err := Run(RunConfig{Rates: []*metrics.StepFunc{f}, Offsets: []float64{1, 2}, LinkRate: 1e6}); err == nil {
		t.Error("offset length mismatch should fail")
	}
	if _, err := Run(RunConfig{Rates: []*metrics.StepFunc{f}, Offsets: []float64{-1}, LinkRate: 1e6, BufferCells: 1}); err == nil {
		t.Error("negative offset should fail")
	}
}

// Property: cell conservation holds for arbitrary source/link/buffer
// combinations.
func TestConservationProperty(t *testing.T) {
	f := func(rateKbps uint16, linkKbps uint16, buffer uint8) bool {
		rate := float64(rateKbps%5000+1) * 1000
		link := float64(linkKbps%5000+1) * 1000
		src, err := metrics.NewStepFunc([]float64{0}, []float64{rate}, 0.5)
		if err != nil {
			return false
		}
		_, err = Run(RunConfig{
			Rates:       []*metrics.StepFunc{src},
			LinkRate:    link,
			BufferCells: int(buffer),
			Horizon:     2,
		})
		return err == nil // Run itself checks conservation
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSourceHandlesIdleGaps(t *testing.T) {
	// Rate 1 Mbps on [0,1), 0 on [1,2), 1 Mbps on [2,3).
	f, err := metrics.NewStepFunc([]float64{0, 1, 2}, []float64{1e6, 0, 1e6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(RunConfig{Rates: []*metrics.StepFunc{f}, LinkRate: 10e6, BufferCells: 10})
	if err != nil {
		t.Fatal(err)
	}
	wantCells := int64(math.Round(2e6 / CellBits))
	if diff := st.Arrived - wantCells; diff < -3 || diff > 3 {
		t.Fatalf("arrived %d cells, want about %d (idle gap mishandled)", st.Arrived, wantCells)
	}
}

func BenchmarkMultiplexRun(b *testing.B) {
	f, err := metrics.NewStepFunc([]float64{0}, []float64{2e6}, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(RunConfig{
			Rates:       []*metrics.StepFunc{f, f, f, f},
			LinkRate:    9e6,
			BufferCells: 50,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
