package mpegsmooth

// One benchmark per figure of the paper's evaluation section (Figures
// 3–8) plus the extension experiments: each bench regenerates its
// figure's complete data from scratch, so `go test -bench .` both times
// the reproduction and re-derives every reported series. Run
// cmd/experiments to render the same data as CSV.

import (
	"testing"

	"mpegsmooth/internal/experiments"
)

const (
	benchPictures = experiments.DefaultPictures
	benchSeed     = experiments.DefaultSeed
)

// BenchmarkFigure3_TraceGeneration regenerates the picture-size traces of
// Figure 3 (Driving1 and Tennis size-vs-picture-number series).
func BenchmarkFigure3_TraceGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		traces, err := experiments.Figure3(benchPictures, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if len(traces) != 2 {
			b.Fatal("wrong trace count")
		}
	}
}

// BenchmarkFigure4_RateVsTime regenerates the four rate-vs-time panels of
// Figure 4 (Driving1, K=1, H=9, D in {0.1, 0.15, 0.2, 0.3}).
func BenchmarkFigure4_RateVsTime(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure4(benchPictures, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 4 {
			b.Fatal("wrong panel count")
		}
	}
}

// BenchmarkFigure5_Delays regenerates the per-picture delay comparisons
// of Figure 5 (D=0.1/0.3 vs ideal; K=1 vs K=9 at constant slack).
func BenchmarkFigure5_Delays(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(benchPictures, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6_SweepD regenerates the four-measures-vs-D sweep of
// Figure 6 across all four sequences.
func BenchmarkFigure6_SweepD(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(benchPictures, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7_SweepH regenerates the four-measures-vs-H sweep of
// Figure 7 (H = 1 .. 2N, D=0.2, K=1).
func BenchmarkFigure7_SweepH(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7(benchPictures, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8_SweepK regenerates the four-measures-vs-K sweep of
// Figure 8 (K = 1 .. 12 at constant slack, H=N).
func BenchmarkFigure8_SweepK(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8(benchPictures, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtA_ModifiedVsBasic regenerates the basic vs moving-average
// variant comparison (Section 4.4's trade-off).
func BenchmarkExtA_ModifiedVsBasic(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtA(benchPictures, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtB_Multiplexing regenerates the loss-vs-streams simulation
// (the statistical multiplexing motivation of refs [10, 11]).
func BenchmarkExtB_Multiplexing(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtB(6, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtC_Estimators regenerates the size-estimator ablation.
func BenchmarkExtC_Estimators(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtC(benchPictures, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtE_EncoderPipeline regenerates the end-to-end experiment:
// synthetic video through the MPEG codec, stream inspection, smoothing.
func BenchmarkExtE_EncoderPipeline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtE(96, 64, 36, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSmoothPerPicture times the core algorithm itself: one full
// smoothing pass over Driving1, reported per picture.
func BenchmarkSmoothPerPicture(b *testing.B) {
	tr, err := Driving1(benchPictures, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{K: 1, H: tr.GOP.N, D: 0.2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Smooth(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(tr.Len()), "ns/picture")
}

// BenchmarkSmoothAll times the concurrent batch runner over many
// streams, serial vs parallel, to show the worker pool's speedup.
func BenchmarkSmoothAll(b *testing.B) {
	seqs, err := PaperSequences(benchPictures, 1)
	if err != nil {
		b.Fatal(err)
	}
	// Replicate the four sequences so the pool has enough work per
	// picture of parallelism to amortize goroutine overhead.
	var traces []*Trace
	for i := 0; i < 4; i++ {
		traces = append(traces, seqs...)
	}
	cfg := Config{K: 1, H: 0, D: 0.2}
	for _, bc := range []struct {
		name        string
		parallelism int
	}{{"serial", 1}, {"parallel8", 8}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SmoothAll(traces, cfg, bc.parallelism); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOfflineSmooth times the taut-string offline optimum.
func BenchmarkOfflineSmooth(b *testing.B) {
	tr, err := Driving1(benchPictures, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OfflineSmooth(tr, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIdeal times ideal smoothing.
func BenchmarkIdeal(b *testing.B) {
	tr, err := Driving1(benchPictures, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Ideal(tr); err != nil {
			b.Fatal(err)
		}
	}
}
