package metrics

import "math"

// DecisionStats accumulates per-decision observations from a smoothing
// session's Observer hook: how deep the lookahead ran before exiting,
// how much slack the policy kept to the Theorem 1 band, and how wrong
// the size estimator was over each window. It is a plain accumulator
// (no locking): feed it from one session, or merge per-session
// collectors afterwards.
type DecisionStats struct {
	// Decisions is the number of observations accumulated.
	Decisions int
	// OutOfBand counts decisions whose rate left the Theorem 1 bounds
	// (negative slack) — nonzero only under a constraint-trading policy
	// such as CappedRate, or K = 0.
	OutOfBand int

	depthSum   int
	minSlack   float64
	absErrSum  float64
	errSqSum   float64
	estimated  int // decisions whose window contained estimates
	depthCount map[int]int
}

// NewDecisionStats returns an empty collector.
func NewDecisionStats() *DecisionStats {
	return &DecisionStats{minSlack: math.Inf(1), depthCount: map[int]int{}}
}

// Add records one decision. lowerSlack and upperSlack are the margins
// the selected rate keeps to the Theorem 1 bounds (negative when out of
// band), depth is the lookahead depth at exit, and estErr the relative
// window estimation error (0 when the window held no estimates).
func (d *DecisionStats) Add(lowerSlack, upperSlack float64, depth int, estErr float64) {
	d.Decisions++
	d.depthSum += depth
	d.depthCount[depth]++
	slack := math.Min(lowerSlack, upperSlack)
	if slack < d.minSlack {
		d.minSlack = slack
	}
	if slack < 0 {
		d.OutOfBand++
	}
	if estErr != 0 {
		d.estimated++
		d.absErrSum += math.Abs(estErr)
		d.errSqSum += estErr * estErr
	}
}

// MeanDepth returns the mean lookahead depth at exit.
func (d *DecisionStats) MeanDepth() float64 {
	if d.Decisions == 0 {
		return 0
	}
	return float64(d.depthSum) / float64(d.Decisions)
}

// DepthHistogram returns the count of decisions per exit depth.
func (d *DecisionStats) DepthHistogram() map[int]int { return d.depthCount }

// MinSlack returns the smallest band margin any decision kept
// (negative if a policy ever went out of band), or +Inf with no data.
func (d *DecisionStats) MinSlack() float64 { return d.minSlack }

// MeanAbsEstimatorError returns the mean absolute relative estimation
// error over decisions whose windows contained estimates.
func (d *DecisionStats) MeanAbsEstimatorError() float64 {
	if d.estimated == 0 {
		return 0
	}
	return d.absErrSum / float64(d.estimated)
}

// RMSEstimatorError returns the root-mean-square relative estimation
// error over decisions whose windows contained estimates.
func (d *DecisionStats) RMSEstimatorError() float64 {
	if d.estimated == 0 {
		return 0
	}
	return math.Sqrt(d.errSqSum / float64(d.estimated))
}
