package lru

import (
	"fmt"
	"testing"
	"time"
)

func TestPutGetDelete(t *testing.T) {
	m := New[int, string](4)
	m.Put(1, "a")
	m.Put(2, "b")
	if got, ok := m.Get(1); !ok || got != "a" {
		t.Fatalf("Get(1) = %q, %v", got, ok)
	}
	m.Put(1, "a2")
	if got, _ := m.Get(1); got != "a2" {
		t.Fatalf("update lost: %q", got)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	m.Delete(1)
	if _, ok := m.Get(1); ok {
		t.Fatal("deleted key still present")
	}
	if m.Evicted() != 0 {
		t.Fatalf("Delete counted as eviction: %d", m.Evicted())
	}
}

// TestLastTouchEviction is the property the tombstone/nonce ledgers
// need: a recently-consulted entry survives an insert flood; only the
// longest-untouched entries are evicted.
func TestLastTouchEviction(t *testing.T) {
	m := New[int, int](3)
	m.Put(1, 1)
	m.Put(2, 2)
	m.Put(3, 3)
	m.Get(1) // touch the oldest insert
	m.Put(4, 4)
	if _, ok := m.Peek(1); !ok {
		t.Error("touched entry 1 was evicted (FIFO behaviour, not LRU)")
	}
	if _, ok := m.Peek(2); ok {
		t.Error("least-recently-touched entry 2 survived past cap")
	}
	if m.Evicted() != 1 {
		t.Errorf("Evicted = %d, want 1", m.Evicted())
	}
}

func TestPeekDoesNotTouch(t *testing.T) {
	m := New[int, int](2)
	m.Put(1, 1)
	m.Put(2, 2)
	m.Peek(1) // must NOT protect 1
	m.Put(3, 3)
	if _, ok := m.Peek(1); ok {
		t.Error("Peek touched the entry")
	}
}

func TestSetCapShrinksAndGrows(t *testing.T) {
	m := New[int, int](8)
	for i := 0; i < 8; i++ {
		m.Put(i, i)
	}
	m.SetCap(3)
	if m.Len() != 3 {
		t.Fatalf("Len after shrink = %d, want 3", m.Len())
	}
	for i := 5; i < 8; i++ { // most recent three
		if _, ok := m.Peek(i); !ok {
			t.Errorf("recent entry %d evicted by shrink", i)
		}
	}
	m.SetCap(10)
	for i := 100; i < 107; i++ {
		m.Put(i, i)
	}
	if m.Len() != 10 {
		t.Fatalf("Len after grow = %d, want 10", m.Len())
	}
}

func TestRangeLRUFirst(t *testing.T) {
	m := New[int, int](4)
	for i := 1; i <= 3; i++ {
		m.Put(i, i)
	}
	m.Get(1)
	var order []int
	m.Range(func(k, _ int) bool {
		order = append(order, k)
		return true
	})
	want := fmt.Sprint([]int{2, 3, 1})
	if got := fmt.Sprint(order); got != want {
		t.Fatalf("Range order %v, want %v", got, want)
	}
}

// TestSizerFloodGrowsCap pins the adaptive bound: a flood of events
// within the retention window pushes the derived cap to cover them all,
// so the LRU never evicts an entry that is still inside its TTL.
func TestSizerFloodGrowsCap(t *testing.T) {
	var s Sizer
	base := time.Unix(1000, 0)
	if got := s.Cap(time.Minute, base); got != 1024 {
		t.Fatalf("empty sizer cap = %d, want Min 1024", got)
	}
	// 5000 events over one second: rate ≈ 256/span for the retained ring,
	// far above 1000/s. With a 60s window the cap must cover the whole
	// flood (rate × window ≫ 5000) without hitting Max.
	for i := 0; i < 5000; i++ {
		s.Note(base.Add(time.Duration(i) * time.Second / 5000))
	}
	cap := s.Cap(time.Minute, base.Add(time.Second))
	if cap < 5000 {
		t.Errorf("cap %d does not cover a 5000/s flood over a 60s window", cap)
	}
	if cap > 1<<20 {
		t.Errorf("cap %d above Max", cap)
	}
	// A slow trickle keeps the cap at the floor.
	var slow Sizer
	for i := 0; i < 10; i++ {
		slow.Note(base.Add(time.Duration(i) * time.Minute))
	}
	if got := slow.Cap(time.Minute, base.Add(10*time.Minute)); got != 1024 {
		t.Errorf("trickle cap = %d, want Min 1024", got)
	}
}
