package transport

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"mpegsmooth/internal/mpeg"
)

// ReceivedPicture records one picture as observed by the receiver.
type ReceivedPicture struct {
	Index int
	Type  mpeg.PictureType
	Bytes int
	// Sum64 is the FNV-1a hash of the payload, for end-to-end integrity
	// checks without retaining the payload itself.
	Sum64 uint64
	// Arrival is the wall-clock time the last payload byte was read,
	// relative to the receiver's start.
	Arrival time.Duration
	// NotifiedRate is the sender's declared rate in effect when the
	// picture arrived (bits/second).
	NotifiedRate float64
}

// PayloadSum64 computes the same FNV-1a hash the receiver records, for
// sender-side comparison.
func PayloadSum64(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}

// Report summarizes a receive session.
type Report struct {
	Pictures      []ReceivedPicture
	Notifications []RateNotification
	// Elapsed is the total session duration.
	Elapsed time.Duration
}

// TotalBytes sums the received payload sizes.
func (r *Report) TotalBytes() int {
	total := 0
	for _, p := range r.Pictures {
		total += p.Bytes
	}
	return total
}

// Receive drains a sender's stream until the end marker, recording
// arrival times and rate notifications. The reader should be the
// connection's read side; cancellation is honoured between messages when
// conn supports read deadlines via the optional deadline hook.
func Receive(ctx context.Context, conn io.Reader) (*Report, error) {
	start := time.Now()
	report := &Report{}
	currentRate := 0.0
	for {
		if err := ctx.Err(); err != nil {
			return report, err
		}
		msg, err := ReadMessage(conn)
		if err == ErrClosed {
			report.Elapsed = time.Since(start)
			return report, nil
		}
		if err != nil {
			return report, err
		}
		switch m := msg.(type) {
		case *RateNotification:
			report.Notifications = append(report.Notifications, *m)
			currentRate = m.Rate
		case *PictureFrame:
			report.Pictures = append(report.Pictures, ReceivedPicture{
				Index:        m.Index,
				Type:         m.Type,
				Bytes:        len(m.Payload),
				Sum64:        PayloadSum64(m.Payload),
				Arrival:      time.Since(start),
				NotifiedRate: currentRate,
			})
		default:
			return report, fmt.Errorf("transport: unexpected message %T", msg)
		}
	}
}
