package metrics

import (
	"math"
	"testing"
)

func TestAtExactBoundaries(t *testing.T) {
	f := mustStep(t, []float64{1, 2}, []float64{10, 20}, 3)
	// Right-continuity: the value AT a breakpoint is the new segment's.
	if f.At(2) != 20 {
		t.Fatalf("At(2) = %v, want 20", f.At(2))
	}
	// End is exclusive.
	if f.At(3) != 0 {
		t.Fatalf("At(End) = %v, want 0", f.At(3))
	}
	if f.At(1) != 10 {
		t.Fatalf("At(first) = %v, want 10", f.At(1))
	}
}

func TestCompactSingleSegment(t *testing.T) {
	f := mustStep(t, []float64{0}, []float64{5}, 1)
	c := f.Compact()
	if len(c.Times) != 1 || c.Values[0] != 5 {
		t.Fatalf("compact mangled single segment: %+v", c)
	}
}

func TestShiftNegative(t *testing.T) {
	f := mustStep(t, []float64{2, 3}, []float64{1, 2}, 4)
	g := f.Shift(-2)
	if g.Times[0] != 0 || g.End != 2 {
		t.Fatalf("negative shift wrong: %+v", g)
	}
	if math.Abs(g.Integral()-f.Integral()) > 1e-12 {
		t.Fatal("negative shift changed integral")
	}
}

func TestPositiveAreaDiffIdenticalIsZero(t *testing.T) {
	f := mustStep(t, []float64{0, 1, 2}, []float64{3, 7, 1}, 5)
	d, err := PositiveAreaDiff(f, f, -1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("self area diff %v", d)
	}
}

func TestChangesSingleSegment(t *testing.T) {
	f := mustStep(t, []float64{0}, []float64{5}, 1)
	if f.Changes(1e-9) != 0 {
		t.Fatal("single segment has no changes")
	}
}

func TestMeanZeroDuration(t *testing.T) {
	// Degenerate support is rejected by the constructor; Mean on a
	// normal function is integral/duration.
	f := mustStep(t, []float64{0, 1}, []float64{2, 4}, 2)
	if math.Abs(f.Mean()-3) > 1e-12 {
		t.Fatalf("Mean = %v", f.Mean())
	}
}
