// Multiplex: the statistical-multiplexing motivation for lossless
// smoothing.
//
// Eight independent VBR video streams share a finite-buffer cell
// multiplexer whose link has 25% headroom over the aggregate mean rate.
// Raw streams (each picture transmitted within its own 1/30 s display
// period) slam the buffer with I-picture bursts an order of magnitude
// above the mean; smoothed streams present per-pattern rates. The cell
// loss difference is the multiplexing gain the paper cites from
// Reibman/Berger and Reininger et al.
package main

import (
	"fmt"
	"log"

	"mpegsmooth"
)

func main() {
	const streams = 8
	var raw, smoothed []*mpegsmooth.StepFunc
	var meanSum float64
	for i := 0; i < streams; i++ {
		// Independent single-scene sources: the I≫B picture-scale
		// fluctuation is what differs between the two runs.
		tr, err := mpegsmooth.GenerateTrace(mpegsmooth.SynthConfig{
			Name:  fmt.Sprintf("cam-%d", i),
			GOP:   mpegsmooth.GOP{M: 3, N: 9},
			IBase: 210_000, PBase: 95_000, BBase: 32_000,
			Scenes: []mpegsmooth.ScenePhase{{Pictures: 135, Complexity: 1, Motion: 0.9}},
			Seed:   int64(i + 1),
		})
		if err != nil {
			log.Fatal(err)
		}
		meanSum += tr.MeanRate()

		r, err := mpegsmooth.RawRateFunc(tr)
		if err != nil {
			log.Fatal(err)
		}
		raw = append(raw, r)

		sched, err := mpegsmooth.Smooth(tr, mpegsmooth.Config{K: 1, H: tr.GOP.N, D: 0.2})
		if err != nil {
			log.Fatal(err)
		}
		s, err := sched.RateFunc()
		if err != nil {
			log.Fatal(err)
		}
		smoothed = append(smoothed, s)
	}

	link := meanSum * 1.25
	offsets := make([]float64, streams)
	for i := range offsets {
		offsets[i] = float64(i) * 0.011
	}
	run := func(label string, rates []*mpegsmooth.StepFunc) mpegsmooth.MuxStats {
		st, err := mpegsmooth.RunMux(mpegsmooth.MuxRunConfig{
			Rates:       rates,
			Offsets:     offsets,
			LinkRate:    link,
			BufferCells: 100,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s loss %.4f  (%7d of %7d cells lost, queue high-water %d)\n",
			label, st.LossProbability(), st.Lost, st.Arrived, st.MaxQueue)
		return st
	}

	fmt.Printf("%d streams, link %.1f Mbps (25%% headroom), buffer 100 cells (%d bits)\n\n",
		streams, link/1e6, 100*mpegsmooth.CellBits)
	r := run("raw", raw)
	s := run("smoothed", smoothed)
	if s.Lost == 0 && r.Lost > 0 {
		fmt.Println("\nsmoothing eliminated cell loss entirely at this multiplexing level")
	} else if r.Lost > 0 {
		fmt.Printf("\nsmoothing cut the loss probability by %.1fx\n",
			r.LossProbability()/s.LossProbability())
	}

	// Large-scale coda: the same comparison at 1000 streams, on the
	// fluid engine. Per-cell simulation of a thousand streams would fire
	// hundreds of millions of events; the fluid layer steps one rate
	// segment per event, so the whole run is a few hundred thousand.
	// Every tenth stream is a long-range-dependent on/off background
	// connection behind a token-bucket shaper (a limited-bandwidth
	// access link) — the cross traffic smoothed video must coexist with.
	const big = 1000
	fluid := func(label string, videoRate []*mpegsmooth.StepFunc) *mpegsmooth.FluidResult {
		var fs []mpegsmooth.FluidStream
		for i := 0; i < big; i++ {
			if i%10 == 9 {
				bg, err := mpegsmooth.OnOffPareto(mpegsmooth.OnOffParetoConfig{
					PeakRate: 2.5e6, MeanOn: 0.3, MeanOff: 0.7,
					Duration: 4.5, Seed: int64(i),
				})
				if err != nil {
					log.Fatal(err)
				}
				fs = append(fs, mpegsmooth.FluidStream{
					Rate:   bg,
					Offset: float64(i%137) * 0.021,
					Shaper: &mpegsmooth.ShaperConfig{Sustained: 1.5e6, Peak: 2.5e6, BurstBits: 1e5},
				})
				continue
			}
			fs = append(fs, mpegsmooth.FluidStream{
				Rate:   videoRate[i%streams],
				Offset: float64(i%137) * 0.021,
			})
		}
		// Aggregate mean: 90% video streams plus 10% background at
		// peak·duty = 2.5 Mbps·0.3.
		aggMean := 0.9*big*meanSum/streams + 0.1*big*2.5e6*0.3
		res, err := mpegsmooth.RunMuxFluid(mpegsmooth.FluidConfig{
			Streams:     fs,
			LinkRate:    aggMean * 1.02,
			BufferCells: 2 * big,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s loss %.5f  (%d engine events for %.0f cells)\n",
			label, res.LossProbability(), res.Events, res.ArrivedCells)
		return res
	}
	fmt.Printf("\n-- %d streams (fluid engine, 2%% headroom, LRD background) --\n\n", big)
	fr := fluid("raw", raw)
	fs := fluid("smoothed", smoothed)
	if fs.LostCells > 0 && fr.LostCells > 0 {
		fmt.Printf("\nat %d streams smoothing still cuts the loss probability by %.1fx\n",
			big, fr.LossProbability()/fs.LossProbability())
	}
}
