package bitio

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter()
	pattern := []uint32{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if got := w.BitsWritten(); got != int64(len(pattern)) {
		t.Fatalf("BitsWritten = %d, want %d", got, len(pattern))
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("ReadBit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestWriteBitsBoundaries(t *testing.T) {
	cases := []struct {
		v uint32
		n uint
	}{
		{0, 1}, {1, 1}, {0xFF, 8}, {0x1234, 16}, {0xDEADBEEF, 32},
		{0x7, 3}, {0x15, 5}, {0x3FF, 10}, {0x1FFFFF, 21},
	}
	w := NewWriter()
	for _, c := range cases {
		w.WriteBits(c.v, c.n)
	}
	r := NewReader(w.Bytes())
	for i, c := range cases {
		got, err := r.ReadBits(c.n)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.v {
			t.Fatalf("case %d: got %#x want %#x", i, got, c.v)
		}
	}
}

func TestWriteBitsMasksHighBits(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xFFFF, 4) // only low 4 bits should be kept
	b := w.Bytes()
	if b[0] != 0xF0 {
		t.Fatalf("got %#x, want 0xF0", b[0])
	}
}

func TestAlignment(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0x5, 3)
	if w.Aligned() {
		t.Fatal("should not be aligned after 3 bits")
	}
	pad := w.Align()
	if pad != 5 {
		t.Fatalf("pad = %d, want 5", pad)
	}
	if !w.Aligned() {
		t.Fatal("should be aligned after Align")
	}
	if w.Align() != 0 {
		t.Fatal("second Align should pad 0")
	}
	b := w.Bytes()
	if len(b) != 1 || b[0] != 0xA0 {
		t.Fatalf("bytes = %v, want [0xA0]", b)
	}
}

func TestStartCodeRoundTrip(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0x3, 3) // unaligned data before the start code
	w.WriteStartCode(0xB3)
	w.WriteBits(0xABC, 12)
	w.WriteStartCode(0x00)
	data := w.Bytes()

	r := NewReader(data)
	if _, err := r.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	code, err := r.ReadStartCode()
	if err != nil {
		t.Fatal(err)
	}
	if code != 0xB3 {
		t.Fatalf("code = %#x, want 0xB3", code)
	}
	v, err := r.ReadBits(12)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xABC {
		t.Fatalf("payload = %#x, want 0xABC", v)
	}
	code, err = r.ReadStartCode()
	if err != nil {
		t.Fatal(err)
	}
	if code != 0x00 {
		t.Fatalf("code = %#x, want 0x00", code)
	}
}

func TestNextStartCodeScan(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xFFFFFF, 24) // noise that is not a start code
	w.WriteStartCode(0x01)
	w.WriteBits(0xFFFF, 16)
	w.WriteStartCode(0x02)
	data := w.Bytes()

	r := NewReader(data)
	code, err := r.NextStartCode()
	if err != nil {
		t.Fatal(err)
	}
	if code != 0x01 {
		t.Fatalf("first scan found %#x, want 0x01", code)
	}
	// Consume the found code, then scan again.
	if _, err := r.ReadStartCode(); err != nil {
		t.Fatal(err)
	}
	code, err = r.NextStartCode()
	if err != nil {
		t.Fatal(err)
	}
	if code != 0x02 {
		t.Fatalf("second scan found %#x, want 0x02", code)
	}
	if _, err := r.ReadStartCode(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.NextStartCode(); err != ErrNoStartCode {
		t.Fatalf("expected ErrNoStartCode, got %v", err)
	}
}

func TestNextStartCodeNone(t *testing.T) {
	r := NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := r.NextStartCode(); err != ErrNoStartCode {
		t.Fatalf("want ErrNoStartCode, got %v", err)
	}
}

func TestStuffBytes(t *testing.T) {
	w := NewWriter()
	if err := w.StuffBytes(3); err != nil {
		t.Fatal(err)
	}
	w.WriteStartCode(0xB8)
	data := w.Bytes()
	want := []byte{0, 0, 0, 0, 0, 1, 0xB8}
	if !bytes.Equal(data, want) {
		t.Fatalf("data = %v, want %v", data, want)
	}

	w2 := NewWriter()
	w2.WriteBit(1)
	if err := w2.StuffBytes(1); err == nil {
		t.Fatal("StuffBytes on unaligned writer should fail")
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader([]byte{0xAA})
	if _, err := r.ReadBits(9); err != io.ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
	if _, err := r.ReadBits(8); err != nil {
		t.Fatalf("8 bits should be available: %v", err)
	}
	if _, err := r.ReadBit(); err != io.ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF at end, got %v", err)
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	r := NewReader([]byte{0xC3})
	v1, err := r.PeekBits(4)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := r.ReadBits(4)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 || v1 != 0xC {
		t.Fatalf("peek %#x read %#x, want 0xC", v1, v2)
	}
}

func TestSeekAndSkip(t *testing.T) {
	r := NewReader([]byte{0x0F, 0xF0})
	if err := r.SkipBits(4); err != nil {
		t.Fatal(err)
	}
	v, _ := r.ReadBits(8)
	if v != 0xFF {
		t.Fatalf("got %#x, want 0xFF", v)
	}
	if err := r.SeekBit(0); err != nil {
		t.Fatal(err)
	}
	v, _ = r.ReadBits(4)
	if v != 0 {
		t.Fatalf("got %#x, want 0", v)
	}
	if err := r.SeekBit(17); err == nil {
		t.Fatal("seek past end should fail")
	}
	if err := r.SkipBits(100); err == nil {
		t.Fatal("skip past end should fail")
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xFFFF, 16)
	w.Reset()
	if w.BitsWritten() != 0 || w.Len() != 0 {
		t.Fatal("Reset did not clear writer")
	}
	w.WriteBits(0x1, 1)
	if b := w.Bytes(); len(b) != 1 || b[0] != 0x80 {
		t.Fatalf("after reset got %v", b)
	}
}

// Property: any sequence of (value, width) writes reads back identically.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count)%200 + 1
		type item struct {
			v uint32
			n uint
		}
		items := make([]item, n)
		w := NewWriter()
		for i := range items {
			width := uint(rng.Intn(32) + 1)
			v := rng.Uint32() & mask32(width)
			items[i] = item{v, width}
			w.WriteBits(v, width)
		}
		r := NewReader(w.Bytes())
		for _, it := range items {
			got, err := r.ReadBits(it.n)
			if err != nil || got != it.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: BitsWritten always equals the sum of widths written.
func TestBitsWrittenProperty(t *testing.T) {
	f := func(widths []uint8) bool {
		w := NewWriter()
		var total int64
		for _, ww := range widths {
			n := uint(ww) % 33
			w.WriteBits(0, n)
			total += int64(n)
		}
		return w.BitsWritten() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i&0xFFFF == 0 {
			w.Reset()
		}
		w.WriteBits(uint32(i), uint(i%32)+1)
	}
}

func BenchmarkReadBits(b *testing.B) {
	w := NewWriter()
	for i := 0; i < 1<<16; i++ {
		w.WriteBits(uint32(i), 16)
	}
	data := w.Bytes()
	r := NewReader(data)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Remaining() < 16 {
			r.SeekBit(0)
		}
		if _, err := r.ReadBits(16); err != nil {
			b.Fatal(err)
		}
	}
}
