package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpegsmooth/internal/mpeg"
)

// TestSessionRejectsInputBeforeMutating: a Push after Close, or with an
// invalid size, must fail before touching any session state — the
// regression guarded here is a rejected push perturbing drain state
// through a premature append.
func TestSessionRejectsInputBeforeMutating(t *testing.T) {
	gop := mpeg.GOP{M: 3, N: 9}
	s, err := NewSession(1.0/30, gop, Config{K: 1, H: 9, D: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Push(40_000 + int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Push(-5); err == nil {
		t.Fatal("negative size accepted")
	}
	if got := s.Pushed(); got != 20 {
		t.Fatalf("rejected size mutated state: Pushed = %d, want 20", got)
	}
	tail := s.Close()
	if s.Pending() != 0 {
		t.Fatalf("Pending after Close = %d", s.Pending())
	}
	if ds, err := s.Push(100); err == nil {
		t.Fatal("Push after Close accepted")
	} else if ds != nil {
		t.Fatal("Push after Close returned decisions")
	}
	if got := s.Pushed(); got != 20 {
		t.Fatalf("post-Close Push mutated state: Pushed = %d, want 20", got)
	}
	// A second Close after the rejected Push emits nothing new: the
	// rejected input left no trace in drain state.
	if extra := s.Close(); len(extra) != 0 {
		t.Fatalf("Close after rejected Push emitted %d extra decisions", len(extra))
	}
	_ = tail
}

// TestSessionChunkedPushMatchesSmooth drives a Session with randomized
// push chunk sizes in 1..H+K and asserts bit-for-bit agreement with the
// offline Smooth — the live/offline equivalence property extended to
// arbitrary arrival batching. (Chunking cannot change the result: drain
// emits a decision exactly when its inputs are determined, regardless of
// how many sizes arrived in one batch.)
func TestSessionChunkedPushMatchesSmooth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		cfg := randomConfig(rng, tr)
		offline, err := Smooth(tr, cfg)
		if err != nil {
			return false
		}
		s, err := NewSession(tr.Tau, tr.GOP, cfg)
		if err != nil {
			return false
		}
		var live []Decision
		for i := 0; i < tr.Len(); {
			chunk := rng.Intn(cfg.H+cfg.K) + 1 // 1..H+K
			for c := 0; c < chunk && i < tr.Len(); c++ {
				ds, err := s.Push(tr.Sizes[i])
				if err != nil {
					return false
				}
				live = append(live, ds...)
				i++
			}
		}
		live = append(live, s.Close()...)
		if len(live) != tr.Len() {
			t.Logf("seed %d: %d decisions for %d pictures", seed, len(live), tr.Len())
			return false
		}
		for i, d := range live {
			if d.Picture != i || d.Rate != offline.Rates[i] ||
				d.Start != offline.Start[i] || d.Depart != offline.Depart[i] ||
				d.Delay != offline.Delays[i] {
				t.Logf("seed %d cfg %+v picture %d: session (r=%v t=%v) != offline (r=%v t=%v)",
					seed, cfg, i, d.Rate, d.Start, offline.Rates[i], offline.Start[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSessionObserver: the hook fires once per decision, in order, with
// slack and depth consistent with the emitted decisions.
func TestSessionObserver(t *testing.T) {
	tr := paperTrace(t, 108)
	var obs []Observation
	s, err := NewSession(tr.Tau, tr.GOP, Config{K: 1, H: 9, D: 0.2},
		WithObserver(func(o Observation) { obs = append(obs, o) }))
	if err != nil {
		t.Fatal(err)
	}
	var ds []Decision
	for _, sz := range tr.Sizes {
		out, err := s.Push(sz)
		if err != nil {
			t.Fatal(err)
		}
		ds = append(ds, out...)
	}
	ds = append(ds, s.Close()...)
	if len(obs) != len(ds) || len(obs) != tr.Len() {
		t.Fatalf("%d observations for %d decisions (%d pictures)", len(obs), len(ds), tr.Len())
	}
	for i, o := range obs {
		d := ds[i]
		if o.Picture != i || o.Rate != d.Rate {
			t.Fatalf("observation %d: picture %d rate %v, decision picture %d rate %v",
				i, o.Picture, o.Rate, d.Picture, d.Rate)
		}
		if o.Depth < 1 || o.Depth > 9 {
			t.Fatalf("picture %d: lookahead depth %d outside 1..H", i, o.Depth)
		}
		// K=1 keeps every decision within the band: non-negative slack.
		if o.LowerSlack < 0 || o.UpperSlack < 0 {
			t.Fatalf("picture %d: negative slack (%v, %v)", i, o.LowerSlack, o.UpperSlack)
		}
		if got := d.Rate - d.Lower; got != o.LowerSlack {
			t.Fatalf("picture %d: slack mismatch %v != %v", i, got, o.LowerSlack)
		}
	}
	// The estimator is imperfect on a real trace: some window must show
	// a nonzero estimation error.
	anyErr := false
	for _, o := range obs {
		if o.EstimatorError != 0 {
			anyErr = true
			break
		}
	}
	if !anyErr {
		t.Error("no decision observed a nonzero estimator error")
	}
}

// TestSessionObserverSeesCapViolations: under a binding cap the observer
// reports negative lower slack exactly where the schedule reports policy
// violations.
func TestSessionObserverSeesCapViolations(t *testing.T) {
	tr := paperTrace(t, 108)
	base, err := Smooth(tr, Config{K: 1, H: 9, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	peak := 0.0
	for _, r := range base.Rates {
		if r > peak {
			peak = r
		}
	}
	cfg := Config{K: 1, H: 9, D: 0.2, Policy: CappedRate{Cap: peak * 0.8}}
	var negative []int
	sess, err := newTraceSession(tr, cfg, WithObserver(func(o Observation) {
		if o.LowerSlack < 0 {
			negative = append(negative, o.Picture)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	sched := scheduleFrom(tr, cfg, sess.runAll(tr.Sizes))
	if len(negative) == 0 {
		t.Fatal("binding cap but observer saw no negative slack")
	}
	if len(sched.PolicyViolations()) == 0 {
		t.Fatal("binding cap but schedule reports no violations")
	}
}

// TestSessionPeakRateMatchesSchedule: the Session's running peak — the
// traffic descriptor a smoothd admission controller reserves — is
// monotone during the stream and ends exactly at the offline schedule's
// PeakRate.
func TestSessionPeakRateMatchesSchedule(t *testing.T) {
	tr := paperTrace(t, 54)
	sched, err := Smooth(tr, Config{K: 1, H: 9, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(tr.Tau, tr.GOP, Config{K: 1, H: 9, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if s.PeakRate() != 0 {
		t.Fatalf("peak before any decision: %v", s.PeakRate())
	}
	prev := 0.0
	for _, size := range tr.Sizes {
		if _, err := s.Push(size); err != nil {
			t.Fatal(err)
		}
		if s.PeakRate() < prev {
			t.Fatalf("peak decreased: %v -> %v", prev, s.PeakRate())
		}
		prev = s.PeakRate()
	}
	s.Close()
	if got, want := s.PeakRate(), sched.PeakRate(); got != want {
		t.Fatalf("session peak %v, schedule peak %v", got, want)
	}
	// And the schedule's peak really is the max of its rates.
	max := 0.0
	for _, r := range sched.Rates {
		if r > max {
			max = r
		}
	}
	if sched.PeakRate() != max {
		t.Fatalf("PeakRate %v, max rate %v", sched.PeakRate(), max)
	}
}
