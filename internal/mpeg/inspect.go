package mpeg

import (
	"errors"
	"fmt"

	"mpegsmooth/internal/bitio"
)

// StreamInfo summarizes a coded stream without decoding picture content —
// exactly what a transport protocol can learn by scanning start codes
// (Section 2: every header begins with a 32-bit start code that is unique
// in the coded bit stream).
type StreamInfo struct {
	Header       SequenceHeader
	Pictures     []PictureInfo // transmission order; Bits measured between start codes
	GroupCount   int
	SliceCount   int
	OverheadBits int64 // sequence and GOP header bits not attributed to pictures
	TotalBits    int64
}

// Inspect walks the start codes of a coded stream and measures every
// picture's size in bits, without entropy-decoding any macroblock data.
// This is how a sender-side transport implementation would obtain the
// picture size sequence S_1, S_2, ... that the smoothing algorithm
// consumes.
func Inspect(data []byte) (*StreamInfo, error) {
	r := bitio.NewReader(data)
	code, err := r.ReadStartCode()
	if err != nil {
		return nil, fmt.Errorf("mpeg: no sequence header: %w", err)
	}
	if code != SequenceHeaderCod {
		return nil, fmt.Errorf("mpeg: stream starts with %#02x, want sequence header", code)
	}
	hdr, err := readSequenceHeader(r)
	if err != nil {
		return nil, err
	}
	info := &StreamInfo{Header: hdr, TotalBits: int64(len(data)) * 8}

	// Everything before the first picture start code is overhead.
	lastBoundary := int64(0)
	inPicture := false
	pos := 0
	maxIdx := 0

	closePicture := func(boundary int64) {
		if inPicture {
			p := &info.Pictures[len(info.Pictures)-1]
			p.Bits = boundary - p.BitOffset
			inPicture = false
		} else {
			info.OverheadBits += boundary - lastBoundary
		}
		lastBoundary = boundary
	}

	for {
		code, err := r.NextStartCode()
		if err != nil {
			if errors.Is(err, bitio.ErrNoStartCode) {
				closePicture(info.TotalBits)
				break
			}
			return nil, err
		}
		at := r.BitPos()
		if _, err := r.ReadStartCode(); err != nil {
			return nil, err
		}
		switch {
		case IsSliceStartCode(code):
			if !inPicture {
				return nil, fmt.Errorf("mpeg: slice start code outside picture at bit %d", at)
			}
			info.SliceCount++
		case code == PictureStartCode:
			closePicture(at)
			ph, err := readPictureHeader(r)
			if err != nil {
				return nil, err
			}
			displayIdx := resolveTemporalRef(ph.TemporalRef, maxIdx)
			if displayIdx > maxIdx {
				maxIdx = displayIdx
			}
			info.Pictures = append(info.Pictures, PictureInfo{
				DisplayIdx:  displayIdx,
				TransmitPos: pos,
				Type:        ph.Type,
				BitOffset:   at,
			})
			pos++
			inPicture = true
		case code == GroupStartCode:
			closePicture(at)
			if _, err := readGroupHeader(r); err != nil {
				return nil, err
			}
			info.GroupCount++
		case code == SequenceHeaderCod:
			closePicture(at)
			if _, err := readSequenceHeader(r); err != nil {
				return nil, err
			}
		case code == SequenceEndCode:
			closePicture(at)
			info.OverheadBits += 32
			lastBoundary = r.BitPos()
		case code == UserDataStartCode:
			closePicture(at)
		default:
			return nil, fmt.Errorf("mpeg: unknown start code %#02x at bit %d", code, at)
		}
	}
	return info, nil
}

// SizesInDisplayOrder returns per-picture sizes in display order. It
// errors if picture display indices are not a contiguous 0..n-1 range.
func (s *StreamInfo) SizesInDisplayOrder() ([]int64, error) {
	sizes := make([]int64, len(s.Pictures))
	seen := make([]bool, len(s.Pictures))
	for _, p := range s.Pictures {
		if p.DisplayIdx < 0 || p.DisplayIdx >= len(sizes) || seen[p.DisplayIdx] {
			return nil, fmt.Errorf("mpeg: display index %d invalid or duplicated", p.DisplayIdx)
		}
		seen[p.DisplayIdx] = true
		sizes[p.DisplayIdx] = p.Bits
	}
	return sizes, nil
}
