package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mpegsmooth/internal/mpeg"
)

func mustDriving1(t testing.TB, n int) *Trace {
	t.Helper()
	tr, err := Driving1(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestValidate(t *testing.T) {
	good := &Trace{Name: "x", Tau: 1.0 / 30, GOP: mpeg.GOP{M: 3, N: 9}, Sizes: []int64{100, 50, 50}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good trace invalid: %v", err)
	}
	for _, bad := range []*Trace{
		{Tau: 0, GOP: mpeg.GOP{M: 3, N: 9}, Sizes: []int64{1}},
		{Tau: 1.0 / 30, GOP: mpeg.GOP{M: 3, N: 10}, Sizes: []int64{1}},
		{Tau: 1.0 / 30, GOP: mpeg.GOP{M: 3, N: 9}},
		{Tau: 1.0 / 30, GOP: mpeg.GOP{M: 3, N: 9}, Sizes: []int64{100, 0}},
		{Tau: 1.0 / 30, GOP: mpeg.GOP{M: 3, N: 9}, Sizes: []int64{-5}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("trace %+v should be invalid", bad)
		}
	}
}

func TestBasicAccessors(t *testing.T) {
	tr := &Trace{Name: "x", Tau: 0.1, GOP: mpeg.GOP{M: 1, N: 2}, Sizes: []int64{1000, 500, 800, 700}}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.TotalBits() != 3000 {
		t.Fatalf("TotalBits = %d", tr.TotalBits())
	}
	if math.Abs(tr.Duration()-0.4) > 1e-12 {
		t.Fatalf("Duration = %v", tr.Duration())
	}
	if math.Abs(tr.MeanRate()-7500) > 1e-9 {
		t.Fatalf("MeanRate = %v", tr.MeanRate())
	}
	if math.Abs(tr.PeakPictureRate()-10000) > 1e-9 {
		t.Fatalf("PeakPictureRate = %v", tr.PeakPictureRate())
	}
	if tr.TypeOf(0) != mpeg.TypeI || tr.TypeOf(1) != mpeg.TypeP {
		t.Fatal("TypeOf wrong")
	}
}

func TestSlice(t *testing.T) {
	tr := mustDriving1(t, 90)
	sub, err := tr.Slice(9, 27)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 18 {
		t.Fatalf("sub len %d", sub.Len())
	}
	if sub.Sizes[0] != tr.Sizes[9] {
		t.Fatal("slice copied wrong range")
	}
	sub.Sizes[0] = 42
	if tr.Sizes[9] == 42 {
		t.Fatal("Slice aliases parent storage")
	}
	if _, err := tr.Slice(5, 5); err == nil {
		t.Fatal("empty slice should fail")
	}
	if _, err := tr.Slice(-1, 5); err == nil {
		t.Fatal("negative from should fail")
	}
	if _, err := tr.Slice(0, 1000); err == nil {
		t.Fatal("overlong slice should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustDriving1(t, 270)
	b := mustDriving1(t, 270)
	for i := range a.Sizes {
		if a.Sizes[i] != b.Sizes[i] {
			t.Fatalf("trace differs at %d between identical seeds", i)
		}
	}
	c, err := Driving1(270, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Sizes {
		if a.Sizes[i] != c.Sizes[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestPaperCalibration asserts the qualitative statistics the paper
// reports for its sequences (Figure 3 and Section 5.1).
func TestPaperCalibration(t *testing.T) {
	seqs, err := PaperSequences(270, 7)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Trace{}
	for _, tr := range seqs {
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", tr.Name, err)
		}
		byName[tr.Name] = tr
	}

	// Every sequence: I pictures are much larger than B pictures —
	// "for typical natural scenes, the size of an I picture is larger
	// than the size of a B picture by an order of magnitude."
	for name, tr := range byName {
		st := tr.Stats()
		iMean := st[mpeg.TypeI].Mean
		bMean := st[mpeg.TypeB].Mean
		pMean := st[mpeg.TypeP].Mean
		if iMean < 4*bMean {
			t.Errorf("%s: I mean %.0f not ≫ B mean %.0f", name, iMean, bMean)
		}
		if !(iMean > pMean && pMean > bMean) {
			t.Errorf("%s: ordering I=%.0f P=%.0f B=%.0f violated", name, iMean, pMean, bMean)
		}
	}

	// Driving1: I pictures around 200 kbit (Section 1's realistic numbers:
	// I about 200,000 bits, B about 20,000 bits at 640x480).
	d1 := byName["Driving1"].Stats()
	if d1[mpeg.TypeI].Mean < 150_000 || d1[mpeg.TypeI].Mean > 300_000 {
		t.Errorf("Driving1 I mean %.0f out of paper's range", d1[mpeg.TypeI].Mean)
	}
	// Mean rates: 640x480 sequences in the 1-3 Mbps band.
	for _, name := range []string{"Driving1", "Driving2", "Tennis"} {
		r := byName[name].MeanRate()
		if r < 1e6 || r > 3.2e6 {
			t.Errorf("%s mean rate %.2f Mbps outside 1-3 Mbps", name, r/1e6)
		}
	}
	// Backyard (352x288) runs near half: max smoothed rate about 1.5 Mbps.
	if r := byName["Backyard"].MeanRate(); r < 0.4e6 || r > 1.6e6 {
		t.Errorf("Backyard mean rate %.2f Mbps outside sub-1.5 Mbps band", r/1e6)
	}
	// Scene-to-scene smoothed rates differ by about a factor of 3 worst
	// case (Section 1). Compare driving scene vs close-up GOP sums.
	dtr := byName["Driving1"]
	gopRate := func(from int) float64 {
		var sum int64
		for i := from; i < from+9; i++ {
			sum += dtr.Sizes[i]
		}
		return float64(sum) / (9 * dtr.Tau)
	}
	fast := gopRate(27)  // inside scene 1
	slow := gopRate(135) // inside the close-up
	if ratio := fast / slow; ratio < 1.5 || ratio > 4.5 {
		t.Errorf("Driving1 scene rate ratio %.2f outside ~3x band", ratio)
	}
	// Unsmoothed peak: the intro's example — an I picture needs several
	// Mbps if sent in one picture period.
	if pk := dtr.PeakPictureRate(); pk < 5e6 {
		t.Errorf("Driving1 unsmoothed peak %.1f Mbps, expected > 5 Mbps", pk/1e6)
	}

	// GOP patterns match the paper.
	if byName["Driving1"].GOP.Pattern() != "IBBPBBPBB" {
		t.Error("Driving1 pattern wrong")
	}
	if byName["Driving2"].GOP.Pattern() != "IBPBPB" {
		t.Error("Driving2 pattern wrong")
	}
	if byName["Backyard"].GOP.Pattern() != "IBBPBBPBBPBB" {
		t.Error("Backyard pattern wrong")
	}
}

func TestSceneChangeVisibleInSizes(t *testing.T) {
	tr := mustDriving1(t, 270)
	// P/B pictures in the close-up scene (pictures 108..189) are much
	// smaller than in the driving scenes, per Section 5.1.
	stats := func(from, to int) (p, b float64) {
		var sp, sb, np, nb float64
		for i := from; i < to; i++ {
			switch tr.TypeOf(i) {
			case mpeg.TypeP:
				sp += float64(tr.Sizes[i])
				np++
			case mpeg.TypeB:
				sb += float64(tr.Sizes[i])
				nb++
			}
		}
		return sp / np, sb / nb
	}
	fastP, fastB := stats(18, 100)
	slowP, slowB := stats(120, 180)
	if fastP < 2*slowP {
		t.Errorf("driving-scene P mean %.0f not much larger than close-up %.0f", fastP, slowP)
	}
	if fastB < 2*slowB {
		t.Errorf("driving-scene B mean %.0f not much larger than close-up %.0f", fastB, slowB)
	}
}

func TestTennisRampAndSpikes(t *testing.T) {
	tr, err := Tennis(270, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Gradually increasing P/B sizes.
	early := meanType(tr, mpeg.TypeB, 0, 90)
	late := meanType(tr, mpeg.TypeB, 180, 270)
	if late < 1.5*early {
		t.Errorf("Tennis B sizes should ramp: early %.0f late %.0f", early, late)
	}
	// Two isolated large P pictures in the first half.
	pMean := meanType(tr, mpeg.TypeP, 0, 135)
	spikes := 0
	for i := 0; i < 135; i++ {
		if tr.TypeOf(i) == mpeg.TypeP && float64(tr.Sizes[i]) > 1.8*pMean {
			spikes++
		}
	}
	if spikes < 1 || spikes > 6 {
		t.Errorf("Tennis first half has %d P spikes, expected a couple", spikes)
	}
}

func meanType(tr *Trace, ty mpeg.PictureType, from, to int) float64 {
	var s, n float64
	for i := from; i < to && i < tr.Len(); i++ {
		if tr.TypeOf(i) == ty {
			s += float64(tr.Sizes[i])
			n++
		}
	}
	return s / n
}

func TestGenerateValidation(t *testing.T) {
	base := SynthConfig{
		Name: "x", GOP: mpeg.GOP{M: 3, N: 9},
		IBase: 1000, PBase: 500, BBase: 100,
		Scenes: []ScenePhase{{Pictures: 9, Complexity: 1, Motion: 1}},
	}
	if _, err := Generate(base); err != nil {
		t.Fatalf("base config: %v", err)
	}
	for i, mut := range []func(*SynthConfig){
		func(c *SynthConfig) { c.GOP.N = 10 },
		func(c *SynthConfig) { c.IBase = 0 },
		func(c *SynthConfig) { c.Scenes = nil },
		func(c *SynthConfig) { c.Scenes = []ScenePhase{{Pictures: 0}} },
	} {
		c := base
		mut(&c)
		if _, err := Generate(c); err == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
}

func TestStats(t *testing.T) {
	tr := &Trace{Name: "s", Tau: 1.0 / 30, GOP: mpeg.GOP{M: 1, N: 3}, Sizes: []int64{300, 100, 200, 330, 90, 210}}
	st := tr.Stats()
	i := st[mpeg.TypeI]
	if i.Count != 2 || i.Min != 300 || i.Max != 330 || math.Abs(i.Mean-315) > 1e-9 {
		t.Fatalf("I stats %+v", i)
	}
	p := st[mpeg.TypeP]
	if p.Count != 4 {
		t.Fatalf("P stats %+v", p)
	}
	if math.Abs(p.Mean-150) > 1e-9 {
		t.Fatalf("P mean %v", p.Mean)
	}
	if _, ok := st[mpeg.TypeB]; ok {
		t.Fatal("M=1 trace should have no B stats")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := mustDriving1(t, 90)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.GOP != tr.GOP || math.Abs(got.Tau-tr.Tau) > 1e-9 {
		t.Fatalf("metadata mismatch: %+v vs %+v", got, tr)
	}
	if len(got.Sizes) != len(tr.Sizes) {
		t.Fatalf("size count %d vs %d", len(got.Sizes), len(tr.Sizes))
	}
	for i := range got.Sizes {
		if got.Sizes[i] != tr.Sizes[i] {
			t.Fatalf("size %d: %d vs %d", i, got.Sizes[i], tr.Sizes[i])
		}
	}
}

func TestReadCSVRejectsCorruption(t *testing.T) {
	tr := mustDriving1(t, 18)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	for name, bad := range map[string]string{
		"no metadata":  strings.SplitN(good, "\n", 2)[1],
		"invalid type": strings.Replace(good, "0,I,", "0,X,", 1),
		"bad index":    strings.Replace(good, "\n1,B,", "\n7,B,", 1),
		"bad bits":     strings.Replace(good, "0,I,", "0,I,x", 1),
		"unknown key":  strings.Replace(good, "name=", "nom=", 1),
		"empty":        "",
	} {
		if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: corrupted CSV accepted", name)
		}
	}
	// A type deviating from the nominal pattern is NOT corruption: it is
	// an adaptive-pattern trace and round-trips through explicit Types.
	adaptive := strings.Replace(good, "\n1,B,", "\n1,P,", 1)
	tr2, err := ReadCSV(strings.NewReader(adaptive))
	if err != nil {
		t.Fatalf("adaptive-pattern CSV rejected: %v", err)
	}
	if tr2.Types == nil || tr2.TypeOf(1) != mpeg.TypeP {
		t.Fatal("explicit types not preserved")
	}
}

func TestConcatAndRepeat(t *testing.T) {
	a := mustDriving1(t, 90) // 10 patterns
	b := mustDriving1(t, 45) // 5 patterns
	joined, err := Concat("joined", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if joined.Len() != 135 {
		t.Fatalf("len %d", joined.Len())
	}
	if joined.Sizes[90] != b.Sizes[0] {
		t.Fatal("second trace misplaced")
	}
	if err := joined.Validate(); err != nil {
		t.Fatal(err)
	}

	rep, err := a.Repeat(3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 270 {
		t.Fatalf("repeat len %d", rep.Len())
	}
	for i := 0; i < 90; i++ {
		if rep.Sizes[i] != rep.Sizes[i+90] || rep.Sizes[i] != rep.Sizes[i+180] {
			t.Fatalf("tile %d differs", i)
		}
	}

	// Misaligned middle input fails.
	c, err := a.Slice(0, 13) // not a multiple of 9
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Concat("bad", c, b); err == nil {
		t.Fatal("misaligned concat should fail")
	}
	// Mismatched tau fails.
	d := *b
	d.Tau = 0.05
	if _, err := Concat("bad", a, &d); err == nil {
		t.Fatal("tau mismatch should fail")
	}
	if _, err := Concat("empty"); err == nil {
		t.Fatal("empty concat should fail")
	}
	if _, err := a.Repeat(0); err == nil {
		t.Fatal("repeat 0 should fail")
	}
}

func TestFromPictureSizes(t *testing.T) {
	tr, err := FromPictureSizes("enc", 1.0/30, mpeg.GOP{M: 3, N: 9}, []int64{1000, 100, 100, 500, 100, 100, 500, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 9 {
		t.Fatalf("len %d", tr.Len())
	}
	if _, err := FromPictureSizes("bad", 1.0/30, mpeg.GOP{M: 3, N: 9}, []int64{0}); err == nil {
		t.Fatal("zero size should fail")
	}
}

// Property: generated traces always validate and repeat deterministically.
func TestGenerateProperty(t *testing.T) {
	f := func(seed int64, nScenes uint8, picsPerScene uint8) bool {
		ns := int(nScenes)%4 + 1
		pp := int(picsPerScene)%50 + 1
		cfg := SynthConfig{
			Name: "prop", GOP: mpeg.GOP{M: 3, N: 9},
			IBase: 200_000, PBase: 90_000, BBase: 30_000,
			Seed: seed,
		}
		for i := 0; i < ns; i++ {
			cfg.Scenes = append(cfg.Scenes, ScenePhase{Pictures: pp, Complexity: 0.5 + float64(i)*0.3, Motion: float64(i)})
		}
		tr, err := Generate(cfg)
		if err != nil {
			return false
		}
		if tr.Len() != ns*pp {
			return false
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenerateDriving1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Driving1(270, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
