package trace

import (
	"math"
	"testing"

	"mpegsmooth/internal/mpeg"
)

func TestAutocorrelationPeaksAtPatternLength(t *testing.T) {
	tr := mustDriving1(t, 270)
	acf, err := tr.Autocorrelation(2 * tr.GOP.N)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acf[0]-1) > 1e-12 {
		t.Fatalf("acf[0] = %v, want 1", acf[0])
	}
	// The correlation at lag N (same pattern position: I aligns with I)
	// dominates every intermediate lag — the structure the pattern
	// estimator exploits.
	n := tr.GOP.N
	for lag := 1; lag < n; lag++ {
		if acf[lag] >= acf[n] {
			t.Fatalf("acf[%d]=%.3f >= acf[N]=%.3f: pattern periodicity missing", lag, acf[lag], acf[n])
		}
	}
	if acf[n] < 0.5 {
		t.Fatalf("acf[N] = %.3f, expected strong periodicity", acf[n])
	}
}

func TestAutocorrelationValidation(t *testing.T) {
	tr := mustDriving1(t, 27)
	if _, err := tr.Autocorrelation(-1); err == nil {
		t.Error("negative lag should fail")
	}
	if _, err := tr.Autocorrelation(27); err == nil {
		t.Error("lag >= length should fail")
	}
}

func TestAutocorrelationConstantSequence(t *testing.T) {
	tr := &Trace{Name: "c", Tau: 0.1, GOP: mpeg.GOP{M: 1, N: 1}, Sizes: []int64{5, 5, 5, 5}}
	acf, err := tr.Autocorrelation(2)
	if err != nil {
		t.Fatal(err)
	}
	if acf[0] != 1 || acf[1] != 0 || acf[2] != 0 {
		t.Fatalf("constant acf = %v", acf)
	}
}

func TestPatternRates(t *testing.T) {
	tr := &Trace{Name: "p", Tau: 0.1, GOP: mpeg.GOP{M: 1, N: 2}, Sizes: []int64{300, 100, 500, 300, 200}}
	rates := tr.PatternRates()
	if len(rates) != 3 {
		t.Fatalf("%d pattern rates", len(rates))
	}
	if math.Abs(rates[0]-2000) > 1e-9 { // 400 bits / 0.2 s
		t.Fatalf("rate 0 = %v", rates[0])
	}
	if math.Abs(rates[2]-2000) > 1e-9 { // partial block: 200 bits / 0.1 s
		t.Fatalf("rate 2 = %v", rates[2])
	}
}

func TestSceneRateSpreadNearPaperValue(t *testing.T) {
	// Section 1: scene-to-scene smoothed rates differ by about 3x worst
	// case. Our Driving1 calibration must sit in that neighbourhood.
	tr := mustDriving1(t, 270)
	spread := tr.SceneRateSpread()
	if spread < 1.5 || spread > 5 {
		t.Fatalf("scene rate spread %.2f outside the ~3x neighbourhood", spread)
	}
}

func TestPeakToMean(t *testing.T) {
	tr := mustDriving1(t, 270)
	ptm := tr.PeakToMean()
	// I pictures an order of magnitude above B push the single-picture
	// peak well above the mean.
	if ptm < 2 || ptm > 10 {
		t.Fatalf("peak-to-mean %.2f implausible", ptm)
	}
}
