package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"

	"mpegsmooth/internal/core"
	"mpegsmooth/internal/mpeg"
	"mpegsmooth/internal/trace"
)

func TestWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewFrameWriter(&buf)
	if err := w.WriteRate(RateNotification{Index: 7, Rate: 1.5e6}); err != nil {
		t.Fatal(err)
	}
	payload := []byte{1, 2, 3, 4, 5}
	if err := w.WritePictureHeader(7, mpeg.TypeP, payload); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEnd(); err != nil {
		t.Fatal(err)
	}

	r := NewFrameReader(&buf)
	msg, err := r.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	rn, ok := msg.(*RateNotification)
	if !ok || rn.Index != 7 || rn.Rate != 1.5e6 {
		t.Fatalf("got %#v", msg)
	}
	msg, err = r.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	pf, ok := msg.(*PictureFrame)
	if !ok || pf.Index != 7 || pf.Type != mpeg.TypeP || !bytes.Equal(pf.Payload, payload) {
		t.Fatalf("got %#v", msg)
	}
	if _, err := r.ReadMessage(); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

// rawFrame builds a CRC-valid frame by hand, for tests that need to put
// field values on the wire the writer would refuse.
func rawFrame(kind byte, seq uint32, body []byte) []byte {
	buf := append([]byte{kind}, binary.BigEndian.AppendUint32(nil, seq)...)
	buf = append(buf, body...)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

func TestWireValidation(t *testing.T) {
	var buf bytes.Buffer
	w := NewFrameWriter(&buf)
	if err := w.WriteRate(RateNotification{Index: -1, Rate: 1}); err == nil {
		t.Error("negative index should fail")
	}
	if err := w.WriteRate(RateNotification{Index: 0, Rate: 0}); err == nil {
		t.Error("zero rate should fail")
	}
	if err := w.WritePictureHeader(0, mpeg.TypeI, nil); err == nil {
		t.Error("zero size should fail")
	}
	if err := w.WritePictureHeader(0, mpeg.TypeI, make([]byte, DefaultMaxPictureBytes+1)); err == nil {
		t.Error("oversize picture should fail")
	}
	// Unknown kind byte.
	if _, err := NewFrameReader(bytes.NewReader([]byte{0xFF})).ReadMessage(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("unknown kind: want ErrCorrupt, got %v", err)
	}
	// Truncated payload: header promises 100 bytes, only 3 arrive.
	var b2 bytes.Buffer
	w2 := NewFrameWriter(&b2)
	if err := w2.WritePictureHeader(0, mpeg.TypeI, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	b2.Write([]byte{1, 2, 3})
	if _, err := NewFrameReader(&b2).ReadMessage(); err == nil {
		t.Error("truncated payload should fail")
	}
	// Peer announcing an absurd payload size (a CRC-valid frame the
	// writer itself would never emit) must be rejected before any
	// allocation happens.
	body := make([]byte, 13)
	binary.BigEndian.PutUint32(body[5:9], 0xFFFFFFFF)
	r := NewFrameReader(bytes.NewReader(rawFrame(kindPicture, 0, body)))
	if _, err := r.ReadMessage(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized announcement: want ErrCorrupt, got %v", err)
	}
	if _, err := NewFrameReader(bytes.NewReader(nil)).ReadMessage(); err != io.EOF {
		t.Error("empty stream should EOF")
	}
}

// TestCorruptFrameDetected: a single flipped bit anywhere in a frame
// fails the CRC.
func TestCorruptFrameDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := NewFrameWriter(&buf).WriteRate(RateNotification{Index: 3, Rate: 2e6}); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for i := range clean {
		data := append([]byte(nil), clean...)
		data[i] ^= 0x10
		_, err := NewFrameReader(bytes.NewReader(data)).ReadMessage()
		if err == nil {
			t.Fatalf("flip at byte %d went undetected", i)
		}
	}
}

// TestSequenceDiscontinuityDetected: dropping a frame breaks the seq
// chain and is reported as ErrBadSeq, not silently decoded.
func TestSequenceDiscontinuityDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewFrameWriter(&buf)
	if err := w.WriteRate(RateNotification{Index: 0, Rate: 1e6}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEnd(); err != nil {
		t.Fatal(err)
	}
	// Skip the first frame entirely: rate frame is 1+4+12+4 bytes.
	data := buf.Bytes()[21:]
	if _, err := NewFrameReader(bytes.NewReader(data)).ReadMessage(); !errors.Is(err, ErrBadSeq) {
		t.Fatalf("want ErrBadSeq, got %v", err)
	}
}

// testSchedule builds a short smoothed schedule with its payloads.
func testSchedule(t testing.TB, pictures int) (*core.Schedule, [][]byte) {
	t.Helper()
	tr, err := trace.Generate(trace.SynthConfig{
		Name:  "wire",
		GOP:   mpeg.GOP{M: 3, N: 9},
		IBase: 40_000, PBase: 18_000, BBase: 6_000,
		Scenes: []trace.ScenePhase{{Pictures: pictures, Complexity: 1, Motion: 0.5}},
		Seed:   42,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.Smooth(tr, core.Config{K: 1, H: 9, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	payloads := make([][]byte, tr.Len())
	for i, s := range tr.Sizes {
		p := make([]byte, int((s+7)/8))
		rng.Read(p)
		payloads[i] = p
	}
	return sched, payloads
}

// runSession sends a schedule over the given connection pair at a
// compressed timescale and returns the receiver's report.
func runSession(t *testing.T, sched *core.Schedule, payloads [][]byte, cw io.Writer, cr io.Reader, closeW func() error) *Report {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sendErr := make(chan error, 1)
	go func() {
		s := &Sender{TimeScale: 100, Chunk: 512}
		err := s.Send(ctx, NewFrameWriter(cw), sched, payloads)
		if closeW != nil {
			closeW()
		}
		sendErr <- err
	}()
	report, err := Receive(ctx, cr)
	if err != nil {
		t.Fatalf("receive: %v", err)
	}
	if err := <-sendErr; err != nil {
		t.Fatalf("send: %v", err)
	}
	return report
}

func verifyReport(t *testing.T, sched *core.Schedule, payloads [][]byte, report *Report) {
	t.Helper()
	n := len(payloads)
	if len(report.Pictures) != n {
		t.Fatalf("received %d pictures, want %d", len(report.Pictures), n)
	}
	for i, p := range report.Pictures {
		if p.Index != i {
			t.Fatalf("picture %d has index %d (reordered?)", i, p.Index)
		}
		if p.Bytes != len(payloads[i]) {
			t.Fatalf("picture %d: %d bytes, want %d", i, p.Bytes, len(payloads[i]))
		}
		if p.Sum64 != PayloadSum64(payloads[i]) {
			t.Fatalf("picture %d: payload corrupted in flight", i)
		}
		if p.Type != sched.Trace.TypeOf(i) {
			t.Fatalf("picture %d: type %v, want %v", i, p.Type, sched.Trace.TypeOf(i))
		}
		if p.NotifiedRate <= 0 {
			t.Fatalf("picture %d arrived with no rate notification", i)
		}
		if p.NotifiedRate != sched.Rates[i] {
			t.Fatalf("picture %d: notified %v, schedule says %v", i, p.NotifiedRate, sched.Rates[i])
		}
	}
	// The number of notifications equals the number of rate changes + 1.
	changes := 1
	for i := 1; i < n; i++ {
		if sched.Rates[i] != sched.Rates[i-1] {
			changes++
		}
	}
	if len(report.Notifications) != changes {
		t.Fatalf("%d notifications, want %d", len(report.Notifications), changes)
	}
}

func TestSessionOverTCP(t *testing.T) {
	sched, payloads := testSchedule(t, 27)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	connCh := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			connCh <- c
		}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-connCh
	defer server.Close()

	report := runSession(t, sched, payloads, client, server, nil)
	verifyReport(t, sched, payloads, report)
}

func TestSessionOverPipe(t *testing.T) {
	sched, payloads := testSchedule(t, 18)
	cw, cr := net.Pipe()
	defer cw.Close()
	defer cr.Close()
	report := runSession(t, sched, payloads, cw, cr, nil)
	verifyReport(t, sched, payloads, report)
}

// TestSendDecisionsFromSession drives the sender straight from a
// core.Session's decision stream — no Schedule in between — and checks
// the receiver sees the same pictures, rates, and payloads as the
// schedule path.
func TestSendDecisionsFromSession(t *testing.T) {
	sched, payloads := testSchedule(t, 18)
	tr := sched.Trace
	sess, err := core.NewSession(tr.Tau, tr.GOP, sched.Config)
	if err != nil {
		t.Fatal(err)
	}
	var decisions []core.Decision
	for _, size := range tr.Sizes {
		ds, err := sess.Push(size)
		if err != nil {
			t.Fatal(err)
		}
		decisions = append(decisions, ds...)
	}
	decisions = append(decisions, sess.Close()...)
	if len(decisions) != tr.Len() {
		t.Fatalf("%d decisions for %d pictures", len(decisions), tr.Len())
	}

	cw, cr := net.Pipe()
	defer cw.Close()
	defer cr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sendErr := make(chan error, 1)
	go func() {
		s := &Sender{TimeScale: 100, Chunk: 512}
		sendErr <- s.SendDecisions(ctx, NewFrameWriter(cw), decisions, tr.TypeOf, payloads)
	}()
	report, err := Receive(ctx, cr)
	if err != nil {
		t.Fatalf("receive: %v", err)
	}
	if err := <-sendErr; err != nil {
		t.Fatalf("send: %v", err)
	}
	verifyReport(t, sched, payloads, report)
}

func TestPacingHonorsSchedule(t *testing.T) {
	// At TimeScale 100, a ~0.9 s schedule replays in ~9 ms. Verify the
	// session takes at least the scheduled duration (pacing is real) and
	// arrival spacing is monotone.
	sched, payloads := testSchedule(t, 27)
	cw, cr := net.Pipe()
	defer cw.Close()
	defer cr.Close()
	start := time.Now()
	report := runSession(t, sched, payloads, cw, cr, nil)
	elapsed := time.Since(start)
	n := len(sched.Rates)
	wantMin := time.Duration(sched.Depart[n-1] / 100 * float64(time.Second))
	if elapsed < wantMin {
		t.Fatalf("session took %v, pacing demands at least %v", elapsed, wantMin)
	}
	for i := 1; i < len(report.Pictures); i++ {
		if report.Pictures[i].Arrival < report.Pictures[i-1].Arrival {
			t.Fatalf("arrival order violated at %d", i)
		}
	}
}

func TestArrivalTimesTrackSchedule(t *testing.T) {
	// Each picture's last byte must arrive close to its scheduled
	// departure time (scaled). Loose tolerance: scheduler jitter, pipe
	// handoff, and test-machine noise.
	sched, payloads := testSchedule(t, 27)
	cw, cr := net.Pipe()
	defer cw.Close()
	defer cr.Close()
	const scale = 20.0
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() {
		s := &Sender{TimeScale: scale, Chunk: 512}
		s.Send(ctx, NewFrameWriter(cw), sched, payloads)
	}()
	report, err := Receive(ctx, cr)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Pictures) != len(payloads) {
		t.Fatalf("received %d pictures", len(report.Pictures))
	}
	for i, p := range report.Pictures {
		want := sched.Depart[i] / scale
		got := p.Arrival.Seconds()
		// Never early beyond one chunk; late by at most 50 ms wall time.
		if got < want-0.005 {
			t.Fatalf("picture %d arrived %.4fs, before scheduled %.4fs", i, got, want)
		}
		if got > want+0.05 {
			t.Fatalf("picture %d arrived %.4fs, way after scheduled %.4fs", i, got, want)
		}
	}
}

func TestSenderRejectsMismatchedPayloads(t *testing.T) {
	sched, payloads := testSchedule(t, 18)
	var buf bytes.Buffer
	s := &Sender{TimeScale: 1000}
	if err := s.Send(context.Background(), NewFrameWriter(&buf), sched, payloads[:3]); err == nil {
		t.Fatal("payload count mismatch should fail")
	}
}

func TestSenderHonorsCancellation(t *testing.T) {
	sched, payloads := testSchedule(t, 27)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cw, cr := net.Pipe()
	defer cw.Close()
	defer cr.Close()
	go io.Copy(io.Discard, cr)
	s := &Sender{TimeScale: 1} // real time: would take ~1 s without cancel
	start := time.Now()
	err := s.Send(ctx, NewFrameWriter(cw), sched, payloads)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation not honoured promptly")
	}
}

func TestReceiverSurvivesAbruptClose(t *testing.T) {
	cw, cr := net.Pipe()
	go func() {
		w := NewFrameWriter(cw)
		w.WritePictureHeader(0, mpeg.TypeI, make([]byte, 100))
		w.WriteChunk(make([]byte, 10)) // partial payload
		cw.Close()
	}()
	_, err := Receive(context.Background(), cr)
	if err == nil {
		t.Fatal("truncated stream should error")
	}
}
