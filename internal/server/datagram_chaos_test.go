package server

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"mpegsmooth/internal/faultnet"
	"mpegsmooth/internal/transport"
)

// startDatagramServer boots a server whose listener is the datagram
// ARQ demultiplexer over a fault-injected UDP socket: the entire
// hello/verdict/resume/exactly-once protocol rides the packet channel.
func startDatagramServer(t testing.TB, cfg Config, nw *faultnet.PacketNet,
	dgCfg transport.DatagramConfig) (*Server, string) {
	t.Helper()
	if cfg.TimeScale == 0 {
		cfg.TimeScale = soakTimeScale
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := transport.ListenDatagram(nw.WrapPacketConn(pc), dgCfg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, pc.LocalAddr().String()
}

// datagramSoakRTO is the ARQ retransmission schedule both sides use in
// the soak: fast enough to chew through burst loss inside the test
// budget, bounded enough that a deep outage exhausts the schedule and
// exercises the reconnect/resume machinery instead of stalling forever.
var datagramSoakRTO = transport.Backoff{Base: 5 * time.Millisecond, Max: 80 * time.Millisecond}

// datagramClient builds a resumable sender that dials ARQ flows over a
// fault-injected UDP socket — a fresh socket (and flow incarnation) per
// reconnect, exactly like the production dial path.
func datagramClient(kit *clientKit, addr string, seed int64,
	nw *faultnet.PacketNet, dgCfg transport.DatagramConfig) *transport.ResumableSender {
	return &transport.ResumableSender{
		Sender: transport.Sender{TimeScale: soakTimeScale, Chunk: 512, WriteTimeout: 10 * time.Second},
		Dial: func(ctx context.Context) (net.Conn, error) {
			raddr, err := net.ResolveUDPAddr("udp", addr)
			if err != nil {
				return nil, err
			}
			udp, err := net.DialUDP("udp", nil, raddr)
			if err != nil {
				return nil, err
			}
			return transport.NewDatagramClientConn(nw.WrapConn(udp), dgCfg), nil
		},
		Hello:       kit.hello,
		Backoff:     transport.Backoff{Base: 10 * time.Millisecond, Max: 200 * time.Millisecond},
		MaxAttempts: 40,
		Seed:        seed,
	}
}

// datagramChaosConfig is the packet fault mix both directions run in
// the soak: baseline i.i.d. loss, duplication, bounded reordering, and
// Gilbert–Elliott near-outage bursts long enough to exhaust the ARQ
// retransmission schedule — forcing flows to die and resume rather
// than merely slow down.
func datagramChaosConfig(seed int64) faultnet.PacketConfig {
	return faultnet.PacketConfig{
		Seed:        seed,
		LossProb:    0.03,
		DupProb:     0.05,
		ReorderProb: 0.05,
		ReorderSpan: 4,
		Burst:       faultnet.PacketBurst{EnterProb: 0.004, ExitProb: 0.02, LossProb: 1},
	}
}

// TestDatagramChaosSoak is the datagram acceptance soak, run across
// multiple seeds: resumable clients stream over ARQ flows whose packet
// channels reorder, duplicate, and burst-drop in BOTH directions.
// Every stream must complete with a byte-exact payload hash, every
// client must hold exactly one admission, and no reservation may leak
// — bursty loss slows a stream or forces a resume, but never corrupts
// it, double-admits it, or wedges the server.
func TestDatagramChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("datagram soak skipped in -short mode")
	}
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runDatagramSoak(t, seed)
		})
	}
}

func runDatagramSoak(t *testing.T, seed int64) {
	const clients = 6
	kit := makeClient(t, testTrace(t, 60))
	wantFNV := payloadFNV(kit.payloads)

	srvNet := faultnet.NewPacketNet(datagramChaosConfig(seed))
	clientNet := faultnet.NewPacketNet(datagramChaosConfig(seed*1000 + 17))
	srv, addr := startDatagramServer(t, Config{
		LinkRate: float64(clients+1) * kit.hello.PeakRate,
		// A parked flow's liveness signal is pure silence — no UDP
		// reset arrives when the peer redials — so the read timeout is
		// the only thing freeing a dead flow for its successor.
		ReadTimeout:  time.Second,
		ResumeWindow: 20 * time.Second,
	}, srvNet, transport.DatagramConfig{
		Seed:           seed,
		RTO:            datagramSoakRTO,
		MaxRetransmits: 8,
		Linger:         200 * time.Millisecond,
	})

	clientDG := transport.DatagramConfig{
		Seed:           seed + 500,
		RTO:            datagramSoakRTO,
		MaxRetransmits: 8,
		Linger:         200 * time.Millisecond,
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		resumes  int
		failures []error
	)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs := datagramClient(kit, addr, seed*100+int64(i+1), clientNet, clientDG)
			res, err := rs.StreamSchedule(ctx, kit.sched, kit.payloads)
			mu.Lock()
			defer mu.Unlock()
			resumes += res.Resumes
			if err != nil {
				failures = append(failures, fmt.Errorf("client %d: %w", i, err))
			}
		}(i)
	}
	wg.Wait()
	for _, err := range failures {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	waitFor(t, "all streams drained", func() bool {
		s := srv.Snapshot()
		return s.Streams.Completed == clients && s.Streams.Active == 0
	})

	snap := srv.Snapshot()
	if snap.Streams.Failed != 0 {
		t.Fatalf("%d streams failed under datagram chaos", snap.Streams.Failed)
	}
	// Lossless and byte-exact through drops, dups, and reordering: the
	// ARQ layer plus the resume protocol never let a damaged packet
	// channel damage the stream.
	fin := srv.FinishedStreams()
	if len(fin) != clients {
		t.Fatalf("%d finished snapshots, want %d", len(fin), clients)
	}
	for _, ss := range fin {
		if ss.Pictures != kit.tr.Len() {
			t.Fatalf("stream %d: %d pictures, want %d", ss.ID, ss.Pictures, kit.tr.Len())
		}
		if ss.PayloadFNV != wantFNV {
			t.Fatalf("stream %d: payload hash %x, want %x — bytes corrupted or lost",
				ss.ID, ss.PayloadFNV, wantFNV)
		}
	}
	// The chaos was real in both directions: each injector dropped,
	// duplicated, AND reordered.
	for side, counts := range map[string]faultnet.PacketCounts{
		"server": srvNet.Counts(), "client": clientNet.Counts(),
	} {
		if counts.Dropped+counts.BurstDropped == 0 || counts.Duplicated == 0 || counts.Reordered == 0 {
			t.Fatalf("%s-side injector idle: %+v", side, counts)
		}
	}
	// Exactly-once admission under packet chaos: every redial, replayed
	// hello, and deduplicated handshake converged on one reservation per
	// client, and every reservation came back.
	if snap.Streams.Admitted != clients {
		t.Fatalf("admitted %d sessions for %d clients: handshake retries double-reserved",
			snap.Streams.Admitted, clients)
	}
	if snap.ReservedPeak != 0 || snap.AvailablePeak != snap.CapacityBPS {
		t.Fatalf("reservations leaked: %.0f reserved", snap.ReservedPeak)
	}
	t.Logf("seed %d: resumes=%d faults=%+v server=%+v client=%+v",
		seed, resumes, snap.Faults, srvNet.Counts(), clientNet.Counts())
}
