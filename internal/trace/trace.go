// Package trace models MPEG picture-size traces: the sequence S_1, S_2,
// ... of coded picture sizes (in bits) that the smoothing algorithm of
// Lam/Chow/Yau consumes, together with the repeating GOP pattern and the
// picture period τ.
//
// The paper's experiments used statistics from four MPEG video sequences
// (Driving1, Driving2, Tennis, Backyard) encoded by the authors. Those
// encodings are not available, so this package provides deterministic
// synthetic generators calibrated to the published statistics — see
// DESIGN.md §2 for the substitution argument — plus CSV persistence and a
// bridge from the internal MPEG encoder.
package trace

import (
	"fmt"
	"math"

	"mpegsmooth/internal/mpeg"
)

// Trace is a picture-size trace in display order.
type Trace struct {
	Name string
	// Tau is the picture period in seconds (1/Tau is the picture rate).
	Tau float64
	// GOP is the repeating pattern the sizes follow.
	GOP mpeg.GOP
	// Sizes[i] is the coded size of picture i in bits, display order.
	Sizes []int64
	// Types, when non-nil, gives every picture's type explicitly,
	// overriding the GOP pattern. This models an encoder that changes M
	// and N adaptively mid-sequence (Section 4.4: "An MPEG encoder may
	// change the values of M and N adaptively as the scene ... changes.
	// Note that the basic algorithm does not depend on M, and it uses N
	// only in picture size estimation"). When set, len(Types) must equal
	// len(Sizes); GOP then serves only as the nominal pattern for
	// N-dependent defaults.
	Types []mpeg.PictureType
}

// Validate checks structural invariants.
func (t *Trace) Validate() error {
	if t.Tau <= 0 {
		return fmt.Errorf("trace: non-positive picture period %v", t.Tau)
	}
	if err := t.GOP.Validate(); err != nil {
		return err
	}
	if len(t.Sizes) == 0 {
		return fmt.Errorf("trace: empty trace")
	}
	if t.Types != nil && len(t.Types) != len(t.Sizes) {
		return fmt.Errorf("trace: %d explicit types for %d pictures", len(t.Types), len(t.Sizes))
	}
	for i, ty := range t.Types {
		if ty > mpeg.TypeB {
			return fmt.Errorf("trace: picture %d has invalid type %d", i, ty)
		}
	}
	for i, s := range t.Sizes {
		if s <= 0 {
			return fmt.Errorf("trace: picture %d has size %d", i, s)
		}
	}
	return nil
}

// Len returns the number of pictures.
func (t *Trace) Len() int { return len(t.Sizes) }

// TypeOf returns the picture type at display index i: the explicit type
// when Types is set, otherwise the GOP pattern's.
func (t *Trace) TypeOf(i int) mpeg.PictureType {
	if t.Types != nil && i >= 0 && i < len(t.Types) {
		return t.Types[i]
	}
	return t.GOP.TypeOf(i)
}

// Duration returns the display duration of the trace in seconds.
func (t *Trace) Duration() float64 { return float64(len(t.Sizes)) * t.Tau }

// TotalBits returns the sum of all picture sizes.
func (t *Trace) TotalBits() int64 {
	var sum int64
	for _, s := range t.Sizes {
		sum += s
	}
	return sum
}

// MeanRate returns the long-run average bit rate in bits/second.
func (t *Trace) MeanRate() float64 {
	if len(t.Sizes) == 0 {
		return 0
	}
	return float64(t.TotalBits()) / t.Duration()
}

// PeakPictureRate returns the rate needed to send the largest picture in
// one picture period — the unsmoothed peak the paper's introduction
// computes (a 200,000-bit I picture at 30 pictures/s needs 6 Mbps).
func (t *Trace) PeakPictureRate() float64 {
	var max int64
	for _, s := range t.Sizes {
		if s > max {
			max = s
		}
	}
	return float64(max) / t.Tau
}

// Slice returns a sub-trace of pictures [from, to). The sub-trace keeps
// the pattern alignment only if from is a multiple of GOP.N; callers that
// need pattern-aligned traces should slice at pattern boundaries.
func (t *Trace) Slice(from, to int) (*Trace, error) {
	if from < 0 || to > len(t.Sizes) || from >= to {
		return nil, fmt.Errorf("trace: bad slice [%d,%d) of %d", from, to, len(t.Sizes))
	}
	sub := &Trace{
		Name:  fmt.Sprintf("%s[%d:%d]", t.Name, from, to),
		Tau:   t.Tau,
		GOP:   t.GOP,
		Sizes: append([]int64(nil), t.Sizes[from:to]...),
	}
	if t.Types != nil {
		sub.Types = append([]mpeg.PictureType(nil), t.Types[from:to]...)
	}
	return sub, nil
}

// TypeStats aggregates sizes for one picture type.
type TypeStats struct {
	Count     int
	Min, Max  int64
	Mean, Std float64
}

// Stats returns per-type size statistics keyed by picture type.
func (t *Trace) Stats() map[mpeg.PictureType]TypeStats {
	acc := map[mpeg.PictureType][]int64{}
	for i, s := range t.Sizes {
		ty := t.TypeOf(i)
		acc[ty] = append(acc[ty], s)
	}
	out := map[mpeg.PictureType]TypeStats{}
	for ty, sizes := range acc {
		st := TypeStats{Count: len(sizes), Min: sizes[0], Max: sizes[0]}
		var sum float64
		for _, s := range sizes {
			if s < st.Min {
				st.Min = s
			}
			if s > st.Max {
				st.Max = s
			}
			sum += float64(s)
		}
		st.Mean = sum / float64(len(sizes))
		var va float64
		for _, s := range sizes {
			d := float64(s) - st.Mean
			va += d * d
		}
		st.Std = math.Sqrt(va / float64(len(sizes)))
		out[ty] = st
	}
	return out
}

// Concat joins traces end to end. All inputs must share τ and the GOP
// pattern, and each must be pattern-aligned (a multiple of N pictures)
// so types remain consistent; traces with explicit Types are joined
// type-exactly without the alignment requirement.
func Concat(name string, traces ...*Trace) (*Trace, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("trace: nothing to concatenate")
	}
	first := traces[0]
	explicit := false
	for _, t := range traces {
		if t.Types != nil {
			explicit = true
		}
	}
	out := &Trace{Name: name, Tau: first.Tau, GOP: first.GOP}
	for i, t := range traces {
		if t.Tau != first.Tau {
			return nil, fmt.Errorf("trace: input %d has tau %v, want %v", i, t.Tau, first.Tau)
		}
		if t.GOP != first.GOP {
			return nil, fmt.Errorf("trace: input %d has pattern %v, want %v", i, t.GOP, first.GOP)
		}
		if !explicit && t.Len()%t.GOP.N != 0 && i != len(traces)-1 {
			return nil, fmt.Errorf("trace: input %d has %d pictures, not pattern aligned", i, t.Len())
		}
		out.Sizes = append(out.Sizes, t.Sizes...)
		if explicit {
			for j := 0; j < t.Len(); j++ {
				out.Types = append(out.Types, t.TypeOf(j))
			}
		}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// Repeat tiles a trace n times (the trace must be pattern aligned unless
// it carries explicit types). Useful for building hour-long workloads
// from a short calibrated sequence.
func (t *Trace) Repeat(n int) (*Trace, error) {
	if n < 1 {
		return nil, fmt.Errorf("trace: repeat count %d", n)
	}
	inputs := make([]*Trace, n)
	for i := range inputs {
		inputs[i] = t
	}
	return Concat(fmt.Sprintf("%s-x%d", t.Name, n), inputs...)
}

// FromPictureSizes builds a trace from encoder or inspector output.
func FromPictureSizes(name string, tau float64, gop mpeg.GOP, sizes []int64) (*Trace, error) {
	t := &Trace{
		Name:  name,
		Tau:   tau,
		GOP:   gop,
		Sizes: append([]int64(nil), sizes...),
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
