package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Bounds is the Theorem 1 band the kernel accumulated over the lookahead
// window before handing rate selection to a Policy: the running max of
// the lower bounds (Eq. 12) and running min of the upper bounds (Eq. 13)
// for h = 0 .. Depth−1.
type Bounds struct {
	// Lower and Upper are the accumulated band at loop exit. When
	// Crossed, they are the values from the crossing iteration
	// (Lower > Upper); exactly one of them moved in that iteration.
	Lower, Upper float64
	// LowerPrev and UpperPrev are the band before the final iteration;
	// on a crossing exit the stale bound (the one that did not move) is
	// still feasible for the window examined so far.
	LowerPrev, UpperPrev float64
	// Crossed reports an early exit: the bounds crossed before the full
	// H-picture lookahead, so no single rate serves the whole window.
	Crossed bool
	// Sum is the accumulated bits (actual + estimated) of the examined
	// window — the numerator of the moving-average rule (Eq. 15).
	Sum float64
	// Depth is the number of pictures the lookahead examined (the h at
	// exit, 1 ≤ Depth ≤ H except at a finite sequence end).
	Depth int
}

// crossingRate is the early-exit rule shared by every bounded policy
// (Section 4.3): the bounds crossed at lookahead h−1, and exactly one of
// them moved in the crossing iteration; selecting the stale bound defers
// the next forced rate change as long as possible.
func (b Bounds) crossingRate() float64 {
	if b.Lower > b.LowerPrev {
		return b.Upper // upper did not move: upper == UpperPrev
	}
	return b.Lower // lower did not move: lower == LowerPrev
}

// clamp restricts rate to the accumulated band.
func (b Bounds) clamp(rate float64) float64 {
	if rate > b.Upper {
		return b.Upper
	}
	if rate < b.Lower {
		return b.Lower
	}
	return rate
}

// State is the per-decision context a Policy may consult in addition to
// the accumulated bounds.
type State struct {
	// Picture is the 0-based display index being scheduled.
	Picture int
	// Held is the rate selected for the previous picture (0 before the
	// first decision) — the rate the basic rule holds.
	Held float64
	// Now is t_j, the time transmission of this picture begins.
	Now float64
	// Tau is the picture period in seconds.
	Tau float64
	// PatternN is the GOP pattern length N (the moving-average window).
	PatternN int
}

// Policy owns rate selection: the kernel accumulates the Theorem 1
// bounds over the lookahead window and calls Select exactly once per
// picture, on both early (crossed) and normal exits. Any rate within
// [Bounds.Lower, Bounds.Upper] preserves the Theorem 1 guarantees; a
// policy that returns a rate outside the band (CappedRate under a tight
// ceiling) trades a reported bound violation for its own constraint —
// the kernel records the transgression in Decision.OutOfBand and
// Schedule.PolicyViolations rather than silently correcting it.
//
// Policies must be stateless (or at least safe for concurrent use by
// value): SmoothAll shares one Config — and therefore one Policy value —
// across its worker pool.
type Policy interface {
	// Select returns the rate r_j in bits/second for the picture
	// described by s, given the accumulated bounds b.
	Select(b Bounds, s State) float64
	// Name identifies the policy in experiment output and flags.
	Name() string
}

// BasicPolicy is the paper's basic rule: hold the previous rate unless
// it falls outside the accumulated band — the selection that minimizes
// the number of rate changes. The first picture starts at the band
// midpoint.
type BasicPolicy struct{}

// Name implements Policy.
func (BasicPolicy) Name() string { return "basic" }

// Select implements Policy.
func (BasicPolicy) Select(b Bounds, s State) float64 {
	if b.Crossed {
		return b.crossingRate()
	}
	rate := s.Held
	if s.Picture == 0 {
		rate = (b.Lower + b.Upper) / 2
	}
	return b.clamp(rate)
}

// MovingAveragePolicy is the paper's Section 4.4 modification: on a
// normal exit it proposes the pattern moving average Sum/(Nτ) (Eq. 15)
// instead of holding — more small rate changes, but r(t) tracks ideal
// smoothing more closely.
type MovingAveragePolicy struct{}

// Name implements Policy.
func (MovingAveragePolicy) Name() string { return "moving-average" }

// Select implements Policy.
func (MovingAveragePolicy) Select(b Bounds, s State) float64 {
	if b.Crossed {
		return b.crossingRate()
	}
	rate := s.Held
	if s.Picture == 0 {
		rate = (b.Lower + b.Upper) / 2
	} else {
		rate = b.Sum / (float64(s.PatternN) * s.Tau)
	}
	return b.clamp(rate)
}

// CappedRate wraps another policy with a hard bits/second ceiling — the
// negotiated link capacity of a QoS connection (Shuaib et al.). The cap
// is enforced on every picture; when it falls below the Theorem 1 lower
// bound the delay bound becomes unavoidably violated, and the kernel
// reports the transgression through Decision.OutOfBand and
// Schedule.PolicyViolations instead of exceeding the ceiling.
type CappedRate struct {
	// Cap is the ceiling in bits/second; must be positive.
	Cap float64
	// Inner proposes the uncapped rate; nil means BasicPolicy.
	Inner Policy
}

// Name implements Policy.
func (c CappedRate) Name() string {
	inner := "basic"
	if c.Inner != nil {
		inner = c.Inner.Name()
	}
	return fmt.Sprintf("capped:%g(%s)", c.Cap, inner)
}

// Validate reports a non-positive ceiling.
func (c CappedRate) Validate() error {
	if c.Cap <= 0 || math.IsInf(c.Cap, 1) || math.IsNaN(c.Cap) {
		return fmt.Errorf("core: CappedRate ceiling %v must be a positive finite rate", c.Cap)
	}
	return nil
}

// Select implements Policy.
func (c CappedRate) Select(b Bounds, s State) float64 {
	inner := c.Inner
	if inner == nil {
		inner = BasicPolicy{}
	}
	rate := inner.Select(b, s)
	if rate > c.Cap {
		rate = c.Cap
	}
	return rate
}

// MinimumVariability centers the rate within the feasible band on every
// normal exit, maximizing the slack to both bounds. Each decision moves
// the rate a little (many small changes), but the distance to the next
// forced excursion is maximized, so the rate function hugs the band
// centre — the playout-smoothing trade-off of Bradai et al., at the
// opposite end of the changes-vs-tracking spectrum from BasicPolicy.
type MinimumVariability struct{}

// Name implements Policy.
func (MinimumVariability) Name() string { return "min-var" }

// Select implements Policy.
func (MinimumVariability) Select(b Bounds, s State) float64 {
	if b.Crossed {
		return b.crossingRate()
	}
	if math.IsInf(b.Upper, 1) {
		// Unbounded band (deep delay slack): centring is meaningless;
		// hold if feasible, else rise to the lower bound.
		return b.clamp(s.Held)
	}
	return (b.Lower + b.Upper) / 2
}

// policyValidator is implemented by policies with parameters to check.
type policyValidator interface{ Validate() error }

// policy resolves the effective Policy: an explicit Config.Policy wins,
// otherwise the deprecated Variant field maps onto the matching policy.
func (c Config) policy() Policy {
	if c.Policy != nil {
		return c.Policy
	}
	if c.Variant == MovingAverage {
		return MovingAveragePolicy{}
	}
	return BasicPolicy{}
}

// ParsePolicy parses a command-line policy specification:
//
//	basic            hold the previous rate (fewest changes)
//	moving-average   track the pattern moving average (Eq. 15)
//	capped:<bps>     BasicPolicy under a hard ceiling, e.g. capped:2.5e6
//	min-var          centre within the feasible band
//
// "moving" is accepted as an alias for moving-average.
func ParsePolicy(spec string) (Policy, error) {
	s := strings.ToLower(strings.TrimSpace(spec))
	switch s {
	case "basic":
		return BasicPolicy{}, nil
	case "moving", "moving-average":
		return MovingAveragePolicy{}, nil
	case "min-var", "minimum-variability":
		return MinimumVariability{}, nil
	}
	if rest, ok := strings.CutPrefix(s, "capped:"); ok {
		cap, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return nil, fmt.Errorf("core: bad capped rate %q: %w", rest, err)
		}
		p := CappedRate{Cap: cap}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		return p, nil
	}
	return nil, fmt.Errorf("core: unknown policy %q (want basic, moving-average, capped:<bps>, or min-var)", spec)
}
