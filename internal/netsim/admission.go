package netsim

import (
	"fmt"
	"math"
	"time"

	"mpegsmooth/internal/lru"
)

// Admission is a peak-rate admission controller for a shared link: each
// stream declares the peak rate of its smoothed schedule (the traffic
// descriptor a Policer would enforce), and the controller admits the
// stream only if the sum of reserved peaks stays within the link
// capacity. Because a smoothed stream never transmits above its peak,
// this reservation makes the multiplexing lossless — the admission-time
// analogue of the paper's Section 5 experiment, where smoothing lets
// more streams share a finite-buffer link before any cell is lost.
// Would-be overloads are rejected before their first picture instead of
// being dropped mid-stream.
//
// Admission is a plain accumulator with no locking, like the rest of
// this package; concurrent servers wrap it in their own mutex.
type Admission struct {
	capacity float64
	reserved float64

	admitted   int64
	rejected   int64
	duplicates int64
	active     int64
	parked     int64

	// nonces maps a live hello nonce to its reservation, so a repeated
	// hello (a sender whose admission verdict was lost in flight and who
	// redialed) is recognized as the *same* stream and never reserves
	// twice. Entries are released with the reservation and expire after
	// their TTL as a leak backstop. The ledger is a last-touch LRU sized
	// from the observed admission rate × the TTL, so a flood of
	// short-lived streams grows the ledger to hold every in-window nonce
	// instead of race-evicting one a legitimate duplicate hello still
	// needs.
	nonces     *lru.Map[uint64, nonceReservation]
	nonceSizer lru.Sizer
}

// nonceReservation is one nonce-identified reservation in the ledger.
type nonceReservation struct {
	peak    float64
	expires time.Time
}

// NewAdmission creates a controller for a link of the given capacity in
// bits/second.
func NewAdmission(capacity float64) (*Admission, error) {
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("netsim: non-positive link capacity %v", capacity)
	}
	return &Admission{capacity: capacity, nonces: lru.New[uint64, nonceReservation](1024)}, nil
}

// Admit decides on a stream declaring the given peak rate: it reserves
// the peak and reports true when it fits in the remaining capacity, and
// counts a rejection otherwise. Non-positive or non-finite peaks are
// always rejected.
func (a *Admission) Admit(peak float64) bool {
	if peak <= 0 || math.IsNaN(peak) || math.IsInf(peak, 0) {
		a.rejected++
		return false
	}
	// Tolerate float accumulation error at exact capacity: a link sized
	// for n identical peaks admits all n.
	if a.reserved+peak > a.capacity*(1+1e-12) {
		a.rejected++
		return false
	}
	a.reserved += peak
	a.admitted++
	a.active++
	return true
}

// AdmitNonce is Admit for a hello carrying a client nonce. When the
// nonce already holds a live reservation the call is a duplicate hello
// — the client's copy of an earlier verdict was lost in flight — and
// AdmitNonce reports (false, true) WITHOUT reserving again or counting
// a rejection: the caller reattaches the sender to the existing stream
// instead. A zero nonce disables dedup and behaves exactly like Admit.
// Expired ledger entries are pruned lazily on each call.
func (a *Admission) AdmitNonce(nonce uint64, peak float64, now time.Time, ttl time.Duration) (admitted, duplicate bool) {
	a.nonceSizer.Note(now)
	a.nonces.SetCap(a.nonceSizer.Cap(ttl, now))
	a.pruneNonces(now)
	if nonce != 0 {
		if r, live := a.nonces.Get(nonce); live {
			if now.After(r.expires) {
				a.nonces.Delete(nonce)
			} else {
				a.duplicates++
				return false, true
			}
		}
	}
	if !a.Admit(peak) {
		return false, false
	}
	if nonce != 0 {
		a.nonces.Put(nonce, nonceReservation{peak: peak, expires: now.Add(ttl)})
	}
	return true, false
}

// Rehydrate force-installs a reservation recovered from the crash
// journal: the peak is reserved and the nonce re-registered without
// counting a new admission, so "streams admitted" stays one per client
// stream across server generations. Capacity is not re-checked — the
// journal is authoritative for state the previous generation already
// committed to.
func (a *Admission) Rehydrate(nonce uint64, peak float64, now time.Time, ttl time.Duration) {
	a.reserved += peak
	a.active++
	if nonce != 0 {
		a.nonceSizer.Note(now)
		a.nonces.SetCap(a.nonceSizer.Cap(ttl, now))
		a.nonces.Put(nonce, nonceReservation{peak: peak, expires: now.Add(ttl)})
	}
}

// ReleaseNonce is Release for a reservation taken through AdmitNonce;
// it drops the nonce from the ledger along with the reservation. A zero
// or unknown nonce releases the peak alone.
func (a *Admission) ReleaseNonce(nonce uint64, peak float64) {
	a.nonces.Delete(nonce)
	a.Release(peak)
}

// pruneNonces drops expired ledger entries from the cold end of the
// LRU. Touch recency tracks expiry closely enough (constant TTL,
// entries touched on duplicate hits) that stopping at the first
// in-window entry keeps the sweep O(expired), not O(ledger).
func (a *Admission) pruneNonces(now time.Time) {
	var dead []uint64
	a.nonces.Range(func(n uint64, r nonceReservation) bool {
		if now.After(r.expires) {
			dead = append(dead, n)
			return true
		}
		return false
	})
	for _, n := range dead {
		a.nonces.Delete(n)
	}
}

// NonceLedgerSize returns the count of live nonce reservations.
func (a *Admission) NonceLedgerSize() int { return a.nonces.Len() }

// NonceLedgerCap returns the ledger's current adaptive capacity.
func (a *Admission) NonceLedgerCap() int { return a.nonces.Cap() }

// Duplicates returns the count of hellos recognized as retransmissions
// of a live nonce-identified reservation.
func (a *Admission) Duplicates() int64 { return a.duplicates }

// Release returns an admitted stream's reservation when it ends. The
// peak must match what was admitted.
func (a *Admission) Release(peak float64) {
	a.reserved -= peak
	a.active--
	// With no active streams the ledger is empty by definition; zeroing
	// it here stops float residue from admit/release orderings (most
	// visibly journal-rehydrated reservations released in a different
	// order than they were summed) accumulating into phantom bandwidth.
	if a.reserved < 0 || a.active <= 0 {
		a.reserved = 0
	}
}

// Capacity returns the link capacity in bits/second.
func (a *Admission) Capacity() float64 { return a.capacity }

// Reserved returns the sum of admitted peaks in bits/second.
func (a *Admission) Reserved() float64 { return a.reserved }

// Available returns the unreserved capacity in bits/second.
func (a *Admission) Available() float64 {
	if avail := a.capacity - a.reserved; avail > 0 {
		return avail
	}
	return 0
}

// Admitted returns the count of streams ever admitted.
func (a *Admission) Admitted() int64 { return a.admitted }

// Rejected returns the count of streams rejected.
func (a *Admission) Rejected() int64 { return a.rejected }

// Active returns the count of admitted streams not yet released.
func (a *Admission) Active() int64 { return a.active }

// Park marks one active stream as disconnected-but-reserved: its sender
// dropped, the server is holding its reservation through a resume
// window. The stream stays Active — the whole point of parking is that
// the capacity remains spoken for, so a reconnecting sender is never
// re-admitted against different arithmetic.
func (a *Admission) Park() { a.parked++ }

// Unpark clears one parked mark (on resume or on window expiry).
func (a *Admission) Unpark() {
	if a.parked > 0 {
		a.parked--
	}
}

// Parked returns the count of active streams currently awaiting resume.
func (a *Admission) Parked() int64 { return a.parked }
