// Package transport carries a smoothed MPEG picture stream over a byte
// connection, pacing transmission at the per-picture rates chosen by the
// smoothing algorithm.
//
// The paper positions the algorithm inside "transport protocols for
// compressed video": the smoother calls notify(i, rate) to tell the
// transmitter the rate for picture i, and the transmitter drains the
// picture at that rate. This package implements that contract over any
// net.Conn (the tests use both net.Pipe and TCP loopback), with explicit
// rate-notification messages ahead of each rate change so a receiver (or
// a network resource manager) can track the sender's declared rate.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"mpegsmooth/internal/mpeg"
)

// Message kinds on the wire.
const (
	kindRate    byte = 'R'
	kindPicture byte = 'P'
	kindEnd     byte = 'E'
)

// MaxPictureBytes bounds a picture payload; a peer announcing more is
// malformed (the largest legal picture in this codec is far smaller).
const MaxPictureBytes = 16 << 20

// ErrClosed reports an orderly end-of-stream message.
var ErrClosed = errors.New("transport: stream closed by sender")

// RateNotification announces the transmission rate for a picture:
// notify(i, rate) from the algorithm specification.
type RateNotification struct {
	Index int
	Rate  float64 // bits per second
}

// PictureFrame carries one coded picture.
type PictureFrame struct {
	Index   int
	Type    mpeg.PictureType
	Payload []byte
}

// WriteRate writes a rate notification.
func WriteRate(w io.Writer, n RateNotification) error {
	if n.Index < 0 || n.Index > math.MaxUint32 {
		return fmt.Errorf("transport: picture index %d out of range", n.Index)
	}
	if n.Rate <= 0 || math.IsNaN(n.Rate) || math.IsInf(n.Rate, 0) {
		return fmt.Errorf("transport: invalid rate %v", n.Rate)
	}
	var buf [13]byte
	buf[0] = kindRate
	binary.BigEndian.PutUint32(buf[1:5], uint32(n.Index))
	binary.BigEndian.PutUint64(buf[5:13], math.Float64bits(n.Rate))
	_, err := w.Write(buf[:])
	return err
}

// WritePictureHeader writes the header of a picture frame; the caller
// streams the payload bytes (paced) immediately after.
func WritePictureHeader(w io.Writer, index int, t mpeg.PictureType, size int) error {
	if index < 0 || index > math.MaxUint32 {
		return fmt.Errorf("transport: picture index %d out of range", index)
	}
	if size <= 0 || size > MaxPictureBytes {
		return fmt.Errorf("transport: picture size %d out of range", size)
	}
	var buf [10]byte
	buf[0] = kindPicture
	binary.BigEndian.PutUint32(buf[1:5], uint32(index))
	buf[5] = byte(t)
	binary.BigEndian.PutUint32(buf[6:10], uint32(size))
	_, err := w.Write(buf[:])
	return err
}

// WriteEnd writes the orderly end-of-stream marker.
func WriteEnd(w io.Writer) error {
	_, err := w.Write([]byte{kindEnd})
	return err
}

// ReadMessage reads the next message. It returns either a
// *RateNotification or a *PictureFrame (with the payload fully read), or
// ErrClosed on the end marker.
func ReadMessage(r io.Reader) (any, error) {
	var kind [1]byte
	if _, err := io.ReadFull(r, kind[:]); err != nil {
		return nil, err
	}
	switch kind[0] {
	case kindRate:
		var buf [12]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, fmt.Errorf("transport: short rate notification: %w", err)
		}
		rate := math.Float64frombits(binary.BigEndian.Uint64(buf[4:12]))
		if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
			return nil, fmt.Errorf("transport: peer sent invalid rate %v", rate)
		}
		return &RateNotification{
			Index: int(binary.BigEndian.Uint32(buf[0:4])),
			Rate:  rate,
		}, nil
	case kindPicture:
		var buf [9]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, fmt.Errorf("transport: short picture header: %w", err)
		}
		size := binary.BigEndian.Uint32(buf[5:9])
		if size == 0 || size > MaxPictureBytes {
			return nil, fmt.Errorf("transport: peer announced picture of %d bytes", size)
		}
		ty := mpeg.PictureType(buf[4])
		if ty > mpeg.TypeB {
			return nil, fmt.Errorf("transport: invalid picture type %d", buf[4])
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("transport: truncated picture payload: %w", err)
		}
		return &PictureFrame{
			Index:   int(binary.BigEndian.Uint32(buf[0:4])),
			Type:    ty,
			Payload: payload,
		}, nil
	case kindEnd:
		return nil, ErrClosed
	default:
		return nil, fmt.Errorf("transport: unknown message kind %#02x", kind[0])
	}
}
