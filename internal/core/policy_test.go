package core

import (
	"hash/fnv"
	"math"
	"testing"

	"mpegsmooth/internal/trace"
)

// scheduleFingerprint hashes the exact bit patterns of a schedule's
// rates and timing, so two schedules compare bit-for-bit through one
// uint64.
func scheduleFingerprint(s *Schedule) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	put := func(x float64) {
		b := math.Float64bits(x)
		for i := 0; i < 8; i++ {
			buf[i] = byte(b >> (8 * i))
		}
		h.Write(buf)
	}
	for j := range s.Rates {
		put(s.Rates[j])
		put(s.Start[j])
		put(s.Depart[j])
	}
	return h.Sum64()
}

// TestPolicyGoldenSchedules pins the policy-refactored Basic and
// MovingAverage schedules to fingerprints captured from the seed
// (pre-Policy) decision kernel on all four paper sequences (108
// pictures, seed 1, K=1, H=N, D=0.2). Any drift means the refactor
// changed kernel arithmetic, not just its structure.
func TestPolicyGoldenSchedules(t *testing.T) {
	golden := map[string]map[Variant]uint64{
		"Driving1": {Basic: 0xc7a82ecae498361, MovingAverage: 0x895365b70d6924ac},
		"Driving2": {Basic: 0xa00c87213996aa85, MovingAverage: 0xc2bedcf6ab4529f4},
		"Tennis":   {Basic: 0xdc4a7c6db4d03ef0, MovingAverage: 0x624cfd70d0f092ba},
		"Backyard": {Basic: 0xe75eecf6bbe5cab8, MovingAverage: 0x2d758bc7c168e727},
	}
	seqs, err := trace.PaperSequences(108, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range seqs {
		for _, v := range []Variant{Basic, MovingAverage} {
			cfg := Config{K: 1, H: tr.GOP.N, D: 0.2, Variant: v}
			s, err := Smooth(tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := scheduleFingerprint(s), golden[tr.Name][v]; got != want {
				t.Errorf("%s %s: schedule fingerprint %#x, want seed %#x (kernel arithmetic changed)",
					tr.Name, v, got, want)
			}
			// The explicit-Policy path must be the deprecated-Variant
			// path, bit for bit.
			var p Policy = BasicPolicy{}
			if v == MovingAverage {
				p = MovingAveragePolicy{}
			}
			sp, err := Smooth(tr, Config{K: 1, H: tr.GOP.N, D: 0.2, Policy: p})
			if err != nil {
				t.Fatal(err)
			}
			if scheduleFingerprint(sp) != scheduleFingerprint(s) {
				t.Errorf("%s: Policy %s differs from deprecated Variant alias", tr.Name, p.Name())
			}
		}
	}
}

// TestCappedRateEnforcesCeiling: the cap binds on every picture, and
// when it forces the rate below the Theorem 1 lower bound, the schedule
// reports the violation instead of silently exceeding the ceiling.
func TestCappedRateEnforcesCeiling(t *testing.T) {
	tr := paperTrace(t, 108)
	base, err := Smooth(tr, Config{K: 1, H: 9, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	peak := 0.0
	for _, r := range base.Rates {
		if r > peak {
			peak = r
		}
	}

	// A cap above the uncapped peak changes nothing.
	loose, err := Smooth(tr, Config{K: 1, H: 9, D: 0.2, Policy: CappedRate{Cap: peak * 2}})
	if err != nil {
		t.Fatal(err)
	}
	if scheduleFingerprint(loose) != scheduleFingerprint(base) {
		t.Error("cap above the peak altered the schedule")
	}
	if v := loose.PolicyViolations(); len(v) != 0 {
		t.Errorf("loose cap reported violations %v", v)
	}

	// A cap at 80% of the peak must bind: every rate at or below it.
	cap := peak * 0.8
	s, err := Smooth(tr, Config{K: 1, H: 9, D: 0.2, Policy: CappedRate{Cap: cap}})
	if err != nil {
		t.Fatal(err)
	}
	for j, r := range s.Rates {
		if r > cap*(1+1e-12) {
			t.Fatalf("picture %d: rate %v exceeds cap %v", j, r, cap)
		}
	}
	// The binding cap forces delay-bound violations; the policy report
	// and the Theorem 1 checks must both account for them.
	viol := s.PolicyViolations()
	if len(viol) == 0 {
		t.Fatal("binding cap reported no policy violations")
	}
	if i := s.CheckRatesWithinBounds(); i == -1 {
		t.Error("binding cap but rates all within Theorem 1 bounds")
	} else if viol[0] != i {
		t.Errorf("first policy violation %d != first bound violation %d", viol[0], i)
	}
	if i := s.CheckDelayBound(); i == -1 {
		t.Error("cap forced rates below the lower bound but no delay violation surfaced")
	}
	// Bits are still conserved and service continuous: the cap degrades
	// delay, not correctness of transmission.
	if i := s.CheckConservation(); i != -1 {
		t.Errorf("conservation violated at %d under cap", i)
	}
	if i := s.CheckContinuousService(); i != -1 {
		t.Errorf("continuous service violated at %d under cap", i)
	}
}

// TestCappedRateValidate rejects non-positive ceilings at Validate time.
func TestCappedRateValidate(t *testing.T) {
	tr := paperTrace(t, 27)
	for _, cap := range []float64{0, -1, math.Inf(1)} {
		if _, err := Smooth(tr, Config{K: 1, H: 9, D: 0.2, Policy: CappedRate{Cap: cap}}); err == nil {
			t.Errorf("cap %v accepted", cap)
		}
	}
}

// TestMinimumVariability: band-centred selection stays within the
// Theorem 1 guarantees and keeps strictly positive slack to both
// accumulated bounds on normal exits (observed via the Session hook).
func TestMinimumVariability(t *testing.T) {
	tr := paperTrace(t, 108)
	cfg := Config{K: 1, H: 9, D: 0.2, Policy: MinimumVariability{}}
	s, err := Smooth(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, check := range []struct {
		name string
		f    func() int
	}{
		{"delay bound", s.CheckDelayBound},
		{"continuous service", s.CheckContinuousService},
		{"rates within bounds", s.CheckRatesWithinBounds},
		{"conservation", s.CheckConservation},
		{"causality", s.CheckCausality},
	} {
		if i := check.f(); i != -1 {
			t.Errorf("%s violated at picture %d", check.name, i)
		}
	}
	if v := s.PolicyViolations(); len(v) != 0 {
		t.Errorf("min-var reported violations %v", v)
	}
	// Compared to basic, centring trades more rate changes for a lower
	// standard deviation ceiling — at minimum it must remain feasible
	// and distinct.
	basic, err := Smooth(tr, Config{K: 1, H: 9, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if scheduleFingerprint(basic) == scheduleFingerprint(s) {
		t.Error("min-var produced the basic schedule verbatim")
	}
}

// TestParsePolicy covers the flag grammar.
func TestParsePolicy(t *testing.T) {
	for spec, want := range map[string]string{
		"basic":          "basic",
		"moving":         "moving-average",
		"moving-average": "moving-average",
		"min-var":        "min-var",
		"capped:2.5e6":   "capped:2.5e+06(basic)",
		" Basic ":        "basic",
	} {
		p, err := ParsePolicy(spec)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", spec, err)
		}
		if p.Name() != want {
			t.Errorf("ParsePolicy(%q).Name() = %q, want %q", spec, p.Name(), want)
		}
	}
	for _, bad := range []string{"", "fastest", "capped:", "capped:-3", "capped:x"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", bad)
		}
	}
}
