package netsim

import "fmt"

// Policer is a token-bucket usage-parameter-control element: a network
// ingress checks that a source honours the rates it declared via
// notify(i, rate). Tokens accrue at the declared rate up to a burst
// depth; traffic that finds insufficient tokens is non-conforming (an
// ATM UPC would tag or drop those cells).
//
// Because the smoothing algorithm declares each picture's exact
// transmission rate ahead of time, a correctly paced sender conforms
// with a burst allowance of only a few cells — which is exactly what
// makes smoothed VBR video attractive to admission control.
type Policer struct {
	burst  float64 // bucket depth in bits
	rate   float64 // declared rate, bits/second
	tokens float64 // available bits
	last   float64 // time of last update

	conforming int64
	dropped    int64
}

// NewPolicer creates a policer with the given burst tolerance in bits.
// The bucket starts full.
func NewPolicer(burstBits float64) (*Policer, error) {
	if burstBits <= 0 {
		return nil, fmt.Errorf("netsim: non-positive burst %v", burstBits)
	}
	return &Policer{burst: burstBits, tokens: burstBits}, nil
}

// SetRate records a rate declaration effective at time t. Time must not
// run backwards.
func (p *Policer) SetRate(t, rate float64) error {
	if rate <= 0 {
		return fmt.Errorf("netsim: non-positive declared rate %v", rate)
	}
	if err := p.advance(t); err != nil {
		return err
	}
	p.rate = rate
	return nil
}

// Offer presents bits arriving at time t. It reports whether they
// conform (and consumes tokens if so).
func (p *Policer) Offer(t float64, bits float64) (bool, error) {
	if bits <= 0 {
		return false, fmt.Errorf("netsim: non-positive offer %v", bits)
	}
	if err := p.advance(t); err != nil {
		return false, err
	}
	if p.tokens >= bits {
		p.tokens -= bits
		p.conforming++
		return true, nil
	}
	p.dropped++
	return false, nil
}

// advance accrues tokens to time t.
func (p *Policer) advance(t float64) error {
	if t < p.last {
		return fmt.Errorf("netsim: policer time ran backwards (%v < %v)", t, p.last)
	}
	p.tokens += p.rate * (t - p.last)
	if p.tokens > p.burst {
		p.tokens = p.burst
	}
	p.last = t
	return nil
}

// Conforming returns the count of conforming offers.
func (p *Policer) Conforming() int64 { return p.conforming }

// Dropped returns the count of non-conforming offers.
func (p *Policer) Dropped() int64 { return p.dropped }
