package mpegsmooth

import (
	"mpegsmooth/internal/mpeg"
	"mpegsmooth/internal/video"
)

// Codec-facing re-exports: the simplified MPEG-1-style encoder/decoder
// and synthetic video frames, used to generate genuinely encoder-shaped
// picture-size workloads and to run the full capture → encode → smooth →
// transmit pipeline.
type (
	// EncoderConfig parameterizes the simplified MPEG encoder.
	EncoderConfig = mpeg.Config
	// Encoder compresses display-order frames into a coded bit stream.
	Encoder = mpeg.Encoder
	// Decoder parses and reconstructs a coded bit stream.
	Decoder = mpeg.Decoder
	// EncodedSequence is a coded stream plus per-picture metadata.
	EncodedSequence = mpeg.EncodedSequence
	// DecodedSequence is a decoded stream: frames in display order.
	DecodedSequence = mpeg.DecodedSequence
	// PictureInfo describes one coded picture in the stream.
	PictureInfo = mpeg.PictureInfo
	// StreamInfo is the transport designer's view of a coded stream.
	StreamInfo = mpeg.StreamInfo

	// Frame is a planar YCbCr 4:2:0 video frame.
	Frame = video.Frame
	// Script is a synthetic scene script rendered into frames.
	Script = video.Script
	// SceneSpec is one scene segment of a Script.
	SceneSpec = video.SceneSpec
	// Synthesizer renders a Script frame by frame.
	Synthesizer = video.Synthesizer
)

// NewEncoder validates cfg and returns an encoder.
func NewEncoder(cfg EncoderConfig) (*Encoder, error) { return mpeg.NewEncoder(cfg) }

// NewDecoder returns a strict decoder; set Resilient for slice-level
// error recovery.
func NewDecoder() *Decoder { return mpeg.NewDecoder() }

// DefaultEncoderConfig returns the paper's encoding parameters
// (quantizer scales 4/6/15 for I/P/B) at the given resolution and GOP.
func DefaultEncoderConfig(width, height int, gop GOP) EncoderConfig {
	return mpeg.DefaultConfig(width, height, gop)
}

// InspectStream walks a coded stream's start codes and measures every
// picture's size without decoding macroblock data — how a transport
// implementation obtains the size sequence the smoother consumes.
func InspectStream(data []byte) (*StreamInfo, error) { return mpeg.Inspect(data) }

// NewSynthesizer prepares a deterministic synthetic video renderer.
func NewSynthesizer(script Script) (*Synthesizer, error) { return video.NewSynthesizer(script) }

// DrivingVideoScript models the paper's Driving video content.
func DrivingVideoScript(w, h, frames int, seed int64) Script {
	return video.DrivingScript(w, h, frames, seed)
}

// TennisVideoScript models the Tennis video content.
func TennisVideoScript(w, h, frames int, seed int64) Script {
	return video.TennisScript(w, h, frames, seed)
}

// BackyardVideoScript models the Backyard video content.
func BackyardVideoScript(w, h, frames int, seed int64) Script {
	return video.BackyardScript(w, h, frames, seed)
}
