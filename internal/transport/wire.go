// Package transport carries a smoothed MPEG picture stream over a byte
// connection, pacing transmission at the per-picture rates chosen by the
// smoothing algorithm.
//
// The paper positions the algorithm inside "transport protocols for
// compressed video": the smoother calls notify(i, rate) to tell the
// transmitter the rate for picture i, and the transmitter drains the
// picture at that rate. This package implements that contract over any
// net.Conn (the tests use both net.Pipe and TCP loopback), with explicit
// rate-notification messages ahead of each rate change so a receiver (or
// a network resource manager) can track the sender's declared rate.
//
// Wire format (v2, chaos-hardened): every message is a CRC-framed
// record
//
//	kind (1) | seq (4) | body (fixed per kind) | crc32 (4)
//
// where crc32 is the IEEE checksum of kind|seq|body and seq is a
// per-connection, per-direction counter starting at zero. A picture
// frame's body additionally carries the CRC of its payload, which
// streams (paced) after the frame record. Corruption, truncation, and
// frame loss are therefore detected — never silently decoded — and
// classified (see ClassifyFault) so senders can reconnect and resume
// rather than abort.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"mpegsmooth/internal/mpeg"
)

// Message kinds on the wire.
const (
	kindRate     byte = 'R'
	kindPicture  byte = 'P'
	kindEnd      byte = 'E'
	kindHello    byte = 'H'
	kindVerdict  byte = 'V'
	kindResume   byte = 'M'
	kindRedirect byte = 'D'
)

// bodyLen maps a message kind to its fixed body length (the picture
// payload streams after the frame and is not part of the body).
func bodyLen(kind byte) (int, bool) {
	switch kind {
	case kindHello:
		return 43, true
	case kindVerdict:
		return 37, true
	case kindRate:
		return 12, true
	case kindPicture:
		return 13, true
	case kindResume:
		return 8, true
	case kindRedirect:
		return 10 + maxRedirectAddr, true
	case kindEnd:
		return 0, true
	}
	return 0, false
}

// maxRedirectAddr bounds the advertised address in a redirect frame;
// the body is fixed-size (length prefix plus zero-padded address) like
// every other kind.
const maxRedirectAddr = 128

// MaxPictureBytes is the absolute wire-level bound on a picture payload;
// no cap may exceed it, and a peer announcing more is malformed.
const MaxPictureBytes = 16 << 20

// DefaultMaxPictureBytes is the default payload-size sanity cap (the
// largest legal picture in this codec is far smaller). A corrupted or
// malicious header announcing more is rejected before any allocation.
const DefaultMaxPictureBytes = 4 << 20

// ErrClosed reports an orderly end-of-stream message.
var ErrClosed = errors.New("transport: stream closed by sender")

// ErrCorrupt tags frames that failed the CRC, declared nonsense field
// values, or used an unknown kind: the bytes on the wire cannot be
// trusted, so the connection must be abandoned (and, for a resumable
// stream, re-established).
var ErrCorrupt = errors.New("transport: corrupt frame")

// ErrBadSeq tags a frame whose sequence number does not continue the
// connection's counter: a frame was lost, duplicated, or replayed.
var ErrBadSeq = errors.New("transport: sequence discontinuity")

// RateNotification announces the transmission rate for a picture:
// notify(i, rate) from the algorithm specification.
type RateNotification struct {
	Index int
	Rate  float64 // bits per second
}

// PictureFrame carries one coded picture.
type PictureFrame struct {
	Index   int
	Type    mpeg.PictureType
	Payload []byte
}

// StreamHello opens a stream session with a server that performs
// admission control (smoothd): the sender declares its encoding
// parameters and, crucially, the peak rate of its smoothed schedule —
// the traffic descriptor the admission controller reserves against the
// shared link, in the spirit of the usage-parameter contract a Policer
// enforces. A receiver that does not perform admission (plain Receive)
// records the hello and carries on.
type StreamHello struct {
	// Tau is the picture period in seconds.
	Tau float64
	// GOP is the repeating picture-type pattern.
	GOP mpeg.GOP
	// K and D are the smoothing parameters the sender encoded with.
	K int
	D float64
	// Pictures is the expected stream length (0 = unknown/live).
	Pictures int
	// PeakRate is the declared maximum smoothed transmission rate in
	// bits/second; admission reserves this much link capacity.
	PeakRate float64
	// Nonce is a crypto-random client-chosen session identifier. A
	// sender that never received its admission verdict (lost or
	// corrupted in flight) redials and repeats the hello with the same
	// nonce; the server deduplicates by nonce and reattaches the sender
	// to the existing reservation instead of double-reserving — hellos
	// become idempotent the way resume tokens make pictures idempotent.
	// Zero disables deduplication (the pre-nonce behaviour).
	Nonce uint64
	// Integrity names the prefix-verification hash for this session:
	// IntegrityFNV (zero, the default) or IntegrityHMAC. The server must
	// hold the matching key for IntegrityHMAC; a mode it cannot serve is
	// rejected malformed.
	Integrity IntegrityMode
}

// Validate checks the hello's fields for wire-level sanity.
func (h StreamHello) Validate() error {
	if h.Tau <= 0 || math.IsNaN(h.Tau) || math.IsInf(h.Tau, 0) {
		return fmt.Errorf("transport: hello picture period %v", h.Tau)
	}
	if err := h.GOP.Validate(); err != nil {
		return fmt.Errorf("transport: hello %w", err)
	}
	if h.K < 0 {
		return fmt.Errorf("transport: hello K = %d", h.K)
	}
	if h.D <= 0 || math.IsNaN(h.D) || math.IsInf(h.D, 0) {
		return fmt.Errorf("transport: hello delay bound %v", h.D)
	}
	if h.Pictures < 0 {
		return fmt.Errorf("transport: hello pictures %d", h.Pictures)
	}
	if h.PeakRate <= 0 || math.IsNaN(h.PeakRate) || math.IsInf(h.PeakRate, 0) {
		return fmt.Errorf("transport: hello peak rate %v", h.PeakRate)
	}
	if !h.Integrity.Valid() {
		return fmt.Errorf("transport: hello integrity mode %d", h.Integrity)
	}
	return nil
}

// StreamResume reopens a disconnected stream session: the sender
// presents the resume token the admission verdict issued, and the
// server answers with another verdict whose NextIndex names the first
// picture it has not yet received — the replay point that makes a flaky
// link lossless.
type StreamResume struct {
	Token uint64
}

// Redirect steers a misdirected hello or resume to the shard that owns
// its session key: in a sharded fleet, stream placement follows a
// consistent-hash ring over hello nonces and resume tokens, and a
// server that does not own the key answers with the owner's stream
// address instead of a verdict. The sender redials there and repeats
// its handshake.
type Redirect struct {
	// Addr is the owning shard's stream listen address.
	Addr string
	// Epoch is the issuing primary's fencing term (see Verdict.Epoch).
	Epoch uint64
}

// VerdictCode classifies an admission decision.
type VerdictCode byte

// Admission verdict codes.
const (
	// Admitted: the stream's declared peak rate has been reserved on
	// the shared link; the sender may begin streaming.
	Admitted VerdictCode = iota
	// RejectedCapacity: the declared peak exceeds the link capacity
	// still available.
	RejectedCapacity
	// RejectedMalformed: the hello was missing, invalid, or named an
	// unknown resume token.
	RejectedMalformed
	// RejectedBusy: the server is at its concurrent-stream limit or
	// shutting down.
	RejectedBusy
	// AlreadyComplete: the resume token names a stream the server has
	// already accepted in full — the sender's completion ack was lost,
	// not the stream. PrefixFNV carries the final payload hash so the
	// sender can verify byte-exact delivery before reporting success.
	AlreadyComplete
)

// String names the verdict code.
func (c VerdictCode) String() string {
	switch c {
	case Admitted:
		return "admitted"
	case RejectedCapacity:
		return "rejected-capacity"
	case RejectedMalformed:
		return "rejected-malformed"
	case RejectedBusy:
		return "rejected-busy"
	case AlreadyComplete:
		return "already-complete"
	}
	return fmt.Sprintf("VerdictCode(%d)", byte(c))
}

// Verdict is the server's admission answer to a StreamHello or a
// StreamResume.
type Verdict struct {
	Code VerdictCode
	// Available is the link capacity still unreserved (bits/second) at
	// decision time — on rejection, what the sender would have to fit
	// under to be admitted.
	Available float64
	// ResumeToken, when nonzero on an admitted verdict, lets the sender
	// reopen this stream after a disconnect (see StreamResume). Zero
	// means the server does not support resumption.
	ResumeToken uint64
	// NextIndex is the first picture index the server has not yet
	// received — meaningful on the verdict answering a StreamResume,
	// where it is the sender's replay point.
	NextIndex int
	// PrefixFNV is the server's running FNV-1a hash over every payload
	// it has accepted so far, in index order — the hash of the stream
	// prefix [0, NextIndex). On an admitted verdict the sender verifies
	// its own prefix hash against it before (re)playing anything, so
	// divergent state is detected up front (ErrDiverged) instead of
	// shipped. On an AlreadyComplete verdict it is the finished stream's
	// final hash.
	PrefixFNV uint64
	// Epoch is the issuing primary's fencing term. A clustered server
	// stamps every verdict with the epoch it promoted at; a sender that
	// has already seen a higher epoch treats this verdict as coming
	// from a deposed primary and retries elsewhere rather than act on
	// stale authority. Zero means the server is unclustered (or
	// predates fencing) and the field carries no meaning.
	Epoch uint64
}

// IsAdmitted reports whether the stream may proceed.
func (v Verdict) IsAdmitted() bool { return v.Code == Admitted }

// deadlineWriter is the write-deadline surface of net.Conn.
type deadlineWriter interface {
	SetWriteDeadline(time.Time) error
}

// deadlineReader is the read-deadline surface of net.Conn (net.Pipe
// supports it too); any other reader gets no deadline.
type deadlineReader interface {
	SetReadDeadline(time.Time) error
}

// FrameWriter frames outbound messages with a CRC32 checksum and a
// per-connection sequence number. One FrameWriter must own a
// connection's write side for the whole session — the handshake and the
// stream share its counter.
type FrameWriter struct {
	w   io.Writer
	d   deadlineWriter
	seq uint32
	// WriteTimeout, when nonzero and the underlying writer supports
	// write deadlines, bounds every frame and payload-chunk write so a
	// dead or stalled receiver cannot wedge the sender goroutine. It is
	// re-armed per write, mirroring Receiver.ReadTimeout.
	WriteTimeout time.Duration
	// MaxPayload caps the picture payload size this writer will frame
	// (default DefaultMaxPictureBytes, never above MaxPictureBytes).
	MaxPayload int
	// scratch is the reused frame-encoding buffer: every body is fixed
	// and small, and the frame is fully written before writeFrame
	// returns, so one buffer serves the writer's whole session.
	scratch []byte
}

// NewFrameWriter wraps a connection's write side. If w supports
// SetWriteDeadline (net.Conn does), WriteTimeout can bound each write.
func NewFrameWriter(w io.Writer) *FrameWriter {
	fw := &FrameWriter{w: w}
	if d, ok := w.(deadlineWriter); ok {
		fw.d = d
	}
	return fw
}

func (fw *FrameWriter) maxPayload() int {
	if fw.MaxPayload > 0 && fw.MaxPayload <= MaxPictureBytes {
		return fw.MaxPayload
	}
	return DefaultMaxPictureBytes
}

// write arms the per-write deadline (when configured) and writes p.
func (fw *FrameWriter) write(p []byte) error {
	if fw.d != nil && fw.WriteTimeout > 0 {
		if err := fw.d.SetWriteDeadline(time.Now().Add(fw.WriteTimeout)); err != nil {
			return fmt.Errorf("transport: arming write deadline: %w", err)
		}
	}
	_, err := fw.w.Write(p)
	return err
}

// writeFrame emits kind|seq|body|crc and advances the sequence counter.
func (fw *FrameWriter) writeFrame(kind byte, body []byte) error {
	buf := fw.scratch[:0]
	buf = append(buf, kind)
	buf = binary.BigEndian.AppendUint32(buf, fw.seq)
	buf = append(buf, body...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	fw.scratch = buf
	if err := fw.write(buf); err != nil {
		return err
	}
	fw.seq++
	return nil
}

// WriteHello writes a stream-opening hello.
func (fw *FrameWriter) WriteHello(h StreamHello) error {
	if err := h.Validate(); err != nil {
		return err
	}
	if h.GOP.N > math.MaxUint16 || h.GOP.M > math.MaxUint16 ||
		h.K > math.MaxUint16 || h.Pictures > math.MaxUint32 {
		return fmt.Errorf("transport: hello field out of wire range")
	}
	var body [43]byte
	binary.BigEndian.PutUint64(body[0:8], math.Float64bits(h.Tau))
	binary.BigEndian.PutUint16(body[8:10], uint16(h.GOP.N))
	binary.BigEndian.PutUint16(body[10:12], uint16(h.GOP.M))
	binary.BigEndian.PutUint16(body[12:14], uint16(h.K))
	binary.BigEndian.PutUint64(body[14:22], math.Float64bits(h.D))
	binary.BigEndian.PutUint32(body[22:26], uint32(h.Pictures))
	binary.BigEndian.PutUint64(body[26:34], math.Float64bits(h.PeakRate))
	binary.BigEndian.PutUint64(body[34:42], h.Nonce)
	body[42] = byte(h.Integrity)
	return fw.writeFrame(kindHello, body[:])
}

// WriteResume writes a stream-reopening resume request.
func (fw *FrameWriter) WriteResume(r StreamResume) error {
	if r.Token == 0 {
		return fmt.Errorf("transport: zero resume token")
	}
	var body [8]byte
	binary.BigEndian.PutUint64(body[:], r.Token)
	return fw.writeFrame(kindResume, body[:])
}

// WriteVerdict writes an admission verdict.
func (fw *FrameWriter) WriteVerdict(v Verdict) error {
	if v.Code > AlreadyComplete {
		return fmt.Errorf("transport: invalid verdict code %d", v.Code)
	}
	if math.IsNaN(v.Available) || math.IsInf(v.Available, 0) || v.Available < 0 {
		return fmt.Errorf("transport: invalid verdict capacity %v", v.Available)
	}
	if v.NextIndex < 0 || v.NextIndex > math.MaxUint32 {
		return fmt.Errorf("transport: verdict next index %d out of range", v.NextIndex)
	}
	var body [37]byte
	body[0] = byte(v.Code)
	binary.BigEndian.PutUint64(body[1:9], math.Float64bits(v.Available))
	binary.BigEndian.PutUint64(body[9:17], v.ResumeToken)
	binary.BigEndian.PutUint32(body[17:21], uint32(v.NextIndex))
	binary.BigEndian.PutUint64(body[21:29], v.PrefixFNV)
	binary.BigEndian.PutUint64(body[29:37], v.Epoch)
	return fw.writeFrame(kindVerdict, body[:])
}

// WriteRedirect writes a shard redirect: the answer to a hello or
// resume whose session key another shard owns.
func (fw *FrameWriter) WriteRedirect(rd Redirect) error {
	if rd.Addr == "" || len(rd.Addr) > maxRedirectAddr {
		return fmt.Errorf("transport: redirect address %q out of range", rd.Addr)
	}
	var body [10 + maxRedirectAddr]byte
	binary.BigEndian.PutUint64(body[0:8], rd.Epoch)
	binary.BigEndian.PutUint16(body[8:10], uint16(len(rd.Addr)))
	copy(body[10:], rd.Addr)
	return fw.writeFrame(kindRedirect, body[:])
}

// WriteRate writes a rate notification.
func (fw *FrameWriter) WriteRate(n RateNotification) error {
	if n.Index < 0 || n.Index > math.MaxUint32 {
		return fmt.Errorf("transport: picture index %d out of range", n.Index)
	}
	if n.Rate <= 0 || math.IsNaN(n.Rate) || math.IsInf(n.Rate, 0) {
		return fmt.Errorf("transport: invalid rate %v", n.Rate)
	}
	var body [12]byte
	binary.BigEndian.PutUint32(body[0:4], uint32(n.Index))
	binary.BigEndian.PutUint64(body[4:12], math.Float64bits(n.Rate))
	return fw.writeFrame(kindRate, body[:])
}

// WritePictureHeader writes the header frame of a picture, carrying the
// payload's size and CRC32; the caller streams the payload bytes
// (paced) immediately after via WriteChunk.
func (fw *FrameWriter) WritePictureHeader(index int, t mpeg.PictureType, payload []byte) error {
	if index < 0 || index > math.MaxUint32 {
		return fmt.Errorf("transport: picture index %d out of range", index)
	}
	if len(payload) == 0 || len(payload) > fw.maxPayload() {
		return fmt.Errorf("transport: picture size %d out of range (cap %d)", len(payload), fw.maxPayload())
	}
	var body [13]byte
	binary.BigEndian.PutUint32(body[0:4], uint32(index))
	body[4] = byte(t)
	binary.BigEndian.PutUint32(body[5:9], uint32(len(payload)))
	binary.BigEndian.PutUint32(body[9:13], crc32.ChecksumIEEE(payload))
	return fw.writeFrame(kindPicture, body[:])
}

// WriteChunk writes raw payload bytes under the configured write
// deadline; the pacing loop calls it once per chunk.
func (fw *FrameWriter) WriteChunk(p []byte) error {
	return fw.write(p)
}

// WriteEnd writes the orderly end-of-stream marker.
func (fw *FrameWriter) WriteEnd() error {
	return fw.writeFrame(kindEnd, nil)
}

// FrameReader unframes and verifies inbound messages: CRC, sequence
// continuity, field sanity, and the payload-size cap. One FrameReader
// must own a connection's read side for the whole session.
type FrameReader struct {
	r   io.Reader
	d   deadlineReader
	seq uint32
	// MaxPayload caps the declared picture payload size this reader
	// will allocate for (default DefaultMaxPictureBytes, never above
	// MaxPictureBytes). A frame announcing more is corrupt.
	MaxPayload int
	// Pool, when set, opts the reader into allocation-free decoding:
	// picture payloads come from the pool (the consumer calls Put once
	// it is done with a payload), and the *PictureFrame and
	// *RateNotification values ReadMessage returns are reused — they are
	// valid only until the next ReadMessage call. Leave nil for the
	// allocate-per-message behaviour, where every returned value and
	// payload is caller-owned.
	Pool *BufferPool
	// scratch holds the frame body+crc between reads; bodies are fixed
	// and small, and decode never retains body bytes (all fields are
	// value copies), so one buffer serves the reader's whole session.
	scratch []byte
	// head is the frame-header read buffer. A local array would escape
	// through the io.ReadFull interface call and cost one heap
	// allocation per frame; as a field it rides the reader's own
	// allocation.
	head [5]byte
	pic  PictureFrame
	rate RateNotification
}

// NewFrameReader wraps a connection's read side.
func NewFrameReader(r io.Reader) *FrameReader {
	fr := &FrameReader{r: r}
	if d, ok := r.(deadlineReader); ok {
		fr.d = d
	}
	return fr
}

// frameReadBufSize is the buffer NewFrameReaderBuffered puts in front
// of the connection: large enough to hold a burst of headers and small
// payloads, small enough to be irrelevant per connection.
const frameReadBufSize = 32 << 10

// NewFrameReaderBuffered wraps a connection's read side in a buffer so
// framing reads (the 1-byte kind probe, the 4-byte header remainder,
// the CRC trailer) hit memory instead of the kernel — on the ingest
// hot path this removes two to three read syscalls per frame. Read
// deadlines still bind: deadline control stays on the connection, and
// the buffer only fills from reads the deadline governs. The reader
// owns the connection's read side either way; nothing else may read
// from conn once it is handed here.
func NewFrameReaderBuffered(conn io.Reader) *FrameReader {
	fr := &FrameReader{r: bufio.NewReaderSize(conn, frameReadBufSize)}
	if d, ok := conn.(deadlineReader); ok {
		fr.d = d
	}
	return fr
}

func (fr *FrameReader) maxPayload() int {
	if fr.MaxPayload > 0 && fr.MaxPayload <= MaxPictureBytes {
		return fr.MaxPayload
	}
	return DefaultMaxPictureBytes
}

// ReadMessage reads and verifies the next message. It returns a
// *StreamHello, a *StreamResume, a *Verdict, a *Redirect, a
// *RateNotification, or a *PictureFrame (with the payload fully read
// and CRC-checked), or ErrClosed on the end marker. Frames that fail verification return
// errors wrapping ErrCorrupt or ErrBadSeq.
func (fr *FrameReader) ReadMessage() (any, error) {
	head := fr.head[:]
	if _, err := io.ReadFull(fr.r, head[:1]); err != nil {
		return nil, err
	}
	n, known := bodyLen(head[0])
	if !known {
		return nil, fmt.Errorf("%w: unknown message kind %#02x", ErrCorrupt, head[0])
	}
	if _, err := io.ReadFull(fr.r, head[1:]); err != nil {
		return nil, fmt.Errorf("transport: short frame header: %w", err)
	}
	if cap(fr.scratch) < n+4 {
		fr.scratch = make([]byte, n+4)
	}
	rest := fr.scratch[:n+4]
	if _, err := io.ReadFull(fr.r, rest); err != nil {
		return nil, fmt.Errorf("transport: short frame body: %w", err)
	}
	body := rest[:n]
	sum := crc32.ChecksumIEEE(head[:])
	sum = crc32.Update(sum, crc32.IEEETable, body)
	if got := binary.BigEndian.Uint32(rest[n:]); got != sum {
		return nil, fmt.Errorf("%w: %c frame crc %08x, want %08x", ErrCorrupt, head[0], got, sum)
	}
	if seq := binary.BigEndian.Uint32(head[1:5]); seq != fr.seq {
		return nil, fmt.Errorf("%w: frame seq %d, want %d", ErrBadSeq, seq, fr.seq)
	}
	fr.seq++
	return fr.decode(head[0], body)
}

// decode interprets a CRC- and sequence-verified frame body.
func (fr *FrameReader) decode(kind byte, body []byte) (any, error) {
	switch kind {
	case kindHello:
		h := StreamHello{
			Tau: math.Float64frombits(binary.BigEndian.Uint64(body[0:8])),
			GOP: mpeg.GOP{
				N: int(binary.BigEndian.Uint16(body[8:10])),
				M: int(binary.BigEndian.Uint16(body[10:12])),
			},
			K:         int(binary.BigEndian.Uint16(body[12:14])),
			D:         math.Float64frombits(binary.BigEndian.Uint64(body[14:22])),
			Pictures:  int(binary.BigEndian.Uint32(body[22:26])),
			PeakRate:  math.Float64frombits(binary.BigEndian.Uint64(body[26:34])),
			Nonce:     binary.BigEndian.Uint64(body[34:42]),
			Integrity: IntegrityMode(body[42]),
		}
		if err := h.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return &h, nil
	case kindResume:
		token := binary.BigEndian.Uint64(body)
		if token == 0 {
			return nil, fmt.Errorf("%w: zero resume token", ErrCorrupt)
		}
		return &StreamResume{Token: token}, nil
	case kindVerdict:
		v := Verdict{
			Code:        VerdictCode(body[0]),
			Available:   math.Float64frombits(binary.BigEndian.Uint64(body[1:9])),
			ResumeToken: binary.BigEndian.Uint64(body[9:17]),
			NextIndex:   int(binary.BigEndian.Uint32(body[17:21])),
			PrefixFNV:   binary.BigEndian.Uint64(body[21:29]),
			Epoch:       binary.BigEndian.Uint64(body[29:37]),
		}
		if v.Code > AlreadyComplete {
			return nil, fmt.Errorf("%w: invalid verdict code %d", ErrCorrupt, body[0])
		}
		if math.IsNaN(v.Available) || math.IsInf(v.Available, 0) || v.Available < 0 {
			return nil, fmt.Errorf("%w: invalid verdict capacity %v", ErrCorrupt, v.Available)
		}
		return &v, nil
	case kindRedirect:
		epoch := binary.BigEndian.Uint64(body[0:8])
		n := int(binary.BigEndian.Uint16(body[8:10]))
		if n == 0 || n > maxRedirectAddr {
			return nil, fmt.Errorf("%w: redirect address length %d", ErrCorrupt, n)
		}
		return &Redirect{Addr: string(body[10 : 10+n]), Epoch: epoch}, nil
	case kindRate:
		rate := math.Float64frombits(binary.BigEndian.Uint64(body[4:12]))
		if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
			return nil, fmt.Errorf("%w: peer sent invalid rate %v", ErrCorrupt, rate)
		}
		if fr.Pool != nil {
			fr.rate = RateNotification{
				Index: int(binary.BigEndian.Uint32(body[0:4])),
				Rate:  rate,
			}
			return &fr.rate, nil
		}
		return &RateNotification{
			Index: int(binary.BigEndian.Uint32(body[0:4])),
			Rate:  rate,
		}, nil
	case kindPicture:
		size := binary.BigEndian.Uint32(body[5:9])
		if size == 0 || int64(size) > int64(fr.maxPayload()) {
			return nil, fmt.Errorf("%w: peer announced picture of %d bytes (cap %d)",
				ErrCorrupt, size, fr.maxPayload())
		}
		ty := mpeg.PictureType(body[4])
		if ty > mpeg.TypeB {
			return nil, fmt.Errorf("%w: invalid picture type %d", ErrCorrupt, body[4])
		}
		var payload []byte
		if fr.Pool != nil {
			payload = fr.Pool.Get(int(size))
		} else {
			payload = make([]byte, size)
		}
		if _, err := io.ReadFull(fr.r, payload); err != nil {
			if fr.Pool != nil {
				fr.Pool.Put(payload)
			}
			return nil, fmt.Errorf("transport: truncated picture payload: %w", err)
		}
		if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(body[9:13]); got != want {
			if fr.Pool != nil {
				fr.Pool.Put(payload)
			}
			return nil, fmt.Errorf("%w: payload crc %08x, want %08x", ErrCorrupt, got, want)
		}
		if fr.Pool != nil {
			fr.pic = PictureFrame{
				Index:   int(binary.BigEndian.Uint32(body[0:4])),
				Type:    ty,
				Payload: payload,
			}
			return &fr.pic, nil
		}
		return &PictureFrame{
			Index:   int(binary.BigEndian.Uint32(body[0:4])),
			Type:    ty,
			Payload: payload,
		}, nil
	case kindEnd:
		return nil, ErrClosed
	}
	return nil, fmt.Errorf("%w: unknown message kind %#02x", ErrCorrupt, kind)
}

// ReadMessageTimeout arms a read deadline covering the whole next
// message — header and payload — before reading it, so a sender that
// stalls mid-picture cannot wedge the reader forever. The deadline is
// re-armed per call, never accumulated across a session. A zero
// timeout, or a reader without SetReadDeadline, reads (and explicitly
// clears any previous deadline) without one.
func (fr *FrameReader) ReadMessageTimeout(timeout time.Duration) (any, error) {
	if fr.d != nil {
		if timeout > 0 {
			if err := fr.d.SetReadDeadline(time.Now().Add(timeout)); err != nil {
				return nil, fmt.Errorf("transport: arming read deadline: %w", err)
			}
		} else if err := fr.d.SetReadDeadline(time.Time{}); err != nil {
			return nil, fmt.Errorf("transport: clearing read deadline: %w", err)
		}
	}
	return fr.ReadMessage()
}

// ReadVerdict reads an admission verdict — the one message that flows
// server→sender, immediately after a hello or resume request.
func (fr *FrameReader) ReadVerdict() (Verdict, error) {
	return fr.ReadVerdictTimeout(0)
}

// ReadVerdictTimeout reads an admission verdict under a read deadline.
func (fr *FrameReader) ReadVerdictTimeout(timeout time.Duration) (Verdict, error) {
	msg, err := fr.ReadMessageTimeout(timeout)
	if err != nil {
		return Verdict{}, err
	}
	v, ok := msg.(*Verdict)
	if !ok {
		return Verdict{}, fmt.Errorf("%w: expected verdict, got %T", ErrCorrupt, msg)
	}
	return *v, nil
}
