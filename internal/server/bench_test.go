package server

import (
	"context"
	"sync"
	"testing"

	"mpegsmooth/internal/journal"
)

// BenchmarkServerIngest pushes 8 concurrent streams through the full
// admission + smoothing + shared-egress path per iteration. TimeScale
// 1e6 collapses pacing so the benchmark measures the server machinery,
// not the schedule clock.
func BenchmarkServerIngest(b *testing.B) {
	const streams = 8
	kit := makeClient(b, testTrace(b, 54))
	var streamBytes int64
	for _, p := range kit.payloads {
		streamBytes += int64(len(p))
	}
	srv, addr := startServer(b, Config{
		LinkRate:  float64(streams) * kit.hello.PeakRate,
		TimeScale: 1e6,
	})

	b.SetBytes(streams * streamBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for j := 0; j < streams; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				v, err := kit.stream(context.Background(), addr)
				if err != nil {
					b.Error(err)
				} else if !v.IsAdmitted() {
					b.Errorf("rejected: %+v", v)
				}
			}()
		}
		wg.Wait()
		want := int64(i+1) * streams
		waitForBench(b, srv, want)
	}
	b.StopTimer()
}

// BenchmarkServerIngestJournal is BenchmarkServerIngest with the crash
// journal enabled — one fsync per admission and completion, coalesced
// watermark batches in between. The delta against the journal-less
// benchmark is the durability tax; the acceptance bar is 10%.
func BenchmarkServerIngestJournal(b *testing.B) {
	const streams = 8
	kit := makeClient(b, testTrace(b, 54))
	var streamBytes int64
	for _, p := range kit.payloads {
		streamBytes += int64(len(p))
	}
	j, err := journal.Open(journal.Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	srv, addr := startServer(b, Config{
		LinkRate:  float64(streams) * kit.hello.PeakRate,
		TimeScale: 1e6,
		Journal:   j,
	})

	b.SetBytes(streams * streamBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for j := 0; j < streams; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				v, err := kit.stream(context.Background(), addr)
				if err != nil {
					b.Error(err)
				} else if !v.IsAdmitted() {
					b.Errorf("rejected: %+v", v)
				}
			}()
		}
		wg.Wait()
		want := int64(i+1) * streams
		waitForBench(b, srv, want)
	}
	b.StopTimer()
}

func waitForBench(b *testing.B, srv *Server, completed int64) {
	waitFor(b, "iteration drain", func() bool {
		s := srv.Snapshot()
		return s.Streams.Completed == completed && s.Streams.Active == 0
	})
}
