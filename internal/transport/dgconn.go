package transport

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"
)

// The datagram ARQ connection: selective-repeat reliability over a
// lossy packet channel, presented as a net.Conn. The stream protocol
// (FrameReader/FrameWriter, hello/verdict/resume, exactly-once
// admission) runs over a DGConn unchanged — the ARQ layer's whole job
// is to make reorder, duplication, and burst loss look like an
// ordinary reliable byte stream that occasionally slows down or, past
// the retransmission budget, fails with a classified, retryable fault.
//
// Reliability machinery, per direction:
//
//   - Send window of cfg.Window (≤ 64) packets. Write blocks while the
//     window is full; every unacked packet is retransmitted on a
//     jittered exponential timeout (transport.Backoff) and failed with
//     ErrRetransmitExhausted after cfg.MaxRetransmits attempts.
//   - Cumulative + bitmap acks. Each arriving DATA triggers an ACK
//     carrying rcvNext and a 64-bit map of out-of-order packets held in
//     reassembly; bitmap acks both stop retransmission of received
//     packets and serve as gap evidence — a packet reported missing
//     below a selectively-acked sequence dgGapRetransmit times is
//     fast-retransmitted without waiting for its timeout.
//   - Bounded reassembly (dgReassemblyWindow). Duplicates are dropped
//     and re-acked (the duplicate means our ACK was lost); a sequence
//     beyond the window tears the flow down with ErrReorderOverflow.
//   - FIN occupies a sequence slot, so end-of-stream is retransmitted
//     and acked like data; the reader drains buffered bytes then io.EOF.
//
// Flow incarnations: every dial draws a random 32-bit connection ID
// stamped on every packet. Packets under a different ID drop silently
// (counted as stale), and an ACK for sequences never sent fails the
// flow with ErrStaleDuplicate — the redial that follows picks a fresh
// ID and shakes the stale incarnation off.

// DatagramConfig parameterizes the ARQ layer. The zero value is ready
// to use.
type DatagramConfig struct {
	// MTU is the per-packet payload budget (default DatagramMTU).
	MTU int
	// Window is the send window in packets, capped at 64 to match the
	// ACK bitmap (default 64).
	Window int
	// RTO is the retransmission backoff schedule per packet: attempt n
	// waits RTO.Delay(n) after the previous send. Defaults to
	// Base 25ms / Max 1s with Backoff's factor-2 jittered growth.
	RTO Backoff
	// MaxRetransmits bounds attempts per packet before the flow fails
	// with ErrRetransmitExhausted (default 14).
	MaxRetransmits int
	// Linger bounds how long Close keeps retransmitting unacked packets
	// (including the FIN) in the background before releasing the
	// underlying socket (default 1s).
	Linger time.Duration
	// Seed fixes the RTO jitter stream for deterministic tests; 0 draws
	// a random seed.
	Seed int64
	// AcceptBacklog bounds the listener's queue of new flows awaiting
	// Accept (default 64). Flows arriving past it are dropped; the
	// peer's retransmission redelivers once the queue drains.
	AcceptBacklog int
}

func (c DatagramConfig) withDefaults() DatagramConfig {
	if c.MTU <= 0 {
		c.MTU = DatagramMTU
	}
	if c.MTU > dgMaxPayload {
		c.MTU = dgMaxPayload
	}
	if c.Window <= 0 || c.Window > dgSendWindow {
		c.Window = dgSendWindow
	}
	if c.RTO.Base <= 0 {
		c.RTO.Base = 25 * time.Millisecond
	}
	if c.RTO.Max <= 0 {
		c.RTO.Max = time.Second
	}
	if c.MaxRetransmits <= 0 {
		c.MaxRetransmits = 14
	}
	if c.Linger <= 0 {
		c.Linger = time.Second
	}
	if c.AcceptBacklog <= 0 {
		c.AcceptBacklog = 64
	}
	if c.Seed == 0 {
		c.Seed = randomSeed()
	}
	return c
}

func randomSeed() int64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return 1
	}
	s := int64(binary.BigEndian.Uint64(b[:]) >> 1)
	if s == 0 {
		s = 1
	}
	return s
}

func randomConnID() uint32 {
	var b [4]byte
	for {
		if _, err := cryptorand.Read(b[:]); err != nil {
			return 0xC0FFEE
		}
		if id := binary.BigEndian.Uint32(b[:]); id != 0 {
			return id
		}
	}
}

// DGStats are one flow's ARQ counters, for tests and diagnostics.
type DGStats struct {
	// Sent counts first transmissions; Retransmits timeout-driven
	// resends; FastRetransmits gap-evidence resends.
	Sent            int64
	Retransmits     int64
	FastRetransmits int64
	// DupsDropped counts received duplicates (already delivered or
	// already buffered); StaleDropped packets under a foreign
	// connection ID.
	DupsDropped  int64
	StaleDropped int64
}

// dgOut is one in-flight outbound packet.
type dgOut struct {
	buf      []byte // encoded packet, resent verbatim
	attempts int    // transmissions so far
	lastSent time.Time
	acked    bool // selectively acked; kept until cum passes
	gapHits  int  // times reported missing below a sacked sequence
}

// DGConn is one datagram ARQ flow. It implements net.Conn, including
// the deadline methods FrameReader/FrameWriter and the server's
// timeout discipline rely on.
type DGConn struct {
	cfg    DatagramConfig
	connID uint32
	local  net.Addr
	remote net.Addr
	// send transmits one encoded packet, best-effort: errors are
	// ignored because the retransmission schedule is the delivery
	// guarantee. done releases the underlying transport (closes the
	// socket or deregisters from the listener) exactly once.
	send func([]byte)
	done func()

	mu   sync.Mutex
	cond *sync.Cond

	// Sender state: window [sndBase, sndNext), outs keyed by seq.
	sndBase uint32
	sndNext uint32
	outs    map[uint32]*dgOut
	finSent bool

	// Receiver state: rcvBuf holds out-of-order packets ≥ rcvNext;
	// readBuf is the in-order byte stream awaiting Read.
	rcvNext uint32
	rcvBuf  map[uint32][]byte
	haveFin bool
	finSeq  uint32
	gotFin  bool // FIN delivered in order: EOF once readBuf drains
	readBuf []byte
	readOff int

	rdl, wdl           time.Time
	rdlTimer, wdlTimer *time.Timer

	err      error // terminal fault
	closed   bool  // Close called: user-visible operations fail
	stopped  bool  // machinery halted, transport released
	stopCh   chan struct{}
	doneOnce sync.Once

	rng        *rand.Rand // RTO jitter; guarded by mu
	stats      DGStats
	ackScratch []byte
}

func newDGConn(cfg DatagramConfig, connID uint32, local, remote net.Addr,
	send func([]byte), done func()) *DGConn {
	c := &DGConn{
		cfg:    cfg,
		connID: connID,
		local:  local,
		remote: remote,
		send:   send,
		done:   done,
		outs:   make(map[uint32]*dgOut),
		rcvBuf: make(map[uint32][]byte),
		stopCh: make(chan struct{}),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	c.cond = sync.NewCond(&c.mu)
	go c.retransmitLoop()
	return c
}

// ConnID exposes the flow incarnation ID (tests, diagnostics).
func (c *DGConn) ConnID() uint32 { return c.connID }

// Stats snapshots the flow's ARQ counters.
func (c *DGConn) Stats() DGStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *DGConn) LocalAddr() net.Addr  { return c.local }
func (c *DGConn) RemoteAddr() net.Addr { return c.remote }

// Write chops p into MTU-sized packets, blocking whenever the send
// window is full until acks open it (or the write deadline expires).
func (c *DGConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for n < len(p) {
		if err := c.waitWindowLocked(); err != nil {
			return n, err
		}
		m := min(c.cfg.MTU, len(p)-n)
		c.transmitLocked(dgKindData, p[n:n+m])
		n += m
	}
	return n, nil
}

// waitWindowLocked blocks until the send window has room.
func (c *DGConn) waitWindowLocked() error {
	for {
		switch {
		case c.err != nil:
			return c.err
		case c.closed:
			return net.ErrClosed
		case !c.wdl.IsZero() && !time.Now().Before(c.wdl):
			return os.ErrDeadlineExceeded
		case c.sndNext-c.sndBase < uint32(c.cfg.Window):
			return nil
		}
		c.cond.Wait()
	}
}

// transmitLocked assigns the next sequence, records the packet in the
// send window, and transmits it once.
func (c *DGConn) transmitLocked(kind byte, payload []byte) {
	seq := c.sndNext
	c.sndNext++
	buf := appendDataPacket(nil, kind, c.connID, seq, payload)
	c.outs[seq] = &dgOut{buf: buf, attempts: 1, lastSent: time.Now()}
	c.stats.Sent++
	c.send(buf)
}

// Read delivers in-order bytes, blocking until data, EOF, a terminal
// fault, or the read deadline.
func (c *DGConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.readOff < len(c.readBuf) {
			n := copy(p, c.readBuf[c.readOff:])
			c.readOff += n
			if c.readOff == len(c.readBuf) {
				c.readBuf = c.readBuf[:0]
				c.readOff = 0
			}
			return n, nil
		}
		switch {
		case c.gotFin:
			return 0, io.EOF
		case c.err != nil:
			return 0, c.err
		case c.closed:
			return 0, net.ErrClosed
		case !c.rdl.IsZero() && !time.Now().Before(c.rdl):
			return 0, os.ErrDeadlineExceeded
		}
		c.cond.Wait()
	}
}

// handlePacket is the ingress path, called by the socket read loop
// (client) or listener demux (server) with a decoded packet whose
// payload aliases the read buffer.
func (c *DGConn) handlePacket(pkt dgPacket) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return
	}
	if pkt.Conn != c.connID {
		c.stats.StaleDropped++
		return
	}
	switch pkt.Kind {
	case dgKindData, dgKindFin:
		c.handleDataLocked(pkt)
	case dgKindAck:
		c.handleAckLocked(pkt)
	}
}

func (c *DGConn) handleDataLocked(pkt dgPacket) {
	switch {
	case pkt.Seq < c.rcvNext:
		// Already delivered: the duplicate means our ACK was lost, so
		// re-ack to let the sender's window advance.
		c.stats.DupsDropped++
		c.sendAckLocked()
		return
	case pkt.Seq >= c.rcvNext+dgReassemblyWindow:
		c.failLocked(fmt.Errorf("seq %d beyond reassembly window [%d,%d): %w",
			pkt.Seq, c.rcvNext, c.rcvNext+dgReassemblyWindow, ErrReorderOverflow))
		return
	}
	if _, dup := c.rcvBuf[pkt.Seq]; dup {
		c.stats.DupsDropped++
		c.sendAckLocked()
		return
	}
	// The payload aliases the caller's read buffer — copy to retain.
	c.rcvBuf[pkt.Seq] = append([]byte(nil), pkt.Payload...)
	if pkt.Kind == dgKindFin {
		c.haveFin = true
		c.finSeq = pkt.Seq
	}
	for {
		b, ok := c.rcvBuf[c.rcvNext]
		if !ok {
			break
		}
		delete(c.rcvBuf, c.rcvNext)
		if c.haveFin && c.rcvNext == c.finSeq {
			c.gotFin = true
		} else {
			c.readBuf = append(c.readBuf, b...)
		}
		c.rcvNext++
	}
	c.sendAckLocked()
	c.cond.Broadcast()
}

// sendAckLocked transmits the receiver's current cumulative + bitmap
// acknowledgement.
func (c *DGConn) sendAckLocked() {
	cum := c.rcvNext
	var bitmap uint64
	for i := uint32(0); i < 64; i++ {
		if _, ok := c.rcvBuf[cum+1+i]; ok {
			bitmap |= 1 << i
		}
	}
	c.ackScratch = appendAckPacket(c.ackScratch[:0], c.connID, cum, bitmap)
	c.send(c.ackScratch)
}

func (c *DGConn) handleAckLocked(pkt dgPacket) {
	if pkt.Cum > c.sndNext {
		// An ack for sequences this flow never sent can only come from
		// a stale or foreign incarnation that got past the ID check by
		// collision; the flow's accounting is compromised.
		c.failLocked(fmt.Errorf("ack for unsent seq %d (next %d): %w",
			pkt.Cum, c.sndNext, ErrStaleDuplicate))
		return
	}
	for c.sndBase < pkt.Cum {
		delete(c.outs, c.sndBase)
		c.sndBase++
	}
	var maxSacked uint32
	sacked := false
	for i := 0; i < 64; i++ {
		if pkt.Bitmap&(1<<i) == 0 {
			continue
		}
		seq := pkt.Cum + 1 + uint32(i)
		if out, ok := c.outs[seq]; ok {
			out.acked = true
		}
		if seq < c.sndNext {
			maxSacked, sacked = seq, true
		}
	}
	if sacked {
		// Gap evidence: every unacked sequence below the highest
		// selectively-acked one was missing when the receiver acked.
		// Enough consecutive reports trigger fast retransmit ahead of
		// the timeout.
		now := time.Now()
		for seq := c.sndBase; seq < maxSacked; seq++ {
			out, ok := c.outs[seq]
			if !ok || out.acked {
				continue
			}
			if out.gapHits++; out.gapHits >= dgGapRetransmit {
				out.gapHits = 0
				out.attempts++
				out.lastSent = now
				c.stats.FastRetransmits++
				c.send(out.buf)
			}
		}
	}
	c.cond.Broadcast()
}

// retransmitLoop scans the send window and resends packets whose
// jittered RTO has elapsed, failing the flow once a packet exhausts
// its attempt budget.
func (c *DGConn) retransmitLoop() {
	tick := c.cfg.RTO.Base / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	if tick > 20*time.Millisecond {
		tick = 20 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
		case <-c.stopCh:
			return
		}
		c.mu.Lock()
		now := time.Now()
		for seq := c.sndBase; seq < c.sndNext && c.err == nil; seq++ {
			out, ok := c.outs[seq]
			if !ok || out.acked {
				continue
			}
			if now.Sub(out.lastSent) < c.cfg.RTO.Delay(out.attempts, c.rng) {
				continue
			}
			if out.attempts >= c.cfg.MaxRetransmits {
				c.failLocked(fmt.Errorf("seq %d unacked after %d attempts: %w",
					seq, out.attempts, ErrRetransmitExhausted))
				break
			}
			out.attempts++
			out.lastSent = now
			c.stats.Retransmits++
			c.send(out.buf)
		}
		stopped := c.stopped
		c.mu.Unlock()
		if stopped {
			return
		}
	}
}

// failLocked records the terminal fault and halts the flow.
func (c *DGConn) failLocked(err error) {
	if c.err == nil {
		c.err = err
	}
	c.stopLocked()
}

// stopLocked halts the machinery and releases the transport.
func (c *DGConn) stopLocked() {
	if c.stopped {
		return
	}
	c.stopped = true
	close(c.stopCh)
	c.cond.Broadcast()
	c.doneOnce.Do(func() { go c.done() })
}

// Close sends a FIN occupying the next sequence slot and returns
// immediately; a background drain keeps retransmitting unacked packets
// (FIN included) until everything is acked or cfg.Linger elapses, then
// releases the socket. Reads and writes fail with net.ErrClosed as
// soon as Close is called.
func (c *DGConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	if c.err == nil && !c.stopped && !c.finSent {
		c.finSent = true
		// The FIN ignores window occupancy: it must get a sequence even
		// when writers are stalled against a full window.
		c.transmitLocked(dgKindFin, nil)
	}
	if c.err != nil || c.stopped || len(c.outs) == 0 {
		c.stopLocked()
		c.mu.Unlock()
		return nil
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	go c.drainThenStop()
	return nil
}

// drainThenStop waits for the send window to empty (every packet
// acked) or the linger deadline, then halts the flow.
func (c *DGConn) drainThenStop() {
	deadline := time.Now().Add(c.cfg.Linger)
	timer := time.AfterFunc(c.cfg.Linger, c.cond.Broadcast)
	defer timer.Stop()
	c.mu.Lock()
	for c.err == nil && !c.stopped && len(c.outs) > 0 && time.Now().Before(deadline) {
		c.cond.Wait()
	}
	c.stopLocked()
	c.mu.Unlock()
}

func (c *DGConn) SetDeadline(t time.Time) error {
	c.SetReadDeadline(t)
	return c.SetWriteDeadline(t)
}

func (c *DGConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rdl = t
	if c.rdlTimer != nil {
		c.rdlTimer.Stop()
		c.rdlTimer = nil
	}
	if !t.IsZero() {
		d := max(time.Until(t), 0)
		c.rdlTimer = time.AfterFunc(d, c.cond.Broadcast)
	}
	c.cond.Broadcast()
	return nil
}

func (c *DGConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wdl = t
	if c.wdlTimer != nil {
		c.wdlTimer.Stop()
		c.wdlTimer = nil
	}
	if !t.IsZero() {
		d := max(time.Until(t), 0)
		c.wdlTimer = time.AfterFunc(d, c.cond.Broadcast)
	}
	c.cond.Broadcast()
	return nil
}

// DatagramListener accepts ARQ flows over one shared net.PacketConn,
// demultiplexing datagrams by source address. It implements
// net.Listener, so server.Serve runs over it unchanged.
type DatagramListener struct {
	pc  net.PacketConn
	cfg DatagramConfig

	mu      sync.Mutex
	conns   map[string]*DGConn
	closed  bool
	acceptQ chan *DGConn
	closeCh chan struct{}
	once    sync.Once
}

// ListenDatagram wraps a packet socket (net.ListenPacket("udp", …), or
// a fault-injecting wrapper around one) in an ARQ flow demultiplexer.
func ListenDatagram(pc net.PacketConn, cfg DatagramConfig) *DatagramListener {
	cfg = cfg.withDefaults()
	l := &DatagramListener{
		pc:      pc,
		cfg:     cfg,
		conns:   make(map[string]*DGConn),
		acceptQ: make(chan *DGConn, cfg.AcceptBacklog),
		closeCh: make(chan struct{}),
	}
	go l.demux()
	return l
}

// Accept returns the next new flow.
func (l *DatagramListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.acceptQ:
		return c, nil
	case <-l.closeCh:
		return nil, net.ErrClosed
	}
}

// Addr returns the underlying socket's address.
func (l *DatagramListener) Addr() net.Addr { return l.pc.LocalAddr() }

// Close shuts the socket and fails every live flow.
func (l *DatagramListener) Close() error {
	l.mu.Lock()
	l.closed = true
	conns := make([]*DGConn, 0, len(l.conns))
	for _, c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	l.once.Do(func() { close(l.closeCh) })
	err := l.pc.Close()
	for _, c := range conns {
		c.mu.Lock()
		c.failLocked(net.ErrClosed)
		c.mu.Unlock()
	}
	return err
}

// demux is the single socket read loop: decode, route to the flow by
// source address, creating flows for new sources on valid DATA.
func (l *DatagramListener) demux() {
	buf := make([]byte, 64<<10)
	for {
		n, addr, err := l.pc.ReadFrom(buf)
		if err != nil {
			if l.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient socket errors (ICMP-borne, injected timeouts):
			// keep serving; reliability lives in the ARQ layer.
			continue
		}
		pkt, derr := decodeDatagram(buf[:n])
		if derr != nil {
			continue // corrupt datagrams drop silently, like loss
		}
		key := addr.String()
		l.mu.Lock()
		c := l.conns[key]
		if c == nil {
			// Only a DATA packet opens a flow: stray ACKs and FIN
			// retransmits from dead incarnations must not conjure
			// ghost connections.
			if l.closed || pkt.Kind != dgKindData || len(l.acceptQ) == cap(l.acceptQ) {
				l.mu.Unlock()
				continue
			}
			c = l.newFlowLocked(key, addr, pkt.Conn)
			l.acceptQ <- c
		}
		l.mu.Unlock()
		c.handlePacket(pkt)
	}
}

func (l *DatagramListener) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// newFlowLocked creates the server-side DGConn for a new source
// address, adopting the client's connection ID.
func (l *DatagramListener) newFlowLocked(key string, addr net.Addr, connID uint32) *DGConn {
	cfg := l.cfg
	// Decorrelate per-flow jitter while keeping it derived from the
	// listener seed, for reproducible tests.
	cfg.Seed = l.cfg.Seed ^ int64(connID)
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	send := func(b []byte) { l.pc.WriteTo(b, addr) }
	done := func() {
		l.mu.Lock()
		if l.conns[key] != nil {
			delete(l.conns, key)
		}
		l.mu.Unlock()
	}
	c := newDGConn(cfg, connID, l.pc.LocalAddr(), addr, send, done)
	l.conns[key] = c
	return c
}

// NewDatagramClientConn runs the client half of an ARQ flow over an
// already-connected packet conn (one datagram per Read/Write) — the
// seam where tests and the streamer CLI insert fault-injecting
// wrappers.
func NewDatagramClientConn(pc net.Conn, cfg DatagramConfig) *DGConn {
	cfg = cfg.withDefaults()
	c := newDGConn(cfg, randomConnID(), pc.LocalAddr(), pc.RemoteAddr(),
		func(b []byte) { pc.Write(b) },
		func() { pc.Close() })
	go c.readLoop(pc)
	return c
}

// readLoop pumps the client socket into the flow until the socket
// closes (done() on stop) or errors persist past any plausible
// transient.
func (c *DGConn) readLoop(pc net.Conn) {
	buf := make([]byte, 64<<10)
	consecutive := 0
	for {
		n, err := pc.Read(buf)
		if err != nil {
			select {
			case <-c.stopCh:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			// Connected UDP surfaces ICMP unreachable as ECONNREFUSED:
			// transient while the server rebinds. Persistent errors
			// eventually fail the flow through retransmit exhaustion,
			// but cap the spin here too.
			if consecutive++; consecutive > 1000 {
				c.mu.Lock()
				c.failLocked(fmt.Errorf("datagram socket: %w", err))
				c.mu.Unlock()
				return
			}
			time.Sleep(time.Millisecond)
			continue
		}
		consecutive = 0
		pkt, derr := decodeDatagram(buf[:n])
		if derr != nil {
			continue
		}
		c.handlePacket(pkt)
	}
}

// DialDatagram opens an ARQ flow to a UDP address.
func DialDatagram(addr string, cfg DatagramConfig) (*DGConn, error) {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	pc, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, err
	}
	return NewDatagramClientConn(pc, cfg), nil
}
