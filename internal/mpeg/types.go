// Package mpeg implements a simplified MPEG-1-style video codec: GOP
// structure, I/P/B picture coding with motion compensation, the
// sequence/GOP/picture/slice bitstream syntax with unique start codes, and
// a stream inspector that extracts per-picture sizes — the "transport
// designer's view" of an MPEG stream described in Section 2 of
// Lam/Chow/Yau (SIGCOMM '94).
//
// The codec is deliberately a subset of ISO 11172-2 (see DESIGN.md §7):
// full-pixel motion vectors, one slice per macroblock row, Exp-Golomb
// address increments. It exists so the smoothing experiments can run on
// genuinely encoder-shaped picture sizes and so examples can exercise a
// complete capture → encode → smooth → transmit pipeline.
package mpeg

import "fmt"

// PictureType identifies how a picture is coded.
type PictureType uint8

const (
	// TypeI pictures are intracoded: decodable without reference to any
	// other picture, and by far the largest.
	TypeI PictureType = iota
	// TypeP pictures are predicted from the preceding I or P picture.
	TypeP
	// TypeB pictures are bidirectionally predicted from the preceding and
	// following I or P pictures, and by far the smallest.
	TypeB
)

// String returns "I", "P", or "B".
func (t PictureType) String() string {
	switch t {
	case TypeI:
		return "I"
	case TypeP:
		return "P"
	case TypeB:
		return "B"
	}
	return fmt.Sprintf("PictureType(%d)", uint8(t))
}

// ParsePictureType converts "I", "P", or "B" to a PictureType.
func ParsePictureType(s string) (PictureType, error) {
	switch s {
	case "I", "i":
		return TypeI, nil
	case "P", "p":
		return TypeP, nil
	case "B", "b":
		return TypeB, nil
	}
	return 0, fmt.Errorf("mpeg: unknown picture type %q", s)
}

// GOP describes the repeating pattern of picture types in display order:
// N is the distance between I pictures and M the distance between
// reference (I or P) pictures. M=3, N=9 yields IBBPBBPBB repeating.
type GOP struct {
	M int
	N int
}

// Validate checks that the pattern parameters are usable.
func (g GOP) Validate() error {
	if g.M < 1 {
		return fmt.Errorf("mpeg: GOP M=%d, must be >= 1", g.M)
	}
	if g.N < 1 {
		return fmt.Errorf("mpeg: GOP N=%d, must be >= 1", g.N)
	}
	if g.N%g.M != 0 {
		return fmt.Errorf("mpeg: GOP N=%d not a multiple of M=%d", g.N, g.M)
	}
	return nil
}

// TypeOf returns the picture type at the given display-order index.
func (g GOP) TypeOf(displayIdx int) PictureType {
	if displayIdx < 0 {
		panic("mpeg: negative display index")
	}
	p := displayIdx % g.N
	if p == 0 {
		return TypeI
	}
	if p%g.M == 0 {
		return TypeP
	}
	return TypeB
}

// Pattern returns the repeating type pattern as a string, e.g. "IBBPBBPBB".
func (g GOP) Pattern() string {
	b := make([]byte, g.N)
	for i := 0; i < g.N; i++ {
		b[i] = g.TypeOf(i).String()[0]
	}
	return string(b)
}

// TransmissionOrder maps a sequence of count pictures in display order to
// transmission order: each I or P reference picture is transmitted before
// the group of B pictures that precedes it in display order, because a B
// picture cannot be decoded until its future reference has been received.
// The returned slice holds display indices in transmission order.
//
// Example (M=3, N=9): display IBBPBBPBBI... transmits as IPBBPBBIBB...
func (g GOP) TransmissionOrder(count int) []int {
	order := make([]int, 0, count)
	pendingB := make([]int, 0, g.M)
	for d := 0; d < count; d++ {
		if g.TypeOf(d) == TypeB {
			pendingB = append(pendingB, d)
			continue
		}
		order = append(order, d)
		order = append(order, pendingB...)
		pendingB = pendingB[:0]
	}
	// Trailing B pictures with no following reference are transmitted last
	// (they will be coded with forward prediction only).
	order = append(order, pendingB...)
	return order
}
