package mpeg

import (
	"fmt"

	"mpegsmooth/internal/bitio"
)

// Start-code values (the byte following the 0x000001 prefix), matching
// ISO 11172-2 where applicable.
const (
	PictureStartCode  byte = 0x00
	SliceStartMin     byte = 0x01 // slice start codes are 0x01..0xAF
	SliceStartMax     byte = 0xAF
	UserDataStartCode byte = 0xB2
	SequenceHeaderCod byte = 0xB3
	SequenceEndCode   byte = 0xB7
	GroupStartCode    byte = 0xB8
)

// IsSliceStartCode reports whether code identifies a slice.
func IsSliceStartCode(code byte) bool {
	return code >= SliceStartMin && code <= SliceStartMax
}

// SequenceHeader carries the control information a decoder needs before
// any picture can be decoded: spatial resolution and picture rate.
// It may be repeated before every group of pictures to permit random
// access; only the first occurrence is required.
type SequenceHeader struct {
	Width       int
	Height      int
	PictureRate float64 // pictures per second
	BitRate     int64   // nominal bits per second, 0 if unspecified (VBR)
}

// pictureRateCodes maps the MPEG 4-bit picture_rate field to rates.
var pictureRateCodes = []float64{
	0,          // forbidden
	23.976, 24, // film
	25,        // PAL
	29.97, 30, // NTSC
	50, 59.94, 60,
}

func pictureRateCode(rate float64) (uint32, error) {
	for code, r := range pictureRateCodes {
		if code == 0 {
			continue
		}
		if diff := rate - r; diff < 0.01 && diff > -0.01 {
			return uint32(code), nil
		}
	}
	return 0, fmt.Errorf("mpeg: unsupported picture rate %v", rate)
}

// write emits the sequence header, including its start code.
func (h *SequenceHeader) write(w *bitio.Writer) error {
	if h.Width <= 0 || h.Width >= 1<<12 || h.Height <= 0 || h.Height >= 1<<12 {
		return fmt.Errorf("mpeg: sequence dimensions %dx%d out of range", h.Width, h.Height)
	}
	rc, err := pictureRateCode(h.PictureRate)
	if err != nil {
		return err
	}
	w.WriteStartCode(SequenceHeaderCod)
	w.WriteBits(uint32(h.Width), 12)
	w.WriteBits(uint32(h.Height), 12)
	w.WriteBits(rc, 4)
	// bit_rate in units of 400 bits/s; 0x3FFFF means variable.
	br := uint32(0x3FFFF)
	if h.BitRate > 0 {
		br = uint32((h.BitRate + 399) / 400)
		if br >= 0x3FFFF {
			br = 0x3FFFE
		}
	}
	w.WriteBits(br, 18)
	w.WriteBit(1) // marker bit
	return nil
}

// readSequenceHeader parses the fields following an already-consumed
// sequence header start code.
func readSequenceHeader(r *bitio.Reader) (SequenceHeader, error) {
	var h SequenceHeader
	wv, err := r.ReadBits(12)
	if err != nil {
		return h, err
	}
	hv, err := r.ReadBits(12)
	if err != nil {
		return h, err
	}
	rc, err := r.ReadBits(4)
	if err != nil {
		return h, err
	}
	if rc == 0 || int(rc) >= len(pictureRateCodes) {
		return h, fmt.Errorf("mpeg: invalid picture rate code %d", rc)
	}
	br, err := r.ReadBits(18)
	if err != nil {
		return h, err
	}
	marker, err := r.ReadBit()
	if err != nil {
		return h, err
	}
	if marker != 1 {
		return h, fmt.Errorf("mpeg: sequence header marker bit missing")
	}
	h.Width = int(wv)
	h.Height = int(hv)
	// This codec writes whole-macroblock dimensions; anything else in a
	// parsed header is corruption and must be rejected before a frame is
	// allocated from it.
	if h.Width <= 0 || h.Height <= 0 || h.Width%16 != 0 || h.Height%16 != 0 {
		return h, fmt.Errorf("mpeg: corrupt sequence dimensions %dx%d", h.Width, h.Height)
	}
	h.PictureRate = pictureRateCodes[rc]
	if br != 0x3FFFF {
		h.BitRate = int64(br) * 400
	}
	return h, nil
}

// GroupHeader begins a group of pictures and carries the time code used
// for random access (specified in hours, minutes, seconds, and pictures).
type GroupHeader struct {
	Hours, Minutes, Seconds, Pictures int
	ClosedGOP                         bool
}

// TimeCodeForPicture derives the group time code for a picture at the
// given display index and picture rate.
func TimeCodeForPicture(displayIdx int, pictureRate float64) GroupHeader {
	totalSeconds := float64(displayIdx) / pictureRate
	s := int(totalSeconds)
	return GroupHeader{
		Hours:    s / 3600 % 24,
		Minutes:  s / 60 % 60,
		Seconds:  s % 60,
		Pictures: displayIdx - int(float64(s)*pictureRate+0.5),
	}
}

func (h *GroupHeader) write(w *bitio.Writer) error {
	if h.Hours < 0 || h.Hours > 23 || h.Minutes < 0 || h.Minutes > 59 ||
		h.Seconds < 0 || h.Seconds > 59 || h.Pictures < 0 || h.Pictures > 63 {
		return fmt.Errorf("mpeg: invalid group time code %+v", *h)
	}
	w.WriteStartCode(GroupStartCode)
	w.WriteBits(uint32(h.Hours), 5)
	w.WriteBits(uint32(h.Minutes), 6)
	w.WriteBit(1) // marker
	w.WriteBits(uint32(h.Seconds), 6)
	w.WriteBits(uint32(h.Pictures), 6)
	closed := uint32(0)
	if h.ClosedGOP {
		closed = 1
	}
	w.WriteBit(closed)
	return nil
}

func readGroupHeader(r *bitio.Reader) (GroupHeader, error) {
	var h GroupHeader
	fields := []struct {
		dst  *int
		bits uint
	}{
		{&h.Hours, 5}, {&h.Minutes, 6},
	}
	for _, f := range fields {
		v, err := r.ReadBits(f.bits)
		if err != nil {
			return h, err
		}
		*f.dst = int(v)
	}
	marker, err := r.ReadBit()
	if err != nil {
		return h, err
	}
	if marker != 1 {
		return h, fmt.Errorf("mpeg: group header marker bit missing")
	}
	for _, f := range []struct {
		dst  *int
		bits uint
	}{{&h.Seconds, 6}, {&h.Pictures, 6}} {
		v, err := r.ReadBits(f.bits)
		if err != nil {
			return h, err
		}
		*f.dst = int(v)
	}
	closed, err := r.ReadBit()
	if err != nil {
		return h, err
	}
	h.ClosedGOP = closed == 1
	return h, nil
}

// PictureHeader identifies one coded picture: its display position within
// the sequence (temporal reference, modulo 1024) and its coding type.
type PictureHeader struct {
	TemporalRef int
	Type        PictureType
}

func (h *PictureHeader) write(w *bitio.Writer) error {
	w.WriteStartCode(PictureStartCode)
	w.WriteBits(uint32(h.TemporalRef%1024), 10)
	var tc uint32
	switch h.Type {
	case TypeI:
		tc = 1
	case TypeP:
		tc = 2
	case TypeB:
		tc = 3
	default:
		return fmt.Errorf("mpeg: invalid picture type %v", h.Type)
	}
	w.WriteBits(tc, 3)
	return nil
}

func readPictureHeader(r *bitio.Reader) (PictureHeader, error) {
	var h PictureHeader
	tr, err := r.ReadBits(10)
	if err != nil {
		return h, err
	}
	tc, err := r.ReadBits(3)
	if err != nil {
		return h, err
	}
	h.TemporalRef = int(tr)
	switch tc {
	case 1:
		h.Type = TypeI
	case 2:
		h.Type = TypeP
	case 3:
		h.Type = TypeB
	default:
		return h, fmt.Errorf("mpeg: invalid picture coding type %d", tc)
	}
	return h, nil
}

// SliceHeader begins one slice. In this codec every slice covers exactly
// one macroblock row; the row is identified by the slice start code value
// (row+1), so the header body carries only the quantizer scale.
type SliceHeader struct {
	Row        int   // macroblock row, 0-based
	QuantScale int32 // 1..31
}

func (h *SliceHeader) write(w *bitio.Writer) error {
	if h.Row < 0 || h.Row > int(SliceStartMax-SliceStartMin) {
		return fmt.Errorf("mpeg: slice row %d out of range", h.Row)
	}
	if h.QuantScale < 1 || h.QuantScale > 31 {
		return fmt.Errorf("mpeg: slice quantizer scale %d out of range", h.QuantScale)
	}
	w.WriteStartCode(SliceStartMin + byte(h.Row))
	w.WriteBits(uint32(h.QuantScale), 5)
	return nil
}

// readSliceHeader parses a slice header given its already-consumed start
// code value.
func readSliceHeader(r *bitio.Reader, code byte) (SliceHeader, error) {
	var h SliceHeader
	if !IsSliceStartCode(code) {
		return h, fmt.Errorf("mpeg: %#02x is not a slice start code", code)
	}
	h.Row = int(code - SliceStartMin)
	q, err := r.ReadBits(5)
	if err != nil {
		return h, err
	}
	if q < 1 {
		return h, fmt.Errorf("mpeg: slice quantizer scale 0")
	}
	h.QuantScale = int32(q)
	return h, nil
}
