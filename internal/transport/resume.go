package transport

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"time"

	"mpegsmooth/internal/core"
	"mpegsmooth/internal/mpeg"
)

// Backoff parameterizes the jittered exponential reconnect delay: the
// n-th consecutive failure waits Base·Factor^(n−1), capped at Max, then
// pulled earlier by up to Jitter (a fraction of the delay) so a fleet
// of disconnected senders does not reconnect in lockstep.
type Backoff struct {
	Base   time.Duration // default 50ms
	Max    time.Duration // default 2s
	Factor float64       // default 2
	Jitter float64       // fraction of the delay randomized away, default 0.5
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		b.Jitter = 0.5
	}
	return b
}

// Delay returns the wait before reconnect attempt n (1-based).
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	b = b.withDefaults()
	d := float64(b.Base)
	for i := 1; i < attempt && d < float64(b.Max); i++ {
		d *= b.Factor
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 && rng != nil {
		d *= 1 - b.Jitter*rng.Float64()
	}
	return time.Duration(d)
}

// ResumeEvent reports one reconnect-loop transition to OnEvent hooks
// (CLI logging, test assertions).
type ResumeEvent struct {
	// Attempt is the consecutive-failure count when the event fired.
	Attempt int
	// Class is the fault classification of Err.
	Class FaultClass
	// Err is the failure that triggered the reconnect (nil on Resumed).
	Err error
	// Resumed is set when a StreamResume handshake was accepted;
	// NextIndex is then the server-chosen replay point.
	Resumed   bool
	NextIndex int
	// AlreadyComplete is set when a resume was answered with an
	// AlreadyComplete verdict: the server had accepted the whole stream
	// and only the completion ack was lost. The stream is reported as a
	// success, but callers may want to log the lost-ack recovery.
	AlreadyComplete bool
	// Redirected is set when the handshake was answered with a shard
	// redirect; RedirectAddr is the owning shard the loop dials next.
	Redirected   bool
	RedirectAddr string
}

// StreamResult summarizes a resumable stream session.
type StreamResult struct {
	// Verdict is the admission answer to the initial hello.
	Verdict Verdict
	// Resumes counts accepted StreamResume handshakes.
	Resumes int
	// AlreadyComplete reports that the stream's success was confirmed by
	// an AlreadyComplete resume verdict rather than a completion ack:
	// the server finished the stream, the final ack was lost, and the
	// tombstone's hash verified byte-exact delivery.
	AlreadyComplete bool
	// Redirects counts shard redirects the loop followed before landing
	// on the owning server.
	Redirects int
	// Faults counts classified failures the loop recovered from (or
	// died on), by class.
	Faults map[FaultClass]int
}

// prefixFNV hashes payloads[:n] in order with FNV-1a — the sender-side
// mirror of the server's running accepted-payload hash at watermark n
// in the default integrity mode.
func prefixFNV(payloads [][]byte, n int) uint64 {
	h := fnv.New64a()
	for _, p := range payloads[:n] {
		h.Write(p)
	}
	return h.Sum64()
}

// newNonce draws a crypto-random nonzero hello nonce, falling back to
// the jitter RNG on a broken platform (dedup then only defends against
// accident, not collision-hunting — acceptable for a liveness aid).
func newNonce(rng *rand.Rand) uint64 {
	var buf [8]byte
	for i := 0; i < 4; i++ {
		if _, err := cryptorand.Read(buf[:]); err != nil {
			break
		}
		if n := binary.BigEndian.Uint64(buf[:]); n != 0 {
			return n
		}
	}
	for {
		if n := rng.Uint64(); n != 0 {
			return n
		}
	}
}

// ResumableSender is the sender-side reconnect loop: it dials, performs
// the admission handshake, paces the stream, and — on a classified
// transient fault — redials with jittered exponential backoff and
// resumes from the server-chosen replay point, so a flaky link yields a
// complete stream rather than a dead one.
type ResumableSender struct {
	// Sender paces the pictures; its WriteTimeout also bounds handshake
	// writes.
	Sender Sender
	// Dial opens a connection to the server. Required.
	Dial func(ctx context.Context) (net.Conn, error)
	// DialAddr, when set, opens a connection to a specific address — the
	// redirect-follow path for a sharded fleet. A server that does not
	// own this stream's session key answers the handshake with a
	// Redirect naming the owning shard's address; the loop redials there
	// (and keeps using that address for subsequent reconnects). Without
	// DialAddr, a redirect is a terminal error.
	DialAddr func(ctx context.Context, addr string) (net.Conn, error)
	// Hello is the admission declaration for the initial handshake.
	Hello StreamHello
	// Backoff shapes the reconnect delays (zero value = defaults).
	Backoff Backoff
	// MaxAttempts bounds consecutive failed reconnect attempts before
	// the stream is abandoned (default 8; successes reset the count).
	MaxAttempts int
	// HandshakeTimeout bounds the wait for each verdict (default 10s).
	HandshakeTimeout time.Duration
	// Seed fixes the jitter randomness for deterministic tests; 0 draws
	// from the global source.
	Seed int64
	// Integrity selects the prefix-verification hash the hello
	// negotiates (default IntegrityFNV; overrides Hello.Integrity when
	// set). IntegrityHMAC requires Key.
	Integrity IntegrityMode
	// Key is the shared secret for IntegrityHMAC.
	Key []byte
	// OnEvent, when set, observes every fault and resume.
	OnEvent func(ResumeEvent)
}

// StreamSchedule runs Stream over a schedule's stored decision arrays,
// mirroring Sender.Send.
func (rs *ResumableSender) StreamSchedule(ctx context.Context, sched *core.Schedule, payloads [][]byte) (StreamResult, error) {
	decisions := make([]core.Decision, len(sched.Rates))
	for i := range decisions {
		decisions[i] = core.Decision{Picture: i, Rate: sched.Rates[i], Start: sched.Start[i]}
	}
	return rs.Stream(ctx, decisions, sched.Trace.TypeOf, payloads)
}

// Stream sends the full decision stream, reconnecting and resuming
// through transient faults. It returns once the end marker is written
// (success), the server rejects the stream, a fault is terminal, or
// MaxAttempts consecutive reconnects fail.
func (rs *ResumableSender) Stream(ctx context.Context, decisions []core.Decision, typeOf func(int) mpeg.PictureType, payloads [][]byte) (StreamResult, error) {
	result := StreamResult{Faults: map[FaultClass]int{}}
	if rs.Dial == nil {
		return result, fmt.Errorf("transport: ResumableSender needs a Dial function")
	}
	if len(payloads) != len(decisions) {
		return result, fmt.Errorf("transport: %d payloads for %d pictures", len(payloads), len(decisions))
	}
	maxAttempts := rs.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 8
	}
	hsTimeout := rs.HandshakeTimeout
	if hsTimeout <= 0 {
		hsTimeout = 10 * time.Second
	}
	clock := rs.Sender.Clock
	if clock == nil {
		clock = RealClock{}
	}
	var rng *rand.Rand
	if rs.Seed != 0 {
		rng = rand.New(rand.NewSource(rs.Seed))
	} else {
		rng = rand.New(rand.NewSource(rand.Int63()))
	}
	// One nonce for the stream's whole life: every hello retry repeats
	// it, so a redial after a lost verdict reattaches to the existing
	// reservation instead of double-reserving.
	hello := rs.Hello
	if hello.Nonce == 0 {
		hello.Nonce = newNonce(rng)
	}
	if rs.Integrity != IntegrityFNV {
		hello.Integrity = rs.Integrity
	}
	// Validate the negotiated mode/key pair once; prefix() below then
	// cannot fail.
	if _, err := NewPrefixHash(hello.Integrity, rs.Key); err != nil {
		return result, err
	}
	prefix := func(n int) uint64 {
		sum, _ := PrefixSum(hello.Integrity, rs.Key, payloads, n)
		return sum
	}

	var (
		token     uint64
		next      int
		attempt   int    // consecutive failures
		addr      string // redirect target; empty = rs.Dial
		redirects int    // consecutive redirects without a verdict
		epochSeen uint64 // highest fencing epoch any verdict/redirect carried
	)
	// maxRedirects bounds a redirect chain: a correctly configured fleet
	// redirects at most once (every shard routes a key identically), so
	// a longer chain means the fleet's rings disagree.
	const maxRedirects = 8
	fail := func(err error) (FaultClass, error) {
		class := ClassifyFault(err)
		result.Faults[class]++
		attempt++
		if rs.OnEvent != nil {
			rs.OnEvent(ResumeEvent{Attempt: attempt, Class: class, Err: err})
		}
		if !class.Retryable() {
			return class, fmt.Errorf("transport: terminal stream fault (%s): %w", class, err)
		}
		if attempt >= maxAttempts {
			return class, fmt.Errorf("transport: stream abandoned after %d attempts (last %s): %w", attempt, class, err)
		}
		if serr := clock.Sleep(ctx, rs.Backoff.Delay(attempt, rng)); serr != nil {
			return class, serr
		}
		return class, nil
	}

	for {
		if err := ctx.Err(); err != nil {
			return result, err
		}
		var (
			conn net.Conn
			err  error
		)
		if addr != "" {
			conn, err = rs.DialAddr(ctx, addr)
		} else {
			conn, err = rs.Dial(ctx)
		}
		if err != nil {
			if _, ferr := fail(err); ferr != nil {
				return result, ferr
			}
			continue
		}
		w := NewFrameWriter(conn)
		w.WriteTimeout = rs.Sender.WriteTimeout
		r := NewFrameReader(conn)

		var v Verdict
		if token == 0 {
			err = w.WriteHello(hello)
		} else {
			err = w.WriteResume(StreamResume{Token: token})
		}
		if err == nil {
			var msg any
			msg, err = r.ReadMessageTimeout(hsTimeout)
			if err == nil {
				switch m := msg.(type) {
				case *Verdict:
					v = *m
				case *Redirect:
					// Another shard owns this stream's key. Follow the
					// redirect — outside the failure/backoff accounting,
					// since the fleet is answering correctly — but bound the
					// chain so disagreeing rings cannot bounce us forever.
					conn.Close()
					if m.Epoch > 0 && m.Epoch < epochSeen {
						// A deposed primary's routing opinion is as stale as
						// its verdicts: ignore it and retry.
						if _, ferr := fail(fmt.Errorf("%w: redirect epoch %d below %d", ErrStaleEpoch, m.Epoch, epochSeen)); ferr != nil {
							return result, ferr
						}
						continue
					}
					if m.Epoch > epochSeen {
						epochSeen = m.Epoch
					}
					if rs.DialAddr == nil {
						return result, fmt.Errorf("transport: server redirected stream to %s but no DialAddr is configured", m.Addr)
					}
					result.Redirects++
					redirects++
					if redirects > maxRedirects {
						return result, fmt.Errorf("transport: redirect chain exceeded %d hops (last to %s)", maxRedirects, m.Addr)
					}
					addr = m.Addr
					if rs.OnEvent != nil {
						rs.OnEvent(ResumeEvent{Attempt: attempt, Redirected: true, RedirectAddr: m.Addr})
					}
					continue
				default:
					err = fmt.Errorf("%w: expected verdict, got %T", ErrCorrupt, msg)
				}
			}
		}
		if err != nil {
			conn.Close()
			if _, ferr := fail(err); ferr != nil {
				return result, ferr
			}
			continue
		}
		// Epoch fencing: a verdict stamped below the highest epoch we have
		// seen comes from a deposed primary that does not yet know it was
		// replaced. Acting on it — replaying pictures, accepting a
		// rejection — would trust authority the cluster already revoked,
		// so treat it as a transient fault and retry toward the new
		// primary instead.
		if v.Epoch > 0 && v.Epoch < epochSeen {
			conn.Close()
			if _, ferr := fail(fmt.Errorf("%w: verdict epoch %d below %d", ErrStaleEpoch, v.Epoch, epochSeen)); ferr != nil {
				return result, ferr
			}
			continue
		}
		if v.Epoch > epochSeen {
			epochSeen = v.Epoch
		}
		redirects = 0
		if v.Code == AlreadyComplete {
			// The server finished this stream and tombstoned the token;
			// only the completion ack was lost. Verify the tombstone's
			// final hash against our own bytes before calling it success —
			// a mismatch means both ends "completed" different streams.
			conn.Close()
			if want := prefix(len(payloads)); v.PrefixFNV != want {
				result.Faults[FaultOther]++
				return result, fmt.Errorf("transport: already-complete verdict hash %016x, ours %016x: %w",
					v.PrefixFNV, want, ErrDiverged)
			}
			result.AlreadyComplete = true
			if rs.OnEvent != nil {
				rs.OnEvent(ResumeEvent{Attempt: attempt, Resumed: true,
					NextIndex: len(payloads), AlreadyComplete: true})
			}
			return result, nil
		}
		if !v.IsAdmitted() {
			conn.Close()
			// A busy verdict on a resume — or on a redialed hello whose
			// nonce matched a live stream — means the server has not yet
			// detected our old connection's death and parked the stream:
			// the reconnect raced the fault. A busy fresh hello means the
			// server is at its stream limit or draining. All are
			// transient; back off and retry, bounded by MaxAttempts.
			if v.Code == RejectedBusy {
				if token == 0 {
					result.Verdict = v
				}
				if _, ferr := fail(ErrResumeBusy); ferr != nil {
					return result, ferr
				}
				continue
			}
			// A malformed rejection answers a message the server could not
			// parse. We validated our hello before writing and our token is
			// server-issued, so the likeliest cause is in-flight corruption
			// of the request itself — retryable, bounded by MaxAttempts. (A
			// genuinely unknown token exhausts the attempts and fails.)
			if v.Code == RejectedMalformed {
				if _, ferr := fail(fmt.Errorf("transport: server rejected handshake as malformed (likely corrupted in flight): %w", ErrCorrupt)); ferr != nil {
					return result, ferr
				}
				continue
			}
			if token == 0 {
				result.Verdict = v
			}
			return result, fmt.Errorf("transport: stream %s by server (%.0f bps available)", v.Code, v.Available)
		}
		resumed := token != 0
		if token == 0 {
			result.Verdict = v
			token = v.ResumeToken
		}
		// NextIndex is the server's accept watermark: zero on a fresh
		// admission, the replay point on a resume, and possibly nonzero on
		// a hello verdict too when the nonce reattached us to a session a
		// lost verdict orphaned. Cross-check the server's prefix hash
		// against our own bytes before (re)playing anything.
		next = v.NextIndex
		if next > len(payloads) {
			conn.Close()
			result.Faults[FaultOther]++
			return result, fmt.Errorf("transport: server watermark %d beyond stream length %d: %w",
				next, len(payloads), ErrDiverged)
		}
		if want := prefix(next); v.PrefixFNV != want {
			conn.Close()
			result.Faults[FaultOther]++
			return result, fmt.Errorf("transport: server prefix fnv %016x at picture %d, ours %016x: %w",
				v.PrefixFNV, next, want, ErrDiverged)
		}
		if resumed {
			result.Resumes++
			if rs.OnEvent != nil {
				rs.OnEvent(ResumeEvent{Attempt: attempt, Resumed: true, NextIndex: next})
			}
		}
		attempt = 0

		err = rs.Sender.sendFrom(ctx, w, decisions, typeOf, payloads, next)
		if err == nil {
			// Wait for the completion ack (the server's end marker echo):
			// success means every picture was accepted, not merely that our
			// last write landed in a socket buffer. A missing ack is an
			// ordinary fault — the resume replays nothing and re-acks.
			_, aerr := r.ReadMessageTimeout(hsTimeout)
			if errors.Is(aerr, ErrClosed) {
				conn.Close()
				return result, nil
			}
			if aerr == nil {
				aerr = fmt.Errorf("transport: unexpected frame instead of completion ack")
			}
			err = fmt.Errorf("transport: awaiting completion ack: %w", aerr)
		}
		conn.Close()
		// Without a resume token the server cannot replay-deduplicate;
		// reconnecting would double-deliver, so the fault is terminal.
		if token == 0 {
			class := ClassifyFault(err)
			result.Faults[class]++
			if rs.OnEvent != nil {
				rs.OnEvent(ResumeEvent{Attempt: attempt + 1, Class: class, Err: err})
			}
			return result, fmt.Errorf("transport: stream fault (%s) with no resume token: %w", class, err)
		}
		if _, ferr := fail(err); ferr != nil {
			return result, ferr
		}
	}
}
