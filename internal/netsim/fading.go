package netsim

import (
	"container/heap"
	"fmt"
	"math"

	"mpegsmooth/internal/faultnet"
)

// Block-fading channel simulation: a packet-granularity, fully
// deterministic model of one transmission schedule crossing a channel
// whose state is constant per coherence block (faultnet.FadingOutage
// gives random access to the block sequence, so this simulator and a
// live faultnet injector sharing a seed see the same fades). Packets
// lost to an outage are retransmitted after a fixed RTO until delivered
// or until the picture's playout deadline makes delivery pointless —
// the ARQ-under-deadline discipline the datagram transport runs live.
//
// The model answers provisioning questions: given a schedule, a link
// rate, and a fade regime, which pictures still arrive in time? The
// fading sweep in internal/experiments drives it from both the raw and
// the smoothed schedule to carry the paper's admissible-load story
// onto a lossy channel.

// FadingPicture is one picture's transmission plan and playout
// deadline, all in seconds and bits. The schedule transmits the
// picture's bits at Rate starting at Start; the receiver needs every
// bit by Deadline.
type FadingPicture struct {
	Bits     float64
	Start    float64
	Rate     float64
	Deadline float64
}

// FadingChannelConfig parameterizes one run over the fading channel.
type FadingChannelConfig struct {
	// LinkRate is the serialization capacity in bits/s — transmissions
	// and retransmissions share it in ready order.
	LinkRate float64
	// PacketBits is the datagram size (default 9216: the transport
	// layer's 1152-byte datagram MTU).
	PacketBits float64
	// RTO is the retransmission backoff in seconds (default 10ms).
	RTO float64
	// Seed selects the fading process; Coherence is the block length in
	// seconds; OutageProb the per-block outage probability. A packet
	// transmitted during an outage block is lost.
	Seed       int64
	Coherence  float64
	OutageProb float64
}

// FadingResult summarizes one schedule's run: how many pictures had
// every packet delivered by deadline, and how hard the ARQ worked.
type FadingResult struct {
	Pictures    int
	Survived    int
	Sent        int64 // transmission attempts, retransmits included
	Retransmits int64
	// Finish holds each picture's delivery completion time (the moment
	// its last packet crossed the channel), or -1 for a picture that
	// missed its deadline. A loss-free run's Finish times are the
	// schedule's own delivery baseline on this link — the natural
	// reference point for deadline construction.
	Finish []float64
}

// Survival is the fraction of pictures delivered in full by deadline.
func (r FadingResult) Survival() float64 {
	if r.Pictures == 0 {
		return 1
	}
	return float64(r.Survived) / float64(r.Pictures)
}

// fadingPkt is one packet awaiting (re)transmission. Seq breaks ready
// ties deterministically.
type fadingPkt struct {
	pic   int
	ready float64
	seq   int64
}

type fadingHeap []fadingPkt

func (h fadingHeap) Len() int { return len(h) }
func (h fadingHeap) Less(i, j int) bool {
	if h[i].ready != h[j].ready {
		return h[i].ready < h[j].ready
	}
	return h[i].seq < h[j].seq
}
func (h fadingHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *fadingHeap) Push(x any)   { *h = append(*h, x.(fadingPkt)) }
func (h *fadingHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// RunFading simulates the given per-picture plans through the fading
// channel and reports survival. The simulation is event-exact and
// consumes no RNG: packet fates come only from the (Seed, block) hash,
// so identical configs replay identical outcomes.
func RunFading(cfg FadingChannelConfig, pics []FadingPicture) (FadingResult, error) {
	if cfg.LinkRate <= 0 {
		return FadingResult{}, fmt.Errorf("netsim: fading LinkRate must be positive")
	}
	if cfg.Coherence <= 0 {
		return FadingResult{}, fmt.Errorf("netsim: fading Coherence must be positive")
	}
	if cfg.PacketBits <= 0 {
		cfg.PacketBits = 9216
	}
	if cfg.RTO <= 0 {
		cfg.RTO = 0.01
	}
	pktTime := cfg.PacketBits / cfg.LinkRate

	// Packetize every picture along its scheduled window: packet j of
	// picture i becomes ready PacketBits/Rate after the previous one —
	// the sender paces the wire exactly as the schedule says.
	var q fadingHeap
	var seq int64
	remaining := make([]int, len(pics))
	alive := make([]bool, len(pics))
	for i, p := range pics {
		if p.Bits <= 0 || p.Rate <= 0 {
			return FadingResult{}, fmt.Errorf("netsim: picture %d has non-positive bits or rate", i)
		}
		alive[i] = true
		n := int(math.Ceil(p.Bits / cfg.PacketBits))
		remaining[i] = n
		gap := cfg.PacketBits / p.Rate
		for j := 0; j < n; j++ {
			q = append(q, fadingPkt{pic: i, ready: p.Start + float64(j)*gap, seq: seq})
			seq++
		}
	}
	heap.Init(&q)

	var res FadingResult
	res.Pictures = len(pics)
	res.Finish = make([]float64, len(pics))
	for i := range res.Finish {
		res.Finish[i] = -1
	}
	linkFree := 0.0
	for q.Len() > 0 {
		p := heap.Pop(&q).(fadingPkt)
		if !alive[p.pic] {
			// The picture already missed its deadline: the sender stops
			// burning link time on it.
			continue
		}
		txStart := math.Max(p.ready, linkFree)
		txEnd := txStart + pktTime
		if txEnd > pics[p.pic].Deadline {
			alive[p.pic] = false
			continue
		}
		linkFree = txEnd
		res.Sent++
		block := int64(txStart / cfg.Coherence)
		if faultnet.FadingOutage(cfg.Seed, block, cfg.OutageProb) {
			res.Retransmits++
			heap.Push(&q, fadingPkt{pic: p.pic, ready: txEnd + cfg.RTO, seq: seq})
			seq++
			continue
		}
		if remaining[p.pic]--; remaining[p.pic] == 0 {
			res.Finish[p.pic] = txEnd
		}
	}
	for i := range pics {
		if alive[i] && remaining[i] == 0 {
			res.Survived++
		}
	}
	return res, nil
}
