package server

import (
	"context"
	"fmt"
	"testing"
	"time"

	"mpegsmooth/internal/faultnet"
)

// protocolSeeds are the fixed seeds the exactly-once harness replays
// each scenario under. The seed feeds the client's backoff jitter and
// both fault networks, so every run is a distinct but reproducible
// interleaving. The full suite runs all eight (CI's protocol job);
// -short keeps the first two.
func protocolSeeds(t *testing.T) []int64 {
	t.Helper()
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		return seeds[:2]
	}
	return seeds
}

// protoScenario drops or corrupts exactly one handshake message class
// via targeted OpFaults: client-side writes (hello, resume) through a
// faultnet.Dialer, server-side writes (admission verdict, resume
// verdict, completion ack) through a faultnet.Listener. Connection and
// op indices are deterministic: one client dials sequentially, so
// client conn 1 is the original connection and conn 2 its first redial;
// server conn N is the N-th accept. Write op 1 of a client conn is its
// hello or resume; write op 1 of a server conn is its verdict, and the
// completion ack is write op 2 of the conn that streamed to the end.
type protoScenario struct {
	name      string
	clientOps []faultnet.OpFault
	serverOps []faultnet.OpFault
	// minResumes is the least number of accepted token resumes the
	// client must report.
	minResumes int
	// wantDeduped requires the server to have recognized a hello
	// retransmission by nonce (lost-verdict recovery).
	wantDeduped bool
	// wantAlreadyComplete requires the lost-completion-ack path: the
	// client's success confirmed by a tombstone verdict.
	wantAlreadyComplete bool
}

// midStreamReset forces a resume by resetting the client's first
// connection at its 6th write — safely past the hello (write op 1) and
// well before an 18-picture stream ends.
var midStreamReset = faultnet.OpFault{Conn: 1, Op: 6, Write: true, Action: faultnet.ActReset}

var protoScenarios = []protoScenario{
	// The client's hello vanishes or arrives corrupted: the retry must
	// converge on exactly one admission.
	{name: "drop-hello",
		clientOps: []faultnet.OpFault{{Conn: 1, Op: 1, Write: true, Action: faultnet.ActDrop}}},
	{name: "corrupt-hello",
		clientOps: []faultnet.OpFault{{Conn: 1, Op: 1, Write: true, Action: faultnet.ActCorrupt}}},

	// The admission verdict vanishes or arrives corrupted: the server
	// has reserved, the client doesn't know. The redialed hello must be
	// deduplicated by nonce onto the existing reservation.
	{name: "drop-verdict", wantDeduped: true,
		serverOps: []faultnet.OpFault{{Conn: 1, Op: 1, Write: true, Action: faultnet.ActDrop}}},
	{name: "corrupt-verdict", wantDeduped: true,
		serverOps: []faultnet.OpFault{{Conn: 1, Op: 1, Write: true, Action: faultnet.ActCorrupt}}},

	// A mid-stream reset forces a resume, whose request or verdict is
	// then lost or corrupted; the retry must reattach without replaying
	// divergent bytes.
	{name: "drop-resume", minResumes: 1,
		clientOps: []faultnet.OpFault{midStreamReset, {Conn: 2, Op: 1, Write: true, Action: faultnet.ActDrop}}},
	{name: "corrupt-resume", minResumes: 1,
		clientOps: []faultnet.OpFault{midStreamReset, {Conn: 2, Op: 1, Write: true, Action: faultnet.ActCorrupt}}},
	{name: "drop-resume-verdict", minResumes: 1,
		clientOps: []faultnet.OpFault{midStreamReset},
		serverOps: []faultnet.OpFault{{Conn: 2, Op: 1, Write: true, Action: faultnet.ActDrop}}},
	{name: "corrupt-resume-verdict", minResumes: 1,
		clientOps: []faultnet.OpFault{midStreamReset},
		serverOps: []faultnet.OpFault{{Conn: 2, Op: 1, Write: true, Action: faultnet.ActCorrupt}}},

	// The completion ack vanishes or arrives corrupted: the server
	// finished and tombstoned the stream; the client's resume must get
	// a verifiable AlreadyComplete verdict, not a rejection and not a
	// second session.
	{name: "drop-ack", wantAlreadyComplete: true,
		serverOps: []faultnet.OpFault{{Conn: 1, Op: 2, Write: true, Action: faultnet.ActDrop}}},
	{name: "corrupt-ack", wantAlreadyComplete: true,
		serverOps: []faultnet.OpFault{{Conn: 1, Op: 2, Write: true, Action: faultnet.ActCorrupt}}},
}

// TestProtocolExactlyOnce is the deterministic protocol property
// harness: for every handshake message class (hello, admission verdict,
// resume request, resume verdict, completion ack) and both failure
// modes (dropped, corrupted), across fixed seeds, the session protocol
// must stay exactly-once — the stream completes, the server admits
// exactly one session (no double reservation), the accepted bytes match
// the sender's (no divergence), and the client never sees a terminal
// rejection (no spurious failure).
func TestProtocolExactlyOnce(t *testing.T) {
	for _, sc := range protoScenarios {
		for _, seed := range protocolSeeds(t) {
			t.Run(fmt.Sprintf("%s/seed%d", sc.name, seed), func(t *testing.T) {
				t.Parallel()
				runProtocolScenario(t, sc, seed)
			})
		}
	}
}

func runProtocolScenario(t *testing.T, sc protoScenario, seed int64) {
	kit := makeClient(t, testTrace(t, 18))
	wantFNV := payloadFNV(kit.payloads)

	serverNet := faultnet.New(faultnet.Config{Seed: seed, Ops: sc.serverOps})
	clientNet := faultnet.New(faultnet.Config{Seed: seed + 1000, Ops: sc.clientOps})
	srv, addr := startChaosServer(t, Config{
		LinkRate:     2 * kit.hello.PeakRate,
		ReadTimeout:  time.Second,
		ResumeWindow: 10 * time.Second,
	}, serverNet)

	rs := resumableClient(kit, addr, seed)
	rs.HandshakeTimeout = 400 * time.Millisecond
	rs.Dial = clientNet.Dialer(rs.Dial)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := rs.StreamSchedule(ctx, kit.sched, kit.payloads)
	if err != nil {
		t.Fatalf("client failed (spurious rejection or unrecovered fault): %v", err)
	}
	waitFor(t, "stream drained", func() bool {
		s := srv.Snapshot()
		return s.Streams.Completed == 1 && s.Streams.Active == 0
	})

	snap := srv.Snapshot()
	// Exactly one reservation ever, fully released.
	if snap.Streams.Admitted != 1 {
		t.Errorf("admitted %d sessions, want exactly 1 (double reservation)", snap.Streams.Admitted)
	}
	if snap.Streams.Failed != 0 {
		t.Errorf("%d server-side stream failures", snap.Streams.Failed)
	}
	if snap.ReservedPeak != 0 {
		t.Errorf("%.0f bps still reserved after completion", snap.ReservedPeak)
	}
	// No byte divergence: the one finished stream accepted every
	// picture with the sender's exact bytes.
	fin := srv.FinishedStreams()
	if len(fin) != 1 {
		t.Fatalf("%d finished streams, want 1", len(fin))
	}
	if fin[0].Pictures != kit.tr.Len() {
		t.Errorf("server accepted %d pictures, want %d", fin[0].Pictures, kit.tr.Len())
	}
	if fin[0].PayloadFNV != wantFNV {
		t.Errorf("server payload fnv %016x, want %016x — bytes diverged", fin[0].PayloadFNV, wantFNV)
	}
	// Scenario-specific recovery evidence.
	if res.Resumes < sc.minResumes {
		t.Errorf("client resumed %d times, want at least %d", res.Resumes, sc.minResumes)
	}
	if sc.wantDeduped && snap.Streams.HelloDeduped < 1 {
		t.Errorf("lost verdict not recovered by nonce dedup: hello_deduped = %d", snap.Streams.HelloDeduped)
	}
	if sc.wantAlreadyComplete {
		if !res.AlreadyComplete {
			t.Errorf("client did not report already-complete recovery: %+v", res)
		}
		if snap.Streams.AlreadyComplete < 1 {
			t.Errorf("server answered no resume from a tombstone: already_complete = %d", snap.Streams.AlreadyComplete)
		}
	}
	// The targeted fault actually fired; otherwise the run proved
	// nothing.
	sf, cf := serverNet.Counts(), clientNet.Counts()
	if sf.Dropped+sf.Corrupted+sf.Resets+cf.Dropped+cf.Corrupted+cf.Resets == 0 {
		t.Error("no fault injected; scenario exercised nothing")
	}
}
