package server

import (
	"encoding/json"
	"expvar"
	"math"
	"net/http"
	"sort"
)

// StreamCounts are the admission and lifecycle counters.
type StreamCounts struct {
	Admitted          int64 `json:"admitted"`
	Rejected          int64 `json:"rejected"`
	RejectedCapacity  int64 `json:"rejected_capacity"`
	RejectedMalformed int64 `json:"rejected_malformed"`
	RejectedBusy      int64 `json:"rejected_busy"`
	Active            int64 `json:"active"`
	Completed         int64 `json:"completed"`
	Failed            int64 `json:"failed"`
}

// Snapshot is the full ops view of the server at one instant.
type Snapshot struct {
	// CapacityBPS is the configured shared link capacity; ReservedPeak
	// the sum of admitted streams' declared peaks; AvailablePeak the
	// headroom admission still has to give out.
	CapacityBPS   float64 `json:"capacity_bps"`
	ReservedPeak  float64 `json:"reserved_peak_bps"`
	AvailablePeak float64 `json:"available_peak_bps"`
	// AggregateRate is the sum of active streams' current decided
	// egress rates — by the admission invariant, never above capacity.
	AggregateRate float64 `json:"aggregate_egress_bps"`
	// Utilization is AggregateRate / CapacityBPS.
	Utilization float64 `json:"utilization"`
	// EgressedBits counts bits actually written to the shared link.
	EgressedBits int64        `json:"egressed_bits"`
	Streams      StreamCounts `json:"streams"`
	// DelayViolations counts finished streams whose largest per-picture
	// delay exceeded their bound D — always 0 for K ≥ 1 streams, by
	// Theorem 1. WorstDelayHeadroomS is the smallest D − maxDelay margin
	// any finished stream kept (0 until a stream finishes).
	DelayViolations     int64            `json:"delay_violations"`
	WorstDelayHeadroomS float64          `json:"worst_delay_headroom_s"`
	PerStream           []StreamSnapshot `json:"active_streams"`
}

// Snapshot collects the live counters: admission state, aggregate
// egress, and one StreamSnapshot per active stream.
func (s *Server) Snapshot() Snapshot {
	s.mu.Lock()
	streams := make([]*stream, 0, len(s.streams))
	for _, st := range s.streams {
		streams = append(streams, st)
	}
	snap := Snapshot{
		CapacityBPS:   s.admission.Capacity(),
		ReservedPeak:  s.admission.Reserved(),
		AvailablePeak: s.admission.Available(),
		Streams: StreamCounts{
			Admitted:          s.admission.Admitted(),
			RejectedCapacity:  s.admission.Rejected(),
			RejectedMalformed: s.rejectedMalformed,
			RejectedBusy:      s.rejectedBusy,
			Active:            s.admission.Active(),
			Completed:         s.completed,
			Failed:            s.failed,
		},
		DelayViolations: s.delayViolations,
	}
	if !math.IsInf(s.worstHeadroom, 1) {
		snap.WorstDelayHeadroomS = s.worstHeadroom
	}
	s.mu.Unlock()
	snap.Streams.Rejected = snap.Streams.RejectedCapacity +
		snap.Streams.RejectedMalformed + snap.Streams.RejectedBusy
	snap.EgressedBits = s.egress.totalBits()
	snap.PerStream = make([]StreamSnapshot, 0, len(streams))
	for _, st := range streams {
		ss := st.snapshot()
		snap.AggregateRate += ss.CurrentRate
		snap.PerStream = append(snap.PerStream, ss)
	}
	sort.Slice(snap.PerStream, func(i, j int) bool { return snap.PerStream[i].ID < snap.PerStream[j].ID })
	if snap.CapacityBPS > 0 {
		snap.Utilization = snap.AggregateRate / snap.CapacityBPS
	}
	return snap
}

// OpsHandler serves the operations endpoint:
//
//	GET /healthz     liveness probe
//	GET /stats       full JSON Snapshot
//	GET /debug/vars  expvar (includes the "smoothd" snapshot)
func (s *Server) OpsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}
