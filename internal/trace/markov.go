package trace

import (
	"fmt"
	"math"
	"math/rand"

	"mpegsmooth/internal/mpeg"
)

// MarkovState is one activity state of a Markov-modulated video source:
// the scene-level model used by the VBR multiplexing literature the
// paper builds its motivation on (Reininger et al. model MPEG sources as
// processes whose scene activity switches states).
type MarkovState struct {
	// Name labels the state in diagnostics.
	Name string
	// Complexity scales I picture sizes, Motion scales P/B sizes, as in
	// ScenePhase.
	Complexity, Motion float64
	// MeanDwell is the mean sojourn time in pictures; dwell times are
	// geometric (the discrete analogue of the exponential sojourns in
	// continuous Markov models). Must be >= 1.
	MeanDwell float64
}

// MarkovConfig parameterizes a Markov-modulated trace.
type MarkovConfig struct {
	Name string
	GOP  mpeg.GOP
	// Tau is the picture period (default 1/30 s).
	Tau float64
	// IBase, PBase, BBase are nominal sizes at Complexity = Motion = 1.
	IBase, PBase, BBase float64
	// States is the activity state space (at least one).
	States []MarkovState
	// Transitions[i][j] is the probability of jumping to state j when
	// leaving state i. Must be row-stochastic with zero diagonal (self
	// transitions are expressed by MeanDwell). Nil means uniform over
	// the other states.
	Transitions [][]float64
	// Pictures is the trace length.
	Pictures int
	// Jitter is the relative per-picture noise (default 0.08).
	Jitter float64
	// Seed makes the trace deterministic.
	Seed int64
}

// GenerateMarkov produces a Markov-modulated trace: scene activity
// follows the state chain, and each state change behaves like a scene
// cut (pictures predicting across it inflate toward intra cost).
func GenerateMarkov(cfg MarkovConfig) (*Trace, error) {
	if cfg.Tau == 0 {
		cfg.Tau = 1.0 / 30
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 0.08
	}
	if err := cfg.GOP.Validate(); err != nil {
		return nil, err
	}
	if cfg.IBase <= 0 || cfg.PBase <= 0 || cfg.BBase <= 0 {
		return nil, fmt.Errorf("trace: non-positive base sizes")
	}
	if cfg.Pictures <= 0 {
		return nil, fmt.Errorf("trace: non-positive length %d", cfg.Pictures)
	}
	ns := len(cfg.States)
	if ns == 0 {
		return nil, fmt.Errorf("trace: no Markov states")
	}
	for i, st := range cfg.States {
		if st.MeanDwell < 1 {
			return nil, fmt.Errorf("trace: state %d mean dwell %v < 1", i, st.MeanDwell)
		}
	}
	if cfg.Transitions != nil {
		if len(cfg.Transitions) != ns {
			return nil, fmt.Errorf("trace: %d transition rows for %d states", len(cfg.Transitions), ns)
		}
		for i, row := range cfg.Transitions {
			if len(row) != ns {
				return nil, fmt.Errorf("trace: transition row %d has %d entries", i, len(row))
			}
			sum := 0.0
			for j, p := range row {
				if p < 0 {
					return nil, fmt.Errorf("trace: negative transition probability at (%d,%d)", i, j)
				}
				if i == j && p != 0 {
					return nil, fmt.Errorf("trace: self transition at state %d (use MeanDwell)", i)
				}
				sum += p
			}
			if ns > 1 && math.Abs(sum-1) > 1e-9 {
				return nil, fmt.Errorf("trace: transition row %d sums to %v", i, sum)
			}
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	nextState := func(cur int) int {
		if ns == 1 {
			return cur
		}
		if cfg.Transitions == nil {
			k := rng.Intn(ns - 1)
			if k >= cur {
				k++
			}
			return k
		}
		u := rng.Float64()
		acc := 0.0
		for j, p := range cfg.Transitions[cur] {
			acc += p
			if u < acc {
				return j
			}
		}
		return (cur + 1) % ns
	}

	sizes := make([]int64, 0, cfg.Pictures)
	state := 0
	sinceSwitch := math.MaxInt32 // no cut at the very start
	noise := 0.0
	const rho = 0.85
	for i := 0; i < cfg.Pictures; i++ {
		st := cfg.States[state]
		noise = rho*noise + (1-rho)*(rng.Float64()*2-1)
		mul := 1 + cfg.Jitter*noise*3

		var base float64
		switch cfg.GOP.TypeOf(i) {
		case mpeg.TypeI:
			base = cfg.IBase * st.Complexity
		case mpeg.TypeP:
			base = cfg.PBase * st.Complexity * motionScale(st.Motion)
		case mpeg.TypeB:
			base = cfg.BBase * st.Complexity * motionScale(st.Motion)
		}
		if sinceSwitch < cfg.GOP.M && cfg.GOP.TypeOf(i) != mpeg.TypeI {
			base = math.Max(base, 0.55*cfg.IBase*st.Complexity)
		}
		s := int64(base * mul)
		if s < 1024 {
			s = 1024
		}
		sizes = append(sizes, s)
		sinceSwitch++

		// Geometric dwell: leave with probability 1/MeanDwell.
		if ns > 1 && rng.Float64() < 1/st.MeanDwell {
			state = nextState(state)
			sinceSwitch = 0
		}
	}
	return &Trace{Name: cfg.Name, Tau: cfg.Tau, GOP: cfg.GOP, Sizes: sizes}, nil
}
