package core

import (
	"math"

	"mpegsmooth/internal/mpeg"
)

// engine is the decision kernel shared by every driver (the offline
// Smooth, Session, and the LiveSmoother wrapper): one call of decide
// corresponds to one pass of the outer loop in the paper's Figure 2
// specification. The kernel owns the Theorem 1 bound accumulation
// (Eqs. 12–13); rate selection within (or, for CappedRate, against) the
// accumulated band is delegated to the configured Policy.
type engine struct {
	cfg    Config
	policy Policy
	tau    float64
	gop    mpeg.GOP
	types  []mpeg.PictureType // explicit types for adaptive-pattern traces
}

// newEngine resolves the configured policy once so decide stays
// allocation-free on the hot path.
func newEngine(cfg Config, tau float64, gop mpeg.GOP, types []mpeg.PictureType) *engine {
	return &engine{cfg: cfg, policy: cfg.policy(), tau: tau, gop: gop, types: types}
}

// decide schedules picture j.
//
//	sizes    the prefix of picture sizes the system has learned so far;
//	         must include picture j and every picture visible at t_j,
//	         plus the whole lookahead window the caller admits
//	depart   d_{j-1} (0 for the first picture)
//	held     the rate selected for picture j−1 (the basic policy holds it)
//	end      total sequence length if known, else -1 (live operation):
//	         bounds the lookahead at the end of a finite sequence
func (e *engine) decide(j int, sizes []int64, depart, held float64, end int) Decision {
	cfg := e.cfg
	tau := e.tau
	// Eq. (2): the server may begin sending picture j once the previous
	// picture has departed and pictures j .. j+K−1 have arrived (the
	// K-th arrives by (j+K)τ in 0-based indexing).
	now := math.Max(depart, float64(j+cfg.K)*tau)
	view := View{tau: tau, gop: e.gop, types: e.types, sizes: sizes, now: now}

	// Inner lookahead loop: accumulate the running max of lower bounds
	// (12) and min of upper bounds (13) for h = 0 .. H−1. Estimated and
	// actual contributions are tracked separately so the estimator's
	// window error can be observed per decision.
	var (
		sum      float64
		lower    = 0.0
		upper    = math.Inf(1)
		lowerOld = 0.0
		upperOld = math.Inf(1)
		estSum   float64 // estimated bits for not-yet-arrived pictures
		actSum   float64 // their actual bits (always known to the driver)
	)
	h := 0
	for {
		if end >= 0 && j+h >= end {
			break // finite sequence: nothing to look ahead at
		}
		if actual, ok := view.Size(j + h); ok {
			sum += float64(actual)
		} else {
			est := float64(cfg.Estimator.Estimate(j+h, view))
			sum += est
			estSum += est
			actSum += float64(sizes[j+h])
		}
		lowerOld, upperOld = lower, upper
		l := math.Inf(1)
		if den := cfg.D + float64(j+h)*tau - now; den > 0 {
			l = sum / den
		}
		u := math.Inf(1)
		if ub := float64(cfg.K+j+1+h) * tau; now < ub {
			u = sum / (ub - now)
		}
		lower = math.Max(l, lower)
		upper = math.Min(u, upper)
		h++
		if lower > upper || h >= cfg.H {
			break
		}
	}

	bounds := Bounds{
		Lower: lower, Upper: upper,
		LowerPrev: lowerOld, UpperPrev: upperOld,
		Crossed: lower > upper,
		Sum:     sum,
		Depth:   h,
	}
	rate := e.policy.Select(bounds, State{
		Picture:  j,
		Held:     held,
		Now:      now,
		Tau:      tau,
		PatternN: e.gop.N,
	})
	if math.IsInf(rate, 1) || rate <= 0 {
		// Only reachable in K = 0 runs whose delay bound is already
		// unsatisfiable (the lower-bound denominator went negative).
		// Fall back to draining the picture within one period.
		rate = math.Max(float64(sizes[j])/tau, 1)
	}

	// Eqs. (3)–(4) with the picture's ACTUAL size: the transmitter
	// always sends real bits, whatever the estimator believed.
	actual := float64(sizes[j])
	d := Decision{
		Picture:   j,
		Rate:      rate,
		Start:     now,
		Depart:    now + actual/rate,
		BandLower: lower,
		BandUpper: upper,
		Depth:     h,
	}
	d.Delay = d.Depart - float64(j)*tau
	if actSum > 0 {
		d.EstimatorError = (estSum - actSum) / actSum
	}

	// Theorem 1 (h = 0, actual size) bounds for verification.
	d.Lower = math.Inf(1)
	if den := cfg.D + float64(j)*tau - now; den > 0 {
		d.Lower = actual / den
	}
	d.Upper = math.Inf(1)
	if ub := float64(cfg.K+j+1) * tau; now < ub {
		d.Upper = actual / (ub - now)
	}
	// A policy (or the K = 0 fallback) may force a rate outside the
	// Theorem 1 band; record the transgression rather than correct it.
	d.OutOfBand = rate < d.Lower*(1-1e-12)-1e-9 || rate > d.Upper*(1+1e-12)+1e-9
	return d
}
