package netsim

import (
	"fmt"

	"mpegsmooth/internal/metrics"
)

// CellBits is the payload-bearing size of one fixed-length cell in bits
// (ATM: 53 bytes on the wire).
const CellBits = 424

// MuxStats counts cells through a multiplexer.
type MuxStats struct {
	Arrived int64
	Served  int64
	Lost    int64
	// MaxQueue is the high-water mark of the waiting queue.
	MaxQueue int
}

// LossProbability returns Lost/Arrived (0 when nothing arrived).
func (s MuxStats) LossProbability() float64 {
	if s.Arrived == 0 {
		return 0
	}
	return float64(s.Lost) / float64(s.Arrived)
}

// Mux is a finite-buffer FIFO cell multiplexer: cells from all sources
// share one output link of LinkRate bits/s and a waiting buffer of
// BufferCells cells (excluding the cell in service). A cell arriving to a
// full buffer is lost — the loss the smoothing algorithm exists to
// minimize for a given multiplexing level.
type Mux struct {
	LinkRate    float64
	BufferCells int

	sched   *Scheduler
	queue   int
	serving bool
	stats   MuxStats
}

// NewMux attaches a multiplexer to a scheduler.
func NewMux(sched *Scheduler, linkRate float64, bufferCells int) (*Mux, error) {
	if linkRate <= 0 {
		return nil, fmt.Errorf("netsim: non-positive link rate %v", linkRate)
	}
	if bufferCells < 0 {
		return nil, fmt.Errorf("netsim: negative buffer %d", bufferCells)
	}
	return &Mux{LinkRate: linkRate, BufferCells: bufferCells, sched: sched}, nil
}

// Arrive delivers one cell to the multiplexer at the current simulation
// time.
func (m *Mux) Arrive() {
	m.stats.Arrived++
	if m.serving && m.queue >= m.BufferCells {
		m.stats.Lost++
		return
	}
	if !m.serving {
		m.startService()
		return
	}
	m.queue++
	if m.queue > m.stats.MaxQueue {
		m.stats.MaxQueue = m.queue
	}
}

func (m *Mux) startService() {
	m.serving = true
	m.sched.At(m.sched.Now()+CellBits/m.LinkRate, m.finishService)
}

func (m *Mux) finishService() {
	m.stats.Served++
	if m.queue > 0 {
		m.queue--
		m.startService()
		return
	}
	m.serving = false
}

// Stats returns the current counters.
func (m *Mux) Stats() MuxStats { return m.stats }

// QueueLen returns the number of cells waiting (excluding in service).
func (m *Mux) QueueLen() int { return m.queue }

// Source packetizes a fluid rate function into cells and injects them
// into a multiplexer: while the rate function has value r > 0, cells are
// emitted every CellBits/r seconds. The offset passed at construction
// shifts the whole emission in time, decorrelating the phases of
// otherwise identical sources.
type Source struct {
	// Rate is the (already offset-shifted) emission rate function.
	Rate *metrics.StepFunc

	mux     *Mux
	sched   *Scheduler
	emitted int64
}

// NewSource creates a source and schedules its first cell. The rate
// function is shifted right by offset once at construction so that all
// later time arithmetic happens in absolute simulation time (repeatedly
// subtracting the offset would accumulate float error).
func NewSource(sched *Scheduler, mux *Mux, rate *metrics.StepFunc, offset float64) *Source {
	if offset != 0 {
		rate = rate.Shift(offset)
	}
	s := &Source{Rate: rate, mux: mux, sched: sched}
	s.scheduleNext(rate.Times[0])
	return s
}

// Emitted returns the number of cells this source has injected.
func (s *Source) Emitted() int64 { return s.emitted }

// scheduleNext schedules the next cell at or after time t.
func (s *Source) scheduleNext(t float64) {
	// Find the next instant with positive rate at or after t.
	for {
		if s.Rate.At(t) > 0 {
			s.sched.At(t, s.emit)
			return
		}
		// Jump to the next breakpoint after t, if any.
		next, ok := s.nextBreak(t)
		if !ok {
			return // rate function exhausted: source done
		}
		t = next
	}
}

func (s *Source) emit() {
	now := s.sched.Now()
	r := s.Rate.At(now)
	if r <= 0 {
		s.scheduleNext(now)
		return
	}
	s.mux.Arrive()
	s.emitted++
	s.scheduleNext(now + CellBits/r)
}

// nextBreak returns the first rate-function breakpoint strictly after t.
func (s *Source) nextBreak(t float64) (float64, bool) {
	for _, bt := range s.Rate.Times {
		if bt > t {
			return bt, true
		}
	}
	return 0, false
}
