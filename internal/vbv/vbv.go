// Package vbv analyzes the decoder-side buffer implied by a smoothing
// schedule — the "model decoder" buffer (Video Buffering Verifier) that
// the MPEG standard's rate-control methods protect (Lam/Chow/Yau §3.1:
// the standard's techniques "ensure that the input buffer of the model
// decoder neither overflows nor underflows").
//
// The model: the sender transmits picture bits according to the
// schedule's rate function; the channel is ideal (no loss, no delay); the
// decoder removes picture j's S_j bits instantaneously at time
// startup + jτ, where startup is the decoder's start-up delay. Then
//
//   - no underflow  ⇔  picture j fully received by startup + jτ for all
//     j  ⇔  startup ≥ max_j (d_j − jτ) — precisely the schedule's
//     maximum picture delay, which Theorem 1 bounds by D. The delay
//     bound IS the decoder start-up delay guarantee.
//   - the peak buffer occupancy (with the minimal startup) is the
//     decoder memory the stream demands.
package vbv

import (
	"fmt"
	"sort"

	"mpegsmooth/internal/core"
)

// Analysis reports the decoder buffering a schedule demands.
type Analysis struct {
	// StartupDelay is the minimum start-up delay (seconds) for underflow-
	// free decoding: max_j (d_j − jτ).
	StartupDelay float64
	// PeakBuffer is the maximum decoder buffer occupancy in bits when
	// decoding starts exactly StartupDelay after transmission begins.
	PeakBuffer float64
	// PeakAtPicture is the picture index whose decode instant sees the
	// peak occupancy.
	PeakAtPicture int
}

// cumulativeCurve is the piecewise-linear cumulative bits-received
// function implied by a schedule.
type cumulativeCurve struct {
	t []float64 // vertex times, non-decreasing
	y []float64 // cumulative bits at each vertex
}

// newCurve builds the reception curve: flat before t_0, linear at r_j
// during each picture's transmission, flat across any idle gaps.
func newCurve(s *core.Schedule) cumulativeCurve {
	n := len(s.Rates)
	c := cumulativeCurve{t: make([]float64, 0, 2*n), y: make([]float64, 0, 2*n)}
	cum := 0.0
	push := func(t, y float64) {
		if len(c.t) > 0 && t == c.t[len(c.t)-1] {
			c.y[len(c.y)-1] = y
			return
		}
		c.t = append(c.t, t)
		c.y = append(c.y, y)
	}
	push(s.Start[0], 0)
	for j := 0; j < n; j++ {
		if j > 0 && s.Start[j] > s.Depart[j-1] {
			push(s.Start[j], cum) // idle gap (ideal smoothing can idle)
		}
		cum += float64(s.Trace.Sizes[j])
		push(s.Depart[j], cum)
	}
	return c
}

// at evaluates the curve at time t.
func (c cumulativeCurve) at(t float64) float64 {
	if t <= c.t[0] {
		return c.y[0]
	}
	last := len(c.t) - 1
	if t >= c.t[last] {
		return c.y[last]
	}
	k := sort.SearchFloat64s(c.t, t)
	if c.t[k] == t {
		return c.y[k]
	}
	// Interpolate within segment k-1 .. k.
	t0, t1 := c.t[k-1], c.t[k]
	y0, y1 := c.y[k-1], c.y[k]
	return y0 + (y1-y0)*(t-t0)/(t1-t0)
}

// Analyze computes the minimum start-up delay and the peak decoder
// buffer occupancy for a schedule.
func Analyze(s *core.Schedule) (Analysis, error) {
	if len(s.Rates) == 0 {
		return Analysis{}, fmt.Errorf("vbv: empty schedule")
	}
	tau := s.Trace.Tau
	a := Analysis{}
	for j, d := range s.Depart {
		if need := d - float64(j)*tau; need > a.StartupDelay {
			a.StartupDelay = need
		}
	}
	curve := newCurve(s)
	// Occupancy grows between decode instants, so the peak occurs just
	// before some picture's removal: B(j) = X(startup + jτ) − Σ_{i<j} S_i.
	removed := 0.0
	for j := 0; j < len(s.Rates); j++ {
		occ := curve.at(a.StartupDelay+float64(j)*tau) - removed
		if occ > a.PeakBuffer {
			a.PeakBuffer = occ
			a.PeakAtPicture = j
		}
		removed += float64(s.Trace.Sizes[j])
	}
	return a, nil
}

// Check verifies that decoding with the given start-up delay and buffer
// capacity (bits) neither underflows nor overflows. It returns nil when
// both hold, or an error naming the first failing picture.
func Check(s *core.Schedule, startup, bufferBits float64) error {
	if len(s.Rates) == 0 {
		return fmt.Errorf("vbv: empty schedule")
	}
	tau := s.Trace.Tau
	curve := newCurve(s)
	removed := 0.0
	for j := 0; j < len(s.Rates); j++ {
		decodeAt := startup + float64(j)*tau
		have := curve.at(decodeAt) - removed
		need := float64(s.Trace.Sizes[j])
		if have < need-1e-6 {
			return fmt.Errorf("vbv: underflow at picture %d (have %.0f of %.0f bits at t=%.4f)",
				j, have, need, decodeAt)
		}
		if have > bufferBits+1e-6 {
			return fmt.Errorf("vbv: overflow at picture %d (%.0f bits > capacity %.0f)",
				j, have, bufferBits)
		}
		removed += need
	}
	return nil
}
