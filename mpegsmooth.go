// Package mpegsmooth implements lossless smoothing of MPEG video, a full
// reproduction of Lam, Chow, and Yau, "An Algorithm for Lossless
// Smoothing of MPEG Video", ACM SIGCOMM 1994.
//
// Interframe compression gives MPEG streams picture sizes that differ by
// an order of magnitude (I ≫ P ≫ B). Sending each picture within its own
// display period therefore produces violent rate fluctuations — an
// unsmoothed 200,000-bit I picture at 30 pictures/s demands 6 Mbps for a
// thirtieth of a second. The smoothing algorithm buffers pictures at the
// sender and chooses a per-picture transmission rate r_i so that
//
//   - every picture's buffering delay stays below a bound D,
//   - the server transmits continuously (never idles), and
//   - the rate changes as rarely as the delay bound permits,
//
// knowing the sizes of only the next K ≥ 1 pictures and estimating the
// rest from the repeating I/P/B pattern with a lookahead of H pictures.
//
// # Quick start
//
//	tr, err := mpegsmooth.Driving1(270, 1)            // a calibrated trace
//	sched, err := mpegsmooth.Smooth(tr, mpegsmooth.Config{
//	    K: 1, H: tr.GOP.N, D: 0.2,                    // the paper's choice
//	})
//	m, err := mpegsmooth.Evaluate(sched)              // the four measures
//	fmt.Printf("max rate %.2f Mbps after smoothing\n", m.MaxRate/1e6)
//
// The package also provides ideal smoothing (the offline per-pattern
// reference of the paper's Section 3.2), an offline-optimal baseline with
// all sizes known a priori (Ott et al.), a simplified MPEG-1 codec for
// generating genuinely encoder-shaped workloads, a finite-buffer
// multiplexer simulator for the statistical-multiplexing motivation, and
// a paced transport that carries a smoothed stream over any net.Conn.
package mpegsmooth

import (
	"fmt"
	"io"

	"mpegsmooth/internal/core"
	"mpegsmooth/internal/metrics"
	"mpegsmooth/internal/mpeg"
	"mpegsmooth/internal/trace"
)

// Re-exported core types. The aliases keep the implementation in
// internal/ packages while presenting one import path to users.
type (
	// Trace is a picture-size trace: the S_1, S_2, ... sequence the
	// algorithm smooths, with its GOP pattern and picture period.
	Trace = trace.Trace
	// SynthConfig parameterizes synthetic trace generation.
	SynthConfig = trace.SynthConfig
	// ScenePhase is one scene segment of a synthetic trace.
	ScenePhase = trace.ScenePhase
	// MarkovConfig parameterizes a Markov-modulated source model.
	MarkovConfig = trace.MarkovConfig
	// MarkovState is one activity state of a Markov-modulated source.
	MarkovState = trace.MarkovState
	// TypeStats summarizes picture sizes for one picture type.
	TypeStats = trace.TypeStats

	// GOP is the repeating picture-type pattern (M, N).
	GOP = mpeg.GOP
	// PictureType is I, P, or B.
	PictureType = mpeg.PictureType

	// Config parameterizes the smoothing algorithm (K, D, H, policy,
	// estimator).
	Config = core.Config
	// Schedule is a smoothing run's result: per-picture rates and timing.
	Schedule = core.Schedule
	// Variant selects the basic or moving-average rate-selection rule.
	//
	// Deprecated: set Config.Policy instead; Variant survives as an
	// alias onto the corresponding policy.
	Variant = core.Variant
	// Policy owns rate selection within the Theorem 1 band the decision
	// kernel accumulates; implement it to add a new selection rule.
	Policy = core.Policy
	// Bounds is the accumulated Theorem 1 band handed to Policy.Select.
	Bounds = core.Bounds
	// State is the per-decision context handed to Policy.Select.
	State = core.State
	// BasicPolicy holds the previous rate (fewest rate changes).
	BasicPolicy = core.BasicPolicy
	// MovingAveragePolicy tracks the pattern moving average (Eq. 15).
	MovingAveragePolicy = core.MovingAveragePolicy
	// CappedRate enforces a hard bits/second ceiling, reporting the
	// bound violations the cap makes unavoidable.
	CappedRate = core.CappedRate
	// MinimumVariability centres the rate within the feasible band.
	MinimumVariability = core.MinimumVariability
	// Estimator predicts sizes of pictures that have not arrived.
	Estimator = core.Estimator
	// View is what an estimator may observe at a point in time.
	View = core.View
	// PatternEstimator is the paper's S_{j−N} estimator.
	PatternEstimator = core.PatternEstimator
	// NearestTypeEstimator generalizes S_{j−N} to adaptive patterns.
	NearestTypeEstimator = core.NearestTypeEstimator
	// TypeMeanEstimator predicts the running same-type mean.
	TypeMeanEstimator = core.TypeMeanEstimator
	// EWMAEstimator predicts a same-type exponential moving average.
	EWMAEstimator = core.EWMAEstimator
	// OracleEstimator cheats with the true size (experimental bound).
	OracleEstimator = core.OracleEstimator
	// OfflineSchedule is the offline-optimal (taut string) schedule.
	OfflineSchedule = core.OfflineSchedule
	// Session is the unified incremental driver around the decision
	// kernel: push sizes, collect decisions, observe each one.
	Session = core.Session
	// SessionOption configures a Session at construction.
	SessionOption = core.SessionOption
	// Observer is a per-decision hook on a Session.
	Observer = core.Observer
	// Observation is the measurement handed to an Observer.
	Observation = core.Observation
	// LiveSmoother is the incremental, transport-embeddable smoother, a
	// thin wrapper over Session kept for API stability.
	LiveSmoother = core.LiveSmoother
	// Decision is one live rate decision.
	Decision = core.Decision
	// DecisionStats accumulates Observer output into summary statistics.
	DecisionStats = metrics.DecisionStats

	// Measures bundles the paper's four smoothness measures.
	Measures = metrics.Measures
	// StepFunc is a piecewise-constant rate function of time.
	StepFunc = metrics.StepFunc
	// DelayStats summarizes per-picture delays against a bound.
	DelayStats = metrics.DelayStats
)

// Picture types.
const (
	TypeI = mpeg.TypeI
	TypeP = mpeg.TypeP
	TypeB = mpeg.TypeB
)

// Rate-selection variants (deprecated aliases onto the policies).
const (
	Basic         = core.Basic
	MovingAverage = core.MovingAverage
)

// ParsePolicy parses a command-line policy specification: basic,
// moving-average, capped:<bps>, or min-var.
func ParsePolicy(spec string) (Policy, error) { return core.ParsePolicy(spec) }

// Smooth runs the smoothing algorithm over a trace.
func Smooth(tr *Trace, cfg Config) (*Schedule, error) { return core.Smooth(tr, cfg) }

// SmoothObserved is Smooth with a per-decision Observer hook.
func SmoothObserved(tr *Trace, cfg Config, obs Observer) (*Schedule, error) {
	return core.SmoothObserved(tr, cfg, obs)
}

// SmoothAll smooths independent traces concurrently on a worker pool of
// the given parallelism (<= 0 means GOMAXPROCS), returning one schedule
// per trace in input order. Results are bit-for-bit identical at any
// parallelism.
func SmoothAll(traces []*Trace, cfg Config, parallelism int) ([]*Schedule, error) {
	return core.SmoothAll(traces, cfg, parallelism)
}

// NewDecisionStats returns an empty per-decision statistics collector,
// meant to be fed from a Session Observer.
func NewDecisionStats() *DecisionStats { return metrics.NewDecisionStats() }

// Ideal computes the ideal per-pattern smoothing of Section 3.2.
func Ideal(tr *Trace) (*Schedule, error) { return core.Ideal(tr) }

// PiecewiseCBR generalizes ideal smoothing to an arbitrary averaging
// window (PCRTT-style): window = N is Ideal; larger windows are smoother
// but buffer longer; no per-picture delay bound is enforced.
func PiecewiseCBR(tr *Trace, window int) (*Schedule, error) {
	return core.PiecewiseCBR(tr, window)
}

// OfflineSmooth computes the offline-optimal schedule with all sizes
// known a priori (the Ott et al. setting), as a taut string through the
// arrival/deadline corridor.
func OfflineSmooth(tr *Trace, d float64) (*OfflineSchedule, error) {
	return core.OfflineSmooth(tr, d)
}

// NewSession prepares the unified incremental smoothing driver: sizes
// are pushed as the encoder produces them, decisions emerge as soon as
// they are determined, and an optional WithObserver hook sees each one.
// It computes exactly the schedule Smooth would.
func NewSession(tau float64, gop GOP, cfg Config, opts ...SessionOption) (*Session, error) {
	return core.NewSession(tau, gop, cfg, opts...)
}

// WithObserver installs a per-decision observer hook on a Session.
func WithObserver(o Observer) SessionOption { return core.WithObserver(o) }

// NewLiveSmoother prepares an incremental smoother that consumes picture
// sizes as the encoder produces them and emits rate decisions as soon as
// they are determined. It computes exactly the schedule Smooth would.
func NewLiveSmoother(tau float64, gop GOP, cfg Config) (*LiveSmoother, error) {
	return core.NewLiveSmoother(tau, gop, cfg)
}

// The four MPEG video sequences of the paper's Section 5.1, reconstructed
// as deterministic calibrated generators (see DESIGN.md §2).

// Driving1 is the Driving video coded IBBPBBPBB (N=9, M=3) at 640x480.
func Driving1(pictures int, seed int64) (*Trace, error) { return trace.Driving1(pictures, seed) }

// Driving2 is the Driving video coded IBPBPB (N=6, M=2).
func Driving2(pictures int, seed int64) (*Trace, error) { return trace.Driving2(pictures, seed) }

// Tennis is the Tennis video (N=9, M=3): one scene with ramping motion.
func Tennis(pictures int, seed int64) (*Trace, error) { return trace.Tennis(pictures, seed) }

// Backyard is the Backyard video (N=12, M=3) at 352x288.
func Backyard(pictures int, seed int64) (*Trace, error) { return trace.Backyard(pictures, seed) }

// PaperSequences returns all four sequences in the paper's order.
func PaperSequences(pictures int, seed int64) ([]*Trace, error) {
	return trace.PaperSequences(pictures, seed)
}

// GenerateTrace produces a synthetic trace from a scene script.
func GenerateTrace(cfg SynthConfig) (*Trace, error) { return trace.Generate(cfg) }

// ConcatTraces joins pattern-aligned traces end to end.
func ConcatTraces(name string, traces ...*Trace) (*Trace, error) {
	return trace.Concat(name, traces...)
}

// GenerateMarkovTrace produces a Markov-modulated trace: scene activity
// follows a state chain with geometric dwell times, the source model the
// VBR multiplexing literature uses.
func GenerateMarkovTrace(cfg MarkovConfig) (*Trace, error) {
	return trace.GenerateMarkov(cfg)
}

// ReadTraceCSV parses a trace written by Trace.WriteCSV.
func ReadTraceCSV(r io.Reader) (*Trace, error) { return trace.ReadCSV(r) }

// TraceFromPictureSizes builds a trace from encoder or inspector output.
func TraceFromPictureSizes(name string, tau float64, gop GOP, sizes []int64) (*Trace, error) {
	return trace.FromPictureSizes(name, tau, gop, sizes)
}

// RawRateFunc returns the unsmoothed rate function of a trace: picture j
// transmitted at S_j/τ during its own picture period.
func RawRateFunc(tr *Trace) (*StepFunc, error) {
	times := make([]float64, tr.Len())
	values := make([]float64, tr.Len())
	for j := 0; j < tr.Len(); j++ {
		times[j] = float64(j) * tr.Tau
		values[j] = float64(tr.Sizes[j]) / tr.Tau
	}
	return metrics.NewStepFunc(times, values, tr.Duration())
}

// Evaluate computes the paper's four smoothness measures for a schedule,
// comparing its rate function against ideal smoothing with the (N−K)τ
// alignment of Eq. 16.
func Evaluate(s *Schedule) (Measures, error) {
	ideal, err := core.Ideal(s.Trace)
	if err != nil {
		return Measures{}, err
	}
	rf, err := s.RateFunc()
	if err != nil {
		return Measures{}, err
	}
	idf, err := ideal.RateFunc()
	if err != nil {
		return Measures{}, err
	}
	advance := float64(s.Trace.GOP.N-s.Config.K) * s.Trace.Tau
	return metrics.Compute(rf, idf, advance, s.Trace.Duration()+s.Config.D)
}

// SummarizeDelays computes delay statistics for a schedule against its
// configured bound.
func SummarizeDelays(s *Schedule) DelayStats {
	return metrics.SummarizeDelays(s.Delays, s.Config.D)
}

// Verify runs every Theorem 1 invariant check on a schedule and returns
// an error naming the first violation, or nil. For K ≥ 1 and
// D ≥ (K+1)τ, Theorem 1 guarantees this always returns nil.
func Verify(s *Schedule) error {
	if i := s.CheckDelayBound(); i != -1 {
		return fmt.Errorf("mpegsmooth: delay bound violated at picture %d (%.4fs > %.4fs)", i, s.Delays[i], s.Config.D)
	}
	if i := s.CheckContinuousService(); i != -1 {
		return fmt.Errorf("mpegsmooth: continuous service violated at picture %d", i)
	}
	if i := s.CheckRatesWithinBounds(); i != -1 {
		return fmt.Errorf("mpegsmooth: rate outside Theorem 1 bounds at picture %d", i)
	}
	if i := s.CheckConservation(); i != -1 {
		return fmt.Errorf("mpegsmooth: bit conservation violated at picture %d", i)
	}
	if i := s.CheckCausality(); i != -1 {
		return fmt.Errorf("mpegsmooth: causality violated at picture %d", i)
	}
	return nil
}
