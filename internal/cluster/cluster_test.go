package cluster

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"math/rand"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mpegsmooth/internal/core"
	"mpegsmooth/internal/journal"
	"mpegsmooth/internal/server"
	"mpegsmooth/internal/trace"
	"mpegsmooth/internal/transport"
)

// soakTimeScale compresses schedule time so multi-second schedules
// replay in milliseconds (same convention as the server tests).
const soakTimeScale = 200

func testTrace(t testing.TB, pictures int) *trace.Trace {
	t.Helper()
	tr, err := trace.Driving1(pictures, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// clientKit is everything a test client needs to stream one trace.
type clientKit struct {
	tr       *trace.Trace
	sched    *core.Schedule
	payloads [][]byte
	hello    transport.StreamHello
}

func makeClient(t testing.TB, tr *trace.Trace) *clientKit {
	t.Helper()
	cfg := core.Config{K: 1, H: tr.GOP.N, D: 0.2}
	sched, err := core.Smooth(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	payloads := make([][]byte, tr.Len())
	for i, s := range tr.Sizes {
		payloads[i] = make([]byte, int((s+7)/8))
		rng.Read(payloads[i])
	}
	return &clientKit{
		tr: tr, sched: sched, payloads: payloads,
		hello: transport.StreamHello{
			Tau: tr.Tau, GOP: tr.GOP, K: cfg.K, D: cfg.D,
			Pictures: tr.Len(), PeakRate: sched.PeakRate(),
		},
	}
}

// resumableClient builds the reconnect-and-resume sender every cluster
// test drives: it dials the shard's stream address and follows redirect
// verdicts to other shards.
func resumableClient(kit *clientKit, addr string, seed int64) *transport.ResumableSender {
	dial := func(ctx context.Context, target string) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", target)
	}
	return &transport.ResumableSender{
		Sender:      transport.Sender{TimeScale: soakTimeScale, Chunk: 512, WriteTimeout: 5 * time.Second},
		Dial:        func(ctx context.Context) (net.Conn, error) { return dial(ctx, addr) },
		DialAddr:    dial,
		Hello:       kit.hello,
		Backoff:     transport.Backoff{Base: 10 * time.Millisecond, Max: 200 * time.Millisecond},
		MaxAttempts: 25,
		Seed:        seed,
	}
}

func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// freeAddrs reserves n distinct loopback addresses by binding and
// releasing them; the cluster under test re-binds them by name.
func freeAddrs(t testing.TB, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// startNode builds and starts a node, failing the test on error and
// shutting it down at cleanup (a no-op if the test already stopped it).
func startNode(t testing.TB, cfg Config) *Node {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		n.Shutdown(ctx)
	})
	return n
}

// fastTimings are the tightened failure-detection knobs every test
// uses so failover lands in milliseconds, not seconds.
func fastTimings(cfg *Config) {
	cfg.HeartbeatInterval = 25 * time.Millisecond
	cfg.FailoverTimeout = 500 * time.Millisecond
	cfg.PromoteStagger = 250 * time.Millisecond
	cfg.DialTimeout = 250 * time.Millisecond
}

// TestFollowerWarmStandby pins the replication pipeline end to end: a
// real client streams through the primary, and the follower's standby
// journal converges on the same durable state — admits applied, lag
// back to zero — while the ops surface reports role, lag, and readiness
// correctly on both nodes (the healthz/stats satellite).
func TestFollowerWarmStandby(t *testing.T) {
	kit := makeClient(t, testTrace(t, 54))
	addrs := freeAddrs(t, 2)
	peers := []Peer{{Name: "alpha", StreamAddr: addrs[0], ReplAddr: addrs[1]}}
	scfg := server.Config{LinkRate: 2 * kit.hello.PeakRate, TimeScale: soakTimeScale, ResumeWindow: 10 * time.Second}

	pcfg := Config{Shard: "alpha", Rank: 0, Peers: peers, Server: scfg,
		Journal: journal.Config{Dir: t.TempDir(), FlushInterval: 5 * time.Millisecond}}
	fastTimings(&pcfg)
	primary := startNode(t, pcfg)

	fcfg := Config{Shard: "alpha", Rank: 1, Peers: peers, Server: scfg,
		Journal: journal.Config{Dir: t.TempDir(), FlushInterval: 5 * time.Millisecond}}
	fastTimings(&fcfg)
	follower := startNode(t, fcfg)

	waitFor(t, "follower attached", func() bool {
		return follower.Status().Replication.Connected
	})

	rs := resumableClient(kit, primary.StreamAddr(), 1)
	if _, err := rs.StreamSchedule(context.Background(), kit.sched, kit.payloads); err != nil {
		t.Fatalf("stream through primary: %v", err)
	}

	waitFor(t, "follower caught up", func() bool {
		st := follower.Status().Replication
		return st.AppliedAdmits >= 1 && st.LagRecords == 0 && st.Heartbeats >= 1
	})
	if got := follower.Status(); got.Role != RoleFollower || got.Replication.Resyncs < 1 {
		t.Errorf("follower status %+v: want role follower with at least one resync", got)
	}
	pst := primary.Status()
	if pst.Role != RolePrimary || pst.Replication.Followers != 1 || pst.Replication.PublishedRecords == 0 {
		t.Errorf("primary status %+v: want primary with one follower and a nonzero publish cursor", pst.Replication)
	}

	// Readiness: the primary answers ok/primary, the follower 503 with a
	// machine-readable reason — liveness says ok on both.
	get := func(n *Node, path string) (int, string) {
		rec := httptest.NewRecorder()
		n.OpsHandler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}
	if code, body := get(primary, "/healthz"); code != 200 || !strings.Contains(body, `"role":"primary"`) {
		t.Errorf("primary /healthz = %d %q", code, body)
	}
	if code, body := get(follower, "/healthz"); code != 503 ||
		!strings.Contains(body, `"status":"not-ready"`) || !strings.Contains(body, `"reason":"follower"`) {
		t.Errorf("follower /healthz = %d %q, want 503 not-ready/follower", code, body)
	}
	for _, n := range []*Node{primary, follower} {
		if code, body := get(n, "/livez"); code != 200 || body != "ok\n" {
			t.Errorf("/livez = %d %q", code, body)
		}
	}

	// /stats JSON shape: the follower document must expose the lag
	// gauges and role under "cluster"; the primary embeds the server
	// snapshot alongside.
	var doc map[string]json.RawMessage
	_, body := get(follower, "/stats")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("follower /stats is not JSON: %v", err)
	}
	if _, ok := doc["server"]; ok {
		t.Error("follower /stats embeds a server snapshot; a standby runs no server")
	}
	var cl map[string]json.RawMessage
	if err := json.Unmarshal(doc["cluster"], &cl); err != nil {
		t.Fatalf("follower /stats cluster section: %v", err)
	}
	for _, key := range []string{"shard", "role", "rank", "promotions", "last_promotion", "ring", "replication"} {
		if _, ok := cl[key]; !ok {
			t.Errorf("follower /stats cluster section lacks %q", key)
		}
	}
	var repl map[string]json.RawMessage
	if err := json.Unmarshal(cl["replication"], &repl); err != nil {
		t.Fatalf("follower /stats replication section: %v", err)
	}
	for _, key := range []string{"connected", "applied_records", "applied_admits", "lag_records", "lag_bytes", "lag_segments", "heartbeats", "resyncs",
		"epoch", "replicas_configured", "replicas_connected", "quorum_configured", "quorum_degraded",
		"quorum_commits", "local_commits", "quorum_degraded_events", "ack_timeouts", "dial_retries", "demotions"} {
		if _, ok := repl[key]; !ok {
			t.Errorf("follower /stats replication section lacks %q", key)
		}
	}
	_, body = get(primary, "/stats")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("primary /stats is not JSON: %v", err)
	}
	if _, ok := doc["server"]; !ok {
		t.Error("primary /stats lacks the embedded server snapshot")
	}

	// The expvar mirror publishes the same Status document.
	v := expvar.Get("smoothd_cluster")
	if v == nil {
		t.Fatal("smoothd_cluster expvar not published")
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(v.String()), &ev); err != nil {
		t.Fatalf("smoothd_cluster expvar is not JSON: %v", err)
	}
	if _, ok := ev["replication"]; !ok {
		t.Error("smoothd_cluster expvar lacks the replication section")
	}
}

// TestShardedRedirect pins sharded placement: a fleet of two
// single-node shards, every client dialing shard alpha. Hellos whose
// nonce hashes to beta get a redirect verdict, the sender follows it,
// and every stream completes on its owning shard with no admission on
// the wrong one.
func TestShardedRedirect(t *testing.T) {
	kit := makeClient(t, testTrace(t, 54))
	addrs := freeAddrs(t, 4)
	peers := []Peer{
		{Name: "alpha", StreamAddr: addrs[0], ReplAddr: addrs[1]},
		{Name: "beta", StreamAddr: addrs[2], ReplAddr: addrs[3]},
	}
	const clients = 8
	scfg := server.Config{LinkRate: float64(clients+1) * kit.hello.PeakRate, TimeScale: soakTimeScale}
	nodes := make([]*Node, len(peers))
	for i, p := range peers {
		cfg := Config{Shard: p.Name, Rank: 0, Peers: peers, Server: scfg,
			Journal: journal.Config{Dir: t.TempDir(), FlushInterval: 5 * time.Millisecond}}
		fastTimings(&cfg)
		nodes[i] = startNode(t, cfg)
	}

	// Crypto-random hello nonces made placement probabilistic: about one
	// run in 256 dealt all eight nonces to alpha, no redirect ever
	// happened, and the assertions below flaked. Deal the nonces
	// ourselves — half provably owned by each shard — so placement
	// always engages.
	ring := nodes[0].ring
	nonces := make([]uint64, 0, clients)
	owned := map[string]int{}
	for key := uint64(1); len(nonces) < clients; key++ {
		if owner := ring.Owner(key); owned[owner] < clients/2 {
			owned[owner]++
			nonces = append(nonces, key)
		}
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		redirects int
		failures  []error
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs := resumableClient(kit, nodes[0].StreamAddr(), int64(i)+1)
			rs.Hello.Nonce = nonces[i]
			res, err := rs.StreamSchedule(context.Background(), kit.sched, kit.payloads)
			mu.Lock()
			defer mu.Unlock()
			redirects += res.Redirects
			if err != nil {
				failures = append(failures, fmt.Errorf("client %d: %w", i, err))
			}
		}(i)
	}
	wg.Wait()
	for _, err := range failures {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	if redirects == 0 {
		t.Error("no client was redirected — sharded placement never engaged")
	}
	var admitted, redirected int64
	for i, n := range nodes {
		snap := n.Server().Snapshot()
		admitted += snap.Streams.Admitted
		redirected += snap.Streams.Redirected
		t.Logf("shard %s: %d admitted, %d redirected", peers[i].Name, snap.Streams.Admitted, snap.Streams.Redirected)
	}
	if admitted != clients {
		t.Errorf("admitted %d across the fleet for %d clients", admitted, clients)
	}
	if redirected == 0 {
		t.Error("no server counted a redirect")
	}
	// Determinism: both shards computed the same ring.
	for _, key := range []uint64{1, 2, 3, 1 << 40, 1<<63 - 1} {
		if a, b := ring.Owner(key), nodes[1].ring.Owner(key); a != b {
			t.Fatalf("ring disagreement for key %d: %s vs %s", key, a, b)
		}
	}
}
