package mpeg

import (
	"testing"

	"mpegsmooth/internal/bitio"
)

func TestSequenceHeaderRoundTrip(t *testing.T) {
	cases := []SequenceHeader{
		{Width: 640, Height: 480, PictureRate: 30},
		{Width: 352, Height: 288, PictureRate: 25, BitRate: 1_500_000},
		{Width: 16, Height: 16, PictureRate: 24},
	}
	for _, h := range cases {
		w := bitio.NewWriter()
		if err := h.write(w); err != nil {
			t.Fatalf("%+v: %v", h, err)
		}
		r := bitio.NewReader(w.Bytes())
		code, err := r.ReadStartCode()
		if err != nil || code != SequenceHeaderCod {
			t.Fatalf("start code %#x err %v", code, err)
		}
		got, err := readSequenceHeader(r)
		if err != nil {
			t.Fatal(err)
		}
		if got.Width != h.Width || got.Height != h.Height || got.PictureRate != h.PictureRate {
			t.Fatalf("round trip %+v -> %+v", h, got)
		}
		// Bit rate is quantized to 400 bit/s units.
		if h.BitRate > 0 {
			if d := got.BitRate - h.BitRate; d < 0 || d >= 400 {
				t.Fatalf("bit rate %d -> %d", h.BitRate, got.BitRate)
			}
		} else if got.BitRate != 0 {
			t.Fatalf("VBR marker lost: got %d", got.BitRate)
		}
	}
}

func TestSequenceHeaderRejectsBadRate(t *testing.T) {
	h := SequenceHeader{Width: 64, Height: 64, PictureRate: 17.5}
	w := bitio.NewWriter()
	if err := h.write(w); err == nil {
		t.Fatal("unsupported picture rate should fail")
	}
}

func TestSequenceHeaderRejectsBadDims(t *testing.T) {
	for _, h := range []SequenceHeader{
		{Width: 0, Height: 480, PictureRate: 30},
		{Width: 640, Height: 4096, PictureRate: 30},
	} {
		w := bitio.NewWriter()
		if err := h.write(w); err == nil {
			t.Fatalf("%+v should fail", h)
		}
	}
}

func TestGroupHeaderRoundTrip(t *testing.T) {
	cases := []GroupHeader{
		{0, 0, 0, 0, false},
		{1, 2, 3, 4, true},
		{23, 59, 59, 29, false},
	}
	for _, h := range cases {
		w := bitio.NewWriter()
		if err := h.write(w); err != nil {
			t.Fatalf("%+v: %v", h, err)
		}
		r := bitio.NewReader(w.Bytes())
		if code, err := r.ReadStartCode(); err != nil || code != GroupStartCode {
			t.Fatalf("start code %#x err %v", code, err)
		}
		got, err := readGroupHeader(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != h {
			t.Fatalf("round trip %+v -> %+v", h, got)
		}
	}
}

func TestTimeCodeForPicture(t *testing.T) {
	// Picture 90 at 30 pictures/s is exactly 3 seconds in.
	h := TimeCodeForPicture(90, 30)
	if h.Hours != 0 || h.Minutes != 0 || h.Seconds != 3 || h.Pictures != 0 {
		t.Fatalf("picture 90 @30fps = %+v", h)
	}
	// Picture 3725*30+7 is 1h02m05s + 7 pictures.
	idx := (3600 + 120 + 5) * 30
	h = TimeCodeForPicture(idx+7, 30)
	if h.Hours != 1 || h.Minutes != 2 || h.Seconds != 5 || h.Pictures != 7 {
		t.Fatalf("got %+v", h)
	}
}

func TestPictureHeaderRoundTrip(t *testing.T) {
	for _, h := range []PictureHeader{
		{0, TypeI}, {1, TypeB}, {513, TypeP}, {1023, TypeB},
	} {
		w := bitio.NewWriter()
		if err := h.write(w); err != nil {
			t.Fatal(err)
		}
		r := bitio.NewReader(w.Bytes())
		if code, err := r.ReadStartCode(); err != nil || code != PictureStartCode {
			t.Fatalf("start code %#x err %v", code, err)
		}
		got, err := readPictureHeader(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != h {
			t.Fatalf("round trip %+v -> %+v", h, got)
		}
	}
}

func TestSliceHeaderRoundTrip(t *testing.T) {
	for _, h := range []SliceHeader{
		{0, 1}, {29, 15}, {174, 31},
	} {
		w := bitio.NewWriter()
		if err := h.write(w); err != nil {
			t.Fatalf("%+v: %v", h, err)
		}
		r := bitio.NewReader(w.Bytes())
		code, err := r.ReadStartCode()
		if err != nil || !IsSliceStartCode(code) {
			t.Fatalf("start code %#x err %v", code, err)
		}
		got, err := readSliceHeader(r, code)
		if err != nil {
			t.Fatal(err)
		}
		if got != h {
			t.Fatalf("round trip %+v -> %+v", h, got)
		}
	}
}

func TestSliceHeaderValidation(t *testing.T) {
	w := bitio.NewWriter()
	if err := (&SliceHeader{Row: 200, QuantScale: 5}).write(w); err == nil {
		t.Fatal("row 200 should fail")
	}
	if err := (&SliceHeader{Row: 0, QuantScale: 0}).write(w); err == nil {
		t.Fatal("scale 0 should fail")
	}
	if err := (&SliceHeader{Row: 0, QuantScale: 32}).write(w); err == nil {
		t.Fatal("scale 32 should fail")
	}
	if _, err := readSliceHeader(bitio.NewReader(nil), SequenceHeaderCod); err == nil {
		t.Fatal("non-slice start code should fail")
	}
}

func TestStartCodeClassification(t *testing.T) {
	if IsSliceStartCode(PictureStartCode) {
		t.Error("picture start code is not a slice")
	}
	if !IsSliceStartCode(0x01) || !IsSliceStartCode(0xAF) {
		t.Error("slice range misclassified")
	}
	if IsSliceStartCode(0xB0) {
		t.Error("0xB0 is not a slice start code")
	}
}

func TestResolveTemporalRef(t *testing.T) {
	for _, c := range []struct {
		tr, maxIdx, want int
	}{
		{0, 0, 0},
		{5, 3, 5},
		{1, 1020, 1025},    // wrapped
		{1023, 1025, 1023}, // late B just before the wrap point
		{0, 2047, 2048},
	} {
		if got := resolveTemporalRef(c.tr, c.maxIdx); got != c.want {
			t.Errorf("resolveTemporalRef(%d, %d) = %d, want %d", c.tr, c.maxIdx, got, c.want)
		}
	}
}
