package core

import (
	"bufio"
	"fmt"
	"io"
)

// WriteCSV serializes the schedule as CSV: one row per picture with the
// selected rate, timing, delay, and the Theorem 1 bounds — the format
// cmd/smooth emits for external plotting.
func (s *Schedule) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# name=%s K=%d H=%d D=%.9f variant=%s\n",
		s.Trace.Name, s.Config.K, s.Config.H, s.Config.D, s.Config.Variant); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(bw, "picture,type,bits,rate_bps,start_s,depart_s,delay_s,lower_bound_bps,upper_bound_bps"); err != nil {
		return err
	}
	for j := range s.Rates {
		if _, err := fmt.Fprintf(bw, "%d,%s,%d,%.3f,%.9f,%.9f,%.9f,%.3f,%.3f\n",
			j, s.Trace.TypeOf(j), s.Trace.Sizes[j], s.Rates[j],
			s.Start[j], s.Depart[j], s.Delays[j],
			s.LowerBound[j], s.UpperBound[j]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
