# Lossless smoothing of MPEG video — build and reproduction targets.

GO ?= go

.PHONY: all build test test-race vet bench chaos protocol results examples clean

all: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The batch runner (SmoothAll) shards streams across a worker pool;
# the race detector guards the sharding and the shared Config values.
test-race:
	$(GO) test -race ./...

# The chaos suite: fault-injected soaks (corruption, resets, stalls)
# under the race detector — resumable streams must complete byte-exact.
chaos:
	$(GO) test -race -v -run 'Chaos|Resum|Stall|Fault|Malformed|Partition' ./internal/server/ ./internal/transport/ ./internal/faultnet/

# The exactly-once protocol property harness: every handshake message
# class dropped and corrupted, on both sides of the wire, across 8
# fixed seeds — no double reservation, no byte divergence, no spurious
# rejection.
protocol:
	$(GO) test -race -v -run TestProtocolExactlyOnce ./internal/server/

# Regenerate every figure of the paper's evaluation (plus extensions)
# into results/ as CSV, with console summaries.
results:
	$(GO) run ./cmd/experiments -fig all -out results

# Time the regeneration of every figure and the core primitives,
# without re-running the unit tests.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/livepipe
	$(GO) run ./examples/livesmoother
	$(GO) run ./examples/multiplex
	$(GO) run ./examples/encodepipeline

clean:
	rm -f test_output.txt bench_output.txt
