# Lossless smoothing of MPEG video — build and reproduction targets.

GO ?= go

.PHONY: all build test test-race vet bench muxbench ingestbench chaos datagram dgfuzz fadingsweep crash cluster replfuzz journal protocol results examples clean

all: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The batch runner (SmoothAll) shards streams across a worker pool;
# the race detector guards the sharding and the shared Config values.
test-race:
	$(GO) test -race ./...

# The chaos suite: fault-injected soaks (corruption, resets, stalls)
# under the race detector — resumable streams must complete byte-exact.
chaos:
	$(GO) test -race -v -run 'Chaos|Resum|Stall|Fault|Malformed|Partition' ./internal/server/ ./internal/transport/ ./internal/faultnet/

# The datagram acceptance soak: resumable streams over the selective-
# repeat ARQ transport, with packet drops, Gilbert–Elliott burst
# outages, duplication, and reordering injected in BOTH directions
# across fixed seeds — byte-exact completion, exactly-once admission,
# zero leaked reservations, race-mode.
datagram:
	$(GO) test -race -v -run 'TestDatagramChaosSoak' -count=1 ./internal/server/

# The datagram frame fuzzer: arbitrary bytes against the packet codec
# (decode must never panic, accepted packets re-encode byte-identically)
# and as hostile delivery scripts against a receiving ARQ flow (the
# stream layer must only ever see an in-order prefix).
dgfuzz:
	$(GO) test -run '^$$' -fuzz FuzzDatagramFrame -fuzztime 10s ./internal/transport/

# Regenerate the fading-channel sweep: admissible load for raw vs
# smoothed schedules under block fading with deadline-bound ARQ.
fadingsweep:
	$(GO) run ./cmd/experiments -fig fading -out results

# The kill-and-restart chaos harness: the server is killed mid-stream
# (journal abandoned, connections dropped) and restarted from the
# journal on the same address, repeatedly, across fixed seeds. Byte-
# exact delivery, exactly one admission per client across generations,
# zero leaked reservations.
crash:
	$(GO) test -race -v -run 'TestCrash' -count=1 ./internal/server/

# The multi-node failover harness: WAL replication to a warm-standby
# follower, promotion after the primary process is killed AND its
# journal dir deleted, sharded redirect placement, and the quorum-2
# chaos schedules (kill-primary with no catch-up gate, kill-follower,
# partition-then-heal with epoch fencing) — all race-mode — plus the
# OS-process failover and quorum smokes driving the real binary.
cluster:
	$(GO) test -race -v -run 'TestFailover|TestFollower|TestSharded|TestRing|TestQuorum|TestTwoFollower' -count=1 ./internal/cluster/
	$(GO) test -v -run 'TestClusterFailoverSmoke|TestClusterQuorumSmoke' -count=1 ./cmd/smoothd/

# The replication-frame parser fuzzer: arbitrary bytes against the MSRP
# framing (truncations, CRC flips, oversized payloads) must never
# panic or over-read.
replfuzz:
	$(GO) test -run '^$$' -fuzz FuzzReplFrame -fuzztime 10s ./internal/cluster/

# The journal's own suite: CRC-framed WAL round-trips, torn-write and
# fsync-error fault injection, deterministic tail truncation, replay
# idempotence, segment rotation/compaction — plus a fuzz smoke over
# the replay path.
journal:
	$(GO) test -race -v -count=1 ./internal/journal/
	$(GO) test -run '^$$' -fuzz FuzzJournalReplay -fuzztime 10s ./internal/journal/

# The exactly-once protocol property harness: every handshake message
# class dropped and corrupted, on both sides of the wire — single
# faults, curated compound schedules, and seeded random compound
# schedules — across 8 fixed seeds. No double reservation, no byte
# divergence, no spurious rejection.
protocol:
	$(GO) test -race -v -run 'TestProtocolExactlyOnce|TestProtocolRandomizedCompound' ./internal/server/

# Regenerate every figure of the paper's evaluation (plus extensions)
# into results/ as CSV, with console summaries.
results:
	$(GO) run ./cmd/experiments -fig all -out results

# Time the regeneration of every figure and the core primitives,
# without re-running the unit tests.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# The event-engine scale benchmark: the seed heap scheduler vs the
# timing-wheel engine (per-cell and fluid) on the 1000-source
# multiplexing workload, recorded to BENCH_netsim.json. MUXBENCH_FLAGS
# can pass -short for the CI-sized workload.
muxbench:
	$(GO) test $(MUXBENCH_FLAGS) -run TestMuxBenchArtifact -count=1 \
		./internal/netsim/ -muxbench-out $(CURDIR)/BENCH_netsim.json
	@cat BENCH_netsim.json

# The ingest hot-path benchmark: journal-backed server ingest (the
# group-commit before/after) plus the cluster local and quorum-2
# variants, recorded to BENCH_ingest.json against the committed
# pre-group-commit baseline in BENCH_ingest.baseline.json.
ingestbench:
	$(GO) test $(INGESTBENCH_FLAGS) -run TestIngestBenchArtifact -count=1 -v \
		./internal/cluster/ -ingestbench-out $(CURDIR)/BENCH_ingest.json
	@cat BENCH_ingest.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/livepipe
	$(GO) run ./examples/livesmoother
	$(GO) run ./examples/multiplex
	$(GO) run ./examples/encodepipeline

clean:
	rm -f test_output.txt bench_output.txt
