package server

import (
	"testing"
	"time"
)

// TestTombstoneLedgerFloodBounded pins the completion-tombstone ledger:
// a flood of completions grows each shard's adaptive cap with the
// observed completion rate while no shard ever exceeds its cap, and a
// tombstone a late sender keeps probing — the last-touch property —
// survives the entire flood instead of being race-evicted by strangers.
func TestTombstoneLedgerFloodBounded(t *testing.T) {
	srv, err := New(Config{LinkRate: 1e9, ResumeWindow: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ttl := srv.tombstoneTTL()
	entomb := func(token, fnv uint64, pictures int) {
		srv.tombstones.put(token, tombstone{
			fnv: fnv, pictures: pictures, expires: time.Now().Add(ttl),
		}, ttl)
	}
	shardsBounded := func() (int, int, bool) {
		for i := range srv.tombstones.shards {
			sh := &srv.tombstones.shards[i]
			if size, cap := sh.m.Len(), sh.m.Cap(); size > cap {
				return size, cap, false
			}
		}
		return 0, 0, true
	}

	const protected = uint64(0xFEEDFACE)
	entomb(protected, 0xABC, 10)

	const flood = 100_000
	for i := 0; i < flood; i++ {
		entomb(uint64(0x100000+i), uint64(i), i)
		if size, cap, ok := shardsBounded(); !ok {
			t.Fatalf("after %d completions: a shard's %d entries exceed its cap %d", i+1, size, cap)
		}
		if i%1024 == 0 {
			if _, ok := srv.tombstones.lookup(protected); !ok {
				t.Fatalf("probed tombstone evicted after %d completions (ledger %d)",
					i+1, srv.tombstones.len())
			}
		}
	}
	aggregateCap := 0
	for i := range srv.tombstones.shards {
		aggregateCap += srv.tombstones.shards[i].m.Cap()
	}
	if aggregateCap <= tombstoneKeep {
		t.Errorf("aggregate cap did not adapt above its %d floor under a completion flood: %d",
			tombstoneKeep, aggregateCap)
	}
	if tomb, ok := srv.tombstones.lookup(protected); !ok || tomb.fnv != 0xABC || tomb.pictures != 10 {
		t.Errorf("probed tombstone lost or mangled by the end of the flood: %+v ok=%v", tomb, ok)
	}

	// An expired tombstone is lazily dropped at lookup, not answered.
	srv.tombstones.put(0xDEAD, tombstone{fnv: 1, pictures: 1, expires: time.Now().Add(-time.Second)}, ttl)
	if _, ok := srv.tombstones.lookup(0xDEAD); ok {
		t.Error("expired tombstone answered a resume")
	}
	sh := &srv.tombstones.shards[ledgerShard(0xDEAD)]
	if _, ok := sh.m.Peek(0xDEAD); ok {
		t.Error("expired tombstone not dropped on lookup")
	}
}
