// Package experiments reproduces every figure of the paper's evaluation
// (Section 5, Figures 3–8) plus the extension experiments listed in
// DESIGN.md, as pure functions returning data series. cmd/experiments
// renders them to CSV and console tables; bench_test.go times them.
//
// All experiments run at 30 pictures/s (τ = 1/30 s), as in the paper.
package experiments

import (
	"fmt"

	"mpegsmooth/internal/core"
	"mpegsmooth/internal/metrics"
	"mpegsmooth/internal/trace"
)

// DefaultPictures is the trace length used when regenerating figures:
// 270 pictures = 9 seconds, comparable to the paper's sequences
// (their time axes run to about 10 seconds).
const DefaultPictures = 270

// DefaultSeed keeps every regenerated figure deterministic.
const DefaultSeed = 1994

// Sequences returns the four experimental MPEG sequences.
func Sequences(pictures int, seed int64) ([]*trace.Trace, error) {
	return trace.PaperSequences(pictures, seed)
}

// SweepOption adjusts how a parameter sweep runs: the rate-selection
// policy under test and the batch parallelism.
type SweepOption func(*sweepConfig)

type sweepConfig struct {
	policy      core.Policy
	parallelism int
}

// WithPolicy runs a sweep under a rate-selection policy other than the
// default BasicPolicy.
func WithPolicy(p core.Policy) SweepOption {
	return func(c *sweepConfig) { c.policy = p }
}

// WithParallelism sets the SmoothAll worker count for a sweep
// (<= 0 means GOMAXPROCS). The results are identical at any setting.
func WithParallelism(n int) SweepOption {
	return func(c *sweepConfig) { c.parallelism = n }
}

func applySweepOptions(opts []SweepOption) sweepConfig {
	var c sweepConfig
	for _, o := range opts {
		o(&c)
	}
	return c
}

// MeasuresFor runs the algorithm with cfg and evaluates the paper's four
// measures against ideal smoothing (Eq. 16 alignment).
func MeasuresFor(tr *trace.Trace, cfg core.Config) (metrics.Measures, *core.Schedule, error) {
	s, err := core.Smooth(tr, cfg)
	if err != nil {
		return metrics.Measures{}, nil, err
	}
	m, err := evaluateSchedule(tr, cfg, s)
	if err != nil {
		return metrics.Measures{}, nil, err
	}
	return m, s, nil
}

// evaluateSchedule computes the four measures for an already-smoothed
// schedule — the per-schedule tail of MeasuresFor, shared with the
// batched sweeps.
func evaluateSchedule(tr *trace.Trace, cfg core.Config, s *core.Schedule) (metrics.Measures, error) {
	ideal, err := core.Ideal(tr)
	if err != nil {
		return metrics.Measures{}, err
	}
	rf, err := s.RateFunc()
	if err != nil {
		return metrics.Measures{}, err
	}
	idf, err := ideal.RateFunc()
	if err != nil {
		return metrics.Measures{}, err
	}
	advance := float64(tr.GOP.N-cfg.K) * tr.Tau
	return metrics.Compute(rf, idf, advance, tr.Duration()+cfg.D)
}

// batchMeasures smooths every trace under one configuration on the
// SmoothAll worker pool and evaluates the four measures per trace.
func batchMeasures(traces []*trace.Trace, cfg core.Config, parallelism int) ([]metrics.Measures, error) {
	scheds, err := core.SmoothAll(traces, cfg, parallelism)
	if err != nil {
		return nil, err
	}
	out := make([]metrics.Measures, len(traces))
	for i, tr := range traces {
		m, err := evaluateSchedule(tr, cfg, scheds[i])
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

// Figure3 regenerates the trace-characteristics figure: picture size vs
// picture number for Driving1 and Tennis.
func Figure3(pictures int, seed int64) ([]*trace.Trace, error) {
	d1, err := trace.Driving1(pictures, seed)
	if err != nil {
		return nil, err
	}
	tn, err := trace.Tennis(pictures, seed)
	if err != nil {
		return nil, err
	}
	return []*trace.Trace{d1, tn}, nil
}

// Fig4Series is one panel of Figure 4: the smoothed rate function r(t)
// for one delay bound, with the ideal reference R(t).
type Fig4Series struct {
	D        float64
	Rate     *metrics.StepFunc
	Ideal    *metrics.StepFunc
	Measures metrics.Measures
}

// Figure4 regenerates rate-vs-time for Driving1 with K=1, H=9 across
// four delay bounds (the paper names 0.1, 0.2, and 0.3 s; the fourth
// panel's caption is garbled in the source, so 0.15 s completes the
// sweep bracketing them).
func Figure4(pictures int, seed int64) ([]Fig4Series, error) {
	tr, err := trace.Driving1(pictures, seed)
	if err != nil {
		return nil, err
	}
	ideal, err := core.Ideal(tr)
	if err != nil {
		return nil, err
	}
	idf, err := ideal.RateFunc()
	if err != nil {
		return nil, err
	}
	var out []Fig4Series
	for _, d := range []float64{0.1, 0.15, 0.2, 0.3} {
		cfg := core.Config{K: 1, H: 9, D: d}
		m, s, err := MeasuresFor(tr, cfg)
		if err != nil {
			return nil, err
		}
		rf, err := s.RateFunc()
		if err != nil {
			return nil, err
		}
		out = append(out, Fig4Series{D: d, Rate: rf, Ideal: idf, Measures: m})
	}
	return out, nil
}

// Fig5Result holds the per-picture delay comparisons of Figure 5.
type Fig5Result struct {
	// Left graph: basic algorithm at two delay bounds vs ideal.
	DelaysD01   []float64 // D = 0.1, K = 1, H = 9
	DelaysD03   []float64 // D = 0.3, K = 1, H = 9
	DelaysIdeal []float64
	// Right graph: K = 1 vs K = 9 at D = 0.1333 + (K+1)/30, H = 9.
	DelaysK1 []float64
	DelaysK9 []float64
}

// Figure5 regenerates the delay comparisons for Driving1.
func Figure5(pictures int, seed int64) (*Fig5Result, error) {
	tr, err := trace.Driving1(pictures, seed)
	if err != nil {
		return nil, err
	}
	out := &Fig5Result{}
	for _, c := range []struct {
		dst *[]float64
		cfg core.Config
	}{
		{&out.DelaysD01, core.Config{K: 1, H: 9, D: 0.1}},
		{&out.DelaysD03, core.Config{K: 1, H: 9, D: 0.3}},
		{&out.DelaysK1, core.Config{K: 1, H: 9, D: 0.1333 + 2.0/30}},
		{&out.DelaysK9, core.Config{K: 9, H: 9, D: 0.1333 + 10.0/30}},
	} {
		s, err := core.Smooth(tr, c.cfg)
		if err != nil {
			return nil, err
		}
		*c.dst = s.Delays
	}
	ideal, err := core.Ideal(tr)
	if err != nil {
		return nil, err
	}
	out.DelaysIdeal = ideal.Delays
	return out, nil
}

// SweepRow is one point of a Figure 6/7/8 parameter sweep.
type SweepRow struct {
	Sequence string
	X        float64 // the swept parameter value (D seconds, H or K pictures)
	Measures metrics.Measures
}

// Figure6 sweeps the delay bound D with K=1, H=N for all four sequences.
// Each D value is one SmoothAll batch: the four sequences smooth in
// parallel under the shared configuration (H=0 resolves to each trace's
// pattern length).
func Figure6(pictures int, seed int64, opts ...SweepOption) ([]SweepRow, error) {
	sc := applySweepOptions(opts)
	seqs, err := Sequences(pictures, seed)
	if err != nil {
		return nil, err
	}
	// D from just above (K+1)τ = 2/30 up to 0.3 s, as in the figure.
	ds := []float64{0.0667, 0.1, 0.1333, 0.1667, 0.2, 0.2333, 0.2667, 0.3}
	bySeq := make([][]SweepRow, len(seqs))
	for _, d := range ds {
		ms, err := batchMeasures(seqs, core.Config{K: 1, H: 0, D: d, Policy: sc.policy}, sc.parallelism)
		if err != nil {
			return nil, fmt.Errorf("D=%v: %w", d, err)
		}
		for i, tr := range seqs {
			bySeq[i] = append(bySeq[i], SweepRow{Sequence: tr.Name, X: d, Measures: ms[i]})
		}
	}
	return flattenRows(bySeq), nil
}

// Figure7 sweeps the lookahead H with D=0.2, K=1 for all four sequences.
// Each H value batches the sequences whose sweep range (1..2N) reaches
// it through SmoothAll.
func Figure7(pictures int, seed int64, opts ...SweepOption) ([]SweepRow, error) {
	sc := applySweepOptions(opts)
	seqs, err := Sequences(pictures, seed)
	if err != nil {
		return nil, err
	}
	maxH := 0
	for _, tr := range seqs {
		if 2*tr.GOP.N > maxH {
			maxH = 2 * tr.GOP.N
		}
	}
	bySeq := make([][]SweepRow, len(seqs))
	for h := 1; h <= maxH; h++ {
		var batch []*trace.Trace
		var idx []int
		for i, tr := range seqs {
			if h <= 2*tr.GOP.N {
				batch = append(batch, tr)
				idx = append(idx, i)
			}
		}
		ms, err := batchMeasures(batch, core.Config{K: 1, H: h, D: 0.2, Policy: sc.policy}, sc.parallelism)
		if err != nil {
			return nil, fmt.Errorf("H=%d: %w", h, err)
		}
		for b, i := range idx {
			bySeq[i] = append(bySeq[i], SweepRow{Sequence: seqs[i].Name, X: float64(h), Measures: ms[b]})
		}
	}
	return flattenRows(bySeq), nil
}

// Figure8 sweeps K with D = 0.1333 + (K+1)/30 (constant slack 0.1333 s)
// and H = N for all four sequences, one SmoothAll batch per K.
func Figure8(pictures int, seed int64, opts ...SweepOption) ([]SweepRow, error) {
	sc := applySweepOptions(opts)
	seqs, err := Sequences(pictures, seed)
	if err != nil {
		return nil, err
	}
	bySeq := make([][]SweepRow, len(seqs))
	for k := 1; k <= 12; k++ {
		d := 0.1333 + float64(k+1)/30
		ms, err := batchMeasures(seqs, core.Config{K: k, H: 0, D: d, Policy: sc.policy}, sc.parallelism)
		if err != nil {
			return nil, fmt.Errorf("K=%d: %w", k, err)
		}
		for i, tr := range seqs {
			bySeq[i] = append(bySeq[i], SweepRow{Sequence: tr.Name, X: float64(k), Measures: ms[i]})
		}
	}
	return flattenRows(bySeq), nil
}

// flattenRows serializes per-sequence row groups into the sequence-major
// order the CSV outputs have always used.
func flattenRows(bySeq [][]SweepRow) []SweepRow {
	var rows []SweepRow
	for _, g := range bySeq {
		rows = append(rows, g...)
	}
	return rows
}
