package trace

import (
	"math"
	"testing"
)

func TestOnOffParetoDeterministic(t *testing.T) {
	cfg := OnOffParetoConfig{PeakRate: 1e6, MeanOn: 0.4, MeanOff: 0.6, Duration: 20, Seed: 9}
	a, err := OnOffPareto(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OnOffPareto(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Times) != len(b.Times) {
		t.Fatalf("same seed, %d vs %d segments", len(a.Times), len(b.Times))
	}
	for i := range a.Times {
		if a.Times[i] != b.Times[i] || a.Values[i] != b.Values[i] {
			t.Fatalf("same seed diverges at segment %d", i)
		}
	}
	c, err := OnOffPareto(OnOffParetoConfig{PeakRate: 1e6, MeanOn: 0.4, MeanOff: 0.6, Duration: 20, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Times) == len(c.Times)
	if same {
		for i := range a.Times {
			if a.Times[i] != c.Times[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical sources")
	}
}

func TestOnOffParetoShape(t *testing.T) {
	f, err := OnOffPareto(OnOffParetoConfig{PeakRate: 2e6, MeanOn: 0.3, MeanOff: 0.7, Duration: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Well-formed step function: strictly increasing times, values only
	// ever 0 or the peak.
	for i := range f.Times {
		if i > 0 && f.Times[i] <= f.Times[i-1] {
			t.Fatalf("times not increasing at %d: %v then %v", i, f.Times[i-1], f.Times[i])
		}
		if v := f.Values[i]; v != 0 && v != 2e6 {
			t.Fatalf("segment %d has value %v, want 0 or peak", i, v)
		}
	}
	if f.End != 200 {
		t.Fatalf("End = %v", f.End)
	}
	// Long-run mean rate ≈ peak · MeanOn/(MeanOn+MeanOff) = 0.3·peak.
	var onTime float64
	for i := range f.Times {
		end := f.End
		if i+1 < len(f.Times) {
			end = f.Times[i+1]
		}
		if f.Values[i] > 0 {
			onTime += end - f.Times[i]
		}
	}
	duty := onTime / f.End
	if math.Abs(duty-0.3) > 0.12 {
		t.Fatalf("duty cycle %.3f, want about 0.3", duty)
	}
}

func TestOnOffParetoValidation(t *testing.T) {
	base := OnOffParetoConfig{PeakRate: 1e6, MeanOn: 0.3, MeanOff: 0.7, Duration: 10}
	bad := []OnOffParetoConfig{
		func() OnOffParetoConfig { c := base; c.PeakRate = 0; return c }(),
		func() OnOffParetoConfig { c := base; c.MeanOn = 0; return c }(),
		func() OnOffParetoConfig { c := base; c.MeanOff = -1; return c }(),
		func() OnOffParetoConfig { c := base; c.Duration = 0; return c }(),
		func() OnOffParetoConfig { c := base; c.Alpha = 1; return c }(),
		func() OnOffParetoConfig { c := base; c.TruncateAt = 0.5; return c }(),
	}
	for i, c := range bad {
		if _, err := OnOffPareto(c); err == nil {
			t.Errorf("config %d should fail: %+v", i, c)
		}
	}
}

func TestOnOffParetoHeavyTail(t *testing.T) {
	// With α = 1.2 the sojourn distribution is heavier-tailed than with
	// α = 1.9: the longest ON period over a long horizon should dominate.
	longest := func(alpha float64) float64 {
		f, err := OnOffPareto(OnOffParetoConfig{
			PeakRate: 1e6, MeanOn: 0.3, MeanOff: 0.7, Alpha: alpha,
			Duration: 500, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		var max float64
		for i := range f.Times {
			end := f.End
			if i+1 < len(f.Times) {
				end = f.Times[i+1]
			}
			if f.Values[i] > 0 && end-f.Times[i] > max {
				max = end - f.Times[i]
			}
		}
		return max
	}
	heavy, light := longest(1.2), longest(1.9)
	if heavy <= light {
		t.Fatalf("heavier tail (α=1.2) longest burst %v not above α=1.9's %v", heavy, light)
	}
}
