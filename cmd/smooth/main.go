// Command smooth runs the lossless smoothing algorithm over a trace and
// reports the schedule and the paper's four smoothness measures.
//
// Usage:
//
//	smooth -in driving1.csv -K 1 -H 9 -D 0.2
//	smooth -seq driving1 -D 0.2 -schedule     # built-in trace, full table
//	smooth -seq tennis -policy moving-average -D 0.2
//	smooth -seq driving1 -policy capped:2.5e6 # hard 2.5 Mbps ceiling
//	smooth -seq backyard -policy min-var      # centre in the feasible band
//
// The -policy flag selects the rate-selection policy: basic (hold the
// previous rate; fewest changes), moving-average (track Eq. 15),
// capped:<bps> (basic under a hard bits/s ceiling; unavoidable
// delay-bound violations are reported, never silently exceeded), or
// min-var (centre within the feasible band). The older -variant flag
// survives as a deprecated alias for basic/moving.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpegsmooth"
)

func main() {
	var (
		in       = flag.String("in", "", "trace CSV file (from tracegen); mutually exclusive with -seq")
		seq      = flag.String("seq", "", "built-in sequence: driving1, driving2, tennis, backyard")
		pictures = flag.Int("pictures", 270, "pictures for built-in sequences")
		seed     = flag.Int64("seed", 1, "seed for built-in sequences")
		k        = flag.Int("K", 1, "pictures with known sizes before sending (Theorem 1 needs K >= 1)")
		h        = flag.Int("H", 0, "lookahead interval in pictures (0 = pattern length N)")
		d        = flag.Float64("D", 0.2, "delay bound in seconds")
		policy   = flag.String("policy", "", "rate selection: basic | moving-average | capped:<bps> | min-var")
		variant  = flag.String("variant", "basic", "deprecated alias of -policy: basic or moving")
		schedule = flag.Bool("schedule", false, "print the full per-picture schedule")
		compare  = flag.Bool("compare", false, "also run ideal smoothing and the offline optimum")
		out      = flag.String("o", "", "write the schedule as CSV to this file")
	)
	flag.Parse()
	if err := run(*in, *seq, *pictures, *seed, *k, *h, *d, *variant, *policy, *schedule, *compare, *out); err != nil {
		fmt.Fprintf(os.Stderr, "smooth: %v\n", err)
		os.Exit(1)
	}
}

func run(in, seq string, pictures int, seed int64, k, h int, d float64, variant, policy string, schedule, compare bool, out string) error {
	tr, err := loadTrace(in, seq, pictures, seed)
	if err != nil {
		return err
	}
	if h == 0 {
		h = tr.GOP.N
	}
	cfg := mpegsmooth.Config{K: k, H: h, D: d}
	if policy == "" {
		// Deprecated -variant alias.
		switch strings.ToLower(variant) {
		case "basic":
			policy = "basic"
		case "moving", "moving-average":
			policy = "moving-average"
		default:
			return fmt.Errorf("unknown variant %q", variant)
		}
	}
	p, err := mpegsmooth.ParsePolicy(policy)
	if err != nil {
		return err
	}
	cfg.Policy = p

	stats := mpegsmooth.NewDecisionStats()
	s, err := mpegsmooth.SmoothObserved(tr, cfg, func(o mpegsmooth.Observation) {
		stats.Add(o.LowerSlack, o.UpperSlack, o.Depth, o.EstimatorError)
	})
	if err != nil {
		return err
	}
	violations := s.PolicyViolations()
	if err := mpegsmooth.Verify(s); err != nil && k >= 1 {
		if len(violations) == 0 {
			return fmt.Errorf("invariant check failed: %w", err)
		}
		// The policy knowingly traded bound violations for its own
		// constraint (a binding rate cap); report rather than fail.
		fmt.Printf("note: %v\n", err)
	}
	m, err := mpegsmooth.Evaluate(s)
	if err != nil {
		return err
	}
	ds := mpegsmooth.SummarizeDelays(s)

	fmt.Printf("trace %s: %d pictures, pattern %s, mean %.3f Mbps, unsmoothed peak %.3f Mbps\n",
		tr.Name, tr.Len(), tr.GOP.Pattern(), tr.MeanRate()/1e6, tr.PeakPictureRate()/1e6)
	fmt.Printf("algorithm: K=%d H=%d D=%.4fs policy=%s\n", k, h, d, p.Name())
	fmt.Printf("  area difference   %.4f\n", m.AreaDiff)
	fmt.Printf("  rate changes      %d\n", m.RateChanges)
	fmt.Printf("  max rate          %.3f Mbps\n", m.MaxRate/1e6)
	fmt.Printf("  S.D. of rate      %.3f Mbps\n", m.StdDev/1e6)
	fmt.Printf("  max delay         %.4f s (bound %.4f, %d violations)\n", ds.Max, d, ds.Violations)
	fmt.Printf("decisions: %d (mean lookahead %.2f, min slack %.0f bps, estimator error mean %.4f rms %.4f)\n",
		stats.Decisions, stats.MeanDepth(), stats.MinSlack(), stats.MeanAbsEstimatorError(), stats.RMSEstimatorError())
	if len(violations) > 0 {
		fmt.Printf("policy violations: %d pictures outside the Theorem 1 band (first at %d)\n",
			len(violations), violations[0])
	}

	if compare {
		ideal, err := mpegsmooth.Ideal(tr)
		if err != nil {
			return err
		}
		ids := mpegsmooth.SummarizeDelays(ideal)
		fmt.Printf("ideal smoothing: max delay %.4f s mean delay %.4f s\n", ids.Max, ids.Mean)
		off, err := mpegsmooth.OfflineSmooth(tr, d)
		if err != nil {
			return err
		}
		fmt.Printf("offline optimum (Ott et al., sizes known a priori): peak %.3f Mbps, %d rate changes\n",
			off.PeakRate()/1e6, off.RateChanges())
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := s.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("schedule written to %s\n", out)
	}

	if schedule {
		fmt.Println("\npicture  type      bits      rate(bps)     start        depart       delay")
		for j := 0; j < tr.Len(); j++ {
			fmt.Printf("%7d   %s  %9d  %12.0f  %10.5f  %10.5f  %9.5f\n",
				j, tr.TypeOf(j), tr.Sizes[j], s.Rates[j], s.Start[j], s.Depart[j], s.Delays[j])
		}
	}
	return nil
}

func loadTrace(in, seq string, pictures int, seed int64) (*mpegsmooth.Trace, error) {
	if in != "" && seq != "" {
		return nil, fmt.Errorf("-in and -seq are mutually exclusive")
	}
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return mpegsmooth.ReadTraceCSV(f)
	}
	gens := map[string]func(int, int64) (*mpegsmooth.Trace, error){
		"driving1": mpegsmooth.Driving1,
		"driving2": mpegsmooth.Driving2,
		"tennis":   mpegsmooth.Tennis,
		"backyard": mpegsmooth.Backyard,
	}
	gen, ok := gens[strings.ToLower(seq)]
	if !ok {
		return nil, fmt.Errorf("need -in FILE or -seq NAME (driving1, driving2, tennis, backyard)")
	}
	return gen(pictures, seed)
}
