# Lossless smoothing of MPEG video — build and reproduction targets.

GO ?= go

.PHONY: all build test vet bench results examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Regenerate every figure of the paper's evaluation (plus extensions)
# into results/ as CSV, with console summaries.
results:
	$(GO) run ./cmd/experiments -fig all -out results

# Time the regeneration of every figure and the core primitives.
bench:
	$(GO) test -bench=. -benchmem ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/livepipe
	$(GO) run ./examples/livesmoother
	$(GO) run ./examples/multiplex
	$(GO) run ./examples/encodepipeline

clean:
	rm -f test_output.txt bench_output.txt
