package metrics

import (
	"fmt"
	"math"
)

// RateChangeTolerance is the relative tolerance under which two
// consecutive rates count as "unchanged" when counting rate changes.
// The basic algorithm holds the previous rate bit-exactly on normal exit,
// so any tiny tolerance works; this guards against float noise.
const RateChangeTolerance = 1e-9

// Measures bundles the four quantitative smoothness measures of Section
// 5.2, evaluated for a smoothed rate function r(t) against the ideal rate
// function R(t).
type Measures struct {
	// AreaDiff is Eq. 16: ∫[r(t) − R(t + (N−K)τ)]⁺ dt normalized by
	// ∫R(t + (N−K)τ) dt, over the duration of the video sequence.
	AreaDiff float64
	// RateChanges is the number of times r(t) changes over [0, T].
	RateChanges int
	// MaxRate is the maximum of r(t) in bits/second.
	MaxRate float64
	// StdDev is the time-weighted standard deviation of r(t).
	StdDev float64
}

// Compute evaluates the four measures. r is the algorithm's rate
// function, ideal is R(t) from ideal smoothing, and advance is the
// (N−K)τ term of Eq. 16: the comparison uses R(t + advance), i.e. the
// ideal curve moved earlier by advance, because with ideal smoothing
// picture 1 begins transmission (N−K)τ seconds later than under the
// basic algorithm. duration T is the integration span [0, T].
func Compute(r, ideal *StepFunc, advance, duration float64) (Measures, error) {
	if duration <= 0 {
		return Measures{}, fmt.Errorf("metrics: non-positive duration %v", duration)
	}
	shifted := ideal.Shift(-advance)
	num, err := PositiveAreaDiff(r, shifted, 0, duration)
	if err != nil {
		return Measures{}, err
	}
	den, err := IntegralOver(shifted, 0, duration)
	if err != nil {
		return Measures{}, err
	}
	m := Measures{
		RateChanges: r.Changes(RateChangeTolerance),
		MaxRate:     r.Max(),
		StdDev:      r.Std(),
	}
	if den > 0 {
		m.AreaDiff = num / den
	} else {
		m.AreaDiff = math.NaN()
	}
	return m, nil
}

// DelayStats summarizes per-picture delays.
type DelayStats struct {
	Max, Mean float64
	// Violations counts pictures whose delay exceeds the bound.
	Violations int
}

// SummarizeDelays computes delay statistics against a bound D.
func SummarizeDelays(delays []float64, bound float64) DelayStats {
	var s DelayStats
	if len(delays) == 0 {
		return s
	}
	var sum float64
	for _, d := range delays {
		if d > s.Max {
			s.Max = d
		}
		sum += d
		if d > bound+1e-9 {
			s.Violations++
		}
	}
	s.Mean = sum / float64(len(delays))
	return s
}
