package cluster

// The ingest hot-path benchmark artifact (make ingestbench): the
// journal-backed server ingest workload and the cluster local/quorum-2
// variants, measured against the committed pre-group-commit baseline
// in BENCH_ingest.baseline.json and written to BENCH_ingest.json.
//
// The server workload here reproduces the server package's
// BenchmarkServerIngestJournal exactly (same trace, same 8-way client
// burst, same drain barrier) so its numbers are comparable with the
// baseline recorded by that benchmark before the group-commit work.

import (
	"context"
	"encoding/json"
	"flag"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"mpegsmooth/internal/journal"
	"mpegsmooth/internal/server"
	"mpegsmooth/internal/transport"
)

var ingestbenchOut = flag.String("ingestbench-out", "", "write the ingest benchmark artifact (JSON) to this file")

// ingestSection is one benchmark's numbers, in the artifact and in the
// committed baseline.
type ingestSection struct {
	NsPerOp     int64   `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations,omitempty"`
}

func toIngestSection(r testing.BenchmarkResult) ingestSection {
	mbs := 0.0
	if secs := r.T.Seconds(); secs > 0 {
		mbs = float64(r.Bytes) * float64(r.N) / secs / 1e6
	}
	return ingestSection{
		NsPerOp:     r.NsPerOp(),
		MBPerSec:    mbs,
		AllocsPerOp: r.AllocsPerOp(),
		Iterations:  r.N,
	}
}

// ingestBaseline is the BENCH_ingest.baseline.json schema.
type ingestBaseline struct {
	Note                string        `json:"note"`
	ServerIngestJournal ingestSection `json:"server_ingest_journal"`
	ClusterLocal        ingestSection `json:"cluster_local"`
	ClusterQuorum2      ingestSection `json:"cluster_quorum2"`
}

// ingestArtifact is the BENCH_ingest.json schema: the committed
// baseline (before) alongside the current tree (after).
type ingestArtifact struct {
	Baseline            ingestBaseline `json:"baseline"`
	ServerIngestJournal ingestSection  `json:"server_ingest_journal"`
	ClusterLocal        ingestSection  `json:"cluster_local"`
	ClusterQuorum2      ingestSection  `json:"cluster_quorum2"`
	// SpeedupServerIngest is baseline ns/op over measured ns/op for the
	// journal-backed server ingest workload — the group-commit win.
	SpeedupServerIngest float64 `json:"speedup_server_ingest"`
}

// benchServerIngestJournal is the server package's
// BenchmarkServerIngestJournal workload, reproduced here so one
// artifact can hold it next to the cluster variants: 8 concurrent
// streams per iteration through admission + smoothing + shared egress,
// resume tokens on so every admission and completion is journaled,
// client pacing collapsed, iteration barrier on full drain.
func benchServerIngestJournal(b *testing.B) {
	const streams = 8
	kit := makeClient(b, testTrace(b, 54))
	var streamBytes int64
	for _, p := range kit.payloads {
		streamBytes += int64(len(p))
	}
	j, err := journal.Open(journal.Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(server.Config{
		LinkRate:     float64(streams) * kit.hello.PeakRate,
		TimeScale:    1e6,
		Journal:      j,
		ResumeWindow: 10 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil {
			b.Errorf("Serve: %v", err)
		}
	})
	addr := ln.Addr().String()

	// One client pass: dial, hello, stream the paced schedule, wait for
	// the completion ack (same shape as the server tests' kit.stream).
	streamOnce := func() error {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return err
		}
		defer conn.Close()
		fw := transport.NewFrameWriter(conn)
		if err := fw.WriteHello(kit.hello); err != nil {
			return err
		}
		fr := transport.NewFrameReader(conn)
		v, err := fr.ReadVerdict()
		if err != nil {
			return err
		}
		if !v.IsAdmitted() {
			b.Errorf("rejected: %+v", v)
			return nil
		}
		sender := &transport.Sender{TimeScale: 1e6, Chunk: 64 << 10}
		if err := sender.Send(context.Background(), fw, kit.sched, kit.payloads); err != nil {
			return err
		}
		fr.ReadMessageTimeout(10 * time.Second)
		return nil
	}

	b.SetBytes(streams * streamBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for c := 0; c < streams; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := streamOnce(); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
		want := int64(i+1) * streams
		waitFor(b, "iteration drain", func() bool {
			s := srv.Snapshot()
			return s.Streams.Completed == want && s.Streams.Active == 0
		})
	}
	b.StopTimer()
}

// TestIngestBenchArtifact measures the ingest hot path (server-journal,
// cluster-local, cluster-quorum2), writes BENCH_ingest.json next to the
// committed baseline's numbers, and guards against regression: slower
// than the pre-group-commit baseline is a failure; missing the 2x
// speedup mark is a loud warning (machines differ; the committed
// baseline was recorded on one specific box).
func TestIngestBenchArtifact(t *testing.T) {
	if *ingestbenchOut == "" {
		t.Skip("artifact generator; run via make ingestbench (-ingestbench-out)")
	}
	raw, err := os.ReadFile("../../BENCH_ingest.baseline.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var art ingestArtifact
	if err := json.Unmarshal(raw, &art.Baseline); err != nil {
		t.Fatalf("parsing committed baseline: %v", err)
	}

	art.ServerIngestJournal = toIngestSection(testing.Benchmark(benchServerIngestJournal))
	art.ClusterLocal = toIngestSection(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		benchClusterIngest(b, 0)
	}))
	art.ClusterQuorum2 = toIngestSection(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		benchClusterIngest(b, 2)
	}))
	art.SpeedupServerIngest = float64(art.Baseline.ServerIngestJournal.NsPerOp) /
		float64(art.ServerIngestJournal.NsPerOp)

	t.Logf("server ingest+journal: %d ns/op, %.2f MB/s, %d allocs/op (baseline %d ns/op, %.2fx)",
		art.ServerIngestJournal.NsPerOp, art.ServerIngestJournal.MBPerSec,
		art.ServerIngestJournal.AllocsPerOp,
		art.Baseline.ServerIngestJournal.NsPerOp, art.SpeedupServerIngest)
	t.Logf("cluster local:   %d ns/op, %.2f MB/s, %d allocs/op (baseline %d ns/op)",
		art.ClusterLocal.NsPerOp, art.ClusterLocal.MBPerSec,
		art.ClusterLocal.AllocsPerOp, art.Baseline.ClusterLocal.NsPerOp)
	t.Logf("cluster quorum2: %d ns/op, %.2f MB/s, %d allocs/op (baseline %d ns/op)",
		art.ClusterQuorum2.NsPerOp, art.ClusterQuorum2.MBPerSec,
		art.ClusterQuorum2.AllocsPerOp, art.Baseline.ClusterQuorum2.NsPerOp)

	// Hard floor: the group-commit tree must never be slower than the
	// one-fsync-per-record tree it replaced.
	if art.ServerIngestJournal.NsPerOp > art.Baseline.ServerIngestJournal.NsPerOp {
		t.Errorf("server ingest regressed past the pre-group-commit baseline: %d ns/op > %d ns/op",
			art.ServerIngestJournal.NsPerOp, art.Baseline.ServerIngestJournal.NsPerOp)
	}
	// Soft guard: the PR's acceptance mark. Warn rather than fail — the
	// baseline is machine-specific and CI boxes vary.
	if art.SpeedupServerIngest < 2.0 {
		t.Logf("WARNING: server ingest speedup %.2fx below the 2x mark recorded at baseline time",
			art.SpeedupServerIngest)
	}

	data, err := json.MarshalIndent(&art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*ingestbenchOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
