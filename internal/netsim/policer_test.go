package netsim

import (
	"testing"

	"mpegsmooth/internal/core"
	"mpegsmooth/internal/trace"
)

func TestPolicerValidation(t *testing.T) {
	if _, err := NewPolicer(0); err == nil {
		t.Error("zero burst should fail")
	}
	p, err := NewPolicer(1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetRate(0, -1); err == nil {
		t.Error("negative rate should fail")
	}
	if err := p.SetRate(1, 1e6); err != nil {
		t.Fatal(err)
	}
	if err := p.SetRate(0.5, 1e6); err == nil {
		t.Error("time running backwards should fail")
	}
	if _, err := p.Offer(1, 0); err == nil {
		t.Error("zero offer should fail")
	}
}

func TestPolicerConformingStream(t *testing.T) {
	p, err := NewPolicer(2 * CellBits)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetRate(0, 1e6); err != nil {
		t.Fatal(err)
	}
	// Cells spaced exactly at the declared rate conform forever.
	gap := CellBits / 1e6
	for i := 0; i < 1000; i++ {
		ok, err := p.Offer(float64(i)*gap, CellBits)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("conforming cell %d dropped", i)
		}
	}
	if p.Dropped() != 0 || p.Conforming() != 1000 {
		t.Fatalf("counters %d/%d", p.Conforming(), p.Dropped())
	}
}

func TestPolicerCatchesCheating(t *testing.T) {
	p, err := NewPolicer(2 * CellBits)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetRate(0, 1e6); err != nil {
		t.Fatal(err)
	}
	// Send at double the declared rate: about half must be dropped once
	// the initial bucket drains.
	gap := CellBits / 2e6
	for i := 0; i < 1000; i++ {
		if _, err := p.Offer(float64(i)*gap, CellBits); err != nil {
			t.Fatal(err)
		}
	}
	drop := float64(p.Dropped()) / 1000
	if drop < 0.4 || drop > 0.6 {
		t.Fatalf("drop fraction %.3f, want about 0.5", drop)
	}
}

// TestSmoothedScheduleConformsToDeclaredRates is the admission-control
// story: a sender pacing at the schedule's rates, declaring each change
// via notify(i, rate), passes a tight token-bucket policer.
func TestSmoothedScheduleConformsToDeclaredRates(t *testing.T) {
	tr, err := trace.Driving1(135, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Smooth(tr, core.Config{K: 1, H: 9, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPolicer(4 * CellBits) // a few cells of tolerance
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < tr.Len(); j++ {
		if err := p.SetRate(s.Start[j], s.Rates[j]); err != nil {
			t.Fatal(err)
		}
		// Emit picture j's bits as cells paced exactly at r_j.
		bits := float64(tr.Sizes[j])
		tcur := s.Start[j]
		for bits > 0 {
			cell := float64(CellBits)
			if bits < cell {
				cell = bits
			}
			ok, err := p.Offer(tcur, cell)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("picture %d: conforming cell dropped at t=%.4f", j, tcur)
			}
			bits -= cell
			tcur += cell / s.Rates[j]
		}
	}
	if p.Dropped() != 0 {
		t.Fatalf("%d drops for a conforming schedule", p.Dropped())
	}
}

// TestRawStreamViolatesSmoothedDeclaration: sending each picture within
// its own period while declaring only the smoothed rates is caught.
func TestRawStreamViolatesSmoothedDeclaration(t *testing.T) {
	tr, err := trace.Driving1(135, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Smooth(tr, core.Config{K: 1, H: 9, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPolicer(4 * CellBits)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < tr.Len(); j++ {
		if err := p.SetRate(float64(j)*tr.Tau, s.Rates[j]); err != nil {
			t.Fatal(err)
		}
		// Cheat: burst the whole picture at S_j/τ inside its period.
		instRate := float64(tr.Sizes[j]) / tr.Tau
		bits := float64(tr.Sizes[j])
		tcur := float64(j) * tr.Tau
		for bits > 0 {
			cell := float64(CellBits)
			if bits < cell {
				cell = bits
			}
			if _, err := p.Offer(tcur, cell); err != nil {
				t.Fatal(err)
			}
			bits -= cell
			tcur += cell / instRate
		}
	}
	if p.Dropped() == 0 {
		t.Fatal("policer missed a raw burst against smoothed declarations")
	}
}
