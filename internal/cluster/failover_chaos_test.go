package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"mpegsmooth/internal/journal"
	"mpegsmooth/internal/server"
	"mpegsmooth/internal/transport"
)

// crashTimeScale stretches the schedule (relative to the other soaks)
// so the kill lands mid-stream rather than after the fact.
const crashTimeScale = 25

// failoverPair starts a primary/follower pair for one shard on fixed
// addresses and waits until the follower is attached and caught up
// enough to be a real warm standby.
type failoverPair struct {
	primary, follower *Node
	primaryDir        string
	followerDir       string
}

func startFailoverPair(t testing.TB, scfg server.Config) *failoverPair {
	t.Helper()
	addrs := freeAddrs(t, 2)
	peers := []Peer{{Name: "alpha", StreamAddr: addrs[0], ReplAddr: addrs[1]}}
	p := &failoverPair{primaryDir: t.TempDir(), followerDir: t.TempDir()}
	pcfg := Config{Shard: "alpha", Rank: 0, Peers: peers, Server: scfg,
		Journal: journal.Config{Dir: p.primaryDir, FlushInterval: 5 * time.Millisecond}}
	fastTimings(&pcfg)
	p.primary = startNode(t, pcfg)
	fcfg := Config{Shard: "alpha", Rank: 1, Peers: peers, Server: scfg,
		Journal: journal.Config{Dir: p.followerDir, FlushInterval: 5 * time.Millisecond}}
	fastTimings(&fcfg)
	p.follower = startNode(t, fcfg)
	waitFor(t, "follower attached", func() bool {
		return p.follower.Status().Replication.Connected
	})
	return p
}

// killPrimary is the whole-process crash the failover exists for: the
// primary dies SIGKILL-style (journal abandoned, connections dropped,
// nothing drained) AND its journal directory is destroyed — recovery
// must come entirely from the follower's replica, never the dead
// node's disk.
func (p *failoverPair) killPrimary(t testing.TB) {
	t.Helper()
	p.primary.Kill()
	if err := os.RemoveAll(p.primaryDir); err != nil {
		t.Fatalf("destroying the dead primary's journal dir: %v", err)
	}
}

// runFailover drives `clients` resumable streams through the primary,
// kills it (process and journal dir) once every client is underway and
// the follower has replicated every admission, and requires every
// client to finish byte-exact through the promoted follower with
// exactly one admission each and no leaked reservations.
func runFailover(t *testing.T, seed int64, clients int, mode transport.IntegrityMode, key []byte) {
	kit := makeClient(t, testTrace(t, 240))
	scfg := server.Config{
		LinkRate:     float64(clients+1) * kit.hello.PeakRate,
		ReadTimeout:  2 * time.Second,
		ResumeWindow: 30 * time.Second,
		TimeScale:    crashTimeScale,
		Integrity:    mode,
		IntegrityKey: key,
	}
	pair := startFailoverPair(t, scfg)
	addr := pair.primary.StreamAddr()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		resumes  int
		already  int
		failures []error
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs := resumableClient(kit, addr, seed*100+int64(i)+1)
			rs.Sender.TimeScale = crashTimeScale
			rs.MaxAttempts = 60
			rs.Integrity = mode
			rs.Key = key
			res, err := rs.StreamSchedule(ctx, kit.sched, kit.payloads)
			mu.Lock()
			defer mu.Unlock()
			resumes += res.Resumes
			if res.AlreadyComplete {
				already++
			}
			if err != nil {
				failures = append(failures, fmt.Errorf("client %d: %w", i, err))
			}
		}(i)
	}

	// Gate the kill: every client must hold a delivered verdict and at
	// least one accepted picture (so no admission fsync is in flight),
	// and the follower must have replicated every admission with zero
	// record lag — the promotion has to work from the replica alone.
	waitFor(t, "all clients underway", func() bool {
		s := pair.primary.Server().Snapshot()
		if s.Streams.Admitted != int64(clients) || len(s.PerStream) != clients {
			return false
		}
		for _, ss := range s.PerStream {
			if ss.Pictures < 1 {
				return false
			}
		}
		return true
	})
	waitFor(t, "follower caught up", func() bool {
		st := pair.follower.Status().Replication
		return st.AppliedAdmits >= uint64(clients) && st.LagRecords == 0
	})
	primarySnap := pair.primary.Server().Snapshot()
	pair.killPrimary(t)

	wg.Wait()
	for _, err := range failures {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	if resumes < 1 {
		t.Fatal("no client resumed — the kill never landed mid-stream")
	}

	waitFor(t, "follower promoted", func() bool {
		return pair.follower.Role() == RolePrimary
	})
	promoted := pair.follower.Server()
	if promoted == nil {
		t.Fatal("promoted follower has no server")
	}
	waitFor(t, "promoted server drained", func() bool {
		s := promoted.Snapshot()
		return s.Streams.Active == 0 && s.Streams.Parked == 0
	})

	final := promoted.Snapshot()
	// Exactly one admission per client across the promotion: the
	// replicated ledger must rehydrate reservations, never re-admit.
	if total := primarySnap.Streams.Admitted + final.Streams.Admitted; total != int64(clients) {
		t.Errorf("admitted %d sessions across the failover for %d clients (primary %d + promoted %d)",
			total, clients, primarySnap.Streams.Admitted, final.Streams.Admitted)
	}
	if final.Streams.Recovered < 1 {
		t.Error("the promoted follower recovered no stream from its replica — failover was cold")
	}
	// Zero leaked reservations on the promoted follower.
	if final.ReservedPeak != 0 || final.AvailablePeak != final.CapacityBPS {
		t.Errorf("reservations leaked across promotion: reserved %v, available %v, capacity %v",
			final.ReservedPeak, final.AvailablePeak, final.CapacityBPS)
	}
	completed := primarySnap.Streams.Completed + final.Streams.Completed
	if completed+int64(already) < int64(clients) {
		t.Errorf("completions %d + already-complete %d < %d clients", completed, already, clients)
	}
	st := pair.follower.Status()
	if st.Promotions != 1 || st.LastPromotion.IsZero() {
		t.Errorf("promoted status %+v: want exactly one promotion with a timestamp", st)
	}
	// Readiness flipped with the role: the standby now answers ok.
	rec := httptest.NewRecorder()
	pair.follower.OpsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"role":"primary"`) {
		t.Errorf("promoted /healthz = %d %q, want 200 primary", rec.Code, rec.Body.String())
	}

	// Durable ledger on the surviving node agrees: with every client
	// finished, no journaled stream (reservation) survives.
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer shutCancel()
	if err := pair.follower.Shutdown(shutCtx); err != nil {
		t.Fatalf("shutting down the promoted follower: %v", err)
	}
	j, err := journal.Open(journal.Config{Dir: pair.followerDir, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if n := len(j.State().Streams); n != 0 {
		t.Errorf("%d streams still journaled on the promoted node after every client finished", n)
	}
}

// TestFailoverPromotionResume is the deterministic acceptance case: one
// client per integrity mode rides a primary kill (process + journal
// dir) through to byte-exact completion on the promoted follower. The
// HMAC variant additionally proves the keyed prefix chain survives
// replication and promotion mid-stream.
func TestFailoverPromotionResume(t *testing.T) {
	if testing.Short() {
		t.Skip("failover test skipped in -short mode")
	}
	t.Run("fnv", func(t *testing.T) {
		runFailover(t, 42, 1, transport.IntegrityFNV, nil)
	})
	t.Run("hmac", func(t *testing.T) {
		runFailover(t, 43, 1, transport.IntegrityHMAC, []byte("failover-test-shared-key"))
	})
}

// TestFailoverChaosSoak is the multi-seed acceptance soak: five
// resumable clients per seed, the whole primary process killed and its
// journal directory deleted mid-stream. Every client must finish
// byte-exact (the resume prefix-hash cross-check runs on every
// reconnect), exactly one admission per client across the promotion,
// zero leaked reservations on the promoted follower.
func TestFailoverChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("failover soak skipped in -short mode")
	}
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runFailover(t, seed, 5, transport.IntegrityFNV, nil)
		})
	}
}
