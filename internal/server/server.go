// Package server implements smoothd: a multi-stream smoothing daemon
// that multiplexes many concurrent live picture streams onto one shared
// egress link of fixed capacity.
//
// The paper's argument for lossless smoothing is statistical
// multiplexing (Section 5): many smoothed VBR streams share a
// finite-buffer link far better than unsmoothed ones. smoothd turns
// that into a serving system. Each sender opens a session with a
// StreamHello declaring its encoding parameters and the peak rate of
// its smoothed schedule; a peak-rate admission controller
// (netsim.Admission) reserves that peak against the link capacity and
// rejects streams that would overload it — at admission time, before
// their first picture, never by dropping cells mid-stream. Every
// admitted stream is driven through its own core.Session (one
// goroutine, per the Session contract) with the server's configured
// rate-selection policy, and its pictures are paced onto the shared
// link at the decided rates. Because every admitted stream transmits at
// or below its reserved peak, the aggregate egress never exceeds the
// link capacity: the multiplexing stays lossless by construction.
package server

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mpegsmooth/internal/core"
	"mpegsmooth/internal/netsim"
	"mpegsmooth/internal/transport"
)

// egressChunk is the pacing granularity in bytes: streams interleave on
// the shared link at this grain.
const egressChunk = 4096

// delayTolerance absorbs float rounding when a schedule's maximum
// per-picture delay is compared against its bound D.
const delayTolerance = 1e-9

// Config parameterizes a smoothd server.
type Config struct {
	// LinkRate is the shared egress link capacity in bits/second; the
	// admission controller reserves declared stream peaks against it.
	LinkRate float64
	// Policy selects rates for every stream's smoothing session; nil
	// means core.BasicPolicy (fewest rate changes).
	Policy core.Policy
	// H is the lookahead interval in pictures; 0 resolves to each
	// stream's own pattern length N (the paper's usual choice).
	H int
	// QueueLen bounds each stream's decision queue between ingest and
	// egress (default 32). A full queue blocks ingest, which stops
	// reading the connection — backpressure propagates to the sender
	// through TCP flow control rather than growing memory.
	QueueLen int
	// MaxStreams caps concurrently active streams (0 = no cap beyond
	// link capacity).
	MaxStreams int
	// ReadTimeout bounds the wait for each inbound message so a stalled
	// sender cannot wedge its stream forever (default 30s).
	ReadTimeout time.Duration
	// TimeScale compresses egress pacing, like transport.Sender: wall
	// durations are schedule durations divided by TimeScale (default 1).
	TimeScale float64
	// Egress is the shared link sink; nil means io.Discard. Writes from
	// all streams are serialized onto it in pacing order.
	Egress io.Writer
	// Clock abstracts time for tests; nil means the wall clock.
	Clock transport.Clock
	// Logf, when set, receives one line per session outcome.
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.Policy == nil {
		cfg.Policy = core.BasicPolicy{}
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 32
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 30 * time.Second
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	if cfg.Egress == nil {
		cfg.Egress = io.Discard
	}
	if cfg.Clock == nil {
		cfg.Clock = transport.RealClock{}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return cfg
}

// Server is a running smoothd instance. Create with New, drive with
// Serve, stop with Shutdown.
type Server struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc
	egress *link
	wg     sync.WaitGroup

	mu        sync.Mutex
	admission *netsim.Admission
	streams   map[uint64]*stream
	nextID    uint64
	ln        net.Listener
	closed    bool

	completed         int64
	failed            int64
	rejectedMalformed int64
	rejectedBusy      int64

	// finished keeps the last finishedKeep stream snapshots for ops and
	// post-mortems; worstHeadroom and delayViolations aggregate the
	// delay-bound outcome over every finished stream.
	finished        []StreamSnapshot
	worstHeadroom   float64
	delayViolations int64
}

// finishedKeep bounds the retained per-stream history.
const finishedKeep = 256

// activeServer backs the process-wide "smoothd" expvar: the most
// recently created server is the one a production process runs.
var (
	activeServer atomic.Pointer[Server]
	expvarOnce   sync.Once
)

// New validates the configuration and prepares a server.
func New(cfg Config) (*Server, error) {
	if cfg.LinkRate <= 0 || math.IsNaN(cfg.LinkRate) || math.IsInf(cfg.LinkRate, 0) {
		return nil, fmt.Errorf("server: non-positive link rate %v", cfg.LinkRate)
	}
	adm, err := netsim.NewAdmission(cfg.LinkRate)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:           cfg.withDefaults(),
		ctx:           ctx,
		cancel:        cancel,
		admission:     adm,
		streams:       map[uint64]*stream{},
		worstHeadroom: math.Inf(1),
	}
	s.egress = &link{w: s.cfg.Egress}
	activeServer.Store(s)
	expvarOnce.Do(func() {
		expvar.Publish("smoothd", expvar.Func(func() any {
			if srv := activeServer.Load(); srv != nil {
				return srv.Snapshot()
			}
			return nil
		}))
	})
	return s, nil
}

// Serve accepts stream sessions on ln until the listener is closed
// (normally by Shutdown). Each connection is handled on its own
// goroutine pair: ingest (read, smooth, enqueue) and egress (pace onto
// the shared link).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Shutdown drains the server: it stops accepting sessions and waits for
// active streams to finish. If ctx expires first, remaining streams are
// cancelled and their connections closed, and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel()
		s.mu.Lock()
		for _, st := range s.streams {
			st.conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// handle runs one connection from hello to completion.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	st, verdict, err := s.admit(conn)
	if werr := s.writeVerdict(conn, verdict); werr != nil && err == nil {
		err = werr
	}
	if st == nil {
		s.cfg.Logf("smoothd: %s %s: %v", conn.RemoteAddr(), verdict.Code, err)
		return
	}
	err = s.run(st, err)
	s.finish(st, err)
}

// admit reads and validates the hello and takes the admission decision.
// A nil stream means the connection ends after the verdict.
func (s *Server) admit(conn net.Conn) (*stream, transport.Verdict, error) {
	reject := func(code transport.VerdictCode, err error) (*stream, transport.Verdict, error) {
		s.mu.Lock()
		switch code {
		case transport.RejectedMalformed:
			s.rejectedMalformed++
		case transport.RejectedBusy:
			s.rejectedBusy++
		}
		avail := s.admission.Available()
		s.mu.Unlock()
		return nil, transport.Verdict{Code: code, Available: avail}, err
	}

	msg, err := transport.ReadMessageTimeout(conn, s.cfg.ReadTimeout)
	if err != nil {
		return reject(transport.RejectedMalformed, err)
	}
	hello, ok := msg.(*transport.StreamHello)
	if !ok {
		return reject(transport.RejectedMalformed, fmt.Errorf("server: expected hello, got %T", msg))
	}
	h := s.cfg.H
	if h <= 0 {
		h = hello.GOP.N
	}
	st := newStream(conn, *hello, s.cfg.QueueLen)
	sess, err := core.NewSession(hello.Tau, hello.GOP, core.Config{
		K: hello.K, D: hello.D, H: h, Policy: s.cfg.Policy,
	}, core.WithObserver(st.observe))
	if err != nil {
		return reject(transport.RejectedMalformed, err)
	}
	st.sess = sess

	s.mu.Lock()
	if s.closed || (s.cfg.MaxStreams > 0 && int64(s.cfg.MaxStreams) <= s.admission.Active()) {
		s.mu.Unlock()
		return reject(transport.RejectedBusy, errors.New("server: at stream limit or shutting down"))
	}
	if !s.admission.Admit(hello.PeakRate) {
		avail := s.admission.Available()
		s.mu.Unlock()
		return nil, transport.Verdict{Code: transport.RejectedCapacity, Available: avail},
			fmt.Errorf("server: peak %.0f bps exceeds available %.0f bps", hello.PeakRate, avail)
	}
	s.nextID++
	st.id = s.nextID
	s.streams[st.id] = st
	avail := s.admission.Available()
	s.mu.Unlock()
	return st, transport.Verdict{Code: transport.Admitted, Available: avail}, nil
}

// writeVerdict answers the hello (with a write deadline so a dead peer
// cannot block the handler).
func (s *Server) writeVerdict(conn net.Conn, v transport.Verdict) error {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.ReadTimeout))
	defer conn.SetWriteDeadline(time.Time{})
	return transport.WriteVerdict(conn, v)
}

// run drives an admitted stream: ingest on this goroutine, egress on a
// second. admitErr carries a verdict-write failure from handle.
func (s *Server) run(st *stream, admitErr error) error {
	if admitErr != nil {
		close(st.queue)
		return admitErr
	}
	egressDone := make(chan error, 1)
	go func() {
		egressDone <- st.runEgress(s.ctx, s.egress, s.cfg.Clock, s.cfg.TimeScale)
	}()
	ingestErr := st.runIngest(s.ctx, s.cfg.ReadTimeout)
	egressErr := <-egressDone
	if ingestErr != nil {
		return ingestErr
	}
	return egressErr
}

// finish releases the stream's reservation and records its outcome.
func (s *Server) finish(st *stream, err error) {
	ss := st.snapshot()
	s.mu.Lock()
	s.admission.Release(st.hello.PeakRate)
	delete(s.streams, st.id)
	if err != nil {
		s.failed++
	} else {
		s.completed++
	}
	s.finished = append(s.finished, ss)
	if len(s.finished) > finishedKeep {
		s.finished = s.finished[1:]
	}
	if ss.Decisions > 0 && ss.DelayHeadroom < s.worstHeadroom {
		s.worstHeadroom = ss.DelayHeadroom
	}
	if ss.MaxDelay > ss.DelayBound+delayTolerance {
		s.delayViolations++
	}
	s.mu.Unlock()
	if err != nil {
		s.cfg.Logf("smoothd: stream %d from %s failed: %v", st.id, st.remote, err)
	} else {
		s.cfg.Logf("smoothd: stream %d from %s completed: %d pictures, peak %.0f bps",
			st.id, st.remote, ss.Pictures, ss.SessionPeak)
	}
}

// FinishedStreams returns snapshots of the most recently finished
// streams (up to finishedKeep), oldest first.
func (s *Server) FinishedStreams() []StreamSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StreamSnapshot, len(s.finished))
	copy(out, s.finished)
	return out
}

// link serializes all streams' paced writes onto the shared egress sink
// and accounts the bits that crossed it.
type link struct {
	mu   sync.Mutex
	w    io.Writer
	bits int64
}

func (l *link) write(p []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.w.Write(p); err != nil {
		return err
	}
	l.bits += int64(len(p)) * 8
	return nil
}

func (l *link) totalBits() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bits
}
