// Command tracegen generates MPEG picture-size traces: the four
// calibrated sequences from the paper's Section 5.1, or a custom
// synthetic trace, written as CSV to stdout or a file.
//
// Usage:
//
//	tracegen -seq driving1 -pictures 270 -seed 1 -o driving1.csv
//	tracegen -seq all -pictures 270 -dir traces/
//	tracegen -stats -seq tennis
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mpegsmooth"
)

func main() {
	var (
		seq      = flag.String("seq", "driving1", "sequence: driving1, driving2, tennis, backyard, or all")
		pictures = flag.Int("pictures", 270, "number of pictures to generate")
		seed     = flag.Int64("seed", 1, "random seed (traces are deterministic per seed)")
		out      = flag.String("o", "", "output file (default stdout; ignored with -seq all)")
		dir      = flag.String("dir", ".", "output directory for -seq all")
		stats    = flag.Bool("stats", false, "print per-type statistics instead of the trace")
	)
	flag.Parse()

	if err := run(*seq, *pictures, *seed, *out, *dir, *stats); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}

func run(seq string, pictures int, seed int64, out, dir string, stats bool) error {
	gens := map[string]func(int, int64) (*mpegsmooth.Trace, error){
		"driving1": mpegsmooth.Driving1,
		"driving2": mpegsmooth.Driving2,
		"tennis":   mpegsmooth.Tennis,
		"backyard": mpegsmooth.Backyard,
	}
	if seq == "all" {
		for name, gen := range gens {
			tr, err := gen(pictures, seed)
			if err != nil {
				return err
			}
			path := filepath.Join(dir, name+".csv")
			if err := writeTrace(tr, path, stats); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d pictures, %.2f Mbps mean)\n", path, tr.Len(), tr.MeanRate()/1e6)
		}
		return nil
	}
	gen, ok := gens[strings.ToLower(seq)]
	if !ok {
		return fmt.Errorf("unknown sequence %q (want driving1, driving2, tennis, backyard, all)", seq)
	}
	tr, err := gen(pictures, seed)
	if err != nil {
		return err
	}
	if stats {
		return printStats(tr)
	}
	return writeTrace(tr, out, false)
}

func writeTrace(tr *mpegsmooth.Trace, path string, stats bool) error {
	if stats {
		return printStats(tr)
	}
	w := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return tr.WriteCSV(w)
}

func printStats(tr *mpegsmooth.Trace) error {
	fmt.Printf("%s: %d pictures, pattern %s, tau %.5f s\n", tr.Name, tr.Len(), tr.GOP.Pattern(), tr.Tau)
	fmt.Printf("  duration      %.2f s\n", tr.Duration())
	fmt.Printf("  mean rate     %.3f Mbps\n", tr.MeanRate()/1e6)
	fmt.Printf("  unsmoothed peak %.3f Mbps (largest picture in one period)\n", tr.PeakPictureRate()/1e6)
	for _, ty := range []mpegsmooth.PictureType{mpegsmooth.TypeI, mpegsmooth.TypeP, mpegsmooth.TypeB} {
		st, ok := tr.Stats()[ty]
		if !ok {
			continue
		}
		fmt.Printf("  %s pictures: n=%3d  mean %8.0f  min %8d  max %8d  sd %8.0f bits\n",
			ty, st.Count, st.Mean, st.Min, st.Max, st.Std)
	}
	fmt.Printf("  peak-to-mean  %.2f\n", tr.PeakToMean())
	fmt.Printf("  scene spread  %.2fx (max/min pattern rate)\n", tr.SceneRateSpread())
	if acf, err := tr.Autocorrelation(tr.GOP.N); err == nil {
		fmt.Printf("  size acf at lag N=%d: %.3f (pattern periodicity)\n", tr.GOP.N, acf[tr.GOP.N])
	}
	return nil
}
