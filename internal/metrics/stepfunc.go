// Package metrics provides exact piecewise-constant function arithmetic
// and the four smoothness measures the paper uses to evaluate its
// algorithm (Section 5.2): area difference, number of rate changes,
// maximum rate, and the standard deviation of the rate function over time.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// StepFunc is a right-continuous piecewise-constant function of time:
// f(t) = Values[k] for Times[k] <= t < Times[k+1], and 0 outside
// [Times[0], End). Times must be strictly increasing.
type StepFunc struct {
	Times  []float64 // segment start times, strictly increasing
	Values []float64 // len(Values) == len(Times)
	End    float64   // end of the final segment
}

// NewStepFunc validates and constructs a step function.
func NewStepFunc(times, values []float64, end float64) (*StepFunc, error) {
	if len(times) == 0 || len(times) != len(values) {
		return nil, fmt.Errorf("metrics: %d times vs %d values", len(times), len(values))
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			return nil, fmt.Errorf("metrics: times not increasing at %d (%v, %v)", i, times[i-1], times[i])
		}
	}
	if end <= times[len(times)-1] {
		return nil, fmt.Errorf("metrics: end %v not after last time %v", end, times[len(times)-1])
	}
	return &StepFunc{Times: times, Values: values, End: end}, nil
}

// At evaluates f(t).
func (f *StepFunc) At(t float64) float64 {
	if t < f.Times[0] || t >= f.End {
		return 0
	}
	// Index of the last segment starting at or before t.
	k := sort.SearchFloat64s(f.Times, t)
	if k == len(f.Times) || f.Times[k] > t {
		k--
	}
	return f.Values[k]
}

// Integral returns ∫ f dt over the function's support.
func (f *StepFunc) Integral() float64 {
	var sum float64
	for k, v := range f.Values {
		end := f.End
		if k+1 < len(f.Times) {
			end = f.Times[k+1]
		}
		sum += v * (end - f.Times[k])
	}
	return sum
}

// Max returns the maximum value attained.
func (f *StepFunc) Max() float64 {
	max := math.Inf(-1)
	for _, v := range f.Values {
		if v > max {
			max = v
		}
	}
	return max
}

// Mean returns the time-weighted mean over the support [Times[0], End).
func (f *StepFunc) Mean() float64 {
	dur := f.End - f.Times[0]
	if dur <= 0 {
		return 0
	}
	return f.Integral() / dur
}

// Std returns the time-weighted standard deviation over the support.
func (f *StepFunc) Std() float64 {
	mean := f.Mean()
	var sum float64
	for k, v := range f.Values {
		end := f.End
		if k+1 < len(f.Times) {
			end = f.Times[k+1]
		}
		d := v - mean
		sum += d * d * (end - f.Times[k])
	}
	dur := f.End - f.Times[0]
	if dur <= 0 {
		return 0
	}
	return math.Sqrt(sum / dur)
}

// Changes returns the number of value changes between consecutive
// segments, treating values within rel relative tolerance as equal.
func (f *StepFunc) Changes(rel float64) int {
	n := 0
	for k := 1; k < len(f.Values); k++ {
		if !approxEqual(f.Values[k], f.Values[k-1], rel) {
			n++
		}
	}
	return n
}

func approxEqual(a, b, rel float64) bool {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= rel*scale
}

// Shift returns f translated right by dt: g(t) = f(t - dt).
func (f *StepFunc) Shift(dt float64) *StepFunc {
	times := make([]float64, len(f.Times))
	for i, t := range f.Times {
		times[i] = t + dt
	}
	return &StepFunc{Times: times, Values: append([]float64(nil), f.Values...), End: f.End + dt}
}

// Compact merges adjacent segments with exactly equal values.
func (f *StepFunc) Compact() *StepFunc {
	times := []float64{f.Times[0]}
	values := []float64{f.Values[0]}
	for k := 1; k < len(f.Times); k++ {
		if f.Values[k] != values[len(values)-1] {
			times = append(times, f.Times[k])
			values = append(values, f.Values[k])
		}
	}
	return &StepFunc{Times: times, Values: values, End: f.End}
}

// PositiveAreaDiff computes ∫ [f(t) - g(t)]⁺ dt over [from, to), the
// numerator of the paper's area-difference measure (Eq. 16). Both
// functions are evaluated as 0 outside their support.
func PositiveAreaDiff(f, g *StepFunc, from, to float64) (float64, error) {
	if to <= from {
		return 0, errors.New("metrics: empty interval")
	}
	cuts := mergeCuts(f, g, from, to)
	var sum float64
	for i := 0; i+1 < len(cuts); i++ {
		mid := (cuts[i] + cuts[i+1]) / 2
		if d := f.At(mid) - g.At(mid); d > 0 {
			sum += d * (cuts[i+1] - cuts[i])
		}
	}
	return sum, nil
}

// IntegralOver computes ∫ f dt over [from, to), evaluating f as 0 outside
// its support.
func IntegralOver(f *StepFunc, from, to float64) (float64, error) {
	if to <= from {
		return 0, errors.New("metrics: empty interval")
	}
	cuts := mergeCuts(f, f, from, to)
	var sum float64
	for i := 0; i+1 < len(cuts); i++ {
		mid := (cuts[i] + cuts[i+1]) / 2
		sum += f.At(mid) * (cuts[i+1] - cuts[i])
	}
	return sum, nil
}

// mergeCuts returns the sorted, deduplicated breakpoints of f and g
// clipped to [from, to], including both endpoints.
func mergeCuts(f, g *StepFunc, from, to float64) []float64 {
	cuts := []float64{from, to}
	for _, fn := range []*StepFunc{f, g} {
		for _, t := range fn.Times {
			if t > from && t < to {
				cuts = append(cuts, t)
			}
		}
		if fn.End > from && fn.End < to {
			cuts = append(cuts, fn.End)
		}
	}
	sort.Float64s(cuts)
	out := cuts[:1]
	for _, c := range cuts[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}
