// Quorum tracking: the primary-side ledger of how far each follower
// has durably applied the journal feed, and the commit gate that holds
// admission/completion verdicts until enough replicas hold the record.
//
// Acks are cumulative: a follower acknowledges the highest primary
// publish sequence it has fsynced (snapshot base + records applied
// since), so one ack covers every record before it and a lost ack is
// repaired by the next. The commit rule is rank-ordered: a record is
// quorum-committed when the lowest `need` connected ranks have all
// acked it. The election stagger prefers the lowest surviving rank, so
// the follower most likely to win a promotion is exactly the one every
// committed record is guaranteed to be on. (Limitation, documented in
// DESIGN.md §13: if the lowest rank is disconnected, commits are
// carried by the next ranks, and a promotion won by the returning
// lower rank could miss them — full vote-based elections are the next
// rung.)
//
// The gate degrades instead of wedging: a record that waits past
// AckTimeout, an in-flight window overflow, or losing so many
// followers that a quorum is impossible all flip the tracker into
// degraded mode — verdicts release on local durability alone, the
// node's /healthz goes not-ready ("quorum-degraded"), and counters
// record the event. Degraded mode is sticky until the needed ranks are
// attached and have acked everything admitted so far.
package cluster

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"
)

// errQuorumClosed terminates waiters when the gate's primary stops
// being one; the server rolls the admission back.
var errQuorumClosed = errors.New("cluster: quorum gate closed")

// ackState is one attached follower's durable cursor.
type ackState struct {
	rank   int
	acked  uint64 // highest publish sequence fsynced on the follower
	synced bool   // has sent at least one ack this attachment
}

// quorumTracker implements server.CommitGate for a primary.
type quorumTracker struct {
	need       int // follower acks required (quorum - 1)
	window     uint64
	ackTimeout time.Duration
	logf       func(format string, args ...any)

	mu        sync.Mutex
	changed   chan struct{} // closed and replaced on every state change
	followers map[string]*ackState
	maxSeq    uint64 // highest sequence any waiter has asked for
	degraded  bool
	closed    bool

	quorumCommits  int64
	localCommits   int64
	degradedEvents int64
	ackTimeouts    int64
}

func newQuorumTracker(need int, window uint64, ackTimeout time.Duration, logf func(string, ...any)) *quorumTracker {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &quorumTracker{
		need:       need,
		window:     window,
		ackTimeout: ackTimeout,
		logf:       logf,
		changed:    make(chan struct{}),
		followers:  map[string]*ackState{},
		// A fresh primary has no followers yet: it starts degraded
		// (local-only commits, /healthz not ready) and forms its quorum
		// when the needed ranks attach and catch up. Formation is not
		// counted as a degraded event.
		degraded: true,
	}
}

func (q *quorumTracker) signalLocked() {
	close(q.changed)
	q.changed = make(chan struct{})
}

// commitFloorLocked is the quorum-acked watermark: the highest sequence
// every one of the `need` lowest-ranked attached followers has acked.
// Zero means no quorum is currently possible (journal publish sequences
// start at 1, so zero never satisfies a waiter).
func (q *quorumTracker) commitFloorLocked() uint64 {
	if len(q.followers) < q.need {
		return 0
	}
	ranked := make([]*ackState, 0, len(q.followers))
	for _, f := range q.followers {
		ranked = append(ranked, f)
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].rank < ranked[j].rank })
	floor := ^uint64(0)
	for _, f := range ranked[:q.need] {
		if !f.synced {
			return 0
		}
		if f.acked < floor {
			floor = f.acked
		}
	}
	return floor
}

func (q *quorumTracker) degradeLocked(reason string) {
	if q.degraded {
		return
	}
	q.degraded = true
	q.degradedEvents++
	q.logf("cluster: quorum degraded (%s): committing on local durability alone", reason)
	q.signalLocked()
}

// reformLocked clears degraded mode once the needed ranks hold
// everything the gate has ever been asked to wait for — nothing
// admitted under local quorum is left unreplicated when the guarantee
// is re-advertised.
func (q *quorumTracker) reformLocked() {
	if !q.degraded {
		return
	}
	if q.commitFloorLocked() < q.maxSeq || len(q.followers) < q.need {
		return
	}
	q.degraded = false
	q.logf("cluster: quorum re-formed (%d followers caught up through record %d)", len(q.followers), q.maxSeq)
	q.signalLocked()
}

// attach registers a follower connection. A reconnect under the same
// name replaces the stale entry; the fresh one counts toward the
// quorum only after its first ack.
func (q *quorumTracker) attach(name string, rank int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.followers[name] = &ackState{rank: rank}
	q.signalLocked()
}

// detach unregisters a follower. Losing so many followers that a
// quorum is impossible degrades immediately — waiters must not sit out
// the ack timeout for a commit that cannot happen.
func (q *quorumTracker) detach(name string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	delete(q.followers, name)
	if len(q.followers) < q.need {
		q.degradeLocked("followers lost")
	}
	q.signalLocked()
}

// ack records a follower's cumulative durable cursor.
func (q *quorumTracker) ack(name string, seq uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	f := q.followers[name]
	if f == nil {
		return
	}
	f.synced = true
	if seq > f.acked {
		f.acked = seq
	}
	q.reformLocked()
	q.signalLocked()
}

// close terminates the gate; current and future waiters get a terminal
// error and roll their commits back.
func (q *quorumTracker) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.signalLocked()
}

// WaitCommitted blocks until seq is quorum-committed (or the gate is
// degraded, past its ack deadline, or over its in-flight window — all
// of which release the verdict on local durability). It implements
// server.CommitGate: only closure or ctx cancellation return an error.
func (q *quorumTracker) WaitCommitted(ctx context.Context, seq uint64) error {
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	q.mu.Lock()
	if seq > q.maxSeq {
		q.maxSeq = seq
	}
	for {
		if q.closed {
			q.mu.Unlock()
			return errQuorumClosed
		}
		if q.commitFloorLocked() >= seq {
			q.quorumCommits++
			q.mu.Unlock()
			return nil
		}
		if q.degraded {
			q.localCommits++
			q.mu.Unlock()
			return nil
		}
		if q.window > 0 && seq > q.commitFloorLocked()+q.window {
			q.degradeLocked("in-flight window overflow")
			continue
		}
		ch := q.changed
		q.mu.Unlock()
		if timer == nil {
			timer = time.NewTimer(q.ackTimeout)
		}
		select {
		case <-ch:
			q.mu.Lock()
		case <-timer.C:
			q.mu.Lock()
			if !q.degraded && q.commitFloorLocked() < seq {
				q.ackTimeouts++
				q.degradeLocked("ack deadline")
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// quorumStatus is the tracker's ops snapshot, folded into ReplStatus.
type quorumStatus struct {
	Degraded       bool
	Connected      int
	AckedSeq       map[string]uint64
	QuorumCommits  int64
	LocalCommits   int64
	DegradedEvents int64
	AckTimeouts    int64
}

func (q *quorumTracker) status() quorumStatus {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := quorumStatus{
		Degraded:       q.degraded,
		Connected:      len(q.followers),
		AckedSeq:       make(map[string]uint64, len(q.followers)),
		QuorumCommits:  q.quorumCommits,
		LocalCommits:   q.localCommits,
		DegradedEvents: q.degradedEvents,
		AckTimeouts:    q.ackTimeouts,
	}
	for name, f := range q.followers {
		st.AckedSeq[name] = f.acked
	}
	return st
}

func (q *quorumTracker) isDegraded() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.degraded
}
