package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"mpegsmooth"
)

// reserveAddrs grabs n distinct loopback addresses by binding and
// releasing them; the cluster processes re-bind them by name.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// clusterProc is one smoothd OS process under test.
type clusterProc struct {
	cmd *exec.Cmd
	out *syncBuffer
}

func startClusterProc(t *testing.T, bin string, args ...string) *clusterProc {
	t.Helper()
	p := &clusterProc{cmd: exec.Command(bin, args...), out: &syncBuffer{}}
	p.cmd.Stdout = p.out
	p.cmd.Stderr = p.out
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})
	return p
}

// stats fetches and decodes one node's /stats document.
func stats(opsAddr string) (map[string]any, error) {
	resp, err := http.Get("http://" + opsAddr + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return doc, nil
}

func clusterSection(opsAddr, key string) (any, error) {
	doc, err := stats(opsAddr)
	if err != nil {
		return nil, err
	}
	cl, ok := doc["cluster"].(map[string]any)
	if !ok {
		return nil, fmt.Errorf("no cluster section in %v", doc)
	}
	return cl[key], nil
}

func pollSmoke(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestClusterFailoverSmoke is the three-process smoke `make cluster`
// runs: a primary and a follower smoothd as real OS processes, a
// resumable client streaming through the shard, then SIGKILL on the
// primary plus deletion of its journal directory. The client must
// finish through the follower, which must report itself promoted on
// its ops endpoint.
func TestClusterFailoverSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster smoke skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "smoothd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building smoothd: %v\n%s", err, out)
	}

	addrs := reserveAddrs(t, 2)
	peerSpec := "alpha=" + addrs[0] + "/" + addrs[1]
	primaryDir := t.TempDir()
	common := []string{
		"-shard", "alpha",
		"-peers", peerSpec,
		"-ops", "127.0.0.1:0",
		"-capacity", "50e6",
		"-timescale", "25",
		"-resume-window", "30s",
		"-failover-timeout", "500ms",
	}
	primary := startClusterProc(t, bin, append([]string{"-cluster", "primary", "-journal-dir", primaryDir}, common...)...)
	primaryOps := waitAddr(t, primary.out, opsAddrRe)
	follower := startClusterProc(t, bin, append([]string{"-cluster", "follower:1", "-journal-dir", t.TempDir()}, common...)...)
	followerOps := waitAddr(t, follower.out, opsAddrRe)

	pollSmoke(t, "follower attached to the primary", func() bool {
		repl, err := clusterSection(followerOps, "replication")
		if err != nil {
			return false
		}
		m, ok := repl.(map[string]any)
		return ok && m["connected"] == true
	})

	tr, err := mpegsmooth.Driving1(240, 1)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := mpegsmooth.Smooth(tr, mpegsmooth.Config{K: 1, H: tr.GOP.N, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, tr.Len())
	for i, bits := range tr.Sizes {
		payloads[i] = make([]byte, (bits+7)/8)
	}
	rs := &mpegsmooth.ResumableSender{
		Sender: mpegsmooth.Sender{TimeScale: 25, Chunk: 512, WriteTimeout: 5 * time.Second},
		Dial: func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addrs[0])
		},
		Hello: mpegsmooth.StreamHello{
			Tau: tr.Tau, GOP: tr.GOP, K: 1, D: 0.2,
			Pictures: tr.Len(), PeakRate: sched.PeakRate(),
		},
		Backoff:     mpegsmooth.Backoff{Base: 10 * time.Millisecond, Max: 200 * time.Millisecond},
		MaxAttempts: 60,
		Seed:        1,
	}
	type result struct {
		res mpegsmooth.StreamResult
		err error
	}
	done := make(chan result, 1)
	go func() {
		res, err := rs.StreamSchedule(context.Background(), sched, payloads)
		done <- result{res, err}
	}()

	// Kill only after the client is admitted and streaming and the
	// follower has replicated the admission.
	pollSmoke(t, "client admitted on the primary", func() bool {
		doc, err := stats(primaryOps)
		if err != nil {
			return false
		}
		srv, ok := doc["server"].(map[string]any)
		if !ok {
			return false
		}
		streams, ok := srv["streams"].(map[string]any)
		return ok && streams["admitted"] == float64(1)
	})
	pollSmoke(t, "follower replicated the admission", func() bool {
		repl, err := clusterSection(followerOps, "replication")
		if err != nil {
			return false
		}
		m, ok := repl.(map[string]any)
		return ok && m["applied_admits"] == float64(1) && m["lag_records"] == float64(0)
	})

	if err := primary.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	primary.cmd.Wait()
	if err := os.RemoveAll(primaryDir); err != nil {
		t.Fatal(err)
	}
	t.Log("primary killed and its journal dir destroyed")

	r := <-done
	if r.err != nil {
		t.Fatalf("client did not survive the failover: %v\nfollower output:\n%s", r.err, follower.out.String())
	}
	if r.res.Resumes < 1 {
		t.Errorf("client finished with no resume — the kill never landed mid-stream")
	}

	pollSmoke(t, "follower promoted", func() bool {
		role, err := clusterSection(followerOps, "role")
		return err == nil && role == "primary"
	})
	t.Logf("failover complete: %d resume(s)", r.res.Resumes)
}

// TestClusterQuorumSmoke is the quorum-replication variant: THREE
// smoothd OS processes (a primary and two followers) running with
// -replicas 2 -quorum 2, so every verdict is held for a follower ack.
// The primary is killed (journal dir destroyed) with no catch-up gate
// beyond the admission verdict itself — the quorum ack-hold is what
// guarantees the promoted follower carries the session. The promoted
// node must report a higher fencing epoch than the dead primary served
// under.
func TestClusterQuorumSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster smoke skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "smoothd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building smoothd: %v\n%s", err, out)
	}

	addrs := reserveAddrs(t, 2)
	peerSpec := "alpha=" + addrs[0] + "/" + addrs[1]
	primaryDir := t.TempDir()
	common := []string{
		"-shard", "alpha",
		"-peers", peerSpec,
		"-ops", "127.0.0.1:0",
		"-capacity", "50e6",
		"-timescale", "25",
		"-resume-window", "30s",
		"-failover-timeout", "500ms",
		"-replicas", "2",
		"-quorum", "2",
		"-ack-timeout", "250ms",
	}
	primary := startClusterProc(t, bin, append([]string{"-cluster", "primary", "-journal-dir", primaryDir}, common...)...)
	primaryOps := waitAddr(t, primary.out, opsAddrRe)
	follower1 := startClusterProc(t, bin, append([]string{"-cluster", "follower:1", "-journal-dir", t.TempDir()}, common...)...)
	follower1Ops := waitAddr(t, follower1.out, opsAddrRe)
	startClusterProc(t, bin, append([]string{"-cluster", "follower:2", "-journal-dir", t.TempDir()}, common...)...)

	replGauge := func(ops, key string) (float64, bool) {
		repl, err := clusterSection(ops, "replication")
		if err != nil {
			return 0, false
		}
		m, ok := repl.(map[string]any)
		if !ok {
			return 0, false
		}
		v, ok := m[key].(float64)
		return v, ok
	}
	pollSmoke(t, "quorum formed on the primary", func() bool {
		repl, err := clusterSection(primaryOps, "replication")
		if err != nil {
			return false
		}
		m, ok := repl.(map[string]any)
		return ok && m["replicas_connected"] == float64(2) && m["quorum_degraded"] == false
	})
	primaryEpoch, ok := replGauge(primaryOps, "epoch")
	if !ok || primaryEpoch < 1 {
		t.Fatalf("primary serving without a fencing epoch (got %v)", primaryEpoch)
	}

	// A longer trace than the failover smoke: the mid-stream gate below
	// needs a wide window of in-flight pictures to observe, even on a
	// loaded machine where stats round-trips are slow.
	tr, err := mpegsmooth.Driving1(2400, 1)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := mpegsmooth.Smooth(tr, mpegsmooth.Config{K: 1, H: tr.GOP.N, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, tr.Len())
	for i, bits := range tr.Sizes {
		payloads[i] = make([]byte, (bits+7)/8)
	}
	rs := &mpegsmooth.ResumableSender{
		Sender: mpegsmooth.Sender{TimeScale: 25, Chunk: 512, WriteTimeout: 5 * time.Second},
		Dial: func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addrs[0])
		},
		Hello: mpegsmooth.StreamHello{
			Tau: tr.Tau, GOP: tr.GOP, K: 1, D: 0.2,
			Pictures: tr.Len(), PeakRate: sched.PeakRate(),
		},
		Backoff:     mpegsmooth.Backoff{Base: 10 * time.Millisecond, Max: 200 * time.Millisecond},
		MaxAttempts: 60,
		Seed:        2,
	}
	type result struct {
		res mpegsmooth.StreamResult
		err error
	}
	done := make(chan result, 1)
	go func() {
		res, err := rs.StreamSchedule(context.Background(), sched, payloads)
		done <- result{res, err}
	}()

	// Kill only while the client is demonstrably mid-stream — no
	// replication catch-up gate: the quorum ack-hold IS the guarantee
	// under test. Gating on the admission gauge alone raced both ways:
	// the gauge flips before the quorum hold releases the verdict, so
	// under disk pressure the kill could land before the client even
	// held a resume token (it re-helloes fresh on the promoted follower
	// and finishes with zero resumes), and a late-observed gauge could
	// push the kill past the end of the stream. Pictures arriving proves
	// the verdict reached the client (the sender starts only after it),
	// and the upper bound keeps at least a second of stream ahead of the
	// kill at this timescale.
	midStreamMax := float64(tr.Len() - 600)
	pollSmoke(t, "client mid-stream on the primary", func() bool {
		doc, err := stats(primaryOps)
		if err != nil {
			return false
		}
		srv, ok := doc["server"].(map[string]any)
		if !ok {
			return false
		}
		streams, ok := srv["streams"].(map[string]any)
		if !ok || streams["admitted"] != float64(1) || streams["active"] != float64(1) {
			return false
		}
		actives, ok := srv["active_streams"].([]any)
		if !ok || len(actives) != 1 {
			return false
		}
		st, ok := actives[0].(map[string]any)
		if !ok {
			return false
		}
		pics, ok := st["pictures"].(float64)
		return ok && pics >= 1 && pics <= midStreamMax
	})
	if err := primary.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	primary.cmd.Wait()
	if err := os.RemoveAll(primaryDir); err != nil {
		t.Fatal(err)
	}
	t.Log("primary killed and its journal dir destroyed")

	r := <-done
	if r.err != nil {
		t.Fatalf("client did not survive the quorum failover: %v\nfollower output:\n%s", r.err, follower1.out.String())
	}
	if r.res.Resumes < 1 {
		t.Errorf("client finished with no resume — the kill never landed mid-stream")
	}

	pollSmoke(t, "rank 1 promoted under a higher epoch", func() bool {
		role, err := clusterSection(follower1Ops, "role")
		if err != nil || role != "primary" {
			return false
		}
		epoch, ok := replGauge(follower1Ops, "epoch")
		return ok && epoch > primaryEpoch
	})
	t.Logf("quorum failover complete: %d resume(s)", r.res.Resumes)
}
