package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

// collect reads everything the wrapped writer pushes through a pipe:
// the returned bytes are what a peer would observe.
func collect(t *testing.T, nw *Network, chunks [][]byte) []byte {
	t.Helper()
	client, server := net.Pipe()
	wrapped := nw.Wrap(client)
	done := make(chan []byte, 1)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, server)
		done <- buf.Bytes()
	}()
	for _, c := range chunks {
		if _, err := wrapped.Write(c); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	wrapped.Close()
	return <-done
}

func TestDeterministicCorruption(t *testing.T) {
	chunks := make([][]byte, 50)
	var clean bytes.Buffer
	for i := range chunks {
		chunks[i] = bytes.Repeat([]byte{byte(i)}, 16)
		clean.Write(chunks[i])
	}
	cfg := Config{Seed: 9, CorruptProb: 0.3}
	first := collect(t, New(cfg), chunks)
	second := collect(t, New(cfg), chunks)
	if !bytes.Equal(first, second) {
		t.Fatal("same seed, same writes, different corruption")
	}
	if bytes.Equal(first, clean.Bytes()) {
		t.Fatal("corruption probability 0.3 over 50 writes corrupted nothing")
	}
}

func TestCorruptionFlipsExactlyOneByteAndCounts(t *testing.T) {
	nw := New(Config{Seed: 1, CorruptProb: 1})
	got := collect(t, nw, [][]byte{bytes.Repeat([]byte{0xAA}, 32)})
	if len(got) != 32 {
		t.Fatalf("received %d bytes, want 32", len(got))
	}
	diff := 0
	for _, b := range got {
		if b != 0xAA {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1 per write op", diff)
	}
	if c := nw.Counts().Corrupted; c != 1 {
		t.Fatalf("counted %d corruptions, want 1", c)
	}
}

func TestFaultFreeBytesGrace(t *testing.T) {
	nw := New(Config{Seed: 1, CorruptProb: 1, FaultFreeBytes: 64})
	chunks := [][]byte{
		bytes.Repeat([]byte{1}, 32), // bytes 0–31: in grace
		bytes.Repeat([]byte{2}, 32), // bytes 32–63: in grace
		bytes.Repeat([]byte{3}, 32), // bytes 64–95: fair game
	}
	got := collect(t, nw, chunks)
	if !bytes.Equal(got[:64], append(bytes.Repeat([]byte{1}, 32), bytes.Repeat([]byte{2}, 32)...)) {
		t.Fatal("grace bytes were corrupted")
	}
	if bytes.Equal(got[64:], bytes.Repeat([]byte{3}, 32)) {
		t.Fatal("post-grace bytes escaped corruption at probability 1")
	}
}

func TestInjectedResetLooksReal(t *testing.T) {
	nw := New(Config{Seed: 1, ResetProb: 1})
	client, server := net.Pipe()
	defer server.Close()
	wrapped := nw.Wrap(client)
	_, err := wrapped.Write([]byte("hello"))
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("write after reset roll: %v", err)
	}
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatal("injected reset does not classify as a connection reset")
	}
	if c := nw.Counts().Resets; c != 1 {
		t.Fatalf("counted %d resets, want 1", c)
	}
	// The reset is sticky and the underlying conn is closed.
	if _, err := wrapped.Write([]byte("again")); err == nil {
		t.Fatal("write succeeded on a reset connection")
	}
}

func TestPartitionWindow(t *testing.T) {
	nw := New(Config{Seed: 1})
	client, server := net.Pipe()
	defer server.Close()
	go io.Copy(io.Discard, server)
	wrapped := nw.Wrap(client)

	if _, err := wrapped.Write([]byte("before")); err != nil {
		t.Fatalf("write before partition: %v", err)
	}
	nw.PartitionFor(100 * time.Millisecond)
	if _, err := wrapped.Write([]byte("during")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("write during partition: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := wrapped.Write([]byte("after")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("partition never healed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if c := nw.Counts().Partitions; c != 1 {
		t.Fatalf("counted %d partitions, want 1", c)
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	nw := New(Config{Seed: 1, CorruptProb: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	fl := nw.Listener(ln)

	msg := bytes.Repeat([]byte{0x55}, 64)
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return
		}
		defer conn.Close()
		conn.Write(msg)
	}()
	conn, err := fl.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("accepted connection not fault-injected")
	}
	if nw.Counts().Corrupted == 0 {
		t.Fatal("read-path corruption not counted")
	}
}
