package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustStep(t *testing.T, times, values []float64, end float64) *StepFunc {
	t.Helper()
	f, err := NewStepFunc(times, values, end)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewStepFuncValidation(t *testing.T) {
	if _, err := NewStepFunc(nil, nil, 1); err == nil {
		t.Error("empty should fail")
	}
	if _, err := NewStepFunc([]float64{0, 1}, []float64{1}, 2); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := NewStepFunc([]float64{0, 0}, []float64{1, 2}, 2); err == nil {
		t.Error("non-increasing times should fail")
	}
	if _, err := NewStepFunc([]float64{0, 1}, []float64{1, 2}, 1); err == nil {
		t.Error("end before last time should fail")
	}
}

func TestAt(t *testing.T) {
	f := mustStep(t, []float64{0, 1, 3}, []float64{10, 20, 5}, 4)
	cases := []struct{ t, want float64 }{
		{-0.5, 0}, {0, 10}, {0.99, 10}, {1, 20}, {2.5, 20}, {3, 5}, {3.999, 5}, {4, 0}, {10, 0},
	}
	for _, c := range cases {
		if got := f.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestIntegralMaxMeanStd(t *testing.T) {
	f := mustStep(t, []float64{0, 1, 3}, []float64{10, 20, 5}, 4)
	// 10*1 + 20*2 + 5*1 = 55
	if got := f.Integral(); math.Abs(got-55) > 1e-12 {
		t.Errorf("Integral = %v", got)
	}
	if got := f.Max(); got != 20 {
		t.Errorf("Max = %v", got)
	}
	if got := f.Mean(); math.Abs(got-13.75) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	// variance = (1*(10-13.75)^2 + 2*(20-13.75)^2 + 1*(5-13.75)^2)/4
	wantVar := (1*3.75*3.75 + 2*6.25*6.25 + 1*8.75*8.75) / 4
	if got := f.Std(); math.Abs(got-math.Sqrt(wantVar)) > 1e-12 {
		t.Errorf("Std = %v, want %v", got, math.Sqrt(wantVar))
	}
}

func TestChanges(t *testing.T) {
	f := mustStep(t, []float64{0, 1, 2, 3}, []float64{5, 5, 7, 5}, 4)
	if got := f.Changes(RateChangeTolerance); got != 2 {
		t.Errorf("Changes = %d, want 2", got)
	}
	g := mustStep(t, []float64{0, 1}, []float64{5, 5 * (1 + 1e-12)}, 2)
	if got := g.Changes(RateChangeTolerance); got != 0 {
		t.Errorf("near-equal values should not count: %d", got)
	}
}

func TestShift(t *testing.T) {
	f := mustStep(t, []float64{0, 1}, []float64{3, 4}, 2)
	g := f.Shift(0.5)
	if g.At(0.25) != 0 || g.At(0.75) != 3 || g.At(1.75) != 4 || g.At(2.5) != 0 {
		t.Errorf("shifted function wrong: %v %v %v %v", g.At(0.25), g.At(0.75), g.At(1.75), g.At(2.5))
	}
	if math.Abs(g.Integral()-f.Integral()) > 1e-12 {
		t.Error("shift must preserve integral")
	}
}

func TestCompact(t *testing.T) {
	f := mustStep(t, []float64{0, 1, 2, 3}, []float64{5, 5, 5, 7}, 4)
	c := f.Compact()
	if len(c.Times) != 2 || c.Times[1] != 3 {
		t.Fatalf("Compact gave %+v", c)
	}
	if math.Abs(c.Integral()-f.Integral()) > 1e-12 {
		t.Error("Compact changed the integral")
	}
}

func TestPositiveAreaDiff(t *testing.T) {
	f := mustStep(t, []float64{0}, []float64{10}, 4)
	g := mustStep(t, []float64{0, 2}, []float64{5, 15}, 4)
	// On [0,2): f-g = 5 (positive). On [2,4): f-g = -5 (clipped to 0).
	got, err := PositiveAreaDiff(f, g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-12 {
		t.Errorf("PositiveAreaDiff = %v, want 10", got)
	}
	// Outside both supports everything is zero.
	got, err = PositiveAreaDiff(f, g, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("area beyond support = %v", got)
	}
	if _, err := PositiveAreaDiff(f, g, 2, 2); err == nil {
		t.Error("empty interval should fail")
	}
}

func TestIntegralOverClipsSupport(t *testing.T) {
	f := mustStep(t, []float64{1}, []float64{10}, 3)
	got, err := IntegralOver(f, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-20) > 1e-12 {
		t.Errorf("IntegralOver = %v, want 20", got)
	}
	got, err = IntegralOver(f, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-12 {
		t.Errorf("clipped IntegralOver = %v, want 10", got)
	}
}

func TestComputeMeasures(t *testing.T) {
	r := mustStep(t, []float64{0, 1}, []float64{10, 20}, 2)
	ideal := mustStep(t, []float64{0}, []float64{15}, 2)
	m, err := Compute(r, ideal, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// [r-R]+ = 0 on [0,1), 5 on [1,2) -> 5. Denominator: 15*2 = 30.
	if math.Abs(m.AreaDiff-5.0/30) > 1e-12 {
		t.Errorf("AreaDiff = %v", m.AreaDiff)
	}
	if m.RateChanges != 1 {
		t.Errorf("RateChanges = %d", m.RateChanges)
	}
	if m.MaxRate != 20 {
		t.Errorf("MaxRate = %v", m.MaxRate)
	}
	if m.StdDev != 5 {
		t.Errorf("StdDev = %v", m.StdDev)
	}
	if _, err := Compute(r, ideal, 0, 0); err == nil {
		t.Error("zero duration should fail")
	}
}

func TestComputeWithShift(t *testing.T) {
	// r equals the ideal curve started 0.5 s EARLIER (as the basic
	// algorithm starts (N−K)τ before ideal smoothing): with advance 0.5,
	// the area difference must vanish.
	ideal := mustStep(t, []float64{1, 2}, []float64{10, 20}, 4)
	r := ideal.Shift(-0.5)
	m, err := Compute(r, ideal, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.AreaDiff > 1e-12 {
		t.Errorf("AreaDiff = %v, want 0", m.AreaDiff)
	}
}

func TestSummarizeDelays(t *testing.T) {
	s := SummarizeDelays([]float64{0.1, 0.2, 0.05}, 0.15)
	if math.Abs(s.Max-0.2) > 1e-12 {
		t.Errorf("Max = %v", s.Max)
	}
	if math.Abs(s.Mean-0.35/3) > 1e-12 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.Violations != 1 {
		t.Errorf("Violations = %d", s.Violations)
	}
	if z := SummarizeDelays(nil, 1); z.Max != 0 || z.Mean != 0 || z.Violations != 0 {
		t.Errorf("empty delays: %+v", z)
	}
}

// Property: PositiveAreaDiff(f,g) - PositiveAreaDiff(g,f) == ∫f - ∫g
// over any window covering both supports.
func TestAreaDiffAntisymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *StepFunc {
			n := rng.Intn(10) + 1
			times := make([]float64, n)
			values := make([]float64, n)
			t := rng.Float64()
			for i := 0; i < n; i++ {
				times[i] = t
				t += rng.Float64() + 0.01
				values[i] = rng.Float64() * 100
			}
			sf, err := NewStepFunc(times, values, t)
			if err != nil {
				panic(err)
			}
			return sf
		}
		a, b := mk(), mk()
		from, to := -1.0, 25.0
		pab, err1 := PositiveAreaDiff(a, b, from, to)
		pba, err2 := PositiveAreaDiff(b, a, from, to)
		ia, err3 := IntegralOver(a, from, to)
		ib, err4 := IntegralOver(b, from, to)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		return math.Abs((pab-pba)-(ia-ib)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Std is invariant under time shift and zero for constants.
func TestStdShiftInvarianceProperty(t *testing.T) {
	f := func(v float64, shift float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.IsNaN(shift) || math.IsInf(shift, 0) {
			return true
		}
		v = math.Mod(math.Abs(v), 1e6)
		shift = math.Mod(shift, 1e3)
		c, err := NewStepFunc([]float64{0}, []float64{v}, 1)
		if err != nil {
			return false
		}
		if c.Std() != 0 {
			return false
		}
		g, err := NewStepFunc([]float64{0, 0.5}, []float64{v, v * 2}, 1)
		if err != nil {
			return false
		}
		return math.Abs(g.Std()-g.Shift(shift).Std()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPositiveAreaDiff(b *testing.B) {
	n := 1000
	times := make([]float64, n)
	values := make([]float64, n)
	for i := 0; i < n; i++ {
		times[i] = float64(i)
		values[i] = float64(i % 17)
	}
	f, _ := NewStepFunc(times, values, float64(n))
	g := f.Shift(0.25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PositiveAreaDiff(f, g, 0, float64(n)); err != nil {
			b.Fatal(err)
		}
	}
}
