// Quickstart: smooth an MPEG picture-size trace with the paper's
// recommended parameters (K=1, H=N, D=0.2 s) and print the four
// smoothness measures.
package main

import (
	"fmt"
	"log"

	"mpegsmooth"
)

func main() {
	// The Driving1 sequence: IBBPBBPBB at 30 pictures/s, two scene
	// changes, I pictures ~10x the size of B pictures.
	tr, err := mpegsmooth.Driving1(270, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d pictures, pattern %s\n", tr.Name, tr.Len(), tr.GOP.Pattern())
	fmt.Printf("mean rate %.2f Mbps; sending each picture in one period would peak at %.2f Mbps\n\n",
		tr.MeanRate()/1e6, tr.PeakPictureRate()/1e6)

	// Smooth with the parameters the paper concludes are the sweet spot.
	sched, err := mpegsmooth.Smooth(tr, mpegsmooth.Config{
		K: 1,        // delay-bound guarantee needs just ONE known picture
		H: tr.GOP.N, // look ahead one pattern; more buys nothing
		D: 0.2,      // 200 ms end-to-end buffering delay bound
	})
	if err != nil {
		log.Fatal(err)
	}

	// Theorem 1 invariants: delay bound, continuous service, rate bounds.
	if err := mpegsmooth.Verify(sched); err != nil {
		log.Fatal(err)
	}

	m, err := mpegsmooth.Evaluate(sched)
	if err != nil {
		log.Fatal(err)
	}
	delays := mpegsmooth.SummarizeDelays(sched)
	fmt.Println("smoothed with K=1, H=N, D=0.2s:")
	fmt.Printf("  max rate        %.2f Mbps (was %.2f unsmoothed)\n", m.MaxRate/1e6, tr.PeakPictureRate()/1e6)
	fmt.Printf("  rate S.D.       %.2f Mbps\n", m.StdDev/1e6)
	fmt.Printf("  rate changes    %d over %d pictures\n", m.RateChanges, tr.Len())
	fmt.Printf("  area difference %.4f vs ideal smoothing\n", m.AreaDiff)
	fmt.Printf("  max delay       %.4f s (bound 0.2, violations %d)\n", delays.Max, delays.Violations)
}
