package mpegsmooth

import (
	"bytes"
	"math"
	"testing"
)

// The root-package tests exercise the public facade end to end — the
// exact surface the examples and downstream users see.

func TestPublicQuickstartFlow(t *testing.T) {
	tr, err := Driving1(135, 1)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Smooth(tr, Config{K: 1, H: tr.GOP.N, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(sched); err != nil {
		t.Fatal(err)
	}
	m, err := Evaluate(sched)
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxRate <= 0 || m.StdDev < 0 || math.IsNaN(m.AreaDiff) {
		t.Fatalf("degenerate measures %+v", m)
	}
	if m.MaxRate >= tr.PeakPictureRate() {
		t.Fatal("smoothing did not reduce the peak")
	}
	d := SummarizeDelays(sched)
	if d.Violations != 0 || d.Max > 0.2+1e-9 {
		t.Fatalf("delay stats %+v", d)
	}
}

func TestPublicTraceRoundTrip(t *testing.T) {
	for _, gen := range []func(int, int64) (*Trace, error){Driving1, Driving2, Tennis, Backyard} {
		tr, err := gen(54, 3)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadTraceCSV(&buf)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name, err)
		}
		if back.Name != tr.Name || back.Len() != tr.Len() {
			t.Fatalf("%s: round trip mangled trace", tr.Name)
		}
	}
}

func TestPublicPaperSequences(t *testing.T) {
	seqs, err := PaperSequences(54, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 4 {
		t.Fatalf("%d sequences", len(seqs))
	}
	want := []string{"Driving1", "Driving2", "Tennis", "Backyard"}
	for i, tr := range seqs {
		if tr.Name != want[i] {
			t.Fatalf("sequence %d is %s, want %s", i, tr.Name, want[i])
		}
	}
}

func TestPublicOfflineAndIdeal(t *testing.T) {
	tr, err := Backyard(96, 2)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := Ideal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(ideal.Rates) != tr.Len() {
		t.Fatal("ideal schedule wrong length")
	}
	off, err := OfflineSmooth(tr, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if v := off.CheckDelayBound(); v != -1 {
		t.Fatalf("offline delay bound violated at %d", v)
	}
}

func TestPublicRawRateFunc(t *testing.T) {
	tr, err := Driving1(27, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := RawRateFunc(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Value during picture 0's period is S_0/tau.
	want := float64(tr.Sizes[0]) / tr.Tau
	if got := f.At(tr.Tau / 2); math.Abs(got-want) > 1e-6 {
		t.Fatalf("raw rate %.1f, want %.1f", got, want)
	}
	// Total integral equals total bits.
	if got := f.Integral(); math.Abs(got-float64(tr.TotalBits())) > 1 {
		t.Fatalf("integral %.0f, want %d", got, tr.TotalBits())
	}
}

func TestPublicCodecFlow(t *testing.T) {
	synth, err := NewSynthesizer(TennisVideoScript(48, 32, 12, 1))
	if err != nil {
		t.Fatal(err)
	}
	var frames []*Frame
	for !synth.Done() {
		frames = append(frames, synth.Next())
	}
	enc, err := NewEncoder(DefaultEncoderConfig(48, 32, GOP{M: 3, N: 9}))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := enc.EncodeSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	info, err := InspectStream(seq.Data)
	if err != nil {
		t.Fatal(err)
	}
	sizes, err := info.SizesInDisplayOrder()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := TraceFromPictureSizes("enc", 1.0/30, GOP{M: 3, N: 9}, sizes)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Smooth(tr, Config{K: 1, H: 9, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(sched); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDecoder().Decode(seq.Data); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyReportsViolations(t *testing.T) {
	tr, err := Driving1(54, 1)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Smooth(tr, Config{K: 1, H: 9, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the schedule and confirm Verify notices.
	sched.Delays[10] = 99
	if err := Verify(sched); err == nil {
		t.Fatal("Verify missed a delay violation")
	}
}

func TestEstimatorAliasesUsable(t *testing.T) {
	tr, err := Driving1(54, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, est := range []Estimator{
		PatternEstimator{},
		TypeMeanEstimator{},
		EWMAEstimator{Alpha: 0.3},
		OracleEstimator{},
	} {
		s, err := Smooth(tr, Config{K: 1, H: 9, D: 0.2, Estimator: est})
		if err != nil {
			t.Fatalf("%s: %v", est.Name(), err)
		}
		if err := Verify(s); err != nil {
			t.Fatalf("%s: %v", est.Name(), err)
		}
	}
}
