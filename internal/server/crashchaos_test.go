package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"mpegsmooth/internal/journal"
	"mpegsmooth/internal/transport"
)

// generation is one server lifetime in a kill-and-restart sequence: the
// server, the journal it recovers from and writes to, and the Serve
// goroutine's exit channel.
type generation struct {
	srv  *Server
	jrnl *journal.Journal
	done chan error
}

// startGeneration opens the journal directory and binds a server to
// addr ("" picks a fresh port). Each generation replays whatever the
// previous one made durable; the caller ends it with kill or shutdown.
func startGeneration(t testing.TB, cfg Config, dir, addr string) (*generation, string) {
	t.Helper()
	return startGenerationJournal(t, cfg, journal.Config{Dir: dir, FlushInterval: 5 * time.Millisecond}, addr)
}

// startGenerationJournal is startGeneration with the journal config
// under test control — the commit-window crash tests shape batching
// with it.
func startGenerationJournal(t testing.TB, cfg Config, jcfg journal.Config, addr string) (*generation, string) {
	t.Helper()
	j, err := journal.Open(jcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Journal = j
	if cfg.TimeScale == 0 {
		cfg.TimeScale = soakTimeScale
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	// The previous generation's Kill already closed its listener, but
	// give a slow kernel a beat to release the port.
	for i := 0; ; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i >= 100 {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return &generation{srv: srv, jrnl: j, done: done}, ln.Addr().String()
}

// kill is the in-process SIGKILL: journal abandoned, connections
// dropped, nothing acked or drained.
func (g *generation) kill(t testing.TB) {
	t.Helper()
	g.srv.Kill()
	if err := <-g.done; err != nil {
		t.Fatalf("Serve after kill: %v", err)
	}
}

// shutdown drains the final generation gracefully and closes its
// journal.
func (g *generation) shutdown(t testing.TB) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := g.srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-g.done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// sendPictures writes payloads[from:to] as framed pictures.
func sendPictures(t testing.TB, fw *transport.FrameWriter, kit *clientKit, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if err := fw.WritePictureHeader(i, kit.tr.TypeOf(i), kit.payloads[i]); err != nil {
			t.Fatalf("picture %d header: %v", i, err)
		}
		if err := fw.WriteChunk(kit.payloads[i]); err != nil {
			t.Fatalf("picture %d payload: %v", i, err)
		}
	}
}

// TestCrashRecoveryResume: a stream is killed mid-flight with the
// server, and the restarted generation — rebuilt purely from the
// journal — answers the sender's resume with the durable watermark and
// prefix hash, accepts the replayed tail, and completes byte-exact with
// exactly one admission across both generations. The HMAC variant also
// proves the chained HMAC-SHA256 prefix state round-trips the journal:
// the recovered server continues the keyed chain mid-stream.
func TestCrashRecoveryResume(t *testing.T) {
	t.Run("fnv", func(t *testing.T) {
		runCrashRecoveryResume(t, transport.IntegrityFNV, nil)
	})
	t.Run("hmac", func(t *testing.T) {
		runCrashRecoveryResume(t, transport.IntegrityHMAC, []byte("crash-test-shared-key"))
	})
}

func runCrashRecoveryResume(t *testing.T, mode transport.IntegrityMode, key []byte) {
	kit := makeClient(t, testTrace(t, 54))
	wantSum, err := transport.PrefixSum(mode, key, kit.payloads, kit.tr.Len())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := Config{
		LinkRate:     2 * kit.hello.PeakRate,
		ReadTimeout:  5 * time.Second,
		ResumeWindow: 20 * time.Second,
		Integrity:    mode,
		IntegrityKey: key,
	}
	gen1, addr := startGeneration(t, cfg, dir, "")

	hello := kit.hello
	hello.Nonce = 0xC0FFEE
	hello.Integrity = mode
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fw := transport.NewFrameWriter(conn)
	fr := transport.NewFrameReader(conn)
	if err := fw.WriteHello(hello); err != nil {
		t.Fatal(err)
	}
	v, err := fr.ReadVerdictTimeout(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsAdmitted() || v.ResumeToken == 0 {
		t.Fatalf("admission verdict %+v", v)
	}
	token := v.ResumeToken

	// Stream the head, then make sure every accepted picture's watermark
	// reached the journal's coalescing buffer before forcing it out —
	// the flush pins the recovery point at exactly `head`.
	const head = 9
	sendPictures(t, fw, kit, 0, head)
	waitFor(t, "head pictures journaled", func() bool {
		return gen1.jrnl.Stats().WatermarksCoalesced >= head
	})
	if err := gen1.jrnl.Flush(); err != nil {
		t.Fatal(err)
	}

	gen1.kill(t)
	gen2, _ := startGeneration(t, cfg, dir, addr)

	snap := gen2.srv.Snapshot()
	if snap.Streams.Recovered != 1 || snap.Streams.RecoveredTombstones != 0 {
		t.Fatalf("recovery counters %+v, want 1 stream, 0 tombstones", snap.Streams)
	}
	waitFor(t, "recovered stream parked", func() bool {
		return gen2.srv.Snapshot().Streams.Parked == 1
	})

	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	fw2 := transport.NewFrameWriter(conn2)
	fr2 := transport.NewFrameReader(conn2)
	if err := fw2.WriteResume(transport.StreamResume{Token: token}); err != nil {
		t.Fatal(err)
	}
	v2, err := fr2.ReadVerdictTimeout(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.IsAdmitted() {
		t.Fatalf("resume verdict %+v", v2)
	}
	if v2.NextIndex != head {
		t.Fatalf("recovered watermark %d, want %d", v2.NextIndex, head)
	}
	headSum, err := transport.PrefixSum(mode, key, kit.payloads, head)
	if err != nil {
		t.Fatal(err)
	}
	if v2.PrefixFNV != headSum {
		t.Fatalf("recovered prefix hash %016x, want %016x", v2.PrefixFNV, headSum)
	}

	sendPictures(t, fw2, kit, head, kit.tr.Len())
	if err := fw2.WriteEnd(); err != nil {
		t.Fatal(err)
	}
	if _, err := fr2.ReadMessageTimeout(10 * time.Second); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("completion ack: %v", err)
	}
	waitFor(t, "completion", func() bool {
		s := gen2.srv.Snapshot()
		return s.Streams.Completed == 1 && s.Streams.Active == 0
	})

	g1, g2 := gen1.srv.Snapshot(), gen2.srv.Snapshot()
	if g1.Streams.Admitted != 1 || g2.Streams.Admitted != 0 {
		t.Errorf("admissions gen1=%d gen2=%d, want exactly one total (recovery re-admitted)",
			g1.Streams.Admitted, g2.Streams.Admitted)
	}
	if g2.Faults.Resumed < 1 {
		t.Errorf("post-restart resume not counted: %+v", g2.Faults)
	}
	if g2.ReservedPeak != 0 {
		t.Errorf("reservation leaked across the crash: %.0f bps", g2.ReservedPeak)
	}
	fin := gen2.srv.FinishedStreams()
	if len(fin) != 1 {
		t.Fatalf("%d finished streams in gen2", len(fin))
	}
	if fin[0].PayloadFNV != wantSum {
		t.Errorf("payload hash %016x, want %016x — bytes lost across the crash",
			fin[0].PayloadFNV, wantSum)
	}
	gen2.shutdown(t)

	// The completion survived gen2 too: a third generation recovers the
	// tombstone, not the stream.
	j, err := journal.Open(journal.Config{Dir: dir, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	st := j.State()
	if len(st.Streams) != 0 || len(st.Tombstones) != 1 {
		t.Errorf("final journal state: %d streams, %d tombstones, want 0/1",
			len(st.Streams), len(st.Tombstones))
	}
}

// TestCrashRecoveryAlreadyComplete: the completion is journaled before
// the ack leaves, so a sender that finished just before the crash and
// resumes against the restarted server gets a verifiable
// AlreadyComplete verdict from the recovered tombstone — never a
// rejection, never a second session.
func TestCrashRecoveryAlreadyComplete(t *testing.T) {
	kit := makeClient(t, testTrace(t, 27))
	wantFNV := payloadFNV(kit.payloads)
	dir := t.TempDir()
	cfg := Config{
		LinkRate:     2 * kit.hello.PeakRate,
		ReadTimeout:  5 * time.Second,
		ResumeWindow: 20 * time.Second,
	}
	gen1, addr := startGeneration(t, cfg, dir, "")

	hello := kit.hello
	hello.Nonce = 0xF00D
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fw := transport.NewFrameWriter(conn)
	fr := transport.NewFrameReader(conn)
	if err := fw.WriteHello(hello); err != nil {
		t.Fatal(err)
	}
	v, err := fr.ReadVerdictTimeout(10 * time.Second)
	if err != nil || !v.IsAdmitted() {
		t.Fatalf("admission: %+v, %v", v, err)
	}
	sendPictures(t, fw, kit, 0, kit.tr.Len())
	if err := fw.WriteEnd(); err != nil {
		t.Fatal(err)
	}
	// The ack confirms the completion record was fsynced (it is written
	// journal-first); from the sender's view this ack is now "lost".
	if _, err := fr.ReadMessageTimeout(10 * time.Second); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("completion ack: %v", err)
	}
	waitFor(t, "completion", func() bool { return gen1.srv.Snapshot().Streams.Completed == 1 })

	gen1.kill(t)
	gen2, _ := startGeneration(t, cfg, dir, addr)
	defer gen2.shutdown(t)

	snap := gen2.srv.Snapshot()
	if snap.Streams.Recovered != 0 || snap.Streams.RecoveredTombstones != 1 {
		t.Fatalf("recovery counters %+v, want 0 streams, 1 tombstone", snap.Streams)
	}

	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := transport.NewFrameWriter(conn2).WriteResume(transport.StreamResume{Token: v.ResumeToken}); err != nil {
		t.Fatal(err)
	}
	v2, err := transport.NewFrameReader(conn2).ReadVerdictTimeout(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Code != transport.AlreadyComplete {
		t.Fatalf("post-restart resume verdict %+v, want already-complete", v2)
	}
	if v2.NextIndex != kit.tr.Len() || v2.PrefixFNV != wantFNV {
		t.Fatalf("tombstone verdict next=%d fnv=%016x, want %d/%016x",
			v2.NextIndex, v2.PrefixFNV, kit.tr.Len(), wantFNV)
	}

	g1, g2 := gen1.srv.Snapshot(), gen2.srv.Snapshot()
	if g1.Streams.Admitted != 1 || g2.Streams.Admitted != 0 {
		t.Errorf("admissions gen1=%d gen2=%d, want exactly one total",
			g1.Streams.Admitted, g2.Streams.Admitted)
	}
	if g2.Streams.AlreadyComplete != 1 {
		t.Errorf("already-complete answers %d, want 1", g2.Streams.AlreadyComplete)
	}
	if g2.ReservedPeak != 0 {
		t.Errorf("tombstone recovery reserved capacity: %.0f bps", g2.ReservedPeak)
	}
}

// TestCrashKillInsideCommitWindow: the server is killed while a
// group-commit window is still open with every client's admission
// record queued and unfsynced. The durability ordering demands that no
// admission verdict escaped (release happens only after the batch
// fsync), so the kill must leave zero acknowledged-then-forgotten
// clients: the next generation recovers nothing, every sender retries
// its identical hello, and each completes with exactly one admission in
// the new generation — byte-exact.
func TestCrashKillInsideCommitWindow(t *testing.T) {
	for _, seed := range crashSoakSeeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runKillInsideCommitWindow(t, seed)
		})
	}
}

func runKillInsideCommitWindow(t *testing.T, seed int64) {
	const clients = 4
	kit := makeClient(t, testTrace(t, 27))
	wantFNV := payloadFNV(kit.payloads)
	dir := t.TempDir()
	cfg := Config{
		LinkRate:     float64(clients+1) * kit.hello.PeakRate,
		ReadTimeout:  5 * time.Second,
		ResumeWindow: 20 * time.Second,
	}
	// A window long enough that the kill always lands inside it, and a
	// byte threshold no admission burst can reach: only the window timer
	// (or the kill) ends the batch.
	gen1, addr := startGenerationJournal(t, cfg, journal.Config{
		Dir:           dir,
		FlushInterval: 5 * time.Millisecond,
		CommitWindow:  30 * time.Second,
		CommitBytes:   1 << 30,
	}, "")

	nonce := func(i int) uint64 { return uint64(seed)<<32 | uint64(0xAD0+i) }
	type outcome struct {
		v   transport.Verdict
		err error
	}
	outcomes := make([]outcome, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		hello := kit.hello
		hello.Nonce = nonce(i)
		if err := transport.NewFrameWriter(conn).WriteHello(hello); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, conn net.Conn) {
			defer wg.Done()
			v, err := transport.NewFrameReader(conn).ReadVerdictTimeout(15 * time.Second)
			outcomes[i] = outcome{v: v, err: err}
		}(i, conn)
	}

	// Every admission is now parked on the open batch, its fsync pending.
	waitFor(t, "admissions queued in the open commit window", func() bool {
		return gen1.jrnl.Stats().CommitPending >= clients
	})
	gen1.kill(t)
	wg.Wait()

	// The fsync never happened, so no verdict may have been released: an
	// Admitted verdict here is an acknowledged admission the journal
	// forgot — exactly the ordering bug this test pins.
	for i, o := range outcomes {
		if o.err == nil && o.v.IsAdmitted() {
			t.Fatalf("client %d holds an admission verdict whose record was never fsynced (verdict %+v)", i, o.v)
		}
	}

	gen2, _ := startGeneration(t, cfg, dir, addr)
	defer gen2.shutdown(t)
	snap := gen2.srv.Snapshot()
	if snap.Streams.Recovered != 0 || snap.Streams.RecoveredTombstones != 0 {
		t.Fatalf("replay after kill-in-window recovered %d streams, %d tombstones; want a clean slate",
			snap.Streams.Recovered, snap.Streams.RecoveredTombstones)
	}

	// Unacknowledged senders retry the identical hello and complete.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	errs := make([]error, clients)
	var cwg sync.WaitGroup
	for i := 0; i < clients; i++ {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			ck := *kit
			ck.hello.Nonce = nonce(i)
			v, err := ck.stream(ctx, addr)
			if err == nil && !v.IsAdmitted() {
				err = fmt.Errorf("retried hello got verdict %+v", v)
			}
			errs[i] = err
		}(i)
	}
	cwg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d retry: %v", i, err)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	waitFor(t, "all retried clients complete", func() bool {
		s := gen2.srv.Snapshot()
		return s.Streams.Completed == clients && s.Streams.Active == 0
	})

	g2 := gen2.srv.Snapshot()
	if g2.Streams.Admitted != clients {
		t.Errorf("gen2 admitted %d sessions for %d clients, want exactly one each",
			g2.Streams.Admitted, clients)
	}
	if g2.ReservedPeak != 0 {
		t.Errorf("reservation leaked: %.0f bps", g2.ReservedPeak)
	}
	for _, fin := range gen2.srv.FinishedStreams() {
		if fin.PayloadFNV != wantFNV {
			t.Errorf("stream %d payload hash %016x, want %016x", fin.ID, fin.PayloadFNV, wantFNV)
		}
	}
}

// crashSoakSeeds are the fixed seeds the kill-and-restart soak replays.
var crashSoakSeeds = []int64{1, 2, 3}

// TestCrashRestartSoak is the kill-and-restart chaos soak: several
// resumable clients stream while the server is repeatedly killed
// mid-stream (journal abandoned, connections dropped) and restarted
// from the journal on the same address. Every client must finish —
// resuming across server generations with byte-exact prefix
// verification at every handshake — the admission count summed across
// generations must be exactly one per client, and no reservation or
// journaled stream may outlive the run.
func TestCrashRestartSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("crash soak skipped in -short mode")
	}
	for _, seed := range crashSoakSeeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runCrashSoak(t, seed)
		})
	}
}

func runCrashSoak(t *testing.T, seed int64) {
	const (
		clients = 5
		kills   = 3
		// crashTimeScale stretches the schedule (relative to the other
		// soaks) so kills land mid-stream rather than after the fact.
		crashTimeScale = 25
	)
	kit := makeClient(t, testTrace(t, 240))
	dir := t.TempDir()
	cfg := Config{
		LinkRate:     float64(clients+1) * kit.hello.PeakRate,
		ReadTimeout:  2 * time.Second,
		ResumeWindow: 30 * time.Second,
		TimeScale:    crashTimeScale,
	}
	gen, addr := startGeneration(t, cfg, dir, "")
	gens := []*generation{gen}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var (
		wg          sync.WaitGroup
		mu          sync.Mutex
		doneClients int
		resumes     int
		already     int
		failures    []error
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs := resumableClient(kit, addr, seed*100+int64(i)+1)
			rs.Sender.TimeScale = crashTimeScale
			rs.MaxAttempts = 60
			res, err := rs.StreamSchedule(ctx, kit.sched, kit.payloads)
			mu.Lock()
			defer mu.Unlock()
			doneClients++
			resumes += res.Resumes
			if res.AlreadyComplete {
				already++
			}
			if err != nil {
				failures = append(failures, fmt.Errorf("client %d: %w", i, err))
			}
		}(i)
	}
	allDone := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return doneClients == clients
	}
	// Total accepted pictures across live and completed streams — the
	// soak's progress clock for choosing kill instants.
	progress := func() int {
		s := gen.srv.Snapshot()
		total := int(s.Streams.Completed) * kit.tr.Len()
		for _, ss := range s.PerStream {
			total += ss.Pictures
		}
		return total
	}

	// The first kill waits until every client holds a delivered verdict
	// (a picture accepted implies the admission was journaled and its
	// verdict received), so a kill can never race an in-flight admission
	// fsync and break the one-admission-per-client ledger.
	waitFor(t, "all clients underway", func() bool {
		s := gen.srv.Snapshot()
		if s.Streams.Admitted != clients || len(s.PerStream) != clients {
			return false
		}
		for _, ss := range s.PerStream {
			if ss.Pictures < 1 {
				return false
			}
		}
		return true
	})
	rng := rand.New(rand.NewSource(seed))
	for k := 0; k < kills && !allDone(); k++ {
		target := progress() + 10 + rng.Intn(40)
		waitFor(t, "progress before kill", func() bool {
			return allDone() || progress() >= target
		})
		if allDone() {
			break
		}
		gen.kill(t)
		gen, _ = startGeneration(t, cfg, dir, addr)
		gens = append(gens, gen)
	}
	wg.Wait()
	for _, err := range failures {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	if len(gens) < 2 {
		t.Fatal("no kill landed mid-stream; soak proved nothing")
	}
	waitFor(t, "final drain", func() bool {
		s := gen.srv.Snapshot()
		return s.Streams.Active == 0 && s.Streams.Parked == 0
	})

	final := gen.srv.Snapshot()
	if final.ReservedPeak != 0 || final.AvailablePeak != final.CapacityBPS {
		t.Errorf("reservations leaked across %d generations: reserved %v, available %v, capacity %v",
			len(gens), final.ReservedPeak, final.AvailablePeak, final.CapacityBPS)
	}
	var admittedTotal, recoveredTotal, resumedTotal, completedTotal int64
	for _, g := range gens {
		s := g.srv.Snapshot()
		admittedTotal += s.Streams.Admitted
		recoveredTotal += s.Streams.Recovered
		resumedTotal += s.Faults.Resumed
		completedTotal += s.Streams.Completed
	}
	if admittedTotal != clients {
		t.Errorf("admitted %d sessions across %d generations for %d clients — crash double-admitted",
			admittedTotal, len(gens), clients)
	}
	if recoveredTotal < 1 {
		t.Errorf("no stream recovered from the journal across %d restarts", len(gens)-1)
	}
	if resumedTotal < 1 || resumes < 1 {
		t.Errorf("no resume observed (server %d, clients %d)", resumedTotal, resumes)
	}
	// Every client succeeded; each success was either a counted server
	// completion or an AlreadyComplete tombstone answer.
	if completedTotal+int64(already) < clients {
		t.Errorf("completions %d + already-complete %d < %d clients", completedTotal, already, clients)
	}

	// Durable ledger agrees: with every client finished, no journaled
	// stream (reservation) survives the run.
	gen.shutdown(t)
	j, err := journal.Open(journal.Config{Dir: dir, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if n := len(j.State().Streams); n != 0 {
		t.Errorf("%d streams still journaled after every client finished — durable reservation leak", n)
	}
}
