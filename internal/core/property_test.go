package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpegsmooth/internal/mpeg"
	"mpegsmooth/internal/trace"
)

// randomTrace draws a random trace with MPEG-like size structure.
func randomTrace(rng *rand.Rand) *trace.Trace {
	gops := []mpeg.GOP{{M: 3, N: 9}, {M: 2, N: 6}, {M: 1, N: 5}, {M: 3, N: 12}, {M: 1, N: 1}}
	g := gops[rng.Intn(len(gops))]
	n := rng.Intn(120) + 1
	sizes := make([]int64, n)
	for j := 0; j < n; j++ {
		var base int64
		switch g.TypeOf(j) {
		case mpeg.TypeI:
			base = 50_000 + int64(rng.Intn(400_000))
		case mpeg.TypeP:
			base = 20_000 + int64(rng.Intn(150_000))
		default:
			base = 2_000 + int64(rng.Intn(60_000))
		}
		sizes[j] = base
	}
	return &trace.Trace{Name: "random", Tau: 1.0 / 30, GOP: g, Sizes: sizes}
}

// randomConfig draws a valid configuration with K >= 1.
func randomConfig(rng *rand.Rand, tr *trace.Trace) Config {
	k := rng.Intn(tr.GOP.N) + 1
	slack := rng.Float64() * 0.3
	cfg := Config{
		K: k,
		H: rng.Intn(2*tr.GOP.N) + 1,
		D: float64(k+1)*tr.Tau + slack,
	}
	if rng.Intn(2) == 1 {
		cfg.Variant = MovingAverage
	}
	switch rng.Intn(4) {
	case 0:
		cfg.Estimator = PatternEstimator{}
	case 1:
		cfg.Estimator = TypeMeanEstimator{}
	case 2:
		cfg.Estimator = EWMAEstimator{Alpha: rng.Float64()}
	case 3:
		cfg.Estimator = OracleEstimator{}
	}
	return cfg
}

// TestTheorem1Property is the paper's Theorem 1 as a property test: for
// ANY trace, ANY K >= 1, ANY D >= (K+1)τ, ANY H >= 1, ANY estimator and
// variant, the algorithm satisfies the delay bound, continuous service,
// and the per-picture rate bounds.
func TestTheorem1Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		cfg := randomConfig(rng, tr)
		s, err := Smooth(tr, cfg)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if v := s.CheckDelayBound(); v != -1 {
			t.Logf("seed %d cfg %+v: delay bound violated at %d (%.6f > %.6f)",
				seed, cfg, v, s.Delays[v], cfg.D)
			return false
		}
		if v := s.CheckContinuousService(); v != -1 {
			t.Logf("seed %d cfg %+v: continuous service violated at %d", seed, cfg, v)
			return false
		}
		if v := s.CheckRatesWithinBounds(); v != -1 {
			t.Logf("seed %d cfg %+v: rate bounds violated at %d (r=%.2f not in [%.2f, %.2f])",
				seed, cfg, v, s.Rates[v], s.LowerBound[v], s.UpperBound[v])
			return false
		}
		if v := s.CheckConservation(); v != -1 {
			t.Logf("seed %d cfg %+v: conservation violated at %d", seed, cfg, v)
			return false
		}
		if v := s.CheckCausality(); v != -1 {
			t.Logf("seed %d cfg %+v: causality violated at %d", seed, cfg, v)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCorollary1Property: the Theorem 1 bounds never cross when
// D >= (K+1)τ — a valid rate always exists (Corollary 1).
func TestCorollary1Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		cfg := randomConfig(rng, tr)
		s, err := Smooth(tr, cfg)
		if err != nil {
			return false
		}
		for j := range s.Rates {
			if s.LowerBound[j] > s.UpperBound[j]*(1+1e-9) {
				t.Logf("seed %d: bounds crossed at %d: %.2f > %.2f",
					seed, j, s.LowerBound[j], s.UpperBound[j])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestOfflineProperty: the taut-string schedule satisfies causality and
// the delay bound on arbitrary traces, and its peak rate never exceeds
// the online algorithm's.
func TestOfflineProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		D := float64(2)*tr.Tau + rng.Float64()*0.3
		o, err := OfflineSmooth(tr, D)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if o.CheckDelayBound() != -1 || o.CheckCausality() != -1 {
			t.Logf("seed %d: offline constraints violated", seed)
			return false
		}
		s, err := Smooth(tr, Config{K: 1, H: tr.GOP.N, D: D})
		if err != nil {
			return false
		}
		f2, err := s.RateFunc()
		if err != nil {
			return false
		}
		if o.PeakRate() > f2.Max()*(1+1e-6) {
			t.Logf("seed %d: offline peak %.1f > online %.1f", seed, o.PeakRate(), f2.Max())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestIdealProperty: ideal smoothing transmits every bit and each block's
// rate equals its pattern average.
func TestIdealProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		s, err := Ideal(tr)
		if err != nil {
			return false
		}
		if s.CheckConservation() != -1 {
			return false
		}
		N := tr.GOP.N
		for from := 0; from < tr.Len(); from += N {
			to := from + N
			if to > tr.Len() {
				to = tr.Len()
			}
			var sum float64
			for j := from; j < to; j++ {
				sum += float64(tr.Sizes[j])
			}
			want := sum / (float64(to-from) * tr.Tau)
			for j := from; j < to; j++ {
				if d := s.Rates[j] - want; d > 1e-6 || d < -1e-6 {
					return false
				}
			}
			// No picture in the block departs before the whole block has
			// arrived... the block cannot START before; departures follow.
			if s.Start[from] < float64(to)*tr.Tau-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
