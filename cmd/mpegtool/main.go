// Command mpegtool encodes synthetic video with the simplified MPEG-1
// style codec and inspects coded streams — the Section 2 "transport
// designer's view" of an MPEG bit stream.
//
// Usage:
//
//	mpegtool encode -script driving -w 160 -h 112 -frames 54 -o out.m1s
//	mpegtool inspect out.m1s
//	mpegtool decode out.m1s            # decode and report PSNR vs source
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"mpegsmooth"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "encode":
		err = encode(os.Args[2:])
	case "inspect":
		err = inspect(os.Args[2:])
	case "decode":
		err = decode(os.Args[2:])
	case "corrupt":
		err = corrupt(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpegtool: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mpegtool encode|inspect|decode|corrupt [flags]")
	os.Exit(2)
}

func synthesize(script string, w, h, frames int, seed int64) ([]*mpegsmooth.Frame, error) {
	var sc mpegsmooth.Script
	switch script {
	case "driving":
		sc = mpegsmooth.DrivingVideoScript(w, h, frames, seed)
	case "tennis":
		sc = mpegsmooth.TennisVideoScript(w, h, frames, seed)
	case "backyard":
		sc = mpegsmooth.BackyardVideoScript(w, h, frames, seed)
	default:
		return nil, fmt.Errorf("unknown script %q (driving, tennis, backyard)", script)
	}
	synth, err := mpegsmooth.NewSynthesizer(sc)
	if err != nil {
		return nil, err
	}
	var out []*mpegsmooth.Frame
	for !synth.Done() {
		out = append(out, synth.Next())
	}
	return out, nil
}

func encode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	var (
		script = fs.String("script", "driving", "content script: driving, tennis, backyard")
		w      = fs.Int("w", 160, "frame width (multiple of 16)")
		h      = fs.Int("h", 112, "frame height (multiple of 16)")
		frames = fs.Int("frames", 54, "number of frames")
		seed   = fs.Int64("seed", 1, "content seed")
		m      = fs.Int("M", 3, "distance between reference pictures")
		n      = fs.Int("N", 9, "distance between I pictures")
		out    = fs.String("o", "out.m1s", "output stream file")
	)
	fs.Parse(args)

	vf, err := synthesize(*script, *w, *h, *frames, *seed)
	if err != nil {
		return err
	}
	enc, err := mpegsmooth.NewEncoder(mpegsmooth.DefaultEncoderConfig(*w, *h, mpegsmooth.GOP{M: *m, N: *n}))
	if err != nil {
		return err
	}
	seq, err := enc.EncodeSequence(vf)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, seq.Data, 0o644); err != nil {
		return err
	}
	var iBits, pBits, bBits, iN, pN, bN int64
	for _, p := range seq.Pictures {
		switch p.Type {
		case mpegsmooth.TypeI:
			iBits += p.Bits
			iN++
		case mpegsmooth.TypeP:
			pBits += p.Bits
			pN++
		default:
			bBits += p.Bits
			bN++
		}
	}
	fmt.Printf("encoded %d pictures (%dx%d, pattern %s) to %s: %d bytes\n",
		len(seq.Pictures), *w, *h, (mpegsmooth.GOP{M: *m, N: *n}).Pattern(), *out, len(seq.Data))
	if iN > 0 {
		fmt.Printf("  I mean %d bits (%d pictures)\n", iBits/iN, iN)
	}
	if pN > 0 {
		fmt.Printf("  P mean %d bits (%d pictures)\n", pBits/pN, pN)
	}
	if bN > 0 {
		fmt.Printf("  B mean %d bits (%d pictures)\n", bBits/bN, bN)
	}
	return nil
}

func inspect(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("inspect needs a stream file")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	info, err := mpegsmooth.InspectStream(data)
	if err != nil {
		return err
	}
	fmt.Printf("sequence: %dx%d @ %.4g pictures/s\n", info.Header.Width, info.Header.Height, info.Header.PictureRate)
	fmt.Printf("pictures %d, groups %d, slices %d, overhead %d bits, total %d bits\n",
		len(info.Pictures), info.GroupCount, info.SliceCount, info.OverheadBits, info.TotalBits)
	fmt.Println("\ntransmit  display  type     bits")
	for _, p := range info.Pictures {
		fmt.Printf("%8d  %7d    %s   %8d\n", p.TransmitPos, p.DisplayIdx, p.Type, p.Bits)
	}
	return nil
}

func decode(args []string) error {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	dumpDir := fs.String("dump", "", "directory to write decoded luma frames as PGM")
	fs.Parse(args)
	if fs.NArg() < 1 {
		return fmt.Errorf("decode needs a stream file")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	dec := mpegsmooth.NewDecoder()
	dec.Resilient = true
	out, err := dec.Decode(data)
	if err != nil {
		return err
	}
	fmt.Printf("decoded %d pictures (%dx%d), %d slices lost\n",
		len(out.Frames), out.Header.Width, out.Header.Height, out.LostSlices)
	if *dumpDir != "" {
		if err := os.MkdirAll(*dumpDir, 0o755); err != nil {
			return err
		}
		for i, f := range out.Frames {
			path := fmt.Sprintf("%s/frame%04d.pgm", *dumpDir, i)
			if err := writePGM(path, f); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %d PGM frames to %s\n", len(out.Frames), *dumpDir)
	}
	return nil
}

// writePGM dumps a frame's luma plane as a binary PGM image.
func writePGM(path string, f *mpegsmooth.Frame) error {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "P5\n%d %d\n255\n", f.W, f.H)
	buf.Write(f.Y)
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// corrupt reproduces the paper's Section 2 error study: flip bits in the
// coded stream and report how the decoder's slice-level
// resynchronization contains the damage.
func corrupt(args []string) error {
	fs := flag.NewFlagSet("corrupt", flag.ExitOnError)
	var (
		flips = fs.Int("flips", 8, "number of corrupted bytes")
		seed  = fs.Int64("seed", 1, "corruption placement seed")
	)
	fs.Parse(args)
	if fs.NArg() < 1 {
		return fmt.Errorf("corrupt needs a stream file")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	info, err := mpegsmooth.InspectStream(data)
	if err != nil {
		return err
	}
	// Reference decode of the clean stream.
	clean, err := mpegsmooth.NewDecoder().Decode(data)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	mangled := append([]byte(nil), data...)
	// Corrupt only picture payloads (headers would simulate a different,
	// catastrophic failure class the paper also notes).
	for i := 0; i < *flips; i++ {
		p := info.Pictures[rng.Intn(len(info.Pictures))]
		off := p.BitOffset/8 + 8 + int64(rng.Intn(int(p.Bits/8-16)))
		mangled[off] ^= byte(rng.Intn(255) + 1)
	}
	dec := mpegsmooth.NewDecoder()
	dec.Resilient = true
	out, err := dec.Decode(mangled)
	if err != nil {
		return err
	}
	fmt.Printf("corrupted %d bytes across %d pictures\n", *flips, len(info.Pictures))
	fmt.Printf("resilient decode: %d/%d pictures recovered, %d slices lost to resynchronization\n",
		len(out.Frames), len(clean.Frames), out.LostSlices)
	return nil
}
