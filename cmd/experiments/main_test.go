package main

import (
	"os"
	"path/filepath"
	"testing"

	"mpegsmooth"
	"mpegsmooth/internal/experiments"
)

func TestRunEveryFigure(t *testing.T) {
	dir := t.TempDir()
	const pics = 54 // small but covers several patterns
	for _, fig := range []string{"3", "4", "5", "6", "7", "8", "extA", "extC", "extD", "extF"} {
		if err := runFigure(fig, dir, pics, 7); err != nil {
			t.Fatalf("figure %s: %v", fig, err)
		}
	}
	// Every figure leaves at least one CSV behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 10 {
		t.Fatalf("only %d result files written", len(entries))
	}
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", e.Name())
		}
	}
}

func TestRunExtB(t *testing.T) {
	// Ext B simulates a multiplexer; run it separately (slower).
	dir := t.TempDir()
	if err := runFigure("extB", dir, 54, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "extB_multiplexing.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestRunExtE(t *testing.T) {
	dir := t.TempDir()
	if err := runFigure("extE", dir, 54, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "extE_pipeline.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweepWithPolicyAndParallelism(t *testing.T) {
	dir := t.TempDir()
	opts := []experiments.SweepOption{
		experiments.WithPolicy(mpegsmooth.MinimumVariability{}),
		experiments.WithParallelism(8),
	}
	if err := runFigure("6", dir, 54, 7, opts...); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig6_sweep_D.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownFigure(t *testing.T) {
	if err := runFigure("42", t.TempDir(), 54, 7); err == nil {
		t.Fatal("unknown figure should fail")
	}
}
