package transport

import (
	"context"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"
)

func TestBackoffDelayGrowsAndCaps(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: 0}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Delay(i+1, nil); got != w {
			t.Fatalf("attempt %d: delay %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffJitterBounded(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		d := b.Delay(1, rng)
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("jittered delay %v outside [50ms, 100ms]", d)
		}
	}
}

// TestResumableSenderSurvivesMidStreamReset: a toy server admits the
// stream, abruptly resets the connection after a few pictures, then
// accepts the resume handshake and the replayed remainder. The sender
// must deliver every picture exactly once across the two connections.
func TestResumableSenderSurvivesMidStreamReset(t *testing.T) {
	sched, payloads := testSchedule(t, 18)
	const token = 777
	const killAfter = 5

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var (
		mu       sync.Mutex
		got      = map[int][]byte{} // index → payload
		resumes  int
		sessions int
	)
	// prefix mirrors the real server's running accepted-prefix FNV-1a;
	// call under mu.
	prefix := func(n int) uint64 {
		ordered := make([][]byte, n)
		for i := 0; i < n; i++ {
			ordered[i] = got[i]
		}
		return prefixFNV(ordered, n)
	}
	ended := make(chan struct{}) // closed when the server reads the end marker
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			fr := NewFrameReader(conn)
			fw := NewFrameWriter(conn)
			msg, err := fr.ReadMessage()
			if err != nil {
				conn.Close()
				continue
			}
			mu.Lock()
			sessions++
			next := len(got)
			pfx := prefix(next)
			mu.Unlock()
			switch m := msg.(type) {
			case *StreamHello:
				fw.WriteVerdict(Verdict{Code: Admitted, Available: 1e6, ResumeToken: token, PrefixFNV: pfx})
			case *StreamResume:
				if m.Token != token {
					fw.WriteVerdict(Verdict{Code: RejectedMalformed, Available: 1e6})
					conn.Close()
					continue
				}
				mu.Lock()
				resumes++
				mu.Unlock()
				fw.WriteVerdict(Verdict{Code: Admitted, Available: 1e6, ResumeToken: token, NextIndex: next, PrefixFNV: pfx})
			}
			func() {
				defer conn.Close()
				for {
					msg, err := fr.ReadMessage()
					if err == ErrClosed {
						fw.WriteEnd() // completion ack
						close(ended)
						return
					}
					if err != nil {
						return
					}
					if pf, ok := msg.(*PictureFrame); ok {
						mu.Lock()
						got[pf.Index] = append([]byte(nil), pf.Payload...)
						n := len(got)
						firstSession := sessions == 1
						mu.Unlock()
						if firstSession && n >= killAfter {
							return // abrupt reset mid-stream
						}
					}
				}
			}()
		}
	}()

	rs := &ResumableSender{
		Sender: Sender{TimeScale: 200, Chunk: 512},
		Dial: func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", ln.Addr().String())
		},
		Hello:       validHello(),
		Backoff:     Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
		MaxAttempts: 10,
		Seed:        1,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := rs.StreamSchedule(ctx, sched, payloads)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if res.Resumes < 1 {
		t.Fatalf("expected at least one resume, got %d", res.Resumes)
	}
	if res.Verdict.ResumeToken != token {
		t.Fatalf("verdict token %d", res.Verdict.ResumeToken)
	}
	// The sender returns when its last write lands in the socket buffer;
	// wait for the server to actually drain through the end marker.
	select {
	case <-ended:
	case <-time.After(10 * time.Second):
		t.Fatal("server never saw the end marker")
	}

	mu.Lock()
	defer mu.Unlock()
	if resumes < 1 {
		t.Fatalf("server saw %d resumes", resumes)
	}
	if len(got) != len(payloads) {
		t.Fatalf("server received %d distinct pictures, want %d", len(got), len(payloads))
	}
	for i, p := range payloads {
		if PayloadSum64(got[i]) != PayloadSum64(p) {
			t.Fatalf("picture %d corrupted or missing", i)
		}
	}
}

// TestResumableSenderGivesUpAfterMaxAttempts: with nothing listening,
// the loop must stop at MaxAttempts, not spin forever.
func TestResumableSenderGivesUpAfterMaxAttempts(t *testing.T) {
	sched, payloads := testSchedule(t, 9)
	attempts := 0
	rs := &ResumableSender{
		Sender: Sender{TimeScale: 1000},
		Dial: func(ctx context.Context) (net.Conn, error) {
			attempts++
			return nil, &net.OpError{Op: "dial", Err: context.DeadlineExceeded}
		},
		Hello:       validHello(),
		Backoff:     Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
		MaxAttempts: 3,
		Seed:        1,
	}
	_, err := rs.StreamSchedule(context.Background(), sched, payloads)
	if err == nil {
		t.Fatal("stream with no server should fail")
	}
	if attempts != 3 {
		t.Fatalf("dialed %d times, want 3", attempts)
	}
}

// TestResumableSenderTerminalOnRejection: an admission rejection is not
// a fault — no retries, immediate error with the verdict preserved.
func TestResumableSenderTerminalOnRejection(t *testing.T) {
	sched, payloads := testSchedule(t, 9)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		fr := NewFrameReader(conn)
		fw := NewFrameWriter(conn)
		if _, err := fr.ReadMessage(); err != nil {
			return
		}
		fw.WriteVerdict(Verdict{Code: RejectedCapacity, Available: 12345})
	}()
	dials := 0
	rs := &ResumableSender{
		Sender: Sender{TimeScale: 1000},
		Dial: func(ctx context.Context) (net.Conn, error) {
			dials++
			var d net.Dialer
			return d.DialContext(ctx, "tcp", ln.Addr().String())
		},
		Hello: validHello(),
		Seed:  1,
	}
	res, err := rs.StreamSchedule(context.Background(), sched, payloads)
	if err == nil {
		t.Fatal("rejected stream should error")
	}
	if dials != 1 {
		t.Fatalf("rejection retried: %d dials", dials)
	}
	if res.Verdict.Code != RejectedCapacity || res.Verdict.Available != 12345 {
		t.Fatalf("verdict not preserved: %+v", res.Verdict)
	}
}
