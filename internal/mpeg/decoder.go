package mpeg

import (
	"errors"
	"fmt"
	"sort"

	"mpegsmooth/internal/bitio"
	"mpegsmooth/internal/mpeg/dct"
	"mpegsmooth/internal/mpeg/vlc"
	"mpegsmooth/internal/video"
)

// Decoder parses and reconstructs a simplified MPEG sequence.
type Decoder struct {
	// Resilient, when set, makes the decoder skip damaged slices by
	// scanning for the next start code instead of failing — the
	// resynchronization behaviour Section 2 of the paper describes
	// ("whenever errors are detected, the decoder can skip ahead to the
	// next slice start code — or picture start code — and resume decoding
	// from there. One or more slices would be missing from the picture").
	Resilient bool

	coder blockCoder
}

// NewDecoder returns a strict decoder; set Resilient for error recovery.
func NewDecoder() *Decoder {
	return &Decoder{coder: newBlockCoder()}
}

// DecodedSequence is the result of decoding a stream.
type DecodedSequence struct {
	Header   SequenceHeader
	Frames   []*video.Frame // display order
	Pictures []PictureInfo  // transmission order
	// LostSlices counts slices skipped due to bitstream errors (only in
	// resilient mode).
	LostSlices int
	// SkippedBroken counts B pictures dropped at a random-access entry
	// point because their forward reference belongs to the previous
	// group of pictures (the "broken link" condition).
	SkippedBroken int
}

// Decode parses the complete stream and reconstructs every picture.
func (dec *Decoder) Decode(data []byte) (*DecodedSequence, error) {
	return dec.decode(data, 0)
}

// DecodeFromGroup begins decoding at the group-th group of pictures
// (0-based) — the random access the repeated sequence headers enable.
// Leading B pictures whose forward reference lies in the previous group
// are dropped and counted in SkippedBroken.
func (dec *Decoder) DecodeFromGroup(data []byte, group int) (*DecodedSequence, error) {
	if group < 0 {
		return nil, fmt.Errorf("mpeg: negative group %d", group)
	}
	if group == 0 {
		return dec.decode(data, 0)
	}
	r := bitio.NewReader(data)
	seen := 0
	for {
		code, err := r.NextStartCode()
		if err != nil {
			return nil, fmt.Errorf("mpeg: stream has fewer than %d groups", group+1)
		}
		at := r.BitPos()
		if _, err := r.ReadStartCode(); err != nil {
			return nil, err
		}
		if code == GroupStartCode {
			if seen == group {
				// Prefer an immediately preceding repeated sequence
				// header when the encoder wrote one.
				start := at
				if hdrAt, ok := precedingSequenceHeader(data, at); ok {
					start = hdrAt
				}
				return dec.decode(data, start)
			}
			seen++
		}
	}
}

// precedingSequenceHeader reports the bit offset of a sequence header
// that directly precedes the start code at bit offset at (with nothing
// but the fixed-size header body between them).
func precedingSequenceHeader(data []byte, at int64) (int64, bool) {
	// Sequence header: 32-bit start code + 47 bits of fields + alignment
	// padding = 80 bits.
	const hdrBits = 80
	if at < hdrBits {
		return 0, false
	}
	r := bitio.NewReader(data)
	if err := r.SeekBit(at - hdrBits); err != nil {
		return 0, false
	}
	code, err := r.ReadStartCode()
	if err != nil || code != SequenceHeaderCod {
		return 0, false
	}
	return at - hdrBits, true
}

// decode runs the top-level parse loop. startBit, when nonzero, is a
// random-access entry point: the sequence header is taken from the
// stream start if none is present at the entry point, and broken-link B
// pictures are dropped.
func (dec *Decoder) decode(data []byte, startBit int64) (*DecodedSequence, error) {
	r := bitio.NewReader(data)
	code, err := r.ReadStartCode()
	if err != nil {
		return nil, fmt.Errorf("mpeg: no sequence header: %w", err)
	}
	if code != SequenceHeaderCod {
		return nil, fmt.Errorf("mpeg: stream starts with %#02x, want sequence header", code)
	}
	hdr, err := readSequenceHeader(r)
	if err != nil {
		return nil, err
	}
	randomAccess := startBit > 0
	if randomAccess {
		if err := r.SeekBit(startBit); err != nil {
			return nil, err
		}
	}
	out := &DecodedSequence{Header: hdr}

	type decoded struct {
		displayIdx int
		frame      *video.Frame
	}
	var pictures []decoded
	var refs refPair
	pos := 0

	for {
		code, err := r.NextStartCode()
		if err != nil {
			if errors.Is(err, bitio.ErrNoStartCode) {
				break
			}
			return nil, err
		}
		if _, err := r.ReadStartCode(); err != nil {
			return nil, err
		}
		switch {
		case code == SequenceEndCode:
			goto done
		case code == SequenceHeaderCod:
			// Repeated sequence header (random access aid); re-parse and
			// check consistency.
			h2, err := readSequenceHeader(r)
			if err != nil {
				return nil, err
			}
			if h2.Width != hdr.Width || h2.Height != hdr.Height {
				return nil, fmt.Errorf("mpeg: repeated sequence header changes dimensions")
			}
		case code == GroupStartCode:
			if _, err := readGroupHeader(r); err != nil {
				return nil, err
			}
		case code == PictureStartCode:
			start := r.BitPos() - 32
			ph, err := readPictureHeader(r)
			if err != nil {
				return nil, err
			}
			maxIdx := 0
			for _, d := range pictures {
				if d.displayIdx > maxIdx {
					maxIdx = d.displayIdx
				}
			}
			displayIdx := resolveTemporalRef(ph.TemporalRef, maxIdx)
			if randomAccess && len(pictures) == 0 {
				// Anchor temporal references at the entry group.
				displayIdx = ph.TemporalRef
			}
			if randomAccess && ph.Type == TypeB && refs.past == nil && displayIdx < refs.futureIdx {
				// Broken link: this B predicts from the group we skipped.
				out.SkippedBroken++
				if err := skimPictureBody(r); err != nil {
					return nil, err
				}
				continue
			}
			fwd, bwd, err := refs.forPicture(ph.Type, displayIdx)
			if err != nil {
				return nil, err
			}
			frame := video.MustNewFrame(hdr.Width, hdr.Height)
			lost, err := dec.decodePictureBody(r, frame, ph.Type, fwd, bwd)
			if err != nil {
				return nil, fmt.Errorf("mpeg: picture at display %d: %w", displayIdx, err)
			}
			out.LostSlices += lost
			pictures = append(pictures, decoded{displayIdx, frame})
			out.Pictures = append(out.Pictures, PictureInfo{
				DisplayIdx:  displayIdx,
				TransmitPos: pos,
				Type:        ph.Type,
				BitOffset:   start,
				Bits:        0, // filled below from boundaries
			})
			pos++
			if ph.Type != TypeB {
				refs.push(frame, displayIdx)
			}
		default:
			return nil, fmt.Errorf("mpeg: unexpected start code %#02x at top level", code)
		}
	}
done:
	fillPictureSizes(out.Pictures, int64(len(data))*8)
	sort.Slice(pictures, func(i, j int) bool { return pictures[i].displayIdx < pictures[j].displayIdx })
	for _, p := range pictures {
		p.frame.DisplayIdx = p.displayIdx
		out.Frames = append(out.Frames, p.frame)
	}
	return out, nil
}

// skimPictureBody advances the reader past a picture's slices without
// decoding them.
func skimPictureBody(r *bitio.Reader) error {
	for {
		save := r.BitPos()
		code, err := r.NextStartCode()
		if err != nil {
			if errors.Is(err, bitio.ErrNoStartCode) {
				return nil
			}
			return err
		}
		if !IsSliceStartCode(code) {
			return r.SeekBit(save)
		}
		if _, err := r.ReadStartCode(); err != nil {
			return err
		}
	}
}

// resolveTemporalRef maps a 10-bit temporal reference to a full display
// index, assuming pictures arrive within ±512 of the running maximum
// maxIdx of indices decoded so far.
func resolveTemporalRef(tr, maxIdx int) int {
	base := maxIdx - maxIdx%1024
	candidates := []int{base + tr - 1024, base + tr, base + tr + 1024}
	best := candidates[0]
	for _, c := range candidates[1:] {
		if c >= 0 && absInt(c-maxIdx) < absInt(best-maxIdx) {
			best = c
		}
	}
	if best < 0 {
		best = tr
	}
	return best
}

// fillPictureSizes computes each picture's coded size as the distance from
// its start code to the next picture-level boundary. The last picture runs
// to the sequence end code (assumed 32 bits before stream end when
// present) — callers that need exact per-picture sizes should prefer the
// encoder's PictureInfo or Inspect, which use the same rule.
func fillPictureSizes(pics []PictureInfo, streamBits int64) {
	for i := range pics {
		end := streamBits
		if i+1 < len(pics) {
			end = pics[i+1].BitOffset
		}
		pics[i].Bits = end - pics[i].BitOffset
	}
}

// decodePictureBody decodes all slices of one picture into frame.
// It returns the number of slices lost to errors (resilient mode).
func (dec *Decoder) decodePictureBody(r *bitio.Reader, frame *video.Frame, t PictureType, fwd, bwd *video.Frame) (lost int, err error) {
	mbW, mbH := frame.MacroblocksX(), frame.MacroblocksY()
	covered := make([]bool, mbH)
	for {
		// Peek at the next start code; only slices belong to this picture.
		save := r.BitPos()
		code, err := r.NextStartCode()
		if err != nil {
			if errors.Is(err, bitio.ErrNoStartCode) {
				break
			}
			return lost, err
		}
		if !IsSliceStartCode(code) {
			r.SeekBit(save)
			break
		}
		if _, err := r.ReadStartCode(); err != nil {
			return lost, err
		}
		sh, err := readSliceHeader(r, code)
		if err != nil || sh.Row >= mbH {
			if dec.Resilient {
				lost++
				continue
			}
			if err == nil {
				err = fmt.Errorf("mpeg: slice row %d out of range", sh.Row)
			}
			return lost, err
		}
		if err := dec.decodeSlice(r, frame, t, fwd, bwd, sh, mbW); err != nil {
			if dec.Resilient {
				lost++
				// Conceal the damaged row: copy from the forward reference
				// if available, otherwise leave mid-gray.
				concealRow(frame, fwd, sh.Row)
				continue
			}
			return lost, fmt.Errorf("slice row %d: %w", sh.Row, err)
		}
		covered[sh.Row] = true
	}
	if dec.Resilient {
		for row, ok := range covered {
			if !ok {
				concealRow(frame, fwd, row)
			}
		}
	}
	return lost, nil
}

// decodeSlice decodes one macroblock row.
func (dec *Decoder) decodeSlice(r *bitio.Reader, frame *video.Frame, t PictureType, fwd, bwd *video.Frame, sh SliceHeader, mbW int) error {
	var preds dcPredictors
	preds.reset()
	lastCol := -1
	for lastCol < mbW-1 {
		inc, err := vlc.ReadUE(r)
		if err != nil {
			return err
		}
		col := lastCol + 1 + int(inc)
		if col >= mbW {
			return fmt.Errorf("mpeg: macroblock address %d beyond row width %d", col, mbW)
		}
		// Reconstruct skipped macroblocks as zero-motion forward copies.
		for c := lastCol + 1; c < col; c++ {
			if fwd == nil {
				return errors.New("mpeg: skipped macroblock without reference")
			}
			copyMacroblock(frame, fwd, c, sh.Row)
		}
		if col > lastCol+1 {
			preds.reset()
		}
		modeBits, err := r.ReadBits(2)
		if err != nil {
			return err
		}
		mode := mbMode(modeBits)
		if err := dec.decodeMB(r, frame, t, fwd, bwd, col, sh.Row, sh.QuantScale, mode, &preds); err != nil {
			return err
		}
		lastCol = col
	}
	return nil
}

// decodeMB decodes one coded macroblock.
func (dec *Decoder) decodeMB(r *bitio.Reader, frame *video.Frame, t PictureType, fwd, bwd *video.Frame, col, row int, scale int32, mode mbMode, preds *dcPredictors) error {
	if mode == mbIntra {
		return dec.decodeIntraMB(r, frame, col, row, scale, preds)
	}
	if t == TypeI {
		return fmt.Errorf("mpeg: non-intra macroblock in I picture")
	}
	var mvf, mvb MotionVector
	if mode == mbForward || mode == mbInterp {
		x, err := vlc.ReadSE(r)
		if err != nil {
			return err
		}
		y, err := vlc.ReadSE(r)
		if err != nil {
			return err
		}
		mvf = MotionVector{int(x), int(y)}
		if fwd == nil {
			return errors.New("mpeg: forward prediction without reference")
		}
	}
	if mode == mbBackward || mode == mbInterp {
		x, err := vlc.ReadSE(r)
		if err != nil {
			return err
		}
		y, err := vlc.ReadSE(r)
		if err != nil {
			return err
		}
		mvb = MotionVector{int(x), int(y)}
		if bwd == nil {
			return errors.New("mpeg: backward prediction without reference")
		}
	}
	if err := validateMV(frame, col, row, mode, mvf, mvb); err != nil {
		return err
	}

	var predY [256]int32
	var predCb, predCr [64]int32
	buildPrediction(&predY, &predCb, &predCr, mode, mvf, mvb, fwd, bwd, col, row)

	cbp, err := r.ReadBits(6)
	if err != nil {
		return err
	}
	x0, y0 := col*16, row*16
	cw := frame.ChromaW()
	cx, cy := col*8, row*8
	var rec dct.Block
	for b := 0; b < 4; b++ {
		if cbp&(1<<(5-b)) != 0 {
			if err := dec.coder.decodeResidualBlock(r, scale, &rec); err != nil {
				return err
			}
		} else {
			rec = dct.Block{}
		}
		bx, by := (b%2)*8, (b/2)*8
		for dy := 0; dy < 8; dy++ {
			i := (y0+by+dy)*frame.W + x0 + bx
			for dx := 0; dx < 8; dx++ {
				frame.Y[i+dx] = clampPel(predY[(by+dy)*16+bx+dx] + rec[dy*8+dx])
			}
		}
	}
	for pi, plane := range [][]uint8{frame.Cb, frame.Cr} {
		pred := &predCb
		if pi == 1 {
			pred = &predCr
		}
		if cbp&(1<<(1-pi)) != 0 {
			if err := dec.coder.decodeResidualBlock(r, scale, &rec); err != nil {
				return err
			}
		} else {
			rec = dct.Block{}
		}
		for dy := 0; dy < 8; dy++ {
			i := (cy+dy)*cw + cx
			for dx := 0; dx < 8; dx++ {
				plane[i+dx] = clampPel(pred[dy*8+dx] + rec[dy*8+dx])
			}
		}
	}
	preds.reset()
	return nil
}

// decodeIntraMB decodes the six blocks of an intra macroblock.
func (dec *Decoder) decodeIntraMB(r *bitio.Reader, frame *video.Frame, col, row int, scale int32, preds *dcPredictors) error {
	x0, y0 := col*16, row*16
	var rec dct.Block
	for b := 0; b < 4; b++ {
		var err error
		preds.y, err = dec.coder.decodeIntraBlock(r, scale, preds.y, true, &rec)
		if err != nil {
			return err
		}
		storeLuma(frame, x0+(b%2)*8, y0+(b/2)*8, &rec)
	}
	cw := frame.ChromaW()
	cx, cy := col*8, row*8
	var err error
	preds.cb, err = dec.coder.decodeIntraBlock(r, scale, preds.cb, false, &rec)
	if err != nil {
		return err
	}
	storeChroma(frame.Cb, cw, cx, cy, &rec)
	preds.cr, err = dec.coder.decodeIntraBlock(r, scale, preds.cr, false, &rec)
	if err != nil {
		return err
	}
	storeChroma(frame.Cr, cw, cx, cy, &rec)
	return nil
}

// validateMV rejects motion vectors whose prediction area leaves the frame.
func validateMV(frame *video.Frame, col, row int, mode mbMode, mvf, mvb MotionVector) error {
	check := func(mv MotionVector) error {
		if !mvInBounds(frame, col, row, mv) {
			return fmt.Errorf("mpeg: motion vector (%d,%d) half-pels leaves frame at mb (%d,%d)", mv.X, mv.Y, col, row)
		}
		return nil
	}
	if mode == mbForward || mode == mbInterp {
		if err := check(mvf); err != nil {
			return err
		}
	}
	if mode == mbBackward || mode == mbInterp {
		if err := check(mvb); err != nil {
			return err
		}
	}
	return nil
}

// concealRow hides a lost slice by copying the co-located row from the
// forward reference, or filling mid-gray when no reference exists.
func concealRow(frame, fwd *video.Frame, row int) {
	mbW := frame.MacroblocksX()
	if fwd != nil {
		for c := 0; c < mbW; c++ {
			copyMacroblock(frame, fwd, c, row)
		}
		return
	}
	y0 := row * 16
	for dy := 0; dy < 16; dy++ {
		for x := 0; x < frame.W; x++ {
			frame.Y[(y0+dy)*frame.W+x] = 128
		}
	}
	cw, cy := frame.ChromaW(), row*8
	for dy := 0; dy < 8; dy++ {
		for x := 0; x < cw; x++ {
			frame.Cb[(cy+dy)*cw+x] = 128
			frame.Cr[(cy+dy)*cw+x] = 128
		}
	}
}
