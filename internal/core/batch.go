package core

import (
	"fmt"
	"runtime"
	"sync"

	"mpegsmooth/internal/trace"
)

// SmoothAll smooths independent streams concurrently on a worker pool
// and returns one schedule per trace, in input order. Each stream runs
// in its own single-goroutine Session — the pool shards streams, never
// a stream — so the result is bit-for-bit identical at any parallelism
// (asserted by tests). parallelism <= 0 means GOMAXPROCS; it is clamped
// to the number of traces.
//
// All streams share cfg (and therefore its Policy and Estimator values,
// which must be safe for concurrent use by value — every provided
// implementation is). cfg.H = 0 is resolved per stream to the trace's
// pattern length N, so one Config can express "H = N" across traces
// with different GOP patterns. The first error encountered, in input
// order, is returned along with a nil schedule slice.
func SmoothAll(traces []*trace.Trace, cfg Config, parallelism int) ([]*Schedule, error) {
	n := len(traces)
	if n == 0 {
		return nil, nil
	}
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	scheds := make([]*Schedule, n)
	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				c := cfg
				if c.H == 0 {
					c.H = traces[i].GOP.N
				}
				scheds[i], errs[i] = Smooth(traces[i], c)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: stream %d (%s): %w", i, traces[i].Name, err)
		}
	}
	return scheds, nil
}
