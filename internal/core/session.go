package core

import (
	"errors"
	"fmt"

	"mpegsmooth/internal/mpeg"
)

// Session is the unified driver around the decision kernel: every
// consumer — the offline Smooth, the incremental LiveSmoother, the
// paced transport sender, the batch runner SmoothAll — is a thin layer
// over one Session. Picture sizes are pushed in display order as they
// become known, and rate decisions are returned as soon as their inputs
// are determined; Close marks the end of the sequence and flushes the
// remainder, bounding the lookahead at the sequence end exactly as the
// offline algorithm does.
//
// A decision for picture j is computable once
//
//   - pictures j .. j+K−1 have been pushed (Eq. 2's arrival condition),
//   - every picture visible at t_j — i.e. with (i+1)τ ≤ t_j — has been
//     pushed, so the estimator's view is complete, and
//   - the existence of the H-picture lookahead window is settled, which
//     before Close means pictures j .. j+H−1 have been pushed.
//
// A Session is single-goroutine by design (it is not safe for
// concurrent use); SmoothAll scales across streams by sharding whole
// sessions over a worker pool, never by sharing one.
type Session struct {
	cfg    Config
	engine *engine
	sizes  []int64

	next     int // next picture awaiting a decision
	depart   float64
	rate     float64
	peak     float64
	closed   bool
	observer Observer
}

// Decision reports one scheduled picture. The first seven fields mirror
// Schedule's per-picture arrays; the rest expose the kernel's view of
// the decision for observers and live consumers.
type Decision struct {
	Picture              int
	Rate                 float64
	Start, Depart, Delay float64
	// Lower and Upper are the Theorem 1 (h = 0, actual size) bounds.
	Lower, Upper float64
	// BandLower and BandUpper are the accumulated lookahead band the
	// policy selected within (Eqs. 12–13 at loop exit).
	BandLower, BandUpper float64
	// Depth is the lookahead depth at exit: how many pictures the bound
	// accumulation examined before crossing, exhausting H, or hitting
	// the sequence end.
	Depth int
	// EstimatorError is the relative error of the estimated bits over
	// the not-yet-arrived part of the window, (est − actual)/actual;
	// 0 when the window held no estimates.
	EstimatorError float64
	// OutOfBand reports that the selected rate violates the Theorem 1
	// band — possible only under a policy that trades bound violations
	// for its own constraint (CappedRate) or in K = 0 runs.
	OutOfBand bool
}

// Observation is the per-decision measurement handed to an Observer.
type Observation struct {
	// Picture and Rate identify the decision.
	Picture int
	Rate    float64
	// LowerSlack and UpperSlack are the margins Rate keeps to the
	// Theorem 1 (h = 0, actual size) bounds — negative exactly when the
	// decision is OutOfBand, i.e. a policy traded a bound violation for
	// its own constraint.
	LowerSlack, UpperSlack float64
	// Depth is the lookahead depth at exit.
	Depth int
	// EstimatorError is the relative window estimation error.
	EstimatorError float64
}

// Observer receives one callback per emitted decision, in picture
// order, before the decision is returned to the caller. Observations
// feed metrics collectors (see metrics.DecisionStats); the hook must
// not retain the Session.
type Observer func(Observation)

// SessionOption configures a Session at construction.
type SessionOption func(*Session)

// WithObserver installs a per-decision observer hook.
func WithObserver(o Observer) SessionOption {
	return func(s *Session) { s.observer = o }
}

// withTypes supplies explicit per-picture types for adaptive-pattern
// traces (used by Smooth; live streams follow the GOP pattern).
func withTypes(types []mpeg.PictureType) SessionOption {
	return func(s *Session) { s.engine.types = types }
}

// NewSession prepares a smoothing session for a stream with the given
// picture period and coding pattern.
func NewSession(tau float64, gop mpeg.GOP, cfg Config, opts ...SessionOption) (*Session, error) {
	if tau <= 0 {
		return nil, fmt.Errorf("core: non-positive picture period %v", tau)
	}
	if err := gop.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(tau); err != nil {
		return nil, err
	}
	if cfg.Estimator == nil {
		cfg.Estimator = PatternEstimator{}
	}
	s := &Session{
		cfg:    cfg,
		engine: newEngine(cfg, tau, gop, nil),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// Push appends the size of the next encoded picture (display order) and
// returns any decisions that became determined. Invalid input — a push
// after Close, or a non-positive size — is rejected before any state is
// touched, so a failed Push never perturbs the schedule.
func (s *Session) Push(size int64) ([]Decision, error) {
	if s.closed {
		return nil, errors.New("core: Push after Close")
	}
	if size <= 0 {
		return nil, fmt.Errorf("core: non-positive picture size %d", size)
	}
	s.sizes = append(s.sizes, size)
	return s.drain(), nil
}

// Close marks the end of the picture sequence and returns all remaining
// decisions. Close is idempotent.
func (s *Session) Close() []Decision {
	s.closed = true
	return s.drain()
}

// Pushed returns the number of picture sizes received so far.
func (s *Session) Pushed() int { return len(s.sizes) }

// Pending returns the number of pushed pictures that do not yet have a
// rate decision.
func (s *Session) Pending() int { return len(s.sizes) - s.next }

// Policy returns the session's effective rate-selection policy.
func (s *Session) Policy() Policy { return s.engine.policy }

// PeakRate returns the maximum transmission rate decided so far in
// bits/second (0 before the first decision): the stream's running
// traffic descriptor, which admission control reserves against a shared
// link. For a completed session it equals Schedule.PeakRate of the
// equivalent offline run.
func (s *Session) PeakRate() float64 { return s.peak }

// runAll consumes a complete, already-validated size sequence in one
// shot — the offline mode: push all, close. Because the sequence length
// is known before the first decision, every decide call sees the bounded
// lookahead directly, exactly as the paper's Figure 2 loop does.
func (s *Session) runAll(sizes []int64) []Decision {
	s.sizes = sizes
	s.closed = true
	return s.drain()
}

// drain emits every decision whose inputs are determined.
func (s *Session) drain() []Decision {
	var out []Decision
	tau := s.engine.tau
	for s.next < len(s.sizes) {
		j := s.next
		a := len(s.sizes)
		if !s.closed {
			// Arrival condition: pictures j..j+K−1 pushed.
			if a < j+s.cfg.K {
				break
			}
			// Lookahead existence: the offline algorithm would examine
			// pictures j..j+H−1 unless the sequence ends first; before
			// Close we cannot know it ends, so wait for them.
			if a < j+s.cfg.H {
				break
			}
			// View completeness: every picture visible at t_j must be
			// pushed. t_j is already determined by depart and (j+K)τ.
			now := s.depart
			if t := float64(j+s.cfg.K) * tau; t > now {
				now = t
			}
			// Count pictures with (i+1)τ <= now using the same float
			// comparison View.Arrived uses, so live and offline views
			// agree bit for bit.
			visible := int(now / tau)
			for float64(visible+1)*tau <= now {
				visible++
			}
			for visible > 0 && float64(visible)*tau > now {
				visible--
			}
			if visible > a {
				break
			}
		}
		end := -1
		if s.closed {
			end = len(s.sizes)
		}
		d := s.engine.decide(j, s.sizes, s.depart, s.rate, end)
		s.depart, s.rate = d.Depart, d.Rate
		if d.Rate > s.peak {
			s.peak = d.Rate
		}
		s.next++
		if s.observer != nil {
			s.observer(Observation{
				Picture:        d.Picture,
				Rate:           d.Rate,
				LowerSlack:     d.Rate - d.Lower,
				UpperSlack:     d.Upper - d.Rate,
				Depth:          d.Depth,
				EstimatorError: d.EstimatorError,
			})
		}
		out = append(out, d)
	}
	return out
}
