package experiments

import (
	"bytes"
	"testing"
)

// TestFadingSweepDeterministic: the sweep is a pure function of its
// seed — two runs must render byte-identical CSV. (Small picture count
// keeps the provisioning searches cheap; the committed CSV uses the
// full 500.)
func TestFadingSweepDeterministic(t *testing.T) {
	render := func() []byte {
		rows, err := FadingSweep(120, 7)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteFadingCSV(&buf, rows); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := render()
	b := render()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different CSV:\n%s\nvs\n%s", a, b)
	}
	t.Logf("fading sweep @120 pictures:\n%s", a)
}

// TestFadingSweepGainStory pins the sweep's shape: on a clean channel
// the smoothed schedule admits strictly more load than the raw one
// (the Section 5 gain), and the harshest fade regime leaves the gain
// no larger than the clean-channel gain — fading can only tax the
// advantage, never amplify it past the lossless case.
func TestFadingSweepGainStory(t *testing.T) {
	rows, err := FadingSweep(120, 3)
	if err != nil {
		t.Fatal(err)
	}
	var clean, harsh *FadingRow
	for i := range rows {
		r := &rows[i]
		if r.OutageProb == 0 && clean == nil {
			clean = r
		}
		if r.Coherence == 0.4 && r.OutageProb == 0.2 {
			harsh = r
		}
	}
	if clean == nil || harsh == nil {
		t.Fatalf("sweep grid missing anchor points: %+v", rows)
	}
	if clean.Gain <= 1 {
		t.Fatalf("clean channel shows no admission gain: %+v", *clean)
	}
	if clean.RawLoad <= 0 || clean.RawLoad >= clean.SmoothedLoad {
		t.Fatalf("clean-channel loads out of order: %+v", *clean)
	}
	if harsh.Gain > clean.Gain {
		t.Fatalf("fading amplified the admission gain: clean %+v harsh %+v", *clean, *harsh)
	}
}
