package transport

import (
	"bytes"
	"io"
	"testing"

	"mpegsmooth/internal/mpeg"
)

// encodePictures frames count pictures of size payloadBytes into one
// contiguous byte stream, exactly as a sender would put them on the
// wire (header frame followed by the raw payload chunk).
func encodePictures(tb testing.TB, count, payloadBytes int) []byte {
	tb.Helper()
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	payload := make([]byte, payloadBytes)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	for i := 0; i < count; i++ {
		if err := fw.WritePictureHeader(i, mpeg.TypeP, payload); err != nil {
			tb.Fatal(err)
		}
		if err := fw.WriteChunk(payload); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestFrameReaderSteadyStateZeroAlloc pins the ingest hot path at zero
// allocations per frame: a pooled FrameReader decoding a steady stream
// of pictures must reuse its scratch buffer, its PictureFrame value,
// and the pooled payload buffers, allocating nothing once warm. A
// regression here puts the garbage collector back in the per-picture
// path, which is exactly what the pool exists to prevent.
func TestFrameReaderSteadyStateZeroAlloc(t *testing.T) {
	const runs = 200
	stream := encodePictures(t, runs+8, 4096)
	fr := NewFrameReader(bytes.NewReader(stream))
	var pool BufferPool
	fr.Pool = &pool

	readOne := func() {
		m, err := fr.ReadMessage()
		if err != nil {
			t.Fatal(err)
		}
		pic, ok := m.(*PictureFrame)
		if !ok {
			t.Fatalf("read %T, want *PictureFrame", m)
		}
		pool.Put(pic.Payload)
	}
	// Warm up: first reads grow the scratch buffer and seed the pool.
	for i := 0; i < 4; i++ {
		readOne()
	}
	if allocs := testing.AllocsPerRun(runs, readOne); allocs != 0 {
		t.Errorf("steady-state pooled frame read allocates %.1f objects/frame, want 0", allocs)
	}
}

// TestFrameWriterSteadyStateZeroAlloc pins the egress side the same
// way: once the writer's scratch buffer is warm, framing a picture
// header and its payload chunk must not allocate.
func TestFrameWriterSteadyStateZeroAlloc(t *testing.T) {
	fw := NewFrameWriter(io.Discard)
	payload := make([]byte, 4096)
	writeOne := func() {
		if err := fw.WritePictureHeader(0, mpeg.TypeI, payload); err != nil {
			t.Fatal(err)
		}
		if err := fw.WriteChunk(payload); err != nil {
			t.Fatal(err)
		}
	}
	writeOne() // warm the scratch buffer
	// Indexes repeat across runs; the reader end would reject that, but
	// framing doesn't care and io.Discard has no reader end.
	if allocs := testing.AllocsPerRun(200, writeOne); allocs != 0 {
		t.Errorf("steady-state frame write allocates %.1f objects/frame, want 0", allocs)
	}
}

// BenchmarkFrameReaderPictures measures raw frame-decode throughput,
// pooled versus allocate-per-message. The pooled configuration is the
// server's; the alloc configuration is the pre-pool behaviour kept for
// caller-owned payloads.
func BenchmarkFrameReaderPictures(b *testing.B) {
	const payloadBytes = 4096
	for _, pooled := range []bool{true, false} {
		name := "alloc"
		if pooled {
			name = "pooled"
		}
		b.Run(name, func(b *testing.B) {
			const chunk = 512 // frames per reader session
			stream := encodePictures(b, chunk, payloadBytes)
			var pool BufferPool
			rd := bytes.NewReader(stream)
			fr := NewFrameReader(rd)
			if pooled {
				fr.Pool = &pool
			}
			b.SetBytes(payloadBytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%chunk == 0 && i > 0 {
					// Sessions carry a sequence counter, so replaying
					// the stream needs a fresh reader (pool persists).
					rd.Reset(stream)
					fr = NewFrameReader(rd)
					if pooled {
						fr.Pool = &pool
					}
				}
				m, err := fr.ReadMessage()
				if err != nil {
					b.Fatal(err)
				}
				pic := m.(*PictureFrame)
				if pooled {
					pool.Put(pic.Payload)
				}
			}
		})
	}
}
