package netsim

import (
	"fmt"

	"mpegsmooth/internal/metrics"
)

// defaultCellTickHz is the tick rate of the cell-exact runner: 1 ps
// ticks, fine enough that quantizing exact float event times to ticks
// never reorders the cell dynamics on realistic configurations.
const defaultCellTickHz = 1e12

// RunConfig describes one cell-exact multiplexing simulation.
type RunConfig struct {
	// Rates holds one transmission rate function per source.
	Rates []*metrics.StepFunc
	// Offsets staggers source start times; len must match Rates (nil
	// means all zero).
	Offsets []float64
	// LinkRate is the shared output link capacity in bits/s.
	LinkRate float64
	// BufferCells is the multiplexer's waiting-buffer size in cells.
	BufferCells int
	// Horizon bounds simulated time in seconds (0 = run to completion).
	Horizon float64
	// TickHz overrides the engine tick rate (0 = 1e12).
	TickHz float64
}

// SourceStats counts one source's cells through the multiplexer.
type SourceStats struct {
	Emitted int64
	Lost    int64
}

// RunResult is the outcome of a cell-exact simulation: the aggregate
// multiplexer counters plus per-source emission/loss attribution.
type RunResult struct {
	MuxStats
	// Sources holds one entry per RunConfig rate function, in order.
	Sources []SourceStats
}

// resolveOffsets validates cfg.Offsets and expands the nil default into
// explicit zeros, so every later consumer (source construction, horizon
// computation) reads the same slice instead of re-deriving the default.
func resolveOffsets(cfg RunConfig) ([]float64, error) {
	if cfg.Offsets != nil && len(cfg.Offsets) != len(cfg.Rates) {
		return nil, fmt.Errorf("netsim: %d offsets for %d sources", len(cfg.Offsets), len(cfg.Rates))
	}
	offs := cfg.Offsets
	if offs == nil {
		offs = make([]float64, len(cfg.Rates))
	}
	for _, off := range offs {
		if off < 0 {
			return nil, fmt.Errorf("netsim: negative offset %v", off)
		}
	}
	return offs, nil
}

// runHorizon returns the configured horizon, defaulting to one second
// past the last source's shifted end.
func runHorizon(horizon float64, rates []*metrics.StepFunc, offs []float64) float64 {
	if horizon != 0 {
		return horizon
	}
	for i, r := range rates {
		if end := r.End + offs[i] + 1; end > horizon {
			horizon = end
		}
	}
	return horizon
}

// Run simulates the configured sources through a shared multiplexer and
// returns the aggregate statistics.
func Run(cfg RunConfig) (MuxStats, error) {
	res, err := RunDetailed(cfg)
	return res.MuxStats, err
}

// RunDetailed simulates the configured sources through a shared
// multiplexer and returns aggregate statistics plus per-source
// emission and loss counts.
func RunDetailed(cfg RunConfig) (RunResult, error) {
	if len(cfg.Rates) == 0 {
		return RunResult{}, fmt.Errorf("netsim: no sources")
	}
	offs, err := resolveOffsets(cfg)
	if err != nil {
		return RunResult{}, err
	}
	hz := cfg.TickHz
	if hz == 0 {
		hz = defaultCellTickHz
	}
	eng := NewEngine(hz)
	mux, err := NewMux(eng, cfg.LinkRate, cfg.BufferCells)
	if err != nil {
		return RunResult{}, err
	}
	mux.Attribute(len(cfg.Rates))
	sources := make([]*Source, len(cfg.Rates))
	for i, r := range cfg.Rates {
		sources[i] = NewSource(eng, mux, r, offs[i], i)
	}
	horizon := runHorizon(cfg.Horizon, cfg.Rates, offs)
	eng.Run(eng.TickAt(horizon))
	res := RunResult{
		MuxStats: mux.Stats(),
		Sources:  make([]SourceStats, len(sources)),
	}
	for i, s := range sources {
		res.Sources[i] = SourceStats{Emitted: s.Emitted(), Lost: mux.lost[i]}
	}
	// Conservation: everything that arrived was served, lost, is waiting,
	// or is in service.
	st := res.MuxStats
	if st.Arrived != st.Served+st.Lost+mux.InFlight() {
		return res, fmt.Errorf("netsim: conservation violated: %d arrived, %d served, %d lost, %d in flight",
			st.Arrived, st.Served, st.Lost, mux.InFlight())
	}
	return res, nil
}
