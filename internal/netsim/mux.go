package netsim

import "fmt"

// CellBits is the payload-bearing size of one fixed-length cell in bits
// (ATM: 53 bytes on the wire).
const CellBits = 424

// MuxStats counts cells through a multiplexer.
type MuxStats struct {
	Arrived int64
	Served  int64
	Lost    int64
	// MaxQueue is the high-water mark of the waiting queue.
	MaxQueue int
}

// LossProbability returns Lost/Arrived (0 when nothing arrived).
func (s MuxStats) LossProbability() float64 {
	if s.Arrived == 0 {
		return 0
	}
	return float64(s.Lost) / float64(s.Arrived)
}

// Mux is the cell-exact finite-buffer FIFO multiplexer: cells from all
// sources share one output link of LinkRate bits/s and a waiting buffer
// of BufferCells cells (excluding the cell in service). A cell arriving
// to a full buffer is lost — the loss the smoothing algorithm exists to
// minimize for a given multiplexing level.
//
// Service-completion times are tracked as exact float seconds (only
// event ordering is quantized to engine ticks), so the cell dynamics
// reproduce the original float-time simulator exactly.
type Mux struct {
	LinkRate    float64
	BufferCells int

	eng     *Engine
	queue   int
	serving bool
	svcEnd  float64 // exact completion time of the cell in service
	stats   MuxStats
	lost    []int64 // per-source lost cells (nil: no attribution)
}

// NewMux attaches a multiplexer to an engine.
func NewMux(eng *Engine, linkRate float64, bufferCells int) (*Mux, error) {
	if linkRate <= 0 {
		return nil, fmt.Errorf("netsim: non-positive link rate %v", linkRate)
	}
	if bufferCells < 0 {
		return nil, fmt.Errorf("netsim: negative buffer %d", bufferCells)
	}
	return &Mux{LinkRate: linkRate, BufferCells: bufferCells, eng: eng}, nil
}

// Attribute sizes the per-source loss counters; Arrive then records
// which source each lost cell belonged to.
func (m *Mux) Attribute(sources int) { m.lost = make([]int64, sources) }

// Arrive delivers one cell from source src at exact time t seconds (the
// emitting event's own time; the mux never re-derives it from ticks).
func (m *Mux) Arrive(src int, t float64) {
	m.stats.Arrived++
	if m.serving && m.queue >= m.BufferCells {
		m.stats.Lost++
		if m.lost != nil {
			m.lost[src]++
		}
		return
	}
	if !m.serving {
		m.startService(t)
		return
	}
	m.queue++
	if m.queue > m.stats.MaxQueue {
		m.stats.MaxQueue = m.queue
	}
}

func (m *Mux) startService(t float64) {
	m.serving = true
	m.svcEnd = t + CellBits/m.LinkRate
	m.eng.Schedule(m.eng.TickAt(m.svcEnd), m)
}

// Fire completes the cell in service (the Mux is its own
// service-completion event; at most one is outstanding).
func (m *Mux) Fire(Tick) {
	end := m.svcEnd
	m.stats.Served++
	if m.queue > 0 {
		m.queue--
		m.startService(end)
		return
	}
	m.serving = false
}

// Stats returns the current counters.
func (m *Mux) Stats() MuxStats { return m.stats }

// QueueLen returns the number of cells waiting (excluding in service).
func (m *Mux) QueueLen() int { return m.queue }

// InFlight returns the cells accepted but not yet served (waiting plus
// in service) — the conservation remainder.
func (m *Mux) InFlight() int64 {
	n := int64(m.queue)
	if m.serving {
		n++
	}
	return n
}

// LostBySource returns the per-source loss counters (nil unless
// Attribute was called).
func (m *Mux) LostBySource() []int64 { return m.lost }
