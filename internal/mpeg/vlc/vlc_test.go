package vlc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mpegsmooth/internal/bitio"
)

func TestACTablePrefixFree(t *testing.T) {
	type code struct {
		bits uint32
		len  uint
	}
	all := []code{{eobBits, eobLen}, {escBits, escLen}}
	for _, c := range acTable {
		all = append(all, code{c.bits, c.len})
	}
	asString := func(c code) string {
		s := ""
		for i := int(c.len) - 1; i >= 0; i-- {
			if c.bits>>uint(i)&1 == 1 {
				s += "1"
			} else {
				s += "0"
			}
		}
		return s
	}
	for i, a := range all {
		for j, b := range all {
			if i == j {
				continue
			}
			sa, sb := asString(a), asString(b)
			if strings.HasPrefix(sb, sa) {
				t.Fatalf("code %q is a prefix of %q", sa, sb)
			}
		}
	}
}

func TestACTableRoundTrip(t *testing.T) {
	for _, c := range acTable {
		for _, sign := range []int32{1, -1} {
			w := bitio.NewWriter()
			level := c.sym.level * sign
			if err := WriteAC(w, c.sym.run, level); err != nil {
				t.Fatal(err)
			}
			r := bitio.NewReader(w.Bytes())
			run, lv, eob, err := ReadAC(r)
			if err != nil {
				t.Fatal(err)
			}
			if eob || run != c.sym.run || lv != level {
				t.Fatalf("(%d,%d) decoded as (%d,%d,eob=%v)", c.sym.run, level, run, lv, eob)
			}
		}
	}
}

func TestACEscapeRoundTrip(t *testing.T) {
	cases := []struct {
		run   int
		level int32
	}{
		{0, 5}, {10, 1}, {63, 1}, {0, MaxLevel}, {0, -MaxLevel},
		{31, -100}, {0, 4}, {5, 2}, {0, -4},
	}
	for _, c := range cases {
		w := bitio.NewWriter()
		if err := WriteAC(w, c.run, c.level); err != nil {
			t.Fatal(err)
		}
		r := bitio.NewReader(w.Bytes())
		run, lv, eob, err := ReadAC(r)
		if err != nil {
			t.Fatalf("(%d,%d): %v", c.run, c.level, err)
		}
		if eob || run != c.run || lv != c.level {
			t.Fatalf("(%d,%d) decoded as (%d,%d,eob=%v)", c.run, c.level, run, lv, eob)
		}
	}
}

func TestACRejectsOutOfRange(t *testing.T) {
	w := bitio.NewWriter()
	if err := WriteAC(w, 0, 0); err == nil {
		t.Fatal("level 0 must be rejected")
	}
	if err := WriteAC(w, 64, 1); err == nil {
		t.Fatal("run 64 must be rejected")
	}
	if err := WriteAC(w, 0, MaxLevel+1); err == nil {
		t.Fatal("level > MaxLevel must be rejected")
	}
	if err := WriteAC(w, -1, 1); err == nil {
		t.Fatal("negative run must be rejected")
	}
}

func TestEOB(t *testing.T) {
	w := bitio.NewWriter()
	WriteEOB(w)
	r := bitio.NewReader(w.Bytes())
	_, _, eob, err := ReadAC(r)
	if err != nil || !eob {
		t.Fatalf("eob=%v err=%v", eob, err)
	}
}

func TestDCRoundTrip(t *testing.T) {
	for _, luma := range []bool{true, false} {
		for diff := int32(-255); diff <= 255; diff++ {
			w := bitio.NewWriter()
			if err := WriteDC(w, diff, luma); err != nil {
				t.Fatalf("diff=%d: %v", diff, err)
			}
			r := bitio.NewReader(w.Bytes())
			got, err := ReadDC(r, luma)
			if err != nil {
				t.Fatalf("diff=%d luma=%v: %v", diff, luma, err)
			}
			if got != diff {
				t.Fatalf("diff=%d luma=%v decoded %d", diff, luma, got)
			}
		}
	}
}

func TestDCOutOfRange(t *testing.T) {
	w := bitio.NewWriter()
	if err := WriteDC(w, 256, true); err == nil {
		t.Fatal("DC diff 256 must be rejected")
	}
	if err := WriteDC(w, -256, true); err == nil {
		t.Fatal("DC diff -256 must be rejected")
	}
}

func TestDCZeroIsShort(t *testing.T) {
	w := bitio.NewWriter()
	if err := WriteDC(w, 0, true); err != nil {
		t.Fatal(err)
	}
	if w.BitsWritten() != 3 {
		t.Fatalf("luma DC size-0 code should be 3 bits, got %d", w.BitsWritten())
	}
	w2 := bitio.NewWriter()
	if err := WriteDC(w2, 0, false); err != nil {
		t.Fatal(err)
	}
	if w2.BitsWritten() != 2 {
		t.Fatalf("chroma DC size-0 code should be 2 bits, got %d", w2.BitsWritten())
	}
}

func TestUERoundTrip(t *testing.T) {
	for v := uint32(0); v < 1000; v++ {
		w := bitio.NewWriter()
		WriteUE(w, v)
		r := bitio.NewReader(w.Bytes())
		got, err := ReadUE(r)
		if err != nil {
			t.Fatalf("v=%d: %v", v, err)
		}
		if got != v {
			t.Fatalf("v=%d decoded %d", v, got)
		}
	}
}

func TestSERoundTrip(t *testing.T) {
	for v := int32(-500); v <= 500; v++ {
		w := bitio.NewWriter()
		WriteSE(w, v)
		r := bitio.NewReader(w.Bytes())
		got, err := ReadSE(r)
		if err != nil {
			t.Fatalf("v=%d: %v", v, err)
		}
		if got != v {
			t.Fatalf("v=%d decoded %d", v, got)
		}
	}
}

func TestUEZeroIsOneBit(t *testing.T) {
	w := bitio.NewWriter()
	WriteUE(w, 0)
	if w.BitsWritten() != 1 {
		t.Fatalf("ue(0) should be 1 bit, got %d", w.BitsWritten())
	}
}

func TestCoeffsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		var scanned [64]int32
		nz := rng.Intn(30)
		for k := 0; k < nz; k++ {
			pos := rng.Intn(63) + 1
			lv := int32(rng.Intn(2*MaxLevel+1) - MaxLevel)
			if lv == 0 {
				lv = 1
			}
			scanned[pos] = lv
		}
		w := bitio.NewWriter()
		if err := WriteCoeffs(w, &scanned); err != nil {
			t.Fatal(err)
		}
		r := bitio.NewReader(w.Bytes())
		var back [64]int32
		back[0] = 12345 // DC must be left untouched
		if err := ReadCoeffs(r, &back); err != nil {
			t.Fatal(err)
		}
		if back[0] != 12345 {
			t.Fatal("ReadCoeffs touched DC")
		}
		for i := 1; i < 64; i++ {
			if back[i] != scanned[i] {
				t.Fatalf("trial %d pos %d: got %d want %d", trial, i, back[i], scanned[i])
			}
		}
	}
}

func TestCoeffsSparseBlocksAreSmall(t *testing.T) {
	// An all-zero AC block is just EOB: 2 bits.
	var scanned [64]int32
	w := bitio.NewWriter()
	if err := WriteCoeffs(w, &scanned); err != nil {
		t.Fatal(err)
	}
	if w.BitsWritten() != 2 {
		t.Fatalf("empty block should cost 2 bits, got %d", w.BitsWritten())
	}
	// Common symbols beat escape coding.
	w2 := bitio.NewWriter()
	if err := WriteAC(w2, 0, 1); err != nil {
		t.Fatal(err)
	}
	if w2.BitsWritten() != 3 { // 2-bit code + sign
		t.Fatalf("(0,1) should cost 3 bits, got %d", w2.BitsWritten())
	}
}

func TestReadDCInvalidCode(t *testing.T) {
	// All-ones bits beyond any DC size code length must error for the
	// luma table (whose longest code is 7 bits of ones would be size 8's
	// prefix... use a pattern that matches nothing).
	r := bitio.NewReader([]byte{0xFF, 0xFF})
	if _, err := ReadDC(r, true); err == nil {
		t.Fatal("invalid luma DC code accepted")
	}
}

func TestReadUEOverflowGuard(t *testing.T) {
	// More than 31 leading zeros is not a valid Exp-Golomb code.
	r := bitio.NewReader(make([]byte, 8)) // 64 zero bits
	if _, err := ReadUE(r); err != ErrInvalidCode {
		t.Fatalf("want ErrInvalidCode, got %v", err)
	}
}

func TestReadSEAtEOF(t *testing.T) {
	r := bitio.NewReader(nil)
	if _, err := ReadSE(r); err == nil {
		t.Fatal("SE at EOF should error")
	}
}

func TestInvalidStreamDetected(t *testing.T) {
	// A stream of zero bits decodes to neither EOB nor any short code and
	// must eventually error rather than loop or fabricate symbols.
	r := bitio.NewReader([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	var scanned [64]int32
	if err := ReadCoeffs(r, &scanned); err == nil {
		t.Fatal("all-zero stream should not decode cleanly")
	}
}

func TestNoLongZeroRuns(t *testing.T) {
	// Start-code uniqueness: no encoded block may contain 23 consecutive
	// zero bits. Exercise worst-case escape symbols.
	w := bitio.NewWriter()
	for i := 0; i < 20; i++ {
		if err := WriteAC(w, 32, 1); err != nil { // escape with zero-heavy fields
			t.Fatal(err)
		}
		if err := WriteAC(w, 0, 4); err != nil {
			t.Fatal(err)
		}
	}
	WriteEOB(w)
	data := w.Bytes()
	run, maxRun := 0, 0
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			if b>>uint(i)&1 == 0 {
				run++
				if run > maxRun {
					maxRun = run
				}
			} else {
				run = 0
			}
		}
	}
	if maxRun >= 23 {
		t.Fatalf("encoded stream contains %d consecutive zeros (start-code aliasing)", maxRun)
	}
}

// Property: arbitrary sparse blocks round-trip exactly.
func TestCoeffsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var scanned [64]int32
		for i := 1; i < 64; i++ {
			if rng.Intn(4) == 0 {
				scanned[i] = int32(rng.Intn(2*MaxLevel) - MaxLevel)
				if scanned[i] == 0 {
					scanned[i] = -1
				}
			}
		}
		w := bitio.NewWriter()
		if WriteCoeffs(w, &scanned) != nil {
			return false
		}
		var back [64]int32
		if ReadCoeffs(bitio.NewReader(w.Bytes()), &back) != nil {
			return false
		}
		for i := 1; i < 64; i++ {
			if back[i] != scanned[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteCoeffs(b *testing.B) {
	var scanned [64]int32
	rng := rand.New(rand.NewSource(1))
	for i := 1; i < 20; i++ {
		scanned[i] = int32(rng.Intn(64) - 32)
	}
	w := bitio.NewWriter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i&0x3FF == 0 {
			w.Reset()
		}
		if err := WriteCoeffs(w, &scanned); err != nil {
			b.Fatal(err)
		}
	}
}
