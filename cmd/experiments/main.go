// Command experiments regenerates every figure of the paper's evaluation
// (Figures 3–8) and the extension experiments from DESIGN.md, writing
// CSV series to an output directory and printing console summaries.
//
// Usage:
//
//	experiments -fig all -out results/
//	experiments -fig 6            # one figure
//	experiments -fig extB -out results/
//	experiments -fig 6 -policy min-var -parallelism 8
//
// The -policy flag (basic | moving-average | capped:<bps> | min-var)
// selects the rate-selection policy for the sweep figures (6, 7, 8);
// the paper's figures use basic. -parallelism bounds the worker pool
// the sweeps use to smooth the four sequences concurrently (0 = one
// worker per CPU).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mpegsmooth"
	"mpegsmooth/internal/experiments"
	"mpegsmooth/internal/mpeg"
)

func main() {
	var (
		fig         = flag.String("fig", "all", "figure to regenerate: 3, 4, 5, 6, 7, 8, extA..extJ, fading, all")
		out         = flag.String("out", "results", "output directory for CSV series")
		pictures    = flag.Int("pictures", experiments.DefaultPictures, "trace length in pictures")
		seed        = flag.Int64("seed", experiments.DefaultSeed, "trace generation seed")
		policy      = flag.String("policy", "", "rate selection for sweep figures: basic | moving-average | capped:<bps> | min-var")
		parallelism = flag.Int("parallelism", 0, "worker pool size for batch smoothing (0 = GOMAXPROCS)")
	)
	flag.Parse()
	var opts []experiments.SweepOption
	if *policy != "" {
		p, err := mpegsmooth.ParsePolicy(*policy)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, experiments.WithPolicy(p))
	}
	opts = append(opts, experiments.WithParallelism(*parallelism))
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	figs := strings.Split(*fig, ",")
	if *fig == "all" {
		figs = []string{"3", "4", "5", "6", "7", "8", "extA", "extB", "extC", "extD", "extE", "extF", "extG", "extH", "extI", "extJ", "fading"}
	}
	for _, f := range figs {
		if err := runFigure(strings.TrimSpace(f), *out, *pictures, *seed, opts...); err != nil {
			fatal(fmt.Errorf("figure %s: %w", f, err))
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
	os.Exit(1)
}

func runFigure(fig, out string, pictures int, seed int64, opts ...experiments.SweepOption) error {
	switch fig {
	case "3":
		return figure3(out, pictures, seed)
	case "4":
		return figure4(out, pictures, seed)
	case "5":
		return figure5(out, pictures, seed)
	case "6":
		return sweep(out, "fig6_sweep_D.csv", "Figure 6 (measures vs delay bound D; K=1, H=N)", "D_seconds",
			func() ([]experiments.SweepRow, error) { return experiments.Figure6(pictures, seed, opts...) })
	case "7":
		return sweep(out, "fig7_sweep_H.csv", "Figure 7 (measures vs lookahead H; D=0.2, K=1)", "H_pictures",
			func() ([]experiments.SweepRow, error) { return experiments.Figure7(pictures, seed, opts...) })
	case "8":
		return sweep(out, "fig8_sweep_K.csv", "Figure 8 (measures vs K; D=0.1333+(K+1)/30, H=N)", "K_pictures",
			func() ([]experiments.SweepRow, error) { return experiments.Figure8(pictures, seed, opts...) })
	case "extA":
		return extA(out, pictures, seed, opts...)
	case "extB":
		return extB(out, seed)
	case "extC":
		return extC(out, pictures, seed)
	case "extD":
		return extD(out, pictures, seed)
	case "extE":
		return extE(out, seed)
	case "extF":
		return extF(out, pictures, seed)
	case "extG":
		return extG(out, seed)
	case "extH":
		return extH(out, seed)
	case "extI":
		return extI(out, pictures, seed)
	case "extJ":
		return extJ(out, seed)
	case "fading":
		return fading(out, pictures, seed)
	}
	return fmt.Errorf("unknown figure %q", fig)
}

func fading(out string, pictures int, seed int64) error {
	rows, err := experiments.FadingSweep(pictures, seed)
	if err != nil {
		return err
	}
	f, err := create(out, "fading_sweep.csv")
	if err != nil {
		return err
	}
	if err := experiments.WriteFadingCSV(f, rows); err != nil {
		f.Close()
		return err
	}
	f.Close()
	fmt.Println("== Fading sweep: admissible load under block fading with deadline-bound ARQ ==")
	for _, r := range rows {
		fmt.Printf("  coherence %.3fs outage %.2f: raw load %.3f  smoothed load %.3f  gain %.2fx\n",
			r.Coherence, r.OutageProb, r.RawLoad, r.SmoothedLoad, r.Gain)
	}
	fmt.Println("  -> fading_sweep.csv")
	return nil
}

func extJ(out string, seed int64) error {
	rows, err := experiments.ExtJ(experiments.ExtJConfig{Seed: seed})
	if err != nil {
		return err
	}
	f, err := create(out, "extJ_scale.csv")
	if err != nil {
		return err
	}
	if err := experiments.WriteScaleCSV(f, rows); err != nil {
		f.Close()
		return err
	}
	f.Close()
	fmt.Println("== Ext J: admissible load at scale (fluid engine, LRD background, loss target 1e-3) ==")
	for _, r := range rows {
		fmt.Printf("  n=%5d D=%.4f: raw load %.3f  smoothed load %.3f  gain %.2fx  (%d events/run)\n",
			r.Streams, r.D, r.RawLoad, r.SmoothedLoad, r.Gain, r.Events)
	}
	fmt.Println("  -> extJ_scale.csv")
	return nil
}

func extI(out string, pictures int, seed int64) error {
	rows, err := experiments.ExtI(pictures, seed)
	if err != nil {
		return err
	}
	f, err := create(out, "extI_algorithms.csv")
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "algorithm,max_delay_s,peak_rate_bps,sd_rate_bps,rate_changes")
	fmt.Println("== Ext I: algorithm family comparison (Driving1) ==")
	for _, r := range rows {
		fmt.Fprintf(f, "%s,%.6f,%.1f,%.1f,%d\n", r.Algorithm, r.MaxDelay, r.PeakRate, r.StdDev, r.RateChanges)
		fmt.Printf("  %-24s max delay %7.4f s  peak %5.2f Mbps  sd %5.2f Mbps  %4d changes\n",
			r.Algorithm, r.MaxDelay, r.PeakRate/1e6, r.StdDev/1e6, r.RateChanges)
	}
	f.Close()
	fmt.Println("  -> extI_algorithms.csv")
	return nil
}

func extG(out string, seed int64) error {
	rows, err := experiments.ExtG(160, 112, seed)
	if err != nil {
		return err
	}
	f, err := create(out, "extG_quantizer.csv")
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "quantizer_scale,bits,psnr_db")
	fmt.Println("== Ext G: lossy quantization of an I picture (Section 3.1's objection) ==")
	for _, r := range rows {
		fmt.Fprintf(f, "%d,%d,%.2f\n", r.Scale, r.Bits, r.PSNRdB)
		fmt.Printf("  scale %2d: %7d bits, %.1f dB PSNR\n", r.Scale, r.Bits, r.PSNRdB)
	}
	f.Close()
	fmt.Println("  -> extG_quantizer.csv")
	return nil
}

func extH(out string, seed int64) error {
	rows, err := experiments.ExtH(8, seed)
	if err != nil {
		return err
	}
	f, err := create(out, "extH_buffer.csv")
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "buffer_cells,raw_loss,smoothed_loss")
	fmt.Println("== Ext H: cell loss vs multiplexer buffer (8 streams, 25% headroom) ==")
	for _, r := range rows {
		fmt.Fprintf(f, "%d,%.6f,%.6f\n", r.BufferCells, r.RawLoss, r.SmoothedLoss)
		fmt.Printf("  buffer %5d cells: raw %.4f  smoothed %.4f\n", r.BufferCells, r.RawLoss, r.SmoothedLoss)
	}
	f.Close()
	fmt.Println("  -> extH_buffer.csv")
	return nil
}

func extF(out string, pictures int, seed int64) error {
	rows, err := experiments.ExtF(pictures, seed)
	if err != nil {
		return err
	}
	f, err := create(out, "extF_vbv.csv")
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "D_seconds,startup_delay_s,peak_buffer_bits")
	fmt.Println("== Ext F: decoder (VBV) requirements vs delay bound (Driving1, K=1, H=N) ==")
	for _, r := range rows {
		fmt.Fprintf(f, "%.4f,%.6f,%.1f\n", r.D, r.StartupDelay, r.PeakBufferBits)
		fmt.Printf("  D=%.4f  startup %.4f s  peak buffer %8.0f bits (%.1f KB)\n",
			r.D, r.StartupDelay, r.PeakBufferBits, r.PeakBufferBits/8/1024)
	}
	f.Close()
	fmt.Println("  -> extF_vbv.csv")
	return nil
}

func create(out, name string) (*os.File, error) {
	return os.Create(filepath.Join(out, name))
}

func figure3(out string, pictures int, seed int64) error {
	traces, err := experiments.Figure3(pictures, seed)
	if err != nil {
		return err
	}
	fmt.Println("== Figure 3: picture size vs picture number ==")
	for _, tr := range traces {
		name := fmt.Sprintf("fig3_%s.csv", strings.ToLower(tr.Name))
		f, err := create(out, name)
		if err != nil {
			return err
		}
		if err := tr.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		f.Close()
		st := tr.Stats()
		fmt.Printf("  %-9s pattern %-13s", tr.Name, tr.GOP.Pattern())
		for _, ty := range []mpeg.PictureType{mpeg.TypeI, mpeg.TypeP, mpeg.TypeB} {
			if s, ok := st[ty]; ok {
				fmt.Printf("  %s mean %.0f", ty, s.Mean)
			}
		}
		fmt.Printf("  -> %s\n", name)
	}
	return nil
}

func figure4(out string, pictures int, seed int64) error {
	series, err := experiments.Figure4(pictures, seed)
	if err != nil {
		return err
	}
	fmt.Println("== Figure 4: r(t) vs ideal R(t), Driving1, K=1, H=9 ==")
	for _, s := range series {
		name := fmt.Sprintf("fig4_D%.2f.csv", s.D)
		f, err := create(out, name)
		if err != nil {
			return err
		}
		fmt.Fprintln(f, "time_s,rate_bps,ideal_bps")
		// Sample both step functions on their merged breakpoints.
		for k, t := range s.Rate.Times {
			fmt.Fprintf(f, "%.6f,%.1f,%.1f\n", t, s.Rate.Values[k], s.Ideal.At(t))
		}
		f.Close()
		fmt.Printf("  D=%.2fs: area diff %.4f, %3d rate changes, max %.3f Mbps, S.D. %.3f Mbps -> %s\n",
			s.D, s.Measures.AreaDiff, s.Measures.RateChanges, s.Measures.MaxRate/1e6, s.Measures.StdDev/1e6, name)
	}
	return nil
}

func figure5(out string, pictures int, seed int64) error {
	r, err := experiments.Figure5(pictures, seed)
	if err != nil {
		return err
	}
	f, err := create(out, "fig5_delays.csv")
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "picture,delay_D01,delay_D03,delay_ideal,delay_K1,delay_K9")
	for i := range r.DelaysD01 {
		fmt.Fprintf(f, "%d,%.6f,%.6f,%.6f,%.6f,%.6f\n",
			i, r.DelaysD01[i], r.DelaysD03[i], r.DelaysIdeal[i], r.DelaysK1[i], r.DelaysK9[i])
	}
	f.Close()
	max := func(v []float64) (m float64) {
		for _, x := range v {
			if x > m {
				m = x
			}
		}
		return
	}
	fmt.Println("== Figure 5: per-picture delays, Driving1 ==")
	fmt.Printf("  basic D=0.1:  max delay %.4f s (bound 0.1)\n", max(r.DelaysD01))
	fmt.Printf("  basic D=0.3:  max delay %.4f s (bound 0.3)\n", max(r.DelaysD03))
	fmt.Printf("  ideal:        max delay %.4f s (unbounded)\n", max(r.DelaysIdeal))
	fmt.Printf("  K=1 slack .1333: max delay %.4f s\n", max(r.DelaysK1))
	fmt.Printf("  K=9 slack .1333: max delay %.4f s\n", max(r.DelaysK9))
	fmt.Println("  -> fig5_delays.csv")
	return nil
}

func sweep(out, file, title, xlabel string, gen func() ([]experiments.SweepRow, error)) error {
	rows, err := gen()
	if err != nil {
		return err
	}
	f, err := create(out, file)
	if err != nil {
		return err
	}
	fmt.Fprintf(f, "sequence,%s,area_diff,rate_changes,max_rate_bps,sd_rate_bps\n", xlabel)
	for _, r := range rows {
		fmt.Fprintf(f, "%s,%g,%.6f,%d,%.1f,%.1f\n",
			r.Sequence, r.X, r.Measures.AreaDiff, r.Measures.RateChanges, r.Measures.MaxRate, r.Measures.StdDev)
	}
	f.Close()
	fmt.Printf("== %s ==\n", title)
	// Print first/last row per sequence as a console summary.
	last := map[string]experiments.SweepRow{}
	first := map[string]experiments.SweepRow{}
	var order []string
	for _, r := range rows {
		if _, ok := first[r.Sequence]; !ok {
			first[r.Sequence] = r
			order = append(order, r.Sequence)
		}
		last[r.Sequence] = r
	}
	for _, seq := range order {
		fr, lr := first[seq], last[seq]
		fmt.Printf("  %-9s %s=%-6g area %.4f→%.4f  changes %3d→%3d  max %.2f→%.2f Mbps  sd %.2f→%.2f Mbps\n",
			seq, xlabel, lr.X,
			fr.Measures.AreaDiff, lr.Measures.AreaDiff,
			fr.Measures.RateChanges, lr.Measures.RateChanges,
			fr.Measures.MaxRate/1e6, lr.Measures.MaxRate/1e6,
			fr.Measures.StdDev/1e6, lr.Measures.StdDev/1e6)
	}
	fmt.Printf("  -> %s\n", file)
	return nil
}

func extA(out string, pictures int, seed int64, opts ...experiments.SweepOption) error {
	rows, err := experiments.ExtA(pictures, seed, opts...)
	if err != nil {
		return err
	}
	f, err := create(out, "extA_variants.csv")
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "sequence,basic_area,basic_changes,moving_area,moving_changes")
	fmt.Println("== Ext A: basic vs moving-average variant (K=1, H=N, D=0.2) ==")
	for _, r := range rows {
		fmt.Fprintf(f, "%s,%.6f,%d,%.6f,%d\n", r.Sequence, r.Basic.AreaDiff, r.Basic.RateChanges, r.Moving.AreaDiff, r.Moving.RateChanges)
		fmt.Printf("  %-9s basic: area %.4f (%3d changes)   moving: area %.4f (%3d changes)\n",
			r.Sequence, r.Basic.AreaDiff, r.Basic.RateChanges, r.Moving.AreaDiff, r.Moving.RateChanges)
	}
	f.Close()
	fmt.Println("  -> extA_variants.csv")
	return nil
}

func extB(out string, seed int64) error {
	rows, err := experiments.ExtB(10, seed)
	if err != nil {
		return err
	}
	f, err := create(out, "extB_multiplexing.csv")
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "streams,raw_loss,smoothed_loss")
	fmt.Println("== Ext B: cell loss vs multiplexed streams (finite-buffer mux, 25% headroom) ==")
	for _, r := range rows {
		fmt.Fprintf(f, "%d,%.6f,%.6f\n", r.Streams, r.RawLoss, r.SmoothedLoss)
		fmt.Printf("  n=%2d  raw %.4f  smoothed %.4f\n", r.Streams, r.RawLoss, r.SmoothedLoss)
	}
	f.Close()
	fmt.Println("  -> extB_multiplexing.csv")
	return nil
}

func extC(out string, pictures int, seed int64) error {
	rows, err := experiments.ExtC(pictures, seed)
	if err != nil {
		return err
	}
	f, err := create(out, "extC_estimators.csv")
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "estimator,area_diff,rate_changes,max_rate_bps,sd_rate_bps,max_delay_s")
	fmt.Println("== Ext C: size-estimator ablation (Driving1, K=1, H=N, D=0.2) ==")
	for _, r := range rows {
		fmt.Fprintf(f, "%s,%.6f,%d,%.1f,%.1f,%.6f\n",
			r.Estimator, r.Measures.AreaDiff, r.Measures.RateChanges, r.Measures.MaxRate, r.Measures.StdDev, r.MaxDelay)
		fmt.Printf("  %-10s area %.4f  changes %3d  max %.2f Mbps  sd %.2f Mbps  max delay %.4f s\n",
			r.Estimator, r.Measures.AreaDiff, r.Measures.RateChanges, r.Measures.MaxRate/1e6, r.Measures.StdDev/1e6, r.MaxDelay)
	}
	f.Close()
	fmt.Println("  -> extC_estimators.csv")
	return nil
}

func extD(out string, pictures int, seed int64) error {
	rows, err := experiments.ExtD(pictures, seed)
	if err != nil {
		return err
	}
	f, err := create(out, "extD_violations.csv")
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "K,D_seconds,violations,max_delay_s")
	fmt.Println("== Ext D: delay-bound violations with K=0 vs K=1 ==")
	for _, r := range rows {
		fmt.Fprintf(f, "%d,%.6f,%d,%.6f\n", r.K, r.D, r.Violations, r.MaxDelay)
		fmt.Printf("  K=%d D=%.4f: %3d violations, max delay %.4f s\n", r.K, r.D, r.Violations, r.MaxDelay)
	}
	f.Close()
	fmt.Println("  -> extD_violations.csv")
	return nil
}

func extE(out string, seed int64) error {
	res, err := experiments.ExtE(160, 112, 54, seed)
	if err != nil {
		return err
	}
	f, err := create(out, "extE_pipeline.csv")
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "pictures,stream_bits,i_mean,p_mean,b_mean,area_diff,max_delay_s,unsmoothed_peak_bps,smoothed_peak_bps")
	fmt.Fprintf(f, "%d,%d,%.1f,%.1f,%.1f,%.6f,%.6f,%.1f,%.1f\n",
		res.Pictures, res.StreamBits, res.IMean, res.PMean, res.BMean,
		res.Measures.AreaDiff, res.MaxDelay, res.UnsmoothedPeak, res.SmoothedPeak)
	f.Close()
	fmt.Println("== Ext E: full pipeline (synthetic video → MPEG codec → inspect → smooth) ==")
	fmt.Printf("  %d pictures, %d coded bits; mean sizes I=%.0f P=%.0f B=%.0f bits\n",
		res.Pictures, res.StreamBits, res.IMean, res.PMean, res.BMean)
	fmt.Printf("  unsmoothed peak %.3f Mbps → smoothed peak %.3f Mbps; max delay %.4f s\n",
		res.UnsmoothedPeak/1e6, res.SmoothedPeak/1e6, res.MaxDelay)
	fmt.Println("  -> extE_pipeline.csv")
	return nil
}
