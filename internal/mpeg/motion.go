package mpeg

import "mpegsmooth/internal/video"

// MotionVector is a displacement into a reference picture measured in
// HALF pixels, as in MPEG-1: even component values address full-pixel
// positions, odd values the bilinearly interpolated half positions.
type MotionVector struct {
	X, Y int
}

// isFullPel reports whether both components address full pixels.
func (mv MotionVector) isFullPel() bool { return mv.X&1 == 0 && mv.Y&1 == 0 }

// sadLumaFull computes the sum of absolute differences between the 16x16
// luma macroblock of cur at (mbx, mby) and the reference area displaced
// by the FULL-pixel vector (fx, fy). The caller guarantees the displaced
// area lies inside the frame. Accumulation stops early once the sum
// exceeds limit.
func sadLumaFull(cur, ref *video.Frame, mbx, mby, fx, fy, limit int) int {
	cx, cy := mbx*16, mby*16
	rx, ry := cx+fx, cy+fy
	sum := 0
	for dy := 0; dy < 16; dy++ {
		ci := (cy+dy)*cur.W + cx
		ri := (ry+dy)*ref.W + rx
		for dx := 0; dx < 16; dx++ {
			d := int(cur.Y[ci+dx]) - int(ref.Y[ri+dx])
			if d < 0 {
				d = -d
			}
			sum += d
		}
		if sum > limit {
			return sum
		}
	}
	return sum
}

// sadLumaHalf computes the SAD against the half-pel interpolated
// prediction for vector mv (in half-pels).
func sadLumaHalf(cur, ref *video.Frame, mbx, mby int, mv MotionVector) int {
	var pred [256]int32
	predictLuma(&pred, ref, mbx, mby, mv)
	cx, cy := mbx*16, mby*16
	sum := 0
	for dy := 0; dy < 16; dy++ {
		ci := (cy+dy)*cur.W + cx
		for dx := 0; dx < 16; dx++ {
			d := int(cur.Y[ci+dx]) - int(pred[dy*16+dx])
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum
}

// mvInBounds reports whether the (half-pel) vector's 16x16 prediction
// area lies inside the reference frame.
func mvInBounds(ref *video.Frame, mbx, mby int, mv MotionVector) bool {
	// Interpolation at odd positions reads one extra sample.
	x0 := mbx*32 + mv.X // half-pel coordinates
	y0 := mby*32 + mv.Y
	if x0 < 0 || y0 < 0 {
		return false
	}
	needX := x0/2 + 16
	if mv.X&1 != 0 {
		needX++
	}
	needY := y0/2 + 16
	if mv.Y&1 != 0 {
		needY++
	}
	return needX <= ref.W && needY <= ref.H
}

// searchMotion finds the half-pel motion vector minimizing luma SAD for
// the macroblock at (mbx, mby): an exhaustive full-pixel search within
// ±searchRange (the MPEG standard leaves the algorithm implementation-
// dependent; exhaustive search is the reference choice) followed by a
// half-pel refinement of the eight surrounding interpolated positions.
// Ties prefer shorter vectors — they cost fewer bits and favour skipped
// macroblocks. Returns the vector in half-pels and its SAD.
func searchMotion(cur, ref *video.Frame, mbx, mby, searchRange int) (MotionVector, int) {
	cx, cy := mbx*16, mby*16
	bestF := [2]int{0, 0}
	bestSAD := sadLumaFull(cur, ref, mbx, mby, 0, 0, 1<<30)
	for dy := -searchRange; dy <= searchRange; dy++ {
		for dx := -searchRange; dx <= searchRange; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			if cx+dx < 0 || cx+dx+16 > ref.W || cy+dy < 0 || cy+dy+16 > ref.H {
				continue
			}
			s := sadLumaFull(cur, ref, mbx, mby, dx, dy, bestSAD)
			if s < bestSAD || (s == bestSAD && absInt(dx)+absInt(dy) < absInt(bestF[0])+absInt(bestF[1])) {
				bestSAD, bestF = s, [2]int{dx, dy}
			}
		}
	}
	best := MotionVector{bestF[0] * 2, bestF[1] * 2}
	// Half-pel refinement around the full-pel winner.
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			mv := MotionVector{best.X + dx, best.Y + dy}
			if !mvInBounds(ref, mbx, mby, mv) {
				continue
			}
			s := sadLumaHalf(cur, ref, mbx, mby, mv)
			if s < bestSAD || (s == bestSAD && cheaper(mv, best)) {
				bestSAD, best = s, mv
			}
		}
	}
	return best, bestSAD
}

// searchMotionFullPel is searchMotion without the half-pel refinement
// (the FullPelOnly ablation).
func searchMotionFullPel(cur, ref *video.Frame, mbx, mby, searchRange int) (MotionVector, int) {
	cx, cy := mbx*16, mby*16
	best := [2]int{0, 0}
	bestSAD := sadLumaFull(cur, ref, mbx, mby, 0, 0, 1<<30)
	for dy := -searchRange; dy <= searchRange; dy++ {
		for dx := -searchRange; dx <= searchRange; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			if cx+dx < 0 || cx+dx+16 > ref.W || cy+dy < 0 || cy+dy+16 > ref.H {
				continue
			}
			s := sadLumaFull(cur, ref, mbx, mby, dx, dy, bestSAD)
			if s < bestSAD || (s == bestSAD && absInt(dx)+absInt(dy) < absInt(best[0])+absInt(best[1])) {
				bestSAD, best = s, [2]int{dx, dy}
			}
		}
	}
	return MotionVector{best[0] * 2, best[1] * 2}, bestSAD
}

// cheaper reports whether a costs fewer bits to code than b.
func cheaper(a, b MotionVector) bool {
	return absInt(a.X)+absInt(a.Y) < absInt(b.X)+absInt(b.Y)
}

// predictLuma writes the motion-compensated 16x16 luma prediction for the
// macroblock at (mbx, mby) into dst. mv is in half-pels; odd components
// produce the MPEG half-pel interpolation (2-tap averages, bilinear when
// both are odd, rounding up).
func predictLuma(dst *[256]int32, ref *video.Frame, mbx, mby int, mv MotionVector) {
	x0 := mbx*32 + mv.X
	y0 := mby*32 + mv.Y
	ix, iy := x0>>1, y0>>1
	hx, hy := x0&1, y0&1
	w := ref.W
	for dy := 0; dy < 16; dy++ {
		r0 := (iy + dy) * w
		for dx := 0; dx < 16; dx++ {
			i := r0 + ix + dx
			switch {
			case hx == 0 && hy == 0:
				dst[dy*16+dx] = int32(ref.Y[i])
			case hx == 1 && hy == 0:
				dst[dy*16+dx] = (int32(ref.Y[i]) + int32(ref.Y[i+1]) + 1) / 2
			case hx == 0 && hy == 1:
				dst[dy*16+dx] = (int32(ref.Y[i]) + int32(ref.Y[i+w]) + 1) / 2
			default:
				dst[dy*16+dx] = (int32(ref.Y[i]) + int32(ref.Y[i+1]) +
					int32(ref.Y[i+w]) + int32(ref.Y[i+w+1]) + 2) / 4
			}
		}
	}
}

// predictChroma writes the 8x8 chroma predictions for both planes.
// Chroma vectors are the luma half-pel vector halved (truncating toward
// zero), landing on the chroma plane's own half-pel grid, as in MPEG.
func predictChroma(dstCb, dstCr *[64]int32, ref *video.Frame, mbx, mby int, mv MotionVector) {
	cw, ch := ref.ChromaW(), ref.ChromaH()
	cmx, cmy := mv.X/2, mv.Y/2 // chroma displacement in chroma half-pels
	x0 := mbx*16 + cmx
	y0 := mby*16 + cmy
	ix, iy := x0>>1, y0>>1
	hx, hy := x0&1, y0&1
	// Clamp so interpolation stays inside the plane.
	maxX, maxY := cw-8, ch-8
	if hx == 1 {
		maxX--
	}
	if hy == 1 {
		maxY--
	}
	ix = clampInt(ix, 0, maxX)
	iy = clampInt(iy, 0, maxY)
	sample := func(plane []uint8, i int) int32 {
		switch {
		case hx == 0 && hy == 0:
			return int32(plane[i])
		case hx == 1 && hy == 0:
			return (int32(plane[i]) + int32(plane[i+1]) + 1) / 2
		case hx == 0 && hy == 1:
			return (int32(plane[i]) + int32(plane[i+cw]) + 1) / 2
		default:
			return (int32(plane[i]) + int32(plane[i+1]) +
				int32(plane[i+cw]) + int32(plane[i+cw+1]) + 2) / 4
		}
	}
	for dy := 0; dy < 8; dy++ {
		r0 := (iy + dy) * cw
		for dx := 0; dx < 8; dx++ {
			i := r0 + ix + dx
			dstCb[dy*8+dx] = sample(ref.Cb, i)
			dstCr[dy*8+dx] = sample(ref.Cr, i)
		}
	}
}

// averagePrediction interpolates two predictions with rounding, the B
// picture "interpolated" macroblock mode.
func averagePrediction(dst, a, b []int32) {
	for i := range dst {
		dst[i] = (a[i] + b[i] + 1) / 2
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
