package netsim

import (
	"math"
	"testing"
)

// fourPics is a small plan: four equal pictures, paced back to back at
// half the link rate, deadlines one second past their windows.
func fourPics() []FadingPicture {
	pics := make([]FadingPicture, 4)
	for i := range pics {
		pics[i] = FadingPicture{
			Bits:     4 * 9216,
			Start:    float64(i) * 0.1,
			Rate:     368640, // 4 packets over 0.1s
			Deadline: float64(i)*0.1 + 1,
		}
	}
	return pics
}

// TestFadingCleanChannelDeliversAll: with outage probability zero the
// channel never drops, every picture survives, and nothing retransmits.
func TestFadingCleanChannelDeliversAll(t *testing.T) {
	res, err := RunFading(FadingChannelConfig{
		LinkRate: 2 * 368640, Seed: 1, Coherence: 0.05, OutageProb: 0,
	}, fourPics())
	if err != nil {
		t.Fatal(err)
	}
	if res.Survived != 4 || res.Retransmits != 0 || res.Sent != 16 {
		t.Fatalf("clean channel: %+v", res)
	}
	for i, f := range res.Finish {
		if f < 0 {
			t.Fatalf("picture %d has no finish time on a clean channel", i)
		}
	}
}

// TestFadingFullOutageKillsAll: with every block in outage nothing is
// ever delivered; every picture dies at its deadline, with the ARQ
// having retried until retrying became pointless.
func TestFadingFullOutageKillsAll(t *testing.T) {
	res, err := RunFading(FadingChannelConfig{
		LinkRate: 2 * 368640, Seed: 1, Coherence: 0.05, OutageProb: 1,
	}, fourPics())
	if err != nil {
		t.Fatal(err)
	}
	if res.Survived != 0 {
		t.Fatalf("full outage delivered pictures: %+v", res)
	}
	if res.Retransmits == 0 {
		t.Fatalf("full outage with no retransmission attempts: %+v", res)
	}
	for i, f := range res.Finish {
		if f >= 0 {
			t.Fatalf("picture %d finished through a full outage", i)
		}
	}
}

// TestFadingDeterministic: identical configs replay identical results —
// the simulation consumes no RNG, only the (seed, block) hash.
func TestFadingDeterministic(t *testing.T) {
	cfg := FadingChannelConfig{
		LinkRate: 1.5 * 368640, Seed: 42, Coherence: 0.03, OutageProb: 0.3,
	}
	a, err := RunFading(cfg, fourPics())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFading(cfg, fourPics())
	if err != nil {
		t.Fatal(err)
	}
	if a.Survived != b.Survived || a.Sent != b.Sent || a.Retransmits != b.Retransmits {
		t.Fatalf("same config, different outcomes: %+v vs %+v", a, b)
	}
	for i := range a.Finish {
		if a.Finish[i] != b.Finish[i] {
			t.Fatalf("finish times diverge at picture %d", i)
		}
	}
	if a.Retransmits == 0 {
		t.Fatalf("30%% outage blocks caused no retransmissions: %+v", a)
	}
}

// TestFadingRecoveryNeedsHeadroom: at 30% outage a generously
// provisioned link recovers every picture inside the deadline slack; a
// link with no headroom over the sending rate loses some — bandwidth
// headroom is what turns retransmission into recovery.
func TestFadingRecoveryNeedsHeadroom(t *testing.T) {
	pics := func(deadlineSlack float64) []FadingPicture {
		ps := fourPics()
		for i := range ps {
			ps[i].Deadline = ps[i].Start + 0.1 + deadlineSlack
		}
		return ps
	}
	roomy, err := RunFading(FadingChannelConfig{
		LinkRate: 8 * 368640, Seed: 9, Coherence: 0.02, OutageProb: 0.3,
	}, pics(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if roomy.Survived != 4 {
		t.Fatalf("roomy link lost pictures under mild fading: %+v", roomy)
	}
	tight, err := RunFading(FadingChannelConfig{
		LinkRate: 368640, Seed: 9, Coherence: 0.02, OutageProb: 0.3,
	}, pics(0.02))
	if err != nil {
		t.Fatal(err)
	}
	if tight.Survived == 4 {
		t.Fatalf("zero-headroom link with thin slack survived 30%% outage: %+v", tight)
	}
}

// TestFadingRejectsBadConfig: non-positive link, coherence, bits, or
// rate are caller errors, not silent defaults.
func TestFadingRejectsBadConfig(t *testing.T) {
	if _, err := RunFading(FadingChannelConfig{Coherence: 1}, fourPics()); err == nil {
		t.Fatal("accepted zero link rate")
	}
	if _, err := RunFading(FadingChannelConfig{LinkRate: 1e6}, fourPics()); err == nil {
		t.Fatal("accepted zero coherence")
	}
	bad := fourPics()
	bad[2].Rate = 0
	if _, err := RunFading(FadingChannelConfig{LinkRate: 1e6, Coherence: 1}, bad); err == nil {
		t.Fatal("accepted zero picture rate")
	}
}

// TestFadingSurvivalEmpty: an empty plan trivially survives.
func TestFadingSurvivalEmpty(t *testing.T) {
	res, err := RunFading(FadingChannelConfig{LinkRate: 1e6, Coherence: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Survival(); s != 1 || math.IsNaN(s) {
		t.Fatalf("empty plan survival = %v, want 1", s)
	}
}
