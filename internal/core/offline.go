package core

import (
	"fmt"
	"math"
	"sort"

	"mpegsmooth/internal/metrics"
	"mpegsmooth/internal/trace"
)

// OfflineSchedule is the result of offline-optimal smoothing with all
// picture sizes known a priori — the setting analyzed by Ott, Lakshman,
// and Tabatabai for ATM traffic, which the paper cites as the a-priori
// solution ("One such solution is given by Ott et al."). The cumulative
// transmission curve is the taut string threaded between the arrival
// ceiling and the deadline floor; among all feasible schedules it
// simultaneously minimizes the peak rate and the rate variance.
type OfflineSchedule struct {
	Trace *trace.Trace
	// D is the per-picture delay bound the schedule satisfies.
	D float64
	// VertexT and VertexBits are the taut string's vertices: cumulative
	// bits transmitted as a piecewise-linear function of time.
	VertexT    []float64
	VertexBits []float64
	// Start, Depart, Delays are the per-picture times implied by the
	// cumulative curve (Start[j]: transmission of picture j begins;
	// Depart[j]: its last bit leaves).
	Start  []float64
	Depart []float64
	Delays []float64
}

// OfflineSmooth computes the offline-optimal schedule for delay bound D.
// It requires D >= τ (a picture cannot depart before it finishes
// arriving).
func OfflineSmooth(tr *trace.Trace, D float64) (*OfflineSchedule, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	tau := tr.Tau
	if D < tau {
		return nil, fmt.Errorf("core: offline delay bound %v < picture period %v", D, tau)
	}
	n := tr.Len()
	// Cumulative sizes: cum[k] = bits of pictures 0..k-1.
	cum := make([]float64, n+1)
	for j := 0; j < n; j++ {
		cum[j+1] = cum[j] + float64(tr.Sizes[j])
	}

	// Constraint points. The ceiling binds just before each arrival jump:
	// X((j+1)τ) <= cum[j]  (picture j's bits only complete at (j+1)τ).
	// The floor binds at each deadline: X(jτ + D) >= cum[j+1].
	// The path starts at (0, 0) and ends pinned at ((n−1)τ + D, cum[n]).
	type cpoint struct {
		t         float64
		low, high float64
	}
	end := float64(n-1)*tau + D
	pts := map[float64]*cpoint{}
	addPoint := func(t, low, high float64) {
		p, ok := pts[t]
		if !ok {
			p = &cpoint{t: t, low: math.Inf(-1), high: math.Inf(1)}
			pts[t] = p
		}
		p.low = math.Max(p.low, low)
		p.high = math.Min(p.high, high)
	}
	for j := 0; j < n; j++ {
		if a := float64(j+1) * tau; a < end {
			addPoint(a, math.Inf(-1), cum[j])
		}
		addPoint(float64(j)*tau+D, cum[j+1], math.Inf(1))
	}
	addPoint(end, cum[n], cum[n])
	points := make([]cpoint, 0, len(pts))
	for _, p := range pts {
		points = append(points, *p)
	}
	sort.Slice(points, func(i, j int) bool { return points[i].t < points[j].t })
	for _, p := range points {
		if p.low > p.high+1e-9 {
			return nil, fmt.Errorf("core: infeasible corridor at t=%v (low %v > high %v)", p.t, p.low, p.high)
		}
	}

	// Taut string (funnel) walk.
	o := &OfflineSchedule{Trace: tr, D: D, VertexT: []float64{0}, VertexBits: []float64{0}}
	anchorT, anchorY := 0.0, 0.0
	anchorIdx := -1 // index into points of the anchor (-1 = origin)
	for anchorIdx < len(points)-1 {
		maxLowSlope, minHighSlope := math.Inf(-1), math.Inf(1)
		lowIdx, highIdx := -1, -1
		bent := false
		for k := anchorIdx + 1; k < len(points); k++ {
			p := points[k]
			dt := p.t - anchorT
			if dt <= 0 {
				return nil, fmt.Errorf("core: degenerate corridor time step at %v", p.t)
			}
			sLow := (p.low - anchorY) / dt
			sHigh := (p.high - anchorY) / dt
			if sLow > minHighSlope+1e-12 {
				// The floor rises above the flattest feasible ceiling
				// line: the path must bend downward-hugging the ceiling
				// at the point that set minHighSlope.
				bp := points[highIdx]
				anchorT, anchorY, anchorIdx = bp.t, bp.high, highIdx
				bent = true
				break
			}
			if sHigh < maxLowSlope-1e-12 {
				// The ceiling dips below the steepest required floor
				// line: bend upward-hugging the floor.
				bp := points[lowIdx]
				anchorT, anchorY, anchorIdx = bp.t, bp.low, lowIdx
				bent = true
				break
			}
			if sLow > maxLowSlope {
				maxLowSlope, lowIdx = sLow, k
			}
			if sHigh < minHighSlope {
				minHighSlope, highIdx = sHigh, k
			}
		}
		if !bent {
			// The whole remaining corridor admits a straight line; land
			// on the final (pinned) point.
			last := points[len(points)-1]
			anchorT, anchorY, anchorIdx = last.t, last.low, len(points)-1
		}
		o.VertexT = append(o.VertexT, anchorT)
		o.VertexBits = append(o.VertexBits, anchorY)
	}

	o.computePictureTimes(cum)
	return o, nil
}

// computePictureTimes derives per-picture start/departure/delay from the
// cumulative curve.
func (o *OfflineSchedule) computePictureTimes(cum []float64) {
	n := o.Trace.Len()
	o.Start = make([]float64, n)
	o.Depart = make([]float64, n)
	o.Delays = make([]float64, n)
	tau := o.Trace.Tau
	for j := 0; j < n; j++ {
		// Start: last time X == cum[j] (transmission begins rising past
		// the boundary). Depart: first time X == cum[j+1].
		o.Start[j] = o.lastTimeAt(cum[j])
		o.Depart[j] = o.firstTimeAt(cum[j+1])
		o.Delays[j] = o.Depart[j] - float64(j)*tau
	}
}

// firstTimeAt returns the earliest time the cumulative curve reaches y.
func (o *OfflineSchedule) firstTimeAt(y float64) float64 {
	for k := 1; k < len(o.VertexT); k++ {
		if o.VertexBits[k] >= y-1e-9 {
			y0, y1 := o.VertexBits[k-1], o.VertexBits[k]
			if y1 == y0 {
				return o.VertexT[k-1]
			}
			frac := (y - y0) / (y1 - y0)
			if frac < 0 {
				frac = 0
			}
			return o.VertexT[k-1] + frac*(o.VertexT[k]-o.VertexT[k-1])
		}
	}
	return o.VertexT[len(o.VertexT)-1]
}

// lastTimeAt returns the latest time the cumulative curve equals y.
func (o *OfflineSchedule) lastTimeAt(y float64) float64 {
	t := o.VertexT[0]
	for k := 1; k < len(o.VertexT); k++ {
		y0, y1 := o.VertexBits[k-1], o.VertexBits[k]
		if y1 <= y+1e-9 {
			t = o.VertexT[k]
			continue
		}
		if y0 <= y+1e-9 {
			if y1 == y0 {
				t = o.VertexT[k]
				continue
			}
			frac := (y - y0) / (y1 - y0)
			if frac < 0 {
				frac = 0
			}
			return o.VertexT[k-1] + frac*(o.VertexT[k]-o.VertexT[k-1])
		}
		break
	}
	return t
}

// RateFunc returns the taut string's slope as a step function of time.
func (o *OfflineSchedule) RateFunc() (*metrics.StepFunc, error) {
	var times, values []float64
	for k := 1; k < len(o.VertexT); k++ {
		dt := o.VertexT[k] - o.VertexT[k-1]
		if dt <= 0 {
			continue
		}
		times = append(times, o.VertexT[k-1])
		values = append(values, (o.VertexBits[k]-o.VertexBits[k-1])/dt)
	}
	return metrics.NewStepFunc(times, values, o.VertexT[len(o.VertexT)-1])
}

// RateChanges counts slope changes of the cumulative curve.
func (o *OfflineSchedule) RateChanges() int {
	f, err := o.RateFunc()
	if err != nil {
		return 0
	}
	return f.Changes(metrics.RateChangeTolerance)
}

// PeakRate returns the maximum slope.
func (o *OfflineSchedule) PeakRate() float64 {
	f, err := o.RateFunc()
	if err != nil {
		return 0
	}
	return f.Max()
}

// CheckDelayBound verifies every picture departs by its deadline.
// It returns the first violating picture, or -1.
func (o *OfflineSchedule) CheckDelayBound() int {
	for j, d := range o.Delays {
		if d > o.D+1e-6 {
			return j
		}
	}
	return -1
}

// CheckCausality verifies no picture departs before it has arrived.
// It returns the first violating picture, or -1.
func (o *OfflineSchedule) CheckCausality() int {
	tau := o.Trace.Tau
	for j := range o.Depart {
		if o.Depart[j] < float64(j+1)*tau-1e-6 {
			return j
		}
	}
	return -1
}
