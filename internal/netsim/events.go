// Package netsim is a discrete-event simulator of a finite-buffer FIFO
// packet multiplexer fed by rate-scheduled video sources.
//
// The paper motivates lossless smoothing with the observation, due to
// Reibman/Berger and Reininger et al., that "the statistical multiplexing
// gain of finite-buffer packet switches can improve substantially by
// reducing the variance of input traffic rates" for a specified bound on
// loss probability. This package reproduces that motivating experiment:
// n video streams — either raw (each picture sent in one picture period)
// or smoothed (sent at the rates chosen by the smoothing algorithm) —
// share an ATM-like multiplexer, and the cell-loss probability is
// measured as n grows.
package netsim

import "container/heap"

// Event is a scheduled simulation action.
type Event struct {
	Time float64
	// Seq breaks ties deterministically (FIFO among simultaneous events).
	Seq int64
	// Fire runs the event's action.
	Fire func()
}

// eventQueue is a min-heap of events ordered by (Time, Seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].Time != q[j].Time {
		return q[i].Time < q[j].Time
	}
	return q[i].Seq < q[j].Seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*Event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Scheduler drives a discrete-event simulation.
type Scheduler struct {
	queue eventQueue
	now   float64
	seq   int64
}

// NewScheduler returns an empty scheduler at time 0.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current simulation time.
func (s *Scheduler) Now() float64 { return s.now }

// At schedules fire to run at time t. Scheduling in the past panics —
// that is always a simulation bug.
func (s *Scheduler) At(t float64, fire func()) {
	if t < s.now {
		panic("netsim: scheduling event in the past")
	}
	s.seq++
	heap.Push(&s.queue, &Event{Time: t, Seq: s.seq, Fire: fire})
}

// Run executes events in time order until the queue is empty or the
// horizon is passed. It returns the number of events fired.
func (s *Scheduler) Run(horizon float64) int {
	fired := 0
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.Time > horizon {
			s.now = horizon
			return fired
		}
		s.now = e.Time
		e.Fire()
		fired++
	}
	return fired
}
