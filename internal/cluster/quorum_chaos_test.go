package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"mpegsmooth/internal/journal"
	"mpegsmooth/internal/server"
)

// quorumTrio is the multi-follower chain under test: one primary
// (rank 0) and two followers (ranks 1 and 2) on one shard, configured
// for quorum-2 commits — every admission/completion verdict waits for
// the primary's fsync plus one follower ack.
type quorumTrio struct {
	nodes []*Node // indexed by rank
	dirs  []string
	addr  string // the shard's stream address
}

func startQuorumTrio(t testing.TB, scfg server.Config, seed int64) *quorumTrio {
	t.Helper()
	addrs := freeAddrs(t, 2)
	peers := []Peer{{Name: "alpha", StreamAddr: addrs[0], ReplAddr: addrs[1]}}
	trio := &quorumTrio{}
	for rank := 0; rank < 3; rank++ {
		dir := t.TempDir()
		cfg := Config{Shard: "alpha", Rank: rank, Peers: peers, Server: scfg,
			Replicas: 2, Quorum: 2, Seed: seed*10 + int64(rank) + 1,
			Journal: journal.Config{Dir: dir, FlushInterval: 5 * time.Millisecond}}
		fastTimings(&cfg)
		trio.nodes = append(trio.nodes, startNode(t, cfg))
		trio.dirs = append(trio.dirs, dir)
	}
	trio.addr = trio.nodes[0].StreamAddr()
	// The gate starts degraded (no followers yet); every test must see
	// the quorum actually form before disrupting anything, or the
	// guarantee under test is not yet in force.
	waitFor(t, "quorum formed", func() bool {
		st := trio.nodes[0].Status().Replication
		return st.ReplicasConnected == 2 && !st.QuorumDegraded
	})
	return trio
}

// The three disruption schedules of the quorum chaos suite.
const (
	schedKillPrimary   = "kill-primary"
	schedKillFollower  = "kill-follower"
	schedPartitionHeal = "partition-heal"
)

// runQuorumChaos drives `clients` resumable streams through a quorum-2
// trio, disrupts it mid-stream per the schedule, and requires every
// client to finish byte-exact with exactly one admission each, zero
// acknowledged-then-forgotten records, and zero leaked reservations.
//
// The kill-primary schedule deliberately does NOT wait for the
// followers to catch up before the kill — and destroys the dead
// primary's journal directory. Recovery must come entirely from the
// quorum guarantee: any admission verdict a client holds was acked by
// rank 1 before it was released, so rank 1's replica alone must carry
// every acknowledged session. The exactly-one-admission assertion below
// is the acknowledged-then-forgotten check: a forgotten admission would
// force a re-admission on the survivor and overshoot the total.
func runQuorumChaos(t *testing.T, seed int64, clients int, schedule string) {
	kit := makeClient(t, testTrace(t, 240))
	scfg := server.Config{
		LinkRate:     float64(clients+1) * kit.hello.PeakRate,
		ReadTimeout:  2 * time.Second,
		ResumeWindow: 30 * time.Second,
		TimeScale:    crashTimeScale,
	}
	trio := startQuorumTrio(t, scfg, seed)
	epoch0 := trio.nodes[0].Epoch()
	if epoch0 == 0 {
		t.Fatal("primary serving without a fencing epoch")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		resumes  int
		already  int
		failures []error
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs := resumableClient(kit, trio.addr, seed*100+int64(i)+1)
			rs.Sender.TimeScale = crashTimeScale
			rs.MaxAttempts = 60
			res, err := rs.StreamSchedule(ctx, kit.sched, kit.payloads)
			mu.Lock()
			defer mu.Unlock()
			resumes += res.Resumes
			if res.AlreadyComplete {
				already++
			}
			if err != nil {
				failures = append(failures, fmt.Errorf("client %d: %w", i, err))
			}
		}(i)
	}

	// Gate the disruption: every client holds a delivered (quorum-acked)
	// admission verdict and at least one accepted picture, so it lands
	// mid-stream with no admission fsync in flight.
	waitFor(t, "all clients underway", func() bool {
		s := trio.nodes[0].Server().Snapshot()
		if s.Streams.Admitted != int64(clients) || len(s.PerStream) != clients {
			return false
		}
		for _, ss := range s.PerStream {
			if ss.Pictures < 1 {
				return false
			}
		}
		return true
	})
	primarySnap := trio.nodes[0].Server().Snapshot()

	switch schedule {
	case schedKillPrimary:
		trio.nodes[0].Kill()
		if err := os.RemoveAll(trio.dirs[0]); err != nil {
			t.Fatalf("destroying the dead primary's journal dir: %v", err)
		}
	case schedKillFollower:
		// The quorum-carrying rank dies; durability must ride rank 2
		// with no degrade (one follower still satisfies quorum 2) and,
		// above all, no wedged admissions.
		trio.nodes[1].Kill()
		if err := os.RemoveAll(trio.dirs[1]); err != nil {
			t.Fatalf("destroying the dead follower's journal dir: %v", err)
		}
	case schedPartitionHeal:
		// The primary is isolated, NOT killed: the deposed-primary case
		// epoch fencing exists for. It demotes itself (it cannot prove
		// authority), rank 1 promotes under a higher epoch, and the old
		// primary rejoins as a follower after the heal.
		trio.nodes[0].Partition()
	default:
		t.Fatalf("unknown schedule %q", schedule)
	}

	wg.Wait()
	for _, err := range failures {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	var survivor *Node
	if schedule == schedKillFollower {
		survivor = trio.nodes[0]
		if survivor.Role() != RolePrimary {
			t.Fatal("primary lost its role when a follower died")
		}
	} else {
		if resumes < 1 {
			t.Fatal("no client resumed — the disruption never landed mid-stream")
		}
		// Rank 1 must be the promotion winner: it is the rank the quorum
		// guarantee deposited every acknowledged record on.
		waitFor(t, "rank 1 promoted", func() bool {
			return trio.nodes[1].Role() == RolePrimary
		})
		survivor = trio.nodes[1]
	}
	promoted := survivor.Server()
	if promoted == nil {
		t.Fatal("surviving primary has no server")
	}
	waitFor(t, "surviving server drained", func() bool {
		s := promoted.Snapshot()
		return s.Streams.Active == 0 && s.Streams.Parked == 0
	})

	final := promoted.Snapshot()
	if schedule == schedKillFollower {
		if final.Streams.Admitted != int64(clients) {
			t.Errorf("admitted %d sessions for %d clients", final.Streams.Admitted, clients)
		}
		if final.Streams.Completed+int64(already) < int64(clients) {
			t.Errorf("completions %d + already-complete %d < %d clients", final.Streams.Completed, already, clients)
		}
		if st := survivor.Status().Replication; st.QuorumCommits == 0 {
			t.Error("no quorum commit after the follower kill — durability never rode rank 2")
		}
	} else {
		// Exactly one admission per client across the promotion — the
		// zero-acknowledged-then-forgotten assertion.
		if total := primarySnap.Streams.Admitted + final.Streams.Admitted; total != int64(clients) {
			t.Errorf("admitted %d sessions across the failover for %d clients (primary %d + promoted %d)",
				total, clients, primarySnap.Streams.Admitted, final.Streams.Admitted)
		}
		if final.Streams.Recovered < 1 {
			t.Error("the promoted follower recovered no stream from its replica — failover was cold")
		}
		completed := primarySnap.Streams.Completed + final.Streams.Completed
		if completed+int64(already) < int64(clients) {
			t.Errorf("completions %d + already-complete %d < %d clients", completed, already, clients)
		}
		if survivor.Epoch() <= epoch0 {
			t.Errorf("promoted epoch %d did not advance past the deposed primary's %d", survivor.Epoch(), epoch0)
		}
	}
	// Zero leaked reservations on the survivor.
	if final.ReservedPeak != 0 || final.AvailablePeak != final.CapacityBPS {
		t.Errorf("reservations leaked: reserved %v, available %v, capacity %v",
			final.ReservedPeak, final.AvailablePeak, final.CapacityBPS)
	}

	if schedule == schedPartitionHeal {
		// The deposed primary stood down instead of split-braining...
		if d := trio.nodes[0].Demotions(); d < 1 {
			t.Errorf("deposed primary demoted %d times, want >= 1", d)
		}
		// ...and after the heal it rejoins the shard as a follower of
		// the new primary, adopting the higher epoch via resync.
		trio.nodes[0].Heal()
		waitFor(t, "deposed primary re-attached as follower", func() bool {
			st := trio.nodes[0].Status()
			return st.Role == RoleFollower && st.Replication.Connected
		})
		waitFor(t, "deposed primary adopted the new epoch", func() bool {
			return trio.nodes[0].Status().Replication.Epoch >= survivor.Epoch()
		})
	}

	// The surviving primary's quorum re-forms from the remaining
	// followers, and readiness flips back with it.
	waitFor(t, "quorum re-formed on the survivor", func() bool {
		st := survivor.Status().Replication
		return st.ReplicasConnected >= 1 && !st.QuorumDegraded
	})
	rec := httptest.NewRecorder()
	survivor.OpsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"role":"primary"`) {
		t.Errorf("survivor /healthz = %d %q, want 200 primary", rec.Code, rec.Body.String())
	}

	// Durable ledger agreement: with every client finished, no journaled
	// stream (reservation) survives on the surviving primary's disk.
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer shutCancel()
	survivorDir := trio.dirs[1]
	if schedule == schedKillFollower {
		survivorDir = trio.dirs[0]
	}
	if err := survivor.Shutdown(shutCtx); err != nil {
		t.Fatalf("shutting down the surviving primary: %v", err)
	}
	j, err := journal.Open(journal.Config{Dir: survivorDir, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if n := len(j.State().Streams); n != 0 {
		t.Errorf("%d streams still journaled on the survivor after every client finished", n)
	}
	if e := j.Epoch(); e == 0 {
		t.Error("survivor journal carries no fencing epoch")
	}
}

// TestQuorumKillPrimary: the primary process dies and its journal
// directory is destroyed with NO follower catch-up gate — the quorum
// ack-hold alone must guarantee rank 1 carries every acknowledged
// admission through the promotion.
func TestQuorumKillPrimary(t *testing.T) {
	if testing.Short() {
		t.Skip("quorum chaos skipped in -short mode")
	}
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runQuorumChaos(t, seed, 4, schedKillPrimary)
		})
	}
}

// TestQuorumKillFollower: the quorum-carrying follower dies mid-stream.
// A sick standby may slow durability but must never wedge admission —
// commits ride the next rank and every client still finishes.
func TestQuorumKillFollower(t *testing.T) {
	if testing.Short() {
		t.Skip("quorum chaos skipped in -short mode")
	}
	for _, seed := range []int64{4, 5, 6} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runQuorumChaos(t, seed, 4, schedKillFollower)
		})
	}
}

// TestQuorumPartitionHeal: the primary is partitioned (isolated, not
// killed), rank 1 promotes under a higher epoch, and the deposed
// primary demotes and rejoins as a follower after the heal — the epoch
// fencing acceptance case.
func TestQuorumPartitionHeal(t *testing.T) {
	if testing.Short() {
		t.Skip("quorum chaos skipped in -short mode")
	}
	for _, seed := range []int64{7, 8, 9} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runQuorumChaos(t, seed, 4, schedPartitionHeal)
		})
	}
}

// TestQuorumStatsSurface pins the ops satellite: the primary's /stats
// (and the smoothd_cluster expvar mirror) expose the quorum state —
// configured/connected replicas, per-follower acked-cursor lag, the
// epoch, and the degrade counters — and /healthz flips loudly to
// not-ready/quorum-degraded when the followers fall away.
func TestQuorumStatsSurface(t *testing.T) {
	kit := makeClient(t, testTrace(t, 54))
	scfg := server.Config{LinkRate: 2 * kit.hello.PeakRate, TimeScale: soakTimeScale, ResumeWindow: 10 * time.Second}
	trio := startQuorumTrio(t, scfg, 77)
	primary := trio.nodes[0]

	rs := resumableClient(kit, trio.addr, 1)
	if _, err := rs.StreamSchedule(context.Background(), kit.sched, kit.payloads); err != nil {
		t.Fatalf("stream through quorum primary: %v", err)
	}

	st := primary.Status().Replication
	if st.Epoch == 0 || st.ReplicasConfigured != 2 || st.QuorumConfigured != 2 || st.ReplicasConnected != 2 {
		t.Errorf("quorum status %+v: want epoch > 0, 2 replicas configured+connected, quorum 2", st)
	}
	if st.QuorumCommits == 0 {
		t.Errorf("quorum status %+v: a completed stream produced no quorum commit", st)
	}
	if len(st.AckLagRecords) != 2 {
		t.Errorf("ack lag gauge has %d followers, want 2: %v", len(st.AckLagRecords), st.AckLagRecords)
	}
	waitFor(t, "acked cursors caught up", func() bool {
		for _, lag := range primary.Status().Replication.AckLagRecords {
			if lag != 0 {
				return false
			}
		}
		return true
	})

	// JSON shape: every quorum gauge is a stable key under
	// cluster.replication, asserted the same way as the lag gauges.
	get := func(n *Node, path string) (int, string) {
		rec := httptest.NewRecorder()
		n.OpsHandler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}
	_, body := get(primary, "/stats")
	for _, key := range []string{
		`"epoch"`, `"replicas_configured"`, `"replicas_connected"`, `"quorum_configured"`,
		`"quorum_degraded"`, `"quorum_commits"`, `"local_commits"`, `"quorum_degraded_events"`,
		`"ack_timeouts"`, `"ack_lag_records"`, `"dial_retries"`, `"demotions"`,
	} {
		if !strings.Contains(body, key) {
			t.Errorf("primary /stats lacks %s", key)
		}
	}
	if code, body := get(primary, "/healthz"); code != 200 {
		t.Errorf("primary /healthz = %d %q with the quorum formed", code, body)
	}

	// Both followers die: quorum 2 is impossible, the primary degrades —
	// still admitting on local durability, but loudly not-ready.
	trio.nodes[1].Kill()
	trio.nodes[2].Kill()
	waitFor(t, "quorum degraded after follower loss", func() bool {
		return primary.Status().Replication.QuorumDegraded
	})
	if code, body := get(primary, "/healthz"); code != 503 ||
		!strings.Contains(body, `"reason":"quorum-degraded"`) {
		t.Errorf("degraded primary /healthz = %d %q, want 503 quorum-degraded", code, body)
	}
	// No wedge: a client admitted under the degraded gate still streams
	// to completion on local commits.
	rs = resumableClient(kit, trio.addr, 2)
	if _, err := rs.StreamSchedule(context.Background(), kit.sched, kit.payloads); err != nil {
		t.Fatalf("stream through degraded primary: %v", err)
	}
	st = primary.Status().Replication
	if st.DegradedEvents < 1 || st.LocalCommits == 0 {
		t.Errorf("degraded counters %+v: want a degraded event and local commits", st)
	}
}

// benchClusterIngest is the quorum variant of the server package's
// BenchmarkServerIngestJournal: same journal-first commit path, but
// over real TCP through a cluster primary, with the verdict ack-hold
// measured against a live follower chain.
func benchClusterIngest(b *testing.B, quorum int) {
	const streams = 4
	kit := makeClient(b, testTrace(b, 54))
	addrs := freeAddrs(b, 2)
	peers := []Peer{{Name: "alpha", StreamAddr: addrs[0], ReplAddr: addrs[1]}}
	scfg := server.Config{LinkRate: float64(streams+1) * kit.hello.PeakRate, TimeScale: 1e6, ResumeWindow: 10 * time.Second}
	pcfg := Config{Shard: "alpha", Rank: 0, Peers: peers, Server: scfg,
		Replicas: 1, Quorum: quorum, Seed: 1,
		Journal: journal.Config{Dir: b.TempDir(), FlushInterval: time.Millisecond}}
	fastTimings(&pcfg)
	primary := startNode(b, pcfg)
	fcfg := Config{Shard: "alpha", Rank: 1, Peers: peers, Server: scfg,
		Replicas: 1, Quorum: quorum, Seed: 2,
		Journal: journal.Config{Dir: b.TempDir(), FlushInterval: time.Millisecond}}
	fastTimings(&fcfg)
	follower := startNode(b, fcfg)
	waitFor(b, "follower attached", func() bool {
		st := primary.Status().Replication
		if quorum >= 2 {
			return st.ReplicasConnected == 1 && !st.QuorumDegraded
		}
		return follower.Status().Replication.Connected
	})

	var streamBytes int64
	for _, p := range kit.payloads {
		streamBytes += int64(len(p))
	}
	b.SetBytes(streams * streamBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for j := 0; j < streams; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				rs := resumableClient(kit, primary.StreamAddr(), int64(i*streams+j)+1)
				rs.Sender.TimeScale = 1e6
				if _, err := rs.StreamSchedule(context.Background(), kit.sched, kit.payloads); err != nil {
					b.Error(err)
				}
			}(j)
		}
		wg.Wait()
	}
	b.StopTimer()
}

// BenchmarkClusterIngestQuorum records the ack-hold overhead: "local"
// is the journal-first path with quorum gating off, "quorum2" holds
// every verdict for a follower ack over the same loopback link.
func BenchmarkClusterIngestQuorum(b *testing.B) {
	b.Run("local", func(b *testing.B) { benchClusterIngest(b, 0) })
	b.Run("quorum2", func(b *testing.B) { benchClusterIngest(b, 2) })
}
