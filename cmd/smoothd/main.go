// Command smoothd is the multi-stream smoothing server: it accepts
// picture-stream sessions over TCP, admits each one against a shared
// egress link's capacity by its declared smoothed peak rate, smooths
// every admitted stream through its own session with the configured
// policy, and paces all output onto the shared link. An operations
// endpoint on a side port reports live counters as JSON and expvar.
//
// Usage:
//
//	smoothd -listen 127.0.0.1:8402 -ops 127.0.0.1:8403 -capacity 10e6
//	streamer send -connect 127.0.0.1:8402 -handshake -seq driving1
//
// SIGINT/SIGTERM drain gracefully: no new sessions are admitted, active
// streams run to completion (bounded by -drain-timeout), then the
// process exits with a summary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mpegsmooth"
	"mpegsmooth/internal/cluster"
	"mpegsmooth/internal/journal"
	"mpegsmooth/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "smoothd: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("smoothd", flag.ContinueOnError)
	var (
		listen       = fs.String("listen", "127.0.0.1:8402", "stream session listen address")
		opsAddr      = fs.String("ops", "127.0.0.1:8403", "operations endpoint listen address (empty = disabled)")
		capacity     = fs.Float64("capacity", 10e6, "shared egress link capacity (bits/s)")
		policySpec   = fs.String("policy", "basic", "rate policy: basic, moving-average, capped:<bps>, min-var")
		hFlag        = fs.Int("H", 0, "lookahead in pictures (0 = each stream's pattern length)")
		queueLen     = fs.Int("queue", 32, "per-stream decision queue length (backpressure bound)")
		maxStreams   = fs.Int("max-streams", 0, "concurrent stream cap (0 = capacity-limited only)")
		readTimeout  = fs.Duration("read-timeout", 30*time.Second, "per-message read deadline")
		writeTimeout = fs.Duration("write-timeout", 30*time.Second, "per-write deadline for verdicts and deadline-capable egress sinks")
		resumeWindow = fs.Duration("resume-window", 10*time.Second, "how long a disconnected stream may reconnect and resume (0 = disabled)")
		maxPicture   = fs.Int("max-picture-bytes", 0, "declared picture payload size cap (0 = default 4 MiB)")
		drainTimeout = fs.Duration("drain-timeout", 15*time.Second, "graceful drain limit on shutdown")
		timescale    = fs.Float64("timescale", 1, "egress pacing speed multiplier (1 = real time)")
		journalDir   = fs.String("journal-dir", "", "session journal directory: admissions, watermarks, and completions survive a crash-restart (empty = no journal)")
		commitWindow = fs.Duration("commit-window", 0, "journal group-commit window: how long a batch leader waits for more records before the shared fsync (0 = opportunistic batching only)")
		commitBytes  = fs.Int("commit-bytes", 0, "journal group-commit byte threshold that closes an open commit window early (0 = default 64 KiB)")
		integrity    = fs.String("integrity", "fnv", "prefix-integrity mode every hello must declare: fnv or hmac-sha256:<keyfile>")
		datagram     = fs.Bool("datagram", false, "listen on UDP and run the stream protocol over the selective-repeat ARQ datagram transport (standalone mode only)")
		quiet        = fs.Bool("quiet", false, "suppress per-session log lines")

		clusterRole = fs.String("cluster", "", "cluster role: primary or follower:<rank> (empty = standalone)")
		shard       = fs.String("shard", "", "this node's shard name (cluster mode)")
		peersSpec   = fs.String("peers", "", "fleet peer list: name=streamAddr/replAddr,... (cluster mode)")
		failoverTO  = fs.Duration("failover-timeout", 2*time.Second, "replication silence a follower tolerates before promoting (cluster mode)")
		replicas    = fs.Int("replicas", 1, "followers configured per shard — the replication factor beyond the primary (cluster mode)")
		quorum      = fs.Int("quorum", 0, "replicas (primary included) that must fsync a record before its verdict releases; 0 or 1 = primary-only durability (cluster mode)")
		ackTimeout  = fs.Duration("ack-timeout", 0, "per-record follower-ack deadline before degrading to local-quorum commits (0 = failover-timeout/2, cluster mode)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := mpegsmooth.ParsePolicy(*policySpec)
	if err != nil {
		return err
	}
	mode, key, err := mpegsmooth.ParseIntegrity(*integrity)
	if err != nil {
		return err
	}
	logf := func(format string, a ...any) { fmt.Fprintf(out, format+"\n", a...) }
	if *quiet {
		logf = nil
	}
	scfg := server.Config{
		LinkRate:        *capacity,
		Policy:          policy,
		H:               *hFlag,
		QueueLen:        *queueLen,
		MaxStreams:      *maxStreams,
		ReadTimeout:     *readTimeout,
		WriteTimeout:    *writeTimeout,
		ResumeWindow:    *resumeWindow,
		MaxPictureBytes: *maxPicture,
		TimeScale:       *timescale,
		Integrity:       mode,
		IntegrityKey:    key,
		Logf:            logf,
	}
	jcfg := journal.Config{
		Dir:          *journalDir,
		CommitWindow: *commitWindow,
		CommitBytes:  *commitBytes,
		Logf:         logf,
	}
	if *clusterRole != "" {
		if *datagram {
			return errors.New("-datagram is standalone-only: cluster replication stays on TCP")
		}
		return runCluster(ctx, out, clusterOpts{
			role:         *clusterRole,
			shard:        *shard,
			peersSpec:    *peersSpec,
			journal:      jcfg,
			opsAddr:      *opsAddr,
			failoverTO:   *failoverTO,
			replicas:     *replicas,
			quorum:       *quorum,
			ackTimeout:   *ackTimeout,
			drainTimeout: *drainTimeout,
			server:       scfg,
			logf:         logf,
		})
	}
	var jrnl *journal.Journal
	if *journalDir != "" {
		jrnl, err = journal.Open(jcfg)
		if err != nil {
			return err
		}
	}
	scfg.Journal = jrnl
	srv, err := server.New(scfg)
	if err != nil {
		// The server never adopted the journal; release its lock here.
		if jrnl != nil {
			jrnl.Close()
		}
		return err
	}
	if jrnl != nil {
		snap := srv.Snapshot()
		fmt.Fprintf(out, "smoothd: journal %s: recovered %d parked stream(s), %d completion tombstone(s)\n",
			*journalDir, snap.Streams.Recovered, snap.Streams.RecoveredTombstones)
	}

	var ln net.Listener
	if *datagram {
		// UDP socket + ARQ demultiplexer: every accepted "connection"
		// is a selective-repeat flow, and the stream protocol above it
		// is unchanged.
		pc, err := net.ListenPacket("udp", *listen)
		if err != nil {
			return err
		}
		ln = mpegsmooth.ListenDatagram(pc, mpegsmooth.DatagramConfig{})
	} else {
		ln, err = net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
	}
	defer ln.Close()
	transportName := "tcp"
	if *datagram {
		transportName = "udp/arq"
	}
	fmt.Fprintf(out, "smoothd: streams on %s, transport %s, capacity %.0f bps, policy %s\n",
		ln.Addr(), transportName, *capacity, policy.Name())

	var opsSrv *http.Server
	if *opsAddr != "" {
		opsLn, err := net.Listen("tcp", *opsAddr)
		if err != nil {
			return err
		}
		opsSrv = &http.Server{Handler: srv.OpsHandler()}
		go opsSrv.Serve(opsLn)
		defer opsSrv.Close()
		fmt.Fprintf(out, "smoothd: ops on http://%s/stats\n", opsLn.Addr())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(out, "smoothd: draining (up to %v)...\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Shutdown(drainCtx)
	<-serveErr
	snap := srv.Snapshot()
	fmt.Fprintf(out, "smoothd: exit — %d admitted, %d rejected, %d completed, %d failed, %d resumed, %d hellos deduped, %d already-complete resumes, %d bits egressed\n",
		snap.Streams.Admitted, snap.Streams.Rejected, snap.Streams.Completed,
		snap.Streams.Failed, snap.Faults.Resumed, snap.Streams.HelloDeduped,
		snap.Streams.AlreadyComplete, snap.EgressedBits)
	if drainErr != nil && !errors.Is(drainErr, context.DeadlineExceeded) {
		return drainErr
	}
	if errors.Is(drainErr, context.DeadlineExceeded) {
		fmt.Fprintf(out, "smoothd: drain timed out; %d stream(s) cancelled\n", snap.Streams.Active)
	}
	return nil
}

type clusterOpts struct {
	role         string
	shard        string
	peersSpec    string
	journal      journal.Config
	opsAddr      string
	failoverTO   time.Duration
	replicas     int
	quorum       int
	ackTimeout   time.Duration
	drainTimeout time.Duration
	server       server.Config
	logf         func(format string, args ...any)
}

// runCluster runs the process as one cluster node — a shard primary or
// a warm-standby follower — until the context is cancelled.
func runCluster(ctx context.Context, out io.Writer, o clusterOpts) error {
	rank, err := parseClusterRole(o.role)
	if err != nil {
		return err
	}
	if o.shard == "" {
		return errors.New("cluster mode needs -shard")
	}
	if o.journal.Dir == "" {
		return errors.New("cluster mode needs -journal-dir (the journal is what gets replicated)")
	}
	peers, err := parsePeers(o.peersSpec)
	if err != nil {
		return err
	}
	node, err := cluster.New(cluster.Config{
		Shard:           o.shard,
		Rank:            rank,
		Peers:           peers,
		Journal:         o.journal,
		Server:          o.server,
		FailoverTimeout: o.failoverTO,
		Replicas:        o.replicas,
		Quorum:          o.quorum,
		AckTimeout:      o.ackTimeout,
		Logf:            o.logf,
	})
	if err != nil {
		return err
	}
	if err := node.Start(); err != nil {
		return err
	}
	fmt.Fprintf(out, "smoothd: cluster node %s rank %d, role %s\n", o.shard, rank, node.Role())

	if o.opsAddr != "" {
		opsLn, err := net.Listen("tcp", o.opsAddr)
		if err != nil {
			node.Kill()
			return err
		}
		opsSrv := &http.Server{Handler: node.OpsHandler()}
		go opsSrv.Serve(opsLn)
		defer opsSrv.Close()
		fmt.Fprintf(out, "smoothd: ops on http://%s/stats\n", opsLn.Addr())
	}

	<-ctx.Done()
	fmt.Fprintf(out, "smoothd: draining (up to %v)...\n", o.drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	drainErr := node.Shutdown(drainCtx)
	fmt.Fprintf(out, "smoothd: exit — role %s, %d promotion(s)\n", node.Role(), node.Status().Promotions)
	if drainErr != nil && !errors.Is(drainErr, context.DeadlineExceeded) {
		return drainErr
	}
	return nil
}

// parseClusterRole maps "primary" to rank 0 and "follower:<n>" (n ≥ 1)
// to rank n.
func parseClusterRole(spec string) (int, error) {
	if spec == "primary" {
		return 0, nil
	}
	if rest, ok := strings.CutPrefix(spec, "follower:"); ok {
		rank, err := strconv.Atoi(rest)
		if err != nil || rank < 1 {
			return 0, fmt.Errorf("follower rank must be a positive integer, got %q", rest)
		}
		return rank, nil
	}
	return 0, fmt.Errorf("-cluster must be primary or follower:<rank>, got %q", spec)
}

// parsePeers parses "name=streamAddr/replAddr,..." (slash-separated
// because the addresses themselves contain colons).
func parsePeers(spec string) ([]cluster.Peer, error) {
	var peers []cluster.Peer
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, addrs, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("peer %q: want name=streamAddr/replAddr", item)
		}
		stream, repl, ok := strings.Cut(addrs, "/")
		if !ok || stream == "" || repl == "" {
			return nil, fmt.Errorf("peer %q: want name=streamAddr/replAddr", item)
		}
		peers = append(peers, cluster.Peer{Name: name, StreamAddr: stream, ReplAddr: repl})
	}
	if len(peers) == 0 {
		return nil, errors.New("cluster mode needs -peers")
	}
	return peers, nil
}
