// Encodepipeline: the full stack from camera to channel.
//
// Synthetic "Driving" video frames are compressed with the simplified
// MPEG-1-style codec into a real coded bit stream (start codes, DCT,
// motion compensation, I/P/B pictures in transmission order). A
// transport-layer inspector then walks the stream's start codes to
// measure every picture's size — without decoding any macroblock — and
// those sizes feed the smoothing algorithm, exactly as a transport
// protocol carrying live encoder output would.
package main

import (
	"fmt"
	"log"

	"mpegsmooth"
)

func main() {
	const w, h, frames = 160, 112, 54
	fmt.Printf("synthesizing %d frames of %dx%d driving video...\n", frames, w, h)
	synth, err := mpegsmooth.NewSynthesizer(mpegsmooth.DrivingVideoScript(w, h, frames, 1))
	if err != nil {
		log.Fatal(err)
	}
	var vf []*mpegsmooth.Frame
	for !synth.Done() {
		vf = append(vf, synth.Next())
	}

	gop := mpegsmooth.GOP{M: 3, N: 9}
	enc, err := mpegsmooth.NewEncoder(mpegsmooth.DefaultEncoderConfig(w, h, gop))
	if err != nil {
		log.Fatal(err)
	}
	seq, err := enc.EncodeSequence(vf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded to %d bytes (pattern %s, quantizer scales 4/6/15)\n", len(seq.Data), gop.Pattern())

	// The transport view: picture sizes from start-code scanning only.
	info, err := mpegsmooth.InspectStream(seq.Data)
	if err != nil {
		log.Fatal(err)
	}
	sizes, err := info.SizesInDisplayOrder()
	if err != nil {
		log.Fatal(err)
	}
	tr, err := mpegsmooth.TraceFromPictureSizes("encoded-driving", 1.0/30, gop, sizes)
	if err != nil {
		log.Fatal(err)
	}
	st := tr.Stats()
	fmt.Printf("picture sizes: I mean %.0f, P mean %.0f, B mean %.0f bits\n",
		st[mpegsmooth.TypeI].Mean, st[mpegsmooth.TypeP].Mean, st[mpegsmooth.TypeB].Mean)

	sched, err := mpegsmooth.Smooth(tr, mpegsmooth.Config{K: 1, H: gop.N, D: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	if err := mpegsmooth.Verify(sched); err != nil {
		log.Fatal(err)
	}
	rf, err := sched.RateFunc()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunsmoothed peak %.3f Mbps -> smoothed peak %.3f Mbps (delay bound 0.2 s held)\n",
		tr.PeakPictureRate()/1e6, rf.Max()/1e6)

	// Round-trip sanity: the stream decodes, so those were real pictures.
	dec := mpegsmooth.NewDecoder()
	out, err := dec.Decode(seq.Data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoder reconstructed %d pictures in display order\n", len(out.Frames))
}
