// Package netsim is a discrete-event simulator of finite-buffer FIFO
// packet multiplexers fed by rate-scheduled video sources.
//
// The paper motivates lossless smoothing with the observation, due to
// Reibman/Berger and Reininger et al., that "the statistical multiplexing
// gain of finite-buffer packet switches can improve substantially by
// reducing the variance of input traffic rates" for a specified bound on
// loss probability. This package reproduces that motivating experiment at
// two fidelities sharing one event engine:
//
//   - the cell layer (Mux, Source, Run) simulates every cell, exactly
//     reproducing the behaviour of the original heap-of-closures
//     simulator, and
//   - the fluid layer (FluidMux, FluidSource, Shaper, RunFluid) steps one
//     rate segment per event and accounts cells analytically between
//     events, so event count scales with rate breakpoints rather than
//     cells — the mode that runs thousands of multiplexed streams.
//
// Both layers run on Engine, an allocation-free hierarchical timing
// wheel over integer tick time with deterministic same-tick FIFO
// ordering.
package netsim

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Tick is integer simulation time. An Engine defines the tick length in
// seconds; all event ordering happens in ticks, which kills the float
// drift the old float-time heap accumulated in long runs.
type Tick int64

// Event is a scheduled simulation action. Simulation elements (sources,
// multiplexers, shapers) implement Event themselves, so scheduling one
// allocates nothing beyond the engine's pooled event records.
type Event interface {
	// Fire runs the event's action at tick now.
	Fire(now Tick)
}

// EventFunc adapts a closure to the Event interface (tests and
// small simulations; hot paths implement Event directly).
type EventFunc func(now Tick)

// Fire calls f.
func (f EventFunc) Fire(now Tick) { f(now) }

// The wheel: wheelLevels levels of wheelSlots slots each. Level k slots
// span wheelSlots^k ticks, so the whole hierarchy covers
// wheelSlots^wheelLevels ticks (2^48 ≈ 2.8e14) before the overflow list
// is consulted.
const (
	wheelBits   = 12
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
)

// record is a pooled scheduler entry: one scheduled Event with the
// sequence number that breaks same-tick ties (FIFO by schedule order).
type record struct {
	tick Tick
	seq  int64
	ev   Event
	next *record
}

// wheelLevel is one wheel: per-slot FIFO lists plus a two-level
// occupancy bitmap (64 words of 64 slots, one summary word) so the next
// occupied slot is found with a handful of word operations instead of a
// linear scan over empty slots.
type wheelLevel struct {
	head    [wheelSlots]*record
	tail    [wheelSlots]*record
	words   [wheelSlots / 64]uint64
	summary uint64
}

func (l *wheelLevel) push(idx int, r *record) {
	r.next = nil
	if l.tail[idx] == nil {
		l.head[idx] = r
	} else {
		l.tail[idx].next = r
	}
	l.tail[idx] = r
	l.words[idx>>6] |= 1 << uint(idx&63)
	l.summary |= 1 << uint(idx>>6)
}

// take removes and returns a slot's whole list (in FIFO order).
func (l *wheelLevel) take(idx int) *record {
	r := l.head[idx]
	if r == nil {
		return nil
	}
	l.head[idx], l.tail[idx] = nil, nil
	l.words[idx>>6] &^= 1 << uint(idx&63)
	if l.words[idx>>6] == 0 {
		l.summary &^= 1 << uint(idx>>6)
	}
	return r
}

// nextOccupied returns the smallest occupied slot index >= from, or -1.
func (l *wheelLevel) nextOccupied(from int) int {
	if from >= wheelSlots {
		return -1
	}
	w := from >> 6
	if word := l.words[w] &^ (1<<uint(from&63) - 1); word != 0 {
		return w<<6 + bits.TrailingZeros64(word)
	}
	sum := l.summary &^ (1<<uint(w+1) - 1)
	if sum == 0 {
		return -1
	}
	w = bits.TrailingZeros64(sum)
	return w<<6 + bits.TrailingZeros64(l.words[w])
}

// Engine drives a discrete-event simulation on a hierarchical timing
// wheel. Events fire in nondecreasing tick order; events scheduled for
// the same tick fire in the order they were scheduled, regardless of
// which wheel level they transited. All event records are pooled: after
// warm-up, scheduling allocates nothing.
type Engine struct {
	hz       float64 // ticks per second
	now      Tick
	seq      int64
	lv       [wheelLevels]*wheelLevel
	overflow []*record // events beyond the wheel span
	free     *record   // record pool
	scratch  []*record // reusable same-tick batch buffer
}

// NewEngine returns an empty engine at tick 0 whose tick length is
// 1/ticksPerSecond seconds.
func NewEngine(ticksPerSecond float64) *Engine {
	if ticksPerSecond <= 0 || math.IsInf(ticksPerSecond, 0) || math.IsNaN(ticksPerSecond) {
		panic(fmt.Sprintf("netsim: invalid tick rate %v", ticksPerSecond))
	}
	e := &Engine{hz: ticksPerSecond}
	for k := range e.lv {
		e.lv[k] = &wheelLevel{}
	}
	return e
}

// Now returns the current simulation tick.
func (e *Engine) Now() Tick { return e.now }

// NowSeconds returns the current simulation time in seconds.
func (e *Engine) NowSeconds() float64 { return float64(e.now) / e.hz }

// TickAt quantizes a time in seconds to the nearest tick.
func (e *Engine) TickAt(seconds float64) Tick {
	return Tick(math.Round(seconds * e.hz))
}

// SecondsOf converts a tick back to seconds.
func (e *Engine) SecondsOf(t Tick) float64 { return float64(t) / e.hz }

// Schedule queues ev to fire at tick t. Scheduling in the past panics —
// that is always a simulation bug.
func (e *Engine) Schedule(t Tick, ev Event) {
	if t < e.now {
		panic(fmt.Sprintf("netsim: scheduling event in the past (%d < %d)", t, e.now))
	}
	r := e.free
	if r == nil {
		r = &record{}
	} else {
		e.free = r.next
	}
	e.seq++
	r.tick, r.seq, r.ev = t, e.seq, ev
	e.place(r)
}

// place files a record at the highest-resolution level whose current
// rotation covers its tick: level k holds ticks sharing the engine's
// current wheelSlots^(k+1) block.
func (e *Engine) place(r *record) {
	t := r.tick
	for k := 0; k < wheelLevels; k++ {
		shift := uint(wheelBits * (k + 1))
		if t>>shift == e.now>>shift {
			e.lv[k].push(int(t>>uint(wheelBits*k))&wheelMask, r)
			return
		}
	}
	e.overflow = append(e.overflow, r)
}

// Run executes events in tick order until the queue is empty or the
// next event lies beyond the horizon. It returns the number of events
// fired. When stopped by the horizon, Now() is the horizon; when the
// queue drains, Now() stays at the last fired tick (matching the old
// scheduler's semantics).
func (e *Engine) Run(horizon Tick) int {
	fired := 0
	for e.advance(horizon) {
		fired += e.fireCurrent()
	}
	return fired
}

// advance moves now to the tick of the next pending event, cascading
// higher levels (and draining the overflow list) as it goes. It reports
// whether an event at tick <= horizon is ready; when the next event is
// beyond the horizon it sets now to the horizon and reports false.
func (e *Engine) advance(horizon Tick) bool {
	for {
		// Level 0: one slot per tick within the current block.
		if i := e.lv[0].nextOccupied(int(e.now) & wheelMask); i >= 0 {
			t := (e.now &^ Tick(wheelMask)) + Tick(i)
			if t > horizon {
				e.now = horizon
				return false
			}
			e.now = t
			return true
		}
		// Higher levels: jump to the next occupied slot and cascade it
		// down. Slots at or before the current position are empty by
		// construction (they were cascaded when now entered them).
		cascaded := false
		for k := 1; k < wheelLevels; k++ {
			shift := uint(wheelBits * k)
			cur := int(e.now>>shift) & wheelMask
			j := e.lv[k].nextOccupied(cur + 1)
			if j < 0 {
				continue
			}
			blockMask := Tick(1)<<(shift+wheelBits) - 1
			t := e.now&^blockMask | Tick(j)<<shift
			if t > horizon {
				e.now = horizon
				return false
			}
			e.now = t
			for r := e.lv[k].take(j); r != nil; {
				next := r.next
				e.place(r)
				r = next
			}
			cascaded = true
			break
		}
		if cascaded {
			continue
		}
		if len(e.overflow) > 0 {
			min := e.overflow[0].tick
			for _, r := range e.overflow[1:] {
				if r.tick < min {
					min = r.tick
				}
			}
			if min > horizon {
				e.now = horizon
				return false
			}
			e.now = min
			pending := e.overflow
			e.overflow = nil // place may re-append out-of-span records
			for _, r := range pending {
				e.place(r)
			}
			continue
		}
		return false // queue empty; now stays at the last fired tick
	}
}

// fireCurrent fires every event scheduled for the current tick,
// including events scheduled for this same tick by the events
// themselves, in seq (schedule) order.
func (e *Engine) fireCurrent() int {
	idx := int(e.now) & wheelMask
	n := 0
	for {
		r := e.lv[0].take(idx)
		if r == nil {
			return n
		}
		batch := e.scratch[:0]
		sorted := true
		for ; r != nil; r = r.next {
			if r.tick != e.now {
				panic("netsim: wheel slot holds a foreign tick")
			}
			if len(batch) > 0 && batch[len(batch)-1].seq > r.seq {
				sorted = false
			}
			batch = append(batch, r)
		}
		// Cascading preserves FIFO order by construction; the sort is a
		// cheap belt-and-braces guarantee of deterministic ordering.
		if !sorted {
			sort.Slice(batch, func(i, j int) bool { return batch[i].seq < batch[j].seq })
		}
		for _, rec := range batch {
			ev := rec.ev
			rec.ev = nil
			rec.next = e.free
			e.free = rec
			ev.Fire(e.now)
			n++
		}
		e.scratch = batch[:0]
	}
}
