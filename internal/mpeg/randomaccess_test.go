package mpeg

import (
	"testing"

	"mpegsmooth/internal/video"
)

func TestRepeatedSequenceHeaders(t *testing.T) {
	frames := testFrames(t, 64, 48, 27, 17)
	cfg := DefaultConfig(64, 48, GOP{M: 3, N: 9})
	cfg.RepeatSequenceHeader = true
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := enc.EncodeSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	// Count sequence headers by scanning start codes: one at the start
	// plus one per subsequent GOP (I pictures at display 0, 9, 18).
	headers := 0
	for i := 0; i+3 < len(seq.Data); i++ {
		if seq.Data[i] == 0 && seq.Data[i+1] == 0 && seq.Data[i+2] == 1 && seq.Data[i+3] == SequenceHeaderCod {
			headers++
		}
	}
	if headers != 3 {
		t.Fatalf("%d sequence headers, want 3", headers)
	}
	// The full decode is unaffected by the repetition.
	out, err := NewDecoder().Decode(seq.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Frames) != 27 {
		t.Fatalf("decoded %d frames", len(out.Frames))
	}
}

func TestDecodeFromGroup(t *testing.T) {
	frames := testFrames(t, 64, 48, 27, 19)
	cfg := DefaultConfig(64, 48, GOP{M: 3, N: 9})
	cfg.RepeatSequenceHeader = true
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := enc.EncodeSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewDecoder().Decode(seq.Data)
	if err != nil {
		t.Fatal(err)
	}

	for group, firstDisplay := range map[int]int{1: 9, 2: 18} {
		out, err := NewDecoder().DecodeFromGroup(seq.Data, group)
		if err != nil {
			t.Fatalf("group %d: %v", group, err)
		}
		// The two B pictures displaying before the entry I picture are
		// broken-link and dropped.
		if out.SkippedBroken != 2 {
			t.Errorf("group %d: %d broken-link pictures dropped, want 2", group, out.SkippedBroken)
		}
		want := 27 - firstDisplay
		if len(out.Frames) != want {
			t.Fatalf("group %d: %d frames, want %d", group, len(out.Frames), want)
		}
		// Every decoded picture must be bit-identical to the full decode
		// (the entry I picture is intra; everything after predicts only
		// from pictures inside the decoded range).
		for i, f := range out.Frames {
			ref := full.Frames[firstDisplay+i]
			for k := range f.Y {
				if f.Y[k] != ref.Y[k] {
					t.Fatalf("group %d frame %d: luma differs from full decode at %d", group, i, k)
				}
			}
		}
	}
}

func TestDecodeFromGroupZeroIsFullDecode(t *testing.T) {
	frames := testFrames(t, 48, 32, 9, 3)
	enc, err := NewEncoder(DefaultConfig(48, 32, GOP{M: 3, N: 9}))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := enc.EncodeSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewDecoder().DecodeFromGroup(seq.Data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Frames) != 9 || out.SkippedBroken != 0 {
		t.Fatalf("frames %d, broken %d", len(out.Frames), out.SkippedBroken)
	}
}

func TestDecodeFromGroupErrors(t *testing.T) {
	frames := testFrames(t, 48, 32, 9, 3)
	enc, err := NewEncoder(DefaultConfig(48, 32, GOP{M: 3, N: 9}))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := enc.EncodeSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDecoder().DecodeFromGroup(seq.Data, 5); err == nil {
		t.Error("group beyond stream should fail")
	}
	if _, err := NewDecoder().DecodeFromGroup(seq.Data, -1); err == nil {
		t.Error("negative group should fail")
	}
}

func TestModeStats(t *testing.T) {
	// A static sequence: P/B pictures should be dominated by skips; the
	// I picture all intra.
	base := video.MustNewFrame(64, 48)
	for y := 0; y < 48; y++ {
		for x := 0; x < 64; x++ {
			base.Y[y*64+x] = uint8((x*5 + y*3) % 240)
		}
	}
	var frames []*video.Frame
	for i := 0; i < 9; i++ {
		f := base.Clone()
		f.DisplayIdx = i
		frames = append(frames, f)
	}
	enc, err := NewEncoder(DefaultConfig(64, 48, GOP{M: 3, N: 9}))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := enc.EncodeSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	mbs := (64 / 16) * (48 / 16)
	for _, p := range seq.Pictures {
		if got := p.Modes.Total(); got != mbs {
			t.Fatalf("picture %d: mode total %d, want %d", p.DisplayIdx, got, mbs)
		}
		switch p.Type {
		case TypeI:
			if p.Modes.Intra != mbs {
				t.Errorf("I picture has %d intra of %d", p.Modes.Intra, mbs)
			}
		default:
			if p.Modes.Skipped < mbs/2 {
				t.Errorf("static %v picture skipped only %d of %d", p.Type, p.Modes.Skipped, mbs)
			}
		}
	}
}

func TestModeStatsBUsesBidirectional(t *testing.T) {
	// Moving content: B pictures should use backward or interpolated
	// modes at least somewhere.
	frames := testFrames(t, 96, 64, 18, 11)
	enc, err := NewEncoder(DefaultConfig(96, 64, GOP{M: 3, N: 9}))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := enc.EncodeSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	bidir := 0
	for _, p := range seq.Pictures {
		if p.Type == TypeB {
			bidir += p.Modes.Backward + p.Modes.Interp
		}
	}
	if bidir == 0 {
		t.Error("no B macroblock ever used backward or interpolated prediction")
	}
}
