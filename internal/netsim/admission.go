package netsim

import (
	"fmt"
	"math"
	"time"
)

// Admission is a peak-rate admission controller for a shared link: each
// stream declares the peak rate of its smoothed schedule (the traffic
// descriptor a Policer would enforce), and the controller admits the
// stream only if the sum of reserved peaks stays within the link
// capacity. Because a smoothed stream never transmits above its peak,
// this reservation makes the multiplexing lossless — the admission-time
// analogue of the paper's Section 5 experiment, where smoothing lets
// more streams share a finite-buffer link before any cell is lost.
// Would-be overloads are rejected before their first picture instead of
// being dropped mid-stream.
//
// Admission is a plain accumulator with no locking, like the rest of
// this package; concurrent servers wrap it in their own mutex.
type Admission struct {
	capacity float64
	reserved float64

	admitted   int64
	rejected   int64
	duplicates int64
	active     int64
	parked     int64

	// nonces maps a live hello nonce to its reservation, so a repeated
	// hello (a sender whose admission verdict was lost in flight and who
	// redialed) is recognized as the *same* stream and never reserves
	// twice. Entries are released with the reservation and expire after
	// their TTL as a leak backstop.
	nonces map[uint64]nonceReservation
}

// nonceReservation is one nonce-identified reservation in the ledger.
type nonceReservation struct {
	peak    float64
	expires time.Time
}

// NewAdmission creates a controller for a link of the given capacity in
// bits/second.
func NewAdmission(capacity float64) (*Admission, error) {
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("netsim: non-positive link capacity %v", capacity)
	}
	return &Admission{capacity: capacity, nonces: map[uint64]nonceReservation{}}, nil
}

// Admit decides on a stream declaring the given peak rate: it reserves
// the peak and reports true when it fits in the remaining capacity, and
// counts a rejection otherwise. Non-positive or non-finite peaks are
// always rejected.
func (a *Admission) Admit(peak float64) bool {
	if peak <= 0 || math.IsNaN(peak) || math.IsInf(peak, 0) {
		a.rejected++
		return false
	}
	// Tolerate float accumulation error at exact capacity: a link sized
	// for n identical peaks admits all n.
	if a.reserved+peak > a.capacity*(1+1e-12) {
		a.rejected++
		return false
	}
	a.reserved += peak
	a.admitted++
	a.active++
	return true
}

// AdmitNonce is Admit for a hello carrying a client nonce. When the
// nonce already holds a live reservation the call is a duplicate hello
// — the client's copy of an earlier verdict was lost in flight — and
// AdmitNonce reports (false, true) WITHOUT reserving again or counting
// a rejection: the caller reattaches the sender to the existing stream
// instead. A zero nonce disables dedup and behaves exactly like Admit.
// Expired ledger entries are pruned lazily on each call.
func (a *Admission) AdmitNonce(nonce uint64, peak float64, now time.Time, ttl time.Duration) (admitted, duplicate bool) {
	a.pruneNonces(now)
	if nonce != 0 {
		if _, live := a.nonces[nonce]; live {
			a.duplicates++
			return false, true
		}
	}
	if !a.Admit(peak) {
		return false, false
	}
	if nonce != 0 {
		a.nonces[nonce] = nonceReservation{peak: peak, expires: now.Add(ttl)}
	}
	return true, false
}

// ReleaseNonce is Release for a reservation taken through AdmitNonce;
// it drops the nonce from the ledger along with the reservation. A zero
// or unknown nonce releases the peak alone.
func (a *Admission) ReleaseNonce(nonce uint64, peak float64) {
	delete(a.nonces, nonce)
	a.Release(peak)
}

// pruneNonces drops ledger entries past their TTL — a backstop against
// leaks if a caller forgets ReleaseNonce; the reservation itself is
// still the caller's to release.
func (a *Admission) pruneNonces(now time.Time) {
	for n, r := range a.nonces {
		if now.After(r.expires) {
			delete(a.nonces, n)
		}
	}
}

// Duplicates returns the count of hellos recognized as retransmissions
// of a live nonce-identified reservation.
func (a *Admission) Duplicates() int64 { return a.duplicates }

// Release returns an admitted stream's reservation when it ends. The
// peak must match what was admitted.
func (a *Admission) Release(peak float64) {
	a.reserved -= peak
	if a.reserved < 0 {
		a.reserved = 0
	}
	a.active--
}

// Capacity returns the link capacity in bits/second.
func (a *Admission) Capacity() float64 { return a.capacity }

// Reserved returns the sum of admitted peaks in bits/second.
func (a *Admission) Reserved() float64 { return a.reserved }

// Available returns the unreserved capacity in bits/second.
func (a *Admission) Available() float64 {
	if avail := a.capacity - a.reserved; avail > 0 {
		return avail
	}
	return 0
}

// Admitted returns the count of streams ever admitted.
func (a *Admission) Admitted() int64 { return a.admitted }

// Rejected returns the count of streams rejected.
func (a *Admission) Rejected() int64 { return a.rejected }

// Active returns the count of admitted streams not yet released.
func (a *Admission) Active() int64 { return a.active }

// Park marks one active stream as disconnected-but-reserved: its sender
// dropped, the server is holding its reservation through a resume
// window. The stream stays Active — the whole point of parking is that
// the capacity remains spoken for, so a reconnecting sender is never
// re-admitted against different arithmetic.
func (a *Admission) Park() { a.parked++ }

// Unpark clears one parked mark (on resume or on window expiry).
func (a *Admission) Unpark() {
	if a.parked > 0 {
		a.parked--
	}
}

// Parked returns the count of active streams currently awaiting resume.
func (a *Admission) Parked() int64 { return a.parked }
