package core

import (
	"fmt"

	"mpegsmooth/internal/trace"
)

// Smooth runs the smoothing algorithm of Figure 2 over a complete trace
// and returns the resulting schedule. The algorithm is online: at each
// picture it sees only the sizes of pictures that have arrived by t_i and
// estimates the rest through cfg.Estimator. For an incremental form that
// consumes sizes as they are encoded, see LiveSmoother — both run the
// same decision kernel and produce identical schedules.
func Smooth(tr *trace.Trace, cfg Config) (*Schedule, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(tr.Tau); err != nil {
		return nil, err
	}
	if cfg.Estimator == nil {
		cfg.Estimator = PatternEstimator{}
	}

	n := tr.Len()
	s := &Schedule{
		Trace:      tr,
		Config:     cfg,
		Rates:      make([]float64, n),
		Start:      make([]float64, n),
		Depart:     make([]float64, n),
		Delays:     make([]float64, n),
		LowerBound: make([]float64, n),
		UpperBound: make([]float64, n),
	}

	e := &engine{cfg: cfg, tau: tr.Tau, gop: tr.GOP, types: tr.Types}
	depart := 0.0
	rate := 0.0 // persists across pictures: the basic variant holds it
	for j := 0; j < n; j++ {
		d := e.decide(j, tr.Sizes, depart, rate, n)
		s.Rates[j] = d.Rate
		s.Start[j] = d.Start
		s.Depart[j] = d.Depart
		s.Delays[j] = d.Delay
		s.LowerBound[j] = d.Lower
		s.UpperBound[j] = d.Upper
		depart, rate = d.Depart, d.Rate
	}
	return s, nil
}

// MustSmooth is Smooth for statically valid inputs; it panics on error.
func MustSmooth(tr *trace.Trace, cfg Config) *Schedule {
	s, err := Smooth(tr, cfg)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	return s
}
