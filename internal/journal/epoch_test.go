package journal

import "testing"

// TestEpochPersists pins the fencing-epoch record: AppendEpoch is
// monotone (stale terms are no-ops, not errors), the witnessed epoch
// survives a reopen, and every snapshot leads with it so a follower
// resyncing mid-term learns the term before any stream state.
func TestEpochPersists(t *testing.T) {
	mem := NewMemFS()
	j := mustOpen(t, mem)

	if e := j.Epoch(); e != 0 {
		t.Fatalf("fresh journal epoch %d, want 0", e)
	}
	seq1, err := j.AppendEpoch(1)
	if err != nil {
		t.Fatal(err)
	}
	if e := j.Epoch(); e != 1 {
		t.Fatalf("epoch %d after AppendEpoch(1)", e)
	}
	// Stale and duplicate terms are no-ops: the journal never regresses.
	if seq, err := j.AppendEpoch(1); err != nil || seq != seq1 {
		t.Fatalf("duplicate AppendEpoch(1) = (%d, %v), want (%d, nil)", seq, err, seq1)
	}
	if _, err := j.AppendEpoch(0); err != nil {
		t.Fatal(err)
	}
	if e := j.Epoch(); e != 1 {
		t.Fatalf("epoch regressed to %d", e)
	}
	if _, err := j.Admitted(testStream(1)); err != nil {
		t.Fatal(err)
	}
	seq3, err := j.AppendEpoch(3)
	if err != nil {
		t.Fatal(err)
	}
	if seq3 <= seq1 {
		t.Fatalf("epoch append seq %d did not advance past %d", seq3, seq1)
	}

	j, st := reopen(t, j, mem)
	if st.Epoch != 3 || j.Epoch() != 3 {
		t.Fatalf("epoch lost across reopen: state %d, journal %d", st.Epoch, j.Epoch())
	}

	// The follow snapshot leads with the epoch record, and replaying it
	// into a fresh journal (a follower resync) carries the term over.
	snap, _, _, cancel, err := j.Follow(0)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	recs, valid, err := ScanSegment(snap)
	if err != nil || valid != len(snap) {
		t.Fatalf("snapshot scan: %d of %d bytes valid: %v", valid, len(snap), err)
	}
	if len(recs) == 0 || recs[0].Kind != KindEpoch || recs[0].Epoch != 3 {
		t.Fatalf("snapshot does not lead with the epoch record: %+v", recs)
	}
	standby := mustOpen(t, NewMemFS())
	defer standby.Close()
	if err := standby.ResetTo(recs); err != nil {
		t.Fatal(err)
	}
	if e := standby.Epoch(); e != 3 {
		t.Fatalf("resynced standby epoch %d, want 3", e)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}
