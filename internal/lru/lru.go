// Package lru provides a last-touch LRU map for the server's
// time-bounded ledgers (completion tombstones, hello-nonce
// reservations), plus a Sizer that derives a principled capacity from
// the observed event rate.
//
// The ledgers these maps back answer questions about the recent past —
// "was this nonce already admitted?", "did this token's stream already
// complete?" — so their natural size is rate × retention window: every
// entry still inside its TTL should fit. A fixed cap with FIFO eviction
// (the previous design) lets a sustained flood of short streams
// race-evict an entry a legitimate late resume still needs; last-touch
// eviction keeps recently-consulted entries alive, and the adaptive cap
// grows with the flood so eviction only claims entries the TTL would
// have expired anyway.
package lru

import "time"

// entry is one node of the intrusive recency list.
type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V]
}

// Map is a last-touch LRU: Put and Get move the entry to the front, and
// inserting past the cap evicts from the back — the entry untouched
// longest. The zero value is not usable; call New. Map is not
// goroutine-safe; callers hold their own lock (matching netsim's
// plain-accumulator convention).
type Map[K comparable, V any] struct {
	cap        int
	entries    map[K]*entry[K, V]
	head, tail *entry[K, V] // head = most recently touched
	evicted    int64
}

// New creates a map that holds at most cap entries (cap < 1 is treated
// as 1).
func New[K comparable, V any](cap int) *Map[K, V] {
	if cap < 1 {
		cap = 1
	}
	return &Map[K, V]{cap: cap, entries: make(map[K]*entry[K, V])}
}

// Put inserts or updates a key and touches it, evicting the
// least-recently-touched entries while the map exceeds its cap.
func (m *Map[K, V]) Put(key K, val V) {
	if e, ok := m.entries[key]; ok {
		e.val = val
		m.touch(e)
		return
	}
	e := &entry[K, V]{key: key, val: val}
	m.entries[key] = e
	m.pushFront(e)
	m.shrink()
}

// Get returns the value for key and touches the entry.
func (m *Map[K, V]) Get(key K) (V, bool) {
	if e, ok := m.entries[key]; ok {
		m.touch(e)
		return e.val, true
	}
	var zero V
	return zero, false
}

// Peek returns the value for key without touching the entry.
func (m *Map[K, V]) Peek(key K) (V, bool) {
	if e, ok := m.entries[key]; ok {
		return e.val, true
	}
	var zero V
	return zero, false
}

// Delete removes a key if present.
func (m *Map[K, V]) Delete(key K) {
	if e, ok := m.entries[key]; ok {
		m.unlink(e)
		delete(m.entries, key)
	}
}

// Len returns the number of live entries.
func (m *Map[K, V]) Len() int { return len(m.entries) }

// Cap returns the current capacity.
func (m *Map[K, V]) Cap() int { return m.cap }

// SetCap adjusts the capacity, evicting immediately if it shrank.
func (m *Map[K, V]) SetCap(cap int) {
	if cap < 1 {
		cap = 1
	}
	m.cap = cap
	m.shrink()
}

// Evicted returns the count of entries evicted by capacity pressure
// (Delete does not count).
func (m *Map[K, V]) Evicted() int64 { return m.evicted }

// Range visits entries from least to most recently touched, stopping
// when f returns false. f must not mutate the map; collect keys and
// Delete after.
func (m *Map[K, V]) Range(f func(K, V) bool) {
	for e := m.tail; e != nil; e = e.prev {
		if !f(e.key, e.val) {
			return
		}
	}
}

func (m *Map[K, V]) shrink() {
	for len(m.entries) > m.cap && m.tail != nil {
		victim := m.tail
		m.unlink(victim)
		delete(m.entries, victim.key)
		m.evicted++
	}
}

func (m *Map[K, V]) touch(e *entry[K, V]) {
	if m.head == e {
		return
	}
	m.unlink(e)
	m.pushFront(e)
}

func (m *Map[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = m.head
	if m.head != nil {
		m.head.prev = e
	}
	m.head = e
	if m.tail == nil {
		m.tail = e
	}
}

func (m *Map[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		m.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		m.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// sizerRing bounds the event-timestamp window a Sizer estimates from.
const sizerRing = 256

// Sizer derives a ledger capacity from the observed event rate: a
// ledger whose entries stay relevant for `window` needs room for
// rate × window of them (times a headroom factor for burstiness), so a
// flood of events grows the cap instead of churning out entries that
// are still inside their window.
type Sizer struct {
	// Min and Max clamp the derived capacity (defaults 1024 and 1<<20).
	Min, Max int
	// Headroom multiplies the rate × window estimate (default 2).
	Headroom float64

	times [sizerRing]time.Time
	next  int
	n     int
}

// Note records one event.
func (s *Sizer) Note(now time.Time) {
	s.times[s.next] = now
	s.next = (s.next + 1) % sizerRing
	if s.n < sizerRing {
		s.n++
	}
}

// Cap returns the capacity for a ledger retaining entries for window:
// observed rate × window × Headroom, clamped to [Min, Max].
func (s *Sizer) Cap(window time.Duration, now time.Time) int {
	min, max, headroom := s.Min, s.Max, s.Headroom
	if min <= 0 {
		min = 1024
	}
	if max <= 0 {
		max = 1 << 20
	}
	if headroom <= 0 {
		headroom = 2
	}
	if s.n < 2 {
		return min
	}
	oldest := s.times[(s.next-s.n+sizerRing)%sizerRing]
	span := now.Sub(oldest)
	if span < time.Millisecond {
		span = time.Millisecond
	}
	rate := float64(s.n) / span.Seconds()
	cap := int(rate * window.Seconds() * headroom)
	if cap < min {
		return min
	}
	if cap > max {
		return max
	}
	return cap
}
