package netsim

// The seed simulator, verbatim: a float-time min-heap of closures with
// per-cell Source.emit callbacks and the O(n²) nextBreak rescan. It is
// kept test-only as (a) the reference the golden-equivalence test holds
// the new engine to, and (b) the baseline BenchmarkMuxScale and the
// BENCH_netsim.json artifact measure the rearchitecture against.

import (
	"container/heap"

	"mpegsmooth/internal/metrics"
)

type legacyEvent struct {
	Time float64
	Seq  int64
	Fire func()
}

type legacyEventQueue []*legacyEvent

func (q legacyEventQueue) Len() int { return len(q) }
func (q legacyEventQueue) Less(i, j int) bool {
	if q[i].Time != q[j].Time {
		return q[i].Time < q[j].Time
	}
	return q[i].Seq < q[j].Seq
}
func (q legacyEventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *legacyEventQueue) Push(x any)   { *q = append(*q, x.(*legacyEvent)) }
func (q *legacyEventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

type legacyScheduler struct {
	queue legacyEventQueue
	now   float64
	seq   int64
}

func (s *legacyScheduler) Now() float64 { return s.now }

func (s *legacyScheduler) At(t float64, fire func()) {
	if t < s.now {
		panic("netsim: scheduling event in the past")
	}
	s.seq++
	heap.Push(&s.queue, &legacyEvent{Time: t, Seq: s.seq, Fire: fire})
}

func (s *legacyScheduler) Run(horizon float64) int {
	fired := 0
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*legacyEvent)
		if e.Time > horizon {
			s.now = horizon
			return fired
		}
		s.now = e.Time
		e.Fire()
		fired++
	}
	return fired
}

type legacyMux struct {
	LinkRate    float64
	BufferCells int

	sched   *legacyScheduler
	queue   int
	serving bool
	stats   MuxStats
}

func (m *legacyMux) Arrive() {
	m.stats.Arrived++
	if m.serving && m.queue >= m.BufferCells {
		m.stats.Lost++
		return
	}
	if !m.serving {
		m.startService()
		return
	}
	m.queue++
	if m.queue > m.stats.MaxQueue {
		m.stats.MaxQueue = m.queue
	}
}

func (m *legacyMux) startService() {
	m.serving = true
	m.sched.At(m.sched.Now()+CellBits/m.LinkRate, m.finishService)
}

func (m *legacyMux) finishService() {
	m.stats.Served++
	if m.queue > 0 {
		m.queue--
		m.startService()
		return
	}
	m.serving = false
}

type legacySource struct {
	Rate    *metrics.StepFunc
	mux     *legacyMux
	sched   *legacyScheduler
	emitted int64
}

func newLegacySource(sched *legacyScheduler, mux *legacyMux, rate *metrics.StepFunc, offset float64) *legacySource {
	if offset != 0 {
		rate = rate.Shift(offset)
	}
	s := &legacySource{Rate: rate, mux: mux, sched: sched}
	s.scheduleNext(rate.Times[0])
	return s
}

func (s *legacySource) scheduleNext(t float64) {
	for {
		if s.Rate.At(t) > 0 {
			s.sched.At(t, s.emit)
			return
		}
		next, ok := s.nextBreak(t)
		if !ok {
			return
		}
		t = next
	}
}

func (s *legacySource) emit() {
	now := s.sched.Now()
	r := s.Rate.At(now)
	if r <= 0 {
		s.scheduleNext(now)
		return
	}
	s.mux.Arrive()
	s.emitted++
	s.scheduleNext(now + CellBits/r)
}

func (s *legacySource) nextBreak(t float64) (float64, bool) {
	for _, bt := range s.Rate.Times {
		if bt > t {
			return bt, true
		}
	}
	return 0, false
}

// legacyRunResult mirrors RunResult for the reference runner.
type legacyRunResult struct {
	MuxStats
	Emitted []int64
	Events  int
}

// legacyRun is the seed netsim.Run, kept as the golden reference.
func legacyRun(cfg RunConfig) (legacyRunResult, error) {
	sched := &legacyScheduler{}
	mux := &legacyMux{LinkRate: cfg.LinkRate, BufferCells: cfg.BufferCells, sched: sched}
	sources := make([]*legacySource, len(cfg.Rates))
	for i, r := range cfg.Rates {
		off := 0.0
		if cfg.Offsets != nil {
			off = cfg.Offsets[i]
		}
		sources[i] = newLegacySource(sched, mux, r, off)
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		for i, r := range cfg.Rates {
			off := 0.0
			if cfg.Offsets != nil {
				off = cfg.Offsets[i]
			}
			if end := r.End + off + 1; end > horizon {
				horizon = end
			}
		}
	}
	events := sched.Run(horizon)
	res := legacyRunResult{MuxStats: mux.stats, Events: events}
	for _, s := range sources {
		res.Emitted = append(res.Emitted, s.emitted)
	}
	return res, nil
}
