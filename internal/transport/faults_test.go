package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"syscall"
	"testing"

	"mpegsmooth/internal/faultnet"
)

// timeoutErr is a minimal net.Error with Timeout() true — what a
// deadline expiry surfaces as from the net package.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "synthetic i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

// TestClassifyFaultTable pins the fault taxonomy the whole recovery
// policy hangs off: which errors are retryable link faults (and which
// bucket), which are orderly endings, and which are terminal — through
// arbitrary fmt.Errorf wrapping, since that is how they arrive.
func TestClassifyFaultTable(t *testing.T) {
	wrap := func(err error) error { return fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", err)) }
	cases := []struct {
		name string
		err  error
		want FaultClass
	}{
		{"nil", nil, FaultNone},
		{"orderly close", ErrClosed, FaultNone},
		{"orderly close wrapped", wrap(ErrClosed), FaultNone},

		{"crc mismatch", ErrCorrupt, FaultCorrupt},
		{"crc mismatch wrapped", wrap(ErrCorrupt), FaultCorrupt},
		{"sequence break", ErrBadSeq, FaultCorrupt},
		{"sequence break wrapped", wrap(ErrBadSeq), FaultCorrupt},

		{"deadline expiry", os.ErrDeadlineExceeded, FaultTimeout},
		{"deadline expiry wrapped", wrap(os.ErrDeadlineExceeded), FaultTimeout},
		{"net.Error timeout", timeoutErr{}, FaultTimeout},
		{"net.Error timeout in OpError", &net.OpError{Op: "read", Err: timeoutErr{}}, FaultTimeout},
		// The satellite contract: an injected partition is a net.Error
		// timeout, so parked streams ride it out like any other stall.
		{"faultnet partition", faultnet.ErrPartitioned, FaultTimeout},
		{"faultnet partition wrapped", wrap(faultnet.ErrPartitioned), FaultTimeout},

		{"econnreset", syscall.ECONNRESET, FaultReset},
		{"econnreset wrapped", wrap(syscall.ECONNRESET), FaultReset},
		{"econnreset in OpError", &net.OpError{Op: "write", Err: os.NewSyscallError("write", syscall.ECONNRESET)}, FaultReset},
		{"injected reset", faultnet.ErrInjectedReset, FaultReset},
		{"broken pipe", syscall.EPIPE, FaultReset},
		{"eof", io.EOF, FaultReset},
		{"unexpected eof", io.ErrUnexpectedEOF, FaultReset},
		{"closed pipe", io.ErrClosedPipe, FaultReset},
		{"net closed", net.ErrClosed, FaultReset},
		// A crashed-and-restarting server refuses dials until it rebinds;
		// the journaled session survives, so the dial must be retried.
		{"econnrefused", syscall.ECONNREFUSED, FaultReset},
		{"econnrefused in OpError", &net.OpError{Op: "dial", Err: os.NewSyscallError("connect", syscall.ECONNREFUSED)}, FaultReset},
		{"econnaborted", syscall.ECONNABORTED, FaultReset},
		{"resume busy", ErrResumeBusy, FaultReset},
		{"resume busy wrapped", wrap(ErrResumeBusy), FaultReset},

		// The datagram fault classes: each names a packet-channel
		// condition with its own counter and a reconnect as the cure.
		{"reorder overflow", ErrReorderOverflow, FaultReorderOverflow},
		{"reorder overflow wrapped", wrap(ErrReorderOverflow), FaultReorderOverflow},
		{"retransmit exhausted", ErrRetransmitExhausted, FaultRetransmitExhausted},
		{"retransmit exhausted wrapped", wrap(ErrRetransmitExhausted), FaultRetransmitExhausted},
		{"stale duplicate", ErrStaleDuplicate, FaultStaleDuplicate},
		{"stale duplicate wrapped", wrap(ErrStaleDuplicate), FaultStaleDuplicate},

		{"context canceled", context.Canceled, FaultOther},
		{"divergence", ErrDiverged, FaultOther},
		{"divergence wrapped", wrap(ErrDiverged), FaultOther},
		{"unknown", errors.New("something else"), FaultOther},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ClassifyFault(tc.err); got != tc.want {
				t.Fatalf("ClassifyFault(%v) = %s, want %s", tc.err, got, tc.want)
			}
		})
	}
}

// TestFaultClassRetryable: exactly the link-fault classes — byte-stream
// and datagram — are retryable; orderly endings and terminal faults are
// not.
func TestFaultClassRetryable(t *testing.T) {
	want := map[FaultClass]bool{
		FaultNone:                false,
		FaultCorrupt:             true,
		FaultTimeout:             true,
		FaultReset:               true,
		FaultReorderOverflow:     true,
		FaultRetransmitExhausted: true,
		FaultStaleDuplicate:      true,
		FaultOther:               false,
	}
	for class, retryable := range want {
		if class.Retryable() != retryable {
			t.Errorf("%s.Retryable() = %v, want %v", class, class.Retryable(), retryable)
		}
	}
}
