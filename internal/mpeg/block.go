package mpeg

import (
	"mpegsmooth/internal/bitio"
	"mpegsmooth/internal/mpeg/dct"
	"mpegsmooth/internal/mpeg/quant"
	"mpegsmooth/internal/mpeg/vlc"
	"mpegsmooth/internal/video"
)

// dcPredictors holds the per-plane differential DC prediction state for
// intra blocks. Predictors reset at the start of every slice and after any
// non-intra or skipped macroblock, as in MPEG-1.
type dcPredictors struct {
	y, cb, cr int32
}

// reset restores the mid-gray predictor value (quantized DC of a flat
// 128-luma block).
func (p *dcPredictors) reset() {
	p.y, p.cb, p.cr = 128, 128, 128
}

// blockCoder bundles the transform/quantization state shared by the
// encoder and decoder so both sides reconstruct identically.
type blockCoder struct {
	intraM    *quant.Matrix
	nonIntraM *quant.Matrix
}

func newBlockCoder() blockCoder {
	return blockCoder{intraM: &quant.DefaultIntra, nonIntraM: &quant.DefaultNonIntra}
}

// extractLuma copies the 8x8 luma block at pixel (px, py) into blk.
func extractLuma(f *video.Frame, px, py int, blk *dct.Block) {
	for dy := 0; dy < 8; dy++ {
		row := (py+dy)*f.W + px
		for dx := 0; dx < 8; dx++ {
			blk[dy*8+dx] = int32(f.Y[row+dx])
		}
	}
}

// extractChroma copies an 8x8 block from a chroma plane at chroma-domain
// pixel (px, py).
func extractChroma(plane []uint8, planeW, px, py int, blk *dct.Block) {
	for dy := 0; dy < 8; dy++ {
		row := (py+dy)*planeW + px
		for dx := 0; dx < 8; dx++ {
			blk[dy*8+dx] = int32(plane[row+dx])
		}
	}
}

// storeLuma writes blk into the luma plane at (px, py), clamping to 8 bits.
func storeLuma(f *video.Frame, px, py int, blk *dct.Block) {
	for dy := 0; dy < 8; dy++ {
		row := (py+dy)*f.W + px
		for dx := 0; dx < 8; dx++ {
			f.Y[row+dx] = clampPel(blk[dy*8+dx])
		}
	}
}

// storeChroma writes blk into a chroma plane at chroma-domain (px, py).
func storeChroma(plane []uint8, planeW, px, py int, blk *dct.Block) {
	for dy := 0; dy < 8; dy++ {
		row := (py+dy)*planeW + px
		for dx := 0; dx < 8; dx++ {
			plane[row+dx] = clampPel(blk[dy*8+dx])
		}
	}
}

func clampPel(v int32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// encodeIntraBlock transforms, quantizes, and entropy-codes one intra
// block. pred is the running DC predictor for the block's plane; the
// updated predictor value is returned along with the reconstructed block
// (written into recon) so the encoder's reference frames match the
// decoder's output exactly.
func (c blockCoder) encodeIntraBlock(w *bitio.Writer, spatial *dct.Block, scale int32, pred int32, luma bool, recon *dct.Block) (int32, error) {
	var freq dct.Block
	dct.Forward(&freq, spatial)
	var q [64]int32
	quant.Intra(&q, &freq, c.intraM, scale)
	var scanned [64]int32
	var qb dct.Block
	copy(qb[:], q[:])
	dct.Scan(&scanned, &qb)
	diff := scanned[0] - pred
	// Clamp pathological DC swings into the 8-bit differential range; the
	// reconstruction below uses the clamped value, so encoder and decoder
	// stay in lockstep.
	if diff > 255 {
		diff = 255
	} else if diff < -255 {
		diff = -255
	}
	if err := vlc.WriteDC(w, diff, luma); err != nil {
		return pred, err
	}
	if err := vlc.WriteCoeffs(w, &scanned); err != nil {
		return pred, err
	}
	scanned[0] = pred + diff
	c.reconstructIntra(&scanned, scale, recon)
	return scanned[0], nil
}

// decodeIntraBlock parses one intra block and reconstructs it into recon,
// returning the updated DC predictor.
func (c blockCoder) decodeIntraBlock(r *bitio.Reader, scale int32, pred int32, luma bool, recon *dct.Block) (int32, error) {
	diff, err := vlc.ReadDC(r, luma)
	if err != nil {
		return pred, err
	}
	var scanned [64]int32
	if err := vlc.ReadCoeffs(r, &scanned); err != nil {
		return pred, err
	}
	scanned[0] = pred + diff
	c.reconstructIntra(&scanned, scale, recon)
	return scanned[0], nil
}

// reconstructIntra dequantizes and inverse-transforms a scanned intra
// coefficient block.
func (c blockCoder) reconstructIntra(scanned *[64]int32, scale int32, recon *dct.Block) {
	var qb dct.Block
	dct.Unscan(&qb, scanned)
	var q64 [64]int32
	copy(q64[:], qb[:])
	var deq dct.Block
	quant.DequantIntra(&deq, &q64, c.intraM, scale)
	dct.Inverse(recon, &deq)
}

// quantizeResidual transforms and quantizes a prediction-error block into
// zigzag scan order. coded is false when every quantized coefficient is
// zero, in which case the block's coded-block-pattern bit is cleared and
// nothing is emitted for it.
func (c blockCoder) quantizeResidual(residual *dct.Block, scale int32) (scanned [64]int32, coded bool) {
	var freq dct.Block
	dct.Forward(&freq, residual)
	var q [64]int32
	quant.NonIntra(&q, &freq, c.nonIntraM, scale)
	var qb dct.Block
	copy(qb[:], q[:])
	dct.Scan(&scanned, &qb)
	for _, v := range scanned {
		if v != 0 {
			return scanned, true
		}
	}
	return scanned, false
}

// emitResidual entropy-codes a scanned residual block produced by
// quantizeResidual with coded == true.
func (c blockCoder) emitResidual(w *bitio.Writer, scanned *[64]int32) error {
	return vlc.WriteCoeffsFrom(w, scanned, 0)
}

// decodeResidualBlock parses one coded residual block into recon.
func (c blockCoder) decodeResidualBlock(r *bitio.Reader, scale int32, recon *dct.Block) error {
	var scanned [64]int32
	if err := vlc.ReadCoeffsFrom(r, &scanned, 0); err != nil {
		return err
	}
	c.reconstructResidual(&scanned, scale, recon)
	return nil
}

func (c blockCoder) reconstructResidual(scanned *[64]int32, scale int32, recon *dct.Block) {
	var qb dct.Block
	dct.Unscan(&qb, scanned)
	var q64 [64]int32
	copy(q64[:], qb[:])
	var deq dct.Block
	quant.DequantNonIntra(&deq, &q64, c.nonIntraM, scale)
	dct.Inverse(recon, &deq)
}
