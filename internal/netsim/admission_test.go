package netsim

import (
	"math"
	"testing"
	"time"

	"mpegsmooth/internal/core"
	"mpegsmooth/internal/trace"
)

func TestAdmissionValidation(t *testing.T) {
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewAdmission(bad); err == nil {
			t.Errorf("capacity %v accepted", bad)
		}
	}
}

func TestAdmissionReservesAndRejects(t *testing.T) {
	a, err := NewAdmission(10e6)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Admit(4e6) || !a.Admit(4e6) {
		t.Fatal("two 4 Mbps streams must fit a 10 Mbps link")
	}
	if a.Admit(4e6) {
		t.Fatal("third 4 Mbps stream must not fit 2 Mbps headroom")
	}
	if got := a.Available(); math.Abs(got-2e6) > 1 {
		t.Fatalf("available %.0f, want 2e6", got)
	}
	// Exact fit admits (the float tolerance at capacity).
	if !a.Admit(2e6) {
		t.Fatal("exact-fit stream rejected")
	}
	if a.Admitted() != 3 || a.Rejected() != 1 || a.Active() != 3 {
		t.Fatalf("counters admitted=%d rejected=%d active=%d", a.Admitted(), a.Rejected(), a.Active())
	}
	a.Release(4e6)
	if a.Active() != 2 {
		t.Fatalf("active %d after release", a.Active())
	}
	if !a.Admit(4e6) {
		t.Fatal("released capacity not reusable")
	}
}

func TestAdmissionParkGauge(t *testing.T) {
	a, err := NewAdmission(10e6)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Admit(4e6) {
		t.Fatal("admit failed")
	}
	a.Park()
	// A parked stream stays active with its reservation held: the link
	// arithmetic must not change just because the sender dropped.
	if a.Parked() != 1 || a.Active() != 1 || a.Reserved() != 4e6 {
		t.Fatalf("parked=%d active=%d reserved=%.0f", a.Parked(), a.Active(), a.Reserved())
	}
	a.Unpark()
	if a.Parked() != 0 {
		t.Fatalf("parked %d after unpark", a.Parked())
	}
	a.Unpark() // floor at zero, never negative
	if a.Parked() != 0 {
		t.Fatalf("parked %d after extra unpark", a.Parked())
	}
}

// TestAdmitNonceDeduplicates pins the exactly-once reservation ledger:
// a repeated hello nonce is reported as a duplicate without reserving a
// second peak, release frees both the peak and the nonce, and a zero
// nonce opts out of dedup entirely.
func TestAdmitNonceDeduplicates(t *testing.T) {
	a, err := NewAdmission(10e6)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(100, 0)
	const ttl = time.Minute

	admitted, dup := a.AdmitNonce(0xABC, 4e6, now, ttl)
	if !admitted || dup {
		t.Fatalf("first nonce admit: admitted=%v dup=%v", admitted, dup)
	}
	admitted, dup = a.AdmitNonce(0xABC, 4e6, now.Add(time.Second), ttl)
	if admitted || !dup {
		t.Fatalf("repeated nonce: admitted=%v dup=%v, want duplicate", admitted, dup)
	}
	if a.Reserved() != 4e6 {
		t.Fatalf("duplicate hello changed the reservation: %.0f", a.Reserved())
	}
	if a.Duplicates() != 1 {
		t.Fatalf("duplicates counter %d, want 1", a.Duplicates())
	}
	// A duplicate is neither an admission nor a rejection.
	if a.Admitted() != 1 || a.Rejected() != 0 {
		t.Fatalf("admitted=%d rejected=%d after duplicate", a.Admitted(), a.Rejected())
	}

	a.ReleaseNonce(0xABC, 4e6)
	if a.Reserved() != 0 || a.Active() != 0 {
		t.Fatalf("release left reserved=%.0f active=%d", a.Reserved(), a.Active())
	}
	// The nonce died with the reservation: the same nonce can reserve
	// again (a genuinely new stream reusing an id is the client's bug,
	// but the ledger must not leak forever).
	if admitted, dup = a.AdmitNonce(0xABC, 4e6, now.Add(2*time.Second), ttl); !admitted || dup {
		t.Fatalf("nonce reuse after release: admitted=%v dup=%v", admitted, dup)
	}
	a.ReleaseNonce(0xABC, 4e6)

	// Zero nonce: plain admission, never deduplicated.
	for i := 0; i < 2; i++ {
		if admitted, dup = a.AdmitNonce(0, 1e6, now, ttl); !admitted || dup {
			t.Fatalf("zero-nonce admit %d: admitted=%v dup=%v", i, admitted, dup)
		}
	}
}

// TestAdmitNonceTTLExpiry: the ledger prunes entries past their TTL (a
// leak backstop), after which the nonce no longer deduplicates.
func TestAdmitNonceTTLExpiry(t *testing.T) {
	a, err := NewAdmission(10e6)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(100, 0)
	if admitted, dup := a.AdmitNonce(7, 1e6, now, time.Second); !admitted || dup {
		t.Fatal("first admit failed")
	}
	if _, dup := a.AdmitNonce(7, 1e6, now.Add(500*time.Millisecond), time.Second); !dup {
		t.Fatal("nonce not deduplicated inside its TTL")
	}
	if admitted, dup := a.AdmitNonce(7, 1e6, now.Add(2*time.Second), time.Second); !admitted || dup {
		t.Fatalf("expired nonce still deduplicating: admitted=%v dup=%v", admitted, dup)
	}
}

func TestAdmissionRejectsBadPeaks(t *testing.T) {
	a, err := NewAdmission(1e6)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{0, -5, math.NaN(), math.Inf(1)} {
		if a.Admit(bad) {
			t.Errorf("peak %v admitted", bad)
		}
	}
	if a.Reserved() != 0 {
		t.Fatalf("bad peaks reserved %v", a.Reserved())
	}
}

// TestIdenticalStreamsFillTheLinkExactly pins the admission arithmetic
// the soak test relies on: a link sized for n equal peaks admits exactly
// n such streams, in any order.
func TestIdenticalStreamsFillTheLinkExactly(t *testing.T) {
	const peak = 1.7e6
	const n = 20
	a, err := NewAdmission(peak * n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !a.Admit(peak) {
			t.Fatalf("stream %d rejected with %f available", i, a.Available())
		}
	}
	for i := 0; i < 5; i++ {
		if a.Admit(peak) {
			t.Fatalf("over-capacity stream %d admitted", i)
		}
	}
	if a.Admitted() != n || a.Rejected() != 5 {
		t.Fatalf("admitted=%d rejected=%d", a.Admitted(), a.Rejected())
	}
}

// TestSmoothedPassesPolicerAtLowerPeak is the admission-control math in
// one test: policed against a single declared peak rate (the CBR
// contract an Admission reserves), the smoothed schedule of a trace
// conforms at its smoothed peak, while the unsmoothed stream of the same
// trace needs the much higher raw peak S_max/τ — so a link of fixed
// capacity admits strictly more smoothed streams.
func TestSmoothedPassesPolicerAtLowerPeak(t *testing.T) {
	tr, err := trace.Driving1(135, 1)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.Smooth(tr, core.Config{K: 1, H: 9, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	smoothedPeak := sched.PeakRate()
	rawPeak := 0.0
	for _, s := range tr.Sizes {
		if r := float64(s) / tr.Tau; r > rawPeak {
			rawPeak = r
		}
	}
	if smoothedPeak >= rawPeak*0.8 {
		t.Fatalf("smoothing bought too little: smoothed peak %.0f vs raw peak %.0f", smoothedPeak, rawPeak)
	}

	// offer replays an emission (rate function sampled per picture)
	// through a fresh policer declared at a single fixed rate.
	offer := func(declared float64, rateOf func(j int) (start, rate float64)) int64 {
		p, err := NewPolicer(4 * CellBits)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.SetRate(0, declared); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < tr.Len(); j++ {
			start, rate := rateOf(j)
			bits, tcur := float64(tr.Sizes[j]), start
			for bits > 0 {
				cell := math.Min(float64(CellBits), bits)
				if _, err := p.Offer(tcur, cell); err != nil {
					t.Fatal(err)
				}
				bits -= cell
				tcur += cell / rate
			}
		}
		return p.Dropped()
	}
	smoothedEmission := func(j int) (float64, float64) { return sched.Start[j], sched.Rates[j] }
	rawEmission := func(j int) (float64, float64) { return float64(j) * tr.Tau, float64(tr.Sizes[j]) / tr.Tau }

	if drops := offer(smoothedPeak, smoothedEmission); drops != 0 {
		t.Errorf("smoothed stream dropped %d cells at its own declared peak", drops)
	}
	if drops := offer(smoothedPeak, rawEmission); drops == 0 {
		t.Error("unsmoothed stream conformed at the smoothed peak: admission would under-reserve")
	}
	if drops := offer(rawPeak, rawEmission); drops != 0 {
		t.Errorf("unsmoothed stream dropped %d cells at the raw peak", drops)
	}
}
