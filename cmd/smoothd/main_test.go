package main

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"mpegsmooth"
)

// syncBuffer makes run's output safe to read while server goroutines
// are still logging to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var (
	streamAddrRe = regexp.MustCompile(`streams on (\S+),`)
	opsAddrRe    = regexp.MustCompile(`ops on http://(\S+)/stats`)
)

func waitAddr(t *testing.T, out *syncBuffer, re *regexp.Regexp) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := re.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("address line %v never appeared in output:\n%s", re, out.String())
	return ""
}

// TestRunServesAndDrains boots the daemon on ephemeral ports, streams
// one handshaked session through it, reads the ops endpoint, then
// cancels the context and expects a clean drain with an exit summary.
func TestRunServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-listen", "127.0.0.1:0",
			"-ops", "127.0.0.1:0",
			"-capacity", "50e6",
			"-policy", "moving-average",
			"-timescale", "200",
		}, out)
	}()
	addr := waitAddr(t, out, streamAddrRe)
	opsAddr := waitAddr(t, out, opsAddrRe)

	// One full client session, exactly what `streamer send -handshake`
	// does: declare, await the verdict, pace the schedule.
	tr, err := mpegsmooth.Driving1(36, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mpegsmooth.Config{K: 1, H: tr.GOP.N, D: 0.2}
	sched, err := mpegsmooth.Smooth(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, tr.Len())
	for i, s := range tr.Sizes {
		payloads[i] = make([]byte, int((s+7)/8))
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fw := mpegsmooth.NewFrameWriter(conn)
	err = fw.WriteHello(mpegsmooth.StreamHello{
		Tau: tr.Tau, GOP: tr.GOP, K: cfg.K, D: cfg.D,
		Pictures: tr.Len(), PeakRate: sched.PeakRate(),
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := mpegsmooth.NewFrameReader(conn).ReadVerdict()
	if err != nil || !v.IsAdmitted() {
		t.Fatalf("admission: %+v, %v", v, err)
	}
	sender := &mpegsmooth.Sender{TimeScale: 200}
	if err := sender.Send(ctx, fw, sched, payloads); err != nil {
		t.Fatal(err)
	}

	// The ops endpoint on its ephemeral port answers while serving.
	waitStats := func(substr string) string {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		var last string
		for time.Now().Before(deadline) {
			resp, err := http.Get("http://" + opsAddr + "/stats")
			if err == nil {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				last = string(body)
				if strings.Contains(last, substr) {
					return last
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("/stats never contained %q; last:\n%s", substr, last)
		return ""
	}
	stats := waitStats(`"completed": 1`)
	if !strings.Contains(stats, `"admitted": 1`) {
		t.Fatalf("stats missing admitted count:\n%s", stats)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("run did not exit after cancel")
	}
	text := out.String()
	if !strings.Contains(text, "draining") || !strings.Contains(text, "1 admitted") ||
		!strings.Contains(text, "1 completed, 0 failed") {
		t.Fatalf("exit summary missing:\n%s", text)
	}
}

// TestRunJournalAndHMACFlags boots the daemon with -journal-dir and
// -integrity hmac-sha256:<keyfile>, streams one keyed session through
// it, restarts it on the same journal, and expects the second boot to
// recover the completion tombstone and answer the old resume token
// with AlreadyComplete — the full crash-safety story through the CLI
// surface alone.
func TestRunJournalAndHMACFlags(t *testing.T) {
	dir := t.TempDir()
	keyfile := filepath.Join(dir, "stream.key")
	if err := os.WriteFile(keyfile, []byte("cli-shared-secret\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	journalDir := filepath.Join(dir, "journal")

	boot := func(ctx context.Context) (*syncBuffer, chan error, string) {
		out := &syncBuffer{}
		done := make(chan error, 1)
		go func() {
			done <- run(ctx, []string{
				"-listen", "127.0.0.1:0",
				"-ops", "",
				"-capacity", "50e6",
				"-timescale", "200",
				"-journal-dir", journalDir,
				"-integrity", "hmac-sha256:" + keyfile,
			}, out)
		}()
		return out, done, waitAddr(t, out, streamAddrRe)
	}
	stop := func(cancel context.CancelFunc, done chan error) {
		t.Helper()
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run: %v", err)
			}
		case <-time.After(20 * time.Second):
			t.Fatal("run did not exit after cancel")
		}
	}

	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	out1, done1, addr := boot(ctx1)
	if !strings.Contains(out1.String(), "recovered 0 parked stream(s), 0 completion tombstone(s)") {
		t.Fatalf("first boot's journal line missing:\n%s", out1.String())
	}

	tr, err := mpegsmooth.Driving1(36, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mpegsmooth.Config{K: 1, H: tr.GOP.N, D: 0.2}
	sched, err := mpegsmooth.Smooth(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, tr.Len())
	for i, s := range tr.Sizes {
		payloads[i] = make([]byte, int((s+7)/8))
	}
	rs := &mpegsmooth.ResumableSender{
		Sender: mpegsmooth.Sender{TimeScale: 200},
		Dial: func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		},
		Hello: mpegsmooth.StreamHello{
			Tau: tr.Tau, GOP: tr.GOP, K: cfg.K, D: cfg.D,
			Pictures: tr.Len(), PeakRate: sched.PeakRate(),
		},
		Integrity: mpegsmooth.IntegrityHMAC,
		Key:       []byte("cli-shared-secret"),
	}
	res, err := rs.StreamSchedule(context.Background(), sched, payloads)
	if err != nil {
		t.Fatal(err)
	}
	stop(cancel1, done1)

	// Second boot, same journal: the graceful first exit left no parked
	// stream but the completion tombstone survives its TTL.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	out2, done2, addr2 := boot(ctx2)
	if !strings.Contains(out2.String(), "recovered 0 parked stream(s), 1 completion tombstone(s)") {
		t.Fatalf("restart did not recover the tombstone:\n%s", out2.String())
	}
	conn, err := net.Dial("tcp", addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := mpegsmooth.NewFrameWriter(conn).WriteResume(mpegsmooth.StreamResume{Token: res.Verdict.ResumeToken}); err != nil {
		t.Fatal(err)
	}
	v, err := mpegsmooth.NewFrameReader(conn).ReadVerdict()
	if err != nil {
		t.Fatal(err)
	}
	if v.Code != mpegsmooth.StreamAlreadyComplete || v.NextIndex != tr.Len() {
		t.Fatalf("post-restart resume verdict %+v, want already-complete at %d", v, tr.Len())
	}
	stop(cancel2, done2)
}

func TestRunRejectsBadFlags(t *testing.T) {
	out := &syncBuffer{}
	cases := [][]string{
		{"-capacity", "0"},
		{"-policy", "no-such-policy"},
		{"-listen", "256.0.0.1:bad"},
		{"-integrity", "no-such-mode"},
		{"-integrity", "hmac-sha256:"},
		{"-integrity", "hmac-sha256:/no/such/keyfile"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
