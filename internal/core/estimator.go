package core

import (
	"mpegsmooth/internal/mpeg"
)

// View exposes to an estimator exactly what is observable at a given
// wall-clock time: the sizes of pictures that have finished encoding, and
// the repeating GOP pattern. Estimators must not peek at unarrived sizes
// (the Oracle estimator, used only as an experimental upper bound,
// deliberately cheats through a separate path).
//
// A View holds the prefix of picture sizes the system has learned so far
// — the whole trace for offline smoothing, the pushed prefix for a
// LiveSmoother — plus the observation time that decides which of those
// count as "arrived".
type View struct {
	tau   float64
	gop   mpeg.GOP
	types []mpeg.PictureType // explicit per-picture types; nil = follow gop
	sizes []int64
	now   float64
}

// Len returns the number of pictures whose sizes the system has learned
// (arrived or not). Arrivals are always a prefix of this.
func (v View) Len() int { return len(v.sizes) }

// Tau returns the picture period.
func (v View) Tau() float64 { return v.tau }

// N returns the pattern length.
func (v View) N() int { return v.gop.N }

// Type returns the picture type at display index j: the explicit type
// when the trace carries one (adaptive-pattern encoders), otherwise the
// repeating pattern's. Types of future pictures come from the pattern —
// the paper's premise that the type sequence is known a priori.
func (v View) Type(j int) mpeg.PictureType {
	if v.types != nil && j >= 0 && j < len(v.types) {
		return v.types[j]
	}
	return v.gop.TypeOf(j)
}

// Arrived reports whether picture j has fully arrived (encoded) at the
// view's time: the S_j bits arrive during ((j)τ, (j+1)τ] in 0-based
// indexing.
func (v View) Arrived(j int) bool {
	return j >= 0 && j < len(v.sizes) && v.now >= float64(j+1)*v.tau
}

// Size returns the actual size of picture j if it has arrived.
func (v View) Size(j int) (int64, bool) {
	if !v.Arrived(j) {
		return 0, false
	}
	return v.sizes[j], true
}

// Estimator predicts the size of a picture that has not yet arrived.
type Estimator interface {
	// Estimate returns the predicted size in bits of picture j (which has
	// not arrived in view v).
	Estimate(j int, v View) int64
	// Name identifies the estimator in experiment output.
	Name() string
}

// DefaultInitialSizes are the paper's initial estimates for the start of
// a sequence, before a full pattern has been observed: "each I picture is
// estimated to be 200,000 bits, each P picture 100,000 bits, and each B
// picture 20,000 bits. These estimates are far from being accurate for
// some video sequences. But by Theorem 1, they do not need to be."
var DefaultInitialSizes = map[mpeg.PictureType]int64{
	mpeg.TypeI: 200_000,
	mpeg.TypeP: 100_000,
	mpeg.TypeB: 20_000,
}

// NearestTypeEstimator predicts the size of the most recently arrived
// picture of the same type — the natural generalization of the paper's
// S_{j−N} estimator to adaptive-pattern streams, where "one pattern
// earlier" is undefined. For fixed patterns it differs from
// PatternEstimator only for B and P pictures adjacent to a same-type
// neighbour.
type NearestTypeEstimator struct {
	// Initial overrides DefaultInitialSizes when non-nil.
	Initial map[mpeg.PictureType]int64
}

// Name implements Estimator.
func (NearestTypeEstimator) Name() string { return "nearest-type" }

// Estimate implements Estimator.
func (e NearestTypeEstimator) Estimate(j int, v View) int64 {
	ty := v.Type(j)
	start := j - 1
	if start >= v.Len() {
		start = v.Len() - 1
	}
	for jj := start; jj >= 0; jj-- {
		if v.Type(jj) != ty {
			continue
		}
		if s, ok := v.Size(jj); ok {
			return s
		}
	}
	init := e.Initial
	if init == nil {
		init = DefaultInitialSizes
	}
	return init[ty]
}

// PatternEstimator is the paper's estimator: the size of picture j is
// estimated as S_{j−N} — the most recent picture of the same type, one
// pattern earlier — falling back to per-type initial estimates at the
// start of the sequence. "They are about the same size unless there is a
// scene change in the picture sequence from j−N to j."
type PatternEstimator struct {
	// Initial overrides DefaultInitialSizes when non-nil.
	Initial map[mpeg.PictureType]int64
}

// Name implements Estimator.
func (PatternEstimator) Name() string { return "pattern" }

// Estimate implements Estimator.
func (e PatternEstimator) Estimate(j int, v View) int64 {
	for jj := j - v.N(); jj >= 0; jj -= v.N() {
		if s, ok := v.Size(jj); ok {
			return s
		}
	}
	init := e.Initial
	if init == nil {
		init = DefaultInitialSizes
	}
	return init[v.Type(j)]
}

// TypeMeanEstimator predicts the running mean size of all arrived
// pictures of the same type — an ablation alternative that adapts more
// slowly to scene changes but is robust to outliers.
type TypeMeanEstimator struct{}

// Name implements Estimator.
func (TypeMeanEstimator) Name() string { return "type-mean" }

// Estimate implements Estimator.
func (TypeMeanEstimator) Estimate(j int, v View) int64 {
	ty := v.Type(j)
	var sum, n int64
	for jj := 0; jj < v.Len(); jj++ {
		if v.Type(jj) != ty {
			continue
		}
		s, ok := v.Size(jj)
		if !ok {
			break // arrivals are prefix-closed; nothing later has arrived
		}
		sum += s
		n++
	}
	if n == 0 {
		return DefaultInitialSizes[ty]
	}
	return sum / n
}

// EWMAEstimator predicts an exponentially weighted moving average of
// arrived same-type sizes: faster to adapt than the plain mean, smoother
// than the pattern estimator.
type EWMAEstimator struct {
	// Alpha is the smoothing factor in (0, 1]; 0 defaults to 0.5.
	Alpha float64
}

// Name implements Estimator.
func (EWMAEstimator) Name() string { return "ewma" }

// Estimate implements Estimator.
func (e EWMAEstimator) Estimate(j int, v View) int64 {
	alpha := e.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	ty := v.Type(j)
	est := float64(DefaultInitialSizes[ty])
	seen := false
	for jj := 0; jj < v.Len(); jj++ {
		if v.Type(jj) != ty {
			continue
		}
		s, ok := v.Size(jj)
		if !ok {
			break
		}
		if !seen {
			est = float64(s)
			seen = true
			continue
		}
		est = alpha*float64(s) + (1-alpha)*est
	}
	return int64(est)
}

// OracleEstimator returns the true future size — physically unrealizable,
// used only to bound how much better a perfect predictor could do
// (experiment Ext C).
type OracleEstimator struct{}

// Name implements Estimator.
func (OracleEstimator) Name() string { return "oracle" }

// Estimate implements Estimator.
func (OracleEstimator) Estimate(j int, v View) int64 {
	if j >= 0 && j < len(v.sizes) {
		return v.sizes[j]
	}
	return 0
}
