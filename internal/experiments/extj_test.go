package experiments

import (
	"bytes"
	"testing"
)

// TestExtJDeterministic: the large-scale experiment is a pure function
// of its seed — two runs at 1000 sources must render byte-identical CSV.
func TestExtJDeterministic(t *testing.T) {
	cfg := ExtJConfig{
		Streams:     []int{1000},
		Ds:          []float64{0.1333},
		BisectIters: 5,
		Seed:        7,
	}
	render := func() []byte {
		rows, err := ExtJ(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteScaleCSV(&buf, rows); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := render()
	b := render()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different CSV:\n%s\nvs\n%s", a, b)
	}
	t.Logf("extJ @1000 sources:\n%s", a)
}

// TestExtJSmoothingGain: at a thousand multiplexed sources, smoothing
// at a moderate delay bound must still admit at least as much load as
// the raw population. (The gain saturates at this scale — statistical
// multiplexing across a thousand phases already smooths the aggregate —
// and at large D it can even invert slightly; the CSV records the whole
// curve, this test pins the moderate-D point.)
func TestExtJSmoothingGain(t *testing.T) {
	rows, err := ExtJ(ExtJConfig{
		Streams:     []int{1000},
		Ds:          []float64{0.1333},
		BisectIters: 9,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	t.Logf("n=%d D=%.4f raw %.3f smoothed %.3f gain %.3f", r.Streams, r.D, r.RawLoad, r.SmoothedLoad, r.Gain)
	if r.RawLoad <= 0 || r.RawLoad > 1 || r.SmoothedLoad <= 0 || r.SmoothedLoad > 1 {
		t.Fatalf("loads out of range: %+v", r)
	}
	if r.Gain < 1 {
		t.Fatalf("smoothing reduced admissible load at moderate D: %+v", r)
	}
}
