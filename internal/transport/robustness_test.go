package transport

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net"
	"testing"
	"testing/quick"
	"time"
)

// TestReadMessageOnRandomBytes: the wire parser must be total — any byte
// stream yields a message or an error, never a panic, and payload
// allocation is bounded by the announced-size check.
func TestReadMessageOnRandomBytes(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, int(n)%2048)
		rng.Read(data)
		r := NewFrameReader(bytes.NewReader(data))
		for {
			_, err := r.ReadMessage()
			if err != nil {
				return true
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestReceiveOnRandomBytes: the full receive loop is equally total.
func TestReceiveOnRandomBytes(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, int(n)%2048)
		rng.Read(data)
		Receive(context.Background(), bytes.NewReader(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestReceiverCutsOffStalledSender: a sender that goes silent — here
// mid-payload, the worst case, after the header promised more bytes —
// must not wedge the receiver forever. The configured read deadline cuts
// the stream with a timeout error.
func TestReceiverCutsOffStalledSender(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	go func() {
		w := NewFrameWriter(client)
		w.WriteRate(RateNotification{Index: 0, Rate: 1e6})
		w.WritePictureHeader(0, 0, make([]byte, 1024))
		w.WriteChunk(make([]byte, 100)) // then stall, 924 bytes short
	}()

	rc := &Receiver{ReadTimeout: 100 * time.Millisecond}
	done := make(chan error, 1)
	go func() {
		_, err := rc.Receive(context.Background(), server)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("stalled sender did not produce an error")
		}
		var nerr net.Error
		if !errors.As(err, &nerr) || !nerr.Timeout() {
			t.Fatalf("want a timeout error, got %v", err)
		}
		if ClassifyFault(err) != FaultTimeout {
			t.Fatalf("classified %v, want timeout", ClassifyFault(err))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("read deadline did not fire: receiver wedged by stalled sender")
	}
}

// TestReadDeadlineRearmedPerMessage: the deadline must cover each
// message individually, not the whole session. Three messages each
// arriving after 3/5 of the timeout succeed (their sum is well past one
// timeout), then a stall of more than the timeout trips it.
func TestReadDeadlineRearmedPerMessage(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	const timeout = 250 * time.Millisecond
	go func() {
		w := NewFrameWriter(client)
		for i := 0; i < 3; i++ {
			time.Sleep(timeout * 3 / 5)
			w.WriteRate(RateNotification{Index: i, Rate: 1e6})
		}
		// Then stall: no end marker, no close.
	}()

	fr := NewFrameReader(server)
	for i := 0; i < 3; i++ {
		msg, err := fr.ReadMessageTimeout(timeout)
		if err != nil {
			t.Fatalf("message %d: deadline not re-armed per message: %v", i, err)
		}
		if rn, ok := msg.(*RateNotification); !ok || rn.Index != i {
			t.Fatalf("message %d: got %#v", i, msg)
		}
	}
	if _, err := fr.ReadMessageTimeout(timeout); ClassifyFault(err) != FaultTimeout {
		t.Fatalf("stall after re-armed reads: want timeout, got %v", err)
	}
}

// TestCorruptedSessionStream: flip bytes in a valid session recording;
// with CRC framing every corruption must be *detected* — the receive
// either errors or (if the flips landed beyond the end marker, which
// cannot happen here) completes with intact payloads. Never a silent
// wrong payload, never a hang or panic.
func TestCorruptedSessionStream(t *testing.T) {
	sched, payloads := testSchedule(t, 18)
	var buf bytes.Buffer
	s := &Sender{TimeScale: 1e6} // effectively unpaced
	if err := s.Send(context.Background(), NewFrameWriter(&buf), sched, payloads); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 100; trial++ {
		data := append([]byte(nil), clean...)
		for k := rng.Intn(8) + 1; k > 0; k-- {
			data[rng.Intn(len(data))] ^= byte(rng.Intn(255) + 1)
		}
		report, err := Receive(context.Background(), bytes.NewReader(data))
		if err != nil {
			continue // corruption detected — the hardened outcome
		}
		// The only clean completion is one where every payload still
		// verifies (flips confined to... nothing: every byte is covered
		// by a checksum, so this must match byte-exactly).
		if len(report.Pictures) != len(payloads) {
			t.Fatalf("trial %d: silent truncation to %d pictures", trial, len(report.Pictures))
		}
		for i, p := range report.Pictures {
			if p.Sum64 != PayloadSum64(payloads[i]) {
				t.Fatalf("trial %d: corrupted payload %d delivered as valid", trial, i)
			}
		}
	}
}
