package transport

import (
	"errors"
	"io"
	"net"
	"os"
	"syscall"
)

// ErrResumeBusy reports a resume handshake the server answered with a
// busy verdict: it has not yet detected the old connection's death. The
// stream is still parked-able — the reconnect simply raced the fault —
// so the error classifies as a retryable reset.
var ErrResumeBusy = errors.New("transport: server not yet accepting resume")

// ErrStaleEpoch reports a verdict or redirect stamped with a lower
// fencing epoch than one the sender has already seen: the answering
// server is a deposed primary that has not yet noticed its demotion.
// Acting on its authority could split the stream's history, but the
// condition is transient — the deposed node demotes on its next
// replication exchange — so the error classifies as a retryable reset.
var ErrStaleEpoch = errors.New("transport: verdict from deposed primary (stale epoch)")

// ErrDiverged reports that the server's admitted-prefix hash does not
// match the sender's own bytes for the same prefix: the two ends hold
// different data for pictures both believe delivered. Replaying would
// ship divergent bytes under a token that vouches for them, so the
// fault is terminal — no reconnect can reconcile the histories.
var ErrDiverged = errors.New("transport: stream prefix diverged from server state")

// FaultClass buckets transport failures for accounting and recovery
// policy: every class except FaultOther is a transient link fault a
// resumable stream recovers from by reconnecting.
type FaultClass int

// Fault classes, from "no fault" through the recoverable link faults to
// the terminal catch-all.
const (
	// FaultNone: no error.
	FaultNone FaultClass = iota
	// FaultCorrupt: bytes on the wire failed verification — CRC
	// mismatch, sequence discontinuity, unknown kind, or nonsense field
	// values. The connection's framing cannot be trusted any further.
	FaultCorrupt
	// FaultTimeout: a read or write deadline expired (stalled peer or
	// partitioned link).
	FaultTimeout
	// FaultReset: the connection dropped — reset, broken pipe, closed,
	// or truncated mid-message.
	FaultReset
	// FaultOther: anything else (terminal; not retried).
	FaultOther
)

// String names the fault class (the ops-counter key).
func (c FaultClass) String() string {
	switch c {
	case FaultNone:
		return "none"
	case FaultCorrupt:
		return "corrupt"
	case FaultTimeout:
		return "timeout"
	case FaultReset:
		return "reset"
	}
	return "other"
}

// Retryable reports whether a fault of this class is worth a reconnect
// attempt on a resumable stream.
func (c FaultClass) Retryable() bool {
	return c == FaultCorrupt || c == FaultTimeout || c == FaultReset
}

// ClassifyFault buckets a transport error. ErrClosed (orderly end) and
// nil map to FaultNone; context cancellation maps to FaultOther so
// shutdown is never mistaken for a link fault, and ErrDiverged maps to
// FaultOther because no reconnect reconciles divergent stream
// histories. Any error satisfying net.Error with Timeout() true — which
// includes faultnet's injected partitions — classifies as a timeout, so
// a parked stream rides out a partition window like any other stall.
func ClassifyFault(err error) FaultClass {
	switch {
	case err == nil, errors.Is(err, ErrClosed):
		return FaultNone
	case errors.Is(err, ErrDiverged):
		return FaultOther
	case errors.Is(err, ErrCorrupt), errors.Is(err, ErrBadSeq):
		return FaultCorrupt
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return FaultTimeout
	}
	switch {
	case errors.Is(err, os.ErrDeadlineExceeded):
		return FaultTimeout
	case errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, io.ErrClosedPipe),
		errors.Is(err, net.ErrClosed),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.EPIPE),
		// A refused or aborted dial is how a crashed-and-restarting
		// server presents: nothing is listening for a moment. The
		// journaled session survives the restart, so retrying the
		// connection is exactly right.
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.ECONNABORTED),
		errors.Is(err, ErrResumeBusy),
		errors.Is(err, ErrStaleEpoch):
		return FaultReset
	}
	return FaultOther
}
