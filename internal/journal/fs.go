package journal

import (
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FS is the journal's view of its directory: flat, append-oriented, and
// small enough to abstract completely — which is what lets the tests
// inject torn writes, fsync failures, and power-loss truncation without
// touching a real disk's failure modes.
type FS interface {
	// ReadDir lists the file names in the journal directory, sorted.
	ReadDir() ([]string, error)
	// ReadFile returns a file's full contents.
	ReadFile(name string) ([]byte, error)
	// Create creates (or truncates) a file open for appending.
	Create(name string) (File, error)
	// Remove deletes a file.
	Remove(name string) error
	// Truncate cuts a file to size bytes — the torn-tail repair.
	Truncate(name string, size int64) error
}

// File is an append-only journal segment handle.
type File interface {
	Write(p []byte) (int, error)
	// Sync commits everything written so far to stable storage.
	Sync() error
	Close() error
}

// DirFS returns the production FS over a real directory, creating it if
// needed. Creates and removes are made durable by syncing the directory
// itself, so a crash cannot forget that a segment exists.
func DirFS(dir string) (FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: creating %s: %w", dir, err)
	}
	return &osFS{dir: dir}, nil
}

type osFS struct {
	dir string
}

func (o *osFS) path(name string) string { return filepath.Join(o.dir, name) }

func (o *osFS) ReadDir() ([]string, error) {
	ents, err := os.ReadDir(o.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (o *osFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(o.path(name))
}

func (o *osFS) Create(name string) (File, error) {
	f, err := os.OpenFile(o.path(name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if err := o.syncDir(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func (o *osFS) Remove(name string) error {
	if err := os.Remove(o.path(name)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return o.syncDir()
}

func (o *osFS) Truncate(name string, size int64) error {
	return os.Truncate(o.path(name), size)
}

// syncDir makes directory mutations (create, remove) durable.
func (o *osFS) syncDir() error {
	d, err := os.Open(o.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// MemFS is an in-memory FS for tests that need to hand-craft journal
// contents (torn tails, boundary conditions) without a tempdir.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMemFS returns an empty in-memory journal directory.
func NewMemFS() *MemFS { return &MemFS{files: map[string][]byte{}} }

func (m *MemFS) ReadDir() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return nil, fs.ErrNotExist
	}
	return append([]byte(nil), data...), nil
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = nil
	return &memFile{fs: m, name: name}, nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, name)
	return nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return fs.ErrNotExist
	}
	if int64(len(data)) > size {
		m.files[name] = data[:size]
	}
	return nil
}

// WriteFile plants a file wholesale — for tests crafting exact bytes.
func (m *MemFS) WriteFile(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = append([]byte(nil), data...)
}

type memFile struct {
	fs   *MemFS
	name string
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.fs.files[f.name] = append(f.fs.files[f.name], p...)
	return len(p), nil
}

func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }

// FaultFS wraps an FS with deterministic write/fsync fault injection,
// mirroring faultnet's style: targeted op indices for scripted
// scenarios plus seeded probabilities for soaks. Counters are global
// across files, 1-based, so "the 3rd write fails torn" is exact.
type FaultFS struct {
	inner FS
	cfg   FaultConfig

	mu     sync.Mutex
	rng    *rand.Rand
	writes int
	syncs  int

	// Injected counts faults actually fired, so tests can assert the
	// scenario exercised something.
	injectedWrites int
	injectedSyncs  int
}

// FaultConfig parameterizes FaultFS.
type FaultConfig struct {
	// Seed drives the probabilistic faults.
	Seed int64
	// FailWrite, when > 0, makes the Nth Write (1-based, across all
	// files) a torn write: TornBytes reach the file, the rest do not,
	// and the write reports an error.
	FailWrite int
	// TornBytes is how many of the failing write's bytes still land
	// (default: half).
	TornBytes int
	// FailSync, when > 0, makes the Nth Sync (1-based) report an error
	// without syncing.
	FailSync int
	// FailRemoves makes every Remove fail — the crash-during-compaction
	// shape where old segments linger next to the snapshot.
	FailRemoves bool
	// WriteErrProb and SyncErrProb are seeded per-op fault probabilities
	// for soaks (torn at a random point, and sync error, respectively).
	WriteErrProb float64
	SyncErrProb  float64
}

// NewFaultFS wraps inner with fault injection.
func NewFaultFS(inner FS, cfg FaultConfig) *FaultFS {
	return &FaultFS{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Injected reports how many write and sync faults have fired.
func (f *FaultFS) Injected() (writes, syncs int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injectedWrites, f.injectedSyncs
}

func (f *FaultFS) ReadDir() ([]string, error)             { return f.inner.ReadDir() }
func (f *FaultFS) ReadFile(name string) ([]byte, error)   { return f.inner.ReadFile(name) }
func (f *FaultFS) Truncate(name string, size int64) error { return f.inner.Truncate(name, size) }

func (f *FaultFS) Remove(name string) error {
	if f.cfg.FailRemoves {
		return fmt.Errorf("journal: injected remove failure for %s", name)
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) Create(name string) (File, error) {
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	f := ff.fs
	f.mu.Lock()
	f.writes++
	torn := -1
	if f.cfg.FailWrite > 0 && f.writes == f.cfg.FailWrite {
		torn = f.cfg.TornBytes
		if torn <= 0 || torn >= len(p) {
			torn = len(p) / 2
		}
	} else if f.cfg.WriteErrProb > 0 && f.rng.Float64() < f.cfg.WriteErrProb {
		torn = f.rng.Intn(len(p))
	}
	if torn >= 0 {
		f.injectedWrites++
	}
	f.mu.Unlock()
	if torn >= 0 {
		ff.inner.Write(p[:torn])
		return torn, fmt.Errorf("journal: injected torn write (%d of %d bytes)", torn, len(p))
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	f := ff.fs
	f.mu.Lock()
	f.syncs++
	fail := (f.cfg.FailSync > 0 && f.syncs == f.cfg.FailSync) ||
		(f.cfg.SyncErrProb > 0 && f.rng.Float64() < f.cfg.SyncErrProb)
	if fail {
		f.injectedSyncs++
	}
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("journal: injected fsync failure")
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error { return ff.inner.Close() }

// CrashFS wraps an FS and models power-loss semantics: writes pass
// through, but Crash() truncates every file back to its last-synced
// length plus a seeded random portion of the unsynced tail — so
// anything not covered by an fsync may vanish, possibly mid-record.
// This is deliberately stronger than SIGKILL (where the page cache
// survives): recovery that handles power loss handles process death for
// free.
type CrashFS struct {
	inner FS

	mu    sync.Mutex
	files map[string]*crashTrack
}

type crashTrack struct {
	size   int64 // bytes written
	synced int64 // bytes covered by the last Sync
}

// NewCrashFS wraps inner with crash tracking.
func NewCrashFS(inner FS) *CrashFS {
	return &CrashFS{inner: inner, files: map[string]*crashTrack{}}
}

func (c *CrashFS) ReadDir() ([]string, error)           { return c.inner.ReadDir() }
func (c *CrashFS) ReadFile(name string) ([]byte, error) { return c.inner.ReadFile(name) }

func (c *CrashFS) Create(name string) (File, error) {
	inner, err := c.inner.Create(name)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.files[name] = &crashTrack{}
	c.mu.Unlock()
	return &crashFile{fs: c, name: name, inner: inner}, nil
}

func (c *CrashFS) Remove(name string) error {
	if err := c.inner.Remove(name); err != nil {
		return err
	}
	c.mu.Lock()
	delete(c.files, name)
	c.mu.Unlock()
	return nil
}

func (c *CrashFS) Truncate(name string, size int64) error {
	if err := c.inner.Truncate(name, size); err != nil {
		return err
	}
	c.mu.Lock()
	if tr := c.files[name]; tr != nil {
		if tr.size > size {
			tr.size = size
		}
		if tr.synced > size {
			tr.synced = size
		}
	}
	c.mu.Unlock()
	return nil
}

// Crash simulates power loss: every tracked file is cut back to its
// synced length plus a random slice of its unsynced tail (which is how
// torn records arise naturally). All journal handles must be closed
// (Journal.Abandon) before calling. After Crash the FS is ready for the
// next generation's Open.
func (c *CrashFS) Crash(rng *rand.Rand) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, tr := range c.files {
		keep := tr.synced
		if unsynced := tr.size - tr.synced; unsynced > 0 {
			keep += rng.Int63n(unsynced + 1)
		}
		if err := c.inner.Truncate(name, keep); err != nil {
			return err
		}
		tr.size, tr.synced = keep, keep
	}
	return nil
}

type crashFile struct {
	fs    *CrashFS
	name  string
	inner File
}

func (cf *crashFile) Write(p []byte) (int, error) {
	n, err := cf.inner.Write(p)
	cf.fs.mu.Lock()
	if tr := cf.fs.files[cf.name]; tr != nil {
		tr.size += int64(n)
	}
	cf.fs.mu.Unlock()
	return n, err
}

func (cf *crashFile) Sync() error {
	if err := cf.inner.Sync(); err != nil {
		return err
	}
	cf.fs.mu.Lock()
	if tr := cf.fs.files[cf.name]; tr != nil {
		tr.synced = tr.size
	}
	cf.fs.mu.Unlock()
	return nil
}

func (cf *crashFile) Close() error { return cf.inner.Close() }
