package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpegsmooth/internal/mpeg"
)

// collectLive pushes a whole trace through a LiveSmoother and gathers all
// decisions.
func collectLive(t testing.TB, tau float64, gop mpeg.GOP, cfg Config, sizes []int64) []Decision {
	t.Helper()
	ls, err := NewLiveSmoother(tau, gop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []Decision
	for _, s := range sizes {
		ds, err := ls.Push(s)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ds...)
	}
	out = append(out, ls.Close()...)
	return out
}

// TestLiveMatchesOffline: the incremental smoother must produce exactly
// the offline schedule, decision for decision.
func TestLiveMatchesOffline(t *testing.T) {
	tr := paperTrace(t, 270)
	for _, cfg := range []Config{
		{K: 1, H: 9, D: 0.2},
		{K: 1, H: 9, D: 0.1},
		{K: 3, H: 18, D: 0.25},
		{K: 9, H: 9, D: 0.1333 + 10.0/30},
		{K: 1, H: 1, D: 0.0667},
		{K: 1, H: 9, D: 0.2, Variant: MovingAverage},
		{K: 1, H: 9, D: 0.2, Estimator: TypeMeanEstimator{}},
	} {
		offline, err := Smooth(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		live := collectLive(t, tr.Tau, tr.GOP, cfg, tr.Sizes)
		if len(live) != tr.Len() {
			t.Fatalf("%+v: live produced %d decisions, want %d", cfg, len(live), tr.Len())
		}
		for i, d := range live {
			if d.Picture != i {
				t.Fatalf("%+v: decision %d is for picture %d", cfg, i, d.Picture)
			}
			if d.Rate != offline.Rates[i] || d.Start != offline.Start[i] ||
				d.Depart != offline.Depart[i] || d.Delay != offline.Delays[i] {
				t.Fatalf("%+v picture %d: live (r=%v t=%v d=%v) != offline (r=%v t=%v d=%v)",
					cfg, i, d.Rate, d.Start, d.Depart,
					offline.Rates[i], offline.Start[i], offline.Depart[i])
			}
		}
	}
}

// TestLiveMatchesOfflineProperty extends the equivalence to random
// traces and configurations.
func TestLiveMatchesOfflineProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		cfg := randomConfig(rng, tr)
		offline, err := Smooth(tr, cfg)
		if err != nil {
			return false
		}
		ls, err := NewLiveSmoother(tr.Tau, tr.GOP, cfg)
		if err != nil {
			return false
		}
		var live []Decision
		for _, s := range tr.Sizes {
			ds, err := ls.Push(s)
			if err != nil {
				return false
			}
			live = append(live, ds...)
		}
		live = append(live, ls.Close()...)
		if len(live) != tr.Len() {
			t.Logf("seed %d: %d decisions for %d pictures", seed, len(live), tr.Len())
			return false
		}
		for i, d := range live {
			if d.Rate != offline.Rates[i] || d.Start != offline.Start[i] || d.Depart != offline.Depart[i] {
				t.Logf("seed %d cfg %+v picture %d: live %v/%v offline %v/%v",
					seed, cfg, i, d.Rate, d.Start, offline.Rates[i], offline.Start[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLiveEmitsEagerly(t *testing.T) {
	// With K=1 and H=1, a decision for picture j should be available
	// shortly after picture j (plus whatever the view horizon needs) —
	// NOT only at Close.
	gop := mpeg.GOP{M: 3, N: 9}
	ls, err := NewLiveSmoother(1.0/30, gop, Config{K: 1, H: 1, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	emitted := 0
	for i := 0; i < 90; i++ {
		ds, err := ls.Push(30_000)
		if err != nil {
			t.Fatal(err)
		}
		emitted += len(ds)
	}
	if emitted < 80 {
		t.Fatalf("only %d of 90 decisions emitted before Close", emitted)
	}
	rest := ls.Close()
	if emitted+len(rest) != 90 {
		t.Fatalf("total decisions %d, want 90", emitted+len(rest))
	}
}

func TestLiveValidation(t *testing.T) {
	gop := mpeg.GOP{M: 3, N: 9}
	if _, err := NewLiveSmoother(0, gop, Config{K: 1, H: 9, D: 0.2}); err == nil {
		t.Error("zero tau should fail")
	}
	if _, err := NewLiveSmoother(1.0/30, mpeg.GOP{M: 3, N: 10}, Config{K: 1, H: 9, D: 0.2}); err == nil {
		t.Error("bad GOP should fail")
	}
	if _, err := NewLiveSmoother(1.0/30, gop, Config{K: 1, H: 0, D: 0.2}); err == nil {
		t.Error("bad config should fail")
	}
	ls, err := NewLiveSmoother(1.0/30, gop, Config{K: 1, H: 9, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Push(0); err == nil {
		t.Error("zero size should fail")
	}
	ls.Close()
	if _, err := ls.Push(100); err == nil {
		t.Error("Push after Close should fail")
	}
	// Close is idempotent.
	if extra := ls.Close(); len(extra) != 0 {
		t.Error("second Close emitted decisions")
	}
}

func TestLiveAccessors(t *testing.T) {
	gop := mpeg.GOP{M: 3, N: 9}
	ls, err := NewLiveSmoother(1.0/30, gop, Config{K: 1, H: 9, D: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := ls.Push(50_000); err != nil {
			t.Fatal(err)
		}
	}
	if ls.Pushed() != 5 {
		t.Fatalf("Pushed = %d", ls.Pushed())
	}
	if ls.Pending() < 0 || ls.Pending() > 5 {
		t.Fatalf("Pending = %d", ls.Pending())
	}
	ls.Close()
	if ls.Pending() != 0 {
		t.Fatalf("Pending after Close = %d", ls.Pending())
	}
}

func BenchmarkLivePush(b *testing.B) {
	gop := mpeg.GOP{M: 3, N: 9}
	tr := paperTrace(b, 270)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ls, err := NewLiveSmoother(tr.Tau, gop, Config{K: 1, H: 9, D: 0.2})
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range tr.Sizes {
			if _, err := ls.Push(s); err != nil {
				b.Fatal(err)
			}
		}
		ls.Close()
	}
}
