package server

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"mpegsmooth/internal/faultnet"
	"mpegsmooth/internal/transport"
)

// payloadFNV is the sender-side mirror of the server's running integrity
// hash: FNV-1a over every payload in index order.
func payloadFNV(payloads [][]byte) uint64 {
	h := fnv.New64a()
	for _, p := range payloads {
		h.Write(p)
	}
	return h.Sum64()
}

// startChaosServer is startServer with the listener wrapped in a
// fault-injecting network.
func startChaosServer(t testing.TB, cfg Config, nw *faultnet.Network) (*Server, string) {
	t.Helper()
	if cfg.TimeScale == 0 {
		cfg.TimeScale = soakTimeScale
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(nw.Listener(ln)) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func resumableClient(kit *clientKit, addr string, seed int64) *transport.ResumableSender {
	return &transport.ResumableSender{
		Sender: transport.Sender{TimeScale: soakTimeScale, Chunk: 512, WriteTimeout: 5 * time.Second},
		Dial: func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		},
		Hello:       kit.hello,
		Backoff:     transport.Backoff{Base: 10 * time.Millisecond, Max: 200 * time.Millisecond},
		MaxAttempts: 25,
		Seed:        seed,
	}
}

// TestChaosSoakResumableStreams is the acceptance soak: 20 resumable
// clients stream through fault-injecting networks on BOTH sides — the
// server's listener and each client's dialer — that corrupt bytes,
// stall reads, and abruptly reset connections. Every stream must
// complete with a byte-exact payload hash — a flaky link costs delay
// and reconnects, never pictures — every client must hold exactly one
// admission (the nonce ledger absorbing every lost or mangled
// handshake), and the classified fault counters must show the chaos
// actually happened.
func TestChaosSoakResumableStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	const clients = 20
	kit := makeClient(t, testTrace(t, 72))
	wantFNV := payloadFNV(kit.payloads)

	nw := faultnet.New(faultnet.Config{
		Seed:        42,
		CorruptProb: 0.02,
		ResetProb:   0.01,
		StallProb:   0.02,
		Stall:       20 * time.Millisecond,
		// Keep the hello/resume/verdict/ack exchanges clean so faults
		// concentrate on the picture stream rather than re-rolling
		// admission.
		FaultFreeBytes: 256,
	})
	// The client-side network exercises the senders' own read and write
	// paths: verdicts and completion acks arrive corrupted, outbound
	// handshakes die mid-flight. Milder mix than the server side so the
	// compounded fault rate stays inside MaxAttempts.
	clientNet := faultnet.New(faultnet.Config{
		Seed:           4242,
		CorruptProb:    0.01,
		ResetProb:      0.005,
		StallProb:      0.01,
		Stall:          20 * time.Millisecond,
		FaultFreeBytes: 256,
	})
	srv, addr := startChaosServer(t, Config{
		LinkRate:     float64(clients+1) * kit.hello.PeakRate,
		ReadTimeout:  2 * time.Second,
		ResumeWindow: 5 * time.Second,
	}, nw)

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		resumes  int
		failures []error
	)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs := resumableClient(kit, addr, int64(i+1))
			rs.Dial = clientNet.Dialer(rs.Dial)
			res, err := rs.StreamSchedule(ctx, kit.sched, kit.payloads)
			mu.Lock()
			defer mu.Unlock()
			resumes += res.Resumes
			if err != nil {
				failures = append(failures, fmt.Errorf("client %d: %w", i, err))
			}
		}(i)
	}
	wg.Wait()
	for _, err := range failures {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	waitFor(t, "all streams drained", func() bool {
		s := srv.Snapshot()
		return s.Streams.Completed == clients && s.Streams.Active == 0
	})

	snap := srv.Snapshot()
	if snap.Streams.Failed != 0 {
		t.Fatalf("%d streams failed under chaos", snap.Streams.Failed)
	}
	if snap.Streams.Parked != 0 {
		t.Fatalf("%d streams still parked", snap.Streams.Parked)
	}
	// Lossless and byte-exact: every finished stream accepted every
	// picture, in order, with the sender's exact bytes.
	fin := srv.FinishedStreams()
	if len(fin) != clients {
		t.Fatalf("%d finished snapshots, want %d", len(fin), clients)
	}
	for _, ss := range fin {
		if ss.Pictures != kit.tr.Len() {
			t.Fatalf("stream %d: %d pictures, want %d", ss.ID, ss.Pictures, kit.tr.Len())
		}
		if ss.PayloadFNV != wantFNV {
			t.Fatalf("stream %d: payload hash %x, want %x — bytes corrupted or lost",
				ss.ID, ss.PayloadFNV, wantFNV)
		}
	}
	// The chaos was real on both sides: each harness injected faults,
	// the server classified them, and streams came back.
	counts := nw.Counts()
	if counts.Corrupted+counts.Resets+counts.Stalls == 0 {
		t.Fatal("server-side fault harness injected nothing; soak proved nothing")
	}
	cc := clientNet.Counts()
	if cc.Corrupted+cc.Resets+cc.Stalls == 0 {
		t.Fatal("client-side fault harness injected nothing")
	}
	if got := snap.Faults.Corrupt + snap.Faults.Timeout + snap.Faults.Reset; got == 0 {
		t.Fatalf("server classified no faults (harness injected %+v)", counts)
	}
	if snap.Faults.Resumed < 1 || resumes < 1 {
		t.Fatalf("no stream resumed (server %d, clients %d)", snap.Faults.Resumed, resumes)
	}
	// Exactly-once admission under chaos: every retried or deduplicated
	// handshake converged on one reservation per client, and the ledger
	// survived the churn.
	if snap.Streams.Admitted != clients {
		t.Fatalf("admitted %d sessions for %d clients: handshake retries double-reserved",
			snap.Streams.Admitted, clients)
	}
	if snap.ReservedPeak != 0 || snap.AvailablePeak != snap.CapacityBPS {
		t.Fatalf("reservations leaked: %.0f reserved", snap.ReservedPeak)
	}
}

// TestPartitionSpanningResume: a full network partition longer than the
// server's read timeout but shorter than the resume window severs a
// live stream on both sides at once. The partition classifies as a
// timeout (retryable) for everyone — the server parks, the client backs
// off through ErrPartitioned dial-less failures — and when the window
// heals the stream resumes and completes byte-exact.
func TestPartitionSpanningResume(t *testing.T) {
	if testing.Short() {
		t.Skip("partition soak skipped in -short mode")
	}
	kit := makeClient(t, testTrace(t, 72))
	wantFNV := payloadFNV(kit.payloads)

	nw := faultnet.New(faultnet.Config{Seed: 7})
	srv, addr := startChaosServer(t, Config{
		LinkRate:     2 * kit.hello.PeakRate,
		ReadTimeout:  300 * time.Millisecond,
		ResumeWindow: 10 * time.Second,
	}, nw)

	rs := resumableClient(kit, addr, 11)
	// Both directions cross the same partitioned network.
	rs.Dial = nw.Dialer(rs.Dial)
	rs.HandshakeTimeout = 500 * time.Millisecond

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	done := make(chan struct{})
	var (
		res transport.StreamResult
		err error
	)
	go func() {
		defer close(done)
		res, err = rs.StreamSchedule(ctx, kit.sched, kit.payloads)
	}()

	// Let the stream get going, then cut the world for longer than the
	// read timeout (so both ends fault) but far less than the resume
	// window (so the reservation survives).
	waitFor(t, "stream underway", func() bool {
		snap := srv.Snapshot()
		return len(snap.PerStream) == 1 && snap.PerStream[0].Pictures > 3
	})
	nw.PartitionFor(900 * time.Millisecond)

	<-done
	if err != nil {
		t.Fatalf("stream did not survive the partition: %v", err)
	}
	waitFor(t, "completion", func() bool { return srv.Snapshot().Streams.Completed == 1 })

	snap := srv.Snapshot()
	if snap.Streams.Failed != 0 {
		t.Fatalf("stream failed: %+v", snap.Streams)
	}
	// The partition was classified as a retryable timeout somewhere —
	// client or server side — never a terminal fault.
	if res.Faults[transport.FaultOther] != 0 {
		t.Fatalf("client classified a partition fault as terminal: %+v", res.Faults)
	}
	if int64(res.Faults[transport.FaultTimeout])+snap.Faults.Timeout < 1 {
		t.Fatalf("nobody classified a timeout across the partition (client %+v, server %+v)",
			res.Faults, snap.Faults)
	}
	if res.Resumes < 1 {
		t.Fatalf("partition did not force a resume: %+v", res)
	}
	if nw.Counts().Partitions < 1 {
		t.Fatal("no partition was injected")
	}
	fin := srv.FinishedStreams()
	if len(fin) != 1 || fin[0].PayloadFNV != wantFNV || fin[0].Pictures != kit.tr.Len() {
		t.Fatalf("stream not byte-exact after partition resume: %+v", fin)
	}
	if snap.ReservedPeak != 0 {
		t.Fatalf("reservation leaked: %.0f", snap.ReservedPeak)
	}
}

// stallOnceConn pauses its write side once, after `after` bytes, for
// longer than the server's read deadline — a sender that freezes
// mid-payload and then comes back to a connection the server gave up on.
type stallOnceConn struct {
	net.Conn
	after int
	stall time.Duration
	once  sync.Once
	sent  int
}

func (c *stallOnceConn) Write(p []byte) (int, error) {
	if c.sent >= c.after {
		c.once.Do(func() { time.Sleep(c.stall) })
	}
	n, err := c.Conn.Write(p)
	c.sent += n
	return n, err
}

// TestStalledSenderParksAndResumes: a mid-payload stall trips the
// server's read deadline, the stream parks as a timeout fault, and the
// sender — finding its connection dead when it wakes — reconnects and
// resumes. The stream completes byte-exact.
func TestStalledSenderParksAndResumes(t *testing.T) {
	kit := makeClient(t, testTrace(t, 54))
	wantFNV := payloadFNV(kit.payloads)
	srv, addr := startServer(t, Config{
		LinkRate:     2 * kit.hello.PeakRate,
		ReadTimeout:  150 * time.Millisecond,
		ResumeWindow: 10 * time.Second,
	})

	dials := 0
	rs := resumableClient(kit, addr, 7)
	plainDial := rs.Dial
	rs.Dial = func(ctx context.Context) (net.Conn, error) {
		conn, err := plainDial(ctx)
		if err != nil {
			return nil, err
		}
		dials++
		if dials == 1 {
			return &stallOnceConn{Conn: conn, after: 2048, stall: 600 * time.Millisecond}, nil
		}
		return conn, nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := rs.StreamSchedule(ctx, kit.sched, kit.payloads)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if res.Resumes < 1 {
		t.Fatalf("stall did not force a resume: %+v", res)
	}
	waitFor(t, "completion", func() bool { return srv.Snapshot().Streams.Completed == 1 })

	snap := srv.Snapshot()
	if snap.Streams.Failed != 0 {
		t.Fatalf("stream failed: %+v", snap.Streams)
	}
	if snap.Faults.Timeout < 1 {
		t.Fatalf("stall not classified as timeout: %+v", snap.Faults)
	}
	if snap.Faults.Resumed < 1 {
		t.Fatalf("resume not counted: %+v", snap.Faults)
	}
	fin := srv.FinishedStreams()
	if len(fin) != 1 || fin[0].PayloadFNV != wantFNV {
		t.Fatalf("stream not byte-exact after stall+resume")
	}
}

// TestMalformedHelloRejectedCleanly: garbage, truncated hellos, and
// unknown resume tokens each get a clean malformed verdict (best
// effort), reserve nothing, and leak no goroutines.
func TestMalformedHelloRejectedCleanly(t *testing.T) {
	kit := makeClient(t, testTrace(t, 27))
	srv, addr := startServer(t, Config{
		LinkRate:     1e7,
		ReadTimeout:  200 * time.Millisecond,
		ResumeWindow: time.Second,
	})
	before := runtime.NumGoroutine()

	// A valid hello frame to truncate mid-body.
	var helloBuf bytes.Buffer
	if err := transport.NewFrameWriter(&helloBuf).WriteHello(kit.hello); err != nil {
		t.Fatal(err)
	}
	helloBytes := helloBuf.Bytes()

	const rounds = 9
	for i := 0; i < rounds; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		switch i % 3 {
		case 0: // not our protocol at all
			conn.Write([]byte("GET /stats HTTP/1.1\r\n\r\n"))
			v, err := transport.NewFrameReader(conn).ReadVerdictTimeout(5 * time.Second)
			if err != nil {
				t.Fatalf("round %d: no verdict for garbage: %v", i, err)
			}
			if v.Code != transport.RejectedMalformed {
				t.Fatalf("round %d: verdict %+v, want rejected-malformed", i, v)
			}
		case 1: // a hello that dies mid-frame
			conn.Write(helloBytes[:len(helloBytes)-5])
		case 2: // resume with a token the server never issued
			if err := transport.NewFrameWriter(conn).WriteResume(transport.StreamResume{Token: 0xBAD}); err != nil {
				t.Fatal(err)
			}
			v, err := transport.NewFrameReader(conn).ReadVerdictTimeout(5 * time.Second)
			if err != nil {
				t.Fatalf("round %d: no verdict for bad token: %v", i, err)
			}
			if v.Code != transport.RejectedMalformed {
				t.Fatalf("round %d: verdict %+v, want rejected-malformed", i, v)
			}
		}
		conn.Close()
	}
	waitFor(t, "malformed rejections counted", func() bool {
		return srv.Snapshot().Streams.RejectedMalformed == rounds
	})
	snap := srv.Snapshot()
	if snap.Streams.Admitted != 0 || snap.ReservedPeak != 0 {
		t.Fatalf("malformed sessions admitted or reserved: %+v, %.0f reserved",
			snap.Streams, snap.ReservedPeak)
	}
	// Every handler goroutine must have exited: no parked phantoms, no
	// leaked readers. Allow slack for runtime background goroutines.
	waitFor(t, "handler goroutines to exit", func() bool {
		return runtime.NumGoroutine() <= before+3
	})
}
