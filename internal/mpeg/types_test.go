package mpeg

import (
	"strings"
	"testing"
)

func TestGOPValidate(t *testing.T) {
	for _, c := range []struct {
		m, n int
		ok   bool
	}{
		{3, 9, true}, {2, 6, true}, {1, 5, true}, {3, 12, true}, {1, 1, true},
		{0, 9, false}, {3, 0, false}, {3, 10, false}, {-1, 9, false},
	} {
		err := GOP{M: c.m, N: c.n}.Validate()
		if (err == nil) != c.ok {
			t.Errorf("GOP{%d,%d}.Validate() = %v, want ok=%v", c.m, c.n, err, c.ok)
		}
	}
}

func TestGOPPatternsFromPaper(t *testing.T) {
	// Section 1: M=3, N=9 -> IBBPBBPBB repeating; M=1, N=5 -> IPPPP.
	if p := (GOP{M: 3, N: 9}).Pattern(); p != "IBBPBBPBB" {
		t.Errorf("M=3 N=9 pattern = %q, want IBBPBBPBB", p)
	}
	if p := (GOP{M: 1, N: 5}).Pattern(); p != "IPPPP" {
		t.Errorf("M=1 N=5 pattern = %q, want IPPPP", p)
	}
	// The four experimental sequences.
	if p := (GOP{M: 2, N: 6}).Pattern(); p != "IBPBPB" {
		t.Errorf("M=2 N=6 pattern = %q, want IBPBPB", p)
	}
	if p := (GOP{M: 3, N: 12}).Pattern(); p != "IBBPBBPBBPBB" {
		t.Errorf("M=3 N=12 pattern = %q, want IBBPBBPBBPBB", p)
	}
}

func TestGOPTypeOfRepeats(t *testing.T) {
	g := GOP{M: 3, N: 9}
	for i := 0; i < 100; i++ {
		if g.TypeOf(i) != g.TypeOf(i+9) {
			t.Fatalf("pattern does not repeat at %d", i)
		}
	}
}

func TestTransmissionOrderPaperExample(t *testing.T) {
	// Section 2: display IBBPBBPBBIBBP... transmits as IPBBPBBIBBPBB...
	g := GOP{M: 3, N: 9}
	order := g.TransmissionOrder(13)
	var types strings.Builder
	for _, d := range order {
		types.WriteString(g.TypeOf(d).String())
	}
	if got := types.String(); got != "IPBBPBBIBBPBB" {
		t.Fatalf("transmission types = %q, want IPBBPBBIBBPBB", got)
	}
	wantIdx := []int{0, 3, 1, 2, 6, 4, 5, 9, 7, 8, 12, 10, 11}
	for i, d := range order {
		if d != wantIdx[i] {
			t.Fatalf("order[%d] = %d, want %d (full %v)", i, d, wantIdx[i], order)
		}
	}
}

func TestTransmissionOrderIsPermutation(t *testing.T) {
	for _, g := range []GOP{{3, 9}, {2, 6}, {1, 5}, {3, 12}, {1, 1}} {
		for _, count := range []int{1, 2, 5, 9, 10, 27, 100} {
			order := g.TransmissionOrder(count)
			if len(order) != count {
				t.Fatalf("GOP %v count %d: got %d entries", g, count, len(order))
			}
			seen := make([]bool, count)
			for _, d := range order {
				if d < 0 || d >= count || seen[d] {
					t.Fatalf("GOP %v count %d: bad permutation %v", g, count, order)
				}
				seen[d] = true
			}
		}
	}
}

func TestTransmissionOrderReferencesPrecedeBs(t *testing.T) {
	// Every B picture must appear after both of its display-order
	// neighbouring references in transmission order.
	g := GOP{M: 3, N: 9}
	count := 50
	order := g.TransmissionOrder(count)
	posOf := make([]int, count)
	for pos, d := range order {
		posOf[d] = pos
	}
	for d := 0; d < count; d++ {
		if g.TypeOf(d) != TypeB {
			continue
		}
		// Forward reference: latest I/P with display index < d.
		fwd := -1
		for r := d - 1; r >= 0; r-- {
			if g.TypeOf(r) != TypeB {
				fwd = r
				break
			}
		}
		// Backward reference: earliest I/P with display index > d.
		bwd := -1
		for r := d + 1; r < count; r++ {
			if g.TypeOf(r) != TypeB {
				bwd = r
				break
			}
		}
		if fwd >= 0 && posOf[fwd] > posOf[d] {
			t.Fatalf("B %d transmitted before its forward reference %d", d, fwd)
		}
		if bwd >= 0 && posOf[bwd] > posOf[d] {
			t.Fatalf("B %d transmitted before its backward reference %d", d, bwd)
		}
	}
}

func TestPictureTypeString(t *testing.T) {
	for _, c := range []struct {
		t PictureType
		s string
	}{{TypeI, "I"}, {TypeP, "P"}, {TypeB, "B"}} {
		if c.t.String() != c.s {
			t.Errorf("%v.String() = %q", c.t, c.t.String())
		}
		got, err := ParsePictureType(c.s)
		if err != nil || got != c.t {
			t.Errorf("ParsePictureType(%q) = %v, %v", c.s, got, err)
		}
	}
	if _, err := ParsePictureType("X"); err == nil {
		t.Error("ParsePictureType(X) should fail")
	}
}

func TestM1HasNoBPictures(t *testing.T) {
	g := GOP{M: 1, N: 5}
	for i := 0; i < 20; i++ {
		if g.TypeOf(i) == TypeB {
			t.Fatalf("M=1 produced a B picture at %d", i)
		}
	}
	// Transmission order is display order when there are no B pictures.
	order := g.TransmissionOrder(10)
	for i, d := range order {
		if i != d {
			t.Fatalf("M=1 transmission order should be identity, got %v", order)
		}
	}
}
