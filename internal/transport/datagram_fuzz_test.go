package transport

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// FuzzDatagramFrame attacks the datagram layer from below with
// arbitrary bytes, in two stages:
//
//  1. The packet decoder must never panic, and anything it accepts
//     must re-encode byte-identically — a decoder that "repairs"
//     input is a decoder that can be steered.
//  2. The same bytes, reinterpreted as a hostile delivery script
//     (sequence numbers colliding, overlapping, duplicated, and far
//     beyond the reassembly window), drive a receiving flow directly.
//     Whatever the script does, the stream layer must observe a
//     prefix of the in-order payload sequence: no reordering, no
//     duplicate delivery, no bytes conjured after a teardown.
func FuzzDatagramFrame(f *testing.F) {
	f.Add(appendDataPacket(nil, dgKindData, 1, 0, []byte("hello")))
	f.Add(appendDataPacket(nil, dgKindFin, 7, 3, nil))
	f.Add(appendAckPacket(nil, 1, 3, 0b101))
	f.Add([]byte{dgKindData, 0, 0})
	f.Add(bytes.Repeat([]byte{0x80, 0x04, 0xAA, 0xBB, 0xCC, 0xDD}, 8))

	f.Fuzz(func(t *testing.T, data []byte) {
		if p, err := decodeDatagram(data); err == nil {
			var re []byte
			switch p.Kind {
			case dgKindAck:
				re = appendAckPacket(nil, p.Conn, p.Cum, p.Bitmap)
			default:
				re = appendDataPacket(nil, p.Kind, p.Conn, p.Seq, p.Payload)
			}
			if !bytes.Equal(re, data) {
				t.Fatalf("accepted datagram does not re-encode to itself:\n in: %x\nout: %x", data, re)
			}
		}

		// A short linger: the blackhole never acks the FIN Close sends,
		// and a 1s background drain per exec would strangle throughput.
		c := NewDatagramClientConn(newBlackholeConn(), DatagramConfig{Seed: 1, Linger: time.Millisecond})
		defer c.Close()

		// Script: each record is [seq lo byte][payload length][payload…].
		// Single-byte sequences (0..255) probe everything that matters:
		// in-window delivery, duplicate-drop, and beyond-window overflow
		// (window is 128).
		firstPayload := map[uint32][]byte{}
		r := bytes.NewReader(data)
		for {
			var hdr [2]byte
			if _, err := io.ReadFull(r, hdr[:]); err != nil {
				break
			}
			seq := uint32(hdr[0])
			payload := make([]byte, int(hdr[1])%16)
			n, _ := io.ReadFull(r, payload)
			payload = payload[:n]
			if _, seen := firstPayload[seq]; !seen {
				// Duplicate-drop keeps the first arrival; later payloads
				// under the same sequence must never surface.
				firstPayload[seq] = append([]byte(nil), payload...)
			}
			c.handlePacket(dgPacket{Kind: dgKindData, Conn: c.ConnID(), Seq: seq, Payload: payload})
		}

		// Drain without blocking: buffered bytes first, then the expired
		// deadline (or the teardown fault) ends the read loop.
		c.SetReadDeadline(time.Now().Add(-time.Second))
		var got []byte
		buf := make([]byte, 512)
		for {
			n, err := c.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				break
			}
		}

		var want []byte
		for s := uint32(0); ; s++ {
			p, ok := firstPayload[s]
			if !ok {
				break
			}
			want = append(want, p...)
		}
		if !bytes.HasPrefix(want, got) {
			t.Fatalf("stream layer saw bytes out of order:\n got: %x\nwant prefix of: %x", got, want)
		}
	})
}
