// Package vlc implements the variable-length entropy codes of the
// simplified MPEG-1-style codec: run/level coding of quantized DCT
// coefficients with escape codes, differential DC coding with the MPEG-1
// dct_dc_size tables, and Exp-Golomb codes used for motion vectors and
// macroblock address increments.
//
// As in MPEG, the most common (run, level) pairs get short codes from a
// fixed table (a subset of ISO 11172-2 Table B.5), and everything else is
// escape-coded with fixed-length run and level fields. All codes are
// prefix-free and never produce 23 consecutive zero bits, preserving
// start-code uniqueness in the stream (zero-bit stuffing, Section 2 of
// Lam/Chow/Yau).
package vlc

import (
	"errors"
	"fmt"

	"mpegsmooth/internal/bitio"
)

// EOB marks the end of a coefficient block in the AC code space.
const (
	eobBits = 0b10
	eobLen  = 2

	escBits = 0b000001
	escLen  = 6

	// MaxRun and MaxLevel bound escape-coded symbols.
	MaxRun   = 63
	MaxLevel = 2047
)

// ErrInvalidCode reports an undecodable bit pattern.
var ErrInvalidCode = errors.New("vlc: invalid code")

// runLevel is a run of zeros followed by a nonzero level magnitude.
type runLevel struct {
	run   int
	level int32
}

// acCode pairs a run/level symbol with its VLC bits (sign bit excluded).
type acCode struct {
	sym  runLevel
	bits uint32
	len  uint
}

// acTable is the subset of the MPEG-1 transform-coefficient VLC table used
// for the most frequent symbols. All remaining symbols use the escape code.
var acTable = []acCode{
	{runLevel{0, 1}, 0b11, 2},
	{runLevel{1, 1}, 0b011, 3},
	{runLevel{0, 2}, 0b0100, 4},
	{runLevel{2, 1}, 0b0101, 4},
	{runLevel{0, 3}, 0b00101, 5},
	{runLevel{4, 1}, 0b00110, 5},
	{runLevel{3, 1}, 0b00111, 5},
	{runLevel{7, 1}, 0b000100, 6},
	{runLevel{6, 1}, 0b000101, 6},
	{runLevel{1, 2}, 0b000110, 6},
	{runLevel{5, 1}, 0b000111, 6},
	{runLevel{2, 2}, 0b0000100, 7},
	{runLevel{9, 1}, 0b0000101, 7},
	{runLevel{0, 4}, 0b0000110, 7},
	{runLevel{8, 1}, 0b0000111, 7},
}

// acEncode maps symbol -> code for encoding.
var acEncode = map[runLevel]acCode{}

// acDecode maps (len<<16 | bits) -> symbol for decoding.
var acDecode = map[uint32]runLevel{}

// acLens lists the distinct code lengths present in acTable, ascending.
var acLens []uint

func init() {
	seen := map[uint]bool{}
	for _, c := range acTable {
		acEncode[c.sym] = c
		acDecode[uint32(c.len)<<16|c.bits] = c.sym
		if !seen[c.len] {
			seen[c.len] = true
			acLens = append(acLens, c.len)
		}
	}
	for i := 1; i < len(acLens); i++ {
		for j := i; j > 0 && acLens[j] < acLens[j-1]; j-- {
			acLens[j], acLens[j-1] = acLens[j-1], acLens[j]
		}
	}
}

// WriteAC writes one (run, level) coefficient symbol. level must be nonzero
// and |level| <= MaxLevel; run must be in [0, MaxRun].
func WriteAC(w *bitio.Writer, run int, level int32) error {
	if level == 0 {
		return errors.New("vlc: AC level must be nonzero")
	}
	mag := level
	sign := uint32(0)
	if mag < 0 {
		mag = -mag
		sign = 1
	}
	if run < 0 || run > MaxRun || mag > MaxLevel {
		return fmt.Errorf("vlc: AC symbol out of range (run=%d level=%d)", run, level)
	}
	if c, ok := acEncode[runLevel{run, mag}]; ok {
		w.WriteBits(c.bits, c.len)
		w.WriteBit(sign)
		return nil
	}
	// Escape: 6-bit escape code, 6-bit run, 12-bit two's-complement level.
	w.WriteBits(escBits, escLen)
	w.WriteBits(uint32(run), 6)
	w.WriteBits(uint32(level)&0xFFF, 12)
	return nil
}

// WriteEOB terminates a coefficient block.
func WriteEOB(w *bitio.Writer) {
	w.WriteBits(eobBits, eobLen)
}

// ReadAC decodes one AC symbol. It returns eob=true at end of block, in
// which case run and level are meaningless.
func ReadAC(r *bitio.Reader) (run int, level int32, eob bool, err error) {
	// EOB and table codes share the short-prefix space; try ascending code
	// lengths (prefix-freeness makes the first exact match unambiguous).
	if v, perr := r.PeekBits(eobLen); perr == nil && v == eobBits {
		r.SkipBits(eobLen)
		return 0, 0, true, nil
	}
	if v, perr := r.PeekBits(escLen); perr == nil && v == escBits {
		r.SkipBits(escLen)
		rv, err := r.ReadBits(6)
		if err != nil {
			return 0, 0, false, err
		}
		lv, err := r.ReadBits(12)
		if err != nil {
			return 0, 0, false, err
		}
		level := int32(lv)
		if level&0x800 != 0 {
			level -= 0x1000 // sign-extend 12 bits
		}
		if level == 0 {
			return 0, 0, false, ErrInvalidCode
		}
		return int(rv), level, false, nil
	}
	for _, l := range acLens {
		v, perr := r.PeekBits(l)
		if perr != nil {
			return 0, 0, false, perr
		}
		if sym, ok := acDecode[uint32(l)<<16|v]; ok {
			r.SkipBits(int64(l))
			s, err := r.ReadBit()
			if err != nil {
				return 0, 0, false, err
			}
			level := sym.level
			if s == 1 {
				level = -level
			}
			return sym.run, level, false, nil
		}
	}
	return 0, 0, false, ErrInvalidCode
}

// dcLumaCodes maps dct_dc_size (0..8) to its luminance VLC (ISO 11172-2
// Table B.1).
var dcLumaCodes = [9]struct {
	bits uint32
	len  uint
}{
	{0b100, 3}, {0b00, 2}, {0b01, 2}, {0b101, 3}, {0b110, 3},
	{0b1110, 4}, {0b11110, 5}, {0b111110, 6}, {0b1111110, 7},
}

// dcChromaCodes maps dct_dc_size (0..8) to its chrominance VLC (Table B.2).
var dcChromaCodes = [9]struct {
	bits uint32
	len  uint
}{
	{0b00, 2}, {0b01, 2}, {0b10, 2}, {0b110, 3}, {0b1110, 4},
	{0b11110, 5}, {0b111110, 6}, {0b1111110, 7}, {0b11111110, 8},
}

// dcSize returns the number of bits needed to represent |diff|.
func dcSize(diff int32) uint {
	if diff < 0 {
		diff = -diff
	}
	var n uint
	for diff > 0 {
		n++
		diff >>= 1
	}
	return n
}

// WriteDC writes a differential DC value using the MPEG dct_dc_size code
// followed by the differential bits. luma selects the luminance table.
// diff must fit in 8 magnitude bits (|diff| <= 255).
func WriteDC(w *bitio.Writer, diff int32, luma bool) error {
	size := dcSize(diff)
	if size > 8 {
		return fmt.Errorf("vlc: DC differential %d out of range", diff)
	}
	codes := &dcChromaCodes
	if luma {
		codes = &dcLumaCodes
	}
	c := codes[size]
	w.WriteBits(c.bits, c.len)
	if size > 0 {
		v := diff
		if diff < 0 {
			v = diff + (1 << size) - 1 // one's-complement style negative coding
		}
		w.WriteBits(uint32(v), size)
	}
	return nil
}

// ReadDC decodes a differential DC value written by WriteDC.
func ReadDC(r *bitio.Reader, luma bool) (int32, error) {
	codes := &dcChromaCodes
	if luma {
		codes = &dcLumaCodes
	}
	size := -1
	for l := uint(2); l <= 8 && size < 0; l++ {
		v, err := r.PeekBits(l)
		if err != nil {
			return 0, err
		}
		for s, c := range codes {
			if c.len == l && c.bits == v {
				size = s
				r.SkipBits(int64(l))
				break
			}
		}
	}
	if size < 0 {
		return 0, ErrInvalidCode
	}
	if size == 0 {
		return 0, nil
	}
	v, err := r.ReadBits(uint(size))
	if err != nil {
		return 0, err
	}
	diff := int32(v)
	if diff < 1<<(size-1) {
		diff -= (1 << size) - 1
	}
	return diff, nil
}

// WriteUE writes v >= 0 as an unsigned Exp-Golomb code. Used for
// macroblock address increments in the simplified syntax (MPEG-1 proper
// uses its own table; Exp-Golomb has the same prefix-free property and
// comparable lengths for small values).
func WriteUE(w *bitio.Writer, v uint32) {
	if v == 0 {
		w.WriteBit(1)
		return
	}
	x := v + 1
	n := uint(0)
	for t := x; t > 1; t >>= 1 {
		n++
	}
	w.WriteBits(0, n)
	w.WriteBits(x, n+1)
}

// ReadUE reads an unsigned Exp-Golomb code.
func ReadUE(r *bitio.Reader) (uint32, error) {
	var zeros uint
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 31 {
			return 0, ErrInvalidCode
		}
	}
	if zeros == 0 {
		return 0, nil
	}
	rest, err := r.ReadBits(zeros)
	if err != nil {
		return 0, err
	}
	return (1<<zeros | rest) - 1, nil
}

// WriteSE writes a signed value as a signed Exp-Golomb code. Used for
// motion-vector components.
func WriteSE(w *bitio.Writer, v int32) {
	var u uint32
	switch {
	case v > 0:
		u = uint32(2*v - 1)
	case v < 0:
		u = uint32(-2 * v)
	}
	WriteUE(w, u)
}

// ReadSE reads a signed Exp-Golomb code.
func ReadSE(r *bitio.Reader) (int32, error) {
	u, err := ReadUE(r)
	if err != nil {
		return 0, err
	}
	if u == 0 {
		return 0, nil
	}
	if u&1 == 1 {
		return int32(u+1) / 2, nil
	}
	return -int32(u) / 2, nil
}

// WriteCoeffs writes the AC portion (scan positions 1..63) of a
// zigzag-scanned quantized coefficient block followed by EOB. The DC
// coefficient (scan position 0) is the caller's responsibility because
// intra blocks code it differentially via WriteDC.
func WriteCoeffs(w *bitio.Writer, scanned *[64]int32) error {
	return WriteCoeffsFrom(w, scanned, 1)
}

// WriteCoeffsFrom writes scan positions first..63 as run/level symbols
// followed by EOB. Non-intra blocks use first == 0 because their DC is
// coded like any other coefficient.
func WriteCoeffsFrom(w *bitio.Writer, scanned *[64]int32, first int) error {
	run := 0
	for i := first; i < 64; i++ {
		v := scanned[i]
		if v == 0 {
			run++
			continue
		}
		if err := WriteAC(w, run, v); err != nil {
			return err
		}
		run = 0
	}
	WriteEOB(w)
	return nil
}

// ReadCoeffs reads AC coefficients into scan positions 1..63 of scanned
// until EOB. Scan position 0 is left untouched.
func ReadCoeffs(r *bitio.Reader, scanned *[64]int32) error {
	return ReadCoeffsFrom(r, scanned, 1)
}

// ReadCoeffsFrom reads coefficients into scan positions first..63 until
// EOB. Positions before first are left untouched.
func ReadCoeffsFrom(r *bitio.Reader, scanned *[64]int32, first int) error {
	for i := first; i < 64; i++ {
		scanned[i] = 0
	}
	pos := first
	for {
		run, level, eob, err := ReadAC(r)
		if err != nil {
			return err
		}
		if eob {
			return nil
		}
		pos += run
		if pos > 63 {
			return fmt.Errorf("vlc: coefficient run overflows block (pos=%d)", pos)
		}
		scanned[pos] = level
		pos++
	}
}
