package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"mpegsmooth/internal/core"
	"mpegsmooth/internal/metrics"
	"mpegsmooth/internal/transport"
)

// item is one scheduled picture handed from ingest to egress.
type item struct {
	dec     core.Decision
	payload []byte
}

// errRecoveredUnresumed fails a journal-recovered stream whose sender
// never redialed within the resume window.
var errRecoveredUnresumed = errors.New("server: recovered stream never resumed")

// resumedConn is a reconnecting sender's connection, handed from the
// accept handler to the parked stream's ingest loop.
type resumedConn struct {
	conn net.Conn
	fr   *transport.FrameReader
	fw   *transport.FrameWriter
}

// stream is one admitted session: an ingest loop reading the connection
// and driving the smoothing Session, a bounded queue, and an egress loop
// pacing decided pictures onto the shared link. The Session itself is
// touched only by ingest (it is single-goroutine by contract); mu exists
// so the ops endpoint can snapshot live counters and so a resume handler
// can hand over a fresh connection.
//
// The connection (and its FrameReader) is mutable: a retryable fault
// parks the stream, and a StreamResume handshake replaces them. The
// accepting/resumeGone flags (under mu) serialize that handover against
// the resume-window expiry.
type stream struct {
	id       uint64
	remote   string
	hello    transport.StreamHello
	queue    chan item
	token    uint64
	resumeCh chan resumedConn // cap 1; guarded by accepting/resumeGone

	// base is the absolute index of the first picture this generation's
	// Session will see: 0 for a freshly admitted stream, the recovered
	// watermark for a journal-recovered one. The Session numbers its
	// decisions from 0, so base bridges session-local picture numbers to
	// absolute stream indices.
	base int

	// pool recycles picture payload buffers across this stream's frames:
	// the FrameReader (fr.Pool) draws each payload from it, and the
	// buffer goes back once its bytes are finished with — after egress
	// paces the picture onto the link, or immediately when a replayed
	// duplicate is dropped. Per-stream (not global) so buffer sizes
	// settle to the stream's own picture distribution and a resumed
	// connection inherits warm buffers via adopt.
	pool transport.BufferPool

	mu           sync.Mutex
	conn         net.Conn
	fr           *transport.FrameReader
	fw           *transport.FrameWriter
	accepting    bool // parked and willing to adopt a resumed connection
	resumeGone   bool // resume window expired; never deliver again
	parked       bool
	windowLapsed bool // the resume window ran out with no reconnect
	resumes      int
	faults       FaultCounts
	expected     int                  // next (absolute) picture index ingest will accept
	prefix       transport.PrefixHash // running hash over accepted payloads, in order
	wmState      []byte               // scratch for prefixState (reused per picture)

	sess           *core.Session
	stats          *metrics.DecisionStats
	pictures       int
	decisions      int
	maxDelay       float64
	sessionPeak    float64
	peakViolations int
	currentRate    float64
	egressedBits   int64
}

// newStream builds the stream skeleton; the caller creates the Session
// with st.observe installed and assigns it to st.sess before the stream
// is published. prefix is the negotiated integrity hash, fresh for a
// new stream.
func newStream(conn net.Conn, fr *transport.FrameReader, fw *transport.FrameWriter, hello transport.StreamHello, queueLen int, prefix transport.PrefixHash) *stream {
	return &stream{
		remote:   conn.RemoteAddr().String(),
		conn:     conn,
		fr:       fr,
		fw:       fw,
		hello:    hello,
		queue:    make(chan item, queueLen),
		resumeCh: make(chan resumedConn, 1),
		prefix:   prefix,
		stats:    metrics.NewDecisionStats(),
	}
}

// newParkedStream builds a journal-recovered stream: no connection yet,
// the accept watermark and prefix hash restored to their journaled
// values. Its ingest loop starts by waiting out the resume window for
// the sender to redial; pictures below base were accepted by the
// previous server generation (their payloads are gone with it) and the
// fresh Session smooths only the remainder.
func newParkedStream(hello transport.StreamHello, queueLen int, prefix transport.PrefixHash, watermark int) *stream {
	return &stream{
		remote:   "(recovered)",
		hello:    hello,
		queue:    make(chan item, queueLen),
		resumeCh: make(chan resumedConn, 1),
		prefix:   prefix,
		stats:    metrics.NewDecisionStats(),
		base:     watermark,
		expected: watermark,
		parked:   true,
	}
}

// observe feeds the per-stream DecisionStats; installed as the Session
// observer by the caller that owns the Session. It runs inside Push or
// Close, which ingest always calls under st.mu.
func (st *stream) observe(o core.Observation) {
	st.stats.Add(o.LowerSlack, o.UpperSlack, o.Depth, o.EstimatorError)
}

// resumePoint returns the stream's accept watermark and the running
// FNV-1a over the accepted prefix — the (NextIndex, PrefixFNV) pair a
// resume or reattach verdict carries so the sender can verify its own
// bytes match ours before replaying.
func (st *stream) resumePoint() (next int, prefix uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.expected, st.prefix.Sum64()
}

// prefixState returns the accept watermark and the prefix hash's
// resumable state — what the journal records so a restarted server can
// continue the hash mid-stream. The state is written into a per-stream
// scratch buffer, valid until the next prefixState call: this runs once
// per accepted picture, and the journal copies it synchronously.
func (st *stream) prefixState() (next int, state []byte) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.wmState = st.prefix.AppendState(st.wmState[:0])
	return st.expected, st.wmState
}

// resumeWindowLapsed reports whether the stream failed because its
// resume window ran out — the journal's ExpireResumeWindow reason.
func (st *stream) resumeWindowLapsed() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.windowLapsed
}

// closeConn closes whichever connection the stream currently owns.
func (st *stream) closeConn() {
	st.mu.Lock()
	conn := st.conn
	st.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// push hands one accepted picture to the Session and records the
// emitted decisions' delay and peak — and the payload's contribution to
// the stream's running integrity hash — under the stream lock.
func (st *stream) push(payload []byte) ([]core.Decision, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	decs, err := st.sess.Push(int64(len(payload)) * 8)
	if err != nil {
		return nil, err
	}
	st.expected++
	st.prefix.Absorb(payload)
	st.pictures++
	st.note(decs)
	return decs, nil
}

// closeSession flushes the Session's remaining decisions.
func (st *stream) closeSession() []core.Decision {
	st.mu.Lock()
	defer st.mu.Unlock()
	decs := st.sess.Close()
	st.note(decs)
	return decs
}

// note must run under st.mu.
func (st *stream) note(decs []core.Decision) {
	st.decisions += len(decs)
	for _, d := range decs {
		if d.Delay > st.maxDelay {
			st.maxDelay = d.Delay
		}
	}
	st.sessionPeak = st.sess.PeakRate()
}

// recordFault classifies and counts one ingest fault.
func (st *stream) recordFault(class transport.FaultClass) {
	st.mu.Lock()
	st.faults.record(class)
	st.mu.Unlock()
}

// runIngest reads the connection until the end marker, pushing picture
// sizes through the smoothing session and enqueueing decided pictures
// for egress. The bounded queue is the backpressure point: when egress
// falls behind, enqueue blocks, ingest stops reading, and TCP flow
// control pushes back on the sender. The queue is closed on every exit
// path; runIngest is its only sender.
//
// A classified retryable fault (corruption, timeout, reset) does not
// fail the stream when resumption is enabled: the stream parks and
// waits out the resume window for the sender to reconnect. Replayed
// pictures below the accept watermark are deduplicated; a gap above it
// is a protocol violation and fails the stream.
func (st *stream) runIngest(ctx context.Context, s *Server) error {
	defer close(st.queue)
	pending := make(map[int][]byte)
	enqueue := func(decs []core.Decision) error {
		for _, d := range decs {
			// Decision picture numbers are session-local; st.base rebases
			// them to absolute indices for journal-recovered streams.
			payload, ok := pending[d.Picture+st.base]
			if !ok {
				return fmt.Errorf("server: decision for picture %d without payload", d.Picture+st.base)
			}
			delete(pending, d.Picture+st.base)
			select {
			case st.queue <- item{dec: d, payload: payload}:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		st.mu.Lock()
		fr, fw := st.fr, st.fw
		st.mu.Unlock()
		if fr == nil {
			// Journal-recovered stream: no connection yet. Park first —
			// the sender redials with its resume token, or the window
			// lapses and the stream expires like any abandoned park.
			if rerr := st.awaitResume(ctx, s, errRecoveredUnresumed); rerr != nil {
				return rerr
			}
			continue
		}
		msg, err := fr.ReadMessageTimeout(s.cfg.ReadTimeout)
		if errors.Is(err, transport.ErrClosed) {
			// Make the completion durable before echoing the end marker as
			// the completion ack: an acked stream must be answerable as
			// AlreadyComplete even across a crash. (A journal failure here
			// costs durability, not correctness — see journalComplete.)
			seq, jerr := s.journalComplete(st)
			if jerr != nil {
				s.cfg.Logf("smoothd: stream %d completion journal write failed: %v", st.id, jerr)
			} else if seq != 0 && s.cfg.Quorum != nil {
				// Hold the completion ack until a quorum holds the
				// tombstone. Unlike admission there is nothing to roll
				// back — every picture was accepted — so a terminal gate
				// error only costs ack durability: log and ack anyway
				// (the sender's resume would complete idempotently).
				if qerr := s.cfg.Quorum.WaitCommitted(ctx, seq); qerr != nil {
					s.cfg.Logf("smoothd: stream %d completion quorum not reached: %v", st.id, qerr)
				}
			}
			// Echo the end marker as the completion ack: the sender only
			// reports success once every picture was accepted here. If the
			// ack cannot be delivered, park — the resume replays nothing
			// and the ack is retried on the fresh connection.
			if aerr := fw.WriteEnd(); aerr != nil {
				class := transport.ClassifyFault(aerr)
				if ctx.Err() == nil && class != transport.FaultNone {
					st.recordFault(class)
				}
				if st.token != 0 && s.cfg.ResumeWindow > 0 && class.Retryable() && ctx.Err() == nil {
					if rerr := st.awaitResume(ctx, s, aerr); rerr != nil {
						return rerr
					}
					continue
				}
				// Unconfirmed, but complete: every picture was accepted.
			}
			return enqueue(st.closeSession())
		}
		if err != nil {
			class := transport.ClassifyFault(err)
			if ctx.Err() == nil && class != transport.FaultNone {
				st.recordFault(class)
			}
			if st.token == 0 || s.cfg.ResumeWindow <= 0 || !class.Retryable() || ctx.Err() != nil {
				return err
			}
			if rerr := st.awaitResume(ctx, s, err); rerr != nil {
				return rerr
			}
			continue
		}
		switch m := msg.(type) {
		case *transport.RateNotification:
			// The sender's own declared rates are informational here (the
			// server re-decides), but a declaration above the admitted
			// peak breaks the traffic contract — count it, as a Policer
			// parameterized at the declared peak would.
			if m.Rate > st.hello.PeakRate*(1+1e-9) {
				st.mu.Lock()
				st.peakViolations++
				st.mu.Unlock()
			}
		case *transport.PictureFrame:
			st.mu.Lock()
			exp := st.expected
			st.mu.Unlock()
			if m.Index < exp {
				// Replay of a picture we already accepted (the sender's
				// resume point trailed our watermark): drop, don't re-smooth.
				st.mu.Lock()
				st.faults.DuplicatesDropped++
				st.mu.Unlock()
				st.pool.Put(m.Payload)
				continue
			}
			if m.Index > exp {
				return fmt.Errorf("server: picture %d out of order (expected %d)", m.Index, exp)
			}
			pending[exp] = m.Payload
			decs, err := st.push(m.Payload)
			if err != nil {
				return err
			}
			s.journalWatermark(st)
			if err := enqueue(decs); err != nil {
				return err
			}
		case *transport.StreamHello:
			return fmt.Errorf("server: duplicate hello mid-stream")
		case *transport.StreamResume:
			return fmt.Errorf("server: resume request mid-stream")
		default:
			return fmt.Errorf("server: unexpected message %T", msg)
		}
	}
}

// awaitResume parks the stream for the resume window: the dead
// connection is closed, the admission reservation stays held, and the
// ingest loop blocks until a resume handler delivers a fresh connection
// or the window expires. cause is the fault that parked us, reported if
// no sender comes back.
func (st *stream) awaitResume(ctx context.Context, s *Server, cause error) error {
	st.mu.Lock()
	if st.conn != nil {
		st.conn.Close()
	}
	st.conn = nil
	st.accepting = true
	st.resumeGone = false
	st.parked = true
	st.mu.Unlock()
	s.parkGauge(+1)
	defer s.parkGauge(-1)

	timer := time.NewTimer(s.cfg.ResumeWindow)
	defer timer.Stop()
	select {
	case rc := <-st.resumeCh:
		st.adopt(rc)
		return nil
	case <-ctx.Done():
		st.mu.Lock()
		st.accepting = false
		st.resumeGone = true
		st.parked = false
		st.mu.Unlock()
		return ctx.Err()
	case <-timer.C:
	}
	// Window expired. Flip the flags under the lock, then drain once:
	// a resume handler that claimed the slot before our flip has either
	// already delivered (we adopt it and carry on) or will observe
	// resumeGone and close its connection.
	st.mu.Lock()
	st.accepting = false
	select {
	case rc := <-st.resumeCh:
		st.mu.Unlock()
		st.adopt(rc)
		return nil
	default:
		st.resumeGone = true
		st.parked = false
		st.windowLapsed = true
		st.faults.ResumeExpired++
		st.mu.Unlock()
	}
	return fmt.Errorf("server: no resume within %v: %w", s.cfg.ResumeWindow, cause)
}

// adopt installs a resumed connection as the stream's current one. The
// fresh connection's reader joins the stream's payload pool, so a
// resume inherits the warm buffers its predecessor filled.
func (st *stream) adopt(rc resumedConn) {
	st.mu.Lock()
	rc.fr.Pool = &st.pool
	st.conn = rc.conn
	st.fr = rc.fr
	st.fw = rc.fw
	st.remote = rc.conn.RemoteAddr().String()
	st.accepting = false
	st.parked = false
	st.resumes++
	st.faults.Resumed++
	st.mu.Unlock()
}

// runEgress paces decided pictures onto the shared link at their decided
// rates, on the stream's own schedule clock (origin = first dequeue).
// Decision Start/Depart times are schedule seconds; TimeScale compresses
// them to wall time exactly as transport.Sender does.
func (st *stream) runEgress(ctx context.Context, lk *link, clock transport.Clock, scale float64) error {
	defer st.setCurrentRate(0)
	var origin time.Time
	started := false
	deadline := func(schedTime float64) time.Time {
		return origin.Add(time.Duration(schedTime / scale * float64(time.Second)))
	}
	for it := range st.queue {
		if !started {
			// Anchor the pacing clock so the first decision's start time
			// is "now": the stream's schedule origin.
			origin = clock.Now().Add(-time.Duration(it.dec.Start / scale * float64(time.Second)))
			started = true
		}
		d := it.dec
		if err := clock.Sleep(ctx, deadline(d.Start).Sub(clock.Now())); err != nil {
			return err
		}
		st.setCurrentRate(d.Rate)
		sent := 0
		for sent < len(it.payload) {
			end := sent + egressChunk
			if end > len(it.payload) {
				end = len(it.payload)
			}
			if err := lk.write(it.payload[sent:end]); err != nil {
				return err
			}
			sent = end
			if err := clock.Sleep(ctx, deadline(d.Start+float64(sent)*8/d.Rate).Sub(clock.Now())); err != nil {
				return err
			}
		}
		st.mu.Lock()
		st.egressedBits += int64(len(it.payload)) * 8
		st.mu.Unlock()
		// The picture has fully crossed the link; recycle its buffer for
		// the reader's next frame.
		st.pool.Put(it.payload)
	}
	return nil
}

func (st *stream) setCurrentRate(r float64) {
	st.mu.Lock()
	st.currentRate = r
	st.mu.Unlock()
}

// StreamSnapshot is the ops view of one active stream.
type StreamSnapshot struct {
	ID     uint64 `json:"id"`
	Remote string `json:"remote"`
	// DeclaredPeak is the hello's reserved traffic descriptor;
	// SessionPeak is the largest rate the server's own session has
	// decided so far (≤ DeclaredPeak for a truthful sender using the
	// same smoothing parameters).
	DeclaredPeak float64 `json:"declared_peak_bps"`
	SessionPeak  float64 `json:"session_peak_bps"`
	CurrentRate  float64 `json:"current_rate_bps"`
	Pictures     int     `json:"pictures"`
	Decisions    int     `json:"decisions"`
	EgressedBits int64   `json:"egressed_bits"`
	// PeakViolations counts sender rate declarations above the admitted
	// peak — traffic-contract breaches a Policer would tag.
	PeakViolations int `json:"peak_violations"`
	// Resumes counts accepted reconnects; Parked reports a stream
	// currently disconnected and waiting out its resume window. Faults
	// are this stream's classified transport faults.
	Resumes int         `json:"resumes"`
	Parked  bool        `json:"parked"`
	Faults  FaultCounts `json:"faults"`
	// PayloadFNV is the running FNV-1a hash over every accepted payload
	// in index order — a byte-exact integrity fingerprint chaos tests
	// compare against the sender's.
	PayloadFNV uint64 `json:"payload_fnv"`
	// DecisionStats summary: see metrics.DecisionStats.
	OutOfBand             int     `json:"out_of_band"`
	MeanDepth             float64 `json:"mean_depth"`
	MinSlack              float64 `json:"min_slack_bps"`
	MeanAbsEstimatorError float64 `json:"mean_abs_estimator_error"`
	// Delay-bound headroom: the stream's bound D, the largest per-picture
	// delay any decision has incurred, and the margin between them.
	DelayBound    float64 `json:"delay_bound_s"`
	MaxDelay      float64 `json:"max_delay_s"`
	DelayHeadroom float64 `json:"delay_headroom_s"`
}

func (st *stream) snapshot() StreamSnapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	minSlack := st.stats.MinSlack()
	if math.IsInf(minSlack, 0) {
		minSlack = 0 // no decisions yet; keep the snapshot JSON-encodable
	}
	return StreamSnapshot{
		ID:           st.id,
		Remote:       st.remote,
		DeclaredPeak: st.hello.PeakRate,
		SessionPeak:  st.sessionPeak,
		CurrentRate:  st.currentRate,
		Pictures:     st.pictures,
		Decisions:    st.decisions,
		EgressedBits: st.egressedBits,

		PeakViolations: st.peakViolations,
		Resumes:        st.resumes,
		Parked:         st.parked,
		Faults:         st.faults,
		PayloadFNV:     st.prefix.Sum64(),

		OutOfBand:             st.stats.OutOfBand,
		MeanDepth:             st.stats.MeanDepth(),
		MinSlack:              minSlack,
		MeanAbsEstimatorError: st.stats.MeanAbsEstimatorError(),

		DelayBound:    st.hello.D,
		MaxDelay:      st.maxDelay,
		DelayHeadroom: headroom(st.hello.D, st.maxDelay),
	}
}

// headroom is D − maxDelay with sub-nanosecond float noise clamped to
// zero: a schedule that rides the delay bound exactly (maxDelay == D up
// to rounding) has zero headroom, not a violation-looking −1e-17.
func headroom(d, maxDelay float64) float64 {
	h := d - maxDelay
	if h < 0 && h > -delayTolerance {
		return 0
	}
	return h
}
