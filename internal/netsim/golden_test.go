package netsim

import (
	"testing"

	"mpegsmooth/internal/core"
	"mpegsmooth/internal/metrics"
	"mpegsmooth/internal/trace"
)

// goldenConfigs builds the extB/extD-style multiplexing workloads: a few
// independent single-scene synthetic traces, raw and smoothed, staggered
// across a shared link, swept over buffer sizes and link headroom.
func goldenConfigs(t testing.TB) []RunConfig {
	t.Helper()
	const n = 6
	var raws, smooths []*metrics.StepFunc
	var aggregateMean float64
	for i := 0; i < n; i++ {
		tr, err := trace.Generate(trace.SynthConfig{
			Name:  "golden",
			GOP:   mpegGOP(),
			IBase: 200_000, PBase: 90_000, BBase: 30_000,
			Scenes: []trace.ScenePhase{{Pictures: 99, Complexity: 1, Motion: 0.8}},
			Seed:   int64(100 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		aggregateMean += tr.MeanRate()
		raws = append(raws, RawRateFunc(t, tr))
		sch, err := core.Smooth(tr, core.Config{K: 1, H: tr.GOP.N, D: 0.15})
		if err != nil {
			t.Fatal(err)
		}
		sm, err := sch.RateFunc()
		if err != nil {
			t.Fatal(err)
		}
		smooths = append(smooths, sm)
	}
	offsets := make([]float64, n)
	for i := range offsets {
		offsets[i] = float64(i) * 0.013
	}
	var cfgs []RunConfig
	for _, rates := range [][]*metrics.StepFunc{raws, smooths} {
		for _, buf := range []int{0, 20, 200} {
			for _, headroom := range []float64{1.1, 1.4} {
				cfgs = append(cfgs, RunConfig{
					Rates:       rates,
					Offsets:     offsets,
					LinkRate:    aggregateMean * headroom,
					BufferCells: buf,
				})
			}
		}
	}
	// An explicit-horizon config exercising the early-stop path.
	cfgs = append(cfgs, RunConfig{
		Rates:       raws,
		Offsets:     offsets,
		LinkRate:    aggregateMean,
		BufferCells: 10,
		Horizon:     1.7,
	})
	return cfgs
}

// TestGoldenEquivalence holds the new engine to the seed simulator:
// on the extB/extD-style configurations the timing-wheel cell layer must
// reproduce the old heap scheduler's MuxStats exactly — same arrivals,
// same services, same losses, same queue high-water mark, and the same
// per-source emission counts.
func TestGoldenEquivalence(t *testing.T) {
	for ci, cfg := range goldenConfigs(t) {
		got, err := RunDetailed(cfg)
		if err != nil {
			t.Fatalf("config %d: %v", ci, err)
		}
		want, err := legacyRun(cfg)
		if err != nil {
			t.Fatalf("config %d: legacy: %v", ci, err)
		}
		if got.MuxStats != want.MuxStats {
			t.Errorf("config %d: stats diverge:\n new %+v\n old %+v", ci, got.MuxStats, want.MuxStats)
		}
		for i := range got.Sources {
			if got.Sources[i].Emitted != want.Emitted[i] {
				t.Errorf("config %d source %d: emitted %d, legacy %d",
					ci, i, got.Sources[i].Emitted, want.Emitted[i])
			}
		}
	}
}

// TestRunDetailedAttribution checks per-source accounting sums to the
// aggregate counters.
func TestRunDetailedAttribution(t *testing.T) {
	cfgs := goldenConfigs(t)
	res, err := RunDetailed(cfgs[0]) // raw traces, zero buffer: losses certain
	if err != nil {
		t.Fatal(err)
	}
	var emitted, lost int64
	for _, s := range res.Sources {
		emitted += s.Emitted
		lost += s.Lost
	}
	if emitted != res.Arrived {
		t.Fatalf("per-source emitted %d != arrived %d", emitted, res.Arrived)
	}
	if lost != res.Lost {
		t.Fatalf("per-source lost %d != lost %d", lost, res.Lost)
	}
	if res.Lost == 0 {
		t.Fatal("config not discriminating: nothing lost")
	}
}
