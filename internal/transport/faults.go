package transport

import (
	"errors"
	"io"
	"net"
	"os"
	"syscall"
)

// ErrResumeBusy reports a resume handshake the server answered with a
// busy verdict: it has not yet detected the old connection's death. The
// stream is still parked-able — the reconnect simply raced the fault —
// so the error classifies as a retryable reset.
var ErrResumeBusy = errors.New("transport: server not yet accepting resume")

// ErrStaleEpoch reports a verdict or redirect stamped with a lower
// fencing epoch than one the sender has already seen: the answering
// server is a deposed primary that has not yet noticed its demotion.
// Acting on its authority could split the stream's history, but the
// condition is transient — the deposed node demotes on its next
// replication exchange — so the error classifies as a retryable reset.
var ErrStaleEpoch = errors.New("transport: verdict from deposed primary (stale epoch)")

// ErrDiverged reports that the server's admitted-prefix hash does not
// match the sender's own bytes for the same prefix: the two ends hold
// different data for pictures both believe delivered. Replaying would
// ship divergent bytes under a token that vouches for them, so the
// fault is terminal — no reconnect can reconcile the histories.
var ErrDiverged = errors.New("transport: stream prefix diverged from server state")

// ErrReorderOverflow reports a datagram whose sequence number lies
// beyond the receiver's bounded reassembly window. A conforming peer
// never sends past the ARQ send window (which fits inside the
// reassembly window), so overflow means the packet channel displaced a
// packet further than the window tolerates or a stale incarnation is
// talking over the flow. The connection is torn down; the byte stream
// above it reconnects and resumes.
var ErrReorderOverflow = errors.New("transport: datagram beyond reassembly window (reorder overflow)")

// ErrRetransmitExhausted reports a datagram the ARQ sender retransmitted
// through its whole backoff schedule without an acknowledgement: the
// packet channel is losing everything (deep outage or a dead peer). It
// is the datagram analogue of a deadline expiry, and recoverable the
// same way — reconnect and resume.
var ErrRetransmitExhausted = errors.New("transport: datagram retransmissions exhausted without ack")

// ErrStaleDuplicate reports a datagram provably from a stale flow
// incarnation: an acknowledgement for sequence numbers this connection
// never sent, or traffic under a dead connection ID. Isolated stale
// duplicates are dropped silently by the ARQ layer; the error surfaces
// when the live flow itself is compromised by them, and a redial (new
// connection ID) shakes the stale incarnation off.
var ErrStaleDuplicate = errors.New("transport: datagram from stale flow incarnation")

// FaultClass buckets transport failures for accounting and recovery
// policy: every class except FaultOther is a transient link fault a
// resumable stream recovers from by reconnecting.
type FaultClass int

// Fault classes, from "no fault" through the recoverable link faults to
// the terminal catch-all.
const (
	// FaultNone: no error.
	FaultNone FaultClass = iota
	// FaultCorrupt: bytes on the wire failed verification — CRC
	// mismatch, sequence discontinuity, unknown kind, or nonsense field
	// values. The connection's framing cannot be trusted any further.
	FaultCorrupt
	// FaultTimeout: a read or write deadline expired (stalled peer or
	// partitioned link).
	FaultTimeout
	// FaultReset: the connection dropped — reset, broken pipe, closed,
	// or truncated mid-message.
	FaultReset
	// FaultReorderOverflow: a datagram flow displaced a packet beyond
	// the bounded reassembly window (ErrReorderOverflow). The flow is
	// torn down; a reconnect re-syncs both windows.
	FaultReorderOverflow
	// FaultRetransmitExhausted: a datagram went unacknowledged through
	// the whole retransmission backoff schedule (ErrRetransmitExhausted)
	// — the packet-level shape of a timeout.
	FaultRetransmitExhausted
	// FaultStaleDuplicate: traffic from a stale flow incarnation
	// compromised the live flow (ErrStaleDuplicate). A redial under a
	// fresh connection ID escapes it.
	FaultStaleDuplicate
	// FaultOther: anything else (terminal; not retried).
	FaultOther
)

// String names the fault class (the ops-counter key).
func (c FaultClass) String() string {
	switch c {
	case FaultNone:
		return "none"
	case FaultCorrupt:
		return "corrupt"
	case FaultTimeout:
		return "timeout"
	case FaultReset:
		return "reset"
	case FaultReorderOverflow:
		return "reorder-overflow"
	case FaultRetransmitExhausted:
		return "retransmit-exhausted"
	case FaultStaleDuplicate:
		return "stale-duplicate"
	}
	return "other"
}

// Retryable reports whether a fault of this class is worth a reconnect
// attempt on a resumable stream. All three datagram classes are
// retryable: each names a packet-channel condition a fresh flow (new
// connection, re-synced windows, new connection ID) escapes, while the
// resume protocol above guarantees the reconnect replays nothing the
// server already accepted.
func (c FaultClass) Retryable() bool {
	switch c {
	case FaultCorrupt, FaultTimeout, FaultReset,
		FaultReorderOverflow, FaultRetransmitExhausted, FaultStaleDuplicate:
		return true
	}
	return false
}

// ClassifyFault buckets a transport error. ErrClosed (orderly end) and
// nil map to FaultNone; context cancellation maps to FaultOther so
// shutdown is never mistaken for a link fault, and ErrDiverged maps to
// FaultOther because no reconnect reconciles divergent stream
// histories. Any error satisfying net.Error with Timeout() true — which
// includes faultnet's injected partitions — classifies as a timeout, so
// a parked stream rides out a partition window like any other stall.
func ClassifyFault(err error) FaultClass {
	switch {
	case err == nil, errors.Is(err, ErrClosed):
		return FaultNone
	case errors.Is(err, ErrDiverged):
		return FaultOther
	// The datagram classes outrank the generic buckets: an exhausted
	// retransmission schedule often wraps a deadline error, and a
	// reorder-overflow teardown surfaces through closed-connection
	// errors, but the specific cause is the one worth counting.
	case errors.Is(err, ErrReorderOverflow):
		return FaultReorderOverflow
	case errors.Is(err, ErrRetransmitExhausted):
		return FaultRetransmitExhausted
	case errors.Is(err, ErrStaleDuplicate):
		return FaultStaleDuplicate
	case errors.Is(err, ErrCorrupt), errors.Is(err, ErrBadSeq):
		return FaultCorrupt
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return FaultTimeout
	}
	switch {
	case errors.Is(err, os.ErrDeadlineExceeded):
		return FaultTimeout
	case errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, io.ErrClosedPipe),
		errors.Is(err, net.ErrClosed),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.EPIPE),
		// A refused or aborted dial is how a crashed-and-restarting
		// server presents: nothing is listening for a moment. The
		// journaled session survives the restart, so retrying the
		// connection is exactly right.
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.ECONNABORTED),
		errors.Is(err, ErrResumeBusy),
		errors.Is(err, ErrStaleEpoch):
		return FaultReset
	}
	return FaultOther
}
