package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mpegsmooth/internal/journal"
	"mpegsmooth/internal/server"
)

// Role is a node's current position in its shard.
type Role string

const (
	RolePrimary  Role = "primary"
	RoleFollower Role = "follower"
)

// Peer names one shard of the fleet: the address its primary serves
// streams on and the address it replicates its journal from. Every node
// in the fleet is configured with the same peer list; a shard's
// followers share the shard's addresses and take them over on
// promotion.
type Peer struct {
	Name       string
	StreamAddr string
	ReplAddr   string
}

// Config describes one cluster node.
type Config struct {
	// Shard is this node's shard name; it must appear in Peers.
	Shard string
	// Rank orders a shard's nodes: rank 0 starts as the primary, ranks
	// 1.. are followers whose promotion attempts stagger by rank so the
	// lowest surviving rank wins the listen-port race.
	Rank int
	// Peers lists every shard in the fleet (including this node's own).
	Peers []Peer
	// Vnodes sets the placement ring's virtual nodes per shard
	// (DefaultVnodes when 0).
	Vnodes int
	// Journal configures this node's own journal — the primary's
	// authoritative log, or the follower's warm standby replica.
	Journal journal.Config
	// Server is the template for the stream server this node runs when
	// primary; Journal, Route, and OwnsToken are injected by the node.
	Server server.Config
	// HeartbeatInterval paces the primary's replication heartbeats
	// (default 250ms). FailoverTimeout is how long a follower tolerates
	// silence before concluding the primary is dead (default 2s);
	// PromoteStagger separates the ranks' promotion attempts (default
	// FailoverTimeout/2); DialTimeout bounds replication dials (default
	// 1s).
	HeartbeatInterval time.Duration
	FailoverTimeout   time.Duration
	PromoteStagger    time.Duration
	DialTimeout       time.Duration
	// FollowBuffer is the per-follower journal feed buffer
	// (journal.DefaultFollowBuffer when 0).
	FollowBuffer int
	// Replicas is the number of followers this shard is configured with
	// — the replication factor beyond the primary (default 1). It
	// bounds Quorum and is reported in /stats.
	Replicas int
	// Quorum is how many replicas (primary included) must have fsynced
	// a record before its admission or completion verdict is released:
	// 2 means primary + 1 follower. 0 or 1 disables quorum gating —
	// verdicts release on the primary's fsync alone, as before. Must
	// not exceed Replicas+1.
	Quorum int
	// AckTimeout is the per-record deadline for gathering follower acks
	// before the primary degrades to local-quorum commits (default
	// FailoverTimeout/2). AckWindow bounds unacked in-flight records
	// before the same degrade (default 1024).
	AckTimeout time.Duration
	AckWindow  int
	// Seed fixes the node's randomness — promotion-stagger jitter and
	// replication dial backoff — for deterministic tests; 0 draws from
	// the global source.
	Seed int64
	Logf func(format string, args ...any)
}

// Node is one smoothd process in a cluster: a shard primary serving
// streams and publishing its journal, or a warm-standby follower
// replaying that feed and ready to promote.
type Node struct {
	cfg    Config
	ring   *Ring
	self   Peer
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu            sync.Mutex
	role          Role
	srv           *server.Server
	jrnl          *journal.Journal
	streamLn      net.Listener
	replLn        net.Listener
	replConn      net.Conn
	quorum        *quorumTracker
	followerConns map[net.Conn]struct{}
	promotions    int64
	lastPromotion time.Time
	serveErr      error
	stopped       bool

	heard     atomic.Int64 // unix nanos of the last replication frame
	connected atomic.Bool
	// isolated simulates a network partition: while set, this node's
	// injected listens and dials fail, so it can neither serve nor
	// reach its peers — but the process stays alive, which is exactly
	// the deposed-primary scenario epoch fencing exists for.
	isolated atomic.Bool
	// epoch is the fencing term this node last served as primary under
	// (stamped into every replication cursor and server verdict).
	epoch atomic.Uint64

	followers     int64 // attached followers (primary)
	followerDrops int64
	dialRetries   int64 // failed replication dial attempts (follower)
	demotions     int64

	// rng drives promotion-stagger jitter and dial backoff. It is only
	// touched from the node's single follower goroutine.
	rng *rand.Rand

	repl replState
}

// errIsolated is what the partition simulation injects for every
// network operation of an isolated node.
var errIsolated = errors.New("cluster: node is partitioned (simulated)")

// replState tracks the follower's replication cursor against the
// primary's.
type replState struct {
	mu           sync.Mutex
	primary      journal.Offsets // primary's cursor as of the last frame
	base         uint64          // records covered by the last snapshot
	baseBytes    uint64
	baseSegment  uint64 // primary segment the last snapshot came from
	applied      uint64 // records replayed since the snapshot
	appliedBytes uint64
	admits       uint64 // admit records replayed since the snapshot
	heartbeats   int64
	resyncs      int64
}

func (r *replState) resync(cursor journal.Offsets) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.primary = cursor
	r.base, r.baseBytes, r.baseSegment = cursor.Records, cursor.Bytes, cursor.SegmentSeq
	r.applied, r.appliedBytes, r.admits = 0, 0, 0
	r.resyncs++
}

// recordApplied notes one replayed record against the cursor the
// primary sent with it.
func (r *replState) recordApplied(cursor journal.Offsets, kind byte, size int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.primary = cursor
	r.applied++
	r.appliedBytes += uint64(size)
	if kind == journal.KindAdmit {
		r.admits++
	}
}

func (r *replState) heartbeat(cursor journal.Offsets) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.primary = cursor
	r.heartbeats++
}

// cursorSeq is the cumulative primary publish sequence this follower
// has durably applied — the value its replication acks carry. It is
// exact, not approximate: the feed is in-order and gap-free (a dropped
// subscriber resyncs from a snapshot, which resets the base).
func (r *replState) cursorSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.base + r.applied
}

// ReplStatus is the replication side of a node's Status: the primary
// reports its publish cursor and attached followers, a follower reports
// how far behind the primary's last-heard cursor it is.
type ReplStatus struct {
	Connected        bool   `json:"connected"`
	Followers        int64  `json:"followers"`
	FollowerDrops    int64  `json:"follower_drops"`
	PublishedRecords uint64 `json:"published_records"`
	PublishedBytes   uint64 `json:"published_bytes"`
	AppliedRecords   uint64 `json:"applied_records"`
	AppliedAdmits    uint64 `json:"applied_admits"`
	LagRecords       uint64 `json:"lag_records"`
	LagBytes         uint64 `json:"lag_bytes"`
	LagSegments      uint64 `json:"lag_segments"`
	Heartbeats       int64  `json:"heartbeats"`
	Resyncs          int64  `json:"resyncs"`
	DialRetries      int64  `json:"dial_retries"`
	// Quorum state (primary): configured/connected replicas, the
	// per-follower acked-cursor lag against the publish cursor, and the
	// degrade counters. ReplicasConfigured is reported even when quorum
	// gating is off; the rest are meaningful with Quorum >= 2.
	Epoch              uint64            `json:"epoch"`
	ReplicasConfigured int               `json:"replicas_configured"`
	ReplicasConnected  int               `json:"replicas_connected"`
	QuorumConfigured   int               `json:"quorum_configured"`
	QuorumDegraded     bool              `json:"quorum_degraded"`
	QuorumCommits      int64             `json:"quorum_commits"`
	LocalCommits       int64             `json:"local_commits"`
	DegradedEvents     int64             `json:"quorum_degraded_events"`
	AckTimeouts        int64             `json:"ack_timeouts"`
	AckLagRecords      map[string]uint64 `json:"ack_lag_records,omitempty"`
	Demotions          int64             `json:"demotions"`
}

// Status is the cluster-level ops view of one node.
type Status struct {
	Shard         string     `json:"shard"`
	Role          Role       `json:"role"`
	Rank          int        `json:"rank"`
	Promotions    int64      `json:"promotions"`
	LastPromotion time.Time  `json:"last_promotion"`
	Ring          []string   `json:"ring"`
	Replication   ReplStatus `json:"replication"`
}

// Snapshot is the full /stats document a cluster node serves: the
// cluster status plus, on a primary, the embedded server snapshot.
type Snapshot struct {
	Cluster Status           `json:"cluster"`
	Server  *server.Snapshot `json:"server,omitempty"`
}

// activeNode backs the process-wide "smoothd_cluster" expvar,
// mirroring the server package's "smoothd" var.
var (
	activeNode     atomic.Pointer[Node]
	nodeExpvarOnce sync.Once
)

// New validates the configuration and builds the node. Start launches
// it.
func New(cfg Config) (*Node, error) {
	if cfg.Shard == "" {
		return nil, fmt.Errorf("cluster: config needs a shard name")
	}
	var self Peer
	names := make([]string, 0, len(cfg.Peers))
	for _, p := range cfg.Peers {
		names = append(names, p.Name)
		if p.Name == cfg.Shard {
			self = p
		}
	}
	if self.Name == "" {
		return nil, fmt.Errorf("cluster: shard %q is not in the peer list", cfg.Shard)
	}
	if self.StreamAddr == "" || self.ReplAddr == "" {
		return nil, fmt.Errorf("cluster: shard %q needs stream and replication addresses", cfg.Shard)
	}
	if cfg.Rank < 0 {
		return nil, fmt.Errorf("cluster: negative rank %d", cfg.Rank)
	}
	ring, err := NewRing(names, cfg.Vnodes)
	if err != nil {
		return nil, err
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 250 * time.Millisecond
	}
	if cfg.FailoverTimeout <= 0 {
		cfg.FailoverTimeout = 2 * time.Second
	}
	if cfg.PromoteStagger <= 0 {
		cfg.PromoteStagger = cfg.FailoverTimeout / 2
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = time.Second
	}
	if cfg.FollowBuffer <= 0 {
		cfg.FollowBuffer = journal.DefaultFollowBuffer
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Quorum < 0 {
		return nil, fmt.Errorf("cluster: negative quorum %d", cfg.Quorum)
	}
	if cfg.Quorum > cfg.Replicas+1 {
		return nil, fmt.Errorf("cluster: quorum %d needs more than the %d configured replicas plus the primary",
			cfg.Quorum, cfg.Replicas)
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = cfg.FailoverTimeout / 2
	}
	if cfg.AckWindow <= 0 {
		cfg.AckWindow = 1024
	}
	// A primary that dies must leave its parked reservations resumable
	// on the promoted follower; a zero resume window would expire them
	// at recovery. Default it rather than fail silently.
	if cfg.Server.ResumeWindow <= 0 {
		cfg.Server.ResumeWindow = 10 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = rand.Int63()
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{
		cfg:           cfg,
		ring:          ring,
		self:          self,
		ctx:           ctx,
		cancel:        cancel,
		role:          RoleFollower,
		followerConns: map[net.Conn]struct{}{},
		rng:           rand.New(rand.NewSource(seed)),
	}
	activeNode.Store(n)
	nodeExpvarOnce.Do(func() {
		expvar.Publish("smoothd_cluster", expvar.Func(func() any {
			if node := activeNode.Load(); node != nil {
				return node.Status()
			}
			return nil
		}))
	})
	return n, nil
}

// Start launches the node in its configured role: rank 0 opens the
// journal and serves immediately as primary; higher ranks open a
// standby journal and follow the shard's replication feed.
func (n *Node) Start() error {
	if n.cfg.Rank == 0 {
		return n.startPrimary()
	}
	jrnl, err := journal.Open(n.cfg.Journal)
	if err != nil {
		return fmt.Errorf("cluster: standby journal: %w", err)
	}
	n.mu.Lock()
	n.jrnl = jrnl
	n.mu.Unlock()
	n.logf("cluster: %s following %s", n.id(), n.self.ReplAddr)
	n.wg.Add(1)
	go n.followLoop()
	return nil
}

func (n *Node) startPrimary() error {
	jrnl, err := journal.Open(n.cfg.Journal)
	if err != nil {
		return fmt.Errorf("cluster: journal: %w", err)
	}
	epoch, gate, err := n.beginEpoch(jrnl)
	if err != nil {
		jrnl.Close()
		return err
	}
	srv, err := server.New(n.serverConfig(jrnl, epoch, gate))
	if err != nil {
		jrnl.Close()
		return err
	}
	ln, err := n.listenTCP(n.self.StreamAddr)
	if err != nil {
		srv.Kill()
		return fmt.Errorf("cluster: stream listener: %w", err)
	}
	replLn, err := n.listenTCP(n.self.ReplAddr)
	if err != nil {
		srv.Kill()
		ln.Close()
		return fmt.Errorf("cluster: replication listener: %w", err)
	}
	n.adoptPrimary(srv, jrnl, ln, replLn, epoch, gate)
	n.logf("cluster: %s serving as primary on %s (replication on %s, epoch %d)",
		n.id(), ln.Addr(), replLn.Addr(), epoch)
	return nil
}

// beginEpoch opens a new primary term: the successor epoch is fsynced
// into the journal before anything is served under it, so this node can
// never forget it was (or failed to stay) the term's primary. The
// returned gate is the quorum tracker for the term, nil when quorum
// gating is disabled.
func (n *Node) beginEpoch(jrnl *journal.Journal) (uint64, *quorumTracker, error) {
	epoch := jrnl.Epoch() + 1
	if _, err := jrnl.AppendEpoch(epoch); err != nil {
		return 0, nil, fmt.Errorf("cluster: fencing epoch %d not journalable: %w", epoch, err)
	}
	var gate *quorumTracker
	if n.cfg.Quorum >= 2 {
		gate = newQuorumTracker(n.cfg.Quorum-1, uint64(n.cfg.AckWindow), n.cfg.AckTimeout, n.cfg.Logf)
	}
	return epoch, gate, nil
}

// adoptPrimary installs the server and listeners and spawns the serve
// and publish loops; it is the single transition into the primary role.
func (n *Node) adoptPrimary(srv *server.Server, jrnl *journal.Journal, ln, replLn net.Listener, epoch uint64, gate *quorumTracker) {
	n.epoch.Store(epoch)
	n.mu.Lock()
	n.role = RolePrimary
	n.srv = srv
	n.jrnl = jrnl
	n.streamLn = ln
	n.replLn = replLn
	n.quorum = gate
	n.mu.Unlock()
	n.wg.Add(2)
	go func() {
		defer n.wg.Done()
		if err := srv.Serve(ln); err != nil {
			n.mu.Lock()
			n.serveErr = err
			n.mu.Unlock()
		}
	}()
	go func() {
		defer n.wg.Done()
		n.publishLoop(replLn, jrnl)
	}()
}

// tryPromote runs the follower's election protocol once the primary has
// been silent past FailoverTimeout. Ranks stagger their attempts — with
// seeded jitter on top of the rank term, so two followers whose clocks
// detected the silence in the same instant still cannot race the
// port-bind election in lockstep; after the stagger, a probe of the
// shard's replication address detects an already-promoted peer. The
// real lock is the OS: whoever binds the shard's stream address is the
// new primary. Returns true when this node promoted.
func (n *Node) tryPromote() bool {
	stagger := time.Duration(n.cfg.Rank-1) * n.cfg.PromoteStagger
	if jitter := n.cfg.PromoteStagger / 2; jitter > 0 {
		stagger += time.Duration(n.rng.Int63n(int64(jitter)))
	}
	if stagger > 0 {
		if !n.sleep(stagger) {
			return false
		}
		if c, err := n.dialTCP(n.self.ReplAddr); err == nil {
			// A lower rank already promoted; go back to following it.
			c.Close()
			n.noteHeard()
			return false
		}
	}
	deadline := time.Now().Add(n.cfg.FailoverTimeout)
	var ln net.Listener
	for {
		var err error
		ln, err = n.listenTCP(n.self.StreamAddr)
		if err == nil {
			break
		}
		if n.ctx.Err() != nil {
			return false
		}
		if time.Now().After(deadline) {
			// Lost the bind race — someone else owns the address now.
			n.noteHeard()
			return false
		}
		n.sleep(20 * time.Millisecond)
	}
	if err := n.promote(ln); err != nil {
		ln.Close()
		n.logf("cluster: %s: promotion failed: %v", n.id(), err)
		n.noteHeard()
		return false
	}
	return true
}

// promote turns the warm standby into the shard primary: flush and
// close the standby journal, re-open it authoritatively (which compacts
// and replays it), build a server on top — recovery parks every
// journaled stream at its replicated watermark — and take over the
// shard's addresses.
func (n *Node) promote(ln net.Listener) error {
	n.logf("cluster: %s promoting: primary silent for %v", n.id(), time.Since(n.lastHeard()).Round(time.Millisecond))
	n.mu.Lock()
	standby := n.jrnl
	n.jrnl = nil
	n.mu.Unlock()
	if standby != nil {
		if err := standby.Close(); err != nil {
			n.logf("cluster: %s: closing standby journal: %v", n.id(), err)
		}
	}
	jrnl, err := journal.Open(n.cfg.Journal)
	if err != nil {
		return fmt.Errorf("re-opening journal: %w", err)
	}
	epoch, gate, err := n.beginEpoch(jrnl)
	if err != nil {
		jrnl.Close()
		return err
	}
	srv, err := server.New(n.serverConfig(jrnl, epoch, gate))
	if err != nil {
		jrnl.Close()
		return err
	}
	var replLn net.Listener
	deadline := time.Now().Add(n.cfg.FailoverTimeout)
	for {
		replLn, err = n.listenTCP(n.self.ReplAddr)
		if err == nil {
			break
		}
		if n.ctx.Err() != nil || time.Now().After(deadline) {
			srv.Kill()
			return fmt.Errorf("replication listener: %w", err)
		}
		n.sleep(20 * time.Millisecond)
	}
	n.mu.Lock()
	n.promotions++
	n.lastPromotion = time.Now()
	n.mu.Unlock()
	n.adoptPrimary(srv, jrnl, ln, replLn, epoch, gate)
	snap := srv.Snapshot()
	n.logf("cluster: %s promoted to primary on %s at epoch %d (%d streams recovered, %d tombstones)",
		n.id(), ln.Addr(), epoch, snap.Streams.Recovered, snap.Streams.RecoveredTombstones)
	return nil
}

// demote is the reverse transition: a primary that has learned it was
// deposed — a follower or ack arrived carrying a higher epoch, or the
// partition simulation isolated it — stands down instead of
// split-braining. The serving state is torn down crash-style (the
// journal keeps exactly what fsync guaranteed; active client streams
// are severed and will resume against the rightful primary), the
// journal reopens as a warm standby, and the node rejoins the shard as
// a follower: the ordinary election machinery then decides whether it
// re-attaches to the new primary or — if nobody actually promoted —
// wins the next election itself.
func (n *Node) demote(reason string) {
	n.mu.Lock()
	if n.role != RolePrimary || n.stopped {
		n.mu.Unlock()
		return
	}
	n.role = RoleFollower
	srv := n.srv
	n.srv = nil
	n.jrnl = nil
	replLn := n.replLn
	n.streamLn, n.replLn = nil, nil
	gate := n.quorum
	n.quorum = nil
	conns := make([]net.Conn, 0, len(n.followerConns))
	for c := range n.followerConns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	atomic.AddInt64(&n.demotions, 1)
	n.logf("cluster: %s demoting: %s", n.id(), reason)
	if gate != nil {
		gate.close()
	}
	if replLn != nil {
		replLn.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	if srv != nil {
		srv.Kill() // closes the stream listener and client conns, abandons the journal
	}
	for n.ctx.Err() == nil {
		jrnl, err := journal.Open(n.cfg.Journal)
		if err == nil {
			n.mu.Lock()
			n.jrnl = jrnl
			n.mu.Unlock()
			break
		}
		n.logf("cluster: %s: reopening journal as standby: %v", n.id(), err)
		if !n.sleep(n.cfg.DialTimeout / 4) {
			return
		}
	}
	if n.ctx.Err() != nil {
		return
	}
	n.noteHeard() // fresh silence clock: give the rightful primary a full window
	n.wg.Add(1)
	go n.followLoop()
}

// Partition simulates a network partition around this node: every
// subsequent listen and dial fails, the replication listener and all
// follower connections close, and client streams are severed — but the
// process stays alive. An isolated primary demotes (it can no longer
// prove its authority); on Heal it rejoins as a follower and either
// re-attaches to whoever promoted meanwhile — learning the higher epoch
// — or, if nobody did, wins the next election with a fresh epoch.
func (n *Node) Partition() {
	if n.isolated.Swap(true) {
		return
	}
	n.logf("cluster: %s partitioned (simulated)", n.id())
	n.mu.Lock()
	role := n.role
	replConn := n.replConn
	n.mu.Unlock()
	if role == RolePrimary {
		n.demote("partitioned from the shard")
		return
	}
	if replConn != nil {
		replConn.Close()
	}
}

// Heal ends a simulated partition: the node's network works again.
func (n *Node) Heal() {
	if !n.isolated.Swap(false) {
		return
	}
	n.logf("cluster: %s partition healed", n.id())
}

// serverConfig injects the node's journal, fencing epoch, quorum gate
// and, in a multi-shard fleet, the placement hooks into the configured
// server template.
func (n *Node) serverConfig(jrnl *journal.Journal, epoch uint64, gate *quorumTracker) server.Config {
	cfg := n.cfg.Server
	cfg.Journal = jrnl
	cfg.Epoch = epoch
	if gate != nil {
		cfg.Quorum = gate
	}
	if cfg.Logf == nil {
		cfg.Logf = n.cfg.Logf
	}
	if len(n.ring.Nodes()) > 1 {
		addrs := make(map[string]string, len(n.cfg.Peers))
		for _, p := range n.cfg.Peers {
			addrs[p.Name] = p.StreamAddr
		}
		shard := n.cfg.Shard
		ring := n.ring
		cfg.Route = func(key uint64) (string, bool) {
			owner := ring.Owner(key)
			if owner == shard {
				return "", true
			}
			return addrs[owner], false
		}
		cfg.OwnsToken = func(token uint64) bool {
			return ring.Owner(token) == shard
		}
	}
	return cfg
}

// Shutdown stops the node gracefully: a primary drains its active
// streams (journaling their final watermarks), a follower flushes and
// closes its standby journal.
func (n *Node) Shutdown(ctx context.Context) error {
	n.cancel()
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return nil
	}
	n.stopped = true
	srv, jrnl, replLn, replConn, gate := n.srv, n.jrnl, n.replLn, n.replConn, n.quorum
	n.mu.Unlock()
	if gate != nil {
		gate.close()
	}
	if replLn != nil {
		replLn.Close()
	}
	if replConn != nil {
		replConn.Close()
	}
	var err error
	if srv != nil {
		err = srv.Shutdown(ctx) // closes the stream listener and the journal
	} else if jrnl != nil {
		err = jrnl.Close()
	}
	n.wg.Wait()
	return err
}

// Kill stops the node abruptly, crash-style: nothing is flushed beyond
// what fsync already guaranteed, and the journal is abandoned exactly
// as a dead process would leave it.
func (n *Node) Kill() {
	n.cancel()
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	srv, jrnl, streamLn, replLn, replConn, gate := n.srv, n.jrnl, n.streamLn, n.replLn, n.replConn, n.quorum
	n.mu.Unlock()
	if gate != nil {
		gate.close()
	}
	if replLn != nil {
		replLn.Close()
	}
	if replConn != nil {
		replConn.Close()
	}
	if srv != nil {
		srv.Kill() // closes the stream listener, abandons the journal
	} else {
		if streamLn != nil {
			streamLn.Close()
		}
		if jrnl != nil {
			jrnl.Abandon()
		}
	}
	n.wg.Wait()
}

// Role reports the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Server returns the stream server while the node is primary, nil
// otherwise.
func (n *Node) Server() *server.Server {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != RolePrimary {
		return nil
	}
	return n.srv
}

// StreamAddr reports the shard's stream address as actually bound
// (resolving a ":0" config), or the configured one before any bind.
func (n *Node) StreamAddr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.streamLn != nil {
		return n.streamLn.Addr().String()
	}
	return n.self.StreamAddr
}

// Status assembles the cluster-level ops view.
func (n *Node) Status() Status {
	n.mu.Lock()
	role := n.role
	jrnl := n.jrnl
	promotions := n.promotions
	lastPromotion := n.lastPromotion
	gate := n.quorum
	n.mu.Unlock()
	st := Status{
		Shard:         n.cfg.Shard,
		Role:          role,
		Rank:          n.cfg.Rank,
		Promotions:    promotions,
		LastPromotion: lastPromotion,
		Ring:          n.ring.Nodes(),
	}
	st.Replication.Epoch = n.epoch.Load()
	st.Replication.ReplicasConfigured = n.cfg.Replicas
	st.Replication.QuorumConfigured = n.cfg.Quorum
	st.Replication.DialRetries = atomic.LoadInt64(&n.dialRetries)
	st.Replication.Demotions = atomic.LoadInt64(&n.demotions)
	if role == RolePrimary {
		st.Replication.Followers = atomic.LoadInt64(&n.followers)
		st.Replication.FollowerDrops = atomic.LoadInt64(&n.followerDrops)
		var published uint64
		if jrnl != nil {
			at := jrnl.FollowOffsets()
			st.Replication.PublishedRecords = at.Records
			st.Replication.PublishedBytes = at.Bytes
			published = at.Records
		}
		if gate != nil {
			qs := gate.status()
			st.Replication.ReplicasConnected = qs.Connected
			st.Replication.QuorumDegraded = qs.Degraded
			st.Replication.QuorumCommits = qs.QuorumCommits
			st.Replication.LocalCommits = qs.LocalCommits
			st.Replication.DegradedEvents = qs.DegradedEvents
			st.Replication.AckTimeouts = qs.AckTimeouts
			st.Replication.AckLagRecords = make(map[string]uint64, len(qs.AckedSeq))
			for name, acked := range qs.AckedSeq {
				var lag uint64
				if published > acked {
					lag = published - acked
				}
				st.Replication.AckLagRecords[name] = lag
			}
		}
		return st
	}
	if jrnl != nil {
		// A follower's epoch is whatever its standby journal has
		// witnessed — the fencing floor it would promote with.
		st.Replication.Epoch = jrnl.Epoch()
	}
	n.repl.mu.Lock()
	applied := n.repl.base + n.repl.applied
	appliedBytes := n.repl.baseBytes + n.repl.appliedBytes
	st.Replication.Connected = n.connected.Load()
	st.Replication.AppliedRecords = applied
	st.Replication.AppliedAdmits = n.repl.admits
	st.Replication.Heartbeats = n.repl.heartbeats
	st.Replication.Resyncs = n.repl.resyncs
	if p := n.repl.primary; p.Records > applied {
		st.Replication.LagRecords = p.Records - applied
	}
	if p := n.repl.primary; p.Bytes > appliedBytes {
		st.Replication.LagBytes = p.Bytes - appliedBytes
	}
	if p := n.repl.primary; p.SegmentSeq > n.repl.baseSegment {
		st.Replication.LagSegments = p.SegmentSeq - n.repl.baseSegment
	}
	n.repl.mu.Unlock()
	return st
}

// Health is the cluster-aware readiness report: a follower is alive but
// not ready (it must not receive hellos), a primary defers to its
// server's own drain state.
func (n *Node) Health() server.Health {
	n.mu.Lock()
	role, srv := n.role, n.srv
	n.mu.Unlock()
	if role != RolePrimary || srv == nil {
		return server.Health{Status: "not-ready", Reason: "follower", Role: string(RoleFollower)}
	}
	if gate := n.quorumGate(); gate != nil && gate.isDegraded() {
		// Loud readiness flip: the primary is still admitting (local
		// durability), but the configured replication quorum is not
		// holding its records.
		return server.Health{Status: "not-ready", Reason: "quorum-degraded", Role: string(RolePrimary)}
	}
	h := srv.Health()
	h.Role = string(RolePrimary)
	return h
}

// OpsHandler serves the cluster node's operations endpoint — the same
// surface as a standalone server's, with the cluster status wrapped
// around the server snapshot and readiness answering for the role:
//
//	GET /livez       liveness (ok while the process runs, any role)
//	GET /healthz     readiness: 503 {"reason":"follower"} on a standby
//	GET /stats       {"cluster": Status, "server": Snapshot-if-primary}
//	GET /debug/vars  expvar (includes "smoothd" and "smoothd_cluster")
func (n *Node) OpsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /livez", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		server.WriteHealth(w, n.Health())
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		snap := Snapshot{Cluster: n.Status()}
		if srv := n.Server(); srv != nil {
			ss := srv.Snapshot()
			snap.Server = &ss
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

// id names this node in logs: shard/rank.
func (n *Node) id() string {
	return fmt.Sprintf("%s/%d", n.cfg.Shard, n.cfg.Rank)
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

func (n *Node) noteHeard()           { n.heard.Store(time.Now().UnixNano()) }
func (n *Node) lastHeard() time.Time { return time.Unix(0, n.heard.Load()) }

func (n *Node) setConnected(v bool) { n.connected.Store(v) }

// listenTCP and dialTCP are the node's injected network operations: the
// partition simulation fails them while the node is isolated, so an
// isolated node can neither rebind its shard's addresses nor reach its
// peers — the in-process equivalent of an unreachable host.
func (n *Node) listenTCP(addr string) (net.Listener, error) {
	if n.isolated.Load() {
		return nil, errIsolated
	}
	return net.Listen("tcp", addr)
}

func (n *Node) dialTCP(addr string) (net.Conn, error) {
	if n.isolated.Load() {
		return nil, errIsolated
	}
	return net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
}

// quorumGate returns the active quorum tracker, nil when gating is off
// or the node is not primary.
func (n *Node) quorumGate() *quorumTracker {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.quorum
}

// Epoch reports the fencing term this node last served as primary
// under (zero before any primary term).
func (n *Node) Epoch() uint64 { return n.epoch.Load() }

// Demotions reports how many times this node stood down from primary.
func (n *Node) Demotions() int64 { return atomic.LoadInt64(&n.demotions) }

func (n *Node) trackFollowerConn(c net.Conn) {
	n.mu.Lock()
	n.followerConns[c] = struct{}{}
	n.mu.Unlock()
}

func (n *Node) untrackFollowerConn(c net.Conn) {
	n.mu.Lock()
	delete(n.followerConns, c)
	n.mu.Unlock()
}

func (n *Node) setReplConn(c net.Conn) {
	n.mu.Lock()
	n.replConn = c
	n.mu.Unlock()
}

func (n *Node) standby() *journal.Journal {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.jrnl
}

// sleep waits for d or until the node stops; reports whether the full
// wait elapsed.
func (n *Node) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-n.ctx.Done():
		return false
	}
}
