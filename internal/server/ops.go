package server

import (
	"encoding/json"
	"expvar"
	"math"
	"net/http"
	"sort"

	"mpegsmooth/internal/journal"
	"mpegsmooth/internal/transport"
)

// StreamCounts are the admission and lifecycle counters.
type StreamCounts struct {
	Admitted          int64 `json:"admitted"`
	Rejected          int64 `json:"rejected"`
	RejectedCapacity  int64 `json:"rejected_capacity"`
	RejectedMalformed int64 `json:"rejected_malformed"`
	RejectedBusy      int64 `json:"rejected_busy"`
	Active            int64 `json:"active"`
	// Parked streams are active streams currently disconnected and
	// holding their reservation through the resume window.
	Parked    int64 `json:"parked"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	// HelloDeduped counts hellos recognized by nonce as retransmissions
	// and reattached to their existing stream instead of re-admitted;
	// AlreadyComplete counts resumes answered from a completion
	// tombstone after the sender's completion ack was lost.
	HelloDeduped    int64 `json:"hello_deduped"`
	AlreadyComplete int64 `json:"already_complete"`
	// Redirected counts handshakes answered with the owning shard's
	// address because the session key hashed to another shard.
	Redirected int64 `json:"redirected"`
	// Recovered counts streams rebuilt from the journal at startup and
	// parked for their senders to redial; RecoveredTombstones the
	// completion tombstones restored the same way.
	Recovered           int64 `json:"recovered"`
	RecoveredTombstones int64 `json:"recovered_tombstones"`
}

// FaultCounts are the classified transport-fault counters (the keys
// match transport.FaultClass.String()), plus the recovery outcomes.
type FaultCounts struct {
	Corrupt int64 `json:"corrupt"`
	Timeout int64 `json:"timeout"`
	Reset   int64 `json:"reset"`
	// The datagram classes: reassembly-window overflows, exhausted
	// retransmission schedules, and stale-incarnation traffic from the
	// ARQ layer under a -datagram listener.
	ReorderOverflow     int64 `json:"reorder_overflow"`
	RetransmitExhausted int64 `json:"retransmit_exhausted"`
	StaleDuplicate      int64 `json:"stale_duplicate"`
	Other               int64 `json:"other"`
	// Resumed counts accepted reconnects; DuplicatesDropped the replayed
	// pictures deduplicated after them; ResumeExpired the parked streams
	// no sender came back for.
	Resumed           int64 `json:"resumed"`
	DuplicatesDropped int64 `json:"duplicates_dropped"`
	ResumeExpired     int64 `json:"resume_expired"`
}

// record counts one classified fault.
func (f *FaultCounts) record(class transport.FaultClass) {
	switch class {
	case transport.FaultCorrupt:
		f.Corrupt++
	case transport.FaultTimeout:
		f.Timeout++
	case transport.FaultReset:
		f.Reset++
	case transport.FaultReorderOverflow:
		f.ReorderOverflow++
	case transport.FaultRetransmitExhausted:
		f.RetransmitExhausted++
	case transport.FaultStaleDuplicate:
		f.StaleDuplicate++
	case transport.FaultOther:
		f.Other++
	}
}

// add accumulates another counter set into f.
func (f *FaultCounts) add(g FaultCounts) {
	f.Corrupt += g.Corrupt
	f.Timeout += g.Timeout
	f.Reset += g.Reset
	f.ReorderOverflow += g.ReorderOverflow
	f.RetransmitExhausted += g.RetransmitExhausted
	f.StaleDuplicate += g.StaleDuplicate
	f.Other += g.Other
	f.Resumed += g.Resumed
	f.DuplicatesDropped += g.DuplicatesDropped
	f.ResumeExpired += g.ResumeExpired
}

// Snapshot is the full ops view of the server at one instant.
type Snapshot struct {
	// CapacityBPS is the configured shared link capacity; ReservedPeak
	// the sum of admitted streams' declared peaks; AvailablePeak the
	// headroom admission still has to give out.
	CapacityBPS   float64 `json:"capacity_bps"`
	ReservedPeak  float64 `json:"reserved_peak_bps"`
	AvailablePeak float64 `json:"available_peak_bps"`
	// AggregateRate is the sum of active streams' current decided
	// egress rates — by the admission invariant, never above capacity.
	AggregateRate float64 `json:"aggregate_egress_bps"`
	// Utilization is AggregateRate / CapacityBPS.
	Utilization float64 `json:"utilization"`
	// EgressedBits counts bits actually written to the shared link.
	EgressedBits int64        `json:"egressed_bits"`
	Streams      StreamCounts `json:"streams"`
	// Faults aggregates classified transport faults over every stream,
	// finished and active.
	Faults FaultCounts `json:"faults"`
	// DelayViolations counts finished streams whose largest per-picture
	// delay exceeded their bound D — always 0 for K ≥ 1 streams, by
	// Theorem 1. WorstDelayHeadroomS is the smallest D − maxDelay margin
	// any finished stream kept (0 until a stream finishes).
	DelayViolations     int64            `json:"delay_violations"`
	WorstDelayHeadroomS float64          `json:"worst_delay_headroom_s"`
	PerStream           []StreamSnapshot `json:"active_streams"`
	// Journal reports the session journal's append/flush/compaction
	// counters; nil when the server runs without one.
	Journal *journal.Stats `json:"journal,omitempty"`
}

// Snapshot collects the live counters: admission state, aggregate
// egress, classified fault totals, and one StreamSnapshot per active
// stream.
func (s *Server) Snapshot() Snapshot {
	s.mu.Lock()
	streams := make([]*stream, 0, len(s.streams))
	for _, st := range s.streams {
		streams = append(streams, st)
	}
	snap := Snapshot{
		CapacityBPS:   s.admission.Capacity(),
		ReservedPeak:  s.admission.Reserved(),
		AvailablePeak: s.admission.Available(),
		Streams: StreamCounts{
			Admitted:            s.admission.Admitted(),
			RejectedCapacity:    s.admission.Rejected(),
			RejectedMalformed:   s.rejectedMalformed,
			RejectedBusy:        s.rejectedBusy,
			Active:              s.admission.Active(),
			Parked:              s.admission.Parked(),
			Completed:           s.completed,
			Failed:              s.failed,
			HelloDeduped:        s.helloDeduped,
			AlreadyComplete:     s.alreadyComplete,
			Redirected:          s.redirected,
			Recovered:           s.recoveredStreams,
			RecoveredTombstones: s.recoveredTombstones,
		},
		Faults:          s.faultTotals,
		DelayViolations: s.delayViolations,
	}
	if !math.IsInf(s.worstHeadroom, 1) {
		snap.WorstDelayHeadroomS = s.worstHeadroom
	}
	s.mu.Unlock()
	snap.Streams.Rejected = snap.Streams.RejectedCapacity +
		snap.Streams.RejectedMalformed + snap.Streams.RejectedBusy
	snap.EgressedBits = s.egress.totalBits()
	snap.PerStream = make([]StreamSnapshot, 0, len(streams))
	for _, st := range streams {
		ss := st.snapshot()
		snap.AggregateRate += ss.CurrentRate
		snap.Faults.add(ss.Faults)
		snap.PerStream = append(snap.PerStream, ss)
	}
	sort.Slice(snap.PerStream, func(i, j int) bool { return snap.PerStream[i].ID < snap.PerStream[j].ID })
	if snap.CapacityBPS > 0 {
		snap.Utilization = snap.AggregateRate / snap.CapacityBPS
	}
	if s.journal != nil {
		js := s.journal.Stats()
		snap.Journal = &js
	}
	return snap
}

// Health is the readiness report /healthz serves. Liveness and
// readiness are different questions: a draining primary or a warm
// standby follower is alive (/livez says ok) but must not receive new
// hellos, so /healthz answers 503 with a JSON reason and load balancers
// stop routing to it.
type Health struct {
	// Status is "ok" (ready for new sessions) or "not-ready".
	Status string `json:"status"`
	// Reason says why the node is not ready ("draining", "follower");
	// empty when ready.
	Reason string `json:"reason,omitempty"`
	// Role is the node's cluster role when it runs in one ("primary",
	// "follower"); empty for a standalone server.
	Role string `json:"role,omitempty"`
}

// Ready reports whether the node should receive new sessions.
func (h Health) Ready() bool { return h.Status == "ok" }

// Health reports the server's own readiness: ok until Shutdown begins.
func (s *Server) Health() Health {
	if s.Draining() {
		return Health{Status: "not-ready", Reason: "draining"}
	}
	return Health{Status: "ok"}
}

// WriteHealth serves a Health as the /healthz response: 200 when ready,
// 503 when not, JSON body either way.
func WriteHealth(w http.ResponseWriter, h Health) {
	w.Header().Set("Content-Type", "application/json")
	if !h.Ready() {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(h)
}

// OpsHandler serves the operations endpoint:
//
//	GET /livez       liveness probe (always ok while the process runs)
//	GET /healthz     readiness probe: 503 not-ready while draining
//	GET /stats       full JSON Snapshot
//	GET /debug/vars  expvar (includes the "smoothd" snapshot)
func (s *Server) OpsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /livez", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		WriteHealth(w, s.Health())
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}
