package video

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewFrameValidation(t *testing.T) {
	for _, c := range []struct {
		w, h int
		ok   bool
	}{
		{16, 16, true}, {640, 480, true}, {352, 288, true},
		{0, 16, false}, {16, 0, false}, {-16, 16, false},
		{15, 16, false}, {16, 17, false}, {8, 8, false},
	} {
		_, err := NewFrame(c.w, c.h)
		if (err == nil) != c.ok {
			t.Errorf("NewFrame(%d,%d): err=%v, want ok=%v", c.w, c.h, err, c.ok)
		}
	}
}

func TestFramePlaneSizes(t *testing.T) {
	f := MustNewFrame(64, 48)
	if len(f.Y) != 64*48 {
		t.Fatalf("Y plane %d, want %d", len(f.Y), 64*48)
	}
	if len(f.Cb) != 32*24 || len(f.Cr) != 32*24 {
		t.Fatalf("chroma planes %d/%d, want %d", len(f.Cb), len(f.Cr), 32*24)
	}
	if f.ChromaW() != 32 || f.ChromaH() != 24 {
		t.Fatalf("chroma dims %dx%d", f.ChromaW(), f.ChromaH())
	}
	if f.MacroblocksX() != 4 || f.MacroblocksY() != 3 {
		t.Fatalf("macroblocks %dx%d, want 4x3", f.MacroblocksX(), f.MacroblocksY())
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := MustNewFrame(16, 16)
	f.Fill(100, 110, 120)
	g := f.Clone()
	g.Y[0] = 7
	g.Cb[0] = 8
	g.Cr[0] = 9
	if f.Y[0] != 100 || f.Cb[0] != 110 || f.Cr[0] != 120 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestPSNR(t *testing.T) {
	a := MustNewFrame(16, 16)
	b := MustNewFrame(16, 16)
	a.Fill(100, 128, 128)
	b.Fill(100, 128, 128)
	p, err := PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p, 1) {
		t.Fatalf("identical frames PSNR = %v, want +Inf", p)
	}
	b.Fill(110, 128, 128) // uniform error of 10
	p, err = PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * math.Log10(255*255/100.0)
	if math.Abs(p-want) > 1e-9 {
		t.Fatalf("PSNR = %v, want %v", p, want)
	}
	c := MustNewFrame(32, 16)
	if _, err := PSNR(a, c); err == nil {
		t.Fatal("dimension mismatch must error")
	}
}

func TestRGBYCbCrRoundTrip(t *testing.T) {
	f := func(r, g, b uint8) bool {
		y, cb, cr := RGBToYCbCr(r, g, b)
		r2, g2, b2 := YCbCrToRGB(y, cb, cr)
		const tol = 3 // 8-bit quantization in both directions
		return absInt(int(r)-int(r2)) <= tol &&
			absInt(int(g)-int(g2)) <= tol &&
			absInt(int(b)-int(b2)) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRGBGrayMapsToNeutralChroma(t *testing.T) {
	for _, v := range []uint8{0, 64, 128, 200, 255} {
		y, cb, cr := RGBToYCbCr(v, v, v)
		if absInt(int(cb)-128) > 1 || absInt(int(cr)-128) > 1 {
			t.Fatalf("gray %d: cb=%d cr=%d, want ~128", v, cb, cr)
		}
		if absInt(int(y)-int(v)) > 1 {
			t.Fatalf("gray %d: y=%d", v, y)
		}
	}
}

func TestSynthesizerDeterminism(t *testing.T) {
	mk := func() []*Frame {
		s, err := NewSynthesizer(DrivingScript(64, 48, 10, 42))
		if err != nil {
			t.Fatal(err)
		}
		var out []*Frame
		for !s.Done() {
			out = append(out, s.Next())
		}
		return out
	}
	a, b := mk(), mk()
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("frame counts %d/%d, want 10", len(a), len(b))
	}
	for i := range a {
		for j := range a[i].Y {
			if a[i].Y[j] != b[i].Y[j] {
				t.Fatalf("frame %d differs between runs at %d", i, j)
			}
		}
	}
}

func TestSynthesizerFrameCountMatchesScript(t *testing.T) {
	script := DrivingScript(32, 32, 23, 1)
	if script.TotalFrames() != 23 {
		t.Fatalf("TotalFrames = %d, want 23", script.TotalFrames())
	}
	s, err := NewSynthesizer(script)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for !s.Done() {
		f := s.Next()
		if f == nil {
			t.Fatal("Next returned nil before Done")
		}
		if f.DisplayIdx != n {
			t.Fatalf("DisplayIdx = %d, want %d", f.DisplayIdx, n)
		}
		n++
		if n > 100 {
			t.Fatal("runaway synthesizer")
		}
	}
	if n != 23 {
		t.Fatalf("rendered %d frames, want 23", n)
	}
	if s.Next() != nil {
		t.Fatal("Next after Done should return nil")
	}
}

func TestZeroFrameScenesSkipped(t *testing.T) {
	// Short scripts can produce zero-length scenes; they must render
	// nothing. DrivingScript(…, 2, …) splits 2 frames as 0/0/2.
	s, err := NewSynthesizer(DrivingScript(32, 32, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for !s.Done() {
		if s.Next() == nil {
			t.Fatal("nil frame before Done")
		}
		n++
		if n > 10 {
			t.Fatal("runaway")
		}
	}
	if n != 2 {
		t.Fatalf("rendered %d frames, want 2", n)
	}
	// A script that is all zero-length scenes renders nothing.
	s2, err := NewSynthesizer(Script{W: 32, H: 32, Scenes: []SceneSpec{{Frames: 0}, {Frames: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Done() || s2.Next() != nil {
		t.Fatal("all-empty script should be immediately done")
	}
}

func TestSceneCutChangesContent(t *testing.T) {
	// The last frame of scene 1 and the first frame of scene 2 must differ
	// much more than two consecutive frames within a scene.
	script := Script{
		W: 64, H: 48, Seed: 9,
		Scenes: []SceneSpec{
			{Frames: 5, Detail: 0.8, Motion: 0.5, BaseLuma: 100, Objects: 2},
			{Frames: 5, Detail: 0.3, Motion: 0.1, BaseLuma: 180, Objects: 1},
		},
	}
	s, err := NewSynthesizer(script)
	if err != nil {
		t.Fatal(err)
	}
	var frames []*Frame
	for !s.Done() {
		frames = append(frames, s.Next())
	}
	intra := frameDiff(frames[2], frames[3]) // within scene 1
	cut := frameDiff(frames[4], frames[5])   // across the cut
	if cut < intra*2 {
		t.Fatalf("scene cut diff %.1f not much larger than intra-scene diff %.1f", cut, intra)
	}
}

func TestMotionRampIncreasesFrameDiff(t *testing.T) {
	script := TennisScript(64, 48, 30, 3)
	s, err := NewSynthesizer(script)
	if err != nil {
		t.Fatal(err)
	}
	var frames []*Frame
	for !s.Done() {
		frames = append(frames, s.Next())
	}
	early := frameDiff(frames[1], frames[2])
	late := frameDiff(frames[27], frames[28])
	if late <= early {
		t.Fatalf("motion ramp should raise frame-to-frame diff: early %.1f late %.1f", early, late)
	}
}

func TestDetailControlsVariance(t *testing.T) {
	mk := func(detail float64) *Frame {
		s, err := NewSynthesizer(Script{
			W: 64, H: 48, Seed: 4,
			Scenes: []SceneSpec{{Frames: 1, Detail: detail, BaseLuma: 128}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return s.Next()
	}
	low := lumaVariance(mk(0.1))
	high := lumaVariance(mk(0.9))
	if high < low*3 {
		t.Fatalf("high detail variance %.1f should dwarf low detail %.1f", high, low)
	}
}

func TestPaperScriptsShapes(t *testing.T) {
	for name, script := range map[string]Script{
		"driving":  DrivingScript(64, 48, 100, 1),
		"tennis":   TennisScript(64, 48, 100, 1),
		"backyard": BackyardScript(64, 48, 100, 1),
	} {
		if script.TotalFrames() != 100 {
			t.Errorf("%s: TotalFrames = %d, want 100", name, script.TotalFrames())
		}
	}
	if n := len(DrivingScript(64, 48, 100, 1).Scenes); n != 3 {
		t.Errorf("driving should have 3 scenes (2 cuts), got %d", n)
	}
	if n := len(TennisScript(64, 48, 100, 1).Scenes); n != 1 {
		t.Errorf("tennis should have 1 scene, got %d", n)
	}
	if n := len(BackyardScript(64, 48, 100, 1).Scenes); n != 3 {
		t.Errorf("backyard should have 3 scenes, got %d", n)
	}
}

func frameDiff(a, b *Frame) float64 {
	var s float64
	for i := range a.Y {
		d := float64(int(a.Y[i]) - int(b.Y[i]))
		s += d * d
	}
	return s / float64(len(a.Y))
}

func lumaVariance(f *Frame) float64 {
	var mean float64
	for _, v := range f.Y {
		mean += float64(v)
	}
	mean /= float64(len(f.Y))
	var va float64
	for _, v := range f.Y {
		d := float64(v) - mean
		va += d * d
	}
	return va / float64(len(f.Y))
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func BenchmarkSynthesizeFrame(b *testing.B) {
	s, err := NewSynthesizer(DrivingScript(320, 240, 1<<30, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}
