package server

import (
	"context"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"mpegsmooth/internal/core"
	"mpegsmooth/internal/metrics"
	"mpegsmooth/internal/transport"
)

// item is one scheduled picture handed from ingest to egress.
type item struct {
	dec     core.Decision
	payload []byte
}

// stream is one admitted session: an ingest loop reading the connection
// and driving the smoothing Session, a bounded queue, and an egress loop
// pacing decided pictures onto the shared link. The Session itself is
// touched only by ingest (it is single-goroutine by contract); mu exists
// so the ops endpoint can snapshot live counters.
type stream struct {
	id     uint64
	remote string
	conn   net.Conn
	hello  transport.StreamHello
	queue  chan item

	mu             sync.Mutex
	sess           *core.Session
	stats          *metrics.DecisionStats
	pictures       int
	decisions      int
	maxDelay       float64
	sessionPeak    float64
	peakViolations int
	currentRate    float64
	egressedBits   int64
}

// newStream builds the stream skeleton; the caller creates the Session
// with st.observe installed and assigns it to st.sess before the stream
// is published.
func newStream(conn net.Conn, hello transport.StreamHello, queueLen int) *stream {
	return &stream{
		remote: conn.RemoteAddr().String(),
		conn:   conn,
		hello:  hello,
		queue:  make(chan item, queueLen),
		stats:  metrics.NewDecisionStats(),
	}
}

// observe feeds the per-stream DecisionStats; installed as the Session
// observer by the caller that owns the Session. It runs inside Push or
// Close, which ingest always calls under st.mu.
func (st *stream) observe(o core.Observation) {
	st.stats.Add(o.LowerSlack, o.UpperSlack, o.Depth, o.EstimatorError)
}

// push hands one picture size to the Session and records the emitted
// decisions' delay and peak under the stream lock.
func (st *stream) push(bits int64) ([]core.Decision, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	decs, err := st.sess.Push(bits)
	if err != nil {
		return nil, err
	}
	st.pictures++
	st.note(decs)
	return decs, nil
}

// closeSession flushes the Session's remaining decisions.
func (st *stream) closeSession() []core.Decision {
	st.mu.Lock()
	defer st.mu.Unlock()
	decs := st.sess.Close()
	st.note(decs)
	return decs
}

// note must run under st.mu.
func (st *stream) note(decs []core.Decision) {
	st.decisions += len(decs)
	for _, d := range decs {
		if d.Delay > st.maxDelay {
			st.maxDelay = d.Delay
		}
	}
	st.sessionPeak = st.sess.PeakRate()
}

// runIngest reads the connection until the end marker, pushing picture
// sizes through the smoothing session and enqueueing decided pictures
// for egress. The bounded queue is the backpressure point: when egress
// falls behind, enqueue blocks, ingest stops reading, and TCP flow
// control pushes back on the sender. The queue is closed on every exit
// path; runIngest is its only sender.
func (st *stream) runIngest(ctx context.Context, readTimeout time.Duration) error {
	defer close(st.queue)
	pending := make(map[int][]byte)
	expected := 0
	enqueue := func(decs []core.Decision) error {
		for _, d := range decs {
			payload, ok := pending[d.Picture]
			if !ok {
				return fmt.Errorf("server: decision for picture %d without payload", d.Picture)
			}
			delete(pending, d.Picture)
			select {
			case st.queue <- item{dec: d, payload: payload}:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		msg, err := transport.ReadMessageTimeout(st.conn, readTimeout)
		if err == transport.ErrClosed {
			return enqueue(st.closeSession())
		}
		if err != nil {
			return err
		}
		switch m := msg.(type) {
		case *transport.RateNotification:
			// The sender's own declared rates are informational here (the
			// server re-decides), but a declaration above the admitted
			// peak breaks the traffic contract — count it, as a Policer
			// parameterized at the declared peak would.
			if m.Rate > st.hello.PeakRate*(1+1e-9) {
				st.mu.Lock()
				st.peakViolations++
				st.mu.Unlock()
			}
		case *transport.PictureFrame:
			if m.Index != expected {
				return fmt.Errorf("server: picture %d out of order (expected %d)", m.Index, expected)
			}
			pending[expected] = m.Payload
			expected++
			decs, err := st.push(int64(len(m.Payload)) * 8)
			if err != nil {
				return err
			}
			if err := enqueue(decs); err != nil {
				return err
			}
		case *transport.StreamHello:
			return fmt.Errorf("server: duplicate hello mid-stream")
		default:
			return fmt.Errorf("server: unexpected message %T", msg)
		}
	}
}

// runEgress paces decided pictures onto the shared link at their decided
// rates, on the stream's own schedule clock (origin = first dequeue).
// Decision Start/Depart times are schedule seconds; TimeScale compresses
// them to wall time exactly as transport.Sender does.
func (st *stream) runEgress(ctx context.Context, lk *link, clock transport.Clock, scale float64) error {
	defer st.setCurrentRate(0)
	var origin time.Time
	started := false
	deadline := func(schedTime float64) time.Time {
		return origin.Add(time.Duration(schedTime / scale * float64(time.Second)))
	}
	for it := range st.queue {
		if !started {
			// Anchor the pacing clock so the first decision's start time
			// is "now": the stream's schedule origin.
			origin = clock.Now().Add(-time.Duration(it.dec.Start / scale * float64(time.Second)))
			started = true
		}
		d := it.dec
		if err := clock.Sleep(ctx, deadline(d.Start).Sub(clock.Now())); err != nil {
			return err
		}
		st.setCurrentRate(d.Rate)
		sent := 0
		for sent < len(it.payload) {
			end := sent + egressChunk
			if end > len(it.payload) {
				end = len(it.payload)
			}
			if err := lk.write(it.payload[sent:end]); err != nil {
				return err
			}
			sent = end
			if err := clock.Sleep(ctx, deadline(d.Start+float64(sent)*8/d.Rate).Sub(clock.Now())); err != nil {
				return err
			}
		}
		st.mu.Lock()
		st.egressedBits += int64(len(it.payload)) * 8
		st.mu.Unlock()
	}
	return nil
}

func (st *stream) setCurrentRate(r float64) {
	st.mu.Lock()
	st.currentRate = r
	st.mu.Unlock()
}

// StreamSnapshot is the ops view of one active stream.
type StreamSnapshot struct {
	ID     uint64 `json:"id"`
	Remote string `json:"remote"`
	// DeclaredPeak is the hello's reserved traffic descriptor;
	// SessionPeak is the largest rate the server's own session has
	// decided so far (≤ DeclaredPeak for a truthful sender using the
	// same smoothing parameters).
	DeclaredPeak float64 `json:"declared_peak_bps"`
	SessionPeak  float64 `json:"session_peak_bps"`
	CurrentRate  float64 `json:"current_rate_bps"`
	Pictures     int     `json:"pictures"`
	Decisions    int     `json:"decisions"`
	EgressedBits int64   `json:"egressed_bits"`
	// PeakViolations counts sender rate declarations above the admitted
	// peak — traffic-contract breaches a Policer would tag.
	PeakViolations int `json:"peak_violations"`
	// DecisionStats summary: see metrics.DecisionStats.
	OutOfBand    int     `json:"out_of_band"`
	MeanDepth    float64 `json:"mean_depth"`
	MinSlack     float64 `json:"min_slack_bps"`
	MeanAbsEstimatorError float64 `json:"mean_abs_estimator_error"`
	// Delay-bound headroom: the stream's bound D, the largest per-picture
	// delay any decision has incurred, and the margin between them.
	DelayBound    float64 `json:"delay_bound_s"`
	MaxDelay      float64 `json:"max_delay_s"`
	DelayHeadroom float64 `json:"delay_headroom_s"`
}

func (st *stream) snapshot() StreamSnapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	minSlack := st.stats.MinSlack()
	if math.IsInf(minSlack, 0) {
		minSlack = 0 // no decisions yet; keep the snapshot JSON-encodable
	}
	return StreamSnapshot{
		ID:           st.id,
		Remote:       st.remote,
		DeclaredPeak: st.hello.PeakRate,
		SessionPeak:  st.sessionPeak,
		CurrentRate:  st.currentRate,
		Pictures:     st.pictures,
		Decisions:    st.decisions,
		EgressedBits: st.egressedBits,

		PeakViolations:        st.peakViolations,
		OutOfBand:             st.stats.OutOfBand,
		MeanDepth:             st.stats.MeanDepth(),
		MinSlack:              minSlack,
		MeanAbsEstimatorError: st.stats.MeanAbsEstimatorError(),

		DelayBound:    st.hello.D,
		MaxDelay:      st.maxDelay,
		DelayHeadroom: headroom(st.hello.D, st.maxDelay),
	}
}

// headroom is D − maxDelay with sub-nanosecond float noise clamped to
// zero: a schedule that rides the delay bound exactly (maxDelay == D up
// to rounding) has zero headroom, not a violation-looking −1e-17.
func headroom(d, maxDelay float64) float64 {
	h := d - maxDelay
	if h < 0 && h > -delayTolerance {
		return 0
	}
	return h
}
