package server

import (
	"testing"
	"time"
)

// TestTombstoneLedgerFloodBounded pins the completion-tombstone ledger:
// a flood of completions grows the adaptive cap with the observed
// completion rate while the ledger never exceeds it, and a tombstone a
// late sender keeps probing — the last-touch property — survives the
// entire flood instead of being race-evicted by strangers.
func TestTombstoneLedgerFloodBounded(t *testing.T) {
	srv, err := New(Config{LinkRate: 1e9, ResumeWindow: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	const protected = uint64(0xFEEDFACE)
	srv.mu.Lock()
	srv.entombLocked(protected, 0xABC, 10)
	srv.mu.Unlock()

	const flood = 100_000
	for i := 0; i < flood; i++ {
		srv.mu.Lock()
		srv.entombLocked(uint64(0x100000+i), uint64(i), i)
		if size, cap := srv.tombstones.Len(), srv.tombstones.Cap(); size > cap {
			srv.mu.Unlock()
			t.Fatalf("after %d completions: ledger %d exceeds cap %d", i+1, size, cap)
		}
		if i%1024 == 0 {
			if _, ok := srv.lookupTombstoneLocked(protected); !ok {
				srv.mu.Unlock()
				t.Fatalf("probed tombstone evicted after %d completions (ledger %d, cap %d)",
					i+1, srv.tombstones.Len(), srv.tombstones.Cap())
			}
		}
		srv.mu.Unlock()
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if cap := srv.tombstones.Cap(); cap <= tombstoneKeep {
		t.Errorf("cap did not adapt above its %d floor under a completion flood: %d", tombstoneKeep, cap)
	}
	if tomb, ok := srv.lookupTombstoneLocked(protected); !ok || tomb.fnv != 0xABC || tomb.pictures != 10 {
		t.Errorf("probed tombstone lost or mangled by the end of the flood: %+v ok=%v", tomb, ok)
	}

	// An expired tombstone is lazily dropped at lookup, not answered.
	srv.tombstones.Put(0xDEAD, tombstone{fnv: 1, pictures: 1, expires: time.Now().Add(-time.Second)})
	if _, ok := srv.lookupTombstoneLocked(0xDEAD); ok {
		t.Error("expired tombstone answered a resume")
	}
	if _, ok := srv.tombstones.Get(0xDEAD); ok {
		t.Error("expired tombstone not dropped on lookup")
	}
}
