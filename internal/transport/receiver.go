package transport

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"mpegsmooth/internal/mpeg"
)

// ReceivedPicture records one picture as observed by the receiver.
type ReceivedPicture struct {
	Index int
	Type  mpeg.PictureType
	Bytes int
	// Sum64 is the FNV-1a hash of the payload, for end-to-end integrity
	// checks without retaining the payload itself.
	Sum64 uint64
	// Arrival is the wall-clock time the last payload byte was read,
	// relative to the receiver's start.
	Arrival time.Duration
	// NotifiedRate is the sender's declared rate in effect when the
	// picture arrived (bits/second).
	NotifiedRate float64
}

// PayloadSum64 computes the same FNV-1a hash the receiver records, for
// sender-side comparison.
func PayloadSum64(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}

// Report summarizes a receive session.
type Report struct {
	Pictures      []ReceivedPicture
	Notifications []RateNotification
	// Hello is the stream-opening declaration, when the sender sent one.
	Hello *StreamHello
	// Elapsed is the total session duration.
	Elapsed time.Duration
}

// TotalBytes sums the received payload sizes.
func (r *Report) TotalBytes() int {
	total := 0
	for _, p := range r.Pictures {
		total += p.Bytes
	}
	return total
}

// Receiver drains a sender's stream with configurable robustness knobs.
// The zero value behaves exactly like the package-level Receive.
type Receiver struct {
	// ReadTimeout bounds the wait for each message (header through
	// payload). Zero means wait forever. It takes effect only when the
	// connection supports read deadlines (net.Conn does).
	ReadTimeout time.Duration
	// MaxPictureBytes caps the payload size the receiver will accept
	// (default transport.DefaultMaxPictureBytes).
	MaxPictureBytes int
}

// Receive drains a sender's stream until the end marker, recording
// arrival times and rate notifications. The reader should be the
// connection's read side; cancellation is honoured between messages, and
// a stalled sender is cut off after ReadTimeout when configured.
func (rc *Receiver) Receive(ctx context.Context, conn io.Reader) (*Report, error) {
	start := time.Now()
	report := &Report{}
	currentRate := 0.0
	fr := NewFrameReaderBuffered(conn)
	fr.MaxPayload = rc.MaxPictureBytes
	for {
		if err := ctx.Err(); err != nil {
			return report, err
		}
		msg, err := fr.ReadMessageTimeout(rc.ReadTimeout)
		if err == ErrClosed {
			report.Elapsed = time.Since(start)
			return report, nil
		}
		if err != nil {
			return report, err
		}
		switch m := msg.(type) {
		case *StreamHello:
			report.Hello = m
		case *RateNotification:
			report.Notifications = append(report.Notifications, *m)
			currentRate = m.Rate
		case *PictureFrame:
			report.Pictures = append(report.Pictures, ReceivedPicture{
				Index:        m.Index,
				Type:         m.Type,
				Bytes:        len(m.Payload),
				Sum64:        PayloadSum64(m.Payload),
				Arrival:      time.Since(start),
				NotifiedRate: currentRate,
			})
		default:
			return report, fmt.Errorf("transport: unexpected message %T", msg)
		}
	}
}

// Receive drains a sender's stream until the end marker with no read
// timeout; see Receiver for the configurable form.
func Receive(ctx context.Context, conn io.Reader) (*Report, error) {
	return (&Receiver{}).Receive(ctx, conn)
}
