package main

import (
	"context"
	"net"
	"testing"
	"time"

	"mpegsmooth"
)

// TestSendRecvSession runs a full streamer session over TCP loopback at
// high timescale.
func TestSendRecvSession(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		done <- serveOne(conn)
	}()

	if err := send([]string{
		"-connect", ln.Addr().String(),
		"-seq", "backyard",
		"-pictures", "48",
		"-timescale", "200",
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("receiver did not finish")
	}
}

func TestSendUnknownSequence(t *testing.T) {
	if err := send([]string{"-seq", "nope"}); err == nil {
		t.Fatal("unknown sequence should fail")
	}
}

func TestSendConnectionRefused(t *testing.T) {
	if err := send([]string{"-connect", "127.0.0.1:1", "-pictures", "18"}); err == nil {
		t.Fatal("refused connection should fail")
	}
}

func TestServeOneMalformedPeer(t *testing.T) {
	client, server := net.Pipe()
	go func() {
		client.Write([]byte{0xFF, 0x00, 0x01})
		client.Close()
	}()
	if err := serveOne(server); err == nil {
		t.Fatal("malformed stream should error")
	}
}

// Guard: the receive loop must respect cancellation even while blocked.
func TestReceiveCancellable(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		mpegsmooth.Receive(ctx, server)
		close(done)
	}()
	cancel()
	server.Close() // unblock the pending read
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Receive did not return after cancel+close")
	}
}
