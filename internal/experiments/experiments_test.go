package experiments

import (
	"math"
	"testing"
)

// The experiment tests assert the SHAPE claims of the paper's evaluation
// on the regenerated data: who wins, monotonicity, and crossover
// locations — not absolute bit counts (our traces are calibrated
// synthetics).

const testPics = 135 // shorter traces keep the suite fast

func TestFigure3Shapes(t *testing.T) {
	traces, err := Figure3(testPics, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 || traces[0].Name != "Driving1" || traces[1].Name != "Tennis" {
		t.Fatalf("unexpected traces %v", traces)
	}
	for _, tr := range traces {
		if tr.Len() != testPics {
			t.Errorf("%s has %d pictures", tr.Name, tr.Len())
		}
	}
}

func TestFigure4SmoothnessImprovesWithD(t *testing.T) {
	series, err := Figure4(testPics, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("%d panels", len(series))
	}
	for i := 1; i < len(series); i++ {
		if series[i].D <= series[i-1].D {
			t.Fatal("panels not ordered by D")
		}
		// Larger D: S.D. does not get (meaningfully) worse.
		if series[i].Measures.StdDev > series[i-1].Measures.StdDev*1.05 {
			t.Errorf("D=%v S.D. %.0f worse than D=%v's %.0f",
				series[i].D, series[i].Measures.StdDev, series[i-1].D, series[i-1].Measures.StdDev)
		}
	}
	// Paper: improvement from 0.2 to 0.3 is NOT significant (< 35%
	// relative), while 0.1 → 0.3 is big.
	d01 := series[0].Measures.StdDev
	d02 := series[2].Measures.StdDev
	d03 := series[3].Measures.StdDev
	if (d02-d03)/d02 > 0.35 {
		t.Errorf("0.2→0.3 improvement suspiciously large: %.0f → %.0f", d02, d03)
	}
	if d01 < d03*1.2 {
		t.Errorf("0.1→0.3 improvement too small: %.0f → %.0f", d01, d03)
	}
}

func TestFigure5DelayShapes(t *testing.T) {
	r, err := Figure5(testPics, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	maxOf := func(v []float64) float64 {
		m := 0.0
		for _, x := range v {
			if x > m {
				m = x
			}
		}
		return m
	}
	if m := maxOf(r.DelaysD01); m > 0.1+1e-9 {
		t.Errorf("D=0.1 delays reach %.4f", m)
	}
	if m := maxOf(r.DelaysD03); m > 0.3+1e-9 {
		t.Errorf("D=0.3 delays reach %.4f", m)
	}
	if m := maxOf(r.DelaysK1); m > 0.1333+2.0/30+1e-9 {
		t.Errorf("K=1 delays exceed bound: %.4f", m)
	}
	if m := maxOf(r.DelaysK9); m > 0.1333+10.0/30+1e-9 {
		t.Errorf("K=9 delays exceed bound: %.4f", m)
	}
	// Ideal delays are much larger than basic K=1 at D=0.1.
	mean := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	if mean(r.DelaysIdeal) < 1.5*mean(r.DelaysD01) {
		t.Errorf("ideal mean delay %.4f not much larger than basic %.4f",
			mean(r.DelaysIdeal), mean(r.DelaysD01))
	}
	// K=9 delays are substantially larger than K=1 (the desirability of
	// K=1).
	if mean(r.DelaysK9) < mean(r.DelaysK1)+0.1 {
		t.Errorf("K=9 mean delay %.4f not clearly above K=1's %.4f",
			mean(r.DelaysK9), mean(r.DelaysK1))
	}
}

func TestFigure6Shapes(t *testing.T) {
	rows, err := Figure6(testPics, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	bySeq := map[string][]SweepRow{}
	for _, r := range rows {
		bySeq[r.Sequence] = append(bySeq[r.Sequence], r)
	}
	if len(bySeq) != 4 {
		t.Fatalf("expected 4 sequences, got %d", len(bySeq))
	}
	for name, rs := range bySeq {
		first, last := rs[0], rs[len(rs)-1]
		// All measures improve substantially from the tightest to the
		// loosest bound.
		if last.Measures.StdDev > first.Measures.StdDev {
			t.Errorf("%s: S.D. did not improve with D (%.0f → %.0f)", name, first.Measures.StdDev, last.Measures.StdDev)
		}
		if last.Measures.MaxRate > first.Measures.MaxRate*1.001 {
			t.Errorf("%s: max rate did not improve with D", name)
		}
		if last.Measures.RateChanges > first.Measures.RateChanges {
			t.Errorf("%s: rate changes did not drop with D (%d → %d)", name, first.Measures.RateChanges, last.Measures.RateChanges)
		}
	}
	// Backyard is the easiest to smooth: its max rate (≈1.5 Mbps region)
	// is about half the 640x480 sequences' (≈3 Mbps).
	backyard := bySeq["Backyard"][len(bySeq["Backyard"])-1].Measures.MaxRate
	driving := bySeq["Driving1"][len(bySeq["Driving1"])-1].Measures.MaxRate
	if backyard > driving*0.75 {
		t.Errorf("Backyard max rate %.2f Mbps not well below Driving1's %.2f Mbps",
			backyard/1e6, driving/1e6)
	}
}

func TestFigure7NoGainBeyondN(t *testing.T) {
	rows, err := Figure7(testPics, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	bySeq := map[string][]SweepRow{}
	for _, r := range rows {
		bySeq[r.Sequence] = append(bySeq[r.Sequence], r)
	}
	// The paper's conjecture, supported by its data: no noticeable
	// improvement in area difference / S.D. / max rate for H > N, and
	// the number of rate changes increases with H.
	for name, rs := range bySeq {
		n := 0
		switch name {
		case "Driving1", "Tennis":
			n = 9
		case "Driving2":
			n = 6
		case "Backyard":
			n = 12
		}
		atN := rs[n-1] // H = N
		last := rs[len(rs)-1]
		if last.X != float64(2*n) {
			t.Fatalf("%s: last H = %v, want %d", name, last.X, 2*n)
		}
		if last.Measures.StdDev < atN.Measures.StdDev*0.93 {
			t.Errorf("%s: H=2N improved S.D. noticeably: %.0f vs %.0f at H=N",
				name, last.Measures.StdDev, atN.Measures.StdDev)
		}
		if last.Measures.MaxRate < atN.Measures.MaxRate*0.93 {
			t.Errorf("%s: H=2N improved max rate noticeably", name)
		}
		// Rate changes at large H exceed those at H = 1..2 (short
		// lookahead changes rate rarely but wildly — compare to small H
		// where few bounds accumulate): the paper reports the count
		// INCREASES with H in this regime.
		early := rs[2].Measures.RateChanges // H = 3
		if last.Measures.RateChanges < early {
			t.Errorf("%s: rate changes fell with H (%d at H=3 vs %d at H=2N)",
				name, early, last.Measures.RateChanges)
		}
	}
}

func TestFigure8KBarelyMatters(t *testing.T) {
	rows, err := Figure8(testPics, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	bySeq := map[string][]SweepRow{}
	for _, r := range rows {
		bySeq[r.Sequence] = append(bySeq[r.Sequence], r)
	}
	// At constant slack, smoothness improves only marginally with K:
	// the S.D. at K=12 is within 30% of K=1's (the paper: "a small
	// improvement ... but barely noticeable", conclusion K=1).
	for name, rs := range bySeq {
		k1 := rs[0].Measures.StdDev
		k12 := rs[len(rs)-1].Measures.StdDev
		if k12 > k1*1.15 {
			t.Errorf("%s: S.D. degraded sharply with K (%.0f → %.0f)", name, k1, k12)
		}
		if k12 < k1*0.5 {
			t.Errorf("%s: S.D. improved dramatically with K (%.0f → %.0f), contradicting the paper", name, k1, k12)
		}
	}
}

func TestExtAVariantTradeoff(t *testing.T) {
	rows, err := ExtA(testPics, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	var sumBasic, sumMoving float64
	for _, r := range rows {
		sumBasic += r.Basic.AreaDiff
		sumMoving += r.Moving.AreaDiff
		// The scene-structured Driving sequences show the claim most
		// clearly; Tennis's monotone motion ramp makes the pattern
		// moving average lag, so it is held to the aggregate check only.
		if r.Sequence == "Driving1" || r.Sequence == "Driving2" {
			if r.Moving.AreaDiff >= r.Basic.AreaDiff {
				t.Errorf("%s: moving-average area diff %.4f not below basic %.4f",
					r.Sequence, r.Moving.AreaDiff, r.Basic.AreaDiff)
			}
		}
		if r.Moving.RateChanges <= r.Basic.RateChanges {
			t.Errorf("%s: moving-average rate changes %d not above basic %d",
				r.Sequence, r.Moving.RateChanges, r.Basic.RateChanges)
		}
	}
	if sumMoving >= sumBasic {
		t.Errorf("moving average did not reduce area difference on average: %.4f vs %.4f",
			sumMoving/4, sumBasic/4)
	}
}

func TestExtBMultiplexingGain(t *testing.T) {
	rows, err := ExtB(6, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	anyRawLoss := false
	for _, r := range rows {
		if r.RawLoss > 0 {
			anyRawLoss = true
			if r.SmoothedLoss > r.RawLoss {
				t.Errorf("n=%d: smoothed loss %.4f above raw %.4f", r.Streams, r.SmoothedLoss, r.RawLoss)
			}
		}
	}
	if !anyRawLoss {
		t.Error("experiment not discriminating: raw streams never lost cells")
	}
}

func TestExtCEstimators(t *testing.T) {
	rows, err := ExtC(testPics, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d estimators", len(rows))
	}
	for _, r := range rows {
		// Theorem 1: the bound holds regardless of estimator quality.
		if r.MaxDelay > 0.2+1e-9 {
			t.Errorf("%s: max delay %.4f exceeds bound", r.Estimator, r.MaxDelay)
		}
		if math.IsNaN(r.Measures.AreaDiff) {
			t.Errorf("%s: NaN area difference", r.Estimator)
		}
	}
}

func TestExtDViolations(t *testing.T) {
	rows, err := ExtD(testPics, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	sawK0Violation := false
	for _, r := range rows {
		if r.K >= 1 && r.Violations > 0 {
			t.Errorf("K=%d D=%.4f: %d violations — Theorem 1 broken", r.K, r.D, r.Violations)
		}
		if r.K == 0 && r.Violations > 0 {
			sawK0Violation = true
		}
	}
	if !sawK0Violation {
		t.Error("no K=0 violations observed even at 1 ms slack")
	}
}

func TestExtFVBVMonotone(t *testing.T) {
	rows, err := ExtF(testPics, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		// Theorem 1: the decoder start-up delay never exceeds D.
		if r.StartupDelay > r.D+1e-9 {
			t.Errorf("D=%.4f: startup %.4f exceeds the bound", r.D, r.StartupDelay)
		}
		if r.PeakBufferBits <= 0 {
			t.Errorf("D=%.4f: non-positive peak buffer", r.D)
		}
		if i > 0 && r.StartupDelay < rows[i-1].StartupDelay-1e-9 {
			// A looser bound lets the smoother buffer more; startup
			// should not shrink as D grows.
			t.Errorf("startup delay fell from %.4f to %.4f as D grew", rows[i-1].StartupDelay, r.StartupDelay)
		}
	}
	// The peak buffer at the loosest bound must exceed the tightest's:
	// more smoothing means more decoder memory.
	if rows[len(rows)-1].PeakBufferBits <= rows[0].PeakBufferBits {
		t.Errorf("peak buffer did not grow with D (%.0f -> %.0f)",
			rows[0].PeakBufferBits, rows[len(rows)-1].PeakBufferBits)
	}
}

func TestExtGQuantizationTradeoff(t *testing.T) {
	rows, err := ExtG(96, 64, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Scale <= rows[i-1].Scale {
			t.Fatal("scales not increasing")
		}
		// Coarser quantization: fewer bits, worse PSNR — monotone both
		// ways (the Section 3.1 trade-off).
		if rows[i].Bits >= rows[i-1].Bits {
			t.Errorf("scale %d: %d bits not below scale %d's %d",
				rows[i].Scale, rows[i].Bits, rows[i-1].Scale, rows[i-1].Bits)
		}
		if rows[i].PSNRdB >= rows[i-1].PSNRdB {
			t.Errorf("scale %d: PSNR %.1f not below scale %d's %.1f",
				rows[i].Scale, rows[i].PSNRdB, rows[i-1].Scale, rows[i-1].PSNRdB)
		}
	}
	// Scale 4 → 30 shrinks the picture several-fold (the paper saw
	// 282,976 → 75,960, a 3.7x reduction) at a visible quality cost.
	var at4, at30 QuantRow
	for _, r := range rows {
		if r.Scale == 4 {
			at4 = r
		}
		if r.Scale == 30 {
			at30 = r
		}
	}
	if ratio := float64(at4.Bits) / float64(at30.Bits); ratio < 2 || ratio > 8 {
		t.Errorf("scale 4/30 size ratio %.1f outside the paper's ~3.7x neighbourhood", ratio)
	}
	if at4.PSNRdB-at30.PSNRdB < 3 {
		t.Errorf("quality gap %.1f dB too small to be 'grainy, fuzzy'", at4.PSNRdB-at30.PSNRdB)
	}
}

func TestExtHBufferSweep(t *testing.T) {
	rows, err := ExtH(6, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Loss is non-increasing in buffer size for both stream kinds, and
	// smoothed loss never exceeds raw loss where raw loses.
	for i, r := range rows {
		if i > 0 {
			if r.RawLoss > rows[i-1].RawLoss+1e-9 {
				t.Errorf("raw loss rose with buffer (%d cells)", r.BufferCells)
			}
			if r.SmoothedLoss > rows[i-1].SmoothedLoss+1e-9 {
				t.Errorf("smoothed loss rose with buffer (%d cells)", r.BufferCells)
			}
		}
		// With a zero buffer even simultaneous smoothed cells collide;
		// the comparison is meaningful once the buffer can hold a burst.
		if r.BufferCells >= 10 && r.RawLoss > 0 && r.SmoothedLoss > r.RawLoss {
			t.Errorf("buffer %d: smoothed %.4f above raw %.4f", r.BufferCells, r.SmoothedLoss, r.RawLoss)
		}
	}
	// The headline: at SOME moderate buffer, smoothed streams are
	// loss-free while raw streams still lose.
	found := false
	for _, r := range rows {
		if r.SmoothedLoss == 0 && r.RawLoss > 0.005 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no buffer size separates smoothed (lossless) from raw (lossy)")
	}
}

func TestExtIAlgorithmFamily(t *testing.T) {
	rows, err := ExtI(testPics, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AlgoRow{}
	for _, r := range rows {
		byName[r.Algorithm] = r
	}
	basic := byName["basic K=1 D=0.2"]
	if basic.MaxDelay > 0.2+1e-9 {
		t.Errorf("basic max delay %.4f exceeds bound", basic.MaxDelay)
	}
	// The offline optimum never has a worse peak than the online run at
	// the same bound.
	off := byName["offline optimum D=0.2"]
	if off.PeakRate > basic.PeakRate*(1+1e-9) {
		t.Errorf("offline peak %.0f above basic %.0f", off.PeakRate, basic.PeakRate)
	}
	if off.MaxDelay > 0.2+1e-6 {
		t.Errorf("offline max delay %.4f exceeds bound", off.MaxDelay)
	}
	// Window averaging trades delay for smoothness: W=1 is the raw-ish
	// extreme (huge peak, no real smoothing), W=10N much smoother but
	// with delays far beyond the basic algorithm's bound.
	w1 := byName["piecewise-CBR W=1"]
	w10 := byName["piecewise-CBR W=90"]
	if w1.PeakRate < 2*basic.PeakRate {
		t.Errorf("W=1 peak %.0f should dwarf the smoothed peak %.0f", w1.PeakRate, basic.PeakRate)
	}
	if w10.StdDev > basic.StdDev {
		t.Errorf("W=10N SD %.0f should undercut basic %.0f", w10.StdDev, basic.StdDev)
	}
	if w10.MaxDelay < 3*basic.MaxDelay {
		t.Errorf("W=10N delay %.3f should dwarf basic's bounded %.3f", w10.MaxDelay, basic.MaxDelay)
	}
}

func TestExtEPipeline(t *testing.T) {
	res, err := ExtE(96, 64, 36, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pictures != 36 {
		t.Fatalf("%d pictures", res.Pictures)
	}
	if !(res.IMean > res.PMean && res.PMean > res.BMean) {
		t.Errorf("encoded size ordering violated: I=%.0f P=%.0f B=%.0f", res.IMean, res.PMean, res.BMean)
	}
	if res.MaxDelay > 0.2+1e-9 {
		t.Errorf("max delay %.4f exceeds bound", res.MaxDelay)
	}
	if res.SmoothedPeak >= res.UnsmoothedPeak {
		t.Errorf("smoothing did not reduce the peak: %.0f vs %.0f", res.SmoothedPeak, res.UnsmoothedPeak)
	}
}
