// Package bitio provides MSB-first bit-level readers and writers for
// MPEG-style coded bit streams.
//
// MPEG video streams are sequences of variable-length codes that are not
// byte aligned, punctuated by 32-bit start codes that ARE byte aligned and
// are guaranteed unique in the stream (the encoder never emits 23
// consecutive zero bits inside entropy-coded data). This package supplies:
//
//   - Writer: MSB-first bit writer with byte alignment and start-code
//     emission.
//   - Reader: MSB-first bit reader with peeking, alignment, and
//     next-start-code scanning used by decoders to resynchronize after
//     errors (Section 2 of Lam/Chow/Yau: "a slice is the smallest unit
//     available to a decoder for resynchronization").
package bitio
