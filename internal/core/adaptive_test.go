package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpegsmooth/internal/mpeg"
	"mpegsmooth/internal/trace"
)

// adaptiveTrace builds a trace whose coding pattern changes mid-sequence
// — IBBPBBPBB for the first half, IPPPP afterwards — as an encoder that
// adapts M and N to scene content would produce.
func adaptiveTrace(n int, seed int64) *trace.Trace {
	g1 := mpeg.GOP{M: 3, N: 9}
	g2 := mpeg.GOP{M: 1, N: 5}
	half := n / 2
	half -= half % g1.N // switch at a pattern boundary
	rng := rand.New(rand.NewSource(seed))
	types := make([]mpeg.PictureType, n)
	sizes := make([]int64, n)
	for i := 0; i < n; i++ {
		if i < half {
			types[i] = g1.TypeOf(i)
		} else {
			types[i] = g2.TypeOf(i - half)
		}
		switch types[i] {
		case mpeg.TypeI:
			sizes[i] = 180_000 + int64(rng.Intn(60_000))
		case mpeg.TypeP:
			sizes[i] = 70_000 + int64(rng.Intn(30_000))
		default:
			sizes[i] = 20_000 + int64(rng.Intn(15_000))
		}
	}
	return &trace.Trace{
		Name:  "adaptive",
		Tau:   1.0 / 30,
		GOP:   g1, // nominal pattern
		Sizes: sizes,
		Types: types,
	}
}

func TestAdaptiveTraceValidates(t *testing.T) {
	tr := adaptiveTrace(90, 1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mismatched type count must fail.
	bad := *tr
	bad.Types = bad.Types[:10]
	if err := bad.Validate(); err == nil {
		t.Fatal("short Types should fail validation")
	}
	// TypeOf follows explicit types, not the nominal pattern.
	half := 90 / 2
	half -= half % 9
	if tr.TypeOf(half) != mpeg.TypeI || tr.TypeOf(half+1) != mpeg.TypeP {
		t.Fatalf("pattern switch not visible: %v %v", tr.TypeOf(half), tr.TypeOf(half+1))
	}
}

// TestTheorem1HoldsAcrossPatternChange: the paper claims the algorithm
// "does not depend on M, and uses N only in picture size estimation" —
// so the guarantees must survive an adaptive pattern switch even though
// the estimator's pattern assumption is briefly wrong.
func TestTheorem1HoldsAcrossPatternChange(t *testing.T) {
	tr := adaptiveTrace(135, 3)
	for _, est := range []Estimator{
		PatternEstimator{},     // briefly wrong after the switch — allowed
		NearestTypeEstimator{}, // pattern-free generalization
		TypeMeanEstimator{},
	} {
		s, err := Smooth(tr, Config{K: 1, H: 9, D: 0.2, Estimator: est})
		if err != nil {
			t.Fatalf("%s: %v", est.Name(), err)
		}
		if v := s.CheckDelayBound(); v != -1 {
			t.Errorf("%s: delay bound violated at %d", est.Name(), v)
		}
		if v := s.CheckContinuousService(); v != -1 {
			t.Errorf("%s: continuous service violated at %d", est.Name(), v)
		}
		if v := s.CheckRatesWithinBounds(); v != -1 {
			t.Errorf("%s: rate bounds violated at %d", est.Name(), v)
		}
	}
}

func TestNearestTypeEstimator(t *testing.T) {
	tr := adaptiveTrace(90, 5)
	now := 40 * tr.Tau // pictures 0..39 arrived
	v := View{tau: tr.Tau, gop: tr.GOP, types: tr.Types, sizes: tr.Sizes, now: now}
	est := NearestTypeEstimator{}
	// The estimate for a future picture equals the most recent arrived
	// picture of the same type.
	target := 50
	want := int64(-1)
	for jj := 39; jj >= 0; jj-- {
		if tr.TypeOf(jj) == tr.TypeOf(target) {
			want = tr.Sizes[jj]
			break
		}
	}
	if got := est.Estimate(target, v); got != want {
		t.Fatalf("estimate %d, want %d", got, want)
	}
	// Cold start: defaults.
	v0 := View{tau: tr.Tau, gop: tr.GOP, types: tr.Types, sizes: tr.Sizes, now: 0}
	if got := est.Estimate(0, v0); got != DefaultInitialSizes[tr.TypeOf(0)] {
		t.Fatalf("cold-start estimate %d", got)
	}
	custom := NearestTypeEstimator{Initial: map[mpeg.PictureType]int64{mpeg.TypeI: 99}}
	if got := custom.Estimate(0, v0); got != 99 {
		t.Fatalf("custom initial %d", got)
	}
}

// TestAdaptivePatternProperty: Theorem 1 for completely random type
// sequences — the strongest form of "the algorithm does not depend on
// the pattern".
func TestAdaptivePatternProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 2
		types := make([]mpeg.PictureType, n)
		sizes := make([]int64, n)
		for i := range types {
			types[i] = mpeg.PictureType(rng.Intn(3))
			sizes[i] = int64(rng.Intn(300_000) + 500)
		}
		tr := &trace.Trace{
			Name: "random-types", Tau: 1.0 / 30,
			GOP: mpeg.GOP{M: 3, N: 9}, Sizes: sizes, Types: types,
		}
		k := rng.Intn(4) + 1
		cfg := Config{
			K:         k,
			H:         rng.Intn(12) + 1,
			D:         float64(k+1)*tr.Tau + rng.Float64()*0.2,
			Estimator: NearestTypeEstimator{},
		}
		s, err := Smooth(tr, cfg)
		if err != nil {
			return false
		}
		return s.CheckDelayBound() == -1 &&
			s.CheckContinuousService() == -1 &&
			s.CheckRatesWithinBounds() == -1 &&
			s.CheckConservation() == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveCSVRoundTrip(t *testing.T) {
	tr := adaptiveTrace(45, 7)
	var err error
	tr, err = tr.Slice(0, 45)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Types == nil {
		t.Fatal("Slice dropped explicit types")
	}
}
