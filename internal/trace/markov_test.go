package trace

import (
	"testing"

	"mpegsmooth/internal/mpeg"
)

func markovBase() MarkovConfig {
	return MarkovConfig{
		Name:  "mm",
		GOP:   mpeg.GOP{M: 3, N: 9},
		IBase: 200_000, PBase: 90_000, BBase: 30_000,
		States: []MarkovState{
			{Name: "calm", Complexity: 0.6, Motion: 0.2, MeanDwell: 60},
			{Name: "busy", Complexity: 1.0, Motion: 1.2, MeanDwell: 60},
		},
		Pictures: 540,
		Seed:     11,
	}
}

func TestGenerateMarkovBasics(t *testing.T) {
	tr, err := GenerateMarkov(markovBase())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 540 {
		t.Fatalf("len %d", tr.Len())
	}
	// Deterministic per seed.
	tr2, err := GenerateMarkov(markovBase())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Sizes {
		if tr.Sizes[i] != tr2.Sizes[i] {
			t.Fatal("same seed produced different traces")
		}
	}
	cfg := markovBase()
	cfg.Seed = 12
	tr3, err := GenerateMarkov(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range tr.Sizes {
		if tr.Sizes[i] != tr3.Sizes[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateMarkovStateModulation(t *testing.T) {
	// With long dwells, pattern rates should be bimodal: the trace
	// spends time at two clearly different scene-level rates.
	tr, err := GenerateMarkov(markovBase())
	if err != nil {
		t.Fatal(err)
	}
	rates := tr.PatternRates()
	min, max := rates[0], rates[0]
	for _, r := range rates {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	if max < 1.5*min {
		t.Fatalf("pattern rates not visibly modulated: min %.0f max %.0f", min, max)
	}
}

func TestGenerateMarkovSmoothable(t *testing.T) {
	// The Markov trace is a drop-in workload: Theorem 1 must hold.
	tr, err := GenerateMarkov(markovBase())
	if err != nil {
		t.Fatal(err)
	}
	if tr.GOP.Pattern() != "IBBPBBPBB" {
		t.Fatal("pattern wrong")
	}
	// Smoothing happens in core; here just confirm the trace validates
	// and has the expected I>P>B structure.
	st := tr.Stats()
	if !(st[mpeg.TypeI].Mean > st[mpeg.TypeP].Mean && st[mpeg.TypeP].Mean > st[mpeg.TypeB].Mean) {
		t.Fatalf("ordering violated: %+v", st)
	}
}

func TestGenerateMarkovValidation(t *testing.T) {
	for name, mut := range map[string]func(*MarkovConfig){
		"no states":      func(c *MarkovConfig) { c.States = nil },
		"bad dwell":      func(c *MarkovConfig) { c.States[0].MeanDwell = 0.5 },
		"zero pictures":  func(c *MarkovConfig) { c.Pictures = 0 },
		"bad base":       func(c *MarkovConfig) { c.IBase = 0 },
		"bad gop":        func(c *MarkovConfig) { c.GOP = mpeg.GOP{M: 3, N: 10} },
		"short row":      func(c *MarkovConfig) { c.Transitions = [][]float64{{0, 1}} },
		"non stochastic": func(c *MarkovConfig) { c.Transitions = [][]float64{{0, 0.5}, {1, 0}} },
		"self loop":      func(c *MarkovConfig) { c.Transitions = [][]float64{{0.5, 0.5}, {1, 0}} },
		"negative":       func(c *MarkovConfig) { c.Transitions = [][]float64{{0, -1}, {1, 0}} },
	} {
		cfg := markovBase()
		mut(&cfg)
		if _, err := GenerateMarkov(cfg); err == nil {
			t.Errorf("%s should fail", name)
		}
	}
	// Explicit valid transitions work.
	cfg := markovBase()
	cfg.Transitions = [][]float64{{0, 1}, {1, 0}}
	if _, err := GenerateMarkov(cfg); err != nil {
		t.Fatal(err)
	}
	// Single state works (no transitions ever taken).
	cfg = markovBase()
	cfg.States = cfg.States[:1]
	cfg.Transitions = nil
	if _, err := GenerateMarkov(cfg); err != nil {
		t.Fatal(err)
	}
}
