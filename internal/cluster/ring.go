// Package cluster turns smoothd into a small replicated fleet: a
// primary streams its journal's record feed to warm-standby followers,
// a follower promotes itself on primary death and serves resumes from
// the replicated watermark, and a consistent-hash ring places streams
// across shards so the whole fleet — not one process — holds the
// session table.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVnodes is the per-node virtual-node count: enough points that
// three nodes split the key space within a ~1.3 max/min load ratio,
// small enough that ring construction and lookup stay trivial.
const DefaultVnodes = 64

// splitmix64 is the finalizer that spreads both vnode point hashes and
// lookup keys over the full 64-bit circle. Resume tokens and hello
// nonces are crypto-random already, but the finalizer also protects the
// ring against adversarial or structured keys (sequential fallback
// tokens, low-entropy nonces).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint64
	node int // index into names
}

// Ring is a consistent-hash ring over shard names. Construction is
// deterministic: the same member set yields the same ring in every
// process regardless of insertion order, so every node routes every key
// identically without coordination.
type Ring struct {
	names  []string
	points []ringPoint
}

// NewRing builds a ring with vnodes virtual nodes per name (0 =
// DefaultVnodes). Names are deduplicated and sorted, so member-set
// equality implies ring equality.
func NewRing(names []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := map[string]bool{}
	var uniq []string
	for _, n := range names {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty shard name")
		}
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard")
	}
	sort.Strings(uniq)
	r := &Ring{names: uniq}
	for i, name := range uniq {
		for v := 0; v < vnodes; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", name, v)
			r.points = append(r.points, ringPoint{hash: splitmix64(h.Sum64()), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// A full 64-bit collision between two vnode points is vanishingly
		// unlikely; break it by name order so construction stays
		// deterministic anyway.
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// Owner returns the shard that owns key: the first vnode point at or
// after the key's position on the circle, wrapping at the top.
func (r *Ring) Owner(key uint64) string {
	h := splitmix64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.names[r.points[i].node]
}

// Nodes returns the ring's member names, sorted.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.names...)
}
