// Package video provides planar YCbCr 4:2:0 frames and deterministic
// synthetic video content used to exercise the MPEG codec.
//
// The four MPEG sequences evaluated by Lam/Chow/Yau (Driving1, Driving2,
// Tennis, Backyard) came from real captured video that is not available;
// this package synthesizes moving scenes with controllable detail, motion,
// and scene cuts so that the encoder produces genuinely I ≫ P ≫ B shaped
// output on content with the same qualitative structure.
package video

import (
	"fmt"
	"math"
)

// Frame is a planar YCbCr image with 4:2:0 chroma subsampling: the Cb and
// Cr planes each cover 2x2 luma pixels per sample, mirroring MPEG's
// macroblock structure (four 8x8 Y blocks + one Cb + one Cr per 16x16
// macroblock).
type Frame struct {
	W, H       int // luma dimensions; must be multiples of 16
	Y          []uint8
	Cb, Cr     []uint8
	DisplayIdx int // position in display order, set by generators
}

// NewFrame allocates a frame. w and h must be positive multiples of 16
// (whole macroblocks).
func NewFrame(w, h int) (*Frame, error) {
	if w <= 0 || h <= 0 || w%16 != 0 || h%16 != 0 {
		return nil, fmt.Errorf("video: frame size %dx%d not a positive multiple of 16", w, h)
	}
	return &Frame{
		W:  w,
		H:  h,
		Y:  make([]uint8, w*h),
		Cb: make([]uint8, w*h/4),
		Cr: make([]uint8, w*h/4),
	}, nil
}

// MustNewFrame is NewFrame for statically valid sizes.
func MustNewFrame(w, h int) *Frame {
	f, err := NewFrame(w, h)
	if err != nil {
		panic(err)
	}
	return f
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	g := &Frame{W: f.W, H: f.H, DisplayIdx: f.DisplayIdx}
	g.Y = append([]uint8(nil), f.Y...)
	g.Cb = append([]uint8(nil), f.Cb...)
	g.Cr = append([]uint8(nil), f.Cr...)
	return g
}

// ChromaW returns the width of the chroma planes.
func (f *Frame) ChromaW() int { return f.W / 2 }

// ChromaH returns the height of the chroma planes.
func (f *Frame) ChromaH() int { return f.H / 2 }

// MacroblocksX returns the number of macroblock columns.
func (f *Frame) MacroblocksX() int { return f.W / 16 }

// MacroblocksY returns the number of macroblock rows.
func (f *Frame) MacroblocksY() int { return f.H / 16 }

// Fill sets every sample of the frame to the given YCbCr triple.
func (f *Frame) Fill(y, cb, cr uint8) {
	for i := range f.Y {
		f.Y[i] = y
	}
	for i := range f.Cb {
		f.Cb[i] = cb
		f.Cr[i] = cr
	}
}

// PSNR computes the luma peak signal-to-noise ratio between two frames of
// identical dimensions, in dB. Identical frames return +Inf.
func PSNR(a, b *Frame) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("video: PSNR dimension mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	var se float64
	for i := range a.Y {
		d := float64(int(a.Y[i]) - int(b.Y[i]))
		se += d * d
	}
	if se == 0 {
		return math.Inf(1), nil
	}
	mse := se / float64(len(a.Y))
	return 10 * math.Log10(255*255/mse), nil
}

// RGBToYCbCr converts an 8-bit RGB triple to ITU-R BT.601 YCbCr, the
// transform MPEG applies before coding (Section 2).
func RGBToYCbCr(r, g, b uint8) (y, cb, cr uint8) {
	rf, gf, bf := float64(r), float64(g), float64(b)
	yf := 0.299*rf + 0.587*gf + 0.114*bf
	cbf := 128 - 0.168736*rf - 0.331264*gf + 0.5*bf
	crf := 128 + 0.5*rf - 0.418688*gf - 0.081312*bf
	return clamp8(yf), clamp8(cbf), clamp8(crf)
}

// YCbCrToRGB inverts RGBToYCbCr.
func YCbCrToRGB(y, cb, cr uint8) (r, g, b uint8) {
	yf, cbf, crf := float64(y), float64(cb)-128, float64(cr)-128
	return clamp8(yf + 1.402*crf),
		clamp8(yf - 0.344136*cbf - 0.714136*crf),
		clamp8(yf + 1.772*cbf)
}

func clamp8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}
