// Package journal is smoothd's write-ahead log: an append-only,
// CRC-framed, fsync-on-commit record of the exactly-once session facts
// — stream admitted, watermark advanced, stream completed, state
// expired — so the nonce ledger, admission reservations, parked-stream
// table, and completion tombstones survive a server crash. PR 4 made
// the session protocol exactly-once in memory; this package extends the
// state machine across process death: a ResumableSender that redials
// after a crash finds its stream parked at the journaled watermark (or
// tombstoned with its final hash) instead of rejected as unknown.
//
// Layout: the journal directory holds numbered segments
// (seg-00000001.wal …), each starting with a magic header and holding
// framed records
//
//	kind (1) | bodyLen (4) | body | crc32 (4)
//
// where the CRC covers kind|len|body. Records that commit a fact a
// peer may act on (admission, completion, expiry) are fsynced before
// the corresponding verdict or ack leaves the server; watermark records
// are coalesced per stream and flushed on a timer, so the per-picture
// hot path never waits on a disk. Losing the last flush interval of
// watermarks is safe: the sender replays from an older watermark and
// the server re-accepts idempotently.
//
// Durable appends go through a group commit (see DESIGN.md §14):
// concurrent committers enqueue their pre-encoded frames on a commit
// queue and the caller at the front becomes the batch leader, writing
// every queued frame with one write and one fsync while the lock is
// released — so more committers keep joining the next batch during the
// disk wait. Each caller still blocks until *its* record is durable,
// which preserves the ordering invariant byte-for-byte: a verdict or
// ack never leaves the server before its record has been fsynced.
//
// Recovery replays segments in order, verifying every CRC. A torn tail
// — a record cut short by the crash — is truncated deterministically:
// the scan stops at the first record that fails length or CRC checks,
// and the active segment is physically cut back to the last good
// record. Replay is idempotent (admits never resurrect tombstoned
// streams, watermarks only advance, completions overwrite), which makes
// every crash window safe, including a crash during compaction that
// leaves duplicate records in both an old segment and its snapshot.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"mpegsmooth/internal/mpeg"
	"mpegsmooth/internal/transport"
)

// Record kinds.
const (
	kindAdmit     byte = 'A'
	kindWatermark byte = 'W'
	kindComplete  byte = 'C'
	kindExpire    byte = 'X'
	kindEpoch     byte = 'E'
)

// segMagic opens every segment file; a version bump invalidates old
// journals loudly instead of misparsing them.
var segMagic = []byte("MSJ1")

// maxRecordBody bounds a record body during scanning, so a corrupt
// length field reads as a torn record rather than a giant allocation.
const maxRecordBody = 4096

// maxHashState bounds the persisted prefix-hash state (SHA-256 chain =
// 32 bytes; FNV = 8).
const maxHashState = 64

// DefaultSegmentBytes rotates (and compacts) the active segment once it
// exceeds this size.
const DefaultSegmentBytes = 1 << 20

// DefaultFlushInterval batches watermark records.
const DefaultFlushInterval = 25 * time.Millisecond

// DefaultCommitBytes closes an open commit window early once this many
// encoded record bytes are queued.
const DefaultCommitBytes = 64 << 10

var (
	errClosed = errors.New("journal: closed")
	errBroken = errors.New("journal: broken (unrepairable append failure)")
)

// ExpireReason says why journaled state was dropped.
type ExpireReason byte

const (
	// ExpireFailed: the stream failed terminally (its reservation was
	// released).
	ExpireFailed ExpireReason = iota
	// ExpireResumeWindow: a parked stream's resume window lapsed with no
	// reconnect.
	ExpireResumeWindow
	// ExpireTombstone: a completion tombstone aged out.
	ExpireTombstone
)

// StreamRecord is the journaled state of one live (possibly parked)
// stream: everything recovery needs to rebuild the session — the hello
// (bit-exact, so nonce dedup still compares equal), the resume token,
// the accept watermark, and the prefix hash state at that watermark.
type StreamRecord struct {
	Token     uint64
	Hello     transport.StreamHello
	Watermark int
	HashState []byte
}

// TombstoneRecord is the journaled state of a completed stream: enough
// to answer a late resume with a hash-verified AlreadyComplete verdict.
type TombstoneRecord struct {
	Token     uint64
	Nonce     uint64
	Pictures  int
	HashState []byte
	Expires   time.Time
}

// State is the replayed journal: live streams and completion tombstones
// by resume token, plus the highest primary epoch the journal has
// witnessed (see the epoch record kind).
type State struct {
	Streams    map[uint64]*StreamRecord
	Tombstones map[uint64]*TombstoneRecord
	// Epoch is the highest epoch record replayed: the fencing term of
	// the last primary whose authority this journal acknowledged. Zero
	// means the journal predates any promotion.
	Epoch uint64
}

func newState() State {
	return State{Streams: map[uint64]*StreamRecord{}, Tombstones: map[uint64]*TombstoneRecord{}}
}

// clone deep-copies the state so callers can mutate their view.
func (s State) clone() State {
	out := newState()
	out.Epoch = s.Epoch
	for k, v := range s.Streams {
		cp := *v
		cp.HashState = append([]byte(nil), v.HashState...)
		out.Streams[k] = &cp
	}
	for k, v := range s.Tombstones {
		cp := *v
		cp.HashState = append([]byte(nil), v.HashState...)
		out.Tombstones[k] = &cp
	}
	return out
}

// apply folds one record into the state. The rules make replay
// idempotent under arbitrary duplication (the crash-during-compaction
// shape): admits never overwrite or resurrect, watermarks only advance,
// completions and expiries are absorbing.
func (s *State) apply(r Record) {
	switch r.Kind {
	case kindAdmit:
		if _, dead := s.Tombstones[r.Stream.Token]; dead {
			return
		}
		if _, live := s.Streams[r.Stream.Token]; live {
			return
		}
		cp := r.Stream
		cp.HashState = append([]byte(nil), r.Stream.HashState...)
		s.Streams[cp.Token] = &cp
	case kindWatermark:
		st, ok := s.Streams[r.Token]
		if !ok || r.Watermark <= st.Watermark {
			return
		}
		st.Watermark = r.Watermark
		st.HashState = append(st.HashState[:0], r.HashState...)
	case kindComplete:
		delete(s.Streams, r.Tomb.Token)
		cp := r.Tomb
		cp.HashState = append([]byte(nil), r.Tomb.HashState...)
		s.Tombstones[cp.Token] = &cp
	case kindExpire:
		if r.Reason == ExpireTombstone {
			delete(s.Tombstones, r.Token)
		} else {
			delete(s.Streams, r.Token)
		}
	case kindEpoch:
		// Epochs are monotone: a duplicate or stale epoch record (replay,
		// compaction overlap) never winds the term backwards.
		if r.Epoch > s.Epoch {
			s.Epoch = r.Epoch
		}
	}
}

// Record is one decoded journal entry. Only the fields for its Kind are
// meaningful.
type Record struct {
	Kind      byte
	Stream    StreamRecord    // kindAdmit
	Token     uint64          // kindWatermark, kindExpire
	Watermark int             // kindWatermark
	HashState []byte          // kindWatermark
	Tomb      TombstoneRecord // kindComplete
	Nonce     uint64          // kindExpire
	Reason    ExpireReason    // kindExpire
	Epoch     uint64          // kindEpoch
}

// Frame encoders append a complete framed record — kind | len | body |
// crc — to dst and return the extended slice. They are append-style so
// the group-commit path can encode straight into a reused batch buffer
// with no per-record allocation.

// beginFrame reserves the kind and length header; finishFrame patches
// the length and appends the CRC once the body is in place.
func beginFrame(dst []byte, kind byte) []byte {
	return append(dst, kind, 0, 0, 0, 0)
}

func finishFrame(dst []byte, start int) []byte {
	binary.BigEndian.PutUint32(dst[start+1:start+5], uint32(len(dst)-start-5))
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

func appendAdmitFrame(dst []byte, rec StreamRecord) []byte {
	start := len(dst)
	dst = beginFrame(dst, kindAdmit)
	h := rec.Hello
	dst = binary.BigEndian.AppendUint64(dst, rec.Token)
	dst = binary.BigEndian.AppendUint64(dst, h.Nonce)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(h.Tau))
	dst = binary.BigEndian.AppendUint16(dst, uint16(h.GOP.N))
	dst = binary.BigEndian.AppendUint16(dst, uint16(h.GOP.M))
	dst = binary.BigEndian.AppendUint16(dst, uint16(h.K))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(h.D))
	dst = binary.BigEndian.AppendUint32(dst, uint32(h.Pictures))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(h.PeakRate))
	dst = append(dst, byte(h.Integrity))
	return finishFrame(dst, start)
}

func appendWatermarkFrame(dst []byte, token uint64, mark int, state []byte) []byte {
	start := len(dst)
	dst = beginFrame(dst, kindWatermark)
	dst = binary.BigEndian.AppendUint64(dst, token)
	dst = binary.BigEndian.AppendUint32(dst, uint32(mark))
	dst = append(dst, byte(len(state)))
	dst = append(dst, state...)
	return finishFrame(dst, start)
}

func appendCompleteFrame(dst []byte, rec TombstoneRecord) []byte {
	start := len(dst)
	dst = beginFrame(dst, kindComplete)
	dst = binary.BigEndian.AppendUint64(dst, rec.Token)
	dst = binary.BigEndian.AppendUint64(dst, rec.Nonce)
	dst = binary.BigEndian.AppendUint32(dst, uint32(rec.Pictures))
	dst = binary.BigEndian.AppendUint64(dst, uint64(rec.Expires.UnixNano()))
	dst = append(dst, byte(len(rec.HashState)))
	dst = append(dst, rec.HashState...)
	return finishFrame(dst, start)
}

func appendExpireFrame(dst []byte, token, nonce uint64, reason ExpireReason) []byte {
	start := len(dst)
	dst = beginFrame(dst, kindExpire)
	dst = binary.BigEndian.AppendUint64(dst, token)
	dst = binary.BigEndian.AppendUint64(dst, nonce)
	dst = append(dst, byte(reason))
	return finishFrame(dst, start)
}

func appendEpochFrame(dst []byte, epoch uint64) []byte {
	start := len(dst)
	dst = beginFrame(dst, kindEpoch)
	dst = binary.BigEndian.AppendUint64(dst, epoch)
	return finishFrame(dst, start)
}

// Single-frame wrappers, used by the segment fuzzers and tests.
func encodeAdmit(rec StreamRecord) []byte { return appendAdmitFrame(nil, rec) }

func encodeWatermark(token uint64, mark int, state []byte) []byte {
	return appendWatermarkFrame(nil, token, mark, state)
}

func encodeComplete(rec TombstoneRecord) []byte { return appendCompleteFrame(nil, rec) }

func encodeExpire(token, nonce uint64, reason ExpireReason) []byte {
	return appendExpireFrame(nil, token, nonce, reason)
}

// decodeBody interprets a CRC-verified record body.
func decodeBody(kind byte, body []byte) (Record, error) {
	bad := func(format string, a ...any) (Record, error) {
		return Record{}, fmt.Errorf("journal: %c record "+format, append([]any{kind}, a...)...)
	}
	switch kind {
	case kindAdmit:
		if len(body) != 51 {
			return bad("body %d bytes, want 51", len(body))
		}
		rec := StreamRecord{
			Token: binary.BigEndian.Uint64(body[0:8]),
			Hello: transport.StreamHello{
				Nonce: binary.BigEndian.Uint64(body[8:16]),
				Tau:   math.Float64frombits(binary.BigEndian.Uint64(body[16:24])),
				GOP: mpeg.GOP{
					N: int(binary.BigEndian.Uint16(body[24:26])),
					M: int(binary.BigEndian.Uint16(body[26:28])),
				},
				K:         int(binary.BigEndian.Uint16(body[28:30])),
				D:         math.Float64frombits(binary.BigEndian.Uint64(body[30:38])),
				Pictures:  int(binary.BigEndian.Uint32(body[38:42])),
				PeakRate:  math.Float64frombits(binary.BigEndian.Uint64(body[42:50])),
				Integrity: transport.IntegrityMode(body[50]),
			},
		}
		if rec.Token == 0 {
			return bad("zero token")
		}
		if err := rec.Hello.Validate(); err != nil {
			return bad("hello: %v", err)
		}
		return Record{Kind: kind, Stream: rec}, nil
	case kindWatermark:
		if len(body) < 13 {
			return bad("body %d bytes, want >= 13", len(body))
		}
		n := int(body[12])
		if n > maxHashState || len(body) != 13+n {
			return bad("state length %d in %d-byte body", n, len(body))
		}
		return Record{
			Kind:      kind,
			Token:     binary.BigEndian.Uint64(body[0:8]),
			Watermark: int(binary.BigEndian.Uint32(body[8:12])),
			HashState: append([]byte(nil), body[13:13+n]...),
		}, nil
	case kindComplete:
		if len(body) < 29 {
			return bad("body %d bytes, want >= 29", len(body))
		}
		n := int(body[28])
		if n > maxHashState || len(body) != 29+n {
			return bad("state length %d in %d-byte body", n, len(body))
		}
		return Record{Kind: kind, Tomb: TombstoneRecord{
			Token:     binary.BigEndian.Uint64(body[0:8]),
			Nonce:     binary.BigEndian.Uint64(body[8:16]),
			Pictures:  int(binary.BigEndian.Uint32(body[16:20])),
			Expires:   time.Unix(0, int64(binary.BigEndian.Uint64(body[20:28]))),
			HashState: append([]byte(nil), body[29:29+n]...),
		}}, nil
	case kindExpire:
		if len(body) != 17 {
			return bad("body %d bytes, want 17", len(body))
		}
		reason := ExpireReason(body[16])
		if reason > ExpireTombstone {
			return bad("unknown reason %d", body[16])
		}
		return Record{
			Kind:   kind,
			Token:  binary.BigEndian.Uint64(body[0:8]),
			Nonce:  binary.BigEndian.Uint64(body[8:16]),
			Reason: reason,
		}, nil
	case kindEpoch:
		if len(body) != 8 {
			return bad("body %d bytes, want 8", len(body))
		}
		epoch := binary.BigEndian.Uint64(body)
		if epoch == 0 {
			return bad("zero epoch")
		}
		return Record{Kind: kind, Epoch: epoch}, nil
	}
	return Record{}, fmt.Errorf("journal: unknown record kind %#02x", kind)
}

// ScanSegment parses one segment's bytes. It returns every record up to
// the first damage, plus valid — the byte offset of the last good
// record's end (the deterministic truncation point). err is non-nil
// when damage was found; a fully clean segment returns valid ==
// len(data) and a nil error. Scanning data[:valid] again yields the
// identical records and no error: truncation is a fixed point.
func ScanSegment(data []byte) (recs []Record, valid int, err error) {
	if len(data) < len(segMagic) {
		return nil, 0, errors.New("journal: segment shorter than its magic")
	}
	if string(data[:len(segMagic)]) != string(segMagic) {
		return nil, 0, errors.New("journal: bad segment magic")
	}
	off := len(segMagic)
	for off < len(data) {
		rec, n, perr := ParseFrame(data[off:])
		if perr != nil {
			return recs, off, fmt.Errorf("journal: record at %d: %w", off, perr)
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, off, nil
}

// ParseFrame decodes the single framed record at the front of b,
// verifying its length bounds and CRC, and returns the record plus its
// encoded size. It is the unit the segment scanner and the replication
// feed share: a feed consumer parses each published frame with it and
// must always consume the frame exactly.
func ParseFrame(b []byte) (Record, int, error) {
	if len(b) < 9 {
		return Record{}, 0, errors.New("torn record header")
	}
	kind := b[0]
	n := int(binary.BigEndian.Uint32(b[1:5]))
	if n > maxRecordBody {
		return Record{}, 0, fmt.Errorf("declares %d-byte body", n)
	}
	if len(b) < 9+n {
		return Record{}, 0, errors.New("torn record body")
	}
	sum := crc32.ChecksumIEEE(b[:5+n])
	if got := binary.BigEndian.Uint32(b[5+n : 9+n]); got != sum {
		return Record{}, 0, fmt.Errorf("crc %08x, want %08x", got, sum)
	}
	rec, derr := decodeBody(kind, b[5:5+n])
	if derr != nil {
		return Record{}, 0, derr
	}
	return rec, 9 + n, nil
}

// Config parameterizes a Journal.
type Config struct {
	// Dir is the journal directory (used when FS is nil).
	Dir string
	// FS overrides the filesystem (tests: MemFS, FaultFS, CrashFS).
	FS FS
	// SegmentBytes triggers rotation + compaction past this active
	// segment size (default DefaultSegmentBytes).
	SegmentBytes int64
	// FlushInterval batches coalesced watermark records (default
	// DefaultFlushInterval; < 0 disables the background flusher — tests
	// then call Flush explicitly).
	FlushInterval time.Duration
	// CommitWindow, when positive, keeps each commit batch open that
	// long before the leader writes and fsyncs it, trading commit
	// latency for bigger batches. Zero (the default) relies on natural
	// batching alone: whatever queued behind the in-flight fsync forms
	// the next batch.
	CommitWindow time.Duration
	// CommitBytes closes an open commit window early once this many
	// encoded record bytes are queued (default DefaultCommitBytes).
	// Only meaningful when CommitWindow > 0.
	CommitBytes int
	// Logf, when set, receives repair and replay notes.
	Logf func(format string, args ...any)
}

// Stats counts journal activity for the ops endpoint.
type Stats struct {
	Segments            int   `json:"segments"`
	ActiveSegmentBytes  int64 `json:"active_segment_bytes"`
	Appends             int64 `json:"appends"`
	AppendedBytes       int64 `json:"appended_bytes"`
	Fsyncs              int64 `json:"fsyncs"`
	WatermarksCoalesced int64 `json:"watermarks_coalesced"`
	WatermarkBatches    int64 `json:"watermark_batches"`
	Rotations           int64 `json:"rotations"`
	ReplayedRecords     int   `json:"replayed_records"`
	ReplayedSegments    int   `json:"replayed_segments"`
	TruncatedTailBytes  int64 `json:"truncated_tail_bytes"`
	AppendErrors        int64 `json:"append_errors"`
	LiveStreams         int   `json:"live_streams"`
	LiveTombstones      int   `json:"live_tombstones"`

	// Group-commit batching: how many leader-led batches committed, the
	// records they carried (avg batch size = records/batches), the
	// largest single batch, total leader time spent in write+fsync
	// (avg commit latency = nanos/batches), and how many committers are
	// parked on the queue right now.
	CommitBatches      int64 `json:"commit_batches"`
	CommitBatchRecords int64 `json:"commit_batch_records"`
	CommitMaxBatch     int64 `json:"commit_max_batch"`
	CommitNanos        int64 `json:"commit_nanos"`
	CommitPending      int   `json:"commit_pending"`
}

// wmEntry is one coalesced pending watermark. Its state buffer is owned
// by the journal (copied from the caller's scratch) and recycled through
// wmFree at flush time, so the per-picture path settles at zero
// allocations.
type wmEntry struct {
	mark  int
	state []byte
}

// commitWaiter is one committer's stake in a group-commit batch: its
// pre-encoded frames (buf, with per-frame end offsets in ends), the
// decoded records to fold into the state after the fsync lands, and the
// promise fields the batch leader resolves. Waiters are recycled
// through a freelist so steady-state commits allocate nothing.
type commitWaiter struct {
	buf  []byte
	ends []int
	recs []Record

	seq  uint64
	err  error
	done bool
}

func (w *commitWaiter) addAdmit(rec StreamRecord) {
	w.buf = appendAdmitFrame(w.buf, rec)
	w.ends = append(w.ends, len(w.buf))
	w.recs = append(w.recs, Record{Kind: kindAdmit, Stream: rec})
}

// addWatermark points the record's HashState into the frame bytes just
// encoded (body layout: token 8 | mark 4 | len 1 | state), so the
// caller's state buffer can be recycled the moment this returns.
func (w *commitWaiter) addWatermark(token uint64, mark int, state []byte) {
	start := len(w.buf)
	w.buf = appendWatermarkFrame(w.buf, token, mark, state)
	var hs []byte
	if len(state) > 0 {
		hs = w.buf[start+18 : start+18+len(state)]
	}
	w.ends = append(w.ends, len(w.buf))
	w.recs = append(w.recs, Record{Kind: kindWatermark, Token: token, Watermark: mark, HashState: hs})
}

func (w *commitWaiter) addComplete(rec TombstoneRecord) {
	w.buf = appendCompleteFrame(w.buf, rec)
	w.ends = append(w.ends, len(w.buf))
	w.recs = append(w.recs, Record{Kind: kindComplete, Tomb: rec})
}

func (w *commitWaiter) addExpire(token, nonce uint64, reason ExpireReason) {
	w.buf = appendExpireFrame(w.buf, token, nonce, reason)
	w.ends = append(w.ends, len(w.buf))
	w.recs = append(w.recs, Record{Kind: kindExpire, Token: token, Nonce: nonce, Reason: reason})
}

func (w *commitWaiter) addEpoch(epoch uint64) {
	w.buf = appendEpochFrame(w.buf, epoch)
	w.ends = append(w.ends, len(w.buf))
	w.recs = append(w.recs, Record{Kind: kindEpoch, Epoch: epoch})
}

// Journal is an open write-ahead log. All methods are safe for
// concurrent use.
type Journal struct {
	cfg Config
	fs  FS

	mu         sync.Mutex
	active     File
	activeName string
	activeSize int64
	seq        uint64
	segments   []string
	state      State
	recovered  State
	dirty      map[uint64]wmEntry
	wmFree     [][]byte
	stats      Stats
	broken     bool
	closing    bool
	closed     bool

	// Group commit. commitQ holds enqueued waiters in arrival order;
	// the waiter at the front leads the batch. committing is true while
	// a leader owns the active file (possibly with mu released for the
	// write+fsync); commitCond is broadcast whenever a batch resolves.
	// commitWake cuts an open commit window short (CommitBytes reached,
	// or Abandon). commitSpare/batchBuf/waiterFree are reuse pools.
	commitCond   sync.Cond
	commitQ      []*commitWaiter
	commitSpare  []*commitWaiter
	commitQBytes int
	committing   bool
	commitWake   chan struct{}
	batchBuf     []byte
	waiterFree   []*commitWaiter

	// The record feed (see tail.go): committed frames are published to
	// subscribers under j.mu, and the cursor counts what was published.
	subs     map[uint64]chan []byte
	nextSub  uint64
	pubRecs  uint64
	pubBytes uint64

	flushStop chan struct{}
	flushDone chan struct{}
}

func (c *Config) withDefaults() (Config, error) {
	cfg := *c
	if cfg.FS == nil {
		if cfg.Dir == "" {
			return cfg, errors.New("journal: Config needs Dir or FS")
		}
		fs, err := DirFS(cfg.Dir)
		if err != nil {
			return cfg, err
		}
		cfg.FS = fs
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if cfg.FlushInterval == 0 {
		cfg.FlushInterval = DefaultFlushInterval
	}
	if cfg.CommitWindow < 0 {
		cfg.CommitWindow = 0
	}
	if cfg.CommitBytes <= 0 {
		cfg.CommitBytes = DefaultCommitBytes
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return cfg, nil
}

func segName(seq uint64) string { return fmt.Sprintf("seg-%08d.wal", seq) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(name, "seg-%08d.wal", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// Open replays the journal directory, truncates any torn tail in the
// final segment, compacts the replayed state into a fresh snapshot
// segment (bounding both recovery time and disk growth), and returns
// the journal ready for appends. The replayed state is available via
// State.
func Open(cfg Config) (*Journal, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	j := &Journal{
		cfg:        full,
		fs:         full.FS,
		state:      newState(),
		dirty:      map[uint64]wmEntry{},
		subs:       map[uint64]chan []byte{},
		commitWake: make(chan struct{}, 1),
	}
	j.commitCond.L = &j.mu
	if err := j.replay(); err != nil {
		return nil, err
	}
	j.recovered = j.state.clone()
	// Startup compaction: everything live goes into one fresh segment,
	// and the (possibly torn, possibly duplicated) history is deleted.
	j.mu.Lock()
	err = j.rotateLocked()
	j.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if full.FlushInterval > 0 {
		j.flushStop = make(chan struct{})
		j.flushDone = make(chan struct{})
		go j.flusher(full.FlushInterval, j.flushStop, j.flushDone)
	}
	return j, nil
}

// replay loads every segment in sequence order into j.state.
func (j *Journal) replay() error {
	names, err := j.fs.ReadDir()
	if err != nil {
		return fmt.Errorf("journal: listing segments: %w", err)
	}
	type seg struct {
		name string
		seq  uint64
	}
	var segs []seg
	for _, n := range names {
		if s, ok := parseSegName(n); ok {
			segs = append(segs, seg{name: n, seq: s})
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].seq < segs[b].seq })
	for i, sg := range segs {
		data, err := j.fs.ReadFile(sg.name)
		if err != nil {
			return fmt.Errorf("journal: reading %s: %w", sg.name, err)
		}
		if len(data) == 0 {
			// A crash between segment creation and the magic write leaves
			// an empty file: nothing to replay.
			j.cfg.Logf("journal: %s is empty (crash before header); skipping", sg.name)
			continue
		}
		recs, valid, scanErr := ScanSegment(data)
		if scanErr != nil {
			// Damage. In the final segment this is the expected torn tail
			// of a crash mid-append; anywhere else it still truncates the
			// replay of that segment at the last good record — the
			// idempotent records after it (in later segments or the
			// snapshot) reconstruct what can be reconstructed.
			torn := int64(len(data) - valid)
			j.stats.TruncatedTailBytes += torn
			j.cfg.Logf("journal: %s: %v; dropping %d-byte tail (%d records kept)",
				sg.name, scanErr, torn, len(recs))
			if i == len(segs)-1 && valid > 0 {
				if terr := j.fs.Truncate(sg.name, int64(valid)); terr != nil {
					return fmt.Errorf("journal: truncating torn tail of %s: %w", sg.name, terr)
				}
			}
		}
		for _, r := range recs {
			j.state.apply(r)
		}
		j.stats.ReplayedRecords += len(recs)
		j.stats.ReplayedSegments++
		j.segments = append(j.segments, sg.name)
		if sg.seq > j.seq {
			j.seq = sg.seq
		}
	}
	return nil
}

// State returns the state recovered at Open — what the server rebuilds
// its ledgers from.
func (j *Journal) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recovered.clone()
}

// Stats returns a snapshot of the journal counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := j.stats
	s.Segments = len(j.segments)
	s.ActiveSegmentBytes = j.activeSize
	s.LiveStreams = len(j.state.Streams)
	s.LiveTombstones = len(j.state.Tombstones)
	s.CommitPending = len(j.commitQ)
	return s
}

// appendableLocked gates new commits. Caller holds j.mu.
func (j *Journal) appendableLocked() error {
	if j.closing || j.closed {
		return errClosed
	}
	if j.broken {
		return errBroken
	}
	return nil
}

// getWaiterLocked / putWaiterLocked recycle commitWaiters (and their
// encode buffers) so steady-state durable appends allocate nothing.
// Caller holds j.mu.
func (j *Journal) getWaiterLocked() *commitWaiter {
	if n := len(j.waiterFree); n > 0 {
		w := j.waiterFree[n-1]
		j.waiterFree = j.waiterFree[:n-1]
		return w
	}
	return &commitWaiter{}
}

func (j *Journal) putWaiterLocked(w *commitWaiter) {
	if len(j.waiterFree) >= 64 {
		return
	}
	w.buf = w.buf[:0]
	w.ends = w.ends[:0]
	w.recs = w.recs[:0]
	w.seq, w.err, w.done = 0, nil, false
	j.waiterFree = append(j.waiterFree, w)
}

// commitLocked enqueues w and blocks until a batch leader has made it
// durable (or failed it). The committer at the front of the queue
// becomes the leader for everything queued at that moment; everyone
// else parks on commitCond. Because the leader performs its write+fsync
// with j.mu released, new committers keep enqueuing *during* the disk
// wait and form the next batch — the natural coalescing that makes
// group commit pay even with CommitWindow zero. Caller holds j.mu and
// still holds it on return; the caller reads w.seq/w.err and recycles w.
func (j *Journal) commitLocked(w *commitWaiter) (uint64, error) {
	j.commitQ = append(j.commitQ, w)
	j.commitQBytes += len(w.buf)
	if j.committing && j.commitQBytes >= j.cfg.CommitBytes {
		// Enough queued: if the leader is holding a commit window open,
		// cut it short.
		select {
		case j.commitWake <- struct{}{}:
		default:
		}
	}
	for {
		if w.done {
			return w.seq, w.err
		}
		if !j.committing && j.commitQ[0] == w {
			break
		}
		j.commitCond.Wait()
	}
	j.leadBatchLocked()
	return w.seq, w.err
}

// leadBatchLocked runs one group-commit batch with the calling waiter
// at the front of the queue. Caller holds j.mu; the lock is released
// for the window wait and the disk IO and reacquired before return.
func (j *Journal) leadBatchLocked() {
	j.committing = true
	if d := j.cfg.CommitWindow; d > 0 && !j.closing && j.commitQBytes < j.cfg.CommitBytes {
		// Hold the batch open so concurrent committers can join. Drain a
		// stale wake token first; CommitBytes pressure or Abandon ends
		// the window early. (Committers that queued before we took
		// leadership count toward the threshold too — hence the check
		// above, not just the wake signal.)
		select {
		case <-j.commitWake:
		default:
		}
		j.mu.Unlock()
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-j.commitWake:
			t.Stop()
		}
		j.mu.Lock()
	}

	batch := j.commitQ
	j.commitQ = j.commitSpare[:0]
	j.commitSpare = batch
	j.commitQBytes = 0
	if len(batch) == 0 {
		// Abandoned while the window was open: Abandon already failed
		// and cleared the queue.
		j.finishBatchLocked()
		return
	}

	nrecs := 0
	buf := j.batchBuf[:0]
	for _, bw := range batch {
		buf = append(buf, bw.buf...)
		nrecs += len(bw.recs)
	}
	j.batchBuf = buf

	fail := func(err error) {
		j.stats.AppendErrors += int64(nrecs)
		for _, bw := range batch {
			bw.err = err
			bw.done = true
		}
		j.finishBatchLocked()
	}

	if j.closed {
		fail(errClosed)
		return
	}
	if j.broken {
		fail(errBroken)
		return
	}
	if j.activeSize > j.cfg.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			fail(err)
			return
		}
	}

	off := j.activeSize
	f := j.active
	start := time.Now()
	j.mu.Unlock()
	_, err := f.Write(buf)
	if err != nil {
		err = fmt.Errorf("journal: append: %w", err)
	} else if serr := f.Sync(); serr != nil {
		err = fmt.Errorf("journal: fsync: %w", serr)
	}
	j.mu.Lock()
	j.stats.CommitNanos += time.Since(start).Nanoseconds()

	if err != nil {
		// One failed batch fsync fails every committer in it: the
		// segment is truncated back to the pre-batch offset, so no
		// prefix of the batch can survive a replay while its caller was
		// told the append failed. A batch never splits.
		j.repairLocked(off)
		fail(err)
		return
	}

	j.activeSize = off + int64(len(buf))
	j.stats.Fsyncs++
	j.stats.Appends += int64(nrecs)
	j.stats.AppendedBytes += int64(len(buf))
	j.stats.CommitBatches++
	j.stats.CommitBatchRecords += int64(nrecs)
	if int64(nrecs) > j.stats.CommitMaxBatch {
		j.stats.CommitMaxBatch = int64(nrecs)
	}
	for _, bw := range batch {
		prev := 0
		for i, end := range bw.ends {
			j.publishLocked(bw.buf[prev:end])
			j.state.apply(bw.recs[i])
			prev = end
		}
		bw.seq = j.pubRecs
		bw.done = true
	}
	j.finishBatchLocked()
}

// finishBatchLocked releases batch leadership and wakes every parked
// committer (resolved waiters return; the new queue front leads the
// next batch). If the journal was abandoned while the leader owned the
// file handle, the close was deferred to here. Caller holds j.mu.
func (j *Journal) finishBatchLocked() {
	j.committing = false
	if j.closed && j.active != nil {
		j.active.Close()
		j.active = nil
	}
	j.commitCond.Broadcast()
}

// Admitted commits a stream admission: fsynced before the caller sends
// its admission verdict, so a verdict the sender acts on is never
// forgotten by a crash. The returned sequence is the record's position
// on the publish feed — the value a replication quorum acknowledges.
func (j *Journal) Admitted(rec StreamRecord) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.appendableLocked(); err != nil {
		return 0, err
	}
	w := j.getWaiterLocked()
	w.addAdmit(rec)
	seq, err := j.commitLocked(w)
	j.putWaiterLocked(w)
	return seq, err
}

// Watermark coalesces a stream's accept watermark and prefix-hash state
// for the next flush. It never blocks on the disk — the per-picture hot
// path stays fast — so a crash may lose the last flush interval of
// progress, which recovery absorbs by parking the stream at the older
// watermark (the sender replays the difference, idempotently). The
// journal copies state into a recycled buffer, so callers may pass a
// reused scratch slice.
func (j *Journal) Watermark(token uint64, mark int, state []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closing || j.closed || j.broken {
		return
	}
	e, ok := j.dirty[token]
	if !ok {
		if n := len(j.wmFree); n > 0 {
			e.state = j.wmFree[n-1][:0]
			j.wmFree = j.wmFree[:n-1]
		}
	}
	e.mark = mark
	e.state = append(e.state[:0], state...)
	j.dirty[token] = e
	j.stats.WatermarksCoalesced++
}

// Completed commits a stream completion: fsynced before the completion
// ack is sent, so an acked stream is always answerable as
// AlreadyComplete after a crash. The returned sequence is the record's
// position on the publish feed.
func (j *Journal) Completed(rec TombstoneRecord) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.appendableLocked(); err != nil {
		return 0, err
	}
	j.dropDirtyLocked(rec.Token) // superseded
	w := j.getWaiterLocked()
	w.addComplete(rec)
	seq, err := j.commitLocked(w)
	j.putWaiterLocked(w)
	return seq, err
}

// Expired commits the release of journaled state: a failed stream, a
// lapsed resume window, or an aged-out tombstone. The returned sequence
// is the record's position on the publish feed.
func (j *Journal) Expired(token, nonce uint64, reason ExpireReason) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.appendableLocked(); err != nil {
		return 0, err
	}
	if reason != ExpireTombstone {
		j.dropDirtyLocked(token)
	}
	w := j.getWaiterLocked()
	w.addExpire(token, nonce, reason)
	seq, err := j.commitLocked(w)
	j.putWaiterLocked(w)
	return seq, err
}

// dropDirtyLocked discards a pending coalesced watermark and recycles
// its state buffer. Caller holds j.mu.
func (j *Journal) dropDirtyLocked(token uint64) {
	if e, ok := j.dirty[token]; ok {
		if len(j.wmFree) < 256 {
			j.wmFree = append(j.wmFree, e.state)
		}
		delete(j.dirty, token)
	}
}

// Epoch reports the highest primary epoch the journal has witnessed —
// the fencing term recovery and replication compare against.
func (j *Journal) Epoch() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Epoch
}

// AppendEpoch commits a primary epoch: fsynced before the new primary
// serves anything stamped with it, so a node that acknowledged a term
// can never forget it and accept a lower one after a restart. Appending
// an epoch at or below the current one is a no-op (epochs are monotone).
func (j *Journal) AppendEpoch(epoch uint64) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if epoch <= j.state.Epoch {
		return j.pubRecs, nil
	}
	if err := j.appendableLocked(); err != nil {
		return 0, err
	}
	w := j.getWaiterLocked()
	w.addEpoch(epoch)
	seq, err := j.commitLocked(w)
	j.putWaiterLocked(w)
	return seq, err
}

// Flush appends and fsyncs all coalesced watermarks now.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.flushDirtyLocked()
}

// flushDirtyLocked drains the coalesced watermarks into one commit
// waiter and rides the group-commit path: the whole flush is one frame
// run inside one batch fsync. On failure the watermarks are re-merged
// into the dirty set (unless a newer mark superseded them) so the next
// flush retries — exactly the keep-dirty-on-error behavior replay
// idempotence expects. Caller holds j.mu.
func (j *Journal) flushDirtyLocked() error {
	if len(j.dirty) == 0 {
		return nil
	}
	if err := j.appendableLocked(); err != nil {
		return err
	}
	w := j.getWaiterLocked()
	for token, e := range j.dirty {
		w.addWatermark(token, e.mark, e.state)
		if len(j.wmFree) < 256 {
			j.wmFree = append(j.wmFree, e.state)
		}
		delete(j.dirty, token)
	}
	_, err := j.commitLocked(w)
	if err != nil {
		for _, r := range w.recs {
			if e, ok := j.dirty[r.Token]; !ok || e.mark < r.Watermark {
				j.dirty[r.Token] = wmEntry{mark: r.Watermark, state: append(e.state[:0], r.HashState...)}
			}
		}
	} else {
		j.stats.WatermarkBatches++
	}
	j.putWaiterLocked(w)
	return err
}

// Compact rewrites live state into a fresh snapshot segment and deletes
// the old ones.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.flushDirtyLocked(); err != nil {
		return err
	}
	// Rotation swaps the active file; wait out any in-flight batch
	// leader that owns the current handle.
	for j.committing {
		j.commitCond.Wait()
	}
	if err := j.appendableLocked(); err != nil {
		return err
	}
	return j.rotateLocked()
}

// Close drains the commit queue, writes the remaining coalesced
// watermarks exactly once, syncs, and closes the journal. New commits
// are rejected the moment Close begins, so the final watermark drain
// is the journal's last write.
func (j *Journal) Close() error {
	j.stopFlusher()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closing = true
	for j.committing || len(j.commitQ) > 0 {
		j.commitCond.Wait()
	}
	if j.closed {
		// Abandon raced in while we drained.
		return nil
	}
	err := j.closeFlushLocked()
	j.closed = true
	j.closeSubsLocked()
	if j.active != nil {
		if cerr := j.active.Close(); err == nil {
			err = cerr
		}
		j.active = nil
	}
	return err
}

// closeFlushLocked writes the final coalesced watermarks straight to
// the active segment. Close has already stopped the flusher, drained
// the commit queue, and begun rejecting new commits, so this is the
// journal's sole remaining writer: the drain happens exactly once.
// Caller holds j.mu.
func (j *Journal) closeFlushLocked() error {
	if len(j.dirty) == 0 {
		return nil
	}
	if j.broken {
		return errBroken
	}
	w := j.getWaiterLocked()
	defer j.putWaiterLocked(w)
	for token, e := range j.dirty {
		w.addWatermark(token, e.mark, e.state)
		delete(j.dirty, token)
	}
	off := j.activeSize
	if _, err := j.active.Write(w.buf); err != nil {
		j.stats.AppendErrors += int64(len(w.recs))
		j.repairLocked(off)
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := j.active.Sync(); err != nil {
		j.stats.AppendErrors += int64(len(w.recs))
		j.repairLocked(off)
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.activeSize = off + int64(len(w.buf))
	j.stats.Fsyncs++
	j.stats.Appends += int64(len(w.recs))
	j.stats.AppendedBytes += int64(len(w.buf))
	j.stats.WatermarkBatches++
	prev := 0
	for i, end := range w.ends {
		j.publishLocked(w.buf[prev:end])
		j.state.apply(w.recs[i])
		prev = end
	}
	return nil
}

// Abandon closes the journal crash-style: no flush, no sync — pending
// watermarks are dropped exactly as a real crash would drop them, and
// committers parked on the commit queue fail immediately. The
// kill-and-restart harness uses it to make an in-process "SIGKILL"
// honest. Abandon never waits for an in-flight batch leader: if one
// owns the file handle, the handle close is deferred to it.
func (j *Journal) Abandon() {
	j.stopFlusher()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.closing, j.closed = true, true
	j.dirty = map[uint64]wmEntry{}
	for _, w := range j.commitQ {
		w.err = errClosed
		w.done = true
	}
	j.commitQ = j.commitQ[:0]
	j.commitQBytes = 0
	// Cut short a leader sleeping in its commit window.
	select {
	case j.commitWake <- struct{}{}:
	default:
	}
	j.closeSubsLocked()
	if !j.committing && j.active != nil {
		j.active.Close()
		j.active = nil
	}
	j.commitCond.Broadcast()
}

func (j *Journal) stopFlusher() {
	j.mu.Lock()
	stop, done := j.flushStop, j.flushDone
	j.flushStop = nil
	j.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

func (j *Journal) flusher(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if err := j.Flush(); err != nil {
				j.cfg.Logf("journal: watermark flush: %v", err)
			}
		case <-stop:
			return
		}
	}
}

// repairLocked truncates the active segment back to off after a failed
// append, discarding whatever partial bytes landed. If even that fails,
// the journal is broken: appends stop, but the on-disk prefix up to the
// last successful commit stays fully replayable.
func (j *Journal) repairLocked(off int64) {
	if err := j.fs.Truncate(j.activeName, off); err != nil {
		j.broken = true
		j.cfg.Logf("journal: repair truncate of %s to %d failed (%v); journal is now read-only", j.activeName, off, err)
		return
	}
	j.activeSize = off
	j.cfg.Logf("journal: truncated %s back to %d after failed append", j.activeName, off)
}

// rotateLocked opens the next segment, snapshots live state into it,
// syncs it, and deletes every older segment. Idempotent replay keeps
// every crash window safe: before the sync, the new segment simply
// loses the race and old segments still hold everything; after the
// sync, duplicates between old and new segments fold to the same state;
// a failed remove only leaves harmless duplicates behind. Caller holds
// j.mu, and no batch leader may be in flight (rotation swaps the file
// handle the leader writes to).
func (j *Journal) rotateLocked() error {
	j.seq++
	name := segName(j.seq)
	f, err := j.fs.Create(name)
	if err != nil {
		return fmt.Errorf("journal: creating segment %s: %w", name, err)
	}
	// Tombstones carry their own journaled expiry; compaction drops the
	// dead ones instead of copying them forward, so completed-stream
	// history cannot grow the snapshot without bound.
	now := time.Now()
	for tok, tb := range j.state.Tombstones {
		if !tb.Expires.IsZero() && now.After(tb.Expires) {
			delete(j.state.Tombstones, tok)
		}
	}
	buf := j.snapshotLocked()
	if _, err := f.Write(buf); err != nil {
		f.Close()
		j.fs.Remove(name)
		return fmt.Errorf("journal: writing snapshot %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		j.fs.Remove(name)
		return fmt.Errorf("journal: syncing snapshot %s: %w", name, err)
	}
	j.stats.Fsyncs++
	if j.active != nil {
		j.active.Close()
	}
	for _, old := range j.segments {
		if err := j.fs.Remove(old); err != nil {
			// Harmless: replay is idempotent, so a lingering old segment
			// only costs startup time. Keep it listed for the next try.
			j.cfg.Logf("journal: could not remove %s: %v (will retry at next compaction)", old, err)
		}
	}
	j.active = f
	j.activeName = name
	j.activeSize = int64(len(buf))
	j.segments = []string{name}
	j.stats.Rotations++
	return nil
}

// snapshotLocked encodes the live state as one segment image: the same
// bytes a rotation writes, and the base a Follow subscriber starts
// from. Expired tombstones are skipped (not pruned — rotation owns the
// pruning). Caller holds j.mu.
func (j *Journal) snapshotLocked() []byte {
	now := time.Now()
	var buf []byte
	buf = append(buf, segMagic...)
	// The epoch leads the snapshot so a follower resyncing from it
	// adopts the primary's term before any session fact.
	if j.state.Epoch > 0 {
		buf = appendEpochFrame(buf, j.state.Epoch)
	}
	for _, st := range j.state.Streams {
		buf = appendAdmitFrame(buf, *st)
		if st.Watermark > 0 {
			buf = appendWatermarkFrame(buf, st.Token, st.Watermark, st.HashState)
		}
	}
	for _, tb := range j.state.Tombstones {
		if !tb.Expires.IsZero() && now.After(tb.Expires) {
			continue
		}
		buf = appendCompleteFrame(buf, *tb)
	}
	return buf
}
