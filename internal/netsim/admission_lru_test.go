package netsim

import (
	"testing"
	"time"
)

// TestNonceLedgerFloodBounded pins the adaptive nonce ledger: a
// sustained flood of distinct admissions grows the cap toward
// rate × TTL (so every in-window nonce still fits) while keeping the
// ledger bounded, and a nonce that keeps getting consulted — the
// last-touch property — survives a flood that would have race-evicted
// it from the old fixed-cap FIFO.
func TestNonceLedgerFloodBounded(t *testing.T) {
	a, err := NewAdmission(1e15)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now()
	ttl := 10 * time.Second
	const protected = uint64(0xD00D)
	if admitted, dup := a.AdmitNonce(protected, 1, base, ttl); !admitted || dup {
		t.Fatalf("protected admit: admitted=%v dup=%v", admitted, dup)
	}
	// Flood: 10k distinct nonces per second for 5 seconds — all inside
	// the protected nonce's TTL — so the ledger should size itself
	// toward 10k/s × 10s × headroom, far past its 1024 floor. The
	// protected nonce is consulted periodically, keeping it warm.
	const flood = 50_000
	for i := 0; i < flood; i++ {
		now := base.Add(time.Duration(i+1) * 100 * time.Microsecond)
		if admitted, dup := a.AdmitNonce(uint64(0x10000+i), 1, now, ttl); !admitted || dup {
			t.Fatalf("flood admit %d: admitted=%v dup=%v", i, admitted, dup)
		}
		if size, cap := a.NonceLedgerSize(), a.NonceLedgerCap(); size > cap {
			t.Fatalf("after %d admits: ledger %d exceeds cap %d", i+1, size, cap)
		}
		if i%512 == 0 {
			if _, dup := a.AdmitNonce(protected, 1, now, ttl); !dup {
				t.Fatalf("protected nonce evicted after %d flood admits (ledger %d, cap %d)",
					i+1, a.NonceLedgerSize(), a.NonceLedgerCap())
			}
		}
	}
	if cap := a.NonceLedgerCap(); cap <= 1024 {
		t.Fatalf("cap did not adapt to the flood rate: %d", cap)
	}
	if _, dup := a.AdmitNonce(protected, 1, base.Add(flood*100*time.Microsecond), ttl); !dup {
		t.Fatal("protected nonce lost by the end of the flood")
	}
}

// TestRehydrate: journal-recovered reservations restore the peak and
// the nonce dedup without counting a second admission — the invariant
// the kill-and-restart chaos harness sums across server generations.
func TestRehydrate(t *testing.T) {
	a, err := NewAdmission(10e6)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	a.Rehydrate(0xBEEF, 4e6, now, time.Minute)
	if got := a.Admitted(); got != 0 {
		t.Fatalf("rehydration counted as admission: %d", got)
	}
	if got := a.Reserved(); got != 4e6 {
		t.Fatalf("reserved %v, want 4e6", got)
	}
	if got := a.Active(); got != 1 {
		t.Fatalf("active %v, want 1", got)
	}
	// The recovered nonce deduplicates a retransmitted hello exactly
	// like one admitted in this generation.
	if _, dup := a.AdmitNonce(0xBEEF, 4e6, now, time.Minute); !dup {
		t.Fatal("rehydrated nonce did not deduplicate")
	}
	a.ReleaseNonce(0xBEEF, 4e6)
	if got := a.Reserved(); got != 0 {
		t.Fatalf("reserved %v after release, want 0", got)
	}
	if a.NonceLedgerSize() != 0 {
		t.Fatal("nonce survived release")
	}
}
