package vbv

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mpegsmooth/internal/core"
	"mpegsmooth/internal/mpeg"
	"mpegsmooth/internal/trace"
)

func driving(t testing.TB, n int) *trace.Trace {
	t.Helper()
	tr, err := trace.Driving1(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestStartupDelayEqualsMaxDelay(t *testing.T) {
	tr := driving(t, 135)
	s, err := core.Smooth(tr, core.Config{K: 1, H: 9, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.StartupDelay-s.MaxDelay()) > 1e-12 {
		t.Fatalf("startup %.6f != max delay %.6f", a.StartupDelay, s.MaxDelay())
	}
	// Theorem 1: the needed startup never exceeds the delay bound D.
	if a.StartupDelay > 0.2+1e-9 {
		t.Fatalf("startup %.4f exceeds the delay bound", a.StartupDelay)
	}
}

func TestCheckAtAnalyzedPoint(t *testing.T) {
	tr := driving(t, 135)
	s, err := core.Smooth(tr, core.Config{K: 1, H: 9, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the analyzed startup and buffer must pass...
	if err := Check(s, a.StartupDelay, a.PeakBuffer); err != nil {
		t.Fatalf("analyzed point fails: %v", err)
	}
	// ...a smaller startup must underflow...
	if err := Check(s, a.StartupDelay*0.7, a.PeakBuffer); err == nil {
		t.Fatal("reduced startup should underflow")
	}
	// ...and a smaller buffer must overflow.
	if err := Check(s, a.StartupDelay, a.PeakBuffer*0.8); err == nil {
		t.Fatal("reduced buffer should overflow")
	}
}

func TestFlatScheduleBuffersOnePicture(t *testing.T) {
	// Constant sizes at constant rate: the decoder holds roughly one
	// picture plus the startup accumulation — sanity-check magnitudes.
	sizes := make([]int64, 60)
	for i := range sizes {
		sizes[i] = 30_000
	}
	tr := &trace.Trace{Name: "flat", Tau: 1.0 / 30, GOP: mpeg.GOP{M: 1, N: 1}, Sizes: sizes}
	s, err := core.Smooth(tr, core.Config{K: 1, H: 1, D: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.PeakBuffer <= 0 {
		t.Fatal("peak buffer must be positive")
	}
	// With a 0.1 s bound the decoder can never need more than the bits
	// of D seconds of stream at the (constant) smoothed rate, ~3
	// pictures' worth here.
	if a.PeakBuffer > 4*30_000 {
		t.Fatalf("flat stream peak buffer %.0f implausibly large", a.PeakBuffer)
	}
}

func TestIdealScheduleAnalyzable(t *testing.T) {
	// Ideal smoothing can idle between blocks; the reception curve must
	// handle the gaps.
	tr := driving(t, 135)
	s, err := core.Ideal(tr)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(s, a.StartupDelay, a.PeakBuffer); err != nil {
		t.Fatalf("ideal schedule at analyzed point: %v", err)
	}
}

// Property: for any valid schedule, Check passes at the analyzed
// (startup, peak) point, and the startup never exceeds D for K >= 1.
func TestAnalyzeCheckProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gops := []mpeg.GOP{{M: 3, N: 9}, {M: 1, N: 5}, {M: 2, N: 6}}
		g := gops[rng.Intn(len(gops))]
		n := rng.Intn(80) + 2
		sizes := make([]int64, n)
		for i := range sizes {
			sizes[i] = int64(rng.Intn(300_000) + 1_000)
		}
		tr := &trace.Trace{Name: "prop", Tau: 1.0 / 30, GOP: g, Sizes: sizes}
		k := rng.Intn(3) + 1
		d := float64(k+1)*tr.Tau + rng.Float64()*0.3
		s, err := core.Smooth(tr, core.Config{K: k, H: g.N, D: d})
		if err != nil {
			return false
		}
		a, err := Analyze(s)
		if err != nil {
			return false
		}
		if a.StartupDelay > d+1e-9 {
			t.Logf("seed %d: startup %.4f > D %.4f", seed, a.StartupDelay, d)
			return false
		}
		if err := Check(s, a.StartupDelay, a.PeakBuffer); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyScheduleRejected(t *testing.T) {
	s := &core.Schedule{}
	if _, err := Analyze(s); err == nil {
		t.Error("empty schedule should fail Analyze")
	}
	if err := Check(s, 1, 1); err == nil {
		t.Error("empty schedule should fail Check")
	}
}
