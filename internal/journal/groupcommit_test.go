package journal

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestGroupCommitBatchFsyncFailureNeverSplits: four concurrent
// admissions are forced into one commit batch (a long window whose byte
// threshold is exactly the four frames), and that batch's fsync is made
// to fail deterministically. Every committer must see the failure, the
// stats must count all four, and a replay must show none of them — the
// batch fails whole, never splits into a durable prefix.
func TestGroupCommitBatchFsyncFailureNeverSplits(t *testing.T) {
	mem := NewMemFS()
	// Sync 1 is Open's snapshot; sync 2 is the four-admit batch.
	faulty := NewFaultFS(mem, FaultConfig{FailSync: 2})
	frameLen := len(encodeAdmit(testStream(1)))
	j, err := Open(Config{
		FS:            faulty,
		FlushInterval: noFlush,
		CommitWindow:  10 * time.Second, // never expires: the byte threshold closes it
		CommitBytes:   4 * frameLen,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	const committers = 4
	errs := make([]error, committers)
	var wg sync.WaitGroup
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = j.Admitted(testStream(uint64(i + 1)))
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err == nil {
			t.Errorf("committer %d in the failed batch saw no error", i)
		}
	}
	st := j.Stats()
	if st.AppendErrors != committers {
		t.Errorf("AppendErrors = %d, want %d (every record in the failed batch)", st.AppendErrors, committers)
	}
	if st.CommitBatches != 0 {
		t.Errorf("CommitBatches = %d after a failed batch, want 0", st.CommitBatches)
	}

	// The failure was repaired (truncated), not fatal: the journal keeps
	// accepting, and sync 3 lands.
	if _, err := j.Admitted(testStream(9)); err != nil {
		t.Fatalf("append after failed batch: %v", err)
	}

	j2, state := reopen(t, j, mem)
	defer j2.Close()
	if len(state.Streams) != 1 || state.Streams[9] == nil {
		t.Fatalf("replay after failed batch: want exactly stream 9, got %+v", state.Streams)
	}
}

// TestGroupCommitWindowBatches: with a commit window open, a burst of
// concurrent admissions coalesces into fewer fsyncs than records, and
// the batch counters stay consistent (records sum, max ≥ avg, leader
// time accrued, queue drained).
func TestGroupCommitWindowBatches(t *testing.T) {
	mem := NewMemFS()
	j, err := Open(Config{
		FS:            mem,
		FlushInterval: noFlush,
		CommitWindow:  50 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	const burst = 8
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := j.Admitted(testStream(uint64(i + 1))); err != nil {
				t.Errorf("admit %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	st := j.Stats()
	if st.CommitBatchRecords != burst {
		t.Errorf("CommitBatchRecords = %d, want %d", st.CommitBatchRecords, burst)
	}
	if st.CommitBatches < 1 || st.CommitBatches >= burst {
		t.Errorf("CommitBatches = %d, want in [1, %d): the window must have coalesced something",
			st.CommitBatches, burst)
	}
	if st.CommitMaxBatch < 2 {
		t.Errorf("CommitMaxBatch = %d, want ≥ 2 under a %v window", st.CommitMaxBatch, 50*time.Millisecond)
	}
	if st.CommitNanos <= 0 {
		t.Errorf("CommitNanos = %d, want > 0 after %d batches", st.CommitNanos, st.CommitBatches)
	}
	if st.CommitPending != 0 {
		t.Errorf("CommitPending = %d at rest, want 0", st.CommitPending)
	}
	if st.Appends != burst {
		t.Errorf("Appends = %d, want %d", st.Appends, burst)
	}
}

// TestAppendRecordsSingleFsync: a follower-style batch of decoded
// records — admits, a watermark, an epoch — costs exactly one fsync for
// its durable kinds, coalesces the watermark, and folds everything into
// replayable state.
func TestAppendRecordsSingleFsync(t *testing.T) {
	mem := NewMemFS()
	j := mustOpen(t, mem)
	before := j.Stats()
	recs := []Record{
		{Kind: KindAdmit, Stream: testStream(1)},
		{Kind: KindAdmit, Stream: testStream(2)},
		{Kind: KindWatermark, Token: 1, Watermark: 3, HashState: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Kind: KindEpoch, Epoch: 5},
	}
	if err := j.AppendRecords(recs); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if got := st.Fsyncs - before.Fsyncs; got != 1 {
		t.Errorf("batch of %d records cost %d fsyncs, want 1", len(recs), got)
	}
	if got := st.Appends - before.Appends; got != 3 {
		t.Errorf("Appends grew by %d, want 3 (the watermark coalesces)", got)
	}
	if got := st.WatermarksCoalesced - before.WatermarksCoalesced; got != 1 {
		t.Errorf("WatermarksCoalesced grew by %d, want 1", got)
	}

	j2, state := reopen(t, j, mem)
	defer j2.Close()
	if state.Streams[1] == nil || state.Streams[2] == nil {
		t.Fatalf("admits lost: %+v", state.Streams)
	}
	if state.Streams[1].Watermark != 3 {
		t.Errorf("stream 1 watermark = %d, want 3", state.Streams[1].Watermark)
	}
	if state.Epoch != 5 {
		t.Errorf("epoch = %d, want 5", state.Epoch)
	}
}

// TestCloseDrainsWatermarksExactlyOnce: coalesced watermarks pending at
// Close are written by Close itself — once. The closed journal's final
// segment must hold exactly one watermark record per dirty stream,
// carrying the highest mark.
func TestCloseDrainsWatermarksExactlyOnce(t *testing.T) {
	mem := NewMemFS()
	j := mustOpen(t, mem)
	for tok := uint64(1); tok <= 3; tok++ {
		if _, err := j.Admitted(testStream(tok)); err != nil {
			t.Fatal(err)
		}
	}
	for mark := 1; mark <= 5; mark++ {
		for tok := uint64(1); tok <= 3; tok++ {
			j.Watermark(tok, mark, []byte{8, 7, 6, 5, 4, 3, 2, 1})
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	names, err := mem.ReadDir()
	if err != nil {
		t.Fatal(err)
	}
	marks := map[uint64][]int{}
	for _, name := range names {
		if !strings.HasSuffix(name, ".wal") {
			continue
		}
		data, err := mem.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		recs, valid, err := ScanSegment(data)
		if err != nil || valid != len(data) {
			t.Fatalf("segment %s: %d of %d bytes valid: %v", name, valid, len(data), err)
		}
		for _, r := range recs {
			if r.Kind == KindWatermark {
				marks[r.Token] = append(marks[r.Token], r.Watermark)
			}
		}
	}
	for tok := uint64(1); tok <= 3; tok++ {
		if got := marks[tok]; len(got) != 1 || got[0] != 5 {
			t.Errorf("stream %d: watermark records %v, want exactly one carrying mark 5", tok, got)
		}
	}
}

// TestCloseMidCommitRace hammers the journal from concurrent committers
// and watermark writers while Close runs — the shutdown path must fail
// the stragglers cleanly (no deadlock, no double-flush, no race) and
// what replays must be a consistent prefix of what was acknowledged.
func TestCloseMidCommitRace(t *testing.T) {
	for seed := 0; seed < 3; seed++ {
		mem := NewMemFS()
		j, err := Open(Config{
			FS:            mem,
			FlushInterval: time.Millisecond,
			CommitWindow:  time.Millisecond,
			Logf:          t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}

		acked := make([]bool, 16)
		var wg sync.WaitGroup
		for i := 0; i < len(acked); i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tok := uint64(i + 1)
				if _, err := j.Admitted(testStream(tok)); err != nil {
					return // closed underneath us: fine, just not acked
				}
				acked[i] = true
				for mark := 1; mark <= 4; mark++ {
					j.Watermark(tok, mark, []byte{1, 2, 3, 4, 5, 6, 7, 8})
				}
			}(i)
		}
		// Close races the committers; half of them typically lose.
		time.Sleep(time.Duration(seed) * time.Millisecond)
		if err := j.Close(); err != nil {
			t.Fatalf("seed %d: Close: %v", seed, err)
		}
		wg.Wait()
		if err := j.Close(); err != nil {
			t.Fatalf("seed %d: second Close: %v", seed, err)
		}

		j2 := mustOpen(t, mem)
		state := j2.State()
		for i, ok := range acked {
			if ok && state.Streams[uint64(i+1)] == nil {
				t.Errorf("seed %d: acknowledged admission %d forgotten by replay", seed, i+1)
			}
		}
		// The converse need not hold (a record can be durable without its
		// committer having been woken before Close), so only the
		// acked-then-forgotten direction is asserted.
		j2.Close()
	}
}
