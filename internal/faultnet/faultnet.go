// Package faultnet wraps net.Conn and net.Listener with deterministic,
// seed-driven fault injection: byte corruption, mid-message stalls,
// latency/jitter, abrupt resets, and timed partitions. It exists so the
// transport layer's robustness claims — CRC-detected corruption,
// deadline-cut stalls, resumable streams through resets — can be
// exercised in ordinary Go tests against a real TCP (or in-memory)
// network rather than hand-mocked error returns.
//
// Determinism: every connection accepted or wrapped gets its own
// math/rand stream seeded from Config.Seed plus the connection's accept
// index, so a chaos soak replays the same fault sequence per connection
// regardless of goroutine interleaving.
package faultnet

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrInjectedReset is returned by a connection the harness abruptly
// reset. It also closes the underlying conn, so the peer observes a
// genuine EOF/reset. It wraps ECONNRESET so fault classifiers treat it
// exactly like the real thing.
var ErrInjectedReset = fmt.Errorf("faultnet: injected connection reset: %w", syscall.ECONNRESET)

// partitionError is the error type behind ErrPartitioned. It satisfies
// net.Error with Timeout() == true because that is what a partition
// looks like from an endpoint: packets vanish and deadlines expire —
// nothing about the connection itself is broken. Classifiers that treat
// timeouts as retryable (transport.ClassifyFault) therefore let parked
// streams ride out a partition window instead of failing terminally.
type partitionError struct{}

func (partitionError) Error() string   { return "faultnet: network partitioned" }
func (partitionError) Timeout() bool   { return true }
func (partitionError) Temporary() bool { return true }

// ErrPartitioned is returned while the network is partitioned. It is a
// net.Error whose Timeout() reports true, so fault classifiers bucket a
// partition with deadline expiries (retryable), not terminal faults.
var ErrPartitioned net.Error = partitionError{}

// Config sets the fault mix. Probabilities are per I/O operation
// (per Read and per Write call), evaluated independently.
type Config struct {
	// Seed drives all randomness. The same seed and per-connection
	// operation sequence replays the same faults.
	Seed int64
	// CorruptProb flips one byte of the transferred data.
	CorruptProb float64
	// ResetProb abruptly closes the connection mid-operation.
	ResetProb float64
	// StallProb pauses the operation for Stall before proceeding —
	// long stalls trip peer deadlines, short ones add burstiness.
	StallProb float64
	// Stall is the pause injected on a stall fault (default 50ms).
	Stall time.Duration
	// Latency delays every operation; Jitter adds a uniform random
	// extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// FaultFreeBytes exempts the first N bytes of each direction of each
	// connection from corruption and resets (latency still applies).
	// Chaos tests use it to protect the admission handshake so faults
	// concentrate on the picture stream.
	FaultFreeBytes int
	// Ops pins deterministic faults to specific I/O calls of specific
	// connections, on top of (and regardless of) the probabilistic mix
	// and the FaultFreeBytes grace. Protocol tests use it to hit exactly
	// one handshake message — "corrupt the first thing connection 2
	// writes" — where probabilities cannot aim.
	Ops []OpFault
	// Burst layers a Gilbert–Elliott two-state model over the i.i.d.
	// probabilities above: while a direction is in the bad state, the
	// burst probabilities apply on top of the base mix, so faults
	// cluster the way real links fail instead of arriving as isolated
	// per-op coin flips.
	Burst BurstConfig
}

// BurstConfig is the Gilbert–Elliott two-state burst model. Each
// direction of each connection carries its own good/bad state driven
// by the connection's seeded RNG: every I/O operation first rolls the
// state transition (good→bad with EnterProb, bad→good with ExitProb),
// then, while bad, rolls the burst fault probabilities in addition to
// the base i.i.d. mix. The expected burst length is 1/ExitProb
// operations; the stationary bad fraction EnterProb/(EnterProb+ExitProb).
// The zero value disables the model — and, critically, consumes no
// random draws, so enabling Burst never shifts the seeded fault
// sequence of configurations that don't use it.
type BurstConfig struct {
	// EnterProb is the per-operation good→bad transition probability;
	// zero disables the model entirely.
	EnterProb float64
	// ExitProb is the per-operation bad→good transition probability
	// (default 0.2: mean burst of 5 operations).
	ExitProb float64
	// StallProb, ResetProb, CorruptProb apply per operation while the
	// direction is in the bad state, on top of the base Config mix.
	// ResetProb and CorruptProb honor the FaultFreeBytes grace;
	// StallProb does not (a stall damages no bytes).
	StallProb   float64
	ResetProb   float64
	CorruptProb float64
}

func (b BurstConfig) enabled() bool { return b.EnterProb > 0 }

// FaultAction is what an OpFault does to its targeted I/O call.
type FaultAction int

// Targeted fault actions.
const (
	// ActDrop swallows a write: the caller sees success, the peer sees
	// nothing — a cleanly lost message. On the read path (where bytes
	// cannot be unsent) it degrades to ActReset.
	ActDrop FaultAction = iota + 1
	// ActCorrupt flips one byte (the middle one) of the transfer.
	ActCorrupt
	// ActReset abruptly resets the connection at that call.
	ActReset
)

// OpFault targets one I/O operation of one wrapped connection: the
// Op-th Read or Write call (1-based, per direction) of the Conn-th
// connection this Network wrapped (1-based, in Wrap/Accept/Dial order).
type OpFault struct {
	Conn   int
	Op     int
	Write  bool
	Action FaultAction
}

// Counts reports the faults a Network has injected so far.
type Counts struct {
	Corrupted  int64
	Resets     int64
	Stalls     int64
	Partitions int64
	// Dropped counts writes swallowed by targeted ActDrop faults.
	Dropped int64
	// BurstEnters counts good→bad transitions of the Gilbert–Elliott
	// burst model across all connection directions.
	BurstEnters int64
}

// Network is a fault-injecting wrapper factory. The zero value with a
// zero Config passes traffic through untouched.
type Network struct {
	cfg Config

	connIndex atomic.Int64

	corrupted   atomic.Int64
	resets      atomic.Int64
	stalls      atomic.Int64
	partials    atomic.Int64
	dropped     atomic.Int64
	burstEnters atomic.Int64

	mu          sync.Mutex
	partitioned bool
	partTimer   *time.Timer
}

// New builds a Network with the given fault mix.
func New(cfg Config) *Network {
	if cfg.Stall <= 0 {
		cfg.Stall = 50 * time.Millisecond
	}
	if cfg.Burst.enabled() && cfg.Burst.ExitProb <= 0 {
		cfg.Burst.ExitProb = 0.2
	}
	return &Network{cfg: cfg}
}

// Counts snapshots the injected-fault counters.
func (n *Network) Counts() Counts {
	return Counts{
		Corrupted:   n.corrupted.Load(),
		Resets:      n.resets.Load(),
		Stalls:      n.stalls.Load(),
		Partitions:  n.partials.Load(),
		Dropped:     n.dropped.Load(),
		BurstEnters: n.burstEnters.Load(),
	}
}

// PartitionFor severs every connection's traffic for d: operations fail
// immediately with ErrPartitioned until the window elapses. Overlapping
// calls extend the window.
func (n *Network) PartitionFor(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partials.Add(1)
	n.partitioned = true
	if n.partTimer != nil {
		n.partTimer.Stop()
	}
	n.partTimer = time.AfterFunc(d, func() {
		n.mu.Lock()
		n.partitioned = false
		n.mu.Unlock()
	})
}

func (n *Network) isPartitioned() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partitioned
}

// Wrap returns conn with this network's faults injected on both its
// read and write paths.
func (n *Network) Wrap(conn net.Conn) net.Conn {
	index := n.connIndex.Add(1)
	seed := n.cfg.Seed + index
	return &faultConn{
		Conn:  conn,
		net:   n,
		index: int(index),
		read:  dirState{rng: rand.New(rand.NewSource(seed))},
		// Writes draw from an offset stream so the two directions fault
		// independently but still deterministically.
		write: dirState{rng: rand.New(rand.NewSource(seed ^ 0x5DEECE66D))},
	}
}

// Listener wraps l so every accepted connection is fault-injected.
func (n *Network) Listener(l net.Listener) net.Listener {
	return &faultListener{Listener: l, net: n}
}

// DialFunc matches the dial signature resumable senders use.
type DialFunc func(context.Context) (net.Conn, error)

// Dialer wraps dial so every connection it opens is fault-injected —
// the client-side mirror of Listener, so a sender's own read and write
// paths (and its corrupt-classified retry handling) are exercised
// directly rather than only via the server's I/O.
func (n *Network) Dialer(dial DialFunc) DialFunc {
	return func(ctx context.Context) (net.Conn, error) {
		conn, err := dial(ctx)
		if err != nil {
			return nil, err
		}
		return n.Wrap(conn), nil
	}
}

type faultListener struct {
	net.Listener
	net *Network
}

func (fl *faultListener) Accept() (net.Conn, error) {
	conn, err := fl.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return fl.net.Wrap(conn), nil
}

// dirState is one direction's fault-decision state. Its RNG is only
// touched under the parent conn's mutex.
type dirState struct {
	rng   *rand.Rand
	bytes int  // transferred so far, for the FaultFreeBytes grace
	ops   int  // I/O calls so far, for targeted OpFaults
	bad   bool // Gilbert–Elliott burst state
}

type faultConn struct {
	net.Conn
	net   *Network
	index int // 1-based wrap order, for targeted OpFaults
	mu    sync.Mutex
	read  dirState
	write dirState
	reset bool
}

// targeted returns the action pinned to this direction's current op, if
// any. Caller holds fc.mu and has already incremented dir.ops.
func (fc *faultConn) targeted(dir *dirState, isWrite bool) FaultAction {
	for _, f := range fc.net.cfg.Ops {
		if f.Conn == fc.index && f.Write == isWrite && f.Op == dir.ops {
			return f.Action
		}
	}
	return 0
}

// decide rolls this operation's faults under the conn mutex so the RNG
// stream is well-defined, returning the actions to take outside it.
// Targeted OpFaults take precedence over the probabilistic mix and
// ignore the FaultFreeBytes grace (they exist to hit the handshake).
// The probabilistic rolls are made first either way — a targeted op
// consumes exactly the draws any other op would — so configuring
// OpFaults never shifts the seeded fault sequence of the surrounding
// operations.
func (fc *faultConn) decide(dir *dirState, size int, isWrite bool) (stall, reset, drop bool, corruptAt int) {
	cfg := &fc.net.cfg
	fc.mu.Lock()
	defer fc.mu.Unlock()
	corruptAt = -1
	if fc.reset {
		return false, true, false, -1
	}
	dir.ops++
	var pStall, pReset bool
	pCorrupt := -1
	if cfg.StallProb > 0 && dir.rng.Float64() < cfg.StallProb {
		pStall = true
	}
	if dir.bytes >= cfg.FaultFreeBytes {
		if cfg.ResetProb > 0 && dir.rng.Float64() < cfg.ResetProb {
			pReset = true
		} else if size > 0 && cfg.CorruptProb > 0 && dir.rng.Float64() < cfg.CorruptProb {
			pCorrupt = dir.rng.Intn(size)
		}
	}
	// The Gilbert–Elliott burst rolls come after the i.i.d. rolls, and
	// only when the model is enabled — so configurations without Burst
	// keep their exact seeded fault sequences.
	if cfg.Burst.enabled() {
		if !dir.bad {
			if dir.rng.Float64() < cfg.Burst.EnterProb {
				dir.bad = true
				fc.net.burstEnters.Add(1)
			}
		} else if dir.rng.Float64() < cfg.Burst.ExitProb {
			dir.bad = false
		}
		if dir.bad {
			if cfg.Burst.StallProb > 0 && dir.rng.Float64() < cfg.Burst.StallProb {
				pStall = true
			}
			if dir.bytes >= cfg.FaultFreeBytes {
				if cfg.Burst.ResetProb > 0 && dir.rng.Float64() < cfg.Burst.ResetProb {
					pReset = true
				}
				if cfg.Burst.CorruptProb > 0 && pCorrupt < 0 && size > 0 &&
					dir.rng.Float64() < cfg.Burst.CorruptProb {
					pCorrupt = dir.rng.Intn(size)
				}
			}
		}
	}
	switch fc.targeted(dir, isWrite) {
	case ActDrop:
		if isWrite {
			dir.bytes += size
			return false, false, true, -1
		}
		// Bytes already sent to us cannot be unsent; fall through to a
		// reset, the closest observable "the message never arrived".
		fc.reset = true
		return false, true, false, -1
	case ActCorrupt:
		dir.bytes += size
		if size > 0 {
			corruptAt = size / 2
		}
		return false, false, false, corruptAt
	case ActReset:
		fc.reset = true
		return false, true, false, -1
	}
	if pReset {
		fc.reset = true
		return pStall, true, false, -1
	}
	dir.bytes += size
	return pStall, false, false, pCorrupt
}

func (fc *faultConn) jitter(dir *dirState) time.Duration {
	cfg := &fc.net.cfg
	d := cfg.Latency
	if cfg.Jitter > 0 {
		fc.mu.Lock()
		d += time.Duration(dir.rng.Int63n(int64(cfg.Jitter)))
		fc.mu.Unlock()
	}
	return d
}

// pre applies the pre-operation faults (partition, latency, stall,
// reset, drop) shared by both directions.
func (fc *faultConn) pre(dir *dirState, size int, isWrite bool) (drop bool, corruptAt int, err error) {
	if fc.net.isPartitioned() {
		return false, -1, ErrPartitioned
	}
	if d := fc.jitter(dir); d > 0 {
		time.Sleep(d)
	}
	stall, reset, drop, corruptAt := fc.decide(dir, size, isWrite)
	if stall {
		fc.net.stalls.Add(1)
		time.Sleep(fc.net.cfg.Stall)
	}
	if reset {
		fc.net.resets.Add(1)
		fc.Conn.Close()
		return false, -1, ErrInjectedReset
	}
	return drop, corruptAt, nil
}

func (fc *faultConn) Read(p []byte) (int, error) {
	// The fault decision must size-bound the corruption offset, but the
	// eventual read may be shorter; re-check after the read.
	_, corruptAt, err := fc.pre(&fc.read, len(p), false)
	if err != nil {
		return 0, err
	}
	n, err := fc.Conn.Read(p)
	if corruptAt >= 0 && corruptAt < n {
		p[corruptAt] ^= 0xFF
		fc.net.corrupted.Add(1)
	}
	return n, err
}

func (fc *faultConn) Write(p []byte) (int, error) {
	drop, corruptAt, err := fc.pre(&fc.write, len(p), true)
	if err != nil {
		return 0, err
	}
	if drop {
		// Swallowed whole: the caller believes the message went out.
		fc.net.dropped.Add(1)
		return len(p), nil
	}
	if corruptAt >= 0 && corruptAt < len(p) {
		// Corrupt a copy: the caller's buffer is not ours to damage.
		q := make([]byte, len(p))
		copy(q, p)
		q[corruptAt] ^= 0xFF
		fc.net.corrupted.Add(1)
		return fc.Conn.Write(q)
	}
	return fc.Conn.Write(p)
}
