// Package dct implements the 8x8 two-dimensional discrete cosine transform
// used by MPEG-1 video (and JPEG), together with the zigzag scan order that
// reorders the 64 transform coefficients from low to high spatial frequency.
//
// MPEG compression rests on two facts (Lam/Chow/Yau Section 2): the human
// eye is relatively insensitive to high-frequency information, and
// high-frequency coefficients are generally small. The DCT concentrates
// block energy into a few low-frequency coefficients so that quantization
// followed by run-length coding removes most of the data.
package dct

import "math"

// BlockSize is the side length of a transform block.
const BlockSize = 8

// Block is an 8x8 block of spatial samples or transform coefficients in
// row-major order.
type Block [BlockSize * BlockSize]int32

// cosTable[u][x] = cos((2x+1)uπ/16) scaled for the separable transform.
var cosTable [BlockSize][BlockSize]float64

// cu[u] = 1/sqrt(2) for u == 0, else 1.
var cu [BlockSize]float64

func init() {
	for u := 0; u < BlockSize; u++ {
		for x := 0; x < BlockSize; x++ {
			cosTable[u][x] = math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
		}
	}
	cu[0] = 1 / math.Sqrt2
	for u := 1; u < BlockSize; u++ {
		cu[u] = 1
	}
}

// Forward computes the 2-D forward DCT of src into dst. src holds spatial
// samples (typically pixel values minus 128 for intra blocks, or prediction
// errors); dst receives transform coefficients rounded to nearest integer.
// dst and src may be the same block.
func Forward(dst, src *Block) {
	var tmp [BlockSize][BlockSize]float64
	// Rows.
	for y := 0; y < BlockSize; y++ {
		for u := 0; u < BlockSize; u++ {
			var s float64
			for x := 0; x < BlockSize; x++ {
				s += float64(src[y*BlockSize+x]) * cosTable[u][x]
			}
			tmp[y][u] = s * cu[u] / 2
		}
	}
	// Columns.
	for u := 0; u < BlockSize; u++ {
		for v := 0; v < BlockSize; v++ {
			var s float64
			for y := 0; y < BlockSize; y++ {
				s += tmp[y][u] * cosTable[v][y]
			}
			dst[v*BlockSize+u] = int32(math.Round(s * cu[v] / 2))
		}
	}
}

// Inverse computes the 2-D inverse DCT of src into dst, reconstructing
// spatial samples from transform coefficients. dst and src may be the same
// block.
func Inverse(dst, src *Block) {
	var tmp [BlockSize][BlockSize]float64
	// Columns.
	for u := 0; u < BlockSize; u++ {
		for y := 0; y < BlockSize; y++ {
			var s float64
			for v := 0; v < BlockSize; v++ {
				s += cu[v] * float64(src[v*BlockSize+u]) * cosTable[v][y]
			}
			tmp[y][u] = s / 2
		}
	}
	// Rows.
	for y := 0; y < BlockSize; y++ {
		for x := 0; x < BlockSize; x++ {
			var s float64
			for u := 0; u < BlockSize; u++ {
				s += cu[u] * tmp[y][u] * cosTable[u][x]
			}
			dst[y*BlockSize+x] = int32(math.Round(s / 2))
		}
	}
}

// ZigZag maps scan position -> row-major coefficient index, ordering
// coefficients from DC through successively higher spatial frequencies.
var ZigZag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// InvZigZag maps row-major coefficient index -> scan position.
var InvZigZag [64]int

func init() {
	for scan, idx := range ZigZag {
		InvZigZag[idx] = scan
	}
}

// Scan reorders a row-major coefficient block into zigzag scan order.
func Scan(dst *[64]int32, src *Block) {
	for scan := 0; scan < 64; scan++ {
		dst[scan] = src[ZigZag[scan]]
	}
}

// Unscan reorders zigzag-scanned coefficients back into row-major order.
func Unscan(dst *Block, src *[64]int32) {
	for scan := 0; scan < 64; scan++ {
		dst[ZigZag[scan]] = src[scan]
	}
}
