package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mpegsmooth/internal/core"
	"mpegsmooth/internal/trace"
	"mpegsmooth/internal/transport"
)

// soakTimeScale compresses schedule time in every test so multi-second
// schedules replay in milliseconds.
const soakTimeScale = 200

func testTrace(t testing.TB, pictures int) *trace.Trace {
	t.Helper()
	tr, err := trace.Driving1(pictures, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// clientKit is everything a test client needs to stream one trace.
type clientKit struct {
	tr       *trace.Trace
	cfg      core.Config
	sched    *core.Schedule
	payloads [][]byte
	hello    transport.StreamHello
}

func makeClient(t testing.TB, tr *trace.Trace) *clientKit {
	t.Helper()
	cfg := core.Config{K: 1, H: tr.GOP.N, D: 0.2}
	sched, err := core.Smooth(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	payloads := make([][]byte, tr.Len())
	for i, s := range tr.Sizes {
		payloads[i] = make([]byte, int((s+7)/8))
		rng.Read(payloads[i])
	}
	return &clientKit{
		tr: tr, cfg: cfg, sched: sched, payloads: payloads,
		hello: transport.StreamHello{
			Tau: tr.Tau, GOP: tr.GOP, K: cfg.K, D: cfg.D,
			Pictures: tr.Len(), PeakRate: sched.PeakRate(),
		},
	}
}

// stream dials, declares, and — when admitted — paces the whole trace.
func (c *clientKit) stream(ctx context.Context, addr string) (transport.Verdict, error) {
	return c.streamWith(ctx, addr, transport.Sender{TimeScale: soakTimeScale})
}

// streamWith is stream with an explicit sender configuration; the
// benchmarks collapse client-side pacing entirely (TimeScale 1e6,
// picture-sized chunks) so they time the server machinery, not the
// schedule clock or the load generator's syscall count.
func (c *clientKit) streamWith(ctx context.Context, addr string, sender transport.Sender) (transport.Verdict, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return transport.Verdict{}, err
	}
	defer conn.Close()
	fw := transport.NewFrameWriter(conn)
	if err := fw.WriteHello(c.hello); err != nil {
		return transport.Verdict{}, err
	}
	fr := transport.NewFrameReader(conn)
	v, err := fr.ReadVerdict()
	if err != nil || !v.IsAdmitted() {
		return v, err
	}
	if err := sender.Send(ctx, fw, c.sched, c.payloads); err != nil {
		return v, err
	}
	// Wait for the completion ack so the server's final write never races
	// our close — with a resume window configured, a reset ack write
	// would otherwise park the finished stream for the whole window.
	fr.ReadMessageTimeout(10 * time.Second)
	return v, nil
}

// handshake dials and declares, returning the open connection with its
// framers for tests that hold sessions without streaming.
func (c *clientKit) handshake(t testing.TB, addr string) (net.Conn, *transport.FrameWriter, transport.Verdict) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fw := transport.NewFrameWriter(conn)
	if err := fw.WriteHello(c.hello); err != nil {
		conn.Close()
		t.Fatal(err)
	}
	v, err := transport.NewFrameReader(conn).ReadVerdict()
	if err != nil {
		conn.Close()
		t.Fatal(err)
	}
	return conn, fw, v
}

func startServer(t testing.TB, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.TimeScale == 0 {
		cfg.TimeScale = soakTimeScale
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSingleStreamEndToEnd(t *testing.T) {
	kit := makeClient(t, testTrace(t, 54))
	srv, addr := startServer(t, Config{LinkRate: 2 * kit.hello.PeakRate})

	v, err := kit.stream(t.Context(), addr)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsAdmitted() {
		t.Fatalf("stream rejected: %+v", v)
	}
	waitFor(t, "stream completion", func() bool { return srv.Snapshot().Streams.Completed == 1 })

	snap := srv.Snapshot()
	if snap.Streams.Admitted != 1 || snap.Streams.Failed != 0 || snap.Streams.Active != 0 {
		t.Fatalf("counters %+v", snap.Streams)
	}
	var totalBits int64
	for _, p := range kit.payloads {
		totalBits += int64(len(p)) * 8
	}
	if snap.EgressedBits != totalBits {
		t.Fatalf("egressed %d bits, want %d", snap.EgressedBits, totalBits)
	}
	fin := srv.FinishedStreams()
	if len(fin) != 1 {
		t.Fatalf("%d finished snapshots", len(fin))
	}
	ss := fin[0]
	if ss.Pictures != kit.tr.Len() || ss.Decisions != kit.tr.Len() {
		t.Fatalf("pictures %d decisions %d, want %d", ss.Pictures, ss.Decisions, kit.tr.Len())
	}
	if ss.MaxDelay > ss.DelayBound || ss.DelayHeadroom < 0 {
		t.Fatalf("delay bound broken: max %.4f bound %.4f", ss.MaxDelay, ss.DelayBound)
	}
	if ss.SessionPeak <= 0 || ss.PeakViolations != 0 || ss.OutOfBand != 0 {
		t.Fatalf("stream snapshot %+v", ss)
	}
	// The server re-smooths from byte-rounded sizes, so its peak may sit
	// a whisker above the client's bit-exact declaration — but no more.
	if ss.SessionPeak > ss.DeclaredPeak*1.01 {
		t.Fatalf("session peak %.0f far above declared %.0f", ss.SessionPeak, ss.DeclaredPeak)
	}
}

func TestAdmissionRejectsOverloadAtAdmission(t *testing.T) {
	kit := makeClient(t, testTrace(t, 54))
	// Capacity for exactly two concurrent streams.
	_, addr := startServer(t, Config{LinkRate: 2.5 * kit.hello.PeakRate})

	// Two sessions declare and then hold the link without finishing.
	var held []net.Conn
	for i := 0; i < 2; i++ {
		conn, _, v := kit.handshake(t, addr)
		defer conn.Close()
		if !v.IsAdmitted() {
			t.Fatalf("stream %d: %+v", i, v)
		}
		held = append(held, conn)
	}
	// The third declaration must be rejected at admission time.
	conn, _, v := kit.handshake(t, addr)
	defer conn.Close()
	if v.Code != transport.RejectedCapacity {
		t.Fatalf("verdict %+v, want rejected-capacity", v)
	}
	if v.Available >= kit.hello.PeakRate {
		t.Fatalf("rejection reports %.0f available, enough for the declared %.0f",
			v.Available, kit.hello.PeakRate)
	}
	for _, c := range held {
		c.Close()
	}
}

func TestMalformedFirstMessageIsRejected(t *testing.T) {
	kit := makeClient(t, testTrace(t, 27))
	srv, addr := startServer(t, Config{LinkRate: 1e7})

	// A legacy sender that skips the hello gets a malformed verdict.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := transport.NewFrameWriter(conn).WriteRate(transport.RateNotification{Index: 0, Rate: 1e6}); err != nil {
		t.Fatal(err)
	}
	v, err := transport.NewFrameReader(conn).ReadVerdict()
	if err != nil {
		t.Fatal(err)
	}
	if v.Code != transport.RejectedMalformed {
		t.Fatalf("verdict %+v, want rejected-malformed", v)
	}
	waitFor(t, "rejection counted", func() bool {
		return srv.Snapshot().Streams.RejectedMalformed == 1
	})
	// An unsatisfiable smoothing config (D < (K+1)τ) is caught at the
	// hello too, before any capacity is reserved.
	bad := *kit
	bad.hello.D = bad.hello.Tau / 2
	conn2, _, v2 := bad.handshake(t, addr)
	defer conn2.Close()
	if v2.Code != transport.RejectedMalformed {
		t.Fatalf("verdict %+v, want rejected-malformed", v2)
	}
	if got := srv.Snapshot().ReservedPeak; got != 0 {
		t.Fatalf("malformed hellos reserved %.0f bps", got)
	}
}

// TestIntegrityModeMismatchRejected: an HMAC server turns away a
// default-FNV hello at admission — before reserving capacity — and a
// plain-FNV server likewise refuses an HMAC hello, so a sender can
// never stream under a prefix-hash regime the server won't verify.
func TestIntegrityModeMismatchRejected(t *testing.T) {
	kit := makeClient(t, testTrace(t, 27))
	srv, addr := startServer(t, Config{
		LinkRate:     1e7,
		Integrity:    transport.IntegrityHMAC,
		IntegrityKey: []byte("server-side-secret"),
	})

	// kit.hello is zero-valued Integrity == IntegrityFNV.
	conn, _, v := kit.handshake(t, addr)
	defer conn.Close()
	if v.Code != transport.RejectedMalformed {
		t.Fatalf("FNV hello against HMAC server: verdict %+v, want rejected-malformed", v)
	}
	if got := srv.Snapshot().ReservedPeak; got != 0 {
		t.Fatalf("mismatched hello reserved %.0f bps", got)
	}

	// The right mode is admitted on the same server.
	ok := *kit
	ok.hello.Integrity = transport.IntegrityHMAC
	conn2, _, v2 := ok.handshake(t, addr)
	defer conn2.Close()
	if !v2.IsAdmitted() {
		t.Fatalf("HMAC hello against HMAC server: verdict %+v", v2)
	}

	// And the mirror image: an FNV server refuses an HMAC hello.
	_, addrFNV := startServer(t, Config{LinkRate: 1e7})
	conn3, _, v3 := ok.handshake(t, addrFNV)
	defer conn3.Close()
	if v3.Code != transport.RejectedMalformed {
		t.Fatalf("HMAC hello against FNV server: verdict %+v, want rejected-malformed", v3)
	}
}

func TestServerReadTimeoutCutsStalledStream(t *testing.T) {
	kit := makeClient(t, testTrace(t, 27))
	srv, addr := startServer(t, Config{LinkRate: 1e7, ReadTimeout: 100 * time.Millisecond})

	conn, _, v := kit.handshake(t, addr)
	defer conn.Close()
	if !v.IsAdmitted() {
		t.Fatalf("%+v", v)
	}
	// Stall: send nothing further. The read deadline must fail the
	// stream and release its reservation.
	waitFor(t, "stalled stream cut off", func() bool {
		s := srv.Snapshot()
		return s.Streams.Failed == 1 && s.Streams.Active == 0
	})
	if got := srv.Snapshot().AvailablePeak; got != 1e7 {
		t.Fatalf("reservation not released: %.0f available", got)
	}
}

func TestOpsEndpoint(t *testing.T) {
	kit := makeClient(t, testTrace(t, 54))
	srv, addr := startServer(t, Config{LinkRate: 1.5 * kit.hello.PeakRate})
	ops := httptest.NewServer(srv.OpsHandler())
	defer ops.Close()

	// One rejected stream (declares more than the whole link)...
	big := *kit
	big.hello.PeakRate = 10 * srv.Snapshot().CapacityBPS
	conn, _, v := big.handshake(t, addr)
	if v.Code != transport.RejectedCapacity {
		t.Fatalf("verdict %+v", v)
	}
	conn.Close()
	// ...and one completed stream.
	if v, err := kit.stream(t.Context(), addr); err != nil || !v.IsAdmitted() {
		t.Fatalf("%+v, %v", v, err)
	}
	waitFor(t, "completion", func() bool { return srv.Snapshot().Streams.Completed == 1 })

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := ops.Client().Get(ops.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/livez"); code != 200 || body != "ok\n" {
		t.Fatalf("livez %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthz %d %q", code, body)
	}
	code, body := get("/stats")
	if code != 200 {
		t.Fatalf("stats %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("stats JSON: %v\n%s", err, body)
	}
	if snap.Streams.Admitted != 1 || snap.Streams.Rejected != 1 ||
		snap.Streams.RejectedCapacity != 1 || snap.Streams.Completed != 1 {
		t.Fatalf("stats counters %+v", snap.Streams)
	}
	if snap.CapacityBPS != 1.5*kit.hello.PeakRate || snap.EgressedBits == 0 {
		t.Fatalf("stats capacity %.0f egressed %d", snap.CapacityBPS, snap.EgressedBits)
	}
	if snap.DelayViolations != 0 || snap.WorstDelayHeadroomS <= 0 {
		t.Fatalf("delay fields: violations %d headroom %v", snap.DelayViolations, snap.WorstDelayHeadroomS)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "smoothd") {
		t.Fatalf("expvar %d: smoothd var missing\n%s", code, body)
	}
}

// TestSoakConcurrentClients is the acceptance soak: 28 identical
// clients hit a link provisioned for exactly 20 of them. Exactly 20 are
// admitted (in whatever order the race resolves), every admitted stream
// completes within its delay bound, and the 8 others are rejected at
// admission — never dropped mid-stream.
func TestSoakConcurrentClients(t *testing.T) {
	const admitN, totalN = 20, 28
	kit := makeClient(t, testTrace(t, 36))
	srv, addr := startServer(t, Config{LinkRate: float64(admitN) * kit.hello.PeakRate})

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		admitted int
		rejected int
		failures []error
	)
	for i := 0; i < totalN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := kit.stream(t.Context(), addr)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil:
				failures = append(failures, fmt.Errorf("client %d: %w", i, err))
			case v.IsAdmitted():
				admitted++
			case v.Code == transport.RejectedCapacity:
				rejected++
			default:
				failures = append(failures, fmt.Errorf("client %d: verdict %+v", i, v))
			}
		}(i)
	}
	wg.Wait()
	for _, err := range failures {
		t.Error(err)
	}
	if admitted != admitN || rejected != totalN-admitN {
		t.Fatalf("admitted %d rejected %d, want %d/%d", admitted, rejected, admitN, totalN-admitN)
	}
	waitFor(t, "all streams drained", func() bool {
		s := srv.Snapshot()
		return s.Streams.Completed == admitN && s.Streams.Active == 0
	})

	snap := srv.Snapshot()
	if snap.Streams.Failed != 0 {
		t.Fatalf("%d streams failed mid-stream", snap.Streams.Failed)
	}
	if snap.Streams.Admitted != admitN || snap.Streams.RejectedCapacity != int64(totalN-admitN) {
		t.Fatalf("server counters %+v", snap.Streams)
	}
	// Lossless: every admitted picture crossed the link.
	var streamBits int64
	for _, p := range kit.payloads {
		streamBits += int64(len(p)) * 8
	}
	if snap.EgressedBits != int64(admitN)*streamBits {
		t.Fatalf("egressed %d bits, want %d", snap.EgressedBits, int64(admitN)*streamBits)
	}
	// Every admitted stream met its delay bound D.
	if snap.DelayViolations != 0 || snap.WorstDelayHeadroomS < 0 {
		t.Fatalf("delay bound: %d violations, worst headroom %v",
			snap.DelayViolations, snap.WorstDelayHeadroomS)
	}
	fin := srv.FinishedStreams()
	if len(fin) != admitN {
		t.Fatalf("%d finished snapshots", len(fin))
	}
	for _, ss := range fin {
		if ss.Pictures != kit.tr.Len() || ss.DelayHeadroom < 0 {
			t.Fatalf("stream %d: pictures %d, max delay %v > bound %v",
				ss.ID, ss.Pictures, ss.MaxDelay, ss.DelayBound)
		}
	}
	// The reservation ledger is back to empty.
	if snap.ReservedPeak != 0 || snap.AvailablePeak != snap.CapacityBPS {
		t.Fatalf("reservations leaked: %.0f reserved", snap.ReservedPeak)
	}
}

func TestGracefulDrainLetsActiveStreamsFinish(t *testing.T) {
	kit := makeClient(t, testTrace(t, 54))
	srv, err := New(Config{LinkRate: 1e7, TimeScale: soakTimeScale})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	clientDone := make(chan error, 1)
	go func() {
		_, err := kit.stream(context.Background(), ln.Addr().String())
		clientDone <- err
	}()
	waitFor(t, "stream active", func() bool { return srv.Snapshot().Streams.Active == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if err := <-clientDone; err != nil {
		t.Fatalf("client during drain: %v", err)
	}
	snap := srv.Snapshot()
	if snap.Streams.Completed != 1 || snap.Streams.Failed != 0 {
		t.Fatalf("drain outcome %+v", snap.Streams)
	}
	// After shutdown, new sessions are refused outright.
	if _, err := net.Dial("tcp", ln.Addr().String()); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

func TestShutdownForceCancelsStalledStreams(t *testing.T) {
	kit := makeClient(t, testTrace(t, 27))
	srv, err := New(Config{LinkRate: 1e7, TimeScale: soakTimeScale})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	conn, _, v := kit.handshake(t, ln.Addr().String())
	defer conn.Close()
	if !v.IsAdmitted() {
		t.Fatalf("%+v", v)
	}
	// The stream stalls; a bounded drain must cut it loose.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("forced drain returned %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	snap := srv.Snapshot()
	if snap.Streams.Failed != 1 || snap.Streams.Active != 0 {
		t.Fatalf("forced drain outcome %+v", snap.Streams)
	}
}
