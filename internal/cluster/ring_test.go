package cluster

import (
	"math/rand"
	"testing"
)

// ringKeys draws the fixed key population the distribution and churn
// tests share: seeded, so the bounds below are deterministic facts
// about this ring construction, not flaky sampling.
func ringKeys(n int) []uint64 {
	rng := rand.New(rand.NewSource(41))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	return keys
}

// TestRingDistribution pins the load-balance bound: at 64 vnodes per
// node, three shards split a large key population with a max/min load
// ratio under 1.3.
func TestRingDistribution(t *testing.T) {
	names := []string{"alpha", "beta", "gamma"}
	ring, err := NewRing(names, 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := ringKeys(200_000)
	for _, k := range keys {
		counts[ring.Owner(k)]++
	}
	min, max := len(keys), 0
	for _, name := range names {
		c := counts[name]
		if c == 0 {
			t.Fatalf("shard %s owns no keys: %v", name, counts)
		}
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	ratio := float64(max) / float64(min)
	t.Logf("distribution over %d keys: %v (max/min %.3f)", len(keys), counts, ratio)
	if ratio >= 1.3 {
		t.Fatalf("max/min load ratio %.3f, want < 1.3 (counts %v)", ratio, counts)
	}
}

// TestRingChurn pins the minimal-disruption property: adding a node
// moves only the keys that node takes over (no key moves between
// surviving nodes), and the moved fraction is near its fair share.
// Removing the node restores the original assignment exactly.
func TestRingChurn(t *testing.T) {
	base := []string{"alpha", "beta", "gamma"}
	before, err := NewRing(base, 64)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(append(base, "delta"), 64)
	if err != nil {
		t.Fatal(err)
	}
	keys := ringKeys(200_000)
	moved := 0
	for _, k := range keys {
		was, is := before.Owner(k), after.Owner(k)
		if was == is {
			continue
		}
		if is != "delta" {
			t.Fatalf("key %016x moved %s -> %s: churn between surviving nodes", k, was, is)
		}
		moved++
	}
	frac := float64(moved) / float64(len(keys))
	t.Logf("added delta: %.1f%% of keys moved (fair share 25%%)", 100*frac)
	if frac < 0.25/2 || frac > 0.25*2 {
		t.Fatalf("add moved %.3f of keys, want near the 0.25 fair share", frac)
	}
	// Removal is the mirror image: rebuilding without delta must give
	// back the original assignment for every key.
	restored, err := NewRing([]string{"gamma", "beta", "alpha"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if before.Owner(k) != restored.Owner(k) {
			t.Fatalf("key %016x: owner changed after remove (%s vs %s)",
				k, before.Owner(k), restored.Owner(k))
		}
	}
}

// TestRingDeterminism pins cross-process agreement: the assignment is a
// pure function of the member set — insertion order, duplicates, and
// process identity must not matter — and a golden checksum catches any
// accidental dependence on map iteration or addresses.
func TestRingDeterminism(t *testing.T) {
	a, err := NewRing([]string{"alpha", "beta", "gamma"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"gamma", "alpha", "beta", "alpha"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	keys := ringKeys(50_000)
	var sum uint64
	for i, k := range keys {
		oa, ob := a.Owner(k), b.Owner(k)
		if oa != ob {
			t.Fatalf("key %016x: owner %s vs %s across construction orders", k, oa, ob)
		}
		sum = sum*31 + splitmix64(k^uint64(len(oa))+uint64(i))
	}
	// Golden checksum of the full assignment, fixed at the ring's
	// introduction: a change here is a routing flag-day for every
	// deployed fleet and must be deliberate.
	const golden = uint64(0xf84690e0f9d518e8)
	if sum != golden {
		t.Fatalf("assignment checksum %016x, want %016x: ring hashing changed, every deployed fleet would re-route", sum, golden)
	}
}
