// Package experiments reproduces every figure of the paper's evaluation
// (Section 5, Figures 3–8) plus the extension experiments listed in
// DESIGN.md, as pure functions returning data series. cmd/experiments
// renders them to CSV and console tables; bench_test.go times them.
//
// All experiments run at 30 pictures/s (τ = 1/30 s), as in the paper.
package experiments

import (
	"fmt"

	"mpegsmooth/internal/core"
	"mpegsmooth/internal/metrics"
	"mpegsmooth/internal/trace"
)

// DefaultPictures is the trace length used when regenerating figures:
// 270 pictures = 9 seconds, comparable to the paper's sequences
// (their time axes run to about 10 seconds).
const DefaultPictures = 270

// DefaultSeed keeps every regenerated figure deterministic.
const DefaultSeed = 1994

// Sequences returns the four experimental MPEG sequences.
func Sequences(pictures int, seed int64) ([]*trace.Trace, error) {
	return trace.PaperSequences(pictures, seed)
}

// MeasuresFor runs the algorithm with cfg and evaluates the paper's four
// measures against ideal smoothing (Eq. 16 alignment).
func MeasuresFor(tr *trace.Trace, cfg core.Config) (metrics.Measures, *core.Schedule, error) {
	s, err := core.Smooth(tr, cfg)
	if err != nil {
		return metrics.Measures{}, nil, err
	}
	ideal, err := core.Ideal(tr)
	if err != nil {
		return metrics.Measures{}, nil, err
	}
	rf, err := s.RateFunc()
	if err != nil {
		return metrics.Measures{}, nil, err
	}
	idf, err := ideal.RateFunc()
	if err != nil {
		return metrics.Measures{}, nil, err
	}
	advance := float64(tr.GOP.N-cfg.K) * tr.Tau
	m, err := metrics.Compute(rf, idf, advance, tr.Duration()+cfg.D)
	if err != nil {
		return metrics.Measures{}, nil, err
	}
	return m, s, nil
}

// Figure3 regenerates the trace-characteristics figure: picture size vs
// picture number for Driving1 and Tennis.
func Figure3(pictures int, seed int64) ([]*trace.Trace, error) {
	d1, err := trace.Driving1(pictures, seed)
	if err != nil {
		return nil, err
	}
	tn, err := trace.Tennis(pictures, seed)
	if err != nil {
		return nil, err
	}
	return []*trace.Trace{d1, tn}, nil
}

// Fig4Series is one panel of Figure 4: the smoothed rate function r(t)
// for one delay bound, with the ideal reference R(t).
type Fig4Series struct {
	D        float64
	Rate     *metrics.StepFunc
	Ideal    *metrics.StepFunc
	Measures metrics.Measures
}

// Figure4 regenerates rate-vs-time for Driving1 with K=1, H=9 across
// four delay bounds (the paper names 0.1, 0.2, and 0.3 s; the fourth
// panel's caption is garbled in the source, so 0.15 s completes the
// sweep bracketing them).
func Figure4(pictures int, seed int64) ([]Fig4Series, error) {
	tr, err := trace.Driving1(pictures, seed)
	if err != nil {
		return nil, err
	}
	ideal, err := core.Ideal(tr)
	if err != nil {
		return nil, err
	}
	idf, err := ideal.RateFunc()
	if err != nil {
		return nil, err
	}
	var out []Fig4Series
	for _, d := range []float64{0.1, 0.15, 0.2, 0.3} {
		cfg := core.Config{K: 1, H: 9, D: d}
		m, s, err := MeasuresFor(tr, cfg)
		if err != nil {
			return nil, err
		}
		rf, err := s.RateFunc()
		if err != nil {
			return nil, err
		}
		out = append(out, Fig4Series{D: d, Rate: rf, Ideal: idf, Measures: m})
	}
	return out, nil
}

// Fig5Result holds the per-picture delay comparisons of Figure 5.
type Fig5Result struct {
	// Left graph: basic algorithm at two delay bounds vs ideal.
	DelaysD01   []float64 // D = 0.1, K = 1, H = 9
	DelaysD03   []float64 // D = 0.3, K = 1, H = 9
	DelaysIdeal []float64
	// Right graph: K = 1 vs K = 9 at D = 0.1333 + (K+1)/30, H = 9.
	DelaysK1 []float64
	DelaysK9 []float64
}

// Figure5 regenerates the delay comparisons for Driving1.
func Figure5(pictures int, seed int64) (*Fig5Result, error) {
	tr, err := trace.Driving1(pictures, seed)
	if err != nil {
		return nil, err
	}
	out := &Fig5Result{}
	for _, c := range []struct {
		dst *[]float64
		cfg core.Config
	}{
		{&out.DelaysD01, core.Config{K: 1, H: 9, D: 0.1}},
		{&out.DelaysD03, core.Config{K: 1, H: 9, D: 0.3}},
		{&out.DelaysK1, core.Config{K: 1, H: 9, D: 0.1333 + 2.0/30}},
		{&out.DelaysK9, core.Config{K: 9, H: 9, D: 0.1333 + 10.0/30}},
	} {
		s, err := core.Smooth(tr, c.cfg)
		if err != nil {
			return nil, err
		}
		*c.dst = s.Delays
	}
	ideal, err := core.Ideal(tr)
	if err != nil {
		return nil, err
	}
	out.DelaysIdeal = ideal.Delays
	return out, nil
}

// SweepRow is one point of a Figure 6/7/8 parameter sweep.
type SweepRow struct {
	Sequence string
	X        float64 // the swept parameter value (D seconds, H or K pictures)
	Measures metrics.Measures
}

// Figure6 sweeps the delay bound D with K=1, H=N for all four sequences.
func Figure6(pictures int, seed int64) ([]SweepRow, error) {
	seqs, err := Sequences(pictures, seed)
	if err != nil {
		return nil, err
	}
	var rows []SweepRow
	for _, tr := range seqs {
		// D from just above (K+1)τ = 2/30 up to 0.3 s, as in the figure.
		for _, d := range []float64{0.0667, 0.1, 0.1333, 0.1667, 0.2, 0.2333, 0.2667, 0.3} {
			m, _, err := MeasuresFor(tr, core.Config{K: 1, H: tr.GOP.N, D: d})
			if err != nil {
				return nil, fmt.Errorf("%s D=%v: %w", tr.Name, d, err)
			}
			rows = append(rows, SweepRow{Sequence: tr.Name, X: d, Measures: m})
		}
	}
	return rows, nil
}

// Figure7 sweeps the lookahead H with D=0.2, K=1 for all four sequences.
func Figure7(pictures int, seed int64) ([]SweepRow, error) {
	seqs, err := Sequences(pictures, seed)
	if err != nil {
		return nil, err
	}
	var rows []SweepRow
	for _, tr := range seqs {
		for h := 1; h <= 2*tr.GOP.N; h++ {
			m, _, err := MeasuresFor(tr, core.Config{K: 1, H: h, D: 0.2})
			if err != nil {
				return nil, fmt.Errorf("%s H=%d: %w", tr.Name, h, err)
			}
			rows = append(rows, SweepRow{Sequence: tr.Name, X: float64(h), Measures: m})
		}
	}
	return rows, nil
}

// Figure8 sweeps K with D = 0.1333 + (K+1)/30 (constant slack 0.1333 s)
// and H = N for all four sequences.
func Figure8(pictures int, seed int64) ([]SweepRow, error) {
	seqs, err := Sequences(pictures, seed)
	if err != nil {
		return nil, err
	}
	var rows []SweepRow
	for _, tr := range seqs {
		for k := 1; k <= 12; k++ {
			d := 0.1333 + float64(k+1)/30
			m, _, err := MeasuresFor(tr, core.Config{K: k, H: tr.GOP.N, D: d})
			if err != nil {
				return nil, fmt.Errorf("%s K=%d: %w", tr.Name, k, err)
			}
			rows = append(rows, SweepRow{Sequence: tr.Name, X: float64(k), Measures: m})
		}
	}
	return rows, nil
}
