package dct

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestForwardDCPlateau(t *testing.T) {
	// A flat block of value v must produce DC = 8*v and zero AC.
	var src, out Block
	for i := range src {
		src[i] = 100
	}
	Forward(&out, &src)
	if out[0] != 800 {
		t.Fatalf("DC = %d, want 800", out[0])
	}
	for i := 1; i < 64; i++ {
		if out[i] != 0 {
			t.Fatalf("AC[%d] = %d, want 0", i, out[i])
		}
	}
}

func TestInverseOfForwardIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var src, freq, back Block
		for i := range src {
			src[i] = int32(rng.Intn(256) - 128)
		}
		Forward(&freq, &src)
		Inverse(&back, &freq)
		for i := range src {
			if d := src[i] - back[i]; d < -1 || d > 1 {
				t.Fatalf("trial %d sample %d: src=%d back=%d", trial, i, src[i], back[i])
			}
		}
	}
}

func TestForwardInverseInPlace(t *testing.T) {
	var b Block
	for i := range b {
		b[i] = int32(i) - 32
	}
	orig := b
	Forward(&b, &b)
	Inverse(&b, &b)
	for i := range b {
		if d := b[i] - orig[i]; d < -1 || d > 1 {
			t.Fatalf("in-place round trip off at %d: got %d want %d", i, b[i], orig[i])
		}
	}
}

func TestParseval(t *testing.T) {
	// Orthonormal DCT preserves energy (within rounding).
	rng := rand.New(rand.NewSource(7))
	var src, freq Block
	for i := range src {
		src[i] = int32(rng.Intn(255) - 127)
	}
	Forward(&freq, &src)
	var es, ef float64
	for i := range src {
		es += float64(src[i]) * float64(src[i])
		ef += float64(freq[i]) * float64(freq[i])
	}
	if es == 0 {
		t.Fatal("degenerate test input")
	}
	if rel := math.Abs(es-ef) / es; rel > 0.01 {
		t.Fatalf("energy mismatch: spatial %.1f freq %.1f (rel %.4f)", es, ef, rel)
	}
}

func TestHorizontalCosineMapsToSingleCoefficient(t *testing.T) {
	// A pure horizontal cosine basis function should concentrate energy
	// into one AC coefficient.
	var src, freq Block
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			src[y*8+x] = int32(math.Round(100 * math.Cos(float64(2*x+1)*2*math.Pi/16)))
		}
	}
	Forward(&freq, &src)
	// Dominant coefficient must be (v=0, u=2) = index 2.
	maxIdx, maxAbs := 0, int32(0)
	for i, c := range freq {
		a := c
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs, maxIdx = a, i
		}
	}
	if maxIdx != 2 {
		t.Fatalf("dominant coefficient at %d, want 2 (freq=%v)", maxIdx, freq[:8])
	}
}

func TestZigZagIsPermutation(t *testing.T) {
	seen := [64]bool{}
	for _, idx := range ZigZag {
		if idx < 0 || idx > 63 {
			t.Fatalf("zigzag index %d out of range", idx)
		}
		if seen[idx] {
			t.Fatalf("zigzag index %d repeated", idx)
		}
		seen[idx] = true
	}
	// Spot-check the canonical order.
	if ZigZag[0] != 0 || ZigZag[1] != 1 || ZigZag[2] != 8 || ZigZag[63] != 63 {
		t.Fatalf("zigzag order wrong: %v", ZigZag[:4])
	}
}

func TestScanUnscanRoundTrip(t *testing.T) {
	f := func(vals [64]int32) bool {
		var b Block
		copy(b[:], vals[:])
		var scanned [64]int32
		var back Block
		Scan(&scanned, &b)
		Unscan(&back, &scanned)
		return back == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInvZigZagConsistency(t *testing.T) {
	for scan, idx := range ZigZag {
		if InvZigZag[idx] != scan {
			t.Fatalf("InvZigZag[%d] = %d, want %d", idx, InvZigZag[idx], scan)
		}
	}
}

// Property: round trip error is at most 1 per sample for in-range inputs.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var src, freq, back Block
		for i := range src {
			src[i] = int32(rng.Intn(512) - 256) // prediction errors can exceed [-128,127]
		}
		Forward(&freq, &src)
		Inverse(&back, &freq)
		for i := range src {
			if d := src[i] - back[i]; d < -1 || d > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForward(b *testing.B) {
	var src, dst Block
	for i := range src {
		src[i] = int32(i%255 - 127)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Forward(&dst, &src)
	}
}

func BenchmarkInverse(b *testing.B) {
	var src, dst Block
	for i := range src {
		src[i] = int32(i%255 - 127)
	}
	Forward(&src, &src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Inverse(&dst, &src)
	}
}
