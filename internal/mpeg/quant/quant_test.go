package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mpegsmooth/internal/mpeg/dct"
)

func TestScaleClamping(t *testing.T) {
	var src dct.Block
	src[1] = 1000
	var lo, hi, over, under [64]int32
	Intra(&lo, &src, &DefaultIntra, ScaleMin)
	Intra(&under, &src, &DefaultIntra, 0) // clamped to 1
	Intra(&hi, &src, &DefaultIntra, ScaleMax)
	Intra(&over, &src, &DefaultIntra, 99) // clamped to 31
	if lo != under {
		t.Fatal("scale 0 should clamp to ScaleMin")
	}
	if hi != over {
		t.Fatal("scale 99 should clamp to ScaleMax")
	}
}

func TestCoarserScaleShrinksCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var src dct.Block
	for i := range src {
		src[i] = int32(rng.Intn(2000) - 1000)
	}
	var fine, coarse [64]int32
	Intra(&fine, &src, &DefaultIntra, 4)
	Intra(&coarse, &src, &DefaultIntra, 30)
	var nzFine, nzCoarse int
	for i := 1; i < 64; i++ {
		if fine[i] != 0 {
			nzFine++
		}
		if coarse[i] != 0 {
			nzCoarse++
		}
		if abs32(coarse[i]) > abs32(fine[i]) {
			t.Fatalf("coefficient %d grew under coarser quantization: fine=%d coarse=%d", i, fine[i], coarse[i])
		}
	}
	if nzCoarse >= nzFine {
		t.Fatalf("coarse quantization should zero more coefficients: fine=%d coarse=%d nonzero", nzFine, nzCoarse)
	}
}

func TestIntraRoundTripError(t *testing.T) {
	// The dequantized value must be within half a step of the original.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		scale := int32(rng.Intn(31) + 1)
		var src dct.Block
		for i := range src {
			src[i] = int32(rng.Intn(4000) - 2000)
		}
		var q [64]int32
		var back dct.Block
		Intra(&q, &src, &DefaultIntra, scale)
		DequantIntra(&back, &q, &DefaultIntra, scale)
		for i := range src {
			step := int32(8)
			if i != 0 {
				step = 2 * scale * DefaultIntra[i] / 16
				if step < 1 {
					step = 1
				}
			}
			if d := abs32(src[i] - back[i]); d > step/2+1 {
				t.Fatalf("trial %d scale %d coeff %d: src=%d back=%d step=%d", trial, scale, i, src[i], back[i], step)
			}
		}
	}
}

func TestNonIntraRoundTripError(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		scale := int32(rng.Intn(31) + 1)
		var src dct.Block
		for i := range src {
			src[i] = int32(rng.Intn(1000) - 500)
		}
		var q [64]int32
		var back dct.Block
		NonIntra(&q, &src, &DefaultNonIntra, scale)
		DequantNonIntra(&back, &q, &DefaultNonIntra, scale)
		for i := range src {
			step := 2 * scale * DefaultNonIntra[i] / 16
			if step < 1 {
				step = 1
			}
			// Truncating quantizer: nonzero bins reconstruct at midpoint
			// (error <= step/2+1); the double-width dead zone around zero
			// allows error up to a full step.
			limit := step/2 + 1
			if q[i] == 0 {
				limit = step
			}
			if d := abs32(src[i] - back[i]); d > limit {
				t.Fatalf("trial %d scale %d coeff %d: src=%d back=%d step=%d q=%d", trial, scale, i, src[i], back[i], step, q[i])
			}
		}
	}
}

func TestNonIntraDeadZone(t *testing.T) {
	// Values strictly inside one quantizer step must vanish: this is what
	// stops P/B pictures from re-coding reference quantization noise.
	scale := int32(6)
	step := 2 * scale * DefaultNonIntra[5] / 16 // flat matrix: 12
	var src dct.Block
	src[5] = step - 1
	src[6] = -(step - 1)
	src[7] = step
	var q [64]int32
	NonIntra(&q, &src, &DefaultNonIntra, scale)
	if q[5] != 0 || q[6] != 0 {
		t.Fatalf("values inside dead zone quantized to %d, %d; want 0", q[5], q[6])
	}
	if q[7] != 1 {
		t.Fatalf("value at one step quantized to %d, want 1", q[7])
	}
}

func TestDCPrecisionIndependentOfScale(t *testing.T) {
	var src dct.Block
	src[0] = 1024
	var q1, q31 [64]int32
	Intra(&q1, &src, &DefaultIntra, 1)
	Intra(&q31, &src, &DefaultIntra, 31)
	if q1[0] != q31[0] || q1[0] != 128 {
		t.Fatalf("intra DC should always divide by 8: got %d and %d, want 128", q1[0], q31[0])
	}
}

func TestDefaultMatricesSane(t *testing.T) {
	if DefaultIntra[0] != 8 {
		t.Fatalf("intra DC weight = %d, want 8", DefaultIntra[0])
	}
	for i, v := range DefaultNonIntra {
		if v != 16 {
			t.Fatalf("non-intra weight %d = %d, want 16", i, v)
		}
	}
	// Intra matrix must be non-decreasing along the top row and left column
	// (finer quantization for lower frequencies).
	for i := 1; i < 8; i++ {
		if DefaultIntra[i] < DefaultIntra[i-1] {
			t.Fatalf("intra matrix top row decreases at %d", i)
		}
		if DefaultIntra[i*8] < DefaultIntra[(i-1)*8] {
			t.Fatalf("intra matrix left column decreases at %d", i)
		}
	}
}

func TestRateQualityTradeoff(t *testing.T) {
	// Reproduce the paper's Section 3.1 observation in miniature: the same
	// block quantized at scale 30 yields far fewer bits of information
	// (nonzero coefficients) than at scale 4.
	rng := rand.New(rand.NewSource(99))
	var spatial, freq dct.Block
	for i := range spatial {
		spatial[i] = int32(rng.Intn(256) - 128)
	}
	dct.Forward(&freq, &spatial)
	var q4, q30 [64]int32
	Intra(&q4, &freq, &DefaultIntra, 4)
	Intra(&q30, &freq, &DefaultIntra, 30)
	nz := func(q *[64]int32) (n int) {
		for _, v := range q[1:] {
			if v != 0 {
				n++
			}
		}
		return
	}
	n4, n30 := nz(&q4), nz(&q30)
	if n30*2 >= n4 {
		t.Fatalf("scale 30 should zero far more AC coefficients than scale 4: %d vs %d", n30, n4)
	}
	// And the reconstruction error must be visibly larger at scale 30.
	mse := func(q *[64]int32, scale int32) float64 {
		var back, pix dct.Block
		DequantIntra(&back, q, &DefaultIntra, scale)
		dct.Inverse(&pix, &back)
		var e float64
		for i := range pix {
			d := float64(pix[i] - spatial[i])
			e += d * d
		}
		return e / 64
	}
	m4, m30 := mse(&q4, 4), mse(&q30, 30)
	if m30 <= m4 {
		t.Fatalf("coarser quantization must increase MSE: scale4=%.1f scale30=%.1f", m4, m30)
	}
}

// Property: quantize/dequantize never changes a coefficient's sign.
func TestSignPreservationProperty(t *testing.T) {
	f := func(vals [64]int16, scaleSeed uint8) bool {
		scale := int32(scaleSeed)%31 + 1
		var src dct.Block
		for i, v := range vals {
			src[i] = int32(v)
		}
		var q [64]int32
		var back dct.Block
		Intra(&q, &src, &DefaultIntra, scale)
		DequantIntra(&back, &q, &DefaultIntra, scale)
		for i := range src {
			if src[i] > 0 && back[i] < 0 || src[i] < 0 && back[i] > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func BenchmarkIntraQuant(b *testing.B) {
	var src dct.Block
	for i := range src {
		src[i] = int32(math.MaxInt16 / (i + 1))
	}
	var q [64]int32
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Intra(&q, &src, &DefaultIntra, 8)
	}
}
