package server

import (
	"context"
	"sync"
	"testing"
	"time"

	"mpegsmooth/internal/journal"
	"mpegsmooth/internal/transport"
)

// benchIngest pushes 8 concurrent streams through the full admission +
// smoothing + shared-egress path per iteration. TimeScale 1e6 on both
// sides collapses pacing so the benchmark measures the server
// machinery, not the schedule clock.
func benchIngest(b *testing.B, j *journal.Journal) {
	const streams = 8
	kit := makeClient(b, testTrace(b, 54))
	var streamBytes int64
	for _, p := range kit.payloads {
		streamBytes += int64(len(p))
	}
	cfg := Config{
		LinkRate:  float64(streams) * kit.hello.PeakRate,
		TimeScale: 1e6,
	}
	if j != nil {
		// ResumeWindow turns on resume tokens, and only tokened streams
		// are journaled — without it the journal sits idle and the
		// benchmark measures nothing durable.
		cfg.Journal = j
		cfg.ResumeWindow = 10 * time.Second
	}
	srv, addr := startServer(b, cfg)

	b.SetBytes(streams * streamBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for c := 0; c < streams; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				v, err := kit.streamWith(context.Background(), addr,
					transport.Sender{TimeScale: 1e6, Chunk: 64 << 10})
				if err != nil {
					b.Error(err)
				} else if !v.IsAdmitted() {
					b.Errorf("rejected: %+v", v)
				}
			}()
		}
		wg.Wait()
		want := int64(i+1) * streams
		waitForBench(b, srv, want)
	}
	b.StopTimer()
	if j != nil {
		st := j.Stats()
		b.ReportMetric(float64(st.Fsyncs)/float64(b.N), "fsyncs/op")
		b.ReportMetric(float64(st.CommitNanos)/float64(b.N), "commit-ns/op")
		if st.CommitBatches > 0 {
			b.ReportMetric(float64(st.CommitBatchRecords)/float64(st.CommitBatches), "recs/batch")
		}
	}
}

// BenchmarkServerIngest is the journal-less (no durability) ingest
// path: the floor the journal benchmarks are compared against.
func BenchmarkServerIngest(b *testing.B) { benchIngest(b, nil) }

// BenchmarkServerIngestJournal is BenchmarkServerIngest with the crash
// journal engaged (resume tokens on, every admission and completion
// fsynced before its ack). Group commit coalesces the 8-way bursts:
// committers that arrive while an fsync is in flight ride the next
// batch, so the durability tax is a couple of fsyncs per iteration
// rather than sixteen.
func BenchmarkServerIngestJournal(b *testing.B) {
	j, err := journal.Open(journal.Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	benchIngest(b, j)
}

// BenchmarkServerIngestJournalWindow adds the explicit commit window
// (the -commit-window flag): leaders hold the batch open briefly so a
// whole admission burst lands in one fsync.
func BenchmarkServerIngestJournalWindow(b *testing.B) {
	j, err := journal.Open(journal.Config{
		Dir:          b.TempDir(),
		CommitWindow: 200 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchIngest(b, j)
}

func waitForBench(b *testing.B, srv *Server, completed int64) {
	waitFor(b, "iteration drain", func() bool {
		s := srv.Snapshot()
		return s.Streams.Completed == completed && s.Streams.Active == 0
	})
}
