module mpegsmooth

go 1.22
